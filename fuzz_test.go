package predfilter_test

import (
	"errors"
	"testing"
	"time"

	"predfilter"
	"predfilter/internal/refmatch"
	"predfilter/internal/xmldoc"
	"predfilter/internal/xpath"
)

// FuzzMatch drives the whole public pipeline — expression registration,
// parsing, matching — with arbitrary (expression, document) pairs and
// checks the engine against the refmatch oracle. The engine must never
// panic or hang; when both inputs are accepted, the match verdict must
// equal the oracle's, and a governed engine (generous limits, far above
// anything the fuzzer can construct) must agree exactly with an
// ungoverned one: limits change when the engine gives up, never what it
// answers.
func FuzzMatch(f *testing.F) {
	seeds := [][2]string{
		{"//a", "<a/>"},
		{"/a/b", "<a><b/></a>"},
		{"/a//c", "<a><b><c/></b><d/></a>"},
		{"//a//a", "<a><a><a/></a></a>"},
		{"/a[@k=v]", `<a k="v"/>`},
		{"//b[@k]", `<a><b k="1"/></a>`},
		{"/a[b]/c", "<a><b/><c/></a>"},
		{"/a[b[c]]//d", "<a><b><c/></b><d/></a>"},
		{"*/a", "<x><a/></x>"},
		{"//a", "<a><a><b></a></a>"}, // malformed document
		{"a[", "<a/>"},               // malformed expression
		{"//a//a//a", "<a><a/></a>"},
	}
	for _, s := range seeds {
		f.Add(s[0], s[1])
	}
	limited := predfilter.Limits{
		MaxDepth:      1 << 10,
		MaxPaths:      1 << 12,
		MaxTuples:     1 << 14,
		MaxDocBytes:   1 << 20,
		MaxSteps:      1 << 22,
		MatchDeadline: time.Minute,
	}
	f.Fuzz(func(t *testing.T, expr, doc string) {
		eng := predfilter.New(predfilter.Config{})
		sid, err := eng.Add(expr)
		if err != nil {
			return // expression rejected: fine, as long as we didn't panic
		}
		sids, err := eng.Match([]byte(doc))
		if err != nil {
			// Document rejected. The governed engine must reject it too
			// (same parser), not silently match.
			geng := predfilter.New(predfilter.Config{Limits: limited})
			if _, err := geng.Add(expr); err != nil {
				t.Fatalf("governed engine rejected %q that the plain one accepted: %v", expr, err)
			}
			if _, gerr := geng.Match([]byte(doc)); gerr == nil {
				t.Fatalf("plain engine rejected %q (%v) but the governed one matched it", doc, err)
			}
			return
		}
		matched := len(sids) == 1 && sids[0] == sid

		// Oracle agreement.
		p, perr := xpath.Parse(expr)
		if perr != nil {
			t.Fatalf("engine accepted %q but xpath.Parse rejects it: %v", expr, perr)
		}
		d, derr := xmldoc.Parse([]byte(doc))
		if derr != nil {
			t.Fatalf("engine matched %q but xmldoc.Parse rejects it: %v", doc, derr)
		}
		if want := refmatch.Match(p, d); matched != want {
			t.Fatalf("%q over %q: engine=%v oracle=%v", expr, doc, matched, want)
		}

		// Limits-on/off equivalence: bounds far above the fuzzer's reach
		// must not change the verdict.
		geng := predfilter.New(predfilter.Config{Limits: limited})
		gsid, err := geng.Add(expr)
		if err != nil {
			t.Fatalf("governed Add(%q): %v", expr, err)
		}
		gsids, err := geng.Match([]byte(doc))
		if err != nil {
			// Giving up is allowed — but only with the typed limit error,
			// and only when a limit genuinely tripped (a determined fuzzer
			// can build a wide document that does exceed the path bound).
			var le *predfilter.LimitError
			if !errors.As(err, &le) {
				t.Fatalf("governed engine failed without a *LimitError: %v", err)
			}
			return
		}
		gmatched := len(gsids) == 1 && gsids[0] == gsid
		if gmatched != matched {
			t.Fatalf("%q over %q: governed=%v ungoverned=%v", expr, doc, gmatched, matched)
		}
	})
}

// FuzzMatchColumnar drives the columnar batch matcher with arbitrary
// (expression, document) pairs through MatchBatch with the kernel forced
// on and the path cache off (so every path takes the pure bitset route),
// and checks it against the refmatch oracle and the scalar engine. The
// batch repeats the document so the second copy exercises the kernel's
// pooled scratch reuse within one batch.
func FuzzMatchColumnar(f *testing.F) {
	seeds := [][2]string{
		{"//a", "<a/>"},
		{"/a/b", "<a><b/></a>"},
		{"//a//a", "<a><a><a/></a></a>"},     // ambiguous path: scalar determination
		{"/a/b/c", "<a><b><c/></b><b/></a>"}, // repeated tag across siblings
		{"/a[@k=v]", `<a k="v"/>`},
		{"/a[b]/c", "<a><b/><c/></a>"}, // nested filter
		{"/*/*", "<a><b/></a>"},        // wildcard-only (length) chain
		{"a[", "<a/>"},                 // malformed expression
		{"//a", "<a><a><b></a></a>"},   // malformed document
	}
	for _, s := range seeds {
		f.Add(s[0], s[1])
	}
	f.Fuzz(func(t *testing.T, expr, doc string) {
		scalar := predfilter.New(predfilter.Config{PathCacheBytes: -1, Columnar: predfilter.ColumnarOff})
		col := predfilter.New(predfilter.Config{PathCacheBytes: -1, Columnar: predfilter.ColumnarOn})
		sid, err := scalar.Add(expr)
		if err != nil {
			return
		}
		if _, err := col.Add(expr); err != nil {
			t.Fatalf("columnar engine rejected %q that the scalar one accepted: %v", expr, err)
		}
		want, err := scalar.Match([]byte(doc))
		batch := col.MatchBatch([][]byte{[]byte(doc), []byte(doc)}, 1)
		if err != nil {
			for _, r := range batch {
				if r.Err == nil {
					t.Fatalf("scalar rejected %q (%v) but columnar matched it", doc, err)
				}
			}
			return
		}
		matched := len(want) == 1 && want[0] == sid
		for i, r := range batch {
			if r.Err != nil {
				t.Fatalf("columnar doc %d failed on input scalar accepted: %v", i, r.Err)
			}
			if got := len(r.SIDs) == 1 && r.SIDs[0] == sid; got != matched {
				t.Fatalf("%q over %q copy %d: columnar=%v scalar=%v", expr, doc, i, got, matched)
			}
		}
		p, perr := xpath.Parse(expr)
		d, derr := xmldoc.Parse([]byte(doc))
		if perr != nil || derr != nil {
			t.Fatalf("engine accepted inputs the parsers reject: %v / %v", perr, derr)
		}
		if oracle := refmatch.Match(p, d); matched != oracle {
			t.Fatalf("%q over %q: engine=%v oracle=%v", expr, doc, matched, oracle)
		}
	})
}
