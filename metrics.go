package predfilter

import (
	"context"
	"io"
	"log/slog"
	"strconv"
	"time"

	"predfilter/internal/guard"
	"predfilter/internal/matcher"
	"predfilter/internal/metrics"
	"predfilter/internal/trace"
	"predfilter/internal/xmldoc"
)

// HistogramStats summarizes one stage-latency histogram: observation
// count, accumulated time, and interpolated quantile estimates (see
// internal/metrics for the bucket layout the estimates come from).
type HistogramStats struct {
	Count      uint64
	TotalNanos int64
	P50Nanos   float64
	P95Nanos   float64
	P99Nanos   float64
}

func summarize(h *metrics.Histogram) HistogramStats {
	s := h.Snapshot()
	return HistogramStats{
		Count:      s.Count,
		TotalNanos: int64(s.SumNanos),
		P50Nanos:   s.Quantile(0.50),
		P95Nanos:   s.Quantile(0.95),
		P99Nanos:   s.Quantile(0.99),
	}
}

// StageStats holds the per-stage latency summaries of the pipeline:
// parsing (XML parse + path extraction), the path-signature cache stage,
// the two matching stages of the paper (predicate matching, occurrence
// determination), the whole post-parse match, and the durable-store
// operations.
type StageStats struct {
	Parse          HistogramStats
	Cache          HistogramStats
	PredicateMatch HistogramStats
	Occurrence     HistogramStats
	Match          HistogramStats
	WALAppend      HistogramStats
	Snapshot       HistogramStats
}

// Match tracing (per-document explanation mode). The types are produced
// by Engine.MatchTraced; see internal/matcher for field documentation.
type (
	// MatchTrace is the full per-document explanation: per-expression
	// evidence plus the nanosecond cost of each pipeline stage.
	MatchTrace = matcher.Trace
	// ExprTrace explains one registered expression against the document.
	ExprTrace = matcher.ExprTrace
	// PathEvidence is one path's evidence for one expression.
	PathEvidence = matcher.PathEvidence
	// PredicateEval is the stage-1 evidence for one chain level.
	PredicateEval = matcher.PredicateEval
)

// MatchTraced is Match with an explanation: alongside the matching SIDs it
// returns, for every registered expression, which chain predicates
// produced occurrence pairs on which paths, the occurrence-determination
// outcome over them, and the per-stage costs. The match result is
// authoritative (identical to Match); the explanation is a deliberately
// slow second pass intended for debugging single documents. Configured
// limits are enforced; MatchTraced is MatchTracedContext without
// caller-side cancellation.
func (e *Engine) MatchTraced(doc []byte) ([]SID, *MatchTrace, error) {
	return e.MatchTracedContext(context.Background(), doc)
}

// MatchTracedContext is MatchTraced under the caller's context and the
// engine's configured limits: the document is parsed under the structural
// limits, the authoritative match runs under the step budget and
// deadline, and the explanation pass — which re-evaluates every
// expression without covers or the path cache — runs under a forked
// budget (its own full step allocation, the same wall-clock deadline). A
// governance stop returns a typed *LimitError and no trace; the slow
// explanation pass can therefore never pin a worker on a document the
// governed fast path would have rejected.
func (e *Engine) MatchTracedContext(ctx context.Context, doc []byte) ([]SID, *MatchTrace, error) {
	t0 := time.Now()
	d, err := xmldoc.ParseMeteredLimitsMode(doc, e.mx, e.limits, e.pmode)
	if err != nil {
		return nil, nil, e.recordGovernance(err)
	}
	parse := time.Since(t0)
	sids, tr, err := e.m.MatchDocumentTracedBudget(d, guard.NewBudget(ctx, e.limits))
	if err != nil {
		return nil, nil, e.recordGovernance(err)
	}
	tr.ParseNanos = parse.Nanoseconds()
	return sids, tr, nil
}

// maybeLogSlow counts and logs documents whose parse+match time reached
// the configured threshold. bd may be nil when no stage breakdown exists
// (the parallel and streaming paths). When ctx carries a distributed
// trace (the server attaches one for traced publishes), its trace ID is
// attached so the slow-document record can be correlated with the
// cluster-wide span tree in the flight recorder.
func (e *Engine) maybeLogSlow(ctx context.Context, parse, match time.Duration, bd *matcher.Breakdown, bytes, paths, matches int) {
	if e.slow <= 0 || parse+match < e.slow {
		return
	}
	e.mx.SlowDocs.Inc()
	attrs := []slog.Attr{
		slog.Int64("total_ns", int64(parse+match)),
		slog.Int64("parse_ns", int64(parse)),
		slog.Int64("match_ns", int64(match)),
		slog.Int("bytes", bytes),
		slog.Int("paths", paths),
		slog.Int("matches", matches),
	}
	if bd != nil {
		attrs = append(attrs,
			slog.Int64("cache_ns", int64(bd.Cache)),
			slog.Int64("pred_match_ns", int64(bd.PredMatch)),
			slog.Int64("occur_ns", int64(bd.ExprMatch+bd.Other)),
		)
	}
	if tr := trace.FromContext(ctx); tr.Enabled() {
		attrs = append(attrs, slog.String("trace_id", tr.ID().String()))
	}
	e.logger.LogAttrs(ctx, slog.LevelWarn, "predfilter: slow document", attrs...)
}

// Metrics returns the engine's metric set for direct recording access
// (the stream pipeline and the durable store record into it).
func (e *Engine) Metrics() *metrics.Set { return e.mx }

// stageStats summarizes every stage histogram.
func (e *Engine) stageStats() StageStats {
	return StageStats{
		Parse:          summarize(&e.mx.Parse),
		Cache:          summarize(&e.mx.Cache),
		PredicateMatch: summarize(&e.mx.PredMatch),
		Occurrence:     summarize(&e.mx.Occur),
		Match:          summarize(&e.mx.Match),
		WALAppend:      summarize(&e.mx.WALAppend),
		Snapshot:       summarize(&e.mx.Snapshot),
	}
}

// WriteMetrics writes the engine's full metric state to w in the
// Prometheus text exposition format (version 0.0.4): the document
// counters, the per-stage latency histograms, the expression-table
// gauges, the path-cache counters and the stream-pipeline
// instrumentation. It is the payload of the server's GET /metrics.
func (e *Engine) WriteMetrics(w io.Writer) error {
	x := metrics.NewExposition(w)

	x.Family("predfilter_docs_total", "Documents matched (all entry points).", "counter")
	x.Int("predfilter_docs_total", "", e.mx.DocsTotal.Load())
	x.Family("predfilter_doc_errors_total", "Documents rejected by the XML parser.", "counter")
	x.Int("predfilter_doc_errors_total", "", e.mx.DocErrors.Load())
	x.Family("predfilter_doc_bytes_total", "XML bytes parsed.", "counter")
	x.Int("predfilter_doc_bytes_total", "", e.mx.DocBytes.Load())
	x.Family("predfilter_paths_total", "Root-to-leaf paths matched.", "counter")
	x.Int("predfilter_paths_total", "", e.mx.PathsTotal.Load())
	x.Family("predfilter_matches_total", "Matching expression identifiers reported.", "counter")
	x.Int("predfilter_matches_total", "", e.mx.MatchesTotal.Load())
	x.Family("predfilter_slow_docs_total", "Documents over the slow-document threshold.", "counter")
	x.Int("predfilter_slow_docs_total", "", e.mx.SlowDocs.Load())
	x.Family("predfilter_parse_docs_total", "Documents by parse path: the zero-copy scanner fast path vs the encoding/xml fallback.", "counter")
	x.Int("predfilter_parse_docs_total", `path="scan"`, e.mx.ParseScanDocs.Load())
	x.Int("predfilter_parse_docs_total", `path="fallback"`, e.mx.ParseFallbackDocs.Load())

	x.Family("predfilter_stage_duration_seconds", "Per-document pipeline stage latency.", "histogram")
	x.Histogram("predfilter_stage_duration_seconds", `stage="parse"`, e.mx.Parse.Snapshot())
	x.Histogram("predfilter_stage_duration_seconds", `stage="cache"`, e.mx.Cache.Snapshot())
	x.Histogram("predfilter_stage_duration_seconds", `stage="predicate_match"`, e.mx.PredMatch.Snapshot())
	x.Histogram("predfilter_stage_duration_seconds", `stage="occurrence"`, e.mx.Occur.Snapshot())
	x.Histogram("predfilter_stage_duration_seconds", `stage="match"`, e.mx.Match.Snapshot())

	x.Family("predfilter_store_duration_seconds", "Durable store operation latency.", "histogram")
	x.Histogram("predfilter_store_duration_seconds", `op="wal_append"`, e.mx.WALAppend.Snapshot())
	x.Histogram("predfilter_store_duration_seconds", `op="snapshot"`, e.mx.Snapshot.Snapshot())

	st := e.m.Stats()
	x.Family("predfilter_expressions", "Live registered expression identifiers.", "gauge")
	x.Int("predfilter_expressions", "", int64(st.SIDs))
	x.Family("predfilter_distinct_expressions", "Distinct expressions after dedup.", "gauge")
	x.Int("predfilter_distinct_expressions", "", int64(st.DistinctExpressions))
	x.Family("predfilter_distinct_predicates", "Size of the shared predicate index.", "gauge")
	x.Int("predfilter_distinct_predicates", "", int64(st.DistinctPredicates))
	x.Family("predfilter_nested_expressions", "Distinct expressions with nested path filters.", "gauge")
	x.Int("predfilter_nested_expressions", "", int64(st.NestedExpressions))

	if st.PathCacheEnabled {
		pc := st.PathCache
		x.Family("predfilter_path_cache_hits_total", "Path-signature cache hits.", "counter")
		x.Int("predfilter_path_cache_hits_total", "", pc.Hits)
		x.Family("predfilter_path_cache_misses_total", "Path-signature cache misses.", "counter")
		x.Int("predfilter_path_cache_misses_total", "", pc.Misses)
		x.Family("predfilter_path_cache_evictions_total", "Path-signature cache evictions.", "counter")
		x.Int("predfilter_path_cache_evictions_total", "", pc.Evictions)
		x.Family("predfilter_path_cache_invalidations_total", "Path-signature cache generation bumps.", "counter")
		x.Int("predfilter_path_cache_invalidations_total", "", pc.Invalidations)
		x.Family("predfilter_path_cache_entries", "Resident path-signature cache entries.", "gauge")
		x.Int("predfilter_path_cache_entries", "", int64(pc.Entries))
		x.Family("predfilter_path_cache_bytes", "Resident path-signature cache bytes.", "gauge")
		x.Int("predfilter_path_cache_bytes", "", pc.Bytes)
	}

	x.Family("predfilter_limit_trips_total", "Documents stopped by each resource-governance limit.", "counter")
	trips := e.mx.LimitTrips()
	for k := guard.Kind(0); k < guard.NumKinds; k++ {
		x.Int("predfilter_limit_trips_total", `limit="`+k.String()+`"`, trips[k])
	}
	x.Family("predfilter_panics_recovered_total", "Panics recovered by the isolation layer.", "counter")
	x.Int("predfilter_panics_recovered_total", "", e.mx.Panics.Load())

	x.Family("predfilter_stream_queue_depth", "Stream documents dispatched but not yet picked up.", "gauge")
	x.Int("predfilter_stream_queue_depth", "", e.mx.StreamQueueDepth.Load())
	x.Family("predfilter_stream_jobs_total", "Documents that entered the stream worker pool.", "counter")
	x.Int("predfilter_stream_jobs_total", "", e.mx.StreamJobs.Load())
	x.Family("predfilter_stream_batches_total", "Dispatch groups delivered to stream workers (jobs/batches = effective batch size).", "counter")
	x.Int("predfilter_stream_batches_total", "", e.mx.StreamBatches.Load())

	x.Family("predfilter_columnar_batches_total", "Batches evaluated by the columnar bitset matcher.", "counter")
	x.Int("predfilter_columnar_batches_total", "", e.mx.ColBatches.Load())
	x.Family("predfilter_columnar_docs_total", "Documents matched by the columnar bitset matcher.", "counter")
	x.Int("predfilter_columnar_docs_total", "", e.mx.ColDocs.Load())
	x.Family("predfilter_columnar_paths_total", "Paths evaluated by the columnar sweep.", "counter")
	x.Int("predfilter_columnar_paths_total", "", e.mx.ColPaths.Load())
	x.Family("predfilter_columnar_candidates_total", "Candidate bits surviving the per-path fold.", "counter")
	x.Int("predfilter_columnar_candidates_total", "", e.mx.ColCandidates.Load())
	x.Family("predfilter_columnar_ambiguous_paths_total", "Swept paths needing scalar occurrence verification (a tag repeated).", "counter")
	x.Int("predfilter_columnar_ambiguous_paths_total", "", e.mx.ColAmbiguous.Load())
	x.Family("predfilter_columnar_words_total", "Candidate-bitset words by sweep outcome: scanned vs holding at least one candidate (live/swept = occupancy).", "counter")
	x.Int("predfilter_columnar_words_total", `state="swept"`, e.mx.ColWords.Load())
	x.Int("predfilter_columnar_words_total", `state="live"`, e.mx.ColWordsLive.Load())
	x.Family("predfilter_columnar_sweep_duration_seconds", "Per-document time in pure bitset sweep work (sub-stage of occurrence).", "histogram")
	x.Histogram("predfilter_columnar_sweep_duration_seconds", "", e.mx.ColSweep.Snapshot())

	if busy := e.mx.StreamBusyNanos(); len(busy) > 0 {
		x.Family("predfilter_stream_worker_busy_seconds_total", "Cumulative per-worker busy time.", "counter")
		for wkr, ns := range busy {
			x.Value("predfilter_stream_worker_busy_seconds_total",
				`worker="`+strconv.Itoa(wkr)+`"`, float64(ns)/1e9)
		}
	}
	return x.Err()
}
