package workload

import (
	"bytes"
	"strings"
)

// Pathological document generators for the chaos/fault-injection suite
// and the xfbench guard experiment. Each targets one resource axis of the
// pipeline: nesting depth (the parser's element stack), root-to-leaf path
// count (the decomposition's memory), and occurrence-pair blowup (the
// exponential worst case of the paper's Algorithm 1). All three are tiny
// on the wire — the point is that their cost is wildly disproportionate
// to their size, which is exactly what resource governance must catch.

// DepthBomb returns a well-formed document nesting a single element chain
// depth levels deep: <d><d>...</d></d>. It decomposes into one path of
// depth tuples, so both MaxDepth and MaxTuples catch it.
func DepthBomb(depth int) []byte {
	var b bytes.Buffer
	b.Grow(7 * depth)
	for i := 0; i < depth; i++ {
		b.WriteString("<d>")
	}
	for i := 0; i < depth; i++ {
		b.WriteString("</d>")
	}
	return b.Bytes()
}

// PathBomb returns a shallow document with the given number of leaf
// children: <r><p/><p/>...</r>. Every leaf is one root-to-leaf path, so
// the decomposition materializes paths publications from a document whose
// depth is only 2.
func PathBomb(paths int) []byte {
	var b bytes.Buffer
	b.Grow(4*paths + 8)
	b.WriteString("<r>")
	for i := 0; i < paths; i++ {
		b.WriteString("<p/>")
	}
	b.WriteString("</r>")
	return b.Bytes()
}

// OccurrenceBomb returns a document and an expression whose occurrence
// determination backtracks exponentially. The document is a single chain
// of depth repetitions of one tag, so the descendant self-pair predicate
// d(p_a, p_a) yields every (i, j), i < j ≤ depth, as an occurrence pair
// (~depth²/2 of them). The expression chains steps descendant steps of
// that tag; a full chained combination is a strictly increasing sequence
// of steps occurrence numbers drawn from 1..depth, so with steps > depth
// no combination exists and the paper's Algorithm 1 visits every
// increasing sequence — Θ(2^depth) pairs — before concluding noMatch.
// Pass steps > depth to force the blowup (a matching expression returns
// quickly).
func OccurrenceBomb(depth, steps int) (doc []byte, expr string) {
	var b bytes.Buffer
	b.Grow(7 * depth)
	for i := 0; i < depth; i++ {
		b.WriteString("<a>")
	}
	for i := 0; i < depth; i++ {
		b.WriteString("</a>")
	}
	return b.Bytes(), strings.Repeat("//a", steps)
}
