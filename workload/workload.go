// Package workload generates synthetic XML documents and XPath expression
// sets for exercising the predfilter engine at scale. It wraps the
// generators used by this repository's reproduction of the paper's
// evaluation: two built-in schemas (NITF-like news markup, whose random
// expressions are highly selective, and PSD-like protein records, where
// most schema-valid expressions match), a DTD-driven document generator,
// and a random-walk expression generator with the paper's D/L/W/DO
// parameters.
package workload

import (
	"predfilter/internal/dtd"
	"predfilter/internal/xmlgen"
	"predfilter/internal/xpgen"
)

// Schema is a document type usable by both generators.
type Schema struct {
	d *dtd.DTD
}

// Name returns the schema's name ("nitf" or "psd" for the built-ins).
func (s Schema) Name() string { return s.d.Name }

// NITF returns the news-markup schema: a large, irregular, attribute-rich
// vocabulary. Randomly generated expressions are highly selective against
// its documents.
func NITF() Schema { return Schema{d: dtd.NITF()} }

// PSD returns the protein-record schema: small and regular, so most
// schema-valid expressions match most documents.
func PSD() Schema { return Schema{d: dtd.PSD()} }

// DocumentConfig controls document generation. The zero value uses
// defaults matching the paper's document scale (~140 tags per NITF
// document).
type DocumentConfig struct {
	// MaxLevels caps nesting depth (default 8; the paper varies 6-10).
	MaxLevels int
	// Seed makes generation deterministic.
	Seed int64
}

// Documents generates n serialized documents.
func Documents(s Schema, n int, cfg DocumentConfig) [][]byte {
	g := xmlgen.New(s.d, xmlgen.Config{MaxLevels: cfg.MaxLevels, Seed: cfg.Seed})
	return g.GenerateN(n)
}

// ExpressionConfig controls expression generation, in the paper's
// vocabulary.
type ExpressionConfig struct {
	// MaxLength is L, the maximum location-step count (default 6).
	MaxLength int
	// Wildcard is W, the per-step probability of "*" (paper default 0.2).
	Wildcard float64
	// Descendant is DO, the per-step probability of "//" (paper default
	// 0.2).
	Descendant float64
	// Distinct is D: discard duplicates until the requested count of
	// distinct expressions is reached.
	Distinct bool
	// Filters is the number of attribute filters attached per expression.
	Filters int
	// Seed makes generation deterministic.
	Seed int64
}

// Expressions generates n expressions. With Distinct set it fails loudly
// when the schema cannot yield that many distinct expressions.
func Expressions(s Schema, n int, cfg ExpressionConfig) ([]string, error) {
	return xpgen.Generate(s.d, xpgen.Config{
		Count:      n,
		MaxLength:  cfg.MaxLength,
		Wildcard:   cfg.Wildcard,
		Descendant: cfg.Descendant,
		Distinct:   cfg.Distinct,
		Filters:    cfg.Filters,
		Seed:       cfg.Seed,
	})
}
