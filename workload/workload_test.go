package workload

import (
	"bytes"
	"reflect"
	"testing"

	"predfilter"
)

func TestSchemas(t *testing.T) {
	if NITF().Name() != "nitf" {
		t.Errorf("NITF name = %q", NITF().Name())
	}
	if PSD().Name() != "psd" {
		t.Errorf("PSD name = %q", PSD().Name())
	}
}

func TestDocumentsDeterministic(t *testing.T) {
	a := Documents(NITF(), 3, DocumentConfig{Seed: 9})
	b := Documents(NITF(), 3, DocumentConfig{Seed: 9})
	for i := range a {
		if !bytes.Equal(a[i], b[i]) {
			t.Fatalf("document %d differs for same seed", i)
		}
	}
	c := Documents(NITF(), 1, DocumentConfig{Seed: 10})
	if bytes.Equal(a[0], c[0]) {
		t.Error("different seeds produced identical documents")
	}
	for i, d := range a {
		if _, err := predfilter.ParseDocument(d); err != nil {
			t.Errorf("document %d is not well-formed: %v", i, err)
		}
	}
}

func TestExpressionsDeterministic(t *testing.T) {
	cfg := ExpressionConfig{Wildcard: 0.2, Descendant: 0.2, Seed: 9}
	a, err := Expressions(PSD(), 50, cfg)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Expressions(PSD(), 50, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(a, b) {
		t.Error("same seed produced different expressions")
	}
	eng := predfilter.New(predfilter.Config{})
	if _, err := eng.AddAll(a); err != nil {
		t.Fatalf("generated expression rejected by the engine: %v", err)
	}
}

func TestExpressionsSaturation(t *testing.T) {
	if _, err := Expressions(PSD(), 1000, ExpressionConfig{MaxLength: 1, Distinct: true}); err == nil {
		t.Error("saturated configuration did not error")
	}
}

func TestMaxLevels(t *testing.T) {
	docs := Documents(PSD(), 5, DocumentConfig{MaxLevels: 4, Seed: 2})
	for _, d := range docs {
		doc, err := predfilter.ParseDocument(d)
		if err != nil {
			t.Fatal(err)
		}
		if doc.Elements() == 0 {
			t.Error("empty document")
		}
	}
	// Deep expressions cannot match shallow documents.
	eng := predfilter.New(predfilter.Config{})
	sid, err := eng.Add("/*/*/*/*/*")
	if err != nil {
		t.Fatal(err)
	}
	for _, d := range docs {
		sids, err := eng.Match(d)
		if err != nil {
			t.Fatal(err)
		}
		for _, s := range sids {
			if s == sid {
				t.Error("length-5 expression matched a MaxLevels=4 document")
			}
		}
	}
}
