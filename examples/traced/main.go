// Traced matching: ask the engine to explain, per expression and per
// document path, which chain predicates hit, which came up empty, and
// what each pipeline stage cost — the same explanation xfserve serves on
// POST /publish?trace=1 and xfilter prints with -trace.
//
//	go run ./examples/traced
package main

import (
	"fmt"
	"log"
	"time"

	"predfilter"
)

const doc = `
<feed>
  <alert level="high"><region>west</region></alert>
  <trade sym="XAU"><qty>10</qty></trade>
</feed>`

func main() {
	eng := predfilter.New(predfilter.Config{})

	subscriptions := []string{
		`/feed/alert[@level="high"]`, // hits: both predicates produce pairs
		`/feed/alert[@level="low"]`,  // misses at the attribute predicate
		`/feed/crash`,                // misses structurally
		`//qty`,                      // hits on the trade path
	}
	for _, s := range subscriptions {
		if _, err := eng.Add(s); err != nil {
			log.Fatal(err)
		}
	}

	sids, tr, err := eng.MatchTraced([]byte(doc))
	if err != nil {
		log.Fatal(err)
	}

	// The match result is the authoritative fast-path answer; the trace
	// is the slow explanation pass laid over it.
	fmt.Printf("matched %d of %d subscriptions over %d document paths\n",
		len(sids), len(subscriptions), tr.Paths)
	fmt.Printf("stage costs: parse %v, cache %v, predicate match %v, occurrence %v (explanation itself: %v)\n\n",
		time.Duration(tr.ParseNanos), time.Duration(tr.CacheNanos),
		time.Duration(tr.PredMatchNanos), time.Duration(tr.OccurNanos),
		time.Duration(tr.TraceNanos))

	for _, e := range tr.Exprs {
		verdict := "miss"
		if e.Matched {
			verdict = "HIT"
		}
		fmt.Printf("[%-4s] %s\n", verdict, e.Expr)
		if len(e.Paths) == 0 {
			fmt.Println("       no path produced a single predicate hit")
		}
		for _, p := range e.Paths {
			fmt.Printf("       %s  (chain depth %d, %d search steps)\n",
				p.Path, p.MaxDepth, p.Steps)
			for _, pe := range p.Predicates {
				mark := "miss"
				if pe.Hit {
					mark = "hit "
				}
				fmt.Printf("         %s %s  %d occurrence pair(s)\n",
					mark, pe.Predicate, pe.TotalPairs)
			}
		}
	}
}
