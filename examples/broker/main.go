// Broker: a tiny TCP publish/subscribe broker built on the filtering
// engine — the content-based message routing scenario of the paper's
// introduction. Clients speak a line protocol:
//
//	SUB <xpath-expression>\n        → OK <id>
//	PUB <single-line-xml>\n         → OK <n> (n subscribers notified)
//
// Every subscriber connection receives "MATCH <id> <xml>" lines for the
// documents matching its subscriptions. The demo starts a broker on a
// loopback port, connects three subscriber clients and a publisher, and
// routes a few documents.
//
//	go run ./examples/broker
package main

import (
	"bufio"
	"fmt"
	"log"
	"net"
	"strings"
	"sync"
	"time"

	"predfilter"
)

// broker routes published documents to matching subscribers.
type broker struct {
	eng *predfilter.Engine

	mu   sync.Mutex
	subs map[predfilter.SID]*subscriber
}

type subscriber struct {
	conn net.Conn
	mu   sync.Mutex
}

func (s *subscriber) send(line string) {
	s.mu.Lock()
	defer s.mu.Unlock()
	fmt.Fprintln(s.conn, line)
}

func newBroker() *broker {
	return &broker{
		eng:  predfilter.New(predfilter.Config{}),
		subs: make(map[predfilter.SID]*subscriber),
	}
}

func (b *broker) serve(ln net.Listener) {
	for {
		conn, err := ln.Accept()
		if err != nil {
			return
		}
		go b.handle(conn)
	}
}

func (b *broker) handle(conn net.Conn) {
	defer conn.Close()
	sub := &subscriber{conn: conn}
	sc := bufio.NewScanner(conn)
	sc.Buffer(make([]byte, 0, 1<<20), 1<<20)
	for sc.Scan() {
		line := sc.Text()
		switch {
		case strings.HasPrefix(line, "SUB "):
			xpe := strings.TrimSpace(line[4:])
			b.mu.Lock()
			sid, err := b.eng.Add(xpe)
			if err == nil {
				b.subs[sid] = sub
			}
			b.mu.Unlock()
			if err != nil {
				sub.send("ERR " + err.Error())
				continue
			}
			sub.send(fmt.Sprintf("OK %d", sid))
		case strings.HasPrefix(line, "PUB "):
			doc := line[4:]
			b.mu.Lock()
			sids, err := b.eng.Match([]byte(doc))
			var targets []struct {
				sid predfilter.SID
				s   *subscriber
			}
			if err == nil {
				for _, sid := range sids {
					if s, ok := b.subs[sid]; ok {
						targets = append(targets, struct {
							sid predfilter.SID
							s   *subscriber
						}{sid, s})
					}
				}
			}
			b.mu.Unlock()
			if err != nil {
				sub.send("ERR " + err.Error())
				continue
			}
			for _, t := range targets {
				t.s.send(fmt.Sprintf("MATCH %d %s", t.sid, doc))
			}
			sub.send(fmt.Sprintf("OK %d", len(targets)))
		case line == "QUIT":
			return
		default:
			sub.send("ERR unknown command")
		}
	}
}

// client is a minimal demo client.
type client struct {
	name string
	conn net.Conn
	rd   *bufio.Reader
}

func dial(addr, name string) *client {
	conn, err := net.Dial("tcp", addr)
	if err != nil {
		log.Fatal(err)
	}
	return &client{name: name, conn: conn, rd: bufio.NewReader(conn)}
}

func (c *client) cmd(line string) string {
	fmt.Fprintln(c.conn, line)
	resp, err := c.rd.ReadString('\n')
	if err != nil {
		log.Fatalf("%s: %v", c.name, err)
	}
	return strings.TrimSpace(resp)
}

// drain prints pushed MATCH lines until the deadline passes.
func (c *client) drain(d time.Duration) int {
	n := 0
	deadline := time.Now().Add(d)
	for {
		if err := c.conn.SetReadDeadline(deadline); err != nil {
			return n
		}
		line, err := c.rd.ReadString('\n')
		if err != nil {
			return n
		}
		fmt.Printf("  %s received: %s\n", c.name, strings.TrimSpace(line))
		n++
	}
}

func main() {
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		log.Fatal(err)
	}
	b := newBroker()
	go b.serve(ln)
	addr := ln.Addr().String()
	fmt.Printf("broker listening on %s\n\n", addr)

	weather := dial(addr, "weather-svc")
	fmt.Printf("weather-svc subscribes: %s\n", weather.cmd("SUB //alert[@kind=weather]"))
	trades := dial(addr, "trade-svc")
	fmt.Printf("trade-svc subscribes:   %s\n", trades.cmd("SUB /feed/trade[@sym=ACME]//px"))
	audit := dial(addr, "audit-svc")
	fmt.Printf("audit-svc subscribes:   %s\n\n", audit.cmd("SUB /feed/*"))

	pub := dial(addr, "publisher")
	docs := []string{
		`<feed><alert kind="weather"><msg>storm warning</msg></alert></feed>`,
		`<feed><trade sym="ACME"><px>101</px></trade></feed>`,
		`<feed><trade sym="OTHER"><px>7</px></trade></feed>`,
		`<note>not a feed at all</note>`,
	}
	for _, d := range docs {
		fmt.Printf("publish %s → %s\n", d, pub.cmd("PUB "+d))
	}
	fmt.Println()

	total := 0
	for _, c := range []*client{weather, trades, audit} {
		total += c.drain(200 * time.Millisecond)
	}
	fmt.Printf("\n%d notifications delivered\n", total)
}
