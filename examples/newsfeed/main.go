// Newsfeed: selective dissemination of NITF-style news documents — the
// motivating application of the paper's introduction. Thousands of
// subscribers register fine-grained interests (structure plus attribute
// filters); a stream of generated news documents is routed to exactly the
// subscribers whose interests match.
//
//	go run ./examples/newsfeed
package main

import (
	"fmt"
	"log"
	"time"

	"predfilter"
	"predfilter/workload"
)

func main() {
	eng := predfilter.New(predfilter.Config{
		AttributeMode: predfilter.PostponedAttributes, // news interests are selective
	})

	// A few named subscribers with hand-written interests...
	named := map[string]string{
		"sports-desk":    "/nitf/head/tobject[@tobject.type=news]",
		"urgent-wire":    "//urgency[@ed-urg=1]",
		"storm-tracker":  "//key-list/keyword[@key=storm]",
		"markets-bot":    "/nitf/body//money",
		"photo-editor":   "//media[@media-type=image]/media-reference",
		"ca-bureau":      "//location/country[@iso-cc=ca]",
		"correction-log": "/nitf/head/docdata/correction",
	}
	subscriber := make(map[predfilter.SID]string)
	for name, xpe := range named {
		sid, err := eng.Add(xpe)
		if err != nil {
			log.Fatalf("%s: %v", name, err)
		}
		subscriber[sid] = name
	}

	// ...plus a synthetic population of 20k machine-generated interests.
	nitf := workload.NITF()
	bulk, err := workload.Expressions(nitf, 20000, workload.ExpressionConfig{
		Wildcard: 0.2, Descendant: 0.2, Filters: 1, Seed: 7,
	})
	if err != nil {
		log.Fatal(err)
	}
	for i, xpe := range bulk {
		sid, err := eng.Add(xpe)
		if err != nil {
			log.Fatalf("bulk %d %q: %v", i, xpe, err)
		}
		subscriber[sid] = fmt.Sprintf("user-%05d", i)
	}

	st := eng.Stats()
	fmt.Printf("newsfeed: %d subscriptions, %d distinct expressions, %d distinct predicates\n\n",
		st.Expressions, st.DistinctExpressions, st.DistinctPredicates)

	// Route a stream of generated news documents.
	docs := workload.Documents(nitf, 20, workload.DocumentConfig{Seed: time.Now().UnixNano() % 1000})
	var totalMatches int
	var totalTime time.Duration
	for i, doc := range docs {
		t0 := time.Now()
		sids, err := eng.Match(doc)
		took := time.Since(t0)
		if err != nil {
			log.Fatal(err)
		}
		totalMatches += len(sids)
		totalTime += took
		namedHits := 0
		for _, sid := range sids {
			if _, ok := named[subscriber[sid]]; ok {
				namedHits++
			}
		}
		fmt.Printf("story %2d (%5d bytes): %5d subscribers notified (%d named desks) in %v\n",
			i+1, len(doc), len(sids), namedHits, took.Round(time.Microsecond))
	}
	fmt.Printf("\nrouted %d stories, %d notifications, avg filter time %v\n",
		len(docs), totalMatches, (totalTime / time.Duration(len(docs))).Round(time.Microsecond))
}
