// Protein: annotation routing over PSD-style protein records — the
// high-match regime where the predicate-based engine shines. The example
// registers the same expression set in all three engine organizations
// (basic, prefix covering, prefix covering + access predicates) and in
// both attribute evaluation modes, then compares their filter times on
// one generated record stream.
//
//	go run ./examples/protein
package main

import (
	"fmt"
	"log"
	"time"

	"predfilter"
	"predfilter/workload"
)

func main() {
	psd := workload.PSD()
	exprs, err := workload.Expressions(psd, 8000, workload.ExpressionConfig{
		Wildcard: 0.2, Descendant: 0.2, Distinct: true, Filters: 1, Seed: 11,
	})
	if err != nil {
		log.Fatal(err)
	}
	docs := workload.Documents(psd, 40, workload.DocumentConfig{Seed: 11})

	// Parse each record once; the parsed form is shared by every engine.
	parsed := make([]*predfilter.Document, len(docs))
	for i, d := range docs {
		p, err := predfilter.ParseDocument(d)
		if err != nil {
			log.Fatal(err)
		}
		parsed[i] = p
	}
	fmt.Printf("protein: %d expressions over %d records (%d elements, %d paths in record 1)\n\n",
		len(exprs), len(docs), parsed[0].Elements(), parsed[0].Paths())

	configs := []struct {
		name string
		cfg  predfilter.Config
	}{
		{"basic / inline", predfilter.Config{Organization: predfilter.Basic}},
		{"basic-pc / inline", predfilter.Config{Organization: predfilter.PrefixCover}},
		{"basic-pc-ap / inline", predfilter.Config{Organization: predfilter.PrefixCoverAP}},
		{"basic-pc-ap / postponed", predfilter.Config{
			Organization:  predfilter.PrefixCoverAP,
			AttributeMode: predfilter.PostponedAttributes,
		}},
	}
	var firstMatches int
	for _, c := range configs {
		eng := predfilter.New(c.cfg)
		if _, err := eng.AddAll(exprs); err != nil {
			log.Fatal(err)
		}
		var matches int
		t0 := time.Now()
		for _, p := range parsed {
			matches += len(eng.MatchParsed(p))
		}
		took := time.Since(t0)
		if firstMatches == 0 {
			firstMatches = matches
		} else if matches != firstMatches {
			log.Fatalf("%s disagreed: %d matches vs %d", c.name, matches, firstMatches)
		}
		st := eng.Stats()
		fmt.Printf("%-24s %8v/record  %d notifications  (%d distinct predicates)\n",
			c.name, (took / time.Duration(len(parsed))).Round(time.Microsecond), matches, st.DistinctPredicates)
	}
	fmt.Printf("\nall configurations agree on %d notifications (%.0f%% of expressions match per record)\n",
		firstMatches, 100*float64(firstMatches)/float64(len(exprs)*len(parsed)))
}
