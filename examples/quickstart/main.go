// Quickstart: register a handful of XPath expressions and filter one XML
// document through them.
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"

	"predfilter"
)

const doc = `
<order status="open">
  <customer tier="gold">
    <name>Ada</name>
    <address><city>Toronto</city></address>
  </customer>
  <items>
    <item sku="17" qty="2"><price currency="cad">19</price></item>
    <item sku="42" qty="1"><price currency="usd">350</price></item>
  </items>
</order>`

func main() {
	eng := predfilter.New(predfilter.Config{})

	subscriptions := []string{
		"/order/items/item",               // any order line
		"/order/customer[@tier=gold]",     // gold customers
		"//price[@currency=usd]",          // anything priced in USD
		"/order/items/item[@qty>=3]",      // bulk lines (won't match)
		"/order/*/address//city",          // city anywhere under an address
		"/order[customer/address]//price", // nested path filter
		"/order/customer[@tier=silver]",   // silver customers (won't match)
	}

	bySID := make(map[predfilter.SID]string)
	for _, s := range subscriptions {
		sid, err := eng.Add(s)
		if err != nil {
			log.Fatalf("register %q: %v", s, err)
		}
		bySID[sid] = s
	}

	st := eng.Stats()
	fmt.Printf("registered %d expressions (%d distinct predicates shared)\n\n",
		st.Expressions, st.DistinctPredicates)

	matches, err := eng.Match([]byte(doc))
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("document matched %d of %d expressions:\n", len(matches), len(subscriptions))
	for _, sid := range matches {
		fmt.Printf("  %s\n", bySID[sid])
	}
}
