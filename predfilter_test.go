package predfilter_test

import (
	"strings"
	"sync"
	"testing"

	"predfilter"
	"predfilter/workload"
)

const sampleDoc = `
<order status="open">
  <customer tier="gold"><name>Ada</name></customer>
  <items>
    <item sku="17" qty="2"><price currency="cad">19</price></item>
    <item sku="42" qty="1"><price currency="usd">350</price></item>
  </items>
</order>`

func TestEngineBasics(t *testing.T) {
	eng := predfilter.New(predfilter.Config{})
	cases := []struct {
		xpe  string
		want bool
	}{
		{"/order/items/item", true},
		{"/order/customer[@tier=gold]", true},
		{"//price[@currency=usd]", true},
		{"/order/items/item[@qty>=3]", false},
		{"/order[customer]//price", true},
		{"/order/customer[@tier=silver]", false},
		{"*/*/item", true},
		{"/order//sku", false},
	}
	sids := make([]predfilter.SID, len(cases))
	for i, tc := range cases {
		sid, err := eng.Add(tc.xpe)
		if err != nil {
			t.Fatalf("Add(%q): %v", tc.xpe, err)
		}
		sids[i] = sid
	}
	got, err := eng.Match([]byte(sampleDoc))
	if err != nil {
		t.Fatal(err)
	}
	set := make(map[predfilter.SID]bool)
	for _, s := range got {
		set[s] = true
	}
	for i, tc := range cases {
		if set[sids[i]] != tc.want {
			t.Errorf("%q: matched=%v, want %v", tc.xpe, set[sids[i]], tc.want)
		}
	}
}

func TestEngineConfigsAgree(t *testing.T) {
	configs := []predfilter.Config{
		{},
		{Organization: predfilter.Basic},
		{Organization: predfilter.PrefixCover},
		{AttributeMode: predfilter.PostponedAttributes},
		{DisablePathDedup: true},
	}
	nitf := workload.NITF()
	xpes, err := workload.Expressions(nitf, 500, workload.ExpressionConfig{Wildcard: 0.2, Descendant: 0.2, Filters: 1, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	docs := workload.Documents(nitf, 5, workload.DocumentConfig{Seed: 3})
	var counts []int
	for _, cfg := range configs {
		eng := predfilter.New(cfg)
		if _, err := eng.AddAll(xpes); err != nil {
			t.Fatal(err)
		}
		total := 0
		for _, d := range docs {
			sids, err := eng.Match(d)
			if err != nil {
				t.Fatal(err)
			}
			total += len(sids)
		}
		counts = append(counts, total)
	}
	for i := 1; i < len(counts); i++ {
		if counts[i] != counts[0] {
			t.Errorf("config %d matched %d, config 0 matched %d", i, counts[i], counts[0])
		}
	}
}

func TestEngineErrors(t *testing.T) {
	eng := predfilter.New(predfilter.Config{})
	if _, err := eng.Add("not an xpath ["); err == nil {
		t.Error("Add accepted garbage")
	}
	if _, err := eng.Match([]byte("<a><b></a>")); err == nil {
		t.Error("Match accepted malformed XML")
	}
	if err := eng.Remove(99); err == nil {
		t.Error("Remove accepted an unknown sid")
	}
	if _, err := eng.AddAll([]string{"/a", "]bad["}); err == nil {
		t.Error("AddAll accepted garbage")
	}
}

func TestMatchReaderAndParsed(t *testing.T) {
	eng := predfilter.New(predfilter.Config{})
	sid, err := eng.Add("/order//price")
	if err != nil {
		t.Fatal(err)
	}
	got, err := eng.MatchReader(strings.NewReader(sampleDoc))
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 1 || got[0] != sid {
		t.Errorf("MatchReader = %v", got)
	}
	doc, err := predfilter.ParseDocument([]byte(sampleDoc))
	if err != nil {
		t.Fatal(err)
	}
	if doc.Elements() != 8 {
		t.Errorf("Elements = %d, want 8", doc.Elements())
	}
	if doc.Paths() != 3 { // leaves: name, price, price
		t.Errorf("Paths = %d, want 3", doc.Paths())
	}
	if got := eng.MatchParsed(doc); len(got) != 1 || got[0] != sid {
		t.Errorf("MatchParsed = %v", got)
	}
}

func TestStats(t *testing.T) {
	eng := predfilter.New(predfilter.Config{})
	for _, s := range []string{"/a/b", "/a/b", "/a/c", "/a[b]/c"} {
		if _, err := eng.Add(s); err != nil {
			t.Fatal(err)
		}
	}
	st := eng.Stats()
	if st.Expressions != 4 {
		t.Errorf("Expressions = %d, want 4", st.Expressions)
	}
	if st.DistinctExpressions != 3 {
		t.Errorf("DistinctExpressions = %d, want 3", st.DistinctExpressions)
	}
	if st.NestedExpressions != 1 {
		t.Errorf("NestedExpressions = %d, want 1", st.NestedExpressions)
	}
	if st.DistinctPredicates == 0 {
		t.Error("DistinctPredicates = 0")
	}
}

// TestConcurrentMatch exercises the documented concurrency contract:
// concurrent Match calls against a built engine.
func TestConcurrentMatch(t *testing.T) {
	eng := predfilter.New(predfilter.Config{})
	nitf := workload.NITF()
	xpes, err := workload.Expressions(nitf, 2000, workload.ExpressionConfig{Wildcard: 0.2, Descendant: 0.2, Seed: 5})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := eng.AddAll(xpes); err != nil {
		t.Fatal(err)
	}
	docs := workload.Documents(nitf, 8, workload.DocumentConfig{Seed: 5})

	// Baseline counts, single-threaded.
	want := make([]int, len(docs))
	for i, d := range docs {
		sids, err := eng.Match(d)
		if err != nil {
			t.Fatal(err)
		}
		want[i] = len(sids)
	}

	var wg sync.WaitGroup
	errs := make(chan error, 64)
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i, d := range docs {
				sids, err := eng.Match(d)
				if err != nil {
					errs <- err
					return
				}
				if len(sids) != want[i] {
					t.Errorf("goroutine %d doc %d: %d matches, want %d", g, i, len(sids), want[i])
					return
				}
			}
		}(g)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Error(err)
	}
}

func TestWorkloadPackage(t *testing.T) {
	psd := workload.PSD()
	if psd.Name() != "psd" {
		t.Errorf("Name = %q", psd.Name())
	}
	docs := workload.Documents(psd, 3, workload.DocumentConfig{MaxLevels: 6, Seed: 1})
	if len(docs) != 3 {
		t.Fatalf("docs = %d", len(docs))
	}
	for _, d := range docs {
		if _, err := predfilter.ParseDocument(d); err != nil {
			t.Fatalf("generated document does not parse: %v", err)
		}
	}
	xpes, err := workload.Expressions(psd, 100, workload.ExpressionConfig{Wildcard: 0.2, Descendant: 0.2, Distinct: true, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	eng := predfilter.New(predfilter.Config{})
	if _, err := eng.AddAll(xpes); err != nil {
		t.Fatal(err)
	}
	sids, err := eng.Match(docs[0])
	if err != nil {
		t.Fatal(err)
	}
	if len(sids) == 0 {
		t.Error("no PSD expressions matched a PSD document; the high-match regime is broken")
	}
}

func TestValidateAndExplain(t *testing.T) {
	if err := predfilter.Validate("/a//b[@x>=2]"); err != nil {
		t.Errorf("Validate rejected a valid expression: %v", err)
	}
	if err := predfilter.Validate("]["); err == nil {
		t.Error("Validate accepted garbage")
	}
	if err := predfilter.Validate("/a/*[@x=1]"); err == nil {
		t.Error("Validate accepted a filter on a wildcard step")
	}

	enc, err := predfilter.Explain("a//b/c")
	if err != nil {
		t.Fatal(err)
	}
	if enc != "(d(p_a, p_b), >=, 1) ↦ (d(p_b, p_c), =, 1)" {
		t.Errorf("Explain(a//b/c) = %q", enc)
	}

	nested, err := predfilter.Explain("/a[*/c[d]/e]//c[d]/e")
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"main /a//c/e", "(pos, =, 1) /a/*/c/e", "(pos, =, 3) /a/*/c/d", "(pos, =, 2) /a//c/d"} {
		if !strings.Contains(nested, want) {
			t.Errorf("Explain nested missing %q:\n%s", want, nested)
		}
	}

	if _, err := predfilter.Explain("]["); err == nil {
		t.Error("Explain accepted garbage")
	}
}

// TestIntroductionExample ties to the paper's §1 motivating example: in
// s1 = a/b/c/d and s2 = b//b/c the overlapping fragment b/c becomes one
// shared predicate, "stored and processed once".
func TestIntroductionExample(t *testing.T) {
	eng := predfilter.New(predfilter.Config{})
	if _, err := eng.Add("a/b/c/d"); err != nil {
		t.Fatal(err)
	}
	before := eng.Stats().DistinctPredicates // d(a,b), d(b,c), d(c,d)
	if before != 3 {
		t.Fatalf("s1 produced %d predicates, want 3", before)
	}
	if _, err := eng.Add("b//b/c"); err != nil {
		t.Fatal(err)
	}
	after := eng.Stats().DistinctPredicates
	// s2 adds only d(b,b)>= — its (d(b,c),=,1) is shared with s1.
	if after != before+1 {
		t.Errorf("s2 added %d predicates, want 1 (b/c shared)", after-before)
	}

	enc1, _ := predfilter.Explain("a/b/c/d")
	enc2, _ := predfilter.Explain("b//b/c")
	shared := "(d(p_b, p_c), =, 1)"
	if !strings.Contains(enc1, shared) || !strings.Contains(enc2, shared) {
		t.Errorf("shared predicate %s missing:\n  %s\n  %s", shared, enc1, enc2)
	}
}

// TestExtensionConfigsAgree: the public extension toggles must not change
// results.
func TestExtensionConfigsAgree(t *testing.T) {
	configs := []predfilter.Config{
		{},
		{ContainmentCovering: true},
		{RarestAccessPredicate: true},
		{ContainmentCovering: true, RarestAccessPredicate: true},
	}
	psd := workload.PSD()
	xpes, err := workload.Expressions(psd, 400, workload.ExpressionConfig{Wildcard: 0.2, Descendant: 0.2, Seed: 9})
	if err != nil {
		t.Fatal(err)
	}
	docs := workload.Documents(psd, 4, workload.DocumentConfig{Seed: 9})
	var counts []int
	for _, cfg := range configs {
		eng := predfilter.New(cfg)
		if _, err := eng.AddAll(xpes); err != nil {
			t.Fatal(err)
		}
		total := 0
		for _, d := range docs {
			sids, err := eng.Match(d)
			if err != nil {
				t.Fatal(err)
			}
			total += len(sids)
		}
		counts = append(counts, total)
	}
	for i := 1; i < len(counts); i++ {
		if counts[i] != counts[0] {
			t.Errorf("extension config %d matched %d, default matched %d", i, counts[i], counts[0])
		}
	}
}

// TestMatchCountsPublic exercises the all-matches mode via the public API.
func TestMatchCountsPublic(t *testing.T) {
	eng := predfilter.New(predfilter.Config{})
	sid, err := eng.Add("//item")
	if err != nil {
		t.Fatal(err)
	}
	counts, err := eng.MatchCounts([]byte(`<o><item/><item/><item/></o>`))
	if err != nil {
		t.Fatal(err)
	}
	if counts[sid] != 3 {
		t.Errorf("count = %d, want 3", counts[sid])
	}
	if _, err := eng.MatchCounts([]byte("<bad>")); err == nil {
		t.Error("MatchCounts accepted malformed XML")
	}
}
