package predfilter_test

import (
	"bytes"
	"log/slog"
	"math"
	"strings"
	"sync"
	"testing"
	"time"

	"predfilter"
	"predfilter/internal/metrics"
)

// TestHitRateEdgeCases pins the PathCacheStats.HitRate contract: 0 before
// any lookup, and overflow-free near the int64 limit (a naive
// hits+misses sum would wrap negative and return a rate outside [0,1]).
func TestHitRateEdgeCases(t *testing.T) {
	var zero predfilter.PathCacheStats
	if got := zero.HitRate(); got != 0 {
		t.Fatalf("HitRate with zero lookups = %v, want 0", got)
	}
	huge := predfilter.PathCacheStats{Hits: math.MaxInt64 - 1, Misses: math.MaxInt64 - 1}
	got := huge.HitRate()
	if got < 0 || got > 1 || math.IsNaN(got) {
		t.Fatalf("HitRate near MaxInt64 = %v, want within [0,1]", got)
	}
	if math.Abs(got-0.5) > 1e-9 {
		t.Fatalf("HitRate with equal huge counts = %v, want 0.5", got)
	}
	allHits := predfilter.PathCacheStats{Hits: math.MaxInt64}
	if got := allHits.HitRate(); got != 1 {
		t.Fatalf("HitRate with MaxInt64 hits only = %v, want 1", got)
	}
}

// TestStatsSnapshotDuringMatches reads Stats while matchers run: every
// snapshot must be sane (non-negative, monotone counters), and the final
// quiescent snapshot exact. The counters are loaded one by one, not
// atomically as a set, so cross-counter inequalities are only asserted at
// quiescence. Run with -race this also checks the counter loads against
// the hot-path writers.
func TestStatsSnapshotDuringMatches(t *testing.T) {
	eng := predfilter.New(predfilter.Config{})
	if _, err := eng.Add("/order/items/item"); err != nil {
		t.Fatal(err)
	}
	doc := []byte(sampleDoc)

	const matchers = 4
	const perMatcher = 50
	var wg sync.WaitGroup
	stop := make(chan struct{})
	wg.Add(matchers)
	for i := 0; i < matchers; i++ {
		go func() {
			defer wg.Done()
			for j := 0; j < perMatcher; j++ {
				if _, err := eng.Match(doc); err != nil {
					t.Error(err)
					return
				}
			}
		}()
	}
	go func() { wg.Wait(); close(stop) }()

	var lastDocs int64
	for alive := true; alive; {
		select {
		case <-stop:
			alive = false
		default:
		}
		st := eng.Stats()
		if st.Documents < lastDocs {
			t.Fatalf("Documents went backwards: %d -> %d", lastDocs, st.Documents)
		}
		lastDocs = st.Documents
		if st.Matches < 0 || st.Paths < 0 || st.DocBytes < 0 {
			t.Fatalf("negative counter in snapshot: %+v", st)
		}
		if st.Matches > int64(matchers*perMatcher) {
			t.Fatalf("matches %d exceed total work %d", st.Matches, matchers*perMatcher)
		}
	}

	st := eng.Stats()
	want := int64(matchers * perMatcher)
	if st.Documents != want || st.Matches != want {
		t.Fatalf("final counters docs=%d matches=%d, want %d each", st.Documents, st.Matches, want)
	}
	if st.Stages.Match.Count != uint64(want) || st.Stages.Parse.Count != uint64(want) {
		t.Fatalf("final histogram counts %+v, want %d", st.Stages, want)
	}
	if st.Stages.Match.P50Nanos <= 0 || st.Stages.Match.TotalNanos <= 0 {
		t.Fatalf("match stage summary lacks timings: %+v", st.Stages.Match)
	}
}

// TestSlowDocLogging: with a 1ns threshold every document is slow; the
// record must land on the configured logger with the stage attributes,
// and the SlowDocs counter must advance. A disabled threshold logs
// nothing.
func TestSlowDocLogging(t *testing.T) {
	var buf bytes.Buffer
	var mu sync.Mutex
	h := slog.NewJSONHandler(lockedWriter{&buf, &mu}, &slog.HandlerOptions{Level: slog.LevelWarn})
	eng := predfilter.New(predfilter.Config{
		SlowDocThreshold: time.Nanosecond,
		Logger:           slog.New(h),
	})
	if _, err := eng.Add("/order/items/item"); err != nil {
		t.Fatal(err)
	}
	if _, err := eng.Match([]byte(sampleDoc)); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{"slow document", "total_ns", "parse_ns", "match_ns", "pred_match_ns", `"paths":`} {
		if !strings.Contains(out, want) {
			t.Errorf("slow-doc record missing %q:\n%s", want, out)
		}
	}
	if got := eng.Stats().SlowDocs; got != 1 {
		t.Fatalf("SlowDocs = %d, want 1", got)
	}

	// The streaming path logs too (without the per-stage breakdown).
	buf.Reset()
	for _, r := range eng.MatchBatch([][]byte{[]byte(sampleDoc)}, 2) {
		if r.Err != nil {
			t.Fatal(r.Err)
		}
	}
	if out := buf.String(); !strings.Contains(out, "slow document") {
		t.Fatalf("streaming slow document not logged:\n%s", out)
	}
	if got := eng.Stats().SlowDocs; got != 2 {
		t.Fatalf("SlowDocs after batch = %d, want 2", got)
	}

	quiet := predfilter.New(predfilter.Config{Logger: slog.New(slog.NewJSONHandler(&buf, nil))})
	buf.Reset()
	if _, err := quiet.Add("/order/items/item"); err != nil {
		t.Fatal(err)
	}
	if _, err := quiet.Match([]byte(sampleDoc)); err != nil {
		t.Fatal(err)
	}
	if buf.Len() != 0 {
		t.Fatalf("threshold disabled but logged: %s", buf.String())
	}
	if got := quiet.Stats().SlowDocs; got != 0 {
		t.Fatalf("SlowDocs without threshold = %d, want 0", got)
	}
}

// lockedWriter serializes handler writes: the streaming branch logs from
// worker goroutines.
type lockedWriter struct {
	w  *bytes.Buffer
	mu *sync.Mutex
}

func (lw lockedWriter) Write(p []byte) (int, error) {
	lw.mu.Lock()
	defer lw.mu.Unlock()
	return lw.w.Write(p)
}

// TestMatchTracedPublicAPI exercises the trace through the engine: the
// authoritative result agrees with Match, the parse stage is costed, and
// both a hit and a miss carry predicate-level evidence.
func TestMatchTracedPublicAPI(t *testing.T) {
	eng := predfilter.New(predfilter.Config{})
	hit, err := eng.Add("/order/customer[@tier=gold]")
	if err != nil {
		t.Fatal(err)
	}
	miss, err := eng.Add("/order/customer[@tier=iron]")
	if err != nil {
		t.Fatal(err)
	}
	sids, tr, err := eng.MatchTraced([]byte(sampleDoc))
	if err != nil {
		t.Fatal(err)
	}
	if len(sids) != 1 || sids[0] != hit {
		t.Fatalf("traced sids = %v, want [%d]", sids, hit)
	}
	if tr.ParseNanos <= 0 || tr.TotalNanos <= 0 {
		t.Fatalf("trace lacks stage costs: %+v", tr)
	}
	var sawHit, sawMiss bool
	for _, e := range tr.Exprs {
		for _, s := range e.SIDs {
			if s == hit && e.Matched {
				sawHit = true
				if len(e.Paths) == 0 {
					t.Fatalf("hit without path evidence: %+v", e)
				}
			}
			if s == miss && !e.Matched {
				sawMiss = true
			}
		}
	}
	if !sawHit || !sawMiss {
		t.Fatalf("trace explains hit=%v miss=%v, want both: %+v", sawHit, sawMiss, tr.Exprs)
	}
}

// TestStreamMetricsObserved: after a batch, the stream instrumentation
// must account for every document (jobs counter, busy time) and the queue
// gauge must read zero again.
func TestStreamMetricsObserved(t *testing.T) {
	eng := predfilter.New(predfilter.Config{})
	if _, err := eng.Add("/order/items/item"); err != nil {
		t.Fatal(err)
	}
	docs := make([][]byte, 20)
	for i := range docs {
		docs[i] = []byte(sampleDoc)
	}
	for _, r := range eng.MatchBatch(docs, 3) {
		if r.Err != nil {
			t.Fatal(r.Err)
		}
	}
	mx := eng.Metrics()
	if got := mx.StreamJobs.Load(); got != int64(len(docs)) {
		t.Fatalf("StreamJobs = %d, want %d", got, len(docs))
	}
	if got := mx.StreamQueueDepth.Load(); got != 0 {
		t.Fatalf("StreamQueueDepth after drain = %d, want 0", got)
	}
	var busy int64
	for _, b := range mx.StreamBusyNanos() {
		busy += b
	}
	if busy <= 0 {
		t.Fatalf("total stream busy nanos = %d, want > 0", busy)
	}
	if got := mx.DocsTotal.Load(); got != int64(len(docs)) {
		t.Fatalf("DocsTotal = %d, want %d", got, len(docs))
	}
}

// TestWriteMetricsValid: the engine-level exposition (without a server in
// front) is well-formed and carries the stage histograms.
func TestWriteMetricsValid(t *testing.T) {
	eng := predfilter.New(predfilter.Config{})
	if _, err := eng.Add("//price[@currency=usd]"); err != nil {
		t.Fatal(err)
	}
	if _, err := eng.Match([]byte(sampleDoc)); err != nil {
		t.Fatal(err)
	}
	if _, err := eng.Match([]byte("not xml")); err == nil {
		t.Fatal("malformed document accepted")
	}
	var buf bytes.Buffer
	if err := eng.WriteMetrics(&buf); err != nil {
		t.Fatal(err)
	}
	text := buf.String()
	if err := metrics.ValidateExposition(text); err != nil {
		t.Fatalf("exposition invalid: %v\n%s", err, text)
	}
	for _, want := range []string{
		"predfilter_docs_total 1",
		"predfilter_doc_errors_total 1",
		`predfilter_stage_duration_seconds_count{stage="parse"} 1`,
		`predfilter_stage_duration_seconds_count{stage="occurrence"} 1`,
		"predfilter_expressions 1",
	} {
		if !strings.Contains(text, want) {
			t.Errorf("exposition missing %q", want)
		}
	}
}

// TestStageStatsEmptyHistograms pins the empty-histogram contract the
// /stats payload relies on: with zero observations every quantile must
// be exactly 0 — never NaN, which would serialize as invalid JSON and
// break scrapers. (internal/metrics.HistSnapshot.Quantile returns 0 on
// Count==0; this guards the summary layer end to end.)
func TestStageStatsEmptyHistograms(t *testing.T) {
	eng := predfilter.New(predfilter.Config{})
	st := eng.Stats().Stages
	check := func(name string, h predfilter.HistogramStats) {
		t.Helper()
		if h.Count != 0 || h.TotalNanos != 0 {
			t.Errorf("%s: fresh engine has count=%d total=%d", name, h.Count, h.TotalNanos)
		}
		for q, v := range map[string]float64{"p50": h.P50Nanos, "p95": h.P95Nanos, "p99": h.P99Nanos} {
			if math.IsNaN(v) {
				t.Errorf("%s %s = NaN, want 0", name, q)
			}
			if v != 0 {
				t.Errorf("%s %s = %v, want 0", name, q, v)
			}
		}
	}
	check("parse", st.Parse)
	check("cache", st.Cache)
	check("predicate_match", st.PredicateMatch)
	check("occurrence", st.Occurrence)
	check("match", st.Match)
	check("wal_append", st.WALAppend)
	check("snapshot", st.Snapshot)
}
