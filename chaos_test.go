package predfilter_test

import (
	"context"
	"errors"
	"strings"
	"testing"
	"time"

	"predfilter"
	"predfilter/workload"
)

// The chaos suite: pathological documents against a governed engine. Each
// bomb must fail fast with a typed *LimitError naming its limit — never a
// hang, a panic, or a silent "no match".

func wantLimitErr(t *testing.T, err error, kind predfilter.LimitKind) *predfilter.LimitError {
	t.Helper()
	var le *predfilter.LimitError
	if !errors.As(err, &le) {
		t.Fatalf("err = %v (%T), want *predfilter.LimitError", err, err)
	}
	if le.Kind != kind {
		t.Fatalf("tripped %v, want %v (err: %v)", le.Kind, kind, err)
	}
	return le
}

func TestChaosDepthBomb(t *testing.T) {
	eng := predfilter.New(predfilter.Config{Limits: predfilter.Limits{MaxDepth: 64}})
	if _, err := eng.Add("//d"); err != nil {
		t.Fatal(err)
	}
	t0 := time.Now()
	sids, err := eng.MatchContext(context.Background(), workload.DepthBomb(1<<16))
	if took := time.Since(t0); took > 5*time.Second {
		t.Fatalf("depth bomb took %v", took)
	}
	if sids != nil {
		t.Fatalf("partial result %v alongside error", sids)
	}
	le := wantLimitErr(t, err, predfilter.LimitDepth)
	if le.Limit != 64 {
		t.Fatalf("Limit = %d, want 64", le.Limit)
	}
}

func TestChaosPathBomb(t *testing.T) {
	eng := predfilter.New(predfilter.Config{Limits: predfilter.Limits{MaxPaths: 1 << 10}})
	if _, err := eng.Add("//p"); err != nil {
		t.Fatal(err)
	}
	_, err := eng.Match(workload.PathBomb(1 << 16))
	wantLimitErr(t, err, predfilter.LimitPaths)
}

func TestChaosTupleBomb(t *testing.T) {
	eng := predfilter.New(predfilter.Config{Limits: predfilter.Limits{MaxTuples: 1 << 10}})
	if _, err := eng.Add("//p"); err != nil {
		t.Fatal(err)
	}
	_, err := eng.Match(workload.PathBomb(1 << 16))
	wantLimitErr(t, err, predfilter.LimitTuples)
}

func TestChaosDocBytesBomb(t *testing.T) {
	eng := predfilter.New(predfilter.Config{Limits: predfilter.Limits{MaxDocBytes: 1 << 10}})
	if _, err := eng.Add("//p"); err != nil {
		t.Fatal(err)
	}
	_, err := eng.Match(workload.PathBomb(1 << 12))
	wantLimitErr(t, err, predfilter.LimitDocBytes)
}

func TestChaosOccurrenceBombSteps(t *testing.T) {
	doc, expr := workload.OccurrenceBomb(40, 44)
	eng := predfilter.New(predfilter.Config{Limits: predfilter.Limits{MaxSteps: 1 << 20}})
	if _, err := eng.Add(expr); err != nil {
		t.Fatal(err)
	}
	t0 := time.Now()
	_, err := eng.Match(doc)
	if took := time.Since(t0); took > 10*time.Second {
		t.Fatalf("occurrence bomb took %v under a step budget", took)
	}
	le := wantLimitErr(t, err, predfilter.LimitSteps)
	if le.Got <= le.Limit {
		t.Fatalf("Got %d <= Limit %d", le.Got, le.Limit)
	}
}

func TestChaosOccurrenceBombDeadline(t *testing.T) {
	// The acceptance bar: on the blowup corpus, MatchContext with a
	// deadline returns within (a small multiple of) the deadline. The
	// occurrence search only consults the clock every 4096 steps, so allow
	// generous scheduler slack but nothing near the unbounded blowup.
	doc, expr := workload.OccurrenceBomb(42, 48)
	eng := predfilter.New(predfilter.Config{Limits: predfilter.Limits{MatchDeadline: 100 * time.Millisecond}})
	if _, err := eng.Add(expr); err != nil {
		t.Fatal(err)
	}
	t0 := time.Now()
	_, err := eng.MatchContext(context.Background(), doc)
	took := time.Since(t0)
	le := wantLimitErr(t, err, predfilter.LimitDeadline)
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Fatal("deadline error should satisfy errors.Is(err, context.DeadlineExceeded)")
	}
	if took > 5*time.Second {
		t.Fatalf("deadline stop took %v, want ~100ms", took)
	}
	if le.Got < int64(100*time.Millisecond) {
		t.Fatalf("Got = %v, want >= the 100ms deadline", time.Duration(le.Got))
	}
}

func TestChaosContextDeadline(t *testing.T) {
	// A context deadline works without any configured limits.
	doc, expr := workload.OccurrenceBomb(42, 48)
	eng := predfilter.New(predfilter.Config{})
	if _, err := eng.Add(expr); err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 100*time.Millisecond)
	defer cancel()
	t0 := time.Now()
	_, err := eng.MatchContext(ctx, doc)
	if took := time.Since(t0); took > 5*time.Second {
		t.Fatalf("context deadline stop took %v", took)
	}
	wantLimitErr(t, err, predfilter.LimitDeadline)
}

func TestChaosLimitTripsCounted(t *testing.T) {
	eng := predfilter.New(predfilter.Config{Limits: predfilter.Limits{MaxDepth: 8}})
	if _, err := eng.Add("//d"); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 3; i++ {
		if _, err := eng.Match(workload.DepthBomb(64)); err == nil {
			t.Fatal("depth bomb matched")
		}
	}
	st := eng.Stats()
	if st.LimitTrips["depth"] != 3 {
		t.Fatalf("LimitTrips = %v, want depth:3", st.LimitTrips)
	}
}

func TestChaosHealthyDocsUnaffected(t *testing.T) {
	// Limits generous enough for a normal document change nothing.
	eng := predfilter.New(predfilter.Config{Limits: predfilter.Limits{
		MaxDepth: 100, MaxPaths: 1000, MaxTuples: 10000,
		MaxDocBytes: 1 << 20, MaxSteps: 1 << 20, MatchDeadline: time.Minute,
	}})
	free := predfilter.New(predfilter.Config{})
	doc := []byte("<a><b><c/></b><b/></a>")
	for _, e := range []*predfilter.Engine{eng, free} {
		if _, err := e.AddAll([]string{"/a//c", "//b", "/a/x"}); err != nil {
			t.Fatal(err)
		}
	}
	want, err := free.Match(doc)
	if err != nil {
		t.Fatal(err)
	}
	got, err := eng.MatchContext(context.Background(), doc)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != len(want) || len(got) != 2 {
		t.Fatalf("governed %v != ungoverned %v (want 2 matches)", got, want)
	}
}

func TestChaosStreamBombsIsolated(t *testing.T) {
	// One bomb in a stream fails alone; surrounding documents still match.
	doc, expr := workload.OccurrenceBomb(40, 44)
	eng := predfilter.New(predfilter.Config{Limits: predfilter.Limits{
		MaxSteps: 1 << 18, MaxDepth: 1 << 10,
	}})
	if _, err := eng.Add(expr); err != nil {
		t.Fatal(err)
	}
	if _, err := eng.Add("//ok"); err != nil {
		t.Fatal(err)
	}
	healthy := []byte("<ok/>")
	results := eng.MatchBatch([][]byte{healthy, doc, workload.DepthBomb(1 << 12), healthy}, 2)
	if len(results) != 4 {
		t.Fatalf("got %d results, want 4", len(results))
	}
	for _, i := range []int{0, 3} {
		if results[i].Err != nil || len(results[i].SIDs) != 1 {
			t.Fatalf("healthy doc %d: sids=%v err=%v", i, results[i].SIDs, results[i].Err)
		}
	}
	wantLimitErr(t, results[1].Err, predfilter.LimitSteps)
	wantLimitErr(t, results[2].Err, predfilter.LimitDepth)
}

func TestChaosMatchReaderDocBytes(t *testing.T) {
	eng := predfilter.New(predfilter.Config{Limits: predfilter.Limits{MaxDocBytes: 256}})
	if _, err := eng.Add("//p"); err != nil {
		t.Fatal(err)
	}
	_, err := eng.MatchReader(strings.NewReader(string(workload.PathBomb(1 << 10))))
	wantLimitErr(t, err, predfilter.LimitDocBytes)
}
