package predfilter_test

import (
	"context"
	"errors"
	"strings"
	"testing"
	"time"

	"predfilter"
	"predfilter/workload"
)

// The chaos suite: pathological documents against a governed engine. Each
// bomb must fail fast with a typed *LimitError naming its limit — never a
// hang, a panic, or a silent "no match".

func wantLimitErr(t *testing.T, err error, kind predfilter.LimitKind) *predfilter.LimitError {
	t.Helper()
	var le *predfilter.LimitError
	if !errors.As(err, &le) {
		t.Fatalf("err = %v (%T), want *predfilter.LimitError", err, err)
	}
	if le.Kind != kind {
		t.Fatalf("tripped %v, want %v (err: %v)", le.Kind, kind, err)
	}
	return le
}

func TestChaosDepthBomb(t *testing.T) {
	eng := predfilter.New(predfilter.Config{Limits: predfilter.Limits{MaxDepth: 64}})
	if _, err := eng.Add("//d"); err != nil {
		t.Fatal(err)
	}
	t0 := time.Now()
	sids, err := eng.MatchContext(context.Background(), workload.DepthBomb(1<<16))
	if took := time.Since(t0); took > 5*time.Second {
		t.Fatalf("depth bomb took %v", took)
	}
	if sids != nil {
		t.Fatalf("partial result %v alongside error", sids)
	}
	le := wantLimitErr(t, err, predfilter.LimitDepth)
	if le.Limit != 64 {
		t.Fatalf("Limit = %d, want 64", le.Limit)
	}
}

func TestChaosPathBomb(t *testing.T) {
	eng := predfilter.New(predfilter.Config{Limits: predfilter.Limits{MaxPaths: 1 << 10}})
	if _, err := eng.Add("//p"); err != nil {
		t.Fatal(err)
	}
	_, err := eng.Match(workload.PathBomb(1 << 16))
	wantLimitErr(t, err, predfilter.LimitPaths)
}

func TestChaosTupleBomb(t *testing.T) {
	eng := predfilter.New(predfilter.Config{Limits: predfilter.Limits{MaxTuples: 1 << 10}})
	if _, err := eng.Add("//p"); err != nil {
		t.Fatal(err)
	}
	_, err := eng.Match(workload.PathBomb(1 << 16))
	wantLimitErr(t, err, predfilter.LimitTuples)
}

func TestChaosDocBytesBomb(t *testing.T) {
	eng := predfilter.New(predfilter.Config{Limits: predfilter.Limits{MaxDocBytes: 1 << 10}})
	if _, err := eng.Add("//p"); err != nil {
		t.Fatal(err)
	}
	_, err := eng.Match(workload.PathBomb(1 << 12))
	wantLimitErr(t, err, predfilter.LimitDocBytes)
}

func TestChaosOccurrenceBombSteps(t *testing.T) {
	doc, expr := workload.OccurrenceBomb(40, 44)
	eng := predfilter.New(predfilter.Config{Limits: predfilter.Limits{MaxSteps: 1 << 20}})
	if _, err := eng.Add(expr); err != nil {
		t.Fatal(err)
	}
	t0 := time.Now()
	_, err := eng.Match(doc)
	if took := time.Since(t0); took > 10*time.Second {
		t.Fatalf("occurrence bomb took %v under a step budget", took)
	}
	le := wantLimitErr(t, err, predfilter.LimitSteps)
	if le.Got <= le.Limit {
		t.Fatalf("Got %d <= Limit %d", le.Got, le.Limit)
	}
}

func TestChaosOccurrenceBombDeadline(t *testing.T) {
	// The acceptance bar: on the blowup corpus, MatchContext with a
	// deadline returns within (a small multiple of) the deadline. The
	// occurrence search only consults the clock every 4096 steps, so allow
	// generous scheduler slack but nothing near the unbounded blowup.
	doc, expr := workload.OccurrenceBomb(42, 48)
	eng := predfilter.New(predfilter.Config{Limits: predfilter.Limits{MatchDeadline: 100 * time.Millisecond}})
	if _, err := eng.Add(expr); err != nil {
		t.Fatal(err)
	}
	t0 := time.Now()
	_, err := eng.MatchContext(context.Background(), doc)
	took := time.Since(t0)
	le := wantLimitErr(t, err, predfilter.LimitDeadline)
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Fatal("deadline error should satisfy errors.Is(err, context.DeadlineExceeded)")
	}
	if took > 5*time.Second {
		t.Fatalf("deadline stop took %v, want ~100ms", took)
	}
	if le.Got < int64(100*time.Millisecond) {
		t.Fatalf("Got = %v, want >= the 100ms deadline", time.Duration(le.Got))
	}
}

func TestChaosContextDeadline(t *testing.T) {
	// A context deadline works without any configured limits.
	doc, expr := workload.OccurrenceBomb(42, 48)
	eng := predfilter.New(predfilter.Config{})
	if _, err := eng.Add(expr); err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 100*time.Millisecond)
	defer cancel()
	t0 := time.Now()
	_, err := eng.MatchContext(ctx, doc)
	if took := time.Since(t0); took > 5*time.Second {
		t.Fatalf("context deadline stop took %v", took)
	}
	wantLimitErr(t, err, predfilter.LimitDeadline)
}

func TestChaosLimitTripsCounted(t *testing.T) {
	eng := predfilter.New(predfilter.Config{Limits: predfilter.Limits{MaxDepth: 8}})
	if _, err := eng.Add("//d"); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 3; i++ {
		if _, err := eng.Match(workload.DepthBomb(64)); err == nil {
			t.Fatal("depth bomb matched")
		}
	}
	st := eng.Stats()
	if st.LimitTrips["depth"] != 3 {
		t.Fatalf("LimitTrips = %v, want depth:3", st.LimitTrips)
	}
}

func TestChaosHealthyDocsUnaffected(t *testing.T) {
	// Limits generous enough for a normal document change nothing.
	eng := predfilter.New(predfilter.Config{Limits: predfilter.Limits{
		MaxDepth: 100, MaxPaths: 1000, MaxTuples: 10000,
		MaxDocBytes: 1 << 20, MaxSteps: 1 << 20, MatchDeadline: time.Minute,
	}})
	free := predfilter.New(predfilter.Config{})
	doc := []byte("<a><b><c/></b><b/></a>")
	for _, e := range []*predfilter.Engine{eng, free} {
		if _, err := e.AddAll([]string{"/a//c", "//b", "/a/x"}); err != nil {
			t.Fatal(err)
		}
	}
	want, err := free.Match(doc)
	if err != nil {
		t.Fatal(err)
	}
	got, err := eng.MatchContext(context.Background(), doc)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != len(want) || len(got) != 2 {
		t.Fatalf("governed %v != ungoverned %v (want 2 matches)", got, want)
	}
}

func TestChaosStreamBombsIsolated(t *testing.T) {
	// One bomb in a stream fails alone; surrounding documents still match.
	doc, expr := workload.OccurrenceBomb(40, 44)
	eng := predfilter.New(predfilter.Config{Limits: predfilter.Limits{
		MaxSteps: 1 << 18, MaxDepth: 1 << 10,
	}})
	if _, err := eng.Add(expr); err != nil {
		t.Fatal(err)
	}
	if _, err := eng.Add("//ok"); err != nil {
		t.Fatal(err)
	}
	healthy := []byte("<ok/>")
	results := eng.MatchBatch([][]byte{healthy, doc, workload.DepthBomb(1 << 12), healthy}, 2)
	if len(results) != 4 {
		t.Fatalf("got %d results, want 4", len(results))
	}
	for _, i := range []int{0, 3} {
		if results[i].Err != nil || len(results[i].SIDs) != 1 {
			t.Fatalf("healthy doc %d: sids=%v err=%v", i, results[i].SIDs, results[i].Err)
		}
	}
	wantLimitErr(t, results[1].Err, predfilter.LimitSteps)
	wantLimitErr(t, results[2].Err, predfilter.LimitDepth)
}

func TestChaosMatchReaderDocBytes(t *testing.T) {
	eng := predfilter.New(predfilter.Config{Limits: predfilter.Limits{MaxDocBytes: 256}})
	if _, err := eng.Add("//p"); err != nil {
		t.Fatal(err)
	}
	_, err := eng.MatchReader(strings.NewReader(string(workload.PathBomb(1 << 10))))
	wantLimitErr(t, err, predfilter.LimitDocBytes)
}

func TestChaosTracedGoverned(t *testing.T) {
	// The explaining match (the server's ?trace=1 path) must be bounded
	// like the fast path: structural limits at parse, the budget on both
	// the authoritative and the explanation pass.
	doc, expr := workload.OccurrenceBomb(40, 44)
	eng := predfilter.New(predfilter.Config{Limits: predfilter.Limits{MaxSteps: 1 << 20}})
	if _, err := eng.Add(expr); err != nil {
		t.Fatal(err)
	}
	t0 := time.Now()
	sids, tr, err := eng.MatchTraced(doc)
	if took := time.Since(t0); took > 10*time.Second {
		t.Fatalf("traced occurrence bomb took %v under a step budget", took)
	}
	if sids != nil || tr != nil {
		t.Fatalf("partial result (sids=%v trace=%v) alongside error", sids, tr != nil)
	}
	wantLimitErr(t, err, predfilter.LimitSteps)

	// Structural limits apply to the traced parse as well.
	deep := predfilter.New(predfilter.Config{Limits: predfilter.Limits{MaxDepth: 64}})
	if _, err := deep.Add("//d"); err != nil {
		t.Fatal(err)
	}
	_, _, err = deep.MatchTracedContext(context.Background(), workload.DepthBomb(1<<12))
	wantLimitErr(t, err, predfilter.LimitDepth)
}

func TestChaosTraceExplanationPassBudgeted(t *testing.T) {
	// The explanation pass re-evaluates every path directly — no path
	// dedup, no cache, no covers — so it spends far more search effort
	// than the match it explains. Its forked budget must trip even when
	// the authoritative match fits comfortably.
	eng := predfilter.New(predfilter.Config{Limits: predfilter.Limits{MaxSteps: 1 << 10}})
	if _, err := eng.Add("//p"); err != nil {
		t.Fatal(err)
	}
	doc := workload.PathBomb(1 << 12) // 4096 identical paths: dedup makes the fast path ~1 step
	if _, err := eng.Match(doc); err != nil {
		t.Fatalf("fast path should fit the step budget: %v", err)
	}
	sids, tr, err := eng.MatchTracedContext(context.Background(), doc)
	if sids != nil || tr != nil {
		t.Fatalf("partial trace alongside error (sids=%v trace=%v)", sids, tr != nil)
	}
	wantLimitErr(t, err, predfilter.LimitSteps)
}

func TestChaosMatchCountsGoverned(t *testing.T) {
	// Exhaustive combination counting keeps enumerating where filtering
	// stops at the first match; it must honor the engine's limits through
	// both the context and the plain entry point.
	doc, expr := workload.OccurrenceBomb(40, 44)
	eng := predfilter.New(predfilter.Config{Limits: predfilter.Limits{MaxSteps: 1 << 20}})
	if _, err := eng.Add(expr); err != nil {
		t.Fatal(err)
	}
	t0 := time.Now()
	counts, err := eng.MatchCounts(doc)
	if took := time.Since(t0); took > 10*time.Second {
		t.Fatalf("counting occurrence bomb took %v under a step budget", took)
	}
	if counts != nil {
		t.Fatalf("partial counts %v alongside error", counts)
	}
	wantLimitErr(t, err, predfilter.LimitSteps)

	// Structural limits apply to the counting parse as well.
	deep := predfilter.New(predfilter.Config{Limits: predfilter.Limits{MaxDepth: 64}})
	if _, err := deep.Add("//d"); err != nil {
		t.Fatal(err)
	}
	_, err = deep.MatchCountsContext(context.Background(), workload.DepthBomb(1<<12))
	wantLimitErr(t, err, predfilter.LimitDepth)
}

func TestChaosMatchCountsHealthy(t *testing.T) {
	// Governance must not change counting results for ordinary documents.
	doc := []byte("<a><b/><b/><b/></a>")
	free := predfilter.New(predfilter.Config{})
	gov := predfilter.New(predfilter.Config{Limits: predfilter.Limits{
		MaxSteps: 1 << 20, MatchDeadline: time.Minute, MaxDepth: 100,
	}})
	for _, e := range []*predfilter.Engine{free, gov} {
		if _, err := e.Add("//b"); err != nil {
			t.Fatal(err)
		}
	}
	want, err := free.MatchCounts(doc)
	if err != nil {
		t.Fatal(err)
	}
	got, err := gov.MatchCountsContext(context.Background(), doc)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != len(want) || len(got) != 1 {
		t.Fatalf("governed counts %v != ungoverned %v", got, want)
	}
	for sid, n := range want {
		if got[sid] != n {
			t.Fatalf("governed counts %v != ungoverned %v", got, want)
		}
	}
}

func TestChaosMatchParsedParallelContextGoverned(t *testing.T) {
	doc, expr := workload.OccurrenceBomb(42, 48)
	eng := predfilter.New(predfilter.Config{Limits: predfilter.Limits{MatchDeadline: 100 * time.Millisecond}})
	if _, err := eng.Add(expr); err != nil {
		t.Fatal(err)
	}
	d, err := predfilter.ParseDocument(doc)
	if err != nil {
		t.Fatal(err)
	}
	t0 := time.Now()
	sids, err := eng.MatchParsedParallelContext(context.Background(), d, 4)
	if took := time.Since(t0); took > 5*time.Second {
		t.Fatalf("parallel deadline stop took %v, want ~100ms", took)
	}
	if sids != nil {
		t.Fatalf("partial result %v alongside error", sids)
	}
	wantLimitErr(t, err, predfilter.LimitDeadline)
}
