package predfilter_test

import (
	"context"
	"fmt"
	"reflect"
	"sort"
	"testing"
	"time"

	"predfilter"
)

func streamEngine(t *testing.T) *predfilter.Engine {
	t.Helper()
	eng := predfilter.New(predfilter.Config{})
	for _, s := range []string{"/feed/a", "/feed//b", "//c[@k=1]", "/feed/a/b"} {
		if _, err := eng.Add(s); err != nil {
			t.Fatal(err)
		}
	}
	return eng
}

func streamDocs(n int) [][]byte {
	docs := make([][]byte, n)
	for i := range docs {
		switch i % 3 {
		case 0:
			docs[i] = []byte(`<feed><a><b/></a></feed>`)
		case 1:
			docs[i] = []byte(`<feed><c k="1"/></feed>`)
		default:
			docs[i] = []byte(`<other/>`)
		}
	}
	return docs
}

func sidSet(s []predfilter.SID) string {
	out := append([]predfilter.SID(nil), s...)
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return fmt.Sprint(out)
}

// TestMatchBatchMatchesSequential checks order preservation and result
// equality against the one-at-a-time API, at several worker counts.
func TestMatchBatchMatchesSequential(t *testing.T) {
	eng := streamEngine(t)
	docs := streamDocs(50)
	var want [][]predfilter.SID
	for _, d := range docs {
		sids, err := eng.Match(d)
		if err != nil {
			t.Fatal(err)
		}
		want = append(want, sids)
	}
	for _, workers := range []int{0, 1, 2, 4, 7} {
		results := eng.MatchBatch(docs, workers)
		if len(results) != len(docs) {
			t.Fatalf("workers=%d: %d results for %d docs", workers, len(results), len(docs))
		}
		for i, r := range results {
			if r.Index != i {
				t.Fatalf("workers=%d: result %d has index %d", workers, i, r.Index)
			}
			if r.Err != nil {
				t.Fatalf("workers=%d doc %d: %v", workers, i, r.Err)
			}
			if sidSet(r.SIDs) != sidSet(want[i]) {
				t.Fatalf("workers=%d doc %d: batch %v != sequential %v", workers, i, r.SIDs, want[i])
			}
		}
	}
}

// TestMatchBatchBadDocument checks per-document error isolation: a
// malformed document yields an errored Result without failing its
// neighbors.
func TestMatchBatchBadDocument(t *testing.T) {
	eng := streamEngine(t)
	docs := [][]byte{
		[]byte(`<feed><a/></feed>`),
		[]byte(`<unclosed>`),
		[]byte(`<feed><c k="1"/></feed>`),
	}
	results := eng.MatchBatch(docs, 2)
	if len(results) != 3 {
		t.Fatalf("got %d results", len(results))
	}
	if results[0].Err != nil || results[2].Err != nil {
		t.Fatalf("good documents errored: %v / %v", results[0].Err, results[2].Err)
	}
	if results[1].Err == nil {
		t.Fatal("malformed document did not error")
	}
	if len(results[0].SIDs) == 0 || len(results[2].SIDs) == 0 {
		t.Fatal("good documents matched nothing")
	}
}

// TestMatchStreamCancel checks that cancelling the context closes the
// result channel rather than leaking the pipeline.
func TestMatchStreamCancel(t *testing.T) {
	eng := streamEngine(t)
	ctx, cancel := context.WithCancel(context.Background())
	in := make(chan []byte) // unbuffered, never closed: only cancel ends the stream
	out := eng.MatchStream(ctx, in, 2)

	in <- []byte(`<feed><a/></feed>`)
	select {
	case r, ok := <-out:
		if !ok {
			t.Fatal("stream closed before cancel")
		}
		if r.Err != nil || r.Index != 0 {
			t.Fatalf("unexpected first result %+v", r)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("no result within 5s")
	}

	cancel()
	deadline := time.After(5 * time.Second)
	for {
		select {
		case _, ok := <-out:
			if !ok {
				return // closed: pipeline wound down
			}
		case <-deadline:
			t.Fatal("stream not closed within 5s of cancel")
		}
	}
}

// TestMatchStreamEchoesDoc checks the Doc passthrough consumers use for
// fan-out.
func TestMatchStreamEchoesDoc(t *testing.T) {
	eng := streamEngine(t)
	docs := streamDocs(9)
	for i, r := range eng.MatchBatch(docs, 3) {
		if string(r.Doc) != string(docs[i]) {
			t.Fatalf("doc %d not echoed back", i)
		}
	}
}

// TestMatchParallelMatchesMatch checks the intra-document sharded path at
// the engine level.
func TestMatchParallelMatchesMatch(t *testing.T) {
	eng := streamEngine(t)
	doc := []byte(`<feed><a><b/></a><c k="1"/><a/><b/><c/><a><b/><b/></a></feed>`)
	want, err := eng.Match(doc)
	if err != nil {
		t.Fatal(err)
	}
	for _, workers := range []int{0, 2, 4} {
		got, err := eng.MatchParallel(doc, workers)
		if err != nil {
			t.Fatal(err)
		}
		if sidSet(got) != sidSet(want) {
			t.Fatalf("workers=%d: %v != %v", workers, got, want)
		}
	}
}

func TestMergeSIDSets(t *testing.T) {
	cases := []struct {
		name string
		in   [][]predfilter.SID
		want []predfilter.SID
	}{
		{"empty", nil, nil},
		{"all empty", [][]predfilter.SID{nil, {}}, nil},
		{"single", [][]predfilter.SID{{1, 3, 5}}, []predfilter.SID{1, 3, 5}},
		{"disjoint interleave", [][]predfilter.SID{{0, 3, 7}, {1, 4}, {2, 5, 6}}, []predfilter.SID{0, 1, 2, 3, 4, 5, 6, 7}},
		{"overlap dedups", [][]predfilter.SID{{1, 2, 9}, {2, 9, 10}}, []predfilter.SID{1, 2, 9, 10}},
		{"one shard empty", [][]predfilter.SID{{4, 8}, nil}, []predfilter.SID{4, 8}},
	}
	for _, c := range cases {
		got := predfilter.MergeSIDSets(c.in)
		if len(got) == 0 && len(c.want) == 0 {
			continue
		}
		if !reflect.DeepEqual(got, c.want) {
			t.Errorf("%s: predfilter.MergeSIDSets(%v) = %v, want %v", c.name, c.in, got, c.want)
		}
	}
}
