package predfilter

// White-box tests for the stream pipeline's panic isolation (the
// testHookStreamJob injection point is unexported) and for batch
// cancellation fill-in.

import (
	"bytes"
	"context"
	"errors"
	"strings"
	"testing"
	"time"
)

func TestStreamPanicIsolated(t *testing.T) {
	eng := New(Config{})
	if _, err := eng.Add("//ok"); err != nil {
		t.Fatal(err)
	}
	bomb := []byte("<panic/>")
	testHookStreamJob = func(doc []byte) {
		if bytes.Equal(doc, bomb) {
			panic("injected")
		}
	}
	defer func() { testHookStreamJob = nil }()

	healthy := []byte("<ok/>")
	results := eng.MatchBatch([][]byte{healthy, bomb, healthy}, 2)
	if len(results) != 3 {
		t.Fatalf("got %d results, want 3", len(results))
	}
	for _, i := range []int{0, 2} {
		if results[i].Err != nil || len(results[i].SIDs) != 1 {
			t.Fatalf("healthy doc %d: sids=%v err=%v — panic not isolated", i, results[i].SIDs, results[i].Err)
		}
	}
	err := results[1].Err
	if err == nil {
		t.Fatal("panicking document reported no error")
	}
	if !strings.Contains(err.Error(), "recovered panic") || !strings.Contains(err.Error(), "injected") {
		t.Fatalf("panic error = %v, want a recovered-panic message naming the cause", err)
	}
	if results[1].SIDs != nil {
		t.Fatalf("panicking document reported sids %v", results[1].SIDs)
	}
	if got := eng.Stats().Panics; got != 1 {
		t.Fatalf("Stats().Panics = %d, want 1", got)
	}
}

func TestStreamPanicWorkerSurvives(t *testing.T) {
	// Every document panics; the workers must drain the whole stream
	// anyway, one failed Result per document.
	eng := New(Config{})
	if _, err := eng.Add("//a"); err != nil {
		t.Fatal(err)
	}
	testHookStreamJob = func([]byte) { panic("always") }
	defer func() { testHookStreamJob = nil }()

	const n = 32
	docs := make([][]byte, n)
	for i := range docs {
		docs[i] = []byte("<a/>")
	}
	results := eng.MatchBatch(docs, 4)
	if len(results) != n {
		t.Fatalf("got %d results, want %d", len(results), n)
	}
	for i, r := range results {
		if r.Err == nil {
			t.Fatalf("doc %d: no error despite the injected panic", i)
		}
	}
	if got := eng.Stats().Panics; got != n {
		t.Fatalf("Stats().Panics = %d, want %d", got, n)
	}
}

func TestMatchBatchContextFillsCancelled(t *testing.T) {
	// A cancelled batch still returns exactly one Result per document;
	// documents the workers never reached carry the context error rather
	// than silently vanishing (a dropped document must not read as "no
	// match").
	eng := New(Config{})
	if _, err := eng.Add("//a"); err != nil {
		t.Fatal(err)
	}
	block := make(chan struct{})
	testHookStreamJob = func([]byte) { <-block }
	defer func() { testHookStreamJob = nil }()

	ctx, cancel := context.WithCancel(context.Background())
	const n = 16
	docs := make([][]byte, n)
	for i := range docs {
		docs[i] = []byte("<a/>")
	}
	done := make(chan []Result, 1)
	go func() { done <- eng.MatchBatchContext(ctx, docs, 2) }()
	time.Sleep(10 * time.Millisecond)
	cancel()
	close(block)

	var results []Result
	select {
	case results = <-done:
	case <-time.After(10 * time.Second):
		t.Fatal("cancelled batch never returned")
	}
	if len(results) != n {
		t.Fatalf("got %d results, want %d", len(results), n)
	}
	filled := 0
	for i, r := range results {
		if r.Index != i {
			t.Fatalf("result %d has Index %d", i, r.Index)
		}
		if r.Err != nil && errors.Is(r.Err, context.Canceled) {
			filled++
		}
	}
	if filled == 0 {
		t.Fatal("no result carries the cancellation; dropped documents were silently lost")
	}
}
