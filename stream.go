package predfilter

import (
	"context"
	"fmt"
	"runtime"
	"sync"
	"time"

	"predfilter/internal/guard"
	"predfilter/internal/xmldoc"
)

// Result is the outcome of matching one document of a stream or batch.
type Result struct {
	// Index is the document's ordinal in the input stream (0-based).
	Index int
	// Doc is the original document bytes, echoed back so consumers can
	// fan the document out without tracking it separately.
	Doc []byte
	// SIDs are the matching expression identifiers; nil when Err is set.
	SIDs []SID
	// Err is the per-document failure, if any: a parse error, a
	// *LimitError from the engine's configured limits or the stream
	// context, or a recovered worker panic. One bad document does not
	// stop the stream.
	Err error
}

// testHookStreamJob, when non-nil, runs inside each stream worker's
// per-document recover scope before parsing. Tests use it to inject
// panics; production code never sets it.
var testHookStreamJob func(doc []byte)

// parseStreamDoc parses one stream document under the engine's limits,
// isolating panics: a panicking or failing document is counted, reported
// in its own Result, and fails only itself. It returns nil when the
// document did not parse (r.Err is set).
func (e *Engine) parseStreamDoc(r *Result) (d *xmldoc.Document, parse time.Duration) {
	defer func() {
		if p := recover(); p != nil {
			e.mx.ObservePanic()
			d = nil
			r.SIDs = nil
			r.Err = fmt.Errorf("predfilter: recovered panic matching document %d: %v", r.Index, p)
		}
	}()
	if testHookStreamJob != nil {
		testHookStreamJob(r.Doc)
	}
	t0 := time.Now()
	d, err := xmldoc.ParseMeteredLimitsMode(r.Doc, e.mx, e.limits, e.pmode)
	if err != nil {
		r.Err = e.recordGovernance(err)
		return nil, 0
	}
	return d, time.Since(t0)
}

// matchParsedStreamDoc runs the scalar matcher over one already-parsed
// stream document, with the same per-document panic isolation.
func (e *Engine) matchParsedStreamDoc(ctx context.Context, r *Result, d *xmldoc.Document, parse time.Duration) {
	defer func() {
		if p := recover(); p != nil {
			e.mx.ObservePanic()
			r.SIDs = nil
			r.Err = fmt.Errorf("predfilter: recovered panic matching document %d: %v", r.Index, p)
		}
	}()
	t1 := time.Now()
	sids, _, err := e.m.MatchDocumentBudget(d, guard.NewBudget(ctx, e.limits))
	if err != nil {
		r.Err = e.recordGovernance(err)
		return
	}
	r.SIDs = sids
	e.maybeLogSlow(ctx, parse, time.Since(t1), nil, len(r.Doc), len(d.Paths), len(sids))
}

// matchStreamGroup processes one dispatch group: every document is parsed
// individually (per-document panic and limit isolation), and the
// survivors are matched together — through the columnar batch matcher
// when the group is large enough for the configured ColumnarMode, through
// the scalar matcher per document otherwise.
func (e *Engine) matchStreamGroup(ctx context.Context, rs []Result) {
	docs := make([]*xmldoc.Document, len(rs))
	parse := make([]time.Duration, len(rs))
	live := 0
	for k := range rs {
		docs[k], parse[k] = e.parseStreamDoc(&rs[k])
		if docs[k] != nil {
			live++
		}
	}
	if live == 0 {
		return
	}
	if e.colEngage(live) && e.matchColumnarGroup(ctx, rs, docs, parse) {
		return
	}
	for k := range rs {
		if docs[k] != nil {
			e.matchParsedStreamDoc(ctx, &rs[k], docs[k], parse[k])
		}
	}
}

// matchColumnarGroup matches a group's parsed documents through the
// columnar kernel. A panic is recovered and reported by returning false,
// and the caller re-matches the group through the scalar per-document
// path (which carries its own per-document isolation); results assigned
// before the panic are reset so the scalar pass starts clean.
func (e *Engine) matchColumnarGroup(ctx context.Context, rs []Result, docs []*xmldoc.Document, parse []time.Duration) (ok bool) {
	defer func() {
		if p := recover(); p != nil {
			e.mx.ObservePanic()
			for k := range rs {
				if docs[k] != nil {
					rs[k].SIDs = nil
					rs[k].Err = nil
				}
			}
			ok = false
		}
	}()
	batch := make([]*xmldoc.Document, 0, len(rs))
	buds := make([]*guard.Budget, 0, len(rs))
	idx := make([]int, 0, len(rs))
	for k := range rs {
		if docs[k] == nil {
			continue
		}
		batch = append(batch, docs[k])
		buds = append(buds, guard.NewBudget(ctx, e.limits))
		idx = append(idx, k)
	}
	outs, errs := e.m.MatchDocumentsColumnar(batch, buds)
	for j, k := range idx {
		if errs[j] != nil {
			rs[k].Err = e.recordGovernance(errs[j])
			continue
		}
		rs[k].SIDs = outs[j]
		e.maybeLogSlow(ctx, parse[k], 0, nil, len(rs[k].Doc), len(batch[j].Paths), len(outs[j]))
	}
	return true
}

// MatchStream filters a stream of XML documents through a worker pipeline:
// each worker overlaps SAX path extraction with predicate matching for its
// current document while the others do the same, so parsing and matching
// of consecutive documents proceed concurrently. Results are delivered in
// input order (Index is strictly increasing), one per input document.
//
// workers ≤ 0 selects GOMAXPROCS. The returned channel is closed after
// the last result, or after ctx is cancelled (in which case trailing
// documents are dropped). Registration may run concurrently; documents
// matched before an Add simply miss the new expression.
//
// The engine's configured limits apply per document: a document exceeding
// a structural limit or the match budget fails with a *LimitError in its
// own Result while the stream continues. A worker panic is likewise
// isolated to the document that caused it (recovered, counted, reported
// in the Result). The stream context's deadline applies per document
// through the match budget.
//
// All workers share the engine's structural path-signature cache, so a
// path signature evaluated for one document of the stream is served from
// the cache for every later document — the streaming workload (many
// same-DTD documents) is the cache's best case.
func (e *Engine) MatchStream(ctx context.Context, docs <-chan []byte, workers int) <-chan Result {
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}

	type job struct {
		base int      // input ordinal of docs[0]
		docs [][]byte // contiguous dispatch group
	}
	jobs := make(chan job, workers)
	unordered := make(chan Result, workers)
	out := make(chan Result, workers)

	// Dispatcher: assign input ordinals and group pending documents into
	// dispatch groups of up to e.batchMax. The drain is strictly
	// non-blocking — a group closes the moment the input channel has
	// nothing ready — so a trickling stream keeps single-document
	// dispatch latency while a backlogged one hands workers full groups
	// (which is what lets the columnar batch matcher engage).
	go func() {
		defer close(jobs)
		base := 0
		var batch [][]byte
		deliver := func() bool {
			if len(batch) == 0 {
				return true
			}
			e.mx.StreamQueueDepth.Add(int64(len(batch)))
			select {
			case jobs <- job{base, batch}:
				base += len(batch)
				batch = nil
				return true
			case <-ctx.Done():
				e.mx.StreamQueueDepth.Add(int64(-len(batch)))
				return false
			}
		}
		for {
			select {
			case doc, ok := <-docs:
				if !ok {
					deliver()
					return
				}
				batch = append(batch, doc)
				for len(batch) < e.batchMax {
					select {
					case more, ok := <-docs:
						if !ok {
							deliver()
							return
						}
						batch = append(batch, more)
						continue
					default:
					}
					break
				}
				if !deliver() {
					return
				}
			case <-ctx.Done():
				return
			}
		}
	}()

	// Workers: parse + match one dispatch group at a time. Each worker
	// accumulates its busy time (from group pickup to result delivery
	// readiness) into its own counter, so the per-worker utilization of
	// the pool is observable; queue depth reflects documents dispatched
	// but not yet picked up, and StreamJobs/StreamBatches expose the
	// effective group size.
	var wg sync.WaitGroup
	wg.Add(workers)
	for w := 0; w < workers; w++ {
		go func(w int) {
			defer wg.Done()
			busy := e.mx.StreamBusy(w)
			for j := range jobs {
				e.mx.StreamQueueDepth.Add(int64(-len(j.docs)))
				e.mx.StreamJobs.Add(int64(len(j.docs)))
				e.mx.StreamBatches.Inc()
				t0 := time.Now()
				rs := make([]Result, len(j.docs))
				for k := range rs {
					rs[k] = Result{Index: j.base + k, Doc: j.docs[k]}
				}
				e.matchStreamGroup(ctx, rs)
				busy.Add(int64(time.Since(t0)))
				for k := range rs {
					select {
					case unordered <- rs[k]:
					case <-ctx.Done():
						return
					}
				}
			}
		}(w)
	}
	go func() {
		wg.Wait()
		close(unordered)
	}()

	// Reorderer: restore input order.
	go func() {
		defer close(out)
		pending := make(map[int]Result)
		next := 0
		for r := range unordered {
			pending[r.Index] = r
			for {
				rr, ok := pending[next]
				if !ok {
					break
				}
				delete(pending, next)
				select {
				case out <- rr:
					next++
				case <-ctx.Done():
					return
				}
			}
		}
	}()
	return out
}

// MatchBatch filters a slice of documents through the MatchStream pipeline
// and returns one Result per document, in input order. Per-document
// failures (parse errors, limit trips, recovered panics) are reported in
// the corresponding Result, not as a batch failure.
func (e *Engine) MatchBatch(docs [][]byte, workers int) []Result {
	return e.MatchBatchContext(context.Background(), docs, workers)
}

// MatchBatchContext is MatchBatch under the caller's context. It always
// returns exactly one Result per input document: documents the cancelled
// stream dropped are filled in with the context's error, so a shed batch
// is distinguishable from an empty match — partial work is never silently
// reported as "no match".
func (e *Engine) MatchBatchContext(ctx context.Context, docs [][]byte, workers int) []Result {
	in := make(chan []byte, len(docs))
	for _, d := range docs {
		in <- d
	}
	close(in)
	out := make([]Result, len(docs))
	filled := make([]bool, len(docs))
	for r := range e.MatchStream(ctx, in, workers) {
		if r.Index >= 0 && r.Index < len(out) {
			out[r.Index] = r
			filled[r.Index] = true
		}
	}
	for i := range out {
		if !filled[i] {
			err := ctx.Err()
			if err == nil {
				err = context.Canceled
			}
			out[i] = Result{Index: i, Doc: docs[i], Err: err}
		}
	}
	return out
}

// MergeSIDSets merges ascending-ordered SID sets into one ascending,
// duplicate-free result — the gather half of a scatter/gather publish,
// where each cluster shard reports the matches of its subscription
// partition and the union must come out in one canonical delivery order.
// It is the cross-shard generalization of the ordered-merge machinery
// MatchStream uses within one process: a k-way merge that, like the
// stream's reorderer, imposes a deterministic order on concurrently
// produced partial results. Sets must each be sorted ascending; they may
// overlap (duplicates collapse).
func MergeSIDSets(sets [][]SID) []SID {
	heads := make([]int, len(sets))
	total := 0
	for _, s := range sets {
		total += len(s)
	}
	if total == 0 {
		return nil
	}
	out := make([]SID, 0, total)
	for {
		best := -1
		for i, s := range sets {
			if heads[i] >= len(s) {
				continue
			}
			if best < 0 || s[heads[i]] < sets[best][heads[best]] {
				best = i
			}
		}
		if best < 0 {
			return out
		}
		v := sets[best][heads[best]]
		heads[best]++
		if len(out) == 0 || out[len(out)-1] != v {
			out = append(out, v)
		}
	}
}

// MatchParallel parses the document and matches it with its root-to-leaf
// paths sharded across worker goroutines (workers ≤ 0 selects
// GOMAXPROCS). Results are identical to Match; use it for single large
// documents, and MatchStream/MatchBatch to parallelize across documents.
// The engine's structural limits apply while parsing; the match budget
// applies per shard (the aggregate step bound is workers × MaxSteps).
func (e *Engine) MatchParallel(doc []byte, workers int) ([]SID, error) {
	d, err := xmldoc.ParseLimitsMode(doc, e.limits, e.pmode)
	if err != nil {
		return nil, e.recordGovernance(err)
	}
	sids, err := e.m.MatchDocumentParallelBudget(d, workers, guard.NewBudget(context.Background(), e.limits))
	if err != nil {
		return nil, e.recordGovernance(err)
	}
	return sids, nil
}

// MatchParsedParallel is MatchParallel for a pre-parsed document, without
// limits (the caller already accepted the document's size by parsing it;
// use MatchParsedParallelContext to budget the match stage).
func (e *Engine) MatchParsedParallel(d *Document, workers int) []SID {
	return e.m.MatchDocumentParallel(d.doc, workers)
}

// MatchParsedParallelContext is MatchParsedParallel under the engine's
// match budget and the caller's context (the parse-stage limits do not
// apply — the document is already materialized). The deadline and
// cancellation bound the whole match; the step budget applies per shard
// (the aggregate bound is workers × MaxSteps).
func (e *Engine) MatchParsedParallelContext(ctx context.Context, d *Document, workers int) ([]SID, error) {
	sids, err := e.m.MatchDocumentParallelBudget(d.doc, workers, guard.NewBudget(ctx, e.limits))
	if err != nil {
		return nil, e.recordGovernance(err)
	}
	return sids, nil
}
