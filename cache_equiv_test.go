package predfilter_test

import (
	"context"
	"fmt"
	"math/rand"
	"slices"
	"strings"
	"testing"

	"predfilter"
	"predfilter/workload"
)

// nestedVariant rewrites a plain generated path expression into a
// nested-path-filter form ("/a/b/c" → "/a/b[c]") so the property test also
// covers the value-dependent nested branch of the cache. It returns "" when
// the expression has no safely liftable final step.
func nestedVariant(xpe string) string {
	if strings.ContainsAny(xpe, "[*") {
		return ""
	}
	i := strings.LastIndex(xpe, "/")
	if i <= 0 || xpe[i-1] == '/' || i == len(xpe)-1 {
		return ""
	}
	return xpe[:i] + "[" + xpe[i+1:] + "]"
}

func sortedSIDs(sids []predfilter.SID) []predfilter.SID {
	out := slices.Clone(sids)
	slices.Sort(out)
	return out
}

// TestCacheEquivalenceRandomized is the DTD-driven property test for the
// structural path-signature cache and the columnar batch matcher: an
// engine with the cache enabled (plus one with a tiny bound, to force
// evictions) must produce exactly the match sets of a cache-disabled
// engine, across randomized interleavings of Add, Remove (both
// invalidate the cache) and repeated matching (which serves later
// documents from cache), through Match, MatchBatch and MatchStream. The
// columnar engines force the bitset kernel on the batch paths (their
// single-document Match calls stay scalar, so cache entries written by
// either matcher must be served correctly by the other) at each cache
// setting. The CI race leg runs this under -race, which also checks the
// shared cache's synchronization in the worker pipeline and the columnar
// index's freeze-generation rebuilds under concurrent registration.
func TestCacheEquivalenceRandomized(t *testing.T) {
	const trials = 6
	for _, schema := range []workload.Schema{workload.NITF(), workload.PSD()} {
		for trial := 0; trial < trials; trial++ {
			t.Run(fmt.Sprintf("%s/%d", schema.Name(), trial), func(t *testing.T) {
				seed := int64(1000*trial + 17)
				rng := rand.New(rand.NewSource(seed))
				docs := workload.Documents(schema, 6, workload.DocumentConfig{MaxLevels: 6, Seed: seed})
				xpes, err := workload.Expressions(schema, 30, workload.ExpressionConfig{
					MaxLength:  6,
					Wildcard:   0.2,
					Descendant: 0.2,
					Filters:    trial % 2, // half the trials carry attribute filters
					Seed:       seed,
				})
				if err != nil {
					t.Fatal(err)
				}
				for _, x := range xpes {
					if nv := nestedVariant(x); nv != "" {
						xpes = append(xpes, nv)
						if len(xpes) >= 40 {
							break
						}
					}
				}

				engines := []*predfilter.Engine{
					predfilter.New(predfilter.Config{}),                        // default cache
					predfilter.New(predfilter.Config{PathCacheBytes: 8 << 10}), // tiny: constant eviction pressure
					predfilter.New(predfilter.Config{ // columnar batches + default cache
						Columnar: predfilter.ColumnarOn, StreamBatch: 4}),
					predfilter.New(predfilter.Config{ // columnar + eviction pressure
						Columnar: predfilter.ColumnarOn, PathCacheBytes: 8 << 10}),
					predfilter.New(predfilter.Config{ // columnar, cache off
						Columnar: predfilter.ColumnarOn, PathCacheBytes: -1}),
					predfilter.New(predfilter.Config{PathCacheBytes: -1}), // disabled reference
				}
				add := func(x string) predfilter.SID {
					var want predfilter.SID
					for i, eng := range engines {
						sid, err := eng.Add(x)
						if err != nil {
							t.Fatal(err)
						}
						if i == 0 {
							want = sid
						} else if sid != want {
							t.Fatalf("sid drift: engine %d assigned %d, want %d", i, sid, want)
						}
					}
					return want
				}
				remove := func(sid predfilter.SID) {
					for _, eng := range engines {
						if err := eng.Remove(sid); err != nil {
							t.Fatal(err)
						}
					}
				}
				compareDoc := func(doc []byte, step int) {
					want, err := engines[len(engines)-1].Match(doc)
					if err != nil {
						t.Fatal(err)
					}
					ws := sortedSIDs(want)
					for i, eng := range engines[:len(engines)-1] {
						got, err := eng.Match(doc)
						if err != nil {
							t.Fatal(err)
						}
						if !slices.Equal(sortedSIDs(got), ws) {
							t.Fatalf("step %d engine %d: cached match %v != uncached %v", step, i, sortedSIDs(got), ws)
						}
					}
				}

				var live []predfilter.SID
				next := 0
				for step := 0; step < 60; step++ {
					switch op := rng.Intn(10); {
					case op < 3 && next < len(xpes): // add
						live = append(live, add(xpes[next]))
						next++
					case op < 5 && len(live) > 0: // remove
						i := rng.Intn(len(live))
						remove(live[i])
						live = append(live[:i], live[i+1:]...)
					default: // match (repeats hit the cache)
						compareDoc(docs[rng.Intn(len(docs))], step)
					}
				}

				// Batch and stream through the worker pipeline, twice so the
				// second pass is all cache hits on the shared cache.
				for pass := 0; pass < 2; pass++ {
					ref := engines[len(engines)-1].MatchBatch(docs, 3)
					for i, eng := range engines[:len(engines)-1] {
						in := make(chan []byte, len(docs))
						for _, d := range docs {
							in <- d
						}
						close(in)
						j := 0
						for r := range eng.MatchStream(context.Background(), in, 3) {
							if r.Err != nil || ref[j].Err != nil {
								t.Fatalf("stream errs %v / %v", r.Err, ref[j].Err)
							}
							if !slices.Equal(sortedSIDs(r.SIDs), sortedSIDs(ref[j].SIDs)) {
								t.Fatalf("pass %d engine %d doc %d: stream %v != batch ref %v",
									pass, i, j, sortedSIDs(r.SIDs), sortedSIDs(ref[j].SIDs))
							}
							j++
						}
						if j != len(docs) {
							t.Fatalf("stream returned %d results, want %d", j, len(docs))
						}
					}
				}

				// The default-cache engine must actually have been serving
				// hits, or the test proved nothing about the cached path.
				if pc := engines[0].Stats().PathCache; !pc.Enabled || pc.Hits == 0 {
					t.Fatalf("default cache saw no hits: %+v", pc)
				}
				if pc := engines[1].Stats().PathCache; pc.Evictions == 0 {
					t.Fatalf("tiny cache saw no evictions: %+v", pc)
				}
				// The columnar engines must actually have engaged the bitset
				// kernel on the batch passes, or the columnar half of the
				// property was vacuous.
				for i := 2; i < 5; i++ {
					if cs := engines[i].Stats().Columnar; cs.Batches == 0 || cs.Docs == 0 {
						t.Fatalf("engine %d never engaged the columnar kernel: %+v", i, cs)
					}
				}
			})
		}
	}
}
