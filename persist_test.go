package predfilter

import (
	"os"
	"path/filepath"
	"reflect"
	"sort"
	"testing"
	"time"
)

// The persistence acceptance property: add N subscriptions (some later
// removed), shut down — gracefully or by crash, with or without a torn
// log tail — reopen from the same state directory, and every document's
// matched SID set is identical to the pre-restart engine's.

var persistExprs = []string{
	"/nitf/body//p",
	"//keyword[@key=storm]",
	"/nitf/body//p", // duplicate: shares storage, distinct sid
	"/nitf/*/headline",
	"//media[@type=image]//caption",
	"/nitf//p[@lede=true]",
	"//body[keyword[@key=storm]]//p", // nested path filter
	"/feed/entry/title",
	"//entry[@lang=en]",
	"/nitf/head/title",
}

var persistDocs = [][]byte{
	[]byte(`<nitf><head><title>t</title></head><body><sec><p lede="true">x</p></sec><keyword key="storm"/></body></nitf>`),
	[]byte(`<nitf><x><headline>h</headline></x><body><p>plain</p></body></nitf>`),
	[]byte(`<feed><entry lang="en"><title>a</title></entry><entry lang="de"><title>b</title></entry></feed>`),
	[]byte(`<doc><media type="image"><inner><caption>c</caption></inner></media></doc>`),
	[]byte(`<nitf><body><keyword key="calm"/><p/></body></nitf>`),
}

func sortedSIDs(sids []SID) []SID {
	out := append([]SID(nil), sids...)
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	if len(out) == 0 {
		return []SID{}
	}
	return out
}

func matchAllSorted(t *testing.T, eng *Engine) [][]SID {
	t.Helper()
	out := make([][]SID, len(persistDocs))
	for i, d := range persistDocs {
		sids, err := eng.Match(d)
		if err != nil {
			t.Fatalf("Match(doc %d): %v", i, err)
		}
		out[i] = sortedSIDs(sids)
	}
	return out
}

// populate adds every expression and removes a few, returning the removed
// sids.
func populate(t *testing.T, pe *PersistentEngine) []SID {
	t.Helper()
	sids, err := pe.AddAll(persistExprs)
	if err != nil {
		t.Fatalf("AddAll: %v", err)
	}
	removed := []SID{sids[1], sids[4], sids[9]}
	for _, sid := range removed {
		if err := pe.Remove(sid); err != nil {
			t.Fatalf("Remove(%d): %v", sid, err)
		}
	}
	return removed
}

// copyStateDir clones a state directory, simulating the on-disk image a
// crash would leave (the source process keeps running, unaware).
func copyStateDir(t *testing.T, src string) string {
	t.Helper()
	dst := t.TempDir()
	files, err := os.ReadDir(src)
	if err != nil {
		t.Fatal(err)
	}
	for _, f := range files {
		data, err := os.ReadFile(filepath.Join(src, f.Name()))
		if err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(filepath.Join(dst, f.Name()), data, 0o644); err != nil {
			t.Fatal(err)
		}
	}
	return dst
}

func TestPersistentRestartRoundTrip(t *testing.T) {
	for _, cfg := range []PersistentConfig{
		{NoSync: true},
		{NoSync: true, Engine: Config{Organization: Basic, AttributeMode: PostponedAttributes}},
		{NoSync: true, SnapshotEvery: 3}, // snapshots interleave with the ops
	} {
		dir := t.TempDir()
		pe, err := Open(dir, cfg)
		if err != nil {
			t.Fatal(err)
		}
		removed := populate(t, pe)
		want := matchAllSorted(t, pe.Engine)
		wantSubs := pe.Subscriptions()
		if err := pe.Close(); err != nil {
			t.Fatalf("Close: %v", err)
		}

		pe2, err := Open(dir, cfg)
		if err != nil {
			t.Fatalf("reopen: %v", err)
		}
		if got := matchAllSorted(t, pe2.Engine); !reflect.DeepEqual(got, want) {
			t.Fatalf("cfg %+v: matches after restart = %v, want %v", cfg, got, want)
		}
		if got := pe2.Subscriptions(); !reflect.DeepEqual(got, wantSubs) {
			t.Fatalf("cfg %+v: subscriptions after restart = %v, want %v", cfg, got, wantSubs)
		}
		// Removed sids stay dead and are not reissued to newcomers.
		for _, sid := range removed {
			if err := pe2.Remove(sid); err == nil {
				t.Fatalf("removed sid %d came back after restart", sid)
			}
		}
		nsid, err := pe2.Add("/brand/new")
		if err != nil {
			t.Fatal(err)
		}
		if int(nsid) != len(persistExprs) {
			t.Fatalf("post-restart sid = %d, want %d", nsid, len(persistExprs))
		}
		pe2.Close()
	}
}

// TestPersistentCrashRecovery reopens from a copy of the state directory
// without any graceful shutdown: recovery must come entirely from the WAL
// (no snapshot was ever written).
func TestPersistentCrashRecovery(t *testing.T) {
	dir := t.TempDir()
	pe, err := Open(dir, PersistentConfig{NoSync: true, SnapshotEvery: -1})
	if err != nil {
		t.Fatal(err)
	}
	populate(t, pe)
	want := matchAllSorted(t, pe.Engine)
	crashed := copyStateDir(t, dir)

	pe2, err := Open(crashed, PersistentConfig{NoSync: true})
	if err != nil {
		t.Fatalf("recover from crash image: %v", err)
	}
	defer pe2.Close()
	if st := pe2.StoreStats(); st.SnapshotEntries != 0 || st.ReplayedRecords == 0 {
		t.Fatalf("expected WAL-only recovery, got %+v", st)
	}
	if got := matchAllSorted(t, pe2.Engine); !reflect.DeepEqual(got, want) {
		t.Fatalf("matches after crash recovery = %v, want %v", got, want)
	}
	pe.Close()
}

// TestPersistentTornTailRecovery tears the WAL mid-record and checks the
// recovered engine matches exactly like an in-memory engine holding the
// surviving operation prefix.
func TestPersistentTornTailRecovery(t *testing.T) {
	dir := t.TempDir()
	pe, err := Open(dir, PersistentConfig{NoSync: true, SnapshotEvery: -1})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := pe.AddAll(persistExprs); err != nil {
		t.Fatal(err)
	}
	crashed := copyStateDir(t, dir)
	pe.Close()

	// Tear the tail: chop 3 bytes off the last record.
	walPath := filepath.Join(crashed, "wal.log")
	data, err := os.ReadFile(walPath)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(walPath, data[:len(data)-3], 0o644); err != nil {
		t.Fatal(err)
	}

	pe2, err := Open(crashed, PersistentConfig{NoSync: true})
	if err != nil {
		t.Fatalf("recover from torn tail: %v", err)
	}
	defer pe2.Close()
	if st := pe2.StoreStats(); st.TornBytes == 0 {
		t.Fatal("expected torn bytes to be reported")
	}
	// Reference: a fresh in-memory engine with all but the torn-off last
	// expression.
	ref := New(Config{})
	if _, err := ref.AddAll(persistExprs[:len(persistExprs)-1]); err != nil {
		t.Fatal(err)
	}
	want := matchAllSorted(t, ref)
	if got := matchAllSorted(t, pe2.Engine); !reflect.DeepEqual(got, want) {
		t.Fatalf("matches after torn-tail recovery = %v, want %v", got, want)
	}
}

// TestRecoveredMatchesInMemoryEquivalent replays the recovered live set
// into a fresh in-memory engine via AddWithSID and checks snapshot/replay
// recovery produces the same matcher behaviour.
func TestRecoveredMatchesInMemoryEquivalent(t *testing.T) {
	dir := t.TempDir()
	pe, err := Open(dir, PersistentConfig{NoSync: true})
	if err != nil {
		t.Fatal(err)
	}
	populate(t, pe)
	if err := pe.Snapshot(); err != nil {
		t.Fatal(err)
	}
	subs := pe.Subscriptions()
	pe.Close()

	pe2, err := Open(dir, PersistentConfig{NoSync: true})
	if err != nil {
		t.Fatal(err)
	}
	defer pe2.Close()

	mem := New(Config{})
	for _, sub := range subs {
		if err := mem.m.AddWithSID(sub.Expression, sub.ID); err != nil {
			t.Fatalf("AddWithSID(%q, %d): %v", sub.Expression, sub.ID, err)
		}
	}
	if got, want := matchAllSorted(t, pe2.Engine), matchAllSorted(t, mem); !reflect.DeepEqual(got, want) {
		t.Fatalf("snapshot recovery = %v, in-memory equivalent = %v", got, want)
	}
}

func TestSnapshotPolicies(t *testing.T) {
	dir := t.TempDir()
	pe, err := Open(dir, PersistentConfig{NoSync: true, SnapshotEvery: 4})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 10; i++ {
		if _, err := pe.Add("/a/b"); err != nil {
			t.Fatal(err)
		}
	}
	st := pe.StoreStats()
	if st.Snapshots != 2 {
		t.Fatalf("size-triggered snapshots = %d, want 2 (10 ops, every 4)", st.Snapshots)
	}
	if st.WALRecords != 2 {
		t.Fatalf("WALRecords = %d, want 2", st.WALRecords)
	}
	pe.Close()

	// Periodic policy.
	pe2, err := Open(dir, PersistentConfig{NoSync: true, SnapshotEvery: -1, SnapshotInterval: 10 * time.Millisecond})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := pe2.Add("/c"); err != nil {
		t.Fatal(err)
	}
	deadline := time.Now().Add(5 * time.Second)
	for pe2.StoreStats().Snapshots == 0 {
		if time.Now().After(deadline) {
			t.Fatal("periodic snapshot never fired")
		}
		time.Sleep(5 * time.Millisecond)
	}
	if err := pe2.Close(); err != nil {
		t.Fatal(err)
	}
}

func TestClosedEngineRejectsMutations(t *testing.T) {
	dir := t.TempDir()
	pe, err := Open(dir, PersistentConfig{NoSync: true})
	if err != nil {
		t.Fatal(err)
	}
	sid, err := pe.Add("/a")
	if err != nil {
		t.Fatal(err)
	}
	if err := pe.Close(); err != nil {
		t.Fatal(err)
	}
	if _, err := pe.Add("/b"); err == nil {
		t.Fatal("Add after Close succeeded")
	}
	if err := pe.Remove(sid); err == nil {
		t.Fatal("Remove after Close succeeded")
	}
	if err := pe.Close(); err != nil {
		t.Fatalf("second Close: %v", err)
	}
	// Matching stays available on the in-memory engine after Close.
	sids, err := pe.Match([]byte(`<a/>`))
	if err != nil || len(sids) != 1 || sids[0] != sid {
		t.Fatalf("Match after Close = %v, %v; want [%d]", sids, err, sid)
	}
}
