module predfilter

go 1.22
