package predfilter

import (
	"context"
	"sync"
	"testing"
)

// TestMatchStreamAfterRemove: once Remove returns, the removed SID must
// not appear in any result of a subsequently started stream, across the
// worker pipeline and with registrations churning concurrently (run under
// -race in CI).
func TestMatchStreamAfterRemove(t *testing.T) {
	eng := New(Config{})
	dead, err := eng.AddAll([]string{"/a/b", "/a/b"}) // duplicates share storage
	if err != nil {
		t.Fatal(err)
	}
	keep, err := eng.Add("//b")
	if err != nil {
		t.Fatal(err)
	}
	doc := []byte(`<a><b/></a>`)
	// Freeze, then remove one duplicate.
	if _, err := eng.Match(doc); err != nil {
		t.Fatal(err)
	}
	if err := eng.Remove(dead[0]); err != nil {
		t.Fatal(err)
	}

	var churn sync.WaitGroup
	stop := make(chan struct{})
	churn.Add(1)
	go func() {
		defer churn.Done()
		for {
			select {
			case <-stop:
				return
			default:
			}
			sid, err := eng.Add("/a/*")
			if err != nil {
				t.Error(err)
				return
			}
			if err := eng.Remove(sid); err != nil {
				t.Error(err)
				return
			}
		}
	}()

	const docs = 200
	in := make(chan []byte, docs)
	for i := 0; i < docs; i++ {
		in <- doc
	}
	close(in)
	n := 0
	for r := range eng.MatchStream(context.Background(), in, 4) {
		if r.Err != nil {
			t.Fatal(r.Err)
		}
		n++
		foundKeep, foundDup := false, false
		for _, sid := range r.SIDs {
			if sid == dead[0] {
				t.Fatalf("removed sid %d reappeared in stream result %d", dead[0], r.Index)
			}
			if sid == keep {
				foundKeep = true
			}
			if sid == dead[1] {
				foundDup = true
			}
		}
		if !foundKeep || !foundDup {
			t.Fatalf("result %d lost surviving sids: %v", r.Index, r.SIDs)
		}
	}
	if n != docs {
		t.Fatalf("stream returned %d results, want %d", n, docs)
	}
	close(stop)
	churn.Wait()

	if got := eng.Stats().Expressions; got != 2 {
		t.Fatalf("Stats().Expressions = %d, want 2 live", got)
	}
}
