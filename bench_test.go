// Benchmarks, one per table and figure of the paper's evaluation (§6).
// Each benchmark times one filtered document (parse + predicate matching +
// expression matching + result collection, as in the paper) at a reduced
// but shape-preserving workload size; cmd/xfbench runs the same
// experiments as full sweeps, up to paper scale with -scale full.
package predfilter_test

import (
	"fmt"
	"math/rand"
	"testing"

	"predfilter"
	"predfilter/internal/bench"
	"predfilter/internal/dtd"
	"predfilter/internal/fsmfilter"
	"predfilter/internal/indexfilter"
	"predfilter/internal/matcher"
	"predfilter/internal/occur"
	"predfilter/internal/predicate"
	"predfilter/internal/xmldoc"
	"predfilter/internal/xtrie"
	"predfilter/internal/yfilter"
)

const benchDocs = 10

// benchWorkload builds a deterministic workload for benchmarks.
func benchWorkload(b *testing.B, d *dtd.DTD, exprs int, mutate func(*bench.WorkloadConfig)) *bench.Workload {
	b.Helper()
	cfg := bench.DefaultWorkloadConfig(exprs)
	cfg.Docs = benchDocs
	if mutate != nil {
		mutate(&cfg)
	}
	w, err := bench.NewWorkload(d, cfg)
	if err != nil {
		b.Fatal(err)
	}
	return w
}

// benchPredicate times the predicate engine, one document per iteration.
func benchPredicate(b *testing.B, w *bench.Workload, v matcher.Variant, mode predicate.AttrMode) {
	m := matcher.New(matcher.Options{Variant: v, AttrMode: mode})
	for _, s := range w.XPEs {
		if _, err := m.Add(s); err != nil {
			b.Fatal(err)
		}
	}
	docs, err := w.ParseDocs()
	if err != nil {
		b.Fatal(err)
	}
	// Warm (freeze the organizations outside the timed loop).
	m.MatchDocument(docs[0])
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		m.MatchDocument(docs[i%len(docs)])
	}
}

func benchYFilter(b *testing.B, w *bench.Workload) {
	e := yfilter.New()
	for _, s := range w.XPEs {
		if _, err := e.Add(s); err != nil {
			b.Fatal(err)
		}
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := e.Filter(w.Docs[i%len(w.Docs)]); err != nil {
			b.Fatal(err)
		}
	}
}

func benchIndexFilter(b *testing.B, w *bench.Workload) {
	e := indexfilter.New()
	for _, s := range w.XPEs {
		if _, err := e.Add(s); err != nil {
			b.Fatal(err)
		}
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := e.Filter(w.Docs[i%len(w.Docs)]); err != nil {
			b.Fatal(err)
		}
	}
}

// fiveWays runs the five §6.2 engine configurations as sub-benchmarks.
func fiveWays(b *testing.B, w *bench.Workload) {
	b.Run("basic", func(b *testing.B) { benchPredicate(b, w, matcher.Basic, predicate.Inline) })
	b.Run("basic-pc", func(b *testing.B) { benchPredicate(b, w, matcher.PrefixCover, predicate.Inline) })
	b.Run("basic-pc-ap", func(b *testing.B) { benchPredicate(b, w, matcher.PrefixCoverAP, predicate.Inline) })
	b.Run("yfilter", func(b *testing.B) { benchYFilter(b, w) })
	b.Run("index-filter", func(b *testing.B) { benchIndexFilter(b, w) })
}

// BenchmarkFig6aNITFDistinct is Figure 6(a): distinct expressions on the
// selective NITF workload (paper: 25k-125k; here 25k).
func BenchmarkFig6aNITFDistinct(b *testing.B) {
	w := benchWorkload(b, dtd.NITF(), 25000, nil)
	fiveWays(b, w)
}

// BenchmarkFig6bPSDDistinct is Figure 6(b): distinct expressions on the
// high-match PSD workload (paper: 1k-10k; here 5k).
func BenchmarkFig6bPSDDistinct(b *testing.B) {
	w := benchWorkload(b, dtd.PSD(), 5000, nil)
	fiveWays(b, w)
}

// BenchmarkFig7PSDDuplicates is Figure 7: a duplicate-heavy workload
// (paper: 0.5M-5M; here 100k with duplicates allowed).
func BenchmarkFig7PSDDuplicates(b *testing.B) {
	w := benchWorkload(b, dtd.PSD(), 100000, func(c *bench.WorkloadConfig) { c.Distinct = false })
	fiveWays(b, w)
}

// BenchmarkFig8Wildcard is Figure 8: the wildcard probability sweep
// (paper: W 0-0.9 at 2M expressions; here three W points at 50k).
// Index-Filter is excluded, as in the paper.
func BenchmarkFig8Wildcard(b *testing.B) {
	for _, wp := range []float64{0, 0.3, 0.9} {
		w := benchWorkload(b, dtd.NITF(), 50000, func(c *bench.WorkloadConfig) {
			c.Distinct = false
			c.Wildcard = wp
		})
		b.Run(fmt.Sprintf("W=%.1f/basic-pc-ap", wp), func(b *testing.B) {
			benchPredicate(b, w, matcher.PrefixCoverAP, predicate.Inline)
		})
		b.Run(fmt.Sprintf("W=%.1f/yfilter", wp), func(b *testing.B) { benchYFilter(b, w) })
	}
}

// BenchmarkFig8Descendant is the companion descendant-operator sweep.
func BenchmarkFig8Descendant(b *testing.B) {
	for _, do := range []float64{0, 0.3, 0.9} {
		w := benchWorkload(b, dtd.NITF(), 50000, func(c *bench.WorkloadConfig) {
			c.Distinct = false
			c.Descendant = do
		})
		b.Run(fmt.Sprintf("DO=%.1f/basic-pc-ap", do), func(b *testing.B) {
			benchPredicate(b, w, matcher.PrefixCoverAP, predicate.Inline)
		})
		b.Run(fmt.Sprintf("DO=%.1f/yfilter", do), func(b *testing.B) { benchYFilter(b, w) })
		b.Run(fmt.Sprintf("DO=%.1f/index-filter", do), func(b *testing.B) { benchIndexFilter(b, w) })
	}
}

// attrWays runs the Figure 9 configurations: inline and selection
// postponed predicate evaluation against YFilter's selection-postponed
// mode, with 1 and 2 filters per expression.
func attrWays(b *testing.B, d *dtd.DTD) {
	for _, filters := range []int{1, 2} {
		w := benchWorkload(b, d, 25000, func(c *bench.WorkloadConfig) {
			c.Distinct = false
			c.Filters = filters
		})
		b.Run(fmt.Sprintf("inline-%d", filters), func(b *testing.B) {
			benchPredicate(b, w, matcher.PrefixCoverAP, predicate.Inline)
		})
		b.Run(fmt.Sprintf("sp-%d", filters), func(b *testing.B) {
			benchPredicate(b, w, matcher.PrefixCoverAP, predicate.Postponed)
		})
		b.Run(fmt.Sprintf("yfilter-%d", filters), func(b *testing.B) { benchYFilter(b, w) })
	}
}

// BenchmarkFig9aNITFFilters is Figure 9(a): attribute filters on NITF.
func BenchmarkFig9aNITFFilters(b *testing.B) { attrWays(b, dtd.NITF()) }

// BenchmarkFig9bPSDFilters is Figure 9(b): attribute filters on PSD.
func BenchmarkFig9bPSDFilters(b *testing.B) { attrWays(b, dtd.PSD()) }

// BenchmarkFig10Breakdown is Figure 10: the predicate- vs
// expression-matching cost split, reported as custom metrics.
func BenchmarkFig10Breakdown(b *testing.B) {
	w := benchWorkload(b, dtd.NITF(), 100000, func(c *bench.WorkloadConfig) { c.Distinct = false })
	m := matcher.New(matcher.Options{Variant: matcher.PrefixCoverAP})
	for _, s := range w.XPEs {
		if _, err := m.Add(s); err != nil {
			b.Fatal(err)
		}
	}
	docs, err := w.ParseDocs()
	if err != nil {
		b.Fatal(err)
	}
	m.MatchDocument(docs[0])
	var pred, expr, other float64
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_, bd := m.MatchDocumentBreakdown(docs[i%len(docs)])
		pred += float64(bd.PredMatch.Nanoseconds())
		expr += float64(bd.ExprMatch.Nanoseconds())
		other += float64(bd.Other.Nanoseconds())
	}
	b.ReportMetric(pred/float64(b.N), "pred-ns/op")
	b.ReportMetric(expr/float64(b.N), "expr-ns/op")
	b.ReportMetric(other/float64(b.N), "other-ns/op")
	b.ReportMetric(float64(m.Stats().DistinctPredicates), "distinct-preds")
}

// BenchmarkParseOnly is the §6.5 parsing-cost claim: document parsing and
// path encoding are a negligible share of filter time (paper: 314/355 µs
// per document).
func BenchmarkParseOnly(b *testing.B) {
	for _, d := range []*dtd.DTD{dtd.NITF(), dtd.PSD()} {
		w := benchWorkload(b, d, 100, nil)
		b.Run(d.Name, func(b *testing.B) {
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := xmldoc.Parse(w.Docs[i%len(w.Docs)]); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkTable1 times the predicate matching stage on the Table 1
// example (a micro-benchmark of the shared predicate index).
func BenchmarkTable1(b *testing.B) {
	ix := bench.Table1Index()
	doc := xmldoc.FromPaths([]string{"a", "b", "c", "a", "b", "c"})
	res := ix.NewResults()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res.Reset(ix.Len())
		ix.MatchPath(&doc.Paths[0], res)
	}
}

// BenchmarkAblationODFirstVsAll compares the occurrence determination
// early exit (the paper's matching semantic needs one match) against
// enumerating every combination (what an all-matches engine would pay).
func BenchmarkAblationODFirstVsAll(b *testing.B) {
	rng := rand.New(rand.NewSource(5))
	chains := make([][][]occur.Pair, 64)
	for i := range chains {
		n := 2 + rng.Intn(4)
		chain := make([][]occur.Pair, n)
		for j := range chain {
			k := 1 + rng.Intn(6)
			for p := 0; p < k; p++ {
				chain[j] = append(chain[j], occur.Pair{A: int32(1 + rng.Intn(4)), B: int32(1 + rng.Intn(4))})
			}
		}
		chains[i] = chain
	}
	b.Run("first-match", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			occur.Determine(chains[i%len(chains)])
		}
	})
	b.Run("all-matches", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			occur.Enumerate(chains[i%len(chains)], func([]occur.Pair) bool { return true })
		}
	})
}

// BenchmarkAblationPathDedup measures the per-document effect of
// deduplicating structurally identical root-to-leaf paths (an
// implementation addition on top of the paper; see DESIGN.md).
func BenchmarkAblationPathDedup(b *testing.B) {
	w := benchWorkload(b, dtd.NITF(), 25000, nil)
	for _, dedup := range []bool{true, false} {
		name := "on"
		if !dedup {
			name = "off"
		}
		b.Run(name, func(b *testing.B) {
			m := matcher.New(matcher.Options{Variant: matcher.PrefixCoverAP, DisablePathDedup: !dedup})
			for _, s := range w.XPEs {
				if _, err := m.Add(s); err != nil {
					b.Fatal(err)
				}
			}
			docs, err := w.ParseDocs()
			if err != nil {
				b.Fatal(err)
			}
			m.MatchDocument(docs[0])
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				m.MatchDocument(docs[i%len(docs)])
			}
		})
	}
}

// BenchmarkAblationCovering compares the paper's prefix covering against
// the containment-covering extension (suffix/infix marking), and the
// paper's first-predicate clustering against rarest-predicate clustering,
// on the high-match PSD workload where covering pays.
func BenchmarkAblationCovering(b *testing.B) {
	w := benchWorkload(b, dtd.PSD(), 10000, nil)
	cfgs := []struct {
		name string
		opts matcher.Options
	}{
		{"prefix-cover", matcher.Options{Variant: matcher.PrefixCoverAP}},
		{"containment-cover", matcher.Options{Variant: matcher.PrefixCoverAP, CoverMode: matcher.Containment}},
		{"first-pred-cluster", matcher.Options{Variant: matcher.PrefixCoverAP}},
		{"rarest-pred-cluster", matcher.Options{Variant: matcher.PrefixCoverAP, ClusterBy: matcher.RarestPredicate}},
		{"all-extensions", matcher.Options{Variant: matcher.PrefixCoverAP, CoverMode: matcher.Containment, ClusterBy: matcher.RarestPredicate}},
	}
	docs, err := w.ParseDocs()
	if err != nil {
		b.Fatal(err)
	}
	for _, c := range cfgs {
		b.Run(c.name, func(b *testing.B) {
			m := matcher.New(c.opts)
			for _, s := range w.XPEs {
				if _, err := m.Add(s); err != nil {
					b.Fatal(err)
				}
			}
			m.MatchDocument(docs[0])
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				m.MatchDocument(docs[i%len(docs)])
			}
		})
	}
}

// BenchmarkAblationRegistration measures expression registration:
// duplicate-heavy registration exercises the dedup fast path (predicate
// and expression sharing), distinct registration the slow path.
func BenchmarkAblationRegistration(b *testing.B) {
	nitf := dtd.NITF()
	w := benchWorkload(b, nitf, 50000, func(c *bench.WorkloadConfig) { c.Distinct = false })
	b.Run("duplicate-heavy", func(b *testing.B) {
		m := matcher.New(matcher.Options{})
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if _, err := m.Add(w.XPEs[i%len(w.XPEs)]); err != nil {
				b.Fatal(err)
			}
		}
	})
	wd := benchWorkload(b, nitf, 50000, nil)
	b.Run("distinct", func(b *testing.B) {
		m := matcher.New(matcher.Options{})
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if _, err := m.Add(wd.XPEs[i%len(wd.XPEs)]); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// BenchmarkParallelMatch measures concurrent filtering throughput (the
// engine is read-only during matching, so document streams parallelize).
func BenchmarkParallelMatch(b *testing.B) {
	w := benchWorkload(b, dtd.NITF(), 25000, nil)
	m := matcher.New(matcher.Options{Variant: matcher.PrefixCoverAP})
	for _, s := range w.XPEs {
		if _, err := m.Add(s); err != nil {
			b.Fatal(err)
		}
	}
	docs, err := w.ParseDocs()
	if err != nil {
		b.Fatal(err)
	}
	m.MatchDocument(docs[0])
	b.ResetTimer()
	b.RunParallel(func(pb *testing.PB) {
		i := 0
		for pb.Next() {
			m.MatchDocument(docs[i%len(docs)])
			i++
		}
	})
}

// BenchmarkMatchStream measures batch filtering throughput through the
// worker pipeline (parse + match per document, results in input order).
// One iteration filters one document.
func BenchmarkMatchStream(b *testing.B) {
	w := benchWorkload(b, dtd.NITF(), 25000, nil)
	eng := predfilter.New(predfilter.Config{})
	for _, s := range w.XPEs {
		if _, err := eng.Add(s); err != nil {
			b.Fatal(err)
		}
	}
	// Warm (freeze the organizations outside the timed loop).
	if _, err := eng.Match(w.Docs[0]); err != nil {
		b.Fatal(err)
	}
	for _, workers := range []int{1, 2, 4} {
		b.Run(fmt.Sprintf("workers-%d", workers), func(b *testing.B) {
			b.ReportAllocs()
			b.ResetTimer()
			for done := 0; done < b.N; done += len(w.Docs) {
				for _, r := range eng.MatchBatch(w.Docs, workers) {
					if r.Err != nil {
						b.Fatal(r.Err)
					}
				}
			}
		})
	}
}

// BenchmarkMatchCounts compares the filtering semantics (first match per
// expression) against the all-matches mode.
func BenchmarkMatchCounts(b *testing.B) {
	w := benchWorkload(b, dtd.PSD(), 5000, nil)
	m := matcher.New(matcher.Options{Variant: matcher.PrefixCoverAP})
	for _, s := range w.XPEs {
		if _, err := m.Add(s); err != nil {
			b.Fatal(err)
		}
	}
	docs, err := w.ParseDocs()
	if err != nil {
		b.Fatal(err)
	}
	m.MatchDocument(docs[0])
	b.Run("first-match", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			m.MatchDocument(docs[i%len(docs)])
		}
	})
	b.Run("all-matches", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			m.MatchDocumentAll(docs[i%len(docs)])
		}
	})
}

// BenchmarkAblationSharing quantifies what expression sharing buys: the
// per-expression FSM baseline (XFilter) against the shared-NFA (YFilter)
// and shared-predicate (this paper) designs — §2's qualitative claim that
// XFilter "is not able to adequately handle overlap", measured.
func BenchmarkAblationSharing(b *testing.B) {
	w := benchWorkload(b, dtd.NITF(), 10000, nil)
	b.Run("xfilter-fsm", func(b *testing.B) {
		e := fsmfilter.New()
		for _, s := range w.XPEs {
			if _, err := e.Add(s); err != nil {
				b.Fatal(err)
			}
		}
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if _, err := e.Filter(w.Docs[i%len(w.Docs)]); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("xtrie", func(b *testing.B) {
		e := xtrie.New()
		for _, s := range w.XPEs {
			if _, err := e.Add(s); err != nil {
				b.Fatal(err)
			}
		}
		if _, err := e.Filter(w.Docs[0]); err != nil {
			b.Fatal(err)
		}
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if _, err := e.Filter(w.Docs[i%len(w.Docs)]); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("yfilter", func(b *testing.B) { benchYFilter(b, w) })
	b.Run("basic-pc-ap", func(b *testing.B) {
		benchPredicate(b, w, matcher.PrefixCoverAP, predicate.Inline)
	})
}
