package matcher

import (
	"reflect"
	"testing"

	"predfilter/internal/predicate"
	"predfilter/internal/predindex"
	"predfilter/internal/xmldoc"
)

// forceCollisions replaces every registration/freeze hash with a constant
// so all buckets conflict; identity must then be decided entirely by the
// full-compare logic. Restored on test cleanup.
func forceCollisions(t *testing.T) {
	t.Helper()
	origChain, origLevel, origNested := chainHashFn, levelHashFn, nestedKeyFn
	chainHashFn = func([]predindex.PID, []predicate.SideAttrs) uint64 { return 42 }
	levelHashFn = func(predindex.PID, []predicate.SideAttrs, int) uint64 { return 42 }
	nestedKeyFn = func(string) uint64 { return 42 }
	t.Cleanup(func() {
		chainHashFn, levelHashFn, nestedKeyFn = origChain, origLevel, origNested
	})
}

// TestCollisionDoesNotAliasExpressions registers distinct expressions
// whose chain hashes are forced equal and verifies they keep separate
// identities: matching reports exactly the right sids.
func TestCollisionDoesNotAliasExpressions(t *testing.T) {
	forceCollisions(t)
	// Parsed (not FromPaths) so the two paths share the root node: the
	// nested expression needs node identity for recombination.
	doc, err := xmldoc.Parse([]byte(`<a><b><c/></b><d/></a>`))
	if err != nil {
		t.Fatal(err)
	}
	for _, v := range allVariants {
		for mode := 0; mode < 2; mode++ {
			m := New(Options{Variant: v, AttrMode: predAttrMode(mode)})
			sids := mustAdd(t, m,
				"/a/b/c",     // matches
				"/a/d",       // matches — must not be merged with /a/b/c
				"/x/y",       // no match — must not be merged with a matching one
				`/a/b[@q=1]`, // no match (filter fails) — must stay distinct
				"/a/b",       // matches
				"/a[b/c]/d",  // nested, matches
				"/a[b/x]/d",  // nested, no match — distinct from the previous
				"/a/b/c",     // duplicate: must still dedup onto sids[0]'s expr
			)
			got := matchSet(m, doc)
			want := map[SID]bool{
				sids[0]: true, sids[1]: true, sids[4]: true,
				sids[5]: true, sids[7]: true,
			}
			if !reflect.DeepEqual(got, want) {
				t.Fatalf("%v/%d: got %v want %v", v, mode, got, want)
			}
			// The duplicate must share storage with the original even under
			// collisions (dedup by full compare, not by hash identity).
			st := m.Stats()
			if st.DistinctExpressions != 7 {
				t.Fatalf("%v/%d: distinct expressions %d, want 7", v, mode, st.DistinctExpressions)
			}
		}
	}
}

// TestCollisionPrefixCovering forces trie-level collisions and checks the
// prefix-cover organization still relates only true prefixes.
func TestCollisionPrefixCovering(t *testing.T) {
	forceCollisions(t)
	// "/a/b" is a true prefix of "/a/b/c"; "/x/y" collides with both in
	// every trie bucket but must never be marked via covering.
	doc := xmldoc.FromPaths([]string{"a", "b", "c"})
	m := New(Options{Variant: PrefixCover})
	sids := mustAdd(t, m, "/a/b/c", "/a/b", "/x/y")
	got := matchSet(m, doc)
	want := map[SID]bool{sids[0]: true, sids[1]: true}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("got %v want %v", got, want)
	}
}

// TestCollisionPostponedGroups forces group-key collisions in Postponed
// mode: two different structural chains must keep separate group
// representatives.
func TestCollisionPostponedGroups(t *testing.T) {
	forceCollisions(t)
	doc := xmldoc.FromPaths([]string{"a", "b"}, []string{"c", "d"})
	m := New(Options{AttrMode: predicate.Postponed})
	sids := mustAdd(t, m, `/a/b[@k=1]`, "/a/b", `/c/d[@k=1]`, "/c/d")
	got := matchSet(m, doc)
	// No attributes in the document: the filtered variants fail, the bare
	// ones match; a collision-merged group would corrupt this split.
	want := map[SID]bool{sids[1]: true, sids[3]: true}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("got %v want %v", got, want)
	}
}

// TestCollisionContainmentCovers forces collisions in the containment
// cover scan: subchain buckets contain unrelated expressions that must be
// rejected by the full compare.
func TestCollisionContainmentCovers(t *testing.T) {
	forceCollisions(t)
	doc := xmldoc.FromPaths([]string{"a", "b", "c", "d"})
	m := New(Options{Variant: PrefixCover, CoverMode: Containment})
	sids := mustAdd(t, m, "/a/b/c/d", "b/c", "/x/y")
	got := matchSet(m, doc)
	want := map[SID]bool{sids[0]: true, sids[1]: true}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("got %v want %v", got, want)
	}
}

// TestCollisionNestedDedup: two distinct nested expressions and one
// duplicate under a constant nested key.
func TestCollisionNestedDedup(t *testing.T) {
	forceCollisions(t)
	m := New(Options{})
	mustAdd(t, m, "/a[b/c]/d", "/a[b/x]/d", "/a[b/c]/d")
	if st := m.Stats(); st.DistinctExpressions != 2 {
		t.Fatalf("distinct expressions %d, want 2", st.DistinctExpressions)
	}
}
