package matcher

import (
	"bytes"
	"context"
	"errors"
	"strings"
	"testing"

	"predfilter/internal/guard"
	"predfilter/internal/xmldoc"
)

func chainDoc(t *testing.T, depth int) *xmldoc.Document {
	t.Helper()
	var b bytes.Buffer
	for i := 0; i < depth; i++ {
		b.WriteString("<a>")
	}
	for i := 0; i < depth; i++ {
		b.WriteString("</a>")
	}
	d, err := xmldoc.Parse(b.Bytes())
	if err != nil {
		t.Fatal(err)
	}
	return d
}

func stepBudget(max int64) *guard.Budget {
	return guard.NewBudget(context.Background(), guard.Limits{MaxSteps: max})
}

func TestMatchDocumentBudgetNilEqualsUnbudgeted(t *testing.T) {
	for _, v := range allVariants {
		m := New(Options{Variant: v})
		mustAdd(t, m, "//a//a", "/a/a/a", "//a[@k=v]")
		doc := chainDoc(t, 6)
		want := matchSet(m, doc)
		sids, _, err := m.MatchDocumentBudget(doc, nil)
		if err != nil {
			t.Fatalf("variant %v: nil budget errored: %v", v, err)
		}
		got := make(map[SID]bool)
		for _, sid := range sids {
			got[sid] = true
		}
		if len(got) != len(want) {
			t.Fatalf("variant %v: budgeted %v != unbudgeted %v", v, got, want)
		}
		for sid := range want {
			if !got[sid] {
				t.Fatalf("variant %v: missing sid %d", v, sid)
			}
		}
	}
}

func TestMatchDocumentBudgetTripsOnBlowup(t *testing.T) {
	for _, v := range allVariants {
		m := New(Options{Variant: v})
		// steps > depth: no chained combination exists, so occurrence
		// determination must walk the exponential dead-end space.
		mustAdd(t, m, strings.Repeat("//a", 20))
		doc := chainDoc(t, 18)
		sids, _, err := m.MatchDocumentBudget(doc, stepBudget(1000))
		if err == nil {
			t.Fatalf("variant %v: blowup returned %v with no error", v, sids)
		}
		if sids != nil {
			t.Fatalf("variant %v: partial result %v alongside error", v, sids)
		}
		var le *guard.LimitError
		if !errors.As(err, &le) || le.Kind != guard.Steps {
			t.Fatalf("variant %v: err = %v, want Steps *LimitError", v, err)
		}
	}
}

func TestMatchDocumentBudgetDoesNotPoisonCache(t *testing.T) {
	expr := strings.Repeat("//a", 6)
	m := New(Options{Variant: PrefixCoverAP, PathCacheBytes: 1 << 20})
	mustAdd(t, m, expr)
	doc := chainDoc(t, 8)

	// Trip the budget on the very first occurrence pair: the match fails
	// mid-path, after predicate marks were partially computed.
	if _, _, err := m.MatchDocumentBudget(doc, stepBudget(1)); err == nil {
		t.Fatal("1-step budget survived")
	}

	// A truncated mark set must not have been cached: an unbudgeted
	// re-match of the same document must agree with a fresh matcher.
	fresh := New(Options{Variant: PrefixCoverAP, PathCacheBytes: -1})
	mustAdd(t, fresh, expr)
	want := matchSet(fresh, doc)
	got := matchSet(m, doc)
	if len(want) != 1 {
		t.Fatalf("fresh matcher found %v, want the one match", want)
	}
	if len(got) != len(want) {
		t.Fatalf("re-match after budgeted abort = %v, want %v (cache poisoned?)", got, want)
	}
}

func TestMatchDocumentBudgetScratchReuseAfterAbort(t *testing.T) {
	// The pooled scratch must come back clean after an error return: a
	// budgeted abort followed by normal matches of other documents.
	m := New(Options{Variant: PrefixCoverAP})
	mustAdd(t, m, strings.Repeat("//a", 20))
	sids := mustAdd(t, m, "//b/c")
	if _, _, err := m.MatchDocumentBudget(chainDoc(t, 18), stepBudget(100)); err == nil {
		t.Fatal("budget survived the blowup")
	}
	d, err := xmldoc.Parse([]byte("<b><c/></b>"))
	if err != nil {
		t.Fatal(err)
	}
	got := matchSet(m, d)
	if !got[sids[0]] || len(got) != 1 {
		t.Fatalf("match after abort = %v, want exactly sid %d", got, sids[0])
	}
}

func TestMatchDocumentParallelBudget(t *testing.T) {
	m := New(Options{Variant: PrefixCoverAP})
	mustAdd(t, m, strings.Repeat("//a", 20))
	doc := chainDoc(t, 18)
	_, err := m.MatchDocumentParallelBudget(doc, 4, stepBudget(1000))
	var le *guard.LimitError
	if !errors.As(err, &le) || le.Kind != guard.Steps {
		t.Fatalf("parallel err = %v, want Steps *LimitError", err)
	}

	// Nil budget: parallel equals sequential.
	m2 := New(Options{Variant: PrefixCoverAP})
	mustAdd(t, m2, "//a//a", "/a/a")
	small := chainDoc(t, 6)
	seq := matchSet(m2, small)
	par, err := m2.MatchDocumentParallelBudget(small, 4, nil)
	if err != nil {
		t.Fatalf("parallel nil budget: %v", err)
	}
	if len(par) != len(seq) {
		t.Fatalf("parallel %v != sequential %v", par, seq)
	}
}

func TestMatchDocumentBudgetCanceledContext(t *testing.T) {
	m := New(Options{Variant: PrefixCoverAP})
	mustAdd(t, m, "//a")
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	_, _, err := m.MatchDocumentBudget(chainDoc(t, 4), guard.NewBudget(ctx, guard.Limits{}))
	var le *guard.LimitError
	if !errors.As(err, &le) || le.Kind != guard.Canceled {
		t.Fatalf("err = %v, want Canceled *LimitError", err)
	}
	if !errors.Is(err, context.Canceled) {
		t.Fatal("Canceled error should satisfy errors.Is(err, context.Canceled)")
	}
}
