package matcher

import (
	"predfilter/internal/predicate"
	"predfilter/internal/predindex"
)

// This file implements the two extensions the paper names as future work:
//
//   - Containment covering (§4.2.2): "the covering relation also holds,
//     if for two expressions, one constitutes a suffix or a contained
//     expression of the other one. We exploit prefix-covering ... and
//     postpone others to future work." A full occurrence-determination
//     match of an expression yields, by restriction, a consistent
//     assignment for every contiguous subchain, so every registered
//     expression whose chain is a contiguous subchain is matched too.
//
//   - Rarest-predicate access clustering (§4.2.2): "better ways of
//     determining candidate access predicates to cluster on come to
//     mind." Any predicate of a chain is a sound access predicate (if it
//     did not match the path, the expression cannot match); clustering on
//     the globally rarest one maximizes the chance an entire cluster is
//     skipped.
//
// Both are off by default so the default configurations measure exactly
// the paper's algorithms; benchmarks ablate them.

// CoverMode selects which covering relations are exploited.
type CoverMode int

const (
	// PrefixOnly is the paper's published technique.
	PrefixOnly CoverMode = iota
	// Containment additionally marks suffix- and infix-contained
	// expressions on a full match.
	Containment
)

// ClusterBy selects the access predicate used for clustering.
type ClusterBy int

const (
	// FirstPredicate is the paper's published choice.
	FirstPredicate ClusterBy = iota
	// RarestPredicate clusters each expression on its least common
	// predicate (by number of referencing expressions).
	RarestPredicate
)

// buildContainmentCovers fills e.fullCovers for every single-path
// expression: registered expressions whose (pid, annotation) chain is a
// strict contiguous subchain of e's. Prefix covers stay in e.covers (they
// also benefit from partial-depth marking); fullCovers holds the rest
// (suffixes and infixes), marked only on a full match.
func (m *Matcher) buildContainmentCovers(singles []*expr) {
	for _, e := range singles {
		e.fullCovers = e.fullCovers[:0]
		n := len(e.pids)
		for i := 1; i < n; i++ { // i = 0 is the prefix family, handled by e.covers
			for j := i + 1; j <= n; j++ {
				sub := subAttrs(e.post, i, j)
				key := chainHashFn(e.pids[i:j], sub)
				for _, c := range m.byKey[key] {
					if c != e && c.root == nil &&
						pidsEqual(c.pids, e.pids[i:j]) && postEqual(c.post, sub) {
						e.fullCovers = append(e.fullCovers, c)
					}
				}
			}
		}
	}
}

// subAttrs slices the postponed annotations; nil (no filters anywhere)
// hashes identically to all-empty annotations, so it passes through.
func subAttrs(post []predicate.SideAttrs, i, j int) []predicate.SideAttrs {
	if post == nil {
		return nil
	}
	return post[i:j]
}

// clusterPid returns the pid to cluster e on under the configured scheme.
// refCount maps pid → number of expressions referencing it.
func (m *Matcher) clusterPid(e *expr, refCount map[predindex.PID]int) predindex.PID {
	if m.opts.ClusterBy != RarestPredicate {
		return e.pids[0]
	}
	best := e.pids[0]
	for _, pid := range e.pids[1:] {
		if refCount[pid] < refCount[best] {
			best = pid
		}
	}
	return best
}

// markFullCovers marks containment-covered expressions after a full match
// of e.
func (m *Matcher) markFullCovers(sc *scratch, e *expr) {
	for _, c := range e.fullCovers {
		sc.mark(c.id)
	}
}
