package matcher

import (
	"fmt"

	"predfilter/internal/guard"
	"predfilter/internal/occur"
	"predfilter/internal/predicate"
	"predfilter/internal/predindex"
	"predfilter/internal/xpath"
)

// Nested path filters (paper §5): an expression such as
//
//	/a[*/c[d]/e]//c[d]/e
//
// is decomposed into a tree of linear sub-expressions — a main
// sub-expression plus, per nested filter, an extended sub-expression that
// prepends the prefix up to the hosting step. Each extended sub-expression
// records the branch position (the hosting step). After all document paths
// are evaluated, results recombine bottom-up: an extended sub-expression
// supports a main match only if both were matched through the same
// document node at the branch position.
//
// The paper detects "same node" by comparing child-index vectors
// <m1,...,mn> up to the branch position; two paths agreeing on the vector
// prefix share exactly the position-v ancestor, so this implementation
// uses document node identity directly (see DESIGN.md §6): every
// sub-expression match contributes the node id at its branch position, and
// witness sets are intersected bottom-up over the decomposition tree.

// nestedNode is one sub-expression in the decomposition tree.
type nestedNode struct {
	path       *xpath.Path // linear (nested filters stripped)
	enc        *predicate.Encoding
	pids       []predindex.PID
	post       []predicate.SideAttrs
	branchStep int // 0-based hosting step index in the parent path; -1 at the root
	children   []*nestedNode
}

// ExplainNested renders the decomposition of a nested-path expression:
// each sub-expression with its branch position and predicate encoding, in
// the paper's notation (§5, Figure 3).
func ExplainNested(p *xpath.Path) (string, error) {
	m := New(Options{})
	root, err := m.buildNested(p)
	if err != nil {
		return "", err
	}
	var b []byte
	var walk func(n *nestedNode, indent string)
	walk = func(n *nestedNode, indent string) {
		b = append(b, indent...)
		if n.branchStep < 0 {
			b = append(b, "main "...)
		} else {
			b = append(b, fmt.Sprintf("(pos, =, %d) ", n.branchStep+1)...)
		}
		b = append(b, n.path.String()...)
		b = append(b, ": "...)
		b = append(b, n.enc.String()...)
		b = append(b, '\n')
		for _, c := range n.children {
			walk(c, indent+"  ")
		}
	}
	walk(root, "")
	return string(b), nil
}

// registerNested decomposes, encodes and stores a nested-path expression.
// Nested expressions dedup on their canonical source text; the hash only
// selects the bucket, the stored source string decides identity, so a
// collision (with another nested expression or with a chain hash) can
// never alias two expressions.
func (m *Matcher) registerNested(p *xpath.Path) (*expr, error) {
	src := "nested:" + p.String()
	key := nestedKeyFn(src)
	for _, e := range m.byKey[key] {
		if e.root != nil && e.nsrc == src {
			return e, nil
		}
	}
	root, err := m.buildNested(p)
	if err != nil {
		return nil, err
	}
	e := &expr{id: len(m.exprs), root: root, nsrc: src}
	m.exprs = append(m.exprs, e)
	m.byKey[key] = append(m.byKey[key], e)
	m.dirty = true
	m.invalidatePathCache()
	return e, nil
}

// buildNested recursively decomposes p. The node's own path is p with all
// top-level nested filters stripped; each nested filter [q] hosted at step
// k becomes a child built from prefix(p, k+1) ++ q (which may itself
// contain nested filters, handled by recursion).
func (m *Matcher) buildNested(p *xpath.Path) (*nestedNode, error) {
	n := &nestedNode{branchStep: -1}
	main := &xpath.Path{Absolute: p.Absolute, Steps: make([]xpath.Step, len(p.Steps))}
	for i, s := range p.Steps {
		cs := s
		cs.Nested = nil
		main.Steps[i] = cs
	}
	n.path = main
	for k, s := range p.Steps {
		if len(s.Nested) == 0 {
			continue
		}
		if s.Wildcard {
			return nil, fmt.Errorf("matcher: nested path filter on wildcard step %d of %q is not supported", k+1, p)
		}
		for _, q := range s.Nested {
			childPath := &xpath.Path{Absolute: p.Absolute}
			childPath.Steps = append(childPath.Steps, main.Steps[:k+1]...)
			childPath.Steps = append(childPath.Steps, q.Clone().Steps...)
			child, err := m.buildNested(childPath)
			if err != nil {
				return nil, err
			}
			child.branchStep = k
			n.children = append(n.children, child)
		}
	}
	enc, err := predicate.Encode(n.path, m.opts.AttrMode)
	if err != nil {
		return nil, err
	}
	n.enc = enc
	n.pids = make([]predindex.PID, len(enc.Preds))
	for i, pr := range enc.Preds {
		n.pids[i] = m.ix.Insert(pr)
	}
	if enc.HasPostAttrs() {
		n.post = enc.PostAttrs
	}
	return n, nil
}

// nestedCand is one structural match of a sub-expression on one document
// path: the node id at the node's own branch position (or -1 at the root)
// plus the node ids at each child's branch position.
type nestedCand struct {
	own  int32
	kids []int32
}

// collect enumerates this node's (and recursively its children's)
// structural matches on the current publication and appends candidates to
// the per-call scratch. Each combination enumerated charges one budget
// step; once the budget trips the enumeration stops and the caller
// surfaces bud.Err instead of a result.
func (n *nestedNode) collect(m *Matcher, sc *scratch, bud *guard.Budget) {
	if bud.Exceeded() {
		return
	}
	for _, c := range n.children {
		c.collect(m, sc, bud)
	}
	if bud.Exceeded() {
		return
	}
	chain := sc.chain[:0]
	for _, pid := range n.pids {
		r := sc.res.Get(pid)
		if len(r) == 0 {
			sc.chain = chain
			return
		}
		chain = append(chain, r)
	}
	sc.chain = chain
	if n.post != nil {
		ne := &expr{pids: n.pids, post: n.post}
		filtered, ok := m.filterChain(sc, ne, chain)
		if !ok {
			return
		}
		chain = filtered
	}
	sc.buildByTag()
	occur.EnumerateBudget(chain, bud, func(assign []occur.Pair) bool {
		cand := nestedCand{own: -1}
		if n.branchStep >= 0 {
			cand.own = n.nodeIDAt(m, sc, assign, n.branchStep)
		}
		if len(n.children) > 0 {
			cand.kids = make([]int32, len(n.children))
			for i, c := range n.children {
				cand.kids[i] = n.nodeIDAt(m, sc, assign, c.branchStep)
			}
		}
		sc.ncands[n] = append(sc.ncands[n], cand)
		return true
	})
}

// nodeIDAt recovers the document node id matched by the given location
// step under the occurrence assignment, via the step→predicate reference
// map of the encoding.
func (n *nestedNode) nodeIDAt(m *Matcher, sc *scratch, assign []occur.Pair, step int) int32 {
	ref := n.enc.Refs[step]
	pr := assign[ref.Pred]
	p := m.ix.Pred(n.pids[ref.Pred])
	var tag string
	var o int32
	if ref.Side == predicate.Left {
		tag, o = p.Tag1, pr.A
	} else {
		tag, o = p.Tag2, pr.B
	}
	return int32(sc.byTag[tag][o-1].NodeID)
}

// resolveRoot reports whether the whole nested expression matched the
// document, recombining candidates bottom-up.
func (n *nestedNode) resolveRoot(sc *scratch) bool {
	_, any := n.resolve(sc)
	return any
}

// resolve returns the witness set (branch-position node ids of supported
// matches) and whether any candidate was supported by all children.
func (n *nestedNode) resolve(sc *scratch) (map[int32]bool, bool) {
	kidW := make([]map[int32]bool, len(n.children))
	for i, c := range n.children {
		kidW[i], _ = c.resolve(sc)
	}
	w := make(map[int32]bool)
	any := false
	for _, cand := range sc.ncands[n] {
		ok := true
		for i, k := range cand.kids {
			if !kidW[i][k] {
				ok = false
				break
			}
		}
		if !ok {
			continue
		}
		any = true
		if cand.own >= 0 {
			w[cand.own] = true
		}
	}
	return w, any
}
