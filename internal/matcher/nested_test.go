package matcher

import (
	"fmt"
	"math/rand"
	"strings"
	"testing"

	"predfilter/internal/refmatch"
	"predfilter/internal/xmldoc"
	"predfilter/internal/xpath"
)

// TestNestedPaperExample exercises the §5 example expression
// /a[*/c[d]/e]//c[d]/e on documents that do and do not satisfy it.
func TestNestedPaperExample(t *testing.T) {
	const xpe = "/a[*/c[d]/e]//c[d]/e"

	// A document containing both required branches: under a, a subtree
	// */c with children d and e; and a descendant c with children d and e.
	matching := `
	<a>
	  <x><c><d/><e/></c></x>
	  <q><c><d/><e/></c></q>
	</a>`
	// The grandchild filter [*/c[d]/e] is unsatisfied: the only complete
	// c[d]/e sits one level too deep (a/x/y/c, not a/*/c), although the
	// descendant part //c[d]/e still holds.
	nonMatching := `
	<a>
	  <x><y><c><d/><e/></c></y></x>
	</a>`
	// Bifurcation must happen at the same c node: here one c has d and a
	// different c has e, so c[d]/e holds for neither.
	splitNodes := `
	<a>
	  <x><c><d/></c><c><e/></c></x>
	</a>`

	// The x-subtree satisfies */c[d]/e AND //c[d]/e at once: both filters
	// may be witnessed by the same subtree.
	sharedWitness := `
	<a>
	  <x><c><d/><e/></c></x>
	</a>`

	cases := []struct {
		name string
		xml  string
		want bool
	}{
		{"matching", matching, true},
		{"non-matching", nonMatching, false},
		{"split-nodes", splitNodes, false},
		{"shared-witness", sharedWitness, true},
	}
	for _, v := range allVariants {
		for _, tc := range cases {
			t.Run(fmt.Sprintf("%s/%s", v, tc.name), func(t *testing.T) {
				doc, err := xmldoc.Parse([]byte(tc.xml))
				if err != nil {
					t.Fatal(err)
				}
				// Sanity: the oracle agrees with the hand analysis.
				if ref := refmatch.Match(xpath.MustParse(xpe), doc); ref != tc.want {
					t.Fatalf("reference matcher disagrees with hand analysis: %v", ref)
				}
				m := New(Options{Variant: v})
				sid, err := m.Add(xpe)
				if err != nil {
					t.Fatal(err)
				}
				if got := matchSet(m, doc)[sid]; got != tc.want {
					t.Errorf("matched=%v, want %v", got, tc.want)
				}
			})
		}
	}
}

// TestNestedSimple covers single-level nesting shapes.
func TestNestedSimple(t *testing.T) {
	doc, err := xmldoc.Parse([]byte(`<a><b><c/><d/></b><e/></a>`))
	if err != nil {
		t.Fatal(err)
	}
	cases := []struct {
		xpe  string
		want bool
	}{
		{"/a[e]/b", true},
		{"/a[e]/b/c", true},
		{"/a[x]/b", false},
		{"/a/b[c]", true},
		{"/a/b[c][d]", true},
		{"/a/b[c][x]", false},
		{"/a/b[c/d]", false}, // c has no child d
		{"/a[b/c]/e", true},
		{"/a[b/d]/e", true},
		{"/a[b//c]", true},
		{"a[b[c][d]]", true},
		{"b[c]", true},
		{"b[e]", false}, // e is a's child, not b's
	}
	for _, v := range allVariants {
		m := New(Options{Variant: v})
		sids := make([]SID, len(cases))
		for i, tc := range cases {
			sid, err := m.Add(tc.xpe)
			if err != nil {
				t.Fatalf("Add(%q): %v", tc.xpe, err)
			}
			sids[i] = sid
		}
		got := matchSet(m, doc)
		for i, tc := range cases {
			if ref := refmatch.Match(xpath.MustParse(tc.xpe), doc); ref != tc.want {
				t.Fatalf("oracle disagrees on %q: %v", tc.xpe, ref)
			}
			if got[sids[i]] != tc.want {
				t.Errorf("%s: %q matched=%v, want %v", v, tc.xpe, got[sids[i]], tc.want)
			}
		}
	}
}

// randNestedXPE produces expressions with nested path filters (no filters
// on wildcard steps).
func randNestedXPE(rng *rand.Rand, depth int) string {
	n := 1 + rng.Intn(3)
	var b strings.Builder
	if depth == 0 && rng.Intn(2) == 0 {
		b.WriteString("/")
	}
	for i := 0; i < n; i++ {
		if i > 0 {
			if rng.Intn(5) == 0 {
				b.WriteString("//")
			} else {
				b.WriteString("/")
			}
		}
		if rng.Intn(5) == 0 {
			b.WriteString("*")
			continue
		}
		b.WriteString(testTags[rng.Intn(len(testTags))])
		if depth < 2 && rng.Intn(3) == 0 {
			b.WriteString("[")
			b.WriteString(randNestedXPE(rng, depth+1))
			b.WriteString("]")
		}
	}
	return b.String()
}

// TestNestedRandomEquivalence cross-validates nested-path matching against
// the reference matcher on random trees.
func TestNestedRandomEquivalence(t *testing.T) {
	rng := rand.New(rand.NewSource(23))
	for round := 0; round < 50; round++ {
		var xpes []string
		var paths []*xpath.Path
		for len(xpes) < 25 {
			s := randNestedXPE(rng, 0)
			p, err := xpath.Parse(s)
			if err != nil {
				t.Fatalf("generated unparsable %q: %v", s, err)
			}
			xpes = append(xpes, s)
			paths = append(paths, p)
		}
		docs := []*xmldoc.Document{randDoc(rng, false), randDoc(rng, false)}
		for _, v := range allVariants {
			m := New(Options{Variant: v})
			sids := make([]SID, len(xpes))
			for i, s := range xpes {
				sid, err := m.Add(s)
				if err != nil {
					t.Fatalf("Add(%q): %v", s, err)
				}
				sids[i] = sid
			}
			for di, doc := range docs {
				got := matchSet(m, doc)
				for i, p := range paths {
					want := refmatch.Match(p, doc)
					if got[sids[i]] != want {
						t.Fatalf("round %d doc %d %s: %q matched=%v, ref=%v\npaths: %v",
							round, di, v, xpes[i], got[sids[i]], want, docPaths(doc))
					}
				}
			}
		}
	}
}

// TestNestedWithAttrs combines nested paths and attribute filters under
// both evaluation modes.
func TestNestedWithAttrs(t *testing.T) {
	doc, err := xmldoc.Parse([]byte(`<a><b k="1"><c v="2"/></b><b k="3"><c v="9"/></b></a>`))
	if err != nil {
		t.Fatal(err)
	}
	cases := []struct {
		xpe  string
		want bool
	}{
		{`/a/b[@k=1][c]`, true},
		{`/a/b[@k=2][c]`, false},
		{`/a[b[@k=3]]/b[@k=1]`, true},
		{`/a/b[c[@v>=5]]`, true},
		{`/a/b[@k=1][c[@v>=5]]`, false},
		{`/a/b[@k=3][c[@v>=5]]`, true},
	}
	for mode := 0; mode <= 1; mode++ {
		m := New(Options{Variant: PrefixCoverAP, AttrMode: predAttrMode(mode)})
		sids := make([]SID, len(cases))
		for i, tc := range cases {
			sid, err := m.Add(tc.xpe)
			if err != nil {
				t.Fatalf("Add(%q): %v", tc.xpe, err)
			}
			sids[i] = sid
		}
		got := matchSet(m, doc)
		for i, tc := range cases {
			if ref := refmatch.Match(xpath.MustParse(tc.xpe), doc); ref != tc.want {
				t.Fatalf("oracle disagrees on %q: %v", tc.xpe, ref)
			}
			if got[sids[i]] != tc.want {
				t.Errorf("mode %d: %q matched=%v, want %v", mode, tc.xpe, got[sids[i]], tc.want)
			}
		}
	}
}

// TestNestedOnWildcardRejected documents the unsupported construct.
func TestNestedOnWildcardRejected(t *testing.T) {
	m := New(Options{})
	if _, err := m.Add("/a/*[b]/c"); err == nil {
		t.Error("Add accepted a nested filter on a wildcard step")
	}
}

// TestNestedDuplicates: duplicate nested expressions share one entry.
func TestNestedDuplicates(t *testing.T) {
	m := New(Options{})
	mustAdd(t, m, "/a[b]/c", "/a[b]/c")
	if st := m.Stats(); st.DistinctExpressions != 1 || st.NestedExpressions != 1 {
		t.Errorf("stats = %+v, want 1 distinct / 1 nested", st)
	}
}
