package matcher

import (
	"encoding/json"
	"strings"
	"testing"

	"predfilter/internal/predicate"
	"predfilter/internal/xmldoc"
)

// findTrace returns the ExprTrace carrying the given sid.
func findTrace(t *testing.T, tr *Trace, sid SID) *ExprTrace {
	t.Helper()
	for i := range tr.Exprs {
		for _, s := range tr.Exprs[i].SIDs {
			if s == sid {
				return &tr.Exprs[i]
			}
		}
	}
	t.Fatalf("no ExprTrace for sid %d", sid)
	return nil
}

// TestMatchDocumentTraced checks that a trace explains at least one hit
// and one miss at the predicate level, agrees with the normal matching
// result, and carries stage costs.
func TestMatchDocumentTraced(t *testing.T) {
	for _, variant := range allVariants {
		m := New(Options{Variant: variant})
		sids := mustAdd(t, m,
			"/a/b/c", // hit
			"/a/b/d", // miss: the (d(p_b, p_d), =, 1) predicate never fires
			"/x/y",   // miss: no predicate hits at all
		)
		doc := xmldoc.FromPaths([]string{"a", "b", "c"})
		got, tr := m.MatchDocumentTraced(doc)

		if len(got) != 1 || got[0] != sids[0] {
			t.Fatalf("[%v] traced match = %v, want [%d]", variant, got, sids[0])
		}
		if tr.Paths != 1 || tr.Matches != 1 {
			t.Fatalf("[%v] trace counts = %d paths, %d matches", variant, tr.Paths, tr.Matches)
		}
		if tr.TotalNanos <= 0 || tr.TraceNanos <= 0 {
			t.Fatalf("[%v] stage costs missing: total=%d trace=%d", variant, tr.TotalNanos, tr.TraceNanos)
		}

		// The hit: matched, with per-path evidence where every predicate
		// hit and occurrence determination succeeded.
		hit := findTrace(t, tr, sids[0])
		if !hit.Matched || len(hit.Paths) == 0 {
			t.Fatalf("[%v] hit not explained: %+v", variant, hit)
		}
		ev := hit.Paths[0]
		if ev.Path != "/a/b/c" || !ev.Matched || ev.Steps == 0 {
			t.Fatalf("[%v] hit evidence = %+v", variant, ev)
		}
		for _, pe := range ev.Predicates {
			if !pe.Hit || pe.TotalPairs == 0 || len(pe.Pairs) == 0 {
				t.Fatalf("[%v] hit predicate not explained: %+v", variant, pe)
			}
		}

		// The near miss: some predicates hit on the path, at least one did
		// not, and the expression is reported unmatched.
		miss := findTrace(t, tr, sids[1])
		if miss.Matched {
			t.Fatalf("[%v] miss reported matched", variant)
		}
		if len(miss.Paths) == 0 {
			t.Fatalf("[%v] miss has no evidence", variant)
		}
		mev := miss.Paths[0]
		var hits, misses int
		for _, pe := range mev.Predicates {
			if pe.Hit {
				hits++
			} else {
				misses++
				if pe.TotalPairs != 0 || len(pe.Pairs) != 0 {
					t.Fatalf("[%v] missed predicate carries pairs: %+v", variant, pe)
				}
			}
		}
		if hits == 0 || misses == 0 {
			t.Fatalf("[%v] miss evidence lacks a hit/miss split: %+v", variant, mev)
		}

		// The total miss: no predicate hit anywhere, so no path evidence.
		far := findTrace(t, tr, sids[2])
		if far.Matched || len(far.Paths) != 0 {
			t.Fatalf("[%v] far miss = %+v", variant, far)
		}

		// The trace must serialize (it is served over HTTP).
		if _, err := json.Marshal(tr); err != nil {
			t.Fatalf("[%v] trace does not marshal: %v", variant, err)
		}
	}
}

// TestTracedAgreesWithMatch cross-checks the traced result against
// MatchDocument on a larger random-ish workload for every variant.
func TestTracedAgreesWithMatch(t *testing.T) {
	xpes := []string{
		"/a/b/c", "/a/b", "/a", "a//c", "b/c", "//b/c", "/a/*/c",
		"/x/y/z", "c", "/*/*/*", "/a/b/c/d",
	}
	docs := []*xmldoc.Document{
		xmldoc.FromPaths([]string{"a", "b", "c"}, []string{"a", "d"}),
		xmldoc.FromPaths([]string{"x", "y", "z"}),
		xmldoc.FromPaths([]string{"a", "b"}, []string{"a", "b", "c", "d"}),
	}
	for _, variant := range allVariants {
		m := New(Options{Variant: variant})
		mustAdd(t, m, xpes...)
		for di, doc := range docs {
			want := matchSet(m, doc)
			got, tr := m.MatchDocumentTraced(doc)
			if len(got) != len(want) {
				t.Fatalf("[%v] doc %d: traced %d sids, want %d", variant, di, len(got), len(want))
			}
			for _, sid := range got {
				if !want[sid] {
					t.Fatalf("[%v] doc %d: traced extra sid %d", variant, di, sid)
				}
			}
			// Every matched expr trace must be Matched and vice versa.
			for _, et := range tr.Exprs {
				for _, sid := range et.SIDs {
					if et.Matched != want[sid] {
						t.Fatalf("[%v] doc %d: trace %q matched=%v, engine says %v",
							variant, di, et.Expr, et.Matched, want[sid])
					}
				}
			}
		}
	}
}

// TestTracedViaCover: a prefix expression matched through covering is
// attributed to the cover only when its own determination failed; here the
// prefix also matches directly, so ViaCover must stay false. The covering
// attribution itself is exercised with containment covers, where the
// covered expression genuinely cannot match on its own.
func TestTracedViaCover(t *testing.T) {
	m := New(Options{Variant: PrefixCover})
	sids := mustAdd(t, m, "/a/b/c", "/a/b")
	doc := xmldoc.FromPaths([]string{"a", "b", "c"})
	_, tr := m.MatchDocumentTraced(doc)
	for _, sid := range sids {
		et := findTrace(t, tr, sid)
		if !et.Matched || et.ViaCover {
			t.Fatalf("sid %d: matched=%v viaCover=%v, want direct match", sid, et.Matched, et.ViaCover)
		}
	}
}

// TestTracedPostponedFilter: a postponed attribute filter that empties a
// level must be reported as FilteredOut, not as a structural miss.
func TestTracedPostponedFilter(t *testing.T) {
	m := New(Options{Variant: Basic, AttrMode: predicate.Postponed})
	sids := mustAdd(t, m, `/a/b[@k="v"]/c`, `/a/b[@k="w"]/c`)
	doc, err := xmldoc.Parse([]byte(`<a><b k="v"><c/></b></a>`))
	if err != nil {
		t.Fatal(err)
	}
	got, tr := m.MatchDocumentTraced(doc)
	if len(got) != 1 || got[0] != sids[0] {
		t.Fatalf("traced match = %v, want [%d]", got, sids[0])
	}
	rejected := findTrace(t, tr, sids[1])
	if rejected.Matched || len(rejected.Paths) == 0 {
		t.Fatalf("filter-rejected expr = %+v", rejected)
	}
	if !rejected.Paths[0].FilteredOut {
		t.Fatalf("expected FilteredOut on %+v", rejected.Paths[0])
	}
	accepted := findTrace(t, tr, sids[0])
	if !accepted.Matched || accepted.Paths[0].FilteredOut {
		t.Fatalf("filter-accepted expr = %+v", accepted)
	}
}

// TestTracedNestedSummarized: nested-path expressions appear in the trace
// by source text with the correct matched flag and no per-path evidence.
func TestTracedNestedSummarized(t *testing.T) {
	m := New(Options{Variant: Basic})
	sids := mustAdd(t, m, "/a[b]/c", "/a/b/c")
	doc, err := xmldoc.Parse([]byte(`<a><b/><c/></a>`))
	if err != nil {
		t.Fatal(err)
	}
	got, tr := m.MatchDocumentTraced(doc)
	if len(got) != 1 || got[0] != sids[0] {
		t.Fatalf("traced match = %v, want [%d]", got, sids[0])
	}
	nested := findTrace(t, tr, sids[0])
	if !nested.Nested || !nested.Matched || len(nested.Paths) != 0 {
		t.Fatalf("nested trace = %+v", nested)
	}
	if !strings.Contains(nested.Expr, "a") {
		t.Fatalf("nested trace lost its source text: %q", nested.Expr)
	}
}

// TestTraceExprCap: more than MaxTraceExprs registrations truncate the
// trace without affecting the match result.
func TestTraceExprCap(t *testing.T) {
	m := New(Options{Variant: Basic})
	for i := 0; i < MaxTraceExprs+10; i++ {
		if _, err := m.Add("/a/t" + string(rune('a'+i%26)) + "/x" + itoa(i)); err != nil {
			t.Fatal(err)
		}
	}
	doc := xmldoc.FromPaths([]string{"a", "ta", "x0"})
	_, tr := m.MatchDocumentTraced(doc)
	if !tr.TruncatedExprs {
		t.Fatal("trace not marked truncated")
	}
	if len(tr.Exprs) != MaxTraceExprs {
		t.Fatalf("traced %d exprs, want %d", len(tr.Exprs), MaxTraceExprs)
	}
}

func itoa(i int) string {
	if i == 0 {
		return "0"
	}
	var b [8]byte
	n := len(b)
	for i > 0 {
		n--
		b[n] = byte('0' + i%10)
		i /= 10
	}
	return string(b[n:])
}
