package matcher

import (
	"predfilter/internal/predicate"
	"predfilter/internal/predindex"
	"predfilter/internal/xmldoc"
	"predfilter/internal/xpath"
)

// The registration and per-document dedup paths used to build string keys
// (chain serializations, publication tag sequences) for map lookups; the
// allocation and copying showed up prominently in profiles. All of those
// keys are now FNV-1a hashes folded incrementally into a uint64 — no
// intermediate buffer, no string header, and map[uint64] lookups avoid the
// byte-wise comparisons of string keys.
//
// Registration and freeze no longer trust the hash as identity: every
// map keyed by one of these hashes holds a bucket ([]…) whose entries are
// resolved by comparing the full encoded chain (pids, annotations, nested
// source text), so a 64-bit collision costs one extra compare, never a
// wrongly merged expression. The per-document dedup path (pubHash) stays
// hash-only: a collision there skips one structurally distinct path of
// one document — an accepted trade (~N²/2⁶⁵ for N distinct paths) for
// keeping the per-path hot loop free of key materialization; ablate with
// DisablePathDedup. The hash functions are vars so collision tests can
// force bucket conflicts.

const (
	fnvOffset64 uint64 = 0xcbf29ce484222325
	fnvPrime64  uint64 = 0x100000001b3
)

func fnvByte(h uint64, b byte) uint64 { return (h ^ uint64(b)) * fnvPrime64 }

func fnvUint32(h uint64, v uint32) uint64 {
	h = fnvByte(h, byte(v))
	h = fnvByte(h, byte(v>>8))
	h = fnvByte(h, byte(v>>16))
	return fnvByte(h, byte(v>>24))
}

func fnvString(h uint64, s string) uint64 {
	for i := 0; i < len(s); i++ {
		h = fnvByte(h, s[i])
	}
	return h
}

func fnvAttrFilter(h uint64, side byte, f xpath.AttrFilter) uint64 {
	h = fnvByte(h, side)
	h = fnvString(h, f.Name)
	h = fnvByte(h, 0)
	h = fnvByte(h, byte(f.Op))
	h = fnvString(h, f.Value)
	h = fnvByte(h, 0)
	return h
}

func fnvSideAttrs(h uint64, pa predicate.SideAttrs) uint64 {
	for _, f := range pa.Left {
		h = fnvAttrFilter(h, 'L', f)
	}
	for _, f := range pa.Right {
		h = fnvAttrFilter(h, 'R', f)
	}
	return h
}

// The indirections below exist so collision-regression tests can replace
// a hash with a degenerate one and prove the bucket compares keep
// distinct expressions apart. Production code always runs the real FNV
// functions.
var (
	chainHashFn = chainHash
	levelHashFn = levelHash
	nestedKeyFn = func(src string) uint64 { return fnvString(fnvOffset64, src) }
)

// chainHash identifies the bucket for a pid chain plus (postponed) filter
// annotations; bucket entries are compared in full (pidsEqual/postEqual)
// before two chains are treated as identical. A nil post hashes
// identically to all-empty annotations, so the bare structural identity of
// a chain is chainHash(pids, nil).
func chainHash(pids []predindex.PID, post []predicate.SideAttrs) uint64 {
	h := fnvOffset64
	for i, pid := range pids {
		h = fnvByte(h, 0x1f) // level separator
		h = fnvUint32(h, uint32(pid))
		if post != nil {
			h = fnvSideAttrs(h, post[i])
		}
	}
	return h
}

// levelHash is the identity of one (pid, annotation) trie level of the
// prefix-cover organization.
func levelHash(pid predindex.PID, post []predicate.SideAttrs, i int) uint64 {
	h := fnvUint32(fnvOffset64, uint32(pid))
	if post != nil {
		h = fnvSideAttrs(h, post[i])
	}
	return h
}

// pubHash is the per-document dedup identity of a publication: the tag
// sequence, plus attribute names and values when any registered predicate
// inspects attributes.
func pubHash(pub *xmldoc.Publication, withAttrs bool) uint64 {
	h := fnvOffset64
	for i := range pub.Tuples {
		t := &pub.Tuples[i]
		h = fnvString(h, t.Tag)
		if withAttrs {
			for _, a := range t.Attrs {
				h = fnvByte(h, 1)
				h = fnvString(h, a.Name)
				h = fnvByte(h, 2)
				h = fnvString(h, a.Value)
			}
		}
		h = fnvByte(h, 0)
	}
	return h
}
