package matcher

import (
	"math/rand"
	"testing"

	"predfilter/internal/refmatch"
	"predfilter/internal/xmldoc"
	"predfilter/internal/xpath"
)

// TestContainmentCoverTargeted: a full match of a long expression must
// mark registered suffix and infix expressions without changing results.
func TestContainmentCoverTargeted(t *testing.T) {
	xpes := []string{
		"/a/b/c/d", // full chain
		"b/c",      // infix (relative expressions share the chain fragment)
		"c/d",      // suffix
		"/a/b",     // prefix
		"b/d",      // not contained — must still be evaluated on its own
	}
	doc := xmldoc.FromPaths([]string{"a", "b", "c", "d"})
	for _, mode := range []CoverMode{PrefixOnly, Containment} {
		for _, v := range allVariants {
			m := New(Options{Variant: v, CoverMode: mode})
			sids := mustAdd(t, m, xpes...)
			got := matchSet(m, doc)
			want := []bool{true, true, true, true, false}
			for i, w := range want {
				if got[sids[i]] != w {
					t.Errorf("mode=%d %s: %q matched=%v, want %v", mode, v, xpes[i], got[sids[i]], w)
				}
			}
		}
	}
}

// TestExtensionEquivalence: every extension combination produces exactly
// the default configuration's results on random workloads.
func TestExtensionEquivalence(t *testing.T) {
	rng := rand.New(rand.NewSource(61))
	extCfgs := []Options{
		{Variant: PrefixCover, CoverMode: Containment},
		{Variant: PrefixCoverAP, CoverMode: Containment},
		{Variant: PrefixCoverAP, ClusterBy: RarestPredicate},
		{Variant: PrefixCoverAP, CoverMode: Containment, ClusterBy: RarestPredicate},
		{Variant: PrefixCoverAP, CoverMode: Containment, ClusterBy: RarestPredicate, DisablePathDedup: true},
	}
	for round := 0; round < 40; round++ {
		xpes := make([]string, 60)
		var paths []*xpath.Path
		for i := range xpes {
			xpes[i] = randXPE(rng, false)
			paths = append(paths, xpath.MustParse(xpes[i]))
		}
		doc := randDoc(rng, false)
		for _, opts := range extCfgs {
			m := New(opts)
			sids := make([]SID, len(xpes))
			for i, s := range xpes {
				sid, err := m.Add(s)
				if err != nil {
					t.Fatal(err)
				}
				sids[i] = sid
			}
			got := matchSet(m, doc)
			for i, p := range paths {
				want := refmatch.Match(p, doc)
				if got[sids[i]] != want {
					t.Fatalf("round %d %+v: %q matched=%v, ref=%v", round, opts, xpes[i], got[sids[i]], want)
				}
			}
		}
	}
}

// TestExtensionEquivalenceWithAttrs extends the check to attribute
// filters in both modes (cover keys must respect filter annotations).
func TestExtensionEquivalenceWithAttrs(t *testing.T) {
	rng := rand.New(rand.NewSource(67))
	for round := 0; round < 25; round++ {
		xpes := make([]string, 40)
		var paths []*xpath.Path
		for i := range xpes {
			xpes[i] = randXPE(rng, true)
			paths = append(paths, xpath.MustParse(xpes[i]))
		}
		doc := randDoc(rng, true)
		for _, attrMode := range []int{0, 1} {
			opts := Options{
				Variant:   PrefixCoverAP,
				AttrMode:  predAttrMode(attrMode),
				CoverMode: Containment,
				ClusterBy: RarestPredicate,
			}
			m := New(opts)
			sids := make([]SID, len(xpes))
			for i, s := range xpes {
				sid, err := m.Add(s)
				if err != nil {
					t.Fatal(err)
				}
				sids[i] = sid
			}
			got := matchSet(m, doc)
			for i, p := range paths {
				want := refmatch.Match(p, doc)
				if got[sids[i]] != want {
					t.Fatalf("round %d attrs=%d: %q matched=%v, ref=%v", round, attrMode, xpes[i], got[sids[i]], want)
				}
			}
		}
	}
}

// TestRarestClusterChoice: clustering picks the least-referenced pid.
func TestRarestClusterChoice(t *testing.T) {
	m := New(Options{Variant: PrefixCoverAP, ClusterBy: RarestPredicate})
	// (d(a,b),=,1) is shared by both expressions; (d(b,c),=,1) and
	// (d(b,d),=,1) are unique, so they are the rarest pids.
	mustAdd(t, m, "a/b/c", "a/b/d")
	m.mu.Lock()
	m.freeze()
	m.mu.Unlock()
	if len(m.clusters) != 2 {
		t.Fatalf("clusters = %d, want 2 (one per rare pid)", len(m.clusters))
	}
	shared := m.ix.Len() // sanity: 3 distinct predicates stored
	if shared != 3 {
		t.Errorf("distinct predicates = %d, want 3", shared)
	}
}
