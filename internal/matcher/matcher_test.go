package matcher

import (
	"fmt"
	"math/rand"
	"strings"
	"testing"

	"predfilter/internal/predicate"
	"predfilter/internal/refmatch"
	"predfilter/internal/xmldoc"
	"predfilter/internal/xpath"
)

func predAttrMode(i int) predicate.AttrMode { return predicate.AttrMode(i) }

var allVariants = []Variant{Basic, PrefixCover, PrefixCoverAP}

// mustAdd registers expressions and returns their sids.
func mustAdd(t *testing.T, m *Matcher, xpes ...string) []SID {
	t.Helper()
	sids := make([]SID, len(xpes))
	for i, s := range xpes {
		sid, err := m.Add(s)
		if err != nil {
			t.Fatalf("Add(%q): %v", s, err)
		}
		sids[i] = sid
	}
	return sids
}

func matchSet(m *Matcher, doc *xmldoc.Document) map[SID]bool {
	out := make(map[SID]bool)
	for _, sid := range m.MatchDocument(doc) {
		out[sid] = true
	}
	return out
}

// TestBasicExamples walks hand-checked matches for each variant.
func TestBasicExamples(t *testing.T) {
	xpes := []string{
		"/a/b/c",   // 0: matches
		"/a/b/d",   // 1: no
		"a//c",     // 2: matches
		"b/c",      // 3: matches
		"/b",       // 4: no (root is a)
		"/*/*/*",   // 5: matches (length 3 path exists)
		"/*/*/*/*", // 6: no
		"/a/*/c",   // 7: matches
		"/a/b/*",   // 8: matches
		"c",        // 9: matches
		"c/*",      // 10: no (c is a leaf)
		"//b/c",    // 11: matches
		"/a//c",    // 12: matches
		"b//b",     // 13: no
	}
	doc := xmldoc.FromPaths([]string{"a", "b", "c"}, []string{"a", "d"})
	want := map[int]bool{0: true, 2: true, 3: true, 5: true, 7: true, 8: true, 9: true, 11: true, 12: true}
	for _, v := range allVariants {
		t.Run(v.String(), func(t *testing.T) {
			m := New(Options{Variant: v})
			sids := mustAdd(t, m, xpes...)
			got := matchSet(m, doc)
			for i, sid := range sids {
				if got[sid] != want[i] {
					t.Errorf("%q: matched=%v, want %v", xpes[i], got[sid], want[i])
				}
			}
		})
	}
}

// TestOccurrenceNumbersMatter reproduces Example 2: c//b//a must not match
// the path (a,b,c,a,b,c) even though each of its predicates matches.
func TestOccurrenceNumbersMatter(t *testing.T) {
	doc := xmldoc.FromPaths([]string{"a", "b", "c", "a", "b", "c"})
	for _, v := range allVariants {
		m := New(Options{Variant: v})
		sids := mustAdd(t, m, "a//b/c", "c//b//a")
		got := matchSet(m, doc)
		if !got[sids[0]] {
			t.Errorf("%s: a//b/c should match", v)
		}
		if got[sids[1]] {
			t.Errorf("%s: c//b//a should not match (discontinuous occurrences)", v)
		}
	}
}

// TestDuplicatesShareEntries checks duplicate expressions share storage
// but are each reported.
func TestDuplicatesShareEntries(t *testing.T) {
	m := New(Options{Variant: PrefixCoverAP})
	sids := mustAdd(t, m, "/a/b", "/a/b", "/a/b")
	st := m.Stats()
	if st.DistinctExpressions != 1 {
		t.Errorf("DistinctExpressions = %d, want 1", st.DistinctExpressions)
	}
	if st.SIDs != 3 {
		t.Errorf("SIDs = %d, want 3", st.SIDs)
	}
	doc := xmldoc.FromPaths([]string{"a", "b"})
	got := matchSet(m, doc)
	for _, sid := range sids {
		if !got[sid] {
			t.Errorf("duplicate sid %d not reported", sid)
		}
	}
}

// TestEquivalentEncodingsShareEntries: /*/*/* and */*/* have the same
// encoding by design (§3.2) and must collapse to one expression.
func TestEquivalentEncodingsShareEntries(t *testing.T) {
	m := New(Options{})
	mustAdd(t, m, "/*/*/*", "*/*/*")
	if st := m.Stats(); st.DistinctExpressions != 1 {
		t.Errorf("DistinctExpressions = %d, want 1", st.DistinctExpressions)
	}
}

// TestPrefixCovering checks the covering relation: when a long expression
// matches, its registered prefixes are reported without independent
// evaluation (we can only observe the result set here; the cost effect is
// exercised by benchmarks).
func TestPrefixCovering(t *testing.T) {
	doc := xmldoc.FromPaths([]string{"a", "b", "c", "d"})
	for _, v := range allVariants {
		m := New(Options{Variant: v})
		sids := mustAdd(t, m, "/a/b", "/a/b/c", "/a/b/c/d", "/a/b/c/d/*")
		got := matchSet(m, doc)
		for i, sid := range sids[:3] {
			if !got[sid] {
				t.Errorf("%s: prefix expression %d not matched", v, i)
			}
		}
		if got[sids[3]] {
			t.Errorf("%s: /a/b/c/d/* matched a length-4 path", v)
		}
	}
}

// TestRemove checks removed sids stop being reported while shared storage
// keeps serving other sids.
func TestRemove(t *testing.T) {
	m := New(Options{})
	sids := mustAdd(t, m, "/a/b", "/a/b")
	if err := m.Remove(sids[0]); err != nil {
		t.Fatal(err)
	}
	if err := m.Remove(sids[0]); err == nil {
		t.Error("double Remove succeeded")
	}
	doc := xmldoc.FromPaths([]string{"a", "b"})
	got := matchSet(m, doc)
	if got[sids[0]] {
		t.Error("removed sid reported")
	}
	if !got[sids[1]] {
		t.Error("surviving duplicate sid not reported")
	}
}

// --- randomized equivalence against the reference matcher ---

var testTags = []string{"a", "b", "c", "d", "e"}

// randXPE generates a random expression; withAttrs adds attribute filters.
func randXPE(rng *rand.Rand, withAttrs bool) string {
	n := 1 + rng.Intn(4)
	var b strings.Builder
	if rng.Intn(2) == 0 {
		b.WriteString("/")
	}
	for i := 0; i < n; i++ {
		if i > 0 {
			if rng.Intn(5) == 0 {
				b.WriteString("//")
			} else {
				b.WriteString("/")
			}
		} else if b.Len() == 1 && rng.Intn(6) == 0 {
			b.Reset()
			b.WriteString("//")
		}
		if rng.Intn(4) == 0 {
			b.WriteString("*")
			continue
		}
		b.WriteString(testTags[rng.Intn(len(testTags))])
		if withAttrs && rng.Intn(3) == 0 {
			ops := []string{"=", ">=", "<=", "!=", ">", "<"}
			fmt.Fprintf(&b, "[@%s%s%d]", []string{"x", "y"}[rng.Intn(2)], ops[rng.Intn(len(ops))], 1+rng.Intn(3))
		}
	}
	return b.String()
}

// randDoc generates a small random XML document.
func randDoc(rng *rand.Rand, withAttrs bool) *xmldoc.Document {
	var b strings.Builder
	var build func(depth int)
	build = func(depth int) {
		tag := testTags[rng.Intn(len(testTags))]
		b.WriteString("<" + tag)
		if withAttrs && rng.Intn(3) == 0 {
			fmt.Fprintf(&b, ` %s="%d"`, []string{"x", "y"}[rng.Intn(2)], 1+rng.Intn(3))
		}
		b.WriteString(">")
		if depth < 5 {
			for k := rng.Intn(3); k > 0; k-- {
				build(depth + 1)
			}
		}
		b.WriteString("</" + tag + ">")
	}
	build(1)
	doc, err := xmldoc.Parse([]byte(b.String()))
	if err != nil {
		panic(err)
	}
	return doc
}

// TestRandomEquivalence is the Theorem A.1 test: on random workloads every
// engine configuration must agree exactly with the direct reference
// matcher.
func TestRandomEquivalence(t *testing.T) {
	configs := []Options{
		{Variant: Basic},
		{Variant: PrefixCover},
		{Variant: PrefixCoverAP},
	}
	rng := rand.New(rand.NewSource(11))
	for round := 0; round < 60; round++ {
		xpes := make([]string, 40)
		paths := make([]*xpath.Path, len(xpes))
		for i := range xpes {
			xpes[i] = randXPE(rng, false)
			paths[i] = xpath.MustParse(xpes[i])
		}
		docs := make([]*xmldoc.Document, 5)
		for i := range docs {
			docs[i] = randDoc(rng, false)
		}
		for _, opts := range configs {
			m := New(opts)
			sids := make([]SID, len(xpes))
			for i, s := range xpes {
				sid, err := m.Add(s)
				if err != nil {
					t.Fatalf("Add(%q): %v", s, err)
				}
				sids[i] = sid
			}
			for di, doc := range docs {
				got := matchSet(m, doc)
				for i, p := range paths {
					want := refmatch.Match(p, doc)
					if got[sids[i]] != want {
						t.Fatalf("round %d doc %d %v: %q matched=%v, ref=%v\npaths: %v",
							round, di, opts, xpes[i], got[sids[i]], want, docPaths(doc))
					}
				}
			}
		}
	}
}

// TestRandomEquivalenceWithAttrs extends the equivalence test to
// attribute filters under both evaluation modes.
func TestRandomEquivalenceWithAttrs(t *testing.T) {
	configs := []Options{
		{Variant: Basic, AttrMode: 0},
		{Variant: PrefixCoverAP, AttrMode: 0},
		{Variant: Basic, AttrMode: 1},
		{Variant: PrefixCover, AttrMode: 1},
		{Variant: PrefixCoverAP, AttrMode: 1},
	}
	rng := rand.New(rand.NewSource(13))
	for round := 0; round < 40; round++ {
		var xpes []string
		var paths []*xpath.Path
		for len(xpes) < 30 {
			s := randXPE(rng, true)
			p := xpath.MustParse(s)
			// Attribute filters on wildcard steps are unsupported; the
			// generator above never attaches them, so all parse fine.
			xpes = append(xpes, s)
			paths = append(paths, p)
		}
		docs := make([]*xmldoc.Document, 4)
		for i := range docs {
			docs[i] = randDoc(rng, true)
		}
		for _, opts := range configs {
			m := New(opts)
			sids := make([]SID, len(xpes))
			for i, s := range xpes {
				sid, err := m.Add(s)
				if err != nil {
					t.Fatalf("Add(%q): %v", s, err)
				}
				sids[i] = sid
			}
			for di, doc := range docs {
				got := matchSet(m, doc)
				for i, p := range paths {
					want := refmatch.Match(p, doc)
					if got[sids[i]] != want {
						t.Fatalf("round %d doc %d %+v: %q matched=%v, ref=%v\npaths: %v",
							round, di, opts, xpes[i], got[sids[i]], want, docPaths(doc))
					}
				}
			}
		}
	}
}

func docPaths(doc *xmldoc.Document) []string {
	out := make([]string, len(doc.Paths))
	for i := range doc.Paths {
		out[i] = doc.Paths[i].String()
	}
	return out
}

// TestVariantsAgree: all three organizations must produce identical match
// sets (they differ only in evaluation cost).
func TestVariantsAgree(t *testing.T) {
	rng := rand.New(rand.NewSource(17))
	for round := 0; round < 30; round++ {
		xpes := make([]string, 60)
		for i := range xpes {
			xpes[i] = randXPE(rng, false)
		}
		doc := randDoc(rng, false)
		var sets []map[SID]bool
		for _, v := range allVariants {
			m := New(Options{Variant: v})
			for _, s := range xpes {
				if _, err := m.Add(s); err != nil {
					t.Fatal(err)
				}
			}
			sets = append(sets, matchSet(m, doc))
		}
		for i := 1; i < len(sets); i++ {
			if len(sets[i]) != len(sets[0]) {
				t.Fatalf("round %d: %s matched %d, %s matched %d", round,
					allVariants[0], len(sets[0]), allVariants[i], len(sets[i]))
			}
			for sid := range sets[0] {
				if !sets[i][sid] {
					t.Fatalf("round %d: sid %d matched by %s but not %s", round, sid, allVariants[0], allVariants[i])
				}
			}
		}
	}
}

// TestAttrModesAgree: inline and selection-postponed evaluation must
// produce identical match sets.
func TestAttrModesAgree(t *testing.T) {
	rng := rand.New(rand.NewSource(19))
	for round := 0; round < 30; round++ {
		xpes := make([]string, 40)
		for i := range xpes {
			xpes[i] = randXPE(rng, true)
		}
		doc := randDoc(rng, true)
		var sets []map[SID]bool
		for _, mode := range []int{0, 1} {
			m := New(Options{Variant: PrefixCoverAP, AttrMode: predAttrMode(mode)})
			for _, s := range xpes {
				if _, err := m.Add(s); err != nil {
					t.Fatal(err)
				}
			}
			sets = append(sets, matchSet(m, doc))
		}
		if len(sets[0]) != len(sets[1]) {
			t.Fatalf("round %d: inline matched %d, postponed matched %d", round, len(sets[0]), len(sets[1]))
		}
		for sid := range sets[0] {
			if !sets[1][sid] {
				t.Fatalf("round %d: sid %d differs between attribute modes", round, sid)
			}
		}
	}
}
