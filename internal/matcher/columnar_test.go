package matcher

import (
	"context"
	"errors"
	"fmt"
	"math/rand"
	"strings"
	"testing"

	"predfilter/internal/guard"
	"predfilter/internal/metrics"
	"predfilter/internal/refmatch"
	"predfilter/internal/xmldoc"
	"predfilter/internal/xpath"
)

// colMatchSets runs one columnar batch and folds each document's result
// into a set, failing on unexpected errors.
func colMatchSets(t *testing.T, m *Matcher, docs []*xmldoc.Document) []map[SID]bool {
	t.Helper()
	outs, errs := m.MatchDocumentsColumnar(docs, nil)
	sets := make([]map[SID]bool, len(docs))
	for i := range docs {
		if errs[i] != nil {
			t.Fatalf("columnar doc %d: %v", i, errs[i])
		}
		sets[i] = make(map[SID]bool)
		for _, sid := range outs[i] {
			sets[i][sid] = true
		}
	}
	return sets
}

func setsEqual(a, b map[SID]bool) bool {
	if len(a) != len(b) {
		return false
	}
	for sid := range a {
		if !b[sid] {
			return false
		}
	}
	return true
}

// nestedXPEs are fixed nested-filter expressions mixed into the random
// workloads: nested paths bypass dedup and the path cache's structural
// half, exercising the columnar kernel's collect loop.
var nestedXPEs = []string{"/a[b]/c", "a[b/c]", "//b[c]/d", "/a[b][c]/d"}

// TestColumnarEquivalenceRandomized is the kernel's Theorem A.1 test: on
// random workloads (attribute filters, nested filters, repeated-tag
// paths) the columnar batch matcher must produce exactly the scalar
// matcher's SID sets — across all three organizations and with the path
// cache off, tiny (evicting) and on. It also interleaves scalar and
// columnar calls on one matcher so cache entries written by either path
// must be served correctly by the other.
func TestColumnarEquivalenceRandomized(t *testing.T) {
	type cfg struct {
		name string
		opts Options
	}
	var cfgs []cfg
	for _, v := range allVariants {
		for _, c := range []struct {
			name  string
			bytes int64
		}{{"nocache", -1}, {"tinycache", 1 << 9}, {"cache", 1 << 20}} {
			cfgs = append(cfgs, cfg{
				name: fmt.Sprintf("%v/%s", v, c.name),
				opts: Options{Variant: v, AttrMode: predAttrMode(1), PathCacheBytes: c.bytes},
			})
		}
	}
	rng := rand.New(rand.NewSource(23))
	for round := 0; round < 25; round++ {
		xpes := make([]string, 0, 36)
		for len(xpes) < 30 {
			xpes = append(xpes, randXPE(rng, true))
		}
		xpes = append(xpes, nestedXPEs...)
		paths := make([]*xpath.Path, len(xpes))
		for i, s := range xpes {
			paths[i] = xpath.MustParse(s)
		}
		docs := make([]*xmldoc.Document, 6)
		for i := range docs {
			docs[i] = randDoc(rng, true)
		}
		for _, c := range cfgs {
			m := New(c.opts)
			sids := make([]SID, len(xpes))
			for i, s := range xpes {
				sid, err := m.Add(s)
				if err != nil {
					t.Fatalf("Add(%q): %v", s, err)
				}
				sids[i] = sid
			}
			// Columnar first (cold cache), against the reference matcher.
			got := colMatchSets(t, m, docs)
			for di, doc := range docs {
				for i, p := range paths {
					if want := refmatch.Match(p, doc); got[di][sids[i]] != want {
						t.Fatalf("round %d %s doc %d: %q columnar=%v, ref=%v\npaths: %v",
							round, c.name, di, xpes[i], got[di][sids[i]], want, docPaths(doc))
					}
				}
			}
			// Scalar on the same matcher: any cache entries the columnar
			// pass wrote must replay into identical scalar results.
			for di, doc := range docs {
				if s := matchSet(m, doc); !setsEqual(s, got[di]) {
					t.Fatalf("round %d %s doc %d: scalar-after-columnar %v != columnar %v",
						round, c.name, di, s, got[di])
				}
			}
			// Columnar again: now served from scalar-written (or shared)
			// cache entries.
			again := colMatchSets(t, m, docs)
			for di := range docs {
				if !setsEqual(again[di], got[di]) {
					t.Fatalf("round %d %s doc %d: columnar-after-scalar %v != first pass %v",
						round, c.name, di, again[di], got[di])
				}
			}
		}
	}
}

// TestColumnarBudget pins the governance contract: a budget generous
// enough for the scalar matcher never trips only under the columnar one;
// a blowup trips the same typed error; a canceled context surfaces as
// Canceled; nil budgets are unlimited.
func TestColumnarBudget(t *testing.T) {
	t.Run("generous", func(t *testing.T) {
		m := New(Options{Variant: PrefixCoverAP})
		mustAdd(t, m, "//a//a", "/a/a/a", "//a[@k=v]", "/a/*/a")
		doc := chainDoc(t, 6)
		want, _, err := m.MatchDocumentBudget(doc, stepBudget(1_000_000))
		if err != nil {
			t.Fatalf("scalar budget tripped: %v", err)
		}
		outs, errs := m.MatchDocumentsColumnar([]*xmldoc.Document{doc},
			[]*guard.Budget{stepBudget(1_000_000)})
		if errs[0] != nil {
			t.Fatalf("columnar tripped where scalar did not: %v", errs[0])
		}
		if len(outs[0]) != len(want) {
			t.Fatalf("columnar %v != scalar %v", outs[0], want)
		}
	})

	t.Run("blowup", func(t *testing.T) {
		m := New(Options{Variant: PrefixCoverAP})
		mustAdd(t, m, strings.Repeat("//a", 20))
		// An ambiguous path (every tuple's tag repeats), so candidates run
		// the scalar determination and hit the exponential dead-end space.
		doc := chainDoc(t, 18)
		outs, errs := m.MatchDocumentsColumnar([]*xmldoc.Document{doc},
			[]*guard.Budget{stepBudget(1000)})
		var le *guard.LimitError
		if !errors.As(errs[0], &le) || le.Kind != guard.Steps {
			t.Fatalf("err = %v, want Steps *LimitError", errs[0])
		}
		if outs[0] != nil {
			t.Fatalf("partial result %v alongside error", outs[0])
		}
	})

	t.Run("canceled", func(t *testing.T) {
		m := New(Options{Variant: Basic})
		mustAdd(t, m, "//a")
		ctx, cancel := context.WithCancel(context.Background())
		cancel()
		_, errs := m.MatchDocumentsColumnar([]*xmldoc.Document{chainDoc(t, 4)},
			[]*guard.Budget{guard.NewBudget(ctx, guard.Limits{})})
		var le *guard.LimitError
		if !errors.As(errs[0], &le) || le.Kind != guard.Canceled {
			t.Fatalf("err = %v, want Canceled *LimitError", errs[0])
		}
	})

	t.Run("per-document independence", func(t *testing.T) {
		m := New(Options{Variant: PrefixCoverAP})
		sids := mustAdd(t, m, strings.Repeat("//a", 20), "//b/c")
		good, err := xmldoc.Parse([]byte("<b><c/></b>"))
		if err != nil {
			t.Fatal(err)
		}
		// Doc 0 trips its budget; docs 1 (nil budget) and 2 must be
		// unaffected by the abort, including scratch-state reuse.
		docs := []*xmldoc.Document{chainDoc(t, 18), good, good}
		outs, errs := m.MatchDocumentsColumnar(docs,
			[]*guard.Budget{stepBudget(100), nil, nil})
		if errs[0] == nil {
			t.Fatal("doc 0 budget survived the blowup")
		}
		for i := 1; i < 3; i++ {
			if errs[i] != nil {
				t.Fatalf("doc %d: %v", i, errs[i])
			}
			if len(outs[i]) != 1 || outs[i][0] != sids[1] {
				t.Fatalf("doc %d = %v, want [%d]", i, outs[i], sids[1])
			}
		}
	})
}

// TestColumnarRebuildOnMutation: the columnar index is keyed to the
// freeze generation — registrations after a batch must be visible to the
// next batch, and removals must stop matching.
func TestColumnarRebuildOnMutation(t *testing.T) {
	m := New(Options{Variant: PrefixCoverAP, Metrics: metrics.NewSet()})
	sidA := mustAdd(t, m, "/a/b")[0]
	doc := xmldoc.FromPaths([]string{"a", "b"})
	got := colMatchSets(t, m, []*xmldoc.Document{doc})[0]
	if !got[sidA] || len(got) != 1 {
		t.Fatalf("first batch = %v, want {%d}", got, sidA)
	}

	sidB := mustAdd(t, m, "a/*")[0]
	got = colMatchSets(t, m, []*xmldoc.Document{doc})[0]
	if !got[sidA] || !got[sidB] || len(got) != 2 {
		t.Fatalf("after Add = %v, want {%d,%d}", got, sidA, sidB)
	}

	if err := m.Remove(sidA); err != nil {
		t.Fatal(err)
	}
	got = colMatchSets(t, m, []*xmldoc.Document{doc})[0]
	if got[sidA] || !got[sidB] {
		t.Fatalf("after Remove = %v, want only %d", got, sidB)
	}
}

// TestColumnarEmptyAndDegenerate covers the maxLen == 0 sweep (no
// expressions), the all-wildcard length-predicate chains, and an empty
// batch.
func TestColumnarEmptyAndDegenerate(t *testing.T) {
	doc := xmldoc.FromPaths([]string{"a", "b", "c"})

	m := New(Options{})
	outs, errs := m.MatchDocumentsColumnar([]*xmldoc.Document{doc}, nil)
	if errs[0] != nil || len(outs[0]) != 0 {
		t.Fatalf("empty matcher: outs=%v errs=%v", outs, errs)
	}

	m2 := New(Options{})
	sids := mustAdd(t, m2, "/*/*/*", "/*/*/*/*", "*")
	got := colMatchSets(t, m2, []*xmldoc.Document{doc})[0]
	if !got[sids[0]] || got[sids[1]] || !got[sids[2]] {
		t.Fatalf("wildcard chains = %v, want {%d,%d}", got, sids[0], sids[2])
	}

	outs, errs = m2.MatchDocumentsColumnar(nil, nil)
	if len(outs) != 0 || len(errs) != 0 {
		t.Fatalf("empty batch: outs=%v errs=%v", outs, errs)
	}
}

// TestColumnarRepeatedTagDocs drills the ambiguous-path branch directly:
// the occurrence-number examples from the paper must hold under the
// columnar kernel (candidates on repeated-tag paths go through scalar
// occurrence determination).
func TestColumnarRepeatedTagDocs(t *testing.T) {
	doc := xmldoc.FromPaths([]string{"a", "b", "c", "a", "b", "c"})
	for _, v := range allVariants {
		m := New(Options{Variant: v})
		sids := mustAdd(t, m, "a//b/c", "c//b//a", "/a/b/c", "//c//a//c")
		got := colMatchSets(t, m, []*xmldoc.Document{doc})[0]
		want := map[SID]bool{sids[0]: true, sids[2]: true, sids[3]: true}
		if !setsEqual(got, want) {
			t.Fatalf("%v: columnar = %v, want %v", v, got, want)
		}
	}
}
