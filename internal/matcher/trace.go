package matcher

import (
	"strings"
	"time"

	"predfilter/internal/guard"
	"predfilter/internal/occur"
	"predfilter/internal/predindex"
	"predfilter/internal/xmldoc"
)

// Match tracing: a per-document explanation mode. The authoritative result
// comes from the normal matching path (so tracing can never report a
// different answer than matching would); a second, deliberately slow pass
// then re-evaluates every registered expression directly — no covering, no
// clustering, no path cache — and records, per candidate expression and
// per document path, which chain predicates produced occurrence pairs,
// which came up empty, and how hard occurrence determination had to search.
// The trace is the observable form of the paper's two-stage split: stage 1
// evidence is the per-predicate pair lists, stage 2 evidence is the
// occurrence-determination outcome over them.

const (
	// MaxTraceExprs bounds the number of expressions a trace explains;
	// traces are for debugging single documents, not for bulk workloads,
	// and an unbounded trace over a large subscription table would dwarf
	// the document.
	MaxTraceExprs = 256
	// maxTracePairs bounds the occurrence pairs reported per predicate
	// level (TotalPairs still reports the uncapped count).
	maxTracePairs = 8
	// maxTracePaths bounds the per-path evidence entries per expression.
	maxTracePaths = 16
)

// PredicateEval is the stage-1 evidence for one chain level on one path:
// the predicate (paper notation), whether it produced any occurrence
// pairs, and the pairs themselves (capped at maxTracePairs).
type PredicateEval struct {
	Predicate  string       `json:"predicate"`
	Hit        bool         `json:"hit"`
	Pairs      []occur.Pair `json:"pairs,omitempty"`
	TotalPairs int          `json:"total_pairs"`
}

// PathEvidence is one path's worth of evidence for one expression. It is
// recorded only for paths where at least one chain predicate hit; a path
// contributing nothing explains nothing.
type PathEvidence struct {
	Path string `json:"path"` // /t1/t2/.../tn
	// Predicates holds one entry per chain level, in chain order.
	Predicates []PredicateEval `json:"predicates"`
	// Matched reports whether occurrence determination found a chained
	// combination on this path (after postponed filters, if any).
	Matched bool `json:"matched"`
	// MaxDepth is the longest consistent chain prefix the search reached;
	// Steps counts the occurrence pairs it visited (search effort).
	MaxDepth int `json:"max_depth"`
	Steps    int `json:"steps"`
	// FilteredOut is set when the structural chain matched but a postponed
	// attribute filter emptied a level (§5, selection postponed).
	FilteredOut bool `json:"filtered_out,omitempty"`
}

// ExprTrace explains one registered expression against the document.
type ExprTrace struct {
	SIDs    []SID  `json:"sids"`
	Expr    string `json:"expr"` // predicate-chain notation (nested: source text)
	Matched bool   `json:"matched"`
	// ViaCover is set when the expression matched but no path's direct
	// evaluation succeeded: the match came from a covering relation
	// (prefix or containment) rather than its own occurrence
	// determination.
	ViaCover bool `json:"via_cover,omitempty"`
	// Nested marks nested-path expressions, which are summarized (their
	// per-path decomposition is reported by source text only).
	Nested bool           `json:"nested,omitempty"`
	Paths  []PathEvidence `json:"paths,omitempty"`
}

// Trace is the full per-document explanation, including the nanosecond
// cost of each pipeline stage from the authoritative matching pass and of
// the explanation pass itself.
type Trace struct {
	Paths   int `json:"paths"`
	Matches int `json:"matches"`
	// Stage costs of the authoritative match, in nanoseconds. ParseNanos
	// is zero here; the engine layer fills it in (the matcher never sees
	// raw bytes).
	ParseNanos     int64 `json:"parse_nanos,omitempty"`
	CacheNanos     int64 `json:"cache_nanos"`
	PredMatchNanos int64 `json:"pred_match_nanos"`
	OccurNanos     int64 `json:"occur_nanos"`
	TotalNanos     int64 `json:"total_nanos"`
	TraceNanos     int64 `json:"trace_nanos"`
	// Exprs explains every registered distinct expression, capped at
	// MaxTraceExprs (TruncatedExprs reports whether the cap was hit).
	Exprs          []ExprTrace `json:"exprs"`
	TruncatedExprs bool        `json:"truncated_exprs,omitempty"`
}

// exprString renders a single-path expression's predicate chain in the
// paper's notation: {P1; P2; ...}.
func (m *Matcher) exprString(e *expr) string {
	var b strings.Builder
	b.WriteByte('{')
	for i, pid := range e.pids {
		if i > 0 {
			b.WriteString("; ")
		}
		b.WriteString(m.ix.Pred(pid).String())
		if e.post != nil && (len(e.post[i].Left) > 0 || len(e.post[i].Right) > 0) {
			b.WriteString("+post")
		}
	}
	b.WriteByte('}')
	return b.String()
}

// MatchDocumentTraced matches the document normally and then produces the
// explanation trace. It is the slow path by design: per-path predicate
// matching reruns without the path cache and every expression is evaluated
// directly (covering relations are reported, not exploited).
func (m *Matcher) MatchDocumentTraced(doc *xmldoc.Document) ([]SID, *Trace) {
	sids, tr, _ := m.MatchDocumentTracedBudget(doc, nil)
	return sids, tr
}

// MatchDocumentTracedBudget is MatchDocumentTraced under a budget. The
// authoritative match is charged to bud directly; the explanation pass —
// which re-evaluates every expression without covers or the path cache,
// so it can spend far more search effort than the match it explains —
// runs under bud.Fork(): the step budget resets for the second pass while
// the wall-clock deadline and cancellation carry over. Either pass
// tripping returns the typed *guard.LimitError with no partial trace. A
// nil budget is unlimited and never errors.
func (m *Matcher) MatchDocumentTracedBudget(doc *xmldoc.Document, bud *guard.Budget) ([]SID, *Trace, error) {
	t0 := time.Now()
	sids, bd, err := m.MatchDocumentBudget(doc, bud)
	if err != nil {
		return nil, nil, err
	}

	tr := &Trace{
		Paths:          len(doc.Paths),
		Matches:        len(sids),
		CacheNanos:     bd.Cache.Nanoseconds(),
		PredMatchNanos: bd.PredMatch.Nanoseconds(),
		OccurNanos:     (bd.ExprMatch + bd.Other).Nanoseconds(),
		TotalNanos:     time.Since(t0).Nanoseconds(),
	}

	t1 := time.Now()
	m.ensureFrozen()
	defer m.mu.RUnlock()

	matched := make(map[*expr]bool, len(sids))
	for _, sid := range sids {
		if int(sid) < len(m.sidOwner) && m.sidOwner[sid] != nil {
			matched[m.sidOwner[sid]] = true
		}
	}

	// Traced expressions: every distinct registered expression with at
	// least one live SID, in registration order, up to the cap.
	var traced []*expr
	for _, e := range m.exprs {
		if len(e.sids) == 0 {
			continue
		}
		if len(traced) == MaxTraceExprs {
			tr.TruncatedExprs = true
			break
		}
		traced = append(traced, e)
	}

	tr.Exprs = make([]ExprTrace, len(traced))
	for i, e := range traced {
		et := &tr.Exprs[i]
		et.SIDs = append([]SID(nil), e.sids...)
		et.Matched = matched[e]
		if e.root != nil {
			et.Nested = true
			et.Expr = e.nsrc
		} else {
			et.Expr = m.exprString(e)
		}
	}

	// Explanation pass: one fresh predicate-matching run per path, shared
	// by all traced expressions of that path.
	sc := &scratch{
		res:   predindex.NewResults(m.ix.Len()),
		byTag: make(map[string][]*xmldoc.Tuple),
	}
	tb := bud.Fork()
	directMatch := make([]bool, len(traced))
	for p := range doc.Paths {
		if !tb.CheckPoint() {
			return nil, nil, tb.Err()
		}
		pub := &doc.Paths[p]
		sc.pub = pub
		sc.byTagOK = false
		sc.res.Reset(m.ix.Len())
		m.ix.MatchPath(pub, sc.res)
		for i, e := range traced {
			if e.root != nil {
				continue
			}
			ev, direct := m.tracePath(sc, e, pub, tb)
			if tb.Exceeded() {
				return nil, nil, tb.Err()
			}
			if direct {
				directMatch[i] = true
			}
			if ev != nil && len(tr.Exprs[i].Paths) < maxTracePaths {
				tr.Exprs[i].Paths = append(tr.Exprs[i].Paths, *ev)
			}
		}
	}
	for i, e := range traced {
		if e.root == nil && tr.Exprs[i].Matched && !directMatch[i] {
			tr.Exprs[i].ViaCover = true
		}
	}
	tr.TraceNanos = time.Since(t1).Nanoseconds()
	return sids, tr, nil
}

// tracePath evaluates one single-path expression directly against one
// path's predicate results, returning the evidence (nil when no chain
// predicate hit — the path explains nothing) and whether the expression
// matched this path directly. The occurrence searches are charged to bud;
// when it trips the returned evidence is partial and the caller must
// discard it and surface bud.Err.
func (m *Matcher) tracePath(sc *scratch, e *expr, pub *xmldoc.Publication, bud *guard.Budget) (*PathEvidence, bool) {
	anyHit := false
	allHit := true
	evals := make([]PredicateEval, len(e.pids))
	chain := make([][]occur.Pair, 0, len(e.pids))
	for i, pid := range e.pids {
		pairs := sc.res.Get(pid)
		pe := &evals[i]
		pe.Predicate = m.ix.Pred(pid).String()
		pe.TotalPairs = len(pairs)
		if len(pairs) > 0 {
			pe.Hit = true
			anyHit = true
			n := len(pairs)
			if n > maxTracePairs {
				n = maxTracePairs
			}
			pe.Pairs = append([]occur.Pair(nil), pairs[:n]...)
		} else {
			allHit = false
		}
		chain = append(chain, pairs)
	}
	if !anyHit {
		return nil, false
	}
	ev := &PathEvidence{Path: pub.String(), Predicates: evals}
	if allHit {
		ok, depth, steps := occur.DetermineStepsBudget(chain, bud)
		ev.Matched, ev.MaxDepth, ev.Steps = ok, depth, steps
		if ok && e.post != nil {
			filtered, nonempty := m.filterChain(sc, e, chain)
			if !nonempty {
				ev.Matched = false
				ev.FilteredOut = true
			} else {
				fok, fdepth, fsteps := occur.DetermineStepsBudget(filtered, bud)
				ev.Steps += fsteps
				if !fok {
					ev.Matched = false
					ev.FilteredOut = true
					ev.MaxDepth = fdepth
				}
			}
		}
	}
	return ev, ev.Matched
}
