package matcher

import (
	"predfilter/internal/guard"
	"predfilter/internal/occur"
	"predfilter/internal/xmldoc"
)

// MatchDocumentAll returns, for every matching expression, the number of
// distinct occurrence-chain combinations across all document paths.
//
// The paper's filtering semantics needs only the first match per
// expression (Algorithm 1 stops there; §2 notes the Index-Filter baseline
// was modified accordingly). This method is the contrasting all-matches
// capability: it keeps enumerating, which is what applications that need
// every match site (the original Index-Filter problem statement) pay for.
// Nested-path expressions report 1 when matched (their recombination is
// defined on match existence, §5).
//
// Path deduplication remains sound here: structurally identical paths
// contribute identical combination counts, so each distinct path's count
// is multiplied by its multiplicity.
func (m *Matcher) MatchDocumentAll(doc *xmldoc.Document) map[SID]int {
	counts, _ := m.MatchDocumentAllBudget(doc, nil)
	return counts
}

// MatchDocumentAllBudget is MatchDocumentAll charging the enumeration to
// a per-document budget: every occurrence pair the combination
// enumeration visits counts one step, and the wall clock and context are
// consulted between paths. Exhaustive enumeration is the most expensive
// pipeline path (it keeps searching where filtering stops at the first
// match), so a governed engine must bound it like any other match. When
// the budget trips, the typed *guard.LimitError is returned and the
// partial counts are discarded. A nil budget is unlimited and never
// errors.
func (m *Matcher) MatchDocumentAllBudget(doc *xmldoc.Document, bud *guard.Budget) (map[SID]int, error) {
	m.ensureFrozen()
	defer m.mu.RUnlock()

	sc := m.getScratch()
	defer m.pool.Put(sc)

	dedup := m.pathDedup()
	counts := make(map[int]int) // expr id → combination count
	mult := make(map[uint64]int)

	// First pass over paths: with dedup, count each distinct publication's
	// multiplicity up front so one evaluation covers all copies.
	if dedup {
		for i := range doc.Paths {
			mult[pubHash(&doc.Paths[i], m.attrSensitive)]++
		}
	}
	seen := make(map[uint64]bool)

	for i := range doc.Paths {
		if !bud.CheckPoint() {
			clear(sc.ncands)
			return nil, bud.Err()
		}
		pub := &doc.Paths[i]
		sc.pub = pub
		sc.byTagOK = false
		factor := 1
		if dedup {
			key := pubHash(pub, m.attrSensitive)
			if seen[key] {
				continue
			}
			seen[key] = true
			factor = mult[key]
		}
		sc.res.Reset(m.ix.Len())
		m.ix.MatchPath(pub, sc.res)

		// Covering and access-predicate shortcuts prove existence, not
		// counts, so every unit is enumerated (with the cheap rejects).
		for _, h := range m.ordered {
			if !sc.res.Matched(h.first) {
				continue
			}
			m.countUnit(sc, h.e, counts, factor, bud)
			if bud.Exceeded() {
				clear(sc.ncands)
				return nil, bud.Err()
			}
		}
		for _, e := range m.nested {
			e.root.collect(m, sc, bud)
		}
		if bud.Exceeded() {
			clear(sc.ncands)
			return nil, bud.Err()
		}
	}

	for _, e := range m.nested {
		if e.root.resolveRoot(sc) {
			counts[e.id] = 1
		}
	}
	clear(sc.ncands)

	out := make(map[SID]int, len(counts))
	for id, n := range counts {
		if id >= len(m.exprs) {
			continue // group representative
		}
		for _, sid := range m.exprs[id].sids {
			out[sid] = n
		}
	}
	return out, nil
}

// countUnit accumulates combination counts for one iteration unit (an
// expression, or a structural group whose members are counted over the
// filtered chains). A budget trip leaves a partial count behind; the
// caller discards the whole map when bud.Exceeded.
func (m *Matcher) countUnit(sc *scratch, e *expr, counts map[int]int, factor int, bud *guard.Budget) {
	chain := sc.chain[:0]
	for _, pid := range e.pids {
		r := sc.res.Get(pid)
		if len(r) == 0 {
			sc.chain = chain
			return
		}
		chain = append(chain, r)
	}
	sc.chain = chain

	enumerate := func(ch [][]occur.Pair) int {
		n := 0
		occur.EnumerateBudget(ch, bud, func([]occur.Pair) bool {
			n++
			return true
		})
		return n
	}

	if e.members == nil {
		if n := enumerate(chain); n > 0 {
			counts[e.id] += n * factor
		}
		return
	}
	for _, mem := range e.members {
		if mem.post == nil {
			if n := enumerate(chain); n > 0 {
				counts[mem.id] += n * factor
			}
			continue
		}
		filtered, ok := m.filterChain(sc, mem, chain)
		if !ok {
			continue
		}
		if n := enumerate(filtered); n > 0 {
			counts[mem.id] += n * factor
		}
	}
}
