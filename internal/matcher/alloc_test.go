//go:build !race

// The race detector's instrumentation changes allocation behavior, so the
// AllocsPerRun assertions only run in the regular test legs.

package matcher

import (
	"fmt"
	"strings"
	"testing"

	"predfilter/internal/metrics"
	"predfilter/internal/xmldoc"
)

// TestMatchDocumentCacheHitAllocs pins the steady-state allocation cost of
// the cache-hit path: once the document's path signatures are resident,
// MatchDocument performs zero per-path heap allocations — the only
// allocation left is the caller's result slice, and none at all when
// nothing matches. The document carries many paths so any per-path
// allocation would blow well past the bounds.
func TestMatchDocumentCacheHitAllocs(t *testing.T) {
	var sb strings.Builder
	sb.WriteString("<a>")
	for i := 0; i < 20; i++ {
		sb.WriteString(fmt.Sprintf("<b><c n=\"%d\"/></b><d/>", i))
	}
	sb.WriteString("</a>")
	doc, err := xmldoc.Parse([]byte(sb.String()))
	if err != nil {
		t.Fatal(err)
	}

	for _, v := range []Variant{Basic, PrefixCover, PrefixCoverAP} {
		for _, tc := range []struct {
			name  string
			xpes  []string
			bound float64 // allowed allocs per MatchDocument call
		}{
			// One allocation: the returned []SID.
			{"matching", []string{"/a/b/c", "//d", "/a/*", "//b"}, 1},
			// Nothing matches, so the result slice stays nil: zero allocs.
			{"non-matching", []string{"/a/x", "//y/z", "/q"}, 0},
		} {
			t.Run(fmt.Sprintf("%v/%s", v, tc.name), func(t *testing.T) {
				// Metrics are always on in the engine, so the allocation
				// bounds are asserted with recording enabled: observing a
				// document must not add a single allocation (the
				// zero-allocation contract of internal/metrics).
				m := New(Options{Variant: v, Metrics: metrics.NewSet()})
				for _, x := range tc.xpes {
					if _, err := m.Add(x); err != nil {
						t.Fatal(err)
					}
				}
				// Warm up: freeze, size the scratch buffers, fill the cache.
				m.MatchDocument(doc)
				if st, ok := m.PathCacheStats(); !ok || st.Misses == 0 {
					t.Fatalf("cache not active after warmup: %+v ok=%v", st, ok)
				}
				allocs := testing.AllocsPerRun(50, func() { m.MatchDocument(doc) })
				if allocs > tc.bound {
					t.Fatalf("MatchDocument allocates %.1f per call on cache hits, want <= %.0f", allocs, tc.bound)
				}
				if st, _ := m.PathCacheStats(); st.Hits == 0 {
					t.Fatalf("no cache hits recorded: %+v", st)
				}
			})
		}
	}
}
