package matcher

import (
	"fmt"
	"testing"

	"predfilter/internal/predicate"
	"predfilter/internal/xmldoc"
)

// TestPostponedGrouping: in Postponed mode, attribute variants of one
// structural chain share a group representative; bare and annotated
// variants coexist and report correctly.
func TestPostponedGrouping(t *testing.T) {
	m := New(Options{Variant: PrefixCoverAP, AttrMode: predicate.Postponed})
	xpes := []string{
		"/a/b",       // bare
		"/a/b[@k=1]", // variant 1
		"/a/b[@k=2]", // variant 2
		"/a[@j=5]/b", // variant 3
		"/a/c",       // different chain
		"/a/c[@k=1]", //
	}
	sids := mustAdd(t, m, xpes...)
	m.mu.Lock()
	m.freeze()
	units := len(m.ordered)
	slots := m.matchedSlots
	m.mu.Unlock()
	if units != 2 {
		t.Errorf("iteration units = %d, want 2 (one group per structural chain)", units)
	}
	if slots != len(m.exprs)+2 {
		t.Errorf("matchedSlots = %d, want %d", slots, len(m.exprs)+2)
	}

	doc, err := xmldoc.Parse([]byte(`<a j="5"><b k="1"/></a>`))
	if err != nil {
		t.Fatal(err)
	}
	got := matchSet(m, doc)
	want := []bool{true, true, false, true, false, false}
	for i, w := range want {
		if got[sids[i]] != w {
			t.Errorf("%q: matched=%v, want %v", xpes[i], got[sids[i]], w)
		}
	}
}

// TestPostponedGroupSkip: once every member of a group matched, later
// paths skip the group (observable through correct results on documents
// where different paths satisfy different variants).
func TestPostponedGroupSkip(t *testing.T) {
	m := New(Options{Variant: Basic, AttrMode: predicate.Postponed})
	sids := mustAdd(t, m, "/r/x[@v=1]", "/r/x[@v=2]", "/r/x[@v=3]")
	doc, err := xmldoc.Parse([]byte(`<r><x v="1"><l1/></x><x v="2"><l2/></x></r>`))
	if err != nil {
		t.Fatal(err)
	}
	got := matchSet(m, doc)
	want := []bool{true, true, false}
	for i, w := range want {
		if got[sids[i]] != w {
			t.Errorf("variant %d: matched=%v, want %v", i+1, got[sids[i]], w)
		}
	}
}

// TestBreakdownAccounting: the cost split is populated and the stages sum
// to within an order of magnitude of something sensible (they are wall
// clock, so only coarse sanity is possible).
func TestBreakdownAccounting(t *testing.T) {
	m := New(Options{Variant: PrefixCoverAP})
	for i := 0; i < 200; i++ {
		if _, err := m.Add(fmt.Sprintf("/r/t%d/u", i%50)); err != nil {
			t.Fatal(err)
		}
	}
	doc, err := xmldoc.Parse([]byte(`<r><t1><u/></t1><t2><u/></t2></r>`))
	if err != nil {
		t.Fatal(err)
	}
	sids, bd := m.MatchDocumentBreakdown(doc)
	if len(sids) != 8 { // t1/u and t2/u, 4 duplicate sids each
		t.Errorf("matched %d sids, want 8", len(sids))
	}
	if bd.PredMatch <= 0 || bd.ExprMatch < 0 || bd.Other < 0 {
		t.Errorf("breakdown = %+v", bd)
	}
}

// TestPathDedupWithAttrSensitivity: with attribute predicates registered,
// paths differing only in attribute values must not be deduplicated.
func TestPathDedupWithAttrSensitivity(t *testing.T) {
	for _, mode := range []predicate.AttrMode{predicate.Inline, predicate.Postponed} {
		m := New(Options{Variant: PrefixCoverAP, AttrMode: mode})
		sid, err := m.Add("/r/x[@v=2]")
		if err != nil {
			t.Fatal(err)
		}
		// Two structurally identical paths; only the second satisfies the
		// filter. A tag-only dedup key would drop it.
		doc, err := xmldoc.Parse([]byte(`<r><x v="1"/><x v="2"/></r>`))
		if err != nil {
			t.Fatal(err)
		}
		got := matchSet(m, doc)
		if !got[sid] {
			t.Errorf("mode %d: attribute-bearing duplicate path was deduplicated away", mode)
		}
	}
}

// TestDedupDisabledEquivalence: DisablePathDedup changes nothing about
// results.
func TestDedupDisabledEquivalence(t *testing.T) {
	doc, err := xmldoc.Parse([]byte(`<r><x><y/></x><x><y/></x><z/></r>`))
	if err != nil {
		t.Fatal(err)
	}
	xpes := []string{"/r/x/y", "/r/z", "/r/q", "x/y", "//y"}
	for _, disable := range []bool{false, true} {
		m := New(Options{Variant: PrefixCoverAP, DisablePathDedup: disable})
		sids := mustAdd(t, m, xpes...)
		got := matchSet(m, doc)
		want := []bool{true, true, false, true, true}
		for i, w := range want {
			if got[sids[i]] != w {
				t.Errorf("disable=%v %q: matched=%v, want %v", disable, xpes[i], got[sids[i]], w)
			}
		}
	}
}
