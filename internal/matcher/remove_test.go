package matcher

import (
	"sync"
	"testing"

	"predfilter/internal/xmldoc"
)

// Regression tests for Remove semantics after freeze: a removed SID must
// never reappear through any matching path — sequential, path-parallel,
// or the shared-expression storage a duplicate registration rides on —
// and Stats must report the live (post-Remove) count.

func removeDoc() *xmldoc.Document {
	return xmldoc.FromPaths([]string{"a", "b", "c"}, []string{"a", "d"})
}

func TestRemoveAfterFreeze(t *testing.T) {
	for _, v := range allVariants {
		m := New(Options{Variant: v})
		// Duplicates share one stored expression; removing one SID must
		// not disturb its siblings.
		sids := mustAdd(t, m, "/a/b/c", "/a/b/c", "a//c", "/a/b/c")
		doc := removeDoc()

		// Freeze by matching once; Remove then operates on the frozen
		// organization.
		if got := matchSet(m, doc); !got[sids[0]] || !got[sids[1]] || !got[sids[3]] {
			t.Fatalf("%v: pre-remove matches = %v", v, got)
		}
		if err := m.Remove(sids[1]); err != nil {
			t.Fatalf("%v: Remove: %v", v, err)
		}
		if st := m.Stats(); st.SIDs != 3 {
			t.Fatalf("%v: Stats().SIDs = %d after Remove, want 3", v, st.SIDs)
		}

		for name, match := range map[string]func() []SID{
			"MatchDocument":         func() []SID { return m.MatchDocument(doc) },
			"MatchDocumentParallel": func() []SID { return m.MatchDocumentParallel(doc, 2) },
		} {
			got := map[SID]bool{}
			for _, sid := range match() {
				got[sid] = true
			}
			if got[sids[1]] {
				t.Fatalf("%v: %s reported removed sid %d", v, name, sids[1])
			}
			// The duplicate's siblings keep matching via the shared entry.
			if !got[sids[0]] || !got[sids[3]] || !got[sids[2]] {
				t.Fatalf("%v: %s dropped surviving sids: %v", v, name, got)
			}
		}

		// Double removal errors, and the count stays at the live value.
		if err := m.Remove(sids[1]); err == nil {
			t.Fatalf("%v: second Remove of sid %d succeeded", v, sids[1])
		}
		if st := m.Stats(); st.SIDs != 3 {
			t.Fatalf("%v: Stats().SIDs = %d after double Remove, want 3", v, st.SIDs)
		}
	}
}

// TestRemoveConcurrentWithMatching churns Add/Remove while matchers run.
// Once Remove has returned, the SID must be absent from every subsequently
// started match; the test runs under -race in CI to catch unsynchronized
// access to the shared expression storage.
func TestRemoveConcurrentWithMatching(t *testing.T) {
	m := New(Options{Variant: PrefixCoverAP})
	doc := removeDoc()

	// Matching exprs removed up front: these must never surface again.
	dead := mustAdd(t, m, "/a/b/c", "a//c", "/a/b/c")
	keep := mustAdd(t, m, "//b/c")
	m.MatchDocument(doc) // freeze with the dead sids still present
	for _, sid := range dead {
		if err := m.Remove(sid); err != nil {
			t.Fatal(err)
		}
	}
	isDead := map[SID]bool{}
	for _, sid := range dead {
		isDead[sid] = true
	}

	var churn sync.WaitGroup
	var wg sync.WaitGroup
	stop := make(chan struct{})
	// Churner: keeps adding matching expressions and removing them again,
	// forcing refreezes interleaved with matching.
	churn.Add(1)
	go func() {
		defer churn.Done()
		for i := 0; ; i++ {
			select {
			case <-stop:
				return
			default:
			}
			sid, err := m.Add("/a/*/c")
			if err != nil {
				t.Error(err)
				return
			}
			if err := m.Remove(sid); err != nil {
				t.Error(err)
				return
			}
		}
	}()

	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func(par bool) {
			defer wg.Done()
			for i := 0; i < 300; i++ {
				var sids []SID
				if par {
					sids = m.MatchDocumentParallel(doc, 2)
				} else {
					sids = m.MatchDocument(doc)
				}
				found := false
				for _, sid := range sids {
					if isDead[sid] {
						t.Errorf("removed sid %d reappeared", sid)
						return
					}
					if sid == keep[0] {
						found = true
					}
				}
				if !found {
					t.Errorf("surviving sid %d missing from %v", keep[0], sids)
					return
				}
			}
		}(w%2 == 0)
	}
	wg.Wait() // matcher goroutines finish first
	close(stop)
	churn.Wait()
}
