// Package matcher implements the paper's filtering engine: XPath
// expressions are encoded as ordered sets of predicates (stored once in a
// shared predicate index), XML documents arrive as sets of encoded paths,
// and matching runs in the two stages of §4 — predicate matching followed
// by expression matching via occurrence determination.
//
// Three expression organizations are provided (§4.2.2):
//
//   - Basic: every expression is evaluated independently per path.
//   - PrefixCover (basic-pc): expressions are organized by shared
//     predicate-chain prefixes; evaluating a long expression marks all of
//     its prefix expressions matched without re-running occurrence
//     determination.
//   - PrefixCoverAP (basic-pc-ap): additionally clusters expressions by
//     their first predicate (the access predicate); a cluster whose access
//     predicate did not match is skipped wholesale.
//
// Attribute filters follow §5 in either Inline mode (filters ride on the
// structural predicates) or Postponed mode (structural match first, filter
// verification after). Nested path filters are decomposed per §5 and
// recombined bottom-up over document node identities (see nested.go).
package matcher

import (
	"fmt"
	"sort"
	"sync"
	"time"

	"predfilter/internal/guard"
	"predfilter/internal/metrics"
	"predfilter/internal/occur"
	"predfilter/internal/pathcache"
	"predfilter/internal/predicate"
	"predfilter/internal/predindex"
	"predfilter/internal/xmldoc"
	"predfilter/internal/xpath"
)

// SID identifies one registered expression (subscription). Duplicate
// expressions receive distinct SIDs but share all storage and evaluation.
type SID int32

// Variant selects the expression organization.
type Variant int

const (
	// Basic is the unoptimized organization.
	Basic Variant = iota
	// PrefixCover adds prefix-covering (basic-pc).
	PrefixCover
	// PrefixCoverAP adds access-predicate clustering on top of prefix
	// covering (basic-pc-ap).
	PrefixCoverAP
)

// String returns the paper's name for the variant.
func (v Variant) String() string {
	switch v {
	case Basic:
		return "basic"
	case PrefixCover:
		return "basic-pc"
	case PrefixCoverAP:
		return "basic-pc-ap"
	}
	return fmt.Sprintf("Variant(%d)", int(v))
}

// Options configures a Matcher.
type Options struct {
	Variant  Variant
	AttrMode predicate.AttrMode
	// DisablePathDedup turns off per-document deduplication of
	// structurally identical publications (kept for ablation benchmarks).
	DisablePathDedup bool
	// CoverMode selects the covering relations exploited by the pc
	// variants (default: the paper's prefix covering).
	CoverMode CoverMode
	// ClusterBy selects the access predicate for PrefixCoverAP (default:
	// the paper's first-predicate clustering).
	ClusterBy ClusterBy
	// PathCacheBytes bounds the structural path-signature cache (see
	// internal/pathcache): 0 selects the default size
	// (pathcache.DefaultMaxBytes), a negative value disables the cache.
	PathCacheBytes int64
	// Metrics, when non-nil, receives per-document stage observations
	// (predicate matching, occurrence determination, cache time, total
	// match time) and the document/path/match counters. Recording follows
	// the zero-allocation contract of internal/metrics.
	Metrics *metrics.Set
}

// Matcher is the filtering engine. It is safe for concurrent MatchDocument
// calls; Add/Remove must not run concurrently with matching.
type Matcher struct {
	opts Options

	mu       sync.RWMutex
	ix       *predindex.Index
	exprs    []*expr
	byKey    map[uint64][]*expr // chainHash → bucket, resolved by full compare
	sidOwner []*expr            // sid → owning expression (nil after Remove)
	nsids    int                // live sid count

	dirty    bool
	ordered  []hotExpr                   // iteration units, longest chain first
	clusters map[predindex.PID][]hotExpr // access-predicate clusters, each longest first
	nested   []*expr                     // expressions with nested path filters
	// matchedSlots sizes the per-call matched array: expressions plus
	// synthetic group representatives.
	matchedSlots int

	// attrSensitive is set once any registered predicate inspects
	// attribute values; it forces publication dedup keys to include them.
	attrSensitive bool

	// Path-signature caching (see cache.go): the frozen iteration units
	// split into value-independent (cacheable) and value-dependent (always
	// live) halves; needRes records whether any live work exists, i.e.
	// whether cache entries must carry a replayable predicate transcript.
	cache          *pathcache.Cache
	structUnits    []hotExpr
	liveUnits      []hotExpr
	structClusters map[predindex.PID][]hotExpr
	liveClusters   map[predindex.PID][]hotExpr
	needRes        bool

	// mx receives stage observations when configured (Options.Metrics).
	mx *metrics.Set

	pool sync.Pool // *scratch

	// Columnar batch matching (see columnar.go): gen counts freeze
	// rebuilds and keys the derived column index, which is rebuilt lazily
	// on the first columnar batch after a registration change. Scalar
	// matching never touches either.
	gen     uint64
	col     *colIndex
	colPool sync.Pool // *colScratch
}

// hotExpr packs the fields the per-path rejection loop touches into a
// flat slice entry: most expressions are rejected by their first or second
// predicate, and chasing an *expr pointer for that wastes the cache.
type hotExpr struct {
	id     int32
	first  predindex.PID
	second predindex.PID // NoPID when the chain has one predicate
	e      *expr
}

func hot(e *expr) hotExpr {
	h := hotExpr{id: int32(e.id), first: e.pids[0], second: predindex.NoPID, e: e}
	if len(e.pids) > 1 {
		h.second = e.pids[1]
	}
	return h
}

// expr is one distinct registered expression.
type expr struct {
	id   int
	sids []SID

	// Single-path expressions:
	pids []predindex.PID
	post []predicate.SideAttrs // postponed attribute filters; nil if none
	// covers are the registered strict-prefix expressions of this one
	// (same pid chain and, in Postponed mode, same filter annotations).
	covers []*expr
	// fullCovers are suffix/infix-contained registered expressions,
	// marked on a full match (Containment cover mode only).
	fullCovers []*expr
	// members is set on group representatives only (Postponed mode): the
	// attribute-annotation variants sharing this bare structural chain.
	// The representative itself is synthetic (no sids); its matched flag
	// means "every member matched".
	members []*expr

	// Nested-path expressions:
	root *nestedNode // non-nil iff the expression has nested path filters
	nsrc string      // canonical source text, the dedup identity of a nested expression
}

// New returns an empty matcher with the given options.
func New(opts Options) *Matcher {
	m := &Matcher{
		opts:  opts,
		ix:    predindex.New(),
		byKey: make(map[uint64][]*expr),
		mx:    opts.Metrics,
	}
	if opts.PathCacheBytes >= 0 {
		m.cache = pathcache.New(opts.PathCacheBytes)
	}
	m.pool.New = func() any { return &scratch{} }
	m.colPool.New = func() any { return &colScratch{} }
	return m
}

// Options returns the matcher's configuration.
func (m *Matcher) Options() Options { return m.opts }

// Add parses and registers an expression, returning its SID.
func (m *Matcher) Add(s string) (SID, error) {
	p, err := xpath.Parse(s)
	if err != nil {
		return 0, err
	}
	return m.AddPath(p)
}

// AddPath registers a parsed expression, returning its SID. Registration
// is constant-time in the number of stored expressions: predicates are
// deduplicated in the predicate index and identical expressions share one
// entry.
func (m *Matcher) AddPath(p *xpath.Path) (SID, error) {
	m.mu.Lock()
	defer m.mu.Unlock()
	e, err := m.register(p)
	if err != nil {
		return 0, err
	}
	sid := SID(len(m.sidOwner))
	m.bind(e, sid)
	return sid, nil
}

// AddWithSID parses and registers an expression under a caller-chosen SID.
// It exists for durable stores replaying persisted subscriptions after a
// restart: a subscription keeps the id it was acknowledged with, so ids
// held by clients stay valid across recovery. The SID must not be live;
// plain Add continues from past the highest SID ever bound, so reclaimed
// and freshly assigned ids never collide.
func (m *Matcher) AddWithSID(s string, sid SID) error {
	p, err := xpath.Parse(s)
	if err != nil {
		return err
	}
	return m.AddPathWithSID(p, sid)
}

// AddPathWithSID is AddWithSID for a parsed expression.
func (m *Matcher) AddPathWithSID(p *xpath.Path, sid SID) error {
	if sid < 0 {
		return fmt.Errorf("matcher: negative sid %d", sid)
	}
	m.mu.Lock()
	defer m.mu.Unlock()
	if int(sid) < len(m.sidOwner) && m.sidOwner[sid] != nil {
		return fmt.Errorf("matcher: sid %d is already registered", sid)
	}
	e, err := m.register(p)
	if err != nil {
		return err
	}
	for len(m.sidOwner) <= int(sid) {
		m.sidOwner = append(m.sidOwner, nil)
	}
	m.bind(e, sid)
	return nil
}

// register stores the expression (or finds its existing shared entry)
// without binding a SID. Callers hold the write lock.
func (m *Matcher) register(p *xpath.Path) (*expr, error) {
	if p.IsSinglePath() {
		return m.registerSingle(p)
	}
	return m.registerNested(p)
}

// bind attaches sid to e. Callers hold the write lock and guarantee the
// slot at sid is allocated and free (or exactly one past the end).
func (m *Matcher) bind(e *expr, sid SID) {
	if int(sid) == len(m.sidOwner) {
		m.sidOwner = append(m.sidOwner, nil)
	}
	m.sidOwner[sid] = e
	e.sids = append(e.sids, sid)
	m.nsids++
}

// Remove unregisters a SID. The expression's predicates remain in the
// index (the paper does not evaluate deletion; predicate garbage
// collection is out of scope), but the SID stops being reported.
func (m *Matcher) Remove(sid SID) error {
	m.mu.Lock()
	defer m.mu.Unlock()
	if int(sid) >= len(m.sidOwner) || m.sidOwner[sid] == nil {
		return fmt.Errorf("matcher: unknown sid %d", sid)
	}
	e := m.sidOwner[sid]
	m.sidOwner[sid] = nil
	for i, s := range e.sids {
		if s == sid {
			e.sids = append(e.sids[:i], e.sids[i+1:]...)
			break
		}
	}
	m.nsids--
	m.invalidatePathCache()
	return nil
}

// registerSingle encodes a single-path expression and either returns the
// existing identical expression or creates a new entry.
func (m *Matcher) registerSingle(p *xpath.Path) (*expr, error) {
	enc, err := predicate.Encode(p, m.opts.AttrMode)
	if err != nil {
		return nil, err
	}
	pids := make([]predindex.PID, len(enc.Preds))
	for i, pr := range enc.Preds {
		pids[i] = m.ix.Insert(pr)
	}
	key := chainHashFn(pids, enc.PostAttrs)
	for _, e := range m.byKey[key] {
		// Bucket hit: the hash narrows the candidates, the full encoded
		// chain (pids plus postponed annotations) decides identity, so a
		// 64-bit collision can never alias two distinct expressions.
		if e.root == nil && pidsEqual(e.pids, pids) && postEqual(e.post, enc.PostAttrs) {
			return e, nil
		}
	}
	e := &expr{id: len(m.exprs), pids: pids}
	if enc.HasPostAttrs() {
		e.post = enc.PostAttrs
		m.attrSensitive = true
	}
	for _, pr := range enc.Preds {
		if pr.HasAttrs() {
			m.attrSensitive = true
		}
	}
	m.exprs = append(m.exprs, e)
	m.byKey[key] = append(m.byKey[key], e)
	m.dirty = true
	m.invalidatePathCache()
	return e, nil
}

// pidsEqual reports whether two predicate chains are identical.
func pidsEqual(a, b []predindex.PID) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// attrFiltersEqual compares two filter lists element-wise (AttrFilter is
// a comparable struct).
func attrFiltersEqual(a, b []xpath.AttrFilter) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// sideAttrsEqual compares the postponed annotations of one chain level.
func sideAttrsEqual(a, b predicate.SideAttrs) bool {
	return attrFiltersEqual(a.Left, b.Left) && attrFiltersEqual(a.Right, b.Right)
}

// postEqual compares postponed annotation vectors; nil is equivalent to
// all-empty (matching the chainHash convention, so bucket compares agree
// with the hash's notion of bare structural identity).
func postEqual(a, b []predicate.SideAttrs) bool {
	n := len(a)
	if len(b) > n {
		n = len(b)
	}
	for i := 0; i < n; i++ {
		var x, y predicate.SideAttrs
		if i < len(a) {
			x = a[i]
		}
		if i < len(b) {
			y = b[i]
		}
		if !sideAttrsEqual(x, y) {
			return false
		}
	}
	return true
}

// freeze rebuilds the derived organizations after additions. It must run
// under the write lock; it is an idempotent no-op when nothing changed.
func (m *Matcher) freeze() {
	if !m.dirty {
		return
	}
	m.nested = m.nested[:0]
	var singles []*expr
	for _, e := range m.exprs {
		if e.root != nil {
			m.nested = append(m.nested, e)
			continue
		}
		singles = append(singles, e)
	}

	// Prefix-cover bookkeeping: group by chain to find registered strict
	// prefixes. A trie over (pid, annotation) levels; each node remembers
	// the expression ending there. Children are hash buckets resolved by
	// comparing the level's full identity, so colliding level hashes can
	// never merge two distinct prefixes.
	type tnode struct {
		pid      predindex.PID
		pa       predicate.SideAttrs
		children map[uint64][]*tnode
		e        *expr
	}
	root := &tnode{children: make(map[uint64][]*tnode)}
	insert := func(e *expr) {
		n := root
		var covers []*expr
		for i, pid := range e.pids {
			k := levelHashFn(pid, e.post, i)
			var pa predicate.SideAttrs
			if e.post != nil {
				pa = e.post[i]
			}
			var c *tnode
			for _, cand := range n.children[k] {
				if cand.pid == pid && sideAttrsEqual(cand.pa, pa) {
					c = cand
					break
				}
			}
			if c == nil {
				c = &tnode{pid: pid, pa: pa, children: make(map[uint64][]*tnode)}
				n.children[k] = append(n.children[k], c)
			}
			n = c
			if n.e != nil && i < len(e.pids)-1 {
				covers = append(covers, n.e)
			}
		}
		n.e = e
		e.covers = covers
	}
	// Insert shortest first so that when a long chain is inserted all of
	// its prefix expressions are already present.
	byLenAsc := append([]*expr(nil), singles...)
	sort.SliceStable(byLenAsc, func(i, j int) bool {
		return len(byLenAsc[i].pids) < len(byLenAsc[j].pids)
	})
	for _, e := range byLenAsc {
		insert(e)
	}

	// Containment covering (extension; see extensions.go).
	if m.opts.CoverMode == Containment {
		m.buildContainmentCovers(singles)
	}

	// Iteration units. In Inline mode each expression is its own unit; in
	// Postponed mode the attribute-annotation variants of one bare
	// structural chain share a synthetic group representative, so the
	// structural occurrence determination runs once per chain per path and
	// only the attribute verification repeats per variant (§5).
	m.ordered = m.ordered[:0]
	m.matchedSlots = len(m.exprs)
	if m.opts.AttrMode == predicate.Postponed {
		groups := make(map[uint64][]*expr)
		for _, e := range singles {
			sk := chainHashFn(e.pids, nil) // bare structural identity
			var rep *expr
			for _, r := range groups[sk] {
				if pidsEqual(r.pids, e.pids) {
					rep = r
					break
				}
			}
			if rep == nil {
				rep = &expr{id: m.matchedSlots, pids: e.pids}
				m.matchedSlots++
				groups[sk] = append(groups[sk], rep)
				m.ordered = append(m.ordered, hot(rep))
			}
			rep.members = append(rep.members, e)
		}
	} else {
		for _, e := range singles {
			m.ordered = append(m.ordered, hot(e))
		}
	}
	// Longest chains first: evaluating the most-covering expressions first
	// is the paper's approximation of best covering order (§4.2.2).
	sort.SliceStable(m.ordered, func(i, j int) bool {
		return len(m.ordered[i].e.pids) > len(m.ordered[j].e.pids)
	})

	// Access-predicate clusters, keyed by the first pid (the paper's
	// scheme) or by each expression's rarest pid (extension).
	var refCount map[predindex.PID]int
	if m.opts.ClusterBy == RarestPredicate {
		refCount = make(map[predindex.PID]int)
		for _, h := range m.ordered {
			for _, pid := range h.e.pids {
				refCount[pid]++
			}
		}
	}
	m.clusters = make(map[predindex.PID][]hotExpr)
	for _, h := range m.ordered { // already longest-first
		pid := m.clusterPid(h.e, refCount)
		m.clusters[pid] = append(m.clusters[pid], h)
	}
	if m.cache != nil {
		m.splitUnits()
		m.invalidatePathCache()
	}
	m.gen++
	m.dirty = false
}

// Stats summarizes engine state.
type Stats struct {
	SIDs                int // live registered expressions (with duplicates)
	DistinctExpressions int
	DistinctPredicates  int
	NestedExpressions   int
	// PathCache reports the structural path-signature cache counters;
	// zero-valued when the cache is disabled (PathCacheEnabled false).
	PathCacheEnabled bool
	PathCache        pathcache.Stats
}

// Stats returns engine statistics; the distinct-predicate count is the
// quantity the paper tracks in Figure 10.
func (m *Matcher) Stats() Stats {
	m.mu.RLock()
	defer m.mu.RUnlock()
	nested := 0
	for _, e := range m.exprs {
		if e.root != nil {
			nested++
		}
	}
	st := Stats{
		SIDs:                m.nsids,
		DistinctExpressions: len(m.exprs),
		DistinctPredicates:  m.ix.Len(),
		NestedExpressions:   nested,
	}
	if m.cache != nil {
		st.PathCacheEnabled = true
		st.PathCache = m.cache.Stats()
	}
	return st
}

// Breakdown is the per-call cost split of Figure 10, extended with the
// path-signature cache stage.
type Breakdown struct {
	PredMatch time.Duration // predicate matching stage
	ExprMatch time.Duration // expression matching (occurrence determination)
	Other     time.Duration // result collection and bookkeeping
	Cache     time.Duration // path-signature cache probes (signature build + lookup)
	Sweep     time.Duration // columnar bitset sweep, a sub-stage of ExprMatch (zero on scalar paths)
}

// scratch is the per-call reusable working state.
type scratch struct {
	res     *predindex.Results
	matched []bool
	chain   [][]occur.Pair
	filt    [][]occur.Pair
	pairBuf []occur.Pair
	byTag   map[string][]*xmldoc.Tuple
	byTagOK bool
	out     []SID
	pub     *xmldoc.Publication
	ncands  map[*nestedNode][]nestedCand
	seen    map[uint64]struct{} // per-document distinct publication hashes

	// Path-cache working state (see cache.go). matched2 is kept all-false
	// between uses: cache misses evaluate structural units against it with
	// logging on, then undo exactly the logged marks.
	sig      []byte
	rec      predindex.Recording
	matched2 []bool
	log      []int32
	logging  bool
}

// mark sets an expression (or group-representative) matched flag, logging
// the transition when a cache miss is recording the structural outcome.
// All stage-2 mark sites go through here so the log captures every id the
// structural units touch.
func (sc *scratch) mark(id int) {
	if sc.matched[id] {
		return
	}
	sc.matched[id] = true
	if sc.logging {
		sc.log = append(sc.log, int32(id))
	}
}

func (m *Matcher) getScratch() *scratch {
	sc := m.pool.Get().(*scratch)
	n := m.ix.Len()
	if sc.res == nil {
		sc.res = predindex.NewResults(n)
	}
	slots := m.matchedSlots
	if slots < len(m.exprs) {
		slots = len(m.exprs)
	}
	if cap(sc.matched) < slots {
		sc.matched = make([]bool, slots)
	} else {
		sc.matched = sc.matched[:slots]
		for i := range sc.matched {
			sc.matched[i] = false
		}
	}
	if m.cache != nil {
		// matched2 is all-false by invariant (misses undo their marks), so
		// growth allocates fresh zeroes and reslicing needs no clearing.
		if cap(sc.matched2) < slots {
			sc.matched2 = make([]bool, slots)
		} else {
			sc.matched2 = sc.matched2[:slots]
		}
	}
	if sc.byTag == nil {
		sc.byTag = make(map[string][]*xmldoc.Tuple)
	}
	if sc.ncands == nil {
		sc.ncands = make(map[*nestedNode][]nestedCand)
	}
	if sc.seen == nil {
		sc.seen = make(map[uint64]struct{})
	}
	clear(sc.seen)
	sc.out = sc.out[:0]
	return sc
}

// MatchDocument returns the SIDs of all expressions matched by the
// document (paper semantics: an expression matches the document iff it
// matches at least one of its root-to-leaf paths; nested-path expressions
// recombine per-path results over the document tree).
func (m *Matcher) MatchDocument(doc *xmldoc.Document) []SID {
	sids, _ := m.MatchDocumentBreakdown(doc)
	return sids
}

// ensureFrozen returns with the read lock held and the derived
// organizations up to date. The read lock cannot be upgraded atomically,
// so after concurrent Adds several matchers may race through the
// RUnlock→Lock window; freeze is an idempotent no-op once the first one
// rebuilt, and dirty is re-checked after every downgrade so a
// registration that slipped into the window is frozen too rather than
// matched against a stale organization (whose synthetic group ids could
// collide with the new expression ids).
func (m *Matcher) ensureFrozen() {
	m.mu.RLock()
	for m.dirty {
		m.mu.RUnlock()
		m.mu.Lock()
		m.freeze()
		m.mu.Unlock()
		m.mu.RLock()
	}
}

// matchPath runs the two matching stages for one publication, folding
// results into sc. bd, when non-nil, accumulates the Figure-10 stage
// timings (the parallel path passes nil to keep clock calls off the
// workers). bud, when non-nil, charges occurrence-determination effort to
// the per-document budget; once it trips the path is abandoned and the
// caller must surface bud.Err instead of a result. Callers must hold the
// read lock with organizations frozen.
func (m *Matcher) matchPath(sc *scratch, pub *xmldoc.Publication, dedup bool, bd *Breakdown, bud *guard.Budget) {
	sc.pub = pub
	sc.byTagOK = false

	var t0 time.Time
	if bd != nil {
		t0 = time.Now()
	}
	if dedup {
		key := pubHash(pub, m.attrSensitive)
		if _, ok := sc.seen[key]; ok {
			if bd != nil {
				bd.PredMatch += time.Since(t0)
			}
			return
		}
		sc.seen[key] = struct{}{}
	}
	if m.cache != nil {
		m.matchPathCached(sc, pub, bd, t0, bud)
		return
	}
	sc.res.Reset(m.ix.Len())
	m.ix.MatchPath(pub, sc.res)
	var t1 time.Time
	if bd != nil {
		t1 = time.Now()
		bd.PredMatch += t1.Sub(t0)
	}

	m.runUnits(sc, m.ordered, m.clusters, bud)
	for _, e := range m.nested {
		e.root.collect(m, sc, bud)
	}
	if bd != nil {
		bd.ExprMatch += time.Since(t1)
	}
}

// runUnits runs the expression-matching stage over the given iteration
// units against sc.res. The cache-disabled path passes the full frozen
// organization; the cache-enabled path passes the structural or live
// half (see cache.go).
func (m *Matcher) runUnits(sc *scratch, units []hotExpr, clusters map[predindex.PID][]hotExpr, bud *guard.Budget) {
	switch m.opts.Variant {
	case Basic, PrefixCover:
		cover := m.opts.Variant == PrefixCover
		for _, h := range units {
			if bud.Exceeded() {
				return
			}
			if sc.matched[h.id] || !sc.res.Matched(h.first) {
				continue
			}
			if h.second != predindex.NoPID && !sc.res.Matched(h.second) {
				continue
			}
			m.evalExpr(sc, h.e, cover, bud)
		}
	case PrefixCoverAP:
		// Access-predicate clustering: only clusters whose first
		// predicate matched this path are visited at all; the matched
		// predicates come straight from the predicate matching stage.
		for _, pid := range sc.res.Touched() {
			for _, h := range clusters[pid] {
				if bud.Exceeded() {
					return
				}
				if sc.matched[h.id] {
					continue
				}
				if h.second != predindex.NoPID && !sc.res.Matched(h.second) {
					continue
				}
				m.evalExpr(sc, h.e, true, bud)
			}
		}
	}
}

// pathDedup reports whether per-document path deduplication is active.
// Structurally identical publications produce identical matching results
// (the predicate rules see only tags, positions and, for attribute-
// carrying predicates, attribute values), but node identity matters to
// nested-path recombination, so dedup is disabled when nested expressions
// are registered.
func (m *Matcher) pathDedup() bool {
	return len(m.nested) == 0 && !m.opts.DisablePathDedup
}

// MatchDocumentBreakdown is MatchDocument with the Figure-10 cost split.
func (m *Matcher) MatchDocumentBreakdown(doc *xmldoc.Document) ([]SID, Breakdown) {
	sids, bd, _ := m.MatchDocumentBudget(doc, nil)
	return sids, bd
}

// MatchDocumentBudget is MatchDocumentBreakdown charging the match to a
// per-document budget. A nil budget is unlimited and never errors. Once
// the budget trips — step bound, deadline, or cancellation — matching
// stops and the budget's *guard.LimitError is returned; the partial marks
// are discarded, never reported as "no match".
func (m *Matcher) MatchDocumentBudget(doc *xmldoc.Document, bud *guard.Budget) ([]SID, Breakdown, error) {
	t0 := time.Now()
	m.ensureFrozen()
	defer m.mu.RUnlock()

	var bd Breakdown
	sc := m.getScratch()
	defer m.pool.Put(sc)

	dedup := m.pathDedup()
	for i := range doc.Paths {
		if !bud.CheckPoint() {
			break
		}
		m.matchPath(sc, &doc.Paths[i], dedup, &bd, bud)
		if bud.Exceeded() {
			break
		}
	}
	if err := bud.Err(); err != nil {
		// The pooled scratch must not leak this document's nested-path
		// candidates into the next match (the success path clears them
		// after recombination).
		clear(sc.ncands)
		return nil, bd, err
	}

	t2 := time.Now()
	for _, e := range m.nested {
		if e.root.resolveRoot(sc) {
			sc.matched[e.id] = true
		}
	}
	clear(sc.ncands)
	for _, e := range m.exprs {
		if sc.matched[e.id] {
			sc.out = append(sc.out, e.sids...)
		}
	}
	out := append([]SID(nil), sc.out...)
	bd.Other = time.Since(t2)
	m.observe(&bd, t0, len(doc.Paths), len(out))
	return out, bd, nil
}

// observe folds one document's stage breakdown into the metric set. The
// recording contract is zero allocations, so this is safe on every match
// path; bd is nil on paths that skip per-stage clocks (the parallel
// shards), which record the whole-document duration only.
func (m *Matcher) observe(bd *Breakdown, t0 time.Time, paths, matches int) {
	if m.mx == nil {
		return
	}
	if bd != nil {
		m.mx.PredMatch.Observe(bd.PredMatch)
		m.mx.Occur.Observe(bd.ExprMatch + bd.Other)
		if m.cache != nil {
			m.mx.Cache.Observe(bd.Cache)
		}
		if bd.Sweep > 0 {
			m.mx.ColSweep.Observe(bd.Sweep)
		}
	}
	m.mx.Match.Observe(time.Since(t0))
	m.mx.DocsTotal.Inc()
	m.mx.PathsTotal.Add(int64(paths))
	m.mx.MatchesTotal.Add(int64(matches))
}

// evalExpr evaluates one single-path expression against the current
// publication's predicate results. With cover set (the pc variants), a
// successful — or exhausted — occurrence determination marks the
// expression's registered prefix expressions up to the reached depth.
func (m *Matcher) evalExpr(sc *scratch, e *expr, cover bool, bud *guard.Budget) {
	chain := sc.chain[:0]
	for _, pid := range e.pids {
		r := sc.res.Get(pid)
		if len(r) == 0 {
			sc.chain = chain
			return
		}
		chain = append(chain, r)
	}
	sc.chain = chain

	if e.members != nil {
		m.evalGroup(sc, e, chain, cover, bud)
		return
	}

	ok, depth := occur.DetermineBudget(chain, bud)
	if bud.Exceeded() {
		return
	}
	if ok {
		sc.mark(e.id)
		if len(e.fullCovers) > 0 {
			m.markFullCovers(sc, e)
		}
	}
	if cover {
		m.markCovers(sc, e, depth)
	}
}

// evalGroup evaluates one structural-chain group (Postponed mode): the
// shared structural occurrence determination runs once; each member's
// attribute filters are then verified over the filtered results (the
// repeated determination §5 describes). The representative's matched flag
// is set once every member matched, so later paths skip the group.
func (m *Matcher) evalGroup(sc *scratch, rep *expr, chain [][]occur.Pair, cover bool, bud *guard.Budget) {
	ok, depth := occur.DetermineBudget(chain, bud)
	if bud.Exceeded() {
		return
	}
	done := true
	for _, mem := range rep.members {
		if sc.matched[mem.id] {
			continue
		}
		if mem.post == nil {
			if ok {
				sc.mark(mem.id)
				if len(mem.fullCovers) > 0 {
					m.markFullCovers(sc, mem)
				}
			} else {
				done = false
			}
			if cover {
				m.markCovers(sc, mem, depth)
			}
			continue
		}
		if !ok {
			// Structural depth must not mark covers for filter-carrying
			// members: their annotations were not applied.
			done = false
			continue
		}
		filtered, nonempty := m.filterChain(sc, mem, chain)
		if !nonempty {
			done = false
			continue
		}
		fok, fdepth := occur.DetermineBudget(filtered, bud)
		if bud.Exceeded() {
			return
		}
		if fok {
			sc.mark(mem.id)
			if len(mem.fullCovers) > 0 {
				m.markFullCovers(sc, mem)
			}
		} else {
			done = false
		}
		if cover {
			m.markCovers(sc, mem, fdepth)
		}
	}
	if done {
		sc.mark(rep.id)
	}
}

// markCovers marks every registered prefix expression whose chain length
// is within the consistent depth reached by occurrence determination; a
// consistent partial assignment of length k is a match of the length-k
// prefix (§4.2.2).
func (m *Matcher) markCovers(sc *scratch, e *expr, depth int) {
	for _, c := range e.covers {
		if len(c.pids) <= depth {
			sc.mark(c.id)
		}
	}
}
