package matcher

import (
	"fmt"
	"math/rand"
	"sort"
	"strings"
	"sync"
	"testing"

	"predfilter/internal/predicate"
	"predfilter/internal/xmldoc"
)

func sortedSIDs(s []SID) []SID {
	out := append([]SID(nil), s...)
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

func equalSIDs(a, b []SID) bool {
	a, b = sortedSIDs(a), sortedSIDs(b)
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// TestParallelMatchesSequential checks MatchDocumentParallel against
// MatchDocument on the micro workload across every organization, attribute
// mode and extension combination (the DTD-driven property test lives in
// internal/bench).
func TestParallelMatchesSequential(t *testing.T) {
	xpes, docs := microWorkload(3000)
	for _, v := range []Variant{Basic, PrefixCover, PrefixCoverAP} {
		for _, mode := range []predicate.AttrMode{predicate.Inline, predicate.Postponed} {
			for _, cm := range []CoverMode{PrefixOnly, Containment} {
				for _, cb := range []ClusterBy{FirstPredicate, RarestPredicate} {
					opts := Options{Variant: v, AttrMode: mode, CoverMode: cm, ClusterBy: cb}
					name := fmt.Sprintf("%v/attr=%d/cover=%d/cluster=%d", v, mode, cm, cb)
					t.Run(name, func(t *testing.T) {
						m := New(opts)
						for _, s := range xpes {
							if _, err := m.Add(s); err != nil {
								t.Fatal(err)
							}
						}
						for i, doc := range docs {
							want := m.MatchDocument(doc)
							for _, workers := range []int{2, 3, 8} {
								got := m.MatchDocumentParallel(doc, workers)
								if !equalSIDs(want, got) {
									t.Fatalf("doc %d workers %d: sequential %d sids, parallel %d sids",
										i, workers, len(want), len(got))
								}
							}
						}
					})
				}
			}
		}
	}
}

// TestParallelNested checks that nested-path candidate merging across
// shards recombines exactly like the sequential pass.
func TestParallelNested(t *testing.T) {
	m := New(Options{Variant: PrefixCoverAP})
	exprs := []string{
		"/a[b/c]/d",
		"/a[b]/d/e",
		"//a[x]/d",
		"/a/b/c",
	}
	for _, s := range exprs {
		if _, err := m.Add(s); err != nil {
			t.Fatal(err)
		}
	}
	doc, err := xmldoc.Parse([]byte(
		`<a><b><c/></b><d><e/></d><d/><b/><q/><q/><q/><q/></a>`))
	if err != nil {
		t.Fatal(err)
	}
	want := m.MatchDocument(doc)
	if len(want) == 0 {
		t.Fatal("expected nested matches sequentially")
	}
	for _, workers := range []int{2, 3, 4} {
		got := m.MatchDocumentParallel(doc, workers)
		if !equalSIDs(want, got) {
			t.Fatalf("workers %d: parallel %v != sequential %v", workers, got, want)
		}
	}
}

// TestConcurrentAddAndMatch is the freeze-race regression: concurrent
// Add and Match (sequential and parallel) used to race through the
// RUnlock→Lock freeze window; an Add slipping in between could leave a
// matcher running against a stale organization whose synthetic group ids
// collide with new expression ids. Run under -race.
func TestConcurrentAddAndMatch(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	var exprs []string
	tags := []string{"a", "b", "c", "d"}
	for i := 0; i < 400; i++ {
		var b strings.Builder
		b.WriteString("/a")
		for j := 0; j < 1+rng.Intn(3); j++ {
			b.WriteString("/" + tags[rng.Intn(len(tags))])
			if rng.Intn(3) == 0 {
				fmt.Fprintf(&b, "[@k=%d]", rng.Intn(3))
			}
		}
		exprs = append(exprs, b.String())
	}
	doc, err := xmldoc.Parse([]byte(
		`<a><b k="1"><c/><d k="2"/></b><c><d/></c><b/><d k="0"/></a>`))
	if err != nil {
		t.Fatal(err)
	}

	// Postponed mode exercises the synthetic group representatives whose
	// ids are the ones a stale organization could confuse.
	m := New(Options{Variant: PrefixCoverAP, AttrMode: predicate.Postponed})
	var wg sync.WaitGroup
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := w; i < len(exprs); i += 4 {
				if _, err := m.Add(exprs[i]); err != nil {
					t.Error(err)
					return
				}
			}
		}(w)
	}
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < 200; i++ {
				var sids []SID
				if w%2 == 0 {
					sids = m.MatchDocument(doc)
				} else {
					sids = m.MatchDocumentParallel(doc, 2)
				}
				for _, sid := range sids {
					if sid < 0 || int(sid) >= len(exprs) {
						t.Errorf("matched sid %d outside the %d registered expressions", sid, len(exprs))
						return
					}
				}
			}
		}(w)
	}
	wg.Wait()

	// After the dust settles, all expressions are registered and matching
	// must be deterministic again.
	want := m.MatchDocument(doc)
	if got := m.MatchDocumentParallel(doc, 4); !equalSIDs(want, got) {
		t.Fatalf("post-settle parallel %v != sequential %v", got, want)
	}
}
