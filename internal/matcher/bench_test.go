package matcher

import (
	"fmt"
	"math/rand"
	"strings"
	"testing"

	"predfilter/internal/predicate"
	"predfilter/internal/xmldoc"
)

// synthetic micro-workload: expressions and documents over a small tag
// alphabet, heavier on overlap than the DTD-driven benchmarks.
func microWorkload(n int) ([]string, []*xmldoc.Document) {
	rng := rand.New(rand.NewSource(99))
	tags := []string{"a", "b", "c", "d", "e", "f", "g", "h"}
	xpes := make([]string, n)
	for i := range xpes {
		var b strings.Builder
		b.WriteString("/")
		b.WriteString(tags[rng.Intn(2)]) // shared roots: overlap
		for j := 0; j < 2+rng.Intn(4); j++ {
			switch rng.Intn(6) {
			case 0:
				b.WriteString("//")
			default:
				b.WriteString("/")
			}
			if rng.Intn(5) == 0 {
				b.WriteString("*")
			} else {
				b.WriteString(tags[rng.Intn(len(tags))])
			}
		}
		xpes[i] = b.String()
	}
	docs := make([]*xmldoc.Document, 8)
	for i := range docs {
		var b strings.Builder
		var build func(depth int)
		build = func(depth int) {
			tag := tags[rng.Intn(len(tags))]
			b.WriteString("<" + tag + ">")
			if depth < 7 {
				for k := rng.Intn(4); k > 0; k-- {
					build(depth + 1)
				}
			}
			b.WriteString("</" + tag + ">")
		}
		b.WriteString("<a>")
		for k := 0; k < 6; k++ {
			build(2)
		}
		b.WriteString("</a>")
		doc, err := xmldoc.Parse([]byte(b.String()))
		if err != nil {
			panic(err)
		}
		docs[i] = doc
	}
	return xpes, docs
}

// BenchmarkMatchDocument compares the three organizations on a synthetic
// overlap-heavy workload.
func BenchmarkMatchDocument(b *testing.B) {
	xpes, docs := microWorkload(20000)
	for _, v := range []Variant{Basic, PrefixCover, PrefixCoverAP} {
		b.Run(v.String(), func(b *testing.B) {
			m := New(Options{Variant: v})
			for _, s := range xpes {
				if _, err := m.Add(s); err != nil {
					b.Fatal(err)
				}
			}
			m.MatchDocument(docs[0])
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				m.MatchDocument(docs[i%len(docs)])
			}
		})
	}
}

// BenchmarkAdd measures registration throughput (the paper claims
// constant-time insertion).
func BenchmarkAdd(b *testing.B) {
	xpes, _ := microWorkload(50000)
	for _, dup := range []bool{false, true} {
		name := "distinct-heavy"
		if dup {
			name = "duplicate-heavy"
		}
		b.Run(name, func(b *testing.B) {
			m := New(Options{})
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				var s string
				if dup {
					s = xpes[i%100]
				} else {
					s = xpes[i%len(xpes)]
				}
				if _, err := m.Add(s); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkAttrModes compares inline and postponed attribute evaluation.
func BenchmarkAttrModes(b *testing.B) {
	rng := rand.New(rand.NewSource(7))
	xpes := make([]string, 10000)
	for i := range xpes {
		xpes[i] = fmt.Sprintf("/a/%c[@k=%d]/%c", 'b'+rune(rng.Intn(3)), rng.Intn(5), 'b'+rune(rng.Intn(3)))
	}
	var sb strings.Builder
	sb.WriteString("<a>")
	for i := 0; i < 30; i++ {
		outer := 'b' + rune(rng.Intn(3))
		inner := 'b' + rune(rng.Intn(3))
		fmt.Fprintf(&sb, `<%c k="%d"><%c/></%c>`, outer, rng.Intn(5), inner, outer)
	}
	sb.WriteString("</a>")
	doc, err := xmldoc.Parse([]byte(sb.String()))
	if err != nil {
		b.Fatal(err)
	}
	for _, mode := range []predicate.AttrMode{predicate.Inline, predicate.Postponed} {
		name := "inline"
		if mode == predicate.Postponed {
			name = "postponed"
		}
		b.Run(name, func(b *testing.B) {
			m := New(Options{Variant: PrefixCoverAP, AttrMode: mode})
			for _, s := range xpes {
				if _, err := m.Add(s); err != nil {
					b.Fatal(err)
				}
			}
			m.MatchDocument(doc)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				m.MatchDocument(doc)
			}
		})
	}
}

// BenchmarkMatchParallel measures intra-document path sharding against the
// sequential matcher on a wide document (hundreds of root-to-leaf paths).
// Worker counts above GOMAXPROCS cannot speed anything up; the benchmark
// reports what sharding costs or buys on the current host.
func BenchmarkMatchParallel(b *testing.B) {
	xpes, _ := microWorkload(20000)
	rng := rand.New(rand.NewSource(17))
	tags := []string{"a", "b", "c", "d", "e", "f", "g", "h"}
	var sb strings.Builder
	var build func(depth int)
	build = func(depth int) {
		tag := tags[rng.Intn(len(tags))]
		sb.WriteString("<" + tag + ">")
		if depth < 6 {
			for k := 1 + rng.Intn(3); k > 0; k-- {
				build(depth + 1)
			}
		}
		sb.WriteString("</" + tag + ">")
	}
	sb.WriteString("<a>")
	for k := 0; k < 40; k++ {
		build(2)
	}
	sb.WriteString("</a>")
	doc, err := xmldoc.Parse([]byte(sb.String()))
	if err != nil {
		b.Fatal(err)
	}
	m := New(Options{Variant: PrefixCoverAP})
	for _, s := range xpes {
		if _, err := m.Add(s); err != nil {
			b.Fatal(err)
		}
	}
	m.MatchDocument(doc)
	b.Logf("document paths: %d", len(doc.Paths))
	b.Run("sequential", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			m.MatchDocument(doc)
		}
	})
	for _, workers := range []int{2, 4} {
		b.Run(fmt.Sprintf("workers-%d", workers), func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				m.MatchDocumentParallel(doc, workers)
			}
		})
	}
}
