package matcher

import (
	"fmt"
	"math/rand"
	"reflect"
	"testing"

	"predfilter/internal/predicate"
	"predfilter/internal/xmldoc"
)

// TestPathCacheHitsAndEquivalence matches the same document repeatedly
// and checks that the second pass is served from the cache with identical
// results, across variants and attribute modes.
func TestPathCacheHitsAndEquivalence(t *testing.T) {
	xpes := []string{
		"/a/b/c", "a//c", "b/c", "/*/*/*", "/a/*/c", "//b/c",
		`/a/b[@x=1]/c`, `//b[@y=2]`, "/a[b/c]//d",
	}
	doc, err := xmldoc.Parse([]byte(
		`<a><b x="1" y="2"><c/><c/></b><b><c/></b><d/></a>`))
	if err != nil {
		t.Fatal(err)
	}
	for _, v := range allVariants {
		for mode := 0; mode < 2; mode++ {
			t.Run(fmt.Sprintf("%v-%d", v, mode), func(t *testing.T) {
				opts := Options{Variant: v, AttrMode: predAttrMode(mode)}
				m := New(opts)
				optsOff := opts
				optsOff.PathCacheBytes = -1
				off := New(optsOff)
				mustAdd(t, m, xpes...)
				mustAdd(t, off, xpes...)

				want := matchSet(off, doc)
				first := matchSet(m, doc)
				second := matchSet(m, doc)
				if !reflect.DeepEqual(first, want) || !reflect.DeepEqual(second, want) {
					t.Fatalf("cache on %v/%v vs off %v", first, second, want)
				}
				st := m.Stats()
				if !st.PathCacheEnabled {
					t.Fatal("cache not enabled by default")
				}
				if st.PathCache.Hits == 0 {
					t.Fatalf("no cache hits after repeat match: %+v", st.PathCache)
				}
				if ost := off.Stats(); ost.PathCacheEnabled {
					t.Fatal("cache reported enabled with PathCacheBytes < 0")
				}
			})
		}
	}
}

// TestPathCacheInvalidatedOnAdd ensures a registration between matches
// cannot leave a stale outcome in place: the newly added expression must
// match documents seen before it was added.
func TestPathCacheInvalidatedOnAdd(t *testing.T) {
	doc := xmldoc.FromPaths([]string{"a", "b", "c"})
	for _, v := range allVariants {
		m := New(Options{Variant: v})
		mustAdd(t, m, "/x/y") // unrelated; primes the cache with a miss
		if got := m.MatchDocument(doc); len(got) != 0 {
			t.Fatalf("unexpected match %v", got)
		}
		sids := mustAdd(t, m, "/a/b/c")
		if got := matchSet(m, doc); !got[sids[0]] {
			t.Fatalf("variant %v: expression added after caching not matched: %v", v, got)
		}
		if st := m.Stats(); st.PathCache.Invalidations == 0 {
			t.Fatalf("variant %v: no invalidation recorded", v)
		}
	}
}

// TestPathCacheRemoveInvalidates mirrors the Add case for Remove.
func TestPathCacheRemoveInvalidates(t *testing.T) {
	doc := xmldoc.FromPaths([]string{"a", "b", "c"})
	m := New(Options{})
	sids := mustAdd(t, m, "/a/b/c", "a//c")
	if got := matchSet(m, doc); !got[sids[0]] || !got[sids[1]] {
		t.Fatalf("precondition: %v", got)
	}
	if err := m.Remove(sids[0]); err != nil {
		t.Fatal(err)
	}
	got := matchSet(m, doc)
	if got[sids[0]] || !got[sids[1]] {
		t.Fatalf("after remove: %v", got)
	}
}

// TestPathCacheAttrReplay hits the cache with a structurally identical
// path whose attribute values differ; the recorded transcript must be
// re-verified against the live tuples, in both attribute modes.
func TestPathCacheAttrReplay(t *testing.T) {
	match, err := xmldoc.Parse([]byte(`<a><b x="1"><c/></b></a>`))
	if err != nil {
		t.Fatal(err)
	}
	miss, err := xmldoc.Parse([]byte(`<a><b x="2"><c/></b></a>`))
	if err != nil {
		t.Fatal(err)
	}
	for mode := 0; mode < 2; mode++ {
		m := New(Options{AttrMode: predAttrMode(mode)})
		sids := mustAdd(t, m, `/a/b[@x=1]/c`, "/a/b/c")
		if got := matchSet(m, match); !got[sids[0]] || !got[sids[1]] {
			t.Fatalf("mode %d: first doc %v", mode, got)
		}
		// Same signature, different attribute value: structural part from
		// the cache, filter re-checked live.
		if got := matchSet(m, miss); got[sids[0]] || !got[sids[1]] {
			t.Fatalf("mode %d: second doc %v", mode, got)
		}
		if st := m.Stats(); st.PathCache.Hits == 0 {
			t.Fatalf("mode %d: attr path bypassed the cache: %+v", mode, st.PathCache)
		}
	}
}

// TestPathCacheRandomizedEquivalence cross-checks cache-on vs cache-off
// across random expression sets and documents for every variant/mode.
func TestPathCacheRandomizedEquivalence(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	tags := []string{"a", "b", "c", "d"}
	randPath := func() string {
		var b []byte
		if rng.Intn(2) == 0 {
			b = append(b, '/')
		}
		steps := 1 + rng.Intn(4)
		for s := 0; s < steps; s++ {
			if s > 0 {
				b = append(b, '/')
				if rng.Intn(3) == 0 {
					b = append(b, '/')
				}
			}
			if rng.Intn(6) == 0 {
				b = append(b, '*')
			} else {
				b = append(b, tags[rng.Intn(len(tags))]...)
				if rng.Intn(4) == 0 {
					b = append(b, fmt.Sprintf("[@k=%d]", rng.Intn(2))...)
				}
			}
		}
		return string(b)
	}
	randDoc := func() *xmldoc.Document {
		var b []byte
		depth := 1 + rng.Intn(4)
		var open []string
		for d := 0; d < depth; d++ {
			tag := tags[rng.Intn(len(tags))]
			attr := ""
			if rng.Intn(3) == 0 {
				attr = fmt.Sprintf(` k="%d"`, rng.Intn(2))
			}
			kids := 1 + rng.Intn(2)
			_ = kids
			b = append(b, fmt.Sprintf("<%s%s>", tag, attr)...)
			open = append(open, tag)
		}
		for d := depth - 1; d >= 0; d-- {
			b = append(b, fmt.Sprintf("</%s>", open[d])...)
		}
		doc, err := xmldoc.Parse(b)
		if err != nil {
			panic(err)
		}
		return doc
	}
	for trial := 0; trial < 30; trial++ {
		var xpes []string
		for i := 0; i < 12; i++ {
			xpes = append(xpes, randPath())
		}
		var docs []*xmldoc.Document
		for i := 0; i < 6; i++ {
			docs = append(docs, randDoc())
		}
		for _, v := range allVariants {
			for mode := 0; mode < 2; mode++ {
				opts := Options{Variant: v, AttrMode: predAttrMode(mode)}
				on := New(opts)
				opts.PathCacheBytes = -1
				offm := New(opts)
				for _, s := range xpes {
					if _, err := on.Add(s); err != nil {
						t.Fatalf("%q: %v", s, err)
					}
					if _, err := offm.Add(s); err != nil {
						t.Fatalf("%q: %v", s, err)
					}
				}
				for di, doc := range docs {
					// Match twice so the second pass rides cache hits.
					matchSet(on, doc)
					got := matchSet(on, doc)
					want := matchSet(offm, doc)
					if !reflect.DeepEqual(got, want) {
						t.Fatalf("trial %d doc %d %v/%d: cache on %v off %v",
							trial, di, v, mode, got, want)
					}
				}
			}
		}
	}
}

// TestPathCacheContainmentCovering exercises the extension cover mode
// with caching: containment covers of structural expressions are part of
// the cached outcome.
func TestPathCacheContainmentCovering(t *testing.T) {
	doc := xmldoc.FromPaths([]string{"a", "b", "c", "d"})
	opts := Options{Variant: PrefixCover, CoverMode: Containment}
	on := New(opts)
	opts.PathCacheBytes = -1
	offm := New(opts)
	xpes := []string{"/a/b/c/d", "b/c", "c/d", "/a/b"}
	s1 := mustAdd(t, on, xpes...)
	s2 := mustAdd(t, offm, xpes...)
	if !reflect.DeepEqual(s1, s2) {
		t.Fatal("sid mismatch")
	}
	matchSet(on, doc)
	got := matchSet(on, doc)
	want := matchSet(offm, doc)
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("cache on %v off %v", got, want)
	}
	for _, sid := range s1 {
		if !got[sid] {
			t.Fatalf("sid %d not matched: %v", sid, got)
		}
	}
}

// TestPathCacheParallelShared runs the parallel matcher over a document
// with many repeated paths; all workers share one cache and the result
// matches the sequential one. Run with -race to exercise contention.
func TestPathCacheParallelShared(t *testing.T) {
	var paths [][]string
	for i := 0; i < 64; i++ {
		switch i % 3 {
		case 0:
			paths = append(paths, []string{"a", "b", "c"})
		case 1:
			paths = append(paths, []string{"a", "d"})
		default:
			paths = append(paths, []string{"a", "b", "b", "c"})
		}
	}
	doc := xmldoc.FromPaths(paths...)
	m := New(Options{Variant: PrefixCoverAP, DisablePathDedup: true})
	mustAdd(t, m, "/a/b/c", "a//c", "b/c", "/a/d", "//b/b")
	want := matchSet(m, doc)
	for w := 2; w <= 4; w++ {
		got := make(map[SID]bool)
		for _, sid := range m.MatchDocumentParallel(doc, w) {
			got[sid] = true
		}
		if !reflect.DeepEqual(got, want) {
			t.Fatalf("workers=%d: %v vs %v", w, got, want)
		}
	}
	if st := m.Stats(); st.PathCache.Hits == 0 {
		t.Fatalf("parallel matching produced no shared-cache hits: %+v", st.PathCache)
	}
}

// TestPostponedGroupCached: a structural group (all members bare) is
// cached as a unit including its synthetic representative mark.
func TestPostponedGroupCached(t *testing.T) {
	doc := xmldoc.FromPaths([]string{"a", "b", "c"})
	m := New(Options{AttrMode: predicate.Postponed})
	sids := mustAdd(t, m, "/a/b/c", "/a/b/c") // duplicates share one expr
	matchSet(m, doc)
	got := matchSet(m, doc)
	if !got[sids[0]] || !got[sids[1]] {
		t.Fatalf("group member lost through cache: %v", got)
	}
}
