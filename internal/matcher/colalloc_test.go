//go:build !race

// See alloc_test.go: AllocsPerRun bounds are asserted only without the
// race detector's instrumentation.

package matcher

import (
	"fmt"
	"strings"
	"testing"

	"predfilter/internal/metrics"
	"predfilter/internal/xmldoc"
)

// TestColumnarBatchAllocs pins the steady-state allocation cost of
// columnar batch matching: with the pooled columnar scratch warm, one
// MatchDocumentsColumnar call allocates only the two result-vector
// headers plus one []SID per document that matched something — no
// per-path or per-word allocations, with metrics recording on.
func TestColumnarBatchAllocs(t *testing.T) {
	var sb strings.Builder
	sb.WriteString("<a>")
	for i := 0; i < 20; i++ {
		sb.WriteString(fmt.Sprintf("<b><c n=\"%d\"/></b><d/>", i))
	}
	sb.WriteString("</a>")
	doc, err := xmldoc.Parse([]byte(sb.String()))
	if err != nil {
		t.Fatal(err)
	}
	miss, err := xmldoc.Parse([]byte("<q><r/></q>"))
	if err != nil {
		t.Fatal(err)
	}

	for _, v := range []Variant{Basic, PrefixCover, PrefixCoverAP} {
		t.Run(v.String(), func(t *testing.T) {
			// Cache off: the bound must hold on the pure columnar path,
			// not be rescued by signature hits.
			m := New(Options{Variant: v, PathCacheBytes: -1, Metrics: metrics.NewSet()})
			for _, x := range []string{"/a/b/c", "//d", "/a/*", "//b", "/a/x", "//y/z"} {
				if _, err := m.Add(x); err != nil {
					t.Fatal(err)
				}
			}
			// Two matching documents, one non-matching: expected allocs are
			// the outs/errs headers (2) plus one result slice per matching
			// document (2).
			docs := []*xmldoc.Document{doc, miss, doc}
			m.MatchDocumentsColumnar(docs, nil) // warm pools and sizing
			const bound = 4
			got := testing.AllocsPerRun(50, func() {
				outs, errs := m.MatchDocumentsColumnar(docs, nil)
				for i := range docs {
					if errs[i] != nil {
						t.Fatalf("doc %d: %v", i, errs[i])
					}
				}
				if len(outs[0]) == 0 || len(outs[1]) != 0 {
					t.Fatal("unexpected match sets")
				}
			})
			if got > bound {
				t.Fatalf("columnar batch allocs = %v, want <= %d", got, bound)
			}
		})
	}
}
