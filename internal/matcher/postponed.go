package matcher

import (
	"predfilter/internal/occur"
	"predfilter/internal/predicate"
)

// buildByTag lazily indexes the current publication's tuples by tag name
// in path order, so that an occurrence number recovers its tuple in O(1).
// Used by postponed attribute evaluation and nested-path recombination.
func (sc *scratch) buildByTag() {
	if sc.byTagOK {
		return
	}
	clear(sc.byTag)
	for i := range sc.pub.Tuples {
		t := &sc.pub.Tuples[i]
		sc.byTag[t.Tag] = append(sc.byTag[t.Tag], t)
	}
	sc.byTagOK = true
}

// filterChain applies the expression's postponed attribute filters to the
// structural matching results, level by level (paper §5, "selection
// postponed"): each occurrence pair survives only if the document tuples
// it denotes satisfy the filters attached to the corresponding tag sides.
// It reports the filtered chain and whether every level stayed non-empty.
func (m *Matcher) filterChain(sc *scratch, e *expr, chain [][]occur.Pair) ([][]occur.Pair, bool) {
	sc.buildByTag()
	total := 0
	for _, pairs := range chain {
		total += len(pairs)
	}
	if cap(sc.pairBuf) < total {
		sc.pairBuf = make([]occur.Pair, 0, 2*total)
	}
	buf := sc.pairBuf[:0]
	filt := sc.filt[:0]
	ok := true
	for i, pairs := range chain {
		pa := e.post[i]
		if len(pa.Left) == 0 && len(pa.Right) == 0 {
			filt = append(filt, pairs)
			continue
		}
		pred := m.ix.Pred(e.pids[i])
		start := len(buf)
		for _, pr := range pairs {
			if len(pa.Left) > 0 {
				t := sc.byTag[pred.Tag1][pr.A-1]
				if !predicate.EvalAttrs(pa.Left, t) {
					continue
				}
			}
			if len(pa.Right) > 0 {
				t := sc.byTag[pred.Tag2][pr.B-1]
				if !predicate.EvalAttrs(pa.Right, t) {
					continue
				}
			}
			buf = append(buf, pr)
		}
		if len(buf) == start {
			ok = false
		}
		filt = append(filt, buf[start:len(buf):len(buf)])
	}
	sc.pairBuf = buf
	sc.filt = filt
	return filt, ok
}
