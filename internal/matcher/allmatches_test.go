package matcher

import (
	"math/rand"
	"testing"

	"predfilter/internal/predicate"
	"predfilter/internal/xmldoc"
	"predfilter/internal/xpath"
)

// bruteCounts is the oracle for MatchDocumentAll: naive per-predicate
// evaluation (the §4.1.1 rules applied literally) plus exhaustive chain
// enumeration, per path, no dedup.
func bruteCounts(t *testing.T, xpes []string, doc *xmldoc.Document, mode predicate.AttrMode) []int {
	t.Helper()
	out := make([]int, len(xpes))
	for i, s := range xpes {
		enc, err := predicate.Encode(xpath.MustParse(s), mode)
		if err != nil {
			t.Fatal(err)
		}
		for p := range doc.Paths {
			pub := &doc.Paths[p]
			chains := make([][][2]int32, len(enc.Preds))
			empty := false
			for j, pr := range enc.Preds {
				chains[j] = naiveEval(pr, pub)
				if mode == predicate.Postponed {
					chains[j] = postFilter(chains[j], pr, enc.PostAttrs[j], pub)
				}
				if len(chains[j]) == 0 {
					empty = true
					break
				}
			}
			if empty {
				continue
			}
			var rec func(level int, need int32) int
			rec = func(level int, need int32) int {
				if level == len(chains) {
					return 1
				}
				n := 0
				for _, pr := range chains[level] {
					if level > 0 && pr[0] != need {
						continue
					}
					n += rec(level+1, pr[1])
				}
				return n
			}
			out[i] += rec(0, 0)
		}
	}
	return out
}

// naiveEval applies the §4.1.1 matching rules directly.
func naiveEval(p predicate.Predicate, pub *xmldoc.Publication) [][2]int32 {
	var out [][2]int32
	cmp := func(op predicate.Op, got, want int) bool {
		if op == predicate.EQ {
			return got == want
		}
		return got >= want
	}
	switch p.Kind {
	case predicate.Absolute:
		for i := range pub.Tuples {
			tu := &pub.Tuples[i]
			if tu.Tag == p.Tag1 && cmp(p.Op, tu.Pos, p.Value) && predicate.EvalAttrs(p.Attrs1, tu) {
				out = append(out, [2]int32{int32(tu.Occ), int32(tu.Occ)})
			}
		}
	case predicate.Relative:
		for i := range pub.Tuples {
			for j := i + 1; j < len(pub.Tuples); j++ {
				t1, t2 := &pub.Tuples[i], &pub.Tuples[j]
				if t1.Tag == p.Tag1 && t2.Tag == p.Tag2 && cmp(p.Op, t2.Pos-t1.Pos, p.Value) &&
					predicate.EvalAttrs(p.Attrs1, t1) && predicate.EvalAttrs(p.Attrs2, t2) {
					out = append(out, [2]int32{int32(t1.Occ), int32(t2.Occ)})
				}
			}
		}
	case predicate.EndOfPath:
		for i := range pub.Tuples {
			tu := &pub.Tuples[i]
			if tu.Tag == p.Tag1 && pub.Length-tu.Pos >= p.Value && predicate.EvalAttrs(p.Attrs1, tu) {
				out = append(out, [2]int32{int32(tu.Occ), int32(tu.Occ)})
			}
		}
	case predicate.Length:
		if pub.Length >= p.Value {
			out = append(out, [2]int32{0, 0})
		}
	}
	return out
}

// postFilter applies postponed annotations to naive results.
func postFilter(pairs [][2]int32, p predicate.Predicate, sa predicate.SideAttrs, pub *xmldoc.Publication) [][2]int32 {
	if len(sa.Left) == 0 && len(sa.Right) == 0 {
		return pairs
	}
	find := func(tag string, occ int32) *xmldoc.Tuple {
		for i := range pub.Tuples {
			if pub.Tuples[i].Tag == tag && int32(pub.Tuples[i].Occ) == occ {
				return &pub.Tuples[i]
			}
		}
		return nil
	}
	var out [][2]int32
	for _, pr := range pairs {
		if len(sa.Left) > 0 {
			if tu := find(p.Tag1, pr[0]); tu == nil || !predicate.EvalAttrs(sa.Left, tu) {
				continue
			}
		}
		if len(sa.Right) > 0 {
			if tu := find(p.Tag2, pr[1]); tu == nil || !predicate.EvalAttrs(sa.Right, tu) {
				continue
			}
		}
		out = append(out, pr)
	}
	return out
}

func TestMatchDocumentAllTargeted(t *testing.T) {
	m := New(Options{})
	sids := mustAdd(t, m, "/r/a/b", "a/b", "//b", "/r/x")
	// r → a → b, a → b (two a's, three b's total).
	doc, err := xmldoc.Parse([]byte(`<r><a><b/><b/></a><a><b/></a></r>`))
	if err != nil {
		t.Fatal(err)
	}
	counts := m.MatchDocumentAll(doc)
	byIdx := func(i int) int { return counts[sids[i]] }
	if byIdx(0) != 3 { // three (a,b) chains anchored at /r
		t.Errorf("/r/a/b count = %d, want 3", byIdx(0))
	}
	if byIdx(1) != 3 {
		t.Errorf("a/b count = %d, want 3", byIdx(1))
	}
	if byIdx(2) != 3 {
		t.Errorf("//b count = %d, want 3", byIdx(2))
	}
	if _, ok := counts[sids[3]]; ok {
		t.Errorf("/r/x reported with count %d", counts[sids[3]])
	}
}

// TestMatchDocumentAllAgainstBrute fuzzes all-matches counting against
// the naive oracle, in both attribute modes and with dedup on and off.
func TestMatchDocumentAllAgainstBrute(t *testing.T) {
	rng := rand.New(rand.NewSource(73))
	for round := 0; round < 40; round++ {
		withAttrs := round%2 == 1
		xpes := make([]string, 25)
		for i := range xpes {
			xpes[i] = randXPE(rng, withAttrs)
		}
		doc := randDoc(rng, withAttrs)
		for _, mode := range []predicate.AttrMode{predicate.Inline, predicate.Postponed} {
			want := bruteCounts(t, xpes, doc, mode)
			for _, dedupOff := range []bool{false, true} {
				m := New(Options{Variant: PrefixCoverAP, AttrMode: mode, DisablePathDedup: dedupOff})
				sids := make([]SID, len(xpes))
				for i, s := range xpes {
					sid, err := m.Add(s)
					if err != nil {
						t.Fatal(err)
					}
					sids[i] = sid
				}
				got := m.MatchDocumentAll(doc)
				for i := range xpes {
					if got[sids[i]] != want[i] {
						t.Fatalf("round %d mode=%d dedupOff=%v: %q count=%d, oracle=%d",
							round, mode, dedupOff, xpes[i], got[sids[i]], want[i])
					}
				}
			}
		}
	}
}

// TestMatchDocumentAllConsistentWithMatch: an expression has a positive
// count iff MatchDocument reports it.
func TestMatchDocumentAllConsistentWithMatch(t *testing.T) {
	rng := rand.New(rand.NewSource(79))
	for round := 0; round < 20; round++ {
		m := New(Options{})
		xpes := make([]string, 30)
		sids := make([]SID, len(xpes))
		for i := range xpes {
			xpes[i] = randXPE(rng, false)
			sid, err := m.Add(xpes[i])
			if err != nil {
				t.Fatal(err)
			}
			sids[i] = sid
		}
		doc := randDoc(rng, false)
		matched := matchSet(m, doc)
		counts := m.MatchDocumentAll(doc)
		for i, sid := range sids {
			if matched[sid] != (counts[sid] > 0) {
				t.Fatalf("round %d: %q matched=%v but count=%d", round, xpes[i], matched[sid], counts[sid])
			}
		}
	}
}

// TestMatchDocumentAllNested: nested expressions report presence.
func TestMatchDocumentAllNested(t *testing.T) {
	m := New(Options{})
	sids := mustAdd(t, m, "/a[b]/c", "/a[x]/c")
	doc, err := xmldoc.Parse([]byte(`<a><b/><c/></a>`))
	if err != nil {
		t.Fatal(err)
	}
	counts := m.MatchDocumentAll(doc)
	if counts[sids[0]] != 1 {
		t.Errorf("nested match count = %d, want 1", counts[sids[0]])
	}
	if _, ok := counts[sids[1]]; ok {
		t.Error("unmatched nested expression reported")
	}
}
