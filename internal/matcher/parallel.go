package matcher

import (
	"runtime"
	"sync"
	"time"

	"predfilter/internal/guard"
	"predfilter/internal/xmldoc"
)

// MatchDocumentParallel is MatchDocument with the document's root-to-leaf
// paths sharded across worker goroutines. Each worker owns a pooled
// scratch (its own predicate-result accumulator, matched flags and
// occurrence buffers) and runs the identical per-path matching code;
// per-expression results are then merged.
//
// The merge is sound because every per-path effect is monotone: an
// expression matches the document iff it matches at least one path, a
// cover mark witnesses a consistent partial assignment on some path, and
// nested-path candidates are enumerated per path — so the union of
// per-shard results over any partition of the paths equals the sequential
// result (the equivalence is asserted across all engine configurations in
// internal/bench). Per-worker state that exists only to skip work — the
// path-dedup set, the matched flags consulted by covering/cluster skips —
// loses some cross-shard sharing, costing duplicated evaluation but never
// correctness.
//
// workers ≤ 0 selects GOMAXPROCS (more workers than cores cannot help:
// the work is CPU-bound); an explicit count is honored as given, clamped
// only to the path count. With one worker (or one path) it falls back to
// the sequential path. The matcher stays safe for concurrent calls of any
// matching method.
func (m *Matcher) MatchDocumentParallel(doc *xmldoc.Document, workers int) []SID {
	sids, _ := m.MatchDocumentParallelBudget(doc, workers, nil)
	return sids
}

// MatchDocumentParallelBudget is MatchDocumentParallel charging the match
// to a per-document budget. The budget is single-goroutine state, so each
// shard runs under its own Fork: the deadline and cancellation carry over
// exactly, while the step bound applies per shard (the aggregate bound is
// workers × MaxSteps). The first tripped shard's *guard.LimitError is
// returned and the partial marks are discarded. A nil budget is unlimited
// and never errors.
func (m *Matcher) MatchDocumentParallelBudget(doc *xmldoc.Document, workers int, bud *guard.Budget) ([]SID, error) {
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > len(doc.Paths) {
		workers = len(doc.Paths)
	}
	if workers <= 1 {
		sids, _, err := m.MatchDocumentBudget(doc, bud)
		return sids, err
	}

	t0 := time.Now()
	m.ensureFrozen()
	defer m.mu.RUnlock()

	dedup := m.pathDedup()
	scratches := make([]*scratch, workers)
	limitErrs := make([]error, workers)
	var wg sync.WaitGroup
	// Contiguous shards: sibling subtrees emit adjacent paths, so
	// contiguity keeps structurally identical paths in one shard where the
	// per-worker dedup set still catches them.
	per := (len(doc.Paths) + workers - 1) / workers
	for w := 0; w < workers; w++ {
		lo := w * per
		hi := lo + per
		if hi > len(doc.Paths) {
			hi = len(doc.Paths)
		}
		sc := m.getScratch()
		scratches[w] = sc
		wg.Add(1)
		go func(w int, sc *scratch, lo, hi int) {
			defer wg.Done()
			sb := bud.Fork()
			for i := lo; i < hi; i++ {
				if !sb.CheckPoint() {
					break
				}
				m.matchPath(sc, &doc.Paths[i], dedup, nil, sb)
				if sb.Exceeded() {
					break
				}
			}
			limitErrs[w] = sb.Err()
		}(w, sc, lo, hi)
	}
	wg.Wait()

	// Merge: OR the per-shard matched flags and pool the nested-path
	// candidates into the first scratch.
	sc := scratches[0]
	for _, other := range scratches[1:] {
		for id, ok := range other.matched {
			if ok {
				sc.matched[id] = true
			}
		}
		for n, cands := range other.ncands {
			sc.ncands[n] = append(sc.ncands[n], cands...)
		}
		clear(other.ncands)
		m.pool.Put(other)
	}

	for _, err := range limitErrs {
		if err != nil {
			clear(sc.ncands)
			m.pool.Put(sc)
			return nil, err
		}
	}

	// Covering is monotone, so the OR already carries every per-shard
	// cover mark; re-applying the full-match covers here keeps the merged
	// flags closed under the covering relations by construction rather
	// than by that argument.
	for _, e := range m.exprs {
		if !sc.matched[e.id] {
			continue
		}
		for _, c := range e.covers {
			sc.matched[c.id] = true
		}
		for _, c := range e.fullCovers {
			sc.matched[c.id] = true
		}
	}

	for _, e := range m.nested {
		if e.root.resolveRoot(sc) {
			sc.matched[e.id] = true
		}
	}
	clear(sc.ncands)
	for _, e := range m.exprs {
		if sc.matched[e.id] {
			sc.out = append(sc.out, e.sids...)
		}
	}
	out := append([]SID(nil), sc.out...)
	m.pool.Put(sc)
	// The shards keep clock calls off their inner loops (bd == nil), so
	// only the whole-document duration and counters are recorded.
	m.observe(nil, t0, len(doc.Paths), len(out))
	return out, nil
}
