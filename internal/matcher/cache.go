package matcher

import (
	"time"

	"predfilter/internal/guard"
	"predfilter/internal/pathcache"
	"predfilter/internal/predindex"
	"predfilter/internal/xmldoc"
)

// Path-signature caching (the document-side dual of expression sharing;
// see internal/pathcache). The four structural predicate types depend
// only on tag names and positions, so for a given path *signature* — its
// tag sequence plus per-path occurrence vector — the predicate stage and
// the occurrence determination of every value-independent iteration unit
// produce the same result on every document. The matcher therefore splits
// its iteration units at freeze time:
//
//   - structural units: every chain predicate is bare (no attribute
//     filters), the expression carries no postponed annotations, and —
//     for Postponed group representatives — neither does any member.
//     Their per-path mark set is a pure function of the signature and is
//     cached as the entry's Outcome. This is sound because every
//     expression a structural unit can mark (prefix covers, containment
//     covers, group members) is itself bare and annotation-free, and mark
//     contributions are monotone, so OR-ing a cached outcome into the
//     document state is exactly the sequential evaluation (the same
//     argument that justifies the parallel merge).
//
//   - live units: anything touching attribute values. These re-run on
//     every path; on a cache hit their predicate results are rebuilt by
//     replaying the recorded transcript, which re-verifies attribute
//     filters against the live tuples. Nested-path expressions are live
//     too (their recombination needs node identities).
//
// Cache misses evaluate structural units against a clean matched buffer
// (sc.matched2) with mark logging on, so the cached outcome never absorbs
// marks from earlier paths of the same document.

// appendPubSig appends the path's structural signature: the tuple count
// (little-endian, two bytes — paths deeper than 64k tags do not occur)
// followed by each tuple's tag, a NUL separator, and its per-path
// occurrence number. Everything the structural predicate rules consult —
// tags, positions (implied by order), occurrences and path length — is
// covered; attribute values, node ids and child indexes are deliberately
// excluded (the value-dependent work re-runs live).
func appendPubSig(b []byte, pub *xmldoc.Publication) []byte {
	b = append(b, byte(pub.Length), byte(pub.Length>>8))
	for i := range pub.Tuples {
		t := &pub.Tuples[i]
		b = append(b, t.Tag...)
		b = append(b, 0, byte(t.Occ), byte(t.Occ>>8))
	}
	return b
}

// sigHash is the FNV-1a shard-selection hash of a signature. Collisions
// are harmless: the cache compares full signature bytes.
func sigHash(sig []byte) uint64 {
	h := fnvOffset64
	for _, c := range sig {
		h = fnvByte(h, c)
	}
	return h
}

// unitValueDependent reports whether the iteration unit rooted at e does
// any attribute-value work: an attribute-carrying chain predicate
// (Inline mode), postponed annotations on the expression itself, or on
// any member of its structural group (Postponed mode).
func (m *Matcher) unitValueDependent(e *expr) bool {
	for _, pid := range e.pids {
		if m.ix.Pred(pid).HasAttrs() {
			return true
		}
	}
	if e.post != nil {
		return true
	}
	for _, mem := range e.members {
		if mem.post != nil {
			return true
		}
	}
	return false
}

// splitUnits partitions the frozen iteration units into structural and
// live halves, preserving the longest-first order within each (and the
// per-cluster order for PrefixCoverAP). Callers hold the write lock.
func (m *Matcher) splitUnits() {
	m.structUnits = m.structUnits[:0]
	m.liveUnits = m.liveUnits[:0]
	for _, h := range m.ordered {
		if m.unitValueDependent(h.e) {
			m.liveUnits = append(m.liveUnits, h)
		} else {
			m.structUnits = append(m.structUnits, h)
		}
	}
	m.structClusters = make(map[predindex.PID][]hotExpr, len(m.clusters))
	m.liveClusters = make(map[predindex.PID][]hotExpr)
	for pid, hs := range m.clusters {
		for _, h := range hs {
			if m.unitValueDependent(h.e) {
				m.liveClusters[pid] = append(m.liveClusters[pid], h)
			} else {
				m.structClusters[pid] = append(m.structClusters[pid], h)
			}
		}
	}
	m.needRes = len(m.liveUnits) > 0 || len(m.nested) > 0
}

// invalidatePathCache bumps the cache generation so no stale outcome can
// be served after a registration change. Callers hold the write lock, so
// the bump cannot interleave with a matcher's Get/Put (matching holds the
// read lock).
func (m *Matcher) invalidatePathCache() {
	if m.cache != nil {
		m.cache.Invalidate()
	}
}

// matchPathCached is the cache-enabled body of matchPath, entered after
// the dedup check. Callers hold the read lock with organizations frozen.
// When the budget trips mid-miss the partially built outcome is discarded
// rather than Put — a cached entry must be the complete mark set for its
// signature, never a budget-truncated one.
func (m *Matcher) matchPathCached(sc *scratch, pub *xmldoc.Publication, bd *Breakdown, t0 time.Time, bud *guard.Budget) {
	sc.sig = appendPubSig(sc.sig[:0], pub)
	h := sigHash(sc.sig)

	ent, ok := m.cache.Get(h, sc.sig)
	var tc time.Time
	if bd != nil {
		// Signature build + lookup is the cache stage; predicate work
		// (replay or a fresh MatchPath) is accounted separately below.
		tc = time.Now()
		bd.Cache += tc.Sub(t0)
	}
	if ok {
		if m.needRes {
			sc.res.Reset(m.ix.Len())
			m.ix.Replay(&ent.Rec, pub, sc.res)
		}
		var t1 time.Time
		if bd != nil {
			t1 = time.Now()
			bd.PredMatch += t1.Sub(tc)
		}
		for _, id := range ent.Outcome {
			sc.matched[id] = true
		}
		if m.needRes {
			m.runUnits(sc, m.liveUnits, m.liveClusters, bud)
			for _, e := range m.nested {
				e.root.collect(m, sc, bud)
			}
		}
		if bd != nil {
			bd.ExprMatch += time.Since(t1)
		}
		return
	}

	// Miss: run the predicate stage once, recording the transcript when
	// value-dependent work will need it replayed on later hits.
	sc.res.Reset(m.ix.Len())
	if m.needRes {
		sc.rec.Reset()
		m.ix.MatchPathRecord(pub, sc.res, &sc.rec)
	} else {
		m.ix.MatchPath(pub, sc.res)
	}
	var t1 time.Time
	if bd != nil {
		t1 = time.Now()
		bd.PredMatch += t1.Sub(tc)
	}

	// Structural units evaluate against the clean buffer with logging on,
	// so the logged mark set is a pure function of the signature.
	sc.matched, sc.matched2 = sc.matched2, sc.matched
	sc.log = sc.log[:0]
	sc.logging = true
	m.runUnits(sc, m.structUnits, m.structClusters, bud)
	sc.logging = false
	sc.matched, sc.matched2 = sc.matched2, sc.matched
	for _, id := range sc.log {
		sc.matched[id] = true
		sc.matched2[id] = false // restore the all-false invariant
	}
	if bud.Exceeded() {
		// The structural run was cut short: its mark log is incomplete, so
		// caching it would poison later hits. The matched2 invariant was
		// restored above; just abandon the path.
		return
	}

	ne := &pathcache.Entry{Outcome: append([]int32(nil), sc.log...)}
	if m.needRes {
		ne.Rec = sc.rec.Clone()
	}
	m.cache.Put(h, sc.sig, ne)

	if m.needRes {
		m.runUnits(sc, m.liveUnits, m.liveClusters, bud)
		for _, e := range m.nested {
			e.root.collect(m, sc, bud)
		}
	}
	if bd != nil {
		bd.ExprMatch += time.Since(t1)
	}
}

// PathCacheStats returns the cache counters and whether the cache is
// enabled.
func (m *Matcher) PathCacheStats() (pathcache.Stats, bool) {
	if m.cache == nil {
		return pathcache.Stats{}, false
	}
	return m.cache.Stats(), true
}
