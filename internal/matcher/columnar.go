package matcher

import (
	"math/bits"
	"time"

	"predfilter/internal/bitset"
	"predfilter/internal/guard"
	"predfilter/internal/pathcache"
	"predfilter/internal/predindex"
	"predfilter/internal/xmldoc"
)

// Columnar batch matching: the expression-matching stage rewritten as
// bitset sweeps so one 64-bit word op advances 64 expressions at once.
//
// At freeze time the iteration units (m.ordered, longest chain first)
// become bit columns. For each predicate pid, a CSR table records which
// (column, chain level) slots reference it. Per path, the sweep scatters
// the predicate stage's touched pids into per-level bitsets L[ℓ] — bit c
// of L[ℓ] says "unit c's level-ℓ predicate produced occurrence pairs" —
// and then folds acc = L[0] & L[1] & … down the levels. Because the
// columns are sorted longest-chain-first, the units owning a level ℓ
// occupy a prefix of the columns: the fold touches only levelWords[ℓ]
// words per level, with a single boundary-word mask letting shorter
// chains pass through. The surviving bits are the candidates — units
// whose every chain level matched — so the per-path cost is
// words(|units|/64) × maxLen word ops plus work proportional to the
// (few) candidates, instead of the scalar loop's |units| probes.
//
// A candidate still needs occurrence determination in general; the sweep
// only proves every level non-empty. The shortcut that makes the kernel
// profitable: on a path where no tag occurs twice (Tuple.Occ == 1 for
// every tuple — the common case by far), every matched predicate emitted
// exactly one occurrence pair, (occ, occ) = (1, 1), so any chained
// combination trivially exists and plain candidates are marked directly.
// (Length predicates record (0, 0), but they only ever form single-level
// chains, where determination needs no chaining.) Paths with a repeated
// tag — and group representatives, whose members need attribute
// verification — go through the scalar evalExpr per candidate.
//
// Covering parity: the scalar organizations also mark prefix covers (on
// partial determination depth) and containment covers. Both relations
// are exact — a consistent depth-k prefix assignment is a match of the
// length-k prefix expression, and a containment cover is a restriction
// of a full assignment — and every covered expression is itself a
// column, so its own candidate bit fires on exactly the paths the
// scalar cover-marking would mark it on. The columnar kernel therefore
// evaluates every unit independently (evalExpr with cover=false) and
// produces the same mark set; full-containment covers of a directly
// marked unit are marked through markFullCovers as in the scalar path.

// colRef is one CSR entry: predicate pid appears at chain level `level`
// of unit column `col`.
type colRef struct {
	col   int32
	level int32
}

// colIndex is the frozen columnar organization, derived from the frozen
// scalar one (m.ordered) and keyed to the freeze generation.
type colIndex struct {
	gen   uint64
	lay   *predindex.Layout
	units []hotExpr // == m.ordered at build: columns, longest chain first

	words  int // bitset words covering len(units) columns
	maxLen int // longest chain length

	// Per level ℓ: the number of words covering the columns whose chains
	// reach level ℓ (a prefix, by the longest-first sort), and the
	// valid-bit mask of the boundary word.
	levelWords []int
	levelMask  []uint64

	// CSR membership: refs[refOff[pid]:refOff[pid+1]] are pid's slots.
	refOff []int32
	refs   []colRef

	// Cache-enabled split (nil when the path cache is off): columns of
	// value-independent vs value-dependent units, mirroring
	// structUnits/liveUnits.
	structMask []uint64
	liveMask   []uint64

	// sweepCost is the fixed word-op count of one sweep (level clears +
	// fold); the per-path budget charge adds the scattered refs on top.
	sweepCost int
}

// colScratch is the pooled per-batch columnar working state. Buffer
// sizes are keyed to the colIndex identity, so steady-state batches
// allocate nothing.
type colScratch struct {
	ci    *colIndex
	back  []uint64   // backing array for level
	level [][]uint64 // level ℓ → levelWords[ℓ] words
	acc   []uint64
	tids  []int32
	stats colStats
}

// colStats accumulates one batch's kernel counters, flushed to the
// metric set once per batch.
type colStats struct {
	paths      int64
	candidates int64
	ambiguous  int64
	words      int64
	wordsLive  int64
}

// buildColumnar derives the columnar organization from the frozen scalar
// one. Callers hold the write lock with freeze() already run.
func (m *Matcher) buildColumnar() {
	ci := &colIndex{gen: m.gen, lay: m.ix.BuildLayout(), units: m.ordered}
	n := len(ci.units)
	ci.words = bitset.Words(n)
	for _, h := range ci.units {
		if len(h.e.pids) > ci.maxLen {
			ci.maxLen = len(h.e.pids)
		}
	}

	// Level widths: count[ℓ] = units whose chain has a level ℓ. The
	// longest-first sort makes them a prefix of the columns.
	counts := make([]int, ci.maxLen)
	npids := m.ix.Len()
	refCnt := make([]int32, npids+1)
	total := 0
	for _, h := range ci.units {
		for ℓ, pid := range h.e.pids {
			counts[ℓ]++
			refCnt[pid]++
			total++
		}
	}
	ci.levelWords = make([]int, ci.maxLen)
	ci.levelMask = make([]uint64, ci.maxLen)
	for ℓ, c := range counts {
		ci.levelWords[ℓ] = bitset.Words(c)
		ci.levelMask[ℓ] = bitset.TailMask(c)
		ci.sweepCost += ci.levelWords[ℓ] // per-path clear
		if ℓ > 0 {
			ci.sweepCost += ci.levelWords[ℓ] // fold AND
		}
	}
	ci.sweepCost += ci.words // acc copy

	// CSR membership table.
	ci.refOff = make([]int32, npids+1)
	for pid := 0; pid < npids; pid++ {
		ci.refOff[pid+1] = ci.refOff[pid] + refCnt[pid]
	}
	ci.refs = make([]colRef, total)
	fill := make([]int32, npids)
	copy(fill, ci.refOff[:npids])
	for c, h := range ci.units {
		for ℓ, pid := range h.e.pids {
			ci.refs[fill[pid]] = colRef{col: int32(c), level: int32(ℓ)}
			fill[pid]++
		}
	}

	if m.cache != nil {
		ci.structMask = make([]uint64, ci.words)
		ci.liveMask = make([]uint64, ci.words)
		for c, h := range ci.units {
			if m.unitValueDependent(h.e) {
				bitset.Set(ci.liveMask, c)
			} else {
				bitset.Set(ci.structMask, c)
			}
		}
	}
	m.col = ci
}

// ensureColumnar returns with the read lock held, the scalar
// organizations frozen, and the columnar index current for them. Like
// ensureFrozen, the upgrade window is raced benignly: gen is re-checked
// after every downgrade.
func (m *Matcher) ensureColumnar() *colIndex {
	m.mu.RLock()
	for m.dirty || m.col == nil || m.col.gen != m.gen {
		m.mu.RUnlock()
		m.mu.Lock()
		m.freeze()
		if m.col == nil || m.col.gen != m.gen {
			m.buildColumnar()
		}
		m.mu.Unlock()
		m.mu.RLock()
	}
	return m.col
}

// getColScratch returns a pooled columnar scratch sized for ci. The
// batch's stats accumulator starts zeroed.
func (m *Matcher) getColScratch(ci *colIndex) *colScratch {
	cs := m.colPool.Get().(*colScratch)
	if cs.ci != ci {
		total := 0
		for _, w := range ci.levelWords {
			total += w
		}
		if cap(cs.back) < total {
			cs.back = make([]uint64, total)
		}
		if cap(cs.level) < ci.maxLen {
			cs.level = make([][]uint64, ci.maxLen)
		}
		cs.level = cs.level[:ci.maxLen]
		off := 0
		for ℓ, w := range ci.levelWords {
			cs.level[ℓ] = cs.back[off : off+w : off+w]
			off += w
		}
		if cap(cs.acc) < ci.words {
			cs.acc = make([]uint64, ci.words)
		}
		cs.acc = cs.acc[:ci.words]
		cs.ci = ci
	}
	cs.stats = colStats{}
	return cs
}

// resolveTids maps the publication's tags through the frozen layout and
// reports whether the path is ambiguous (some tag occurs more than once,
// so occurrence pairs are not all (1,1) and candidates need scalar
// occurrence determination).
func (cs *colScratch) resolveTids(ci *colIndex, pub *xmldoc.Publication) bool {
	n := len(pub.Tuples)
	if cap(cs.tids) < n {
		cs.tids = make([]int32, n)
	}
	cs.tids = cs.tids[:n]
	ambiguous := false
	for i := range pub.Tuples {
		t := &pub.Tuples[i]
		cs.tids[i] = ci.lay.Tid(t.Tag)
		if t.Occ > 1 {
			ambiguous = true
		}
	}
	return ambiguous
}

// sweep computes the candidate bitset for the current path: bit c
// survives iff every chain level of unit c produced occurrence pairs.
// refOps reports the scattered membership entries (for budget charging).
func (ci *colIndex) sweep(cs *colScratch, touched []predindex.PID) (acc []uint64, refOps int) {
	for _, lv := range cs.level {
		bitset.Zero(lv)
	}
	refs, off := ci.refs, ci.refOff
	for _, pid := range touched {
		rs := refs[off[pid]:off[pid+1]]
		refOps += len(rs)
		for _, r := range rs {
			cs.level[r.level][r.col>>6] |= 1 << (uint(r.col) & 63)
		}
	}
	if ci.maxLen == 0 {
		return cs.acc[:0], refOps
	}
	acc = cs.acc
	copy(acc, cs.level[0])
	for ℓ := 1; ℓ < ci.maxLen; ℓ++ {
		lv := cs.level[ℓ]
		lw := len(lv)
		for w := 0; w < lw-1; w++ {
			acc[w] &= lv[w]
		}
		// Boundary word: columns past the level's unit count have no
		// level ℓ and pass through; words past lw are untouched entirely.
		acc[lw-1] &= lv[lw-1] | ^ci.levelMask[ℓ]
	}
	return acc, refOps
}

// markCandidates resolves the surviving candidate bits (restricted to
// mask when non-nil) into definitive marks. Unambiguous paths mark plain
// expressions directly (see the package comment above: every level holds
// exactly the pair (1,1), so determination trivially succeeds); group
// representatives and ambiguous-path candidates run the scalar evalExpr,
// which charges the budget per occurrence pair as the scalar path does.
func (m *Matcher) markCandidates(sc *scratch, ci *colIndex, acc, mask []uint64, ambiguous bool, bud *guard.Budget) {
	for w, word := range acc {
		if mask != nil {
			word &= mask[w]
		}
		if word == 0 {
			continue
		}
		base := w << 6
		for word != 0 {
			c := base + bits.TrailingZeros64(word)
			word &= word - 1
			h := &ci.units[c]
			if sc.matched[h.id] {
				continue
			}
			if bud.Exceeded() {
				return
			}
			if !ambiguous && h.e.members == nil {
				sc.mark(int(h.id))
				if len(h.e.fullCovers) > 0 {
					m.markFullCovers(sc, h.e)
				}
				continue
			}
			m.evalExpr(sc, h.e, false, bud)
		}
	}
}

// colMatchPath is the columnar counterpart of matchPath: stage 1 over
// the frozen layout, the bitset sweep, then candidate resolution. With
// the path cache enabled it defers to colMatchPathCached.
func (m *Matcher) colMatchPath(sc *scratch, cs *colScratch, ci *colIndex, pub *xmldoc.Publication, dedup bool, bd *Breakdown, bud *guard.Budget) {
	sc.pub = pub
	sc.byTagOK = false

	var t0 time.Time
	if bd != nil {
		t0 = time.Now()
	}
	if dedup {
		key := pubHash(pub, m.attrSensitive)
		if _, ok := sc.seen[key]; ok {
			if bd != nil {
				bd.PredMatch += time.Since(t0)
			}
			return
		}
		sc.seen[key] = struct{}{}
	}
	if m.cache != nil {
		m.colMatchPathCached(sc, cs, ci, pub, bd, t0, bud)
		return
	}

	ambiguous := cs.resolveTids(ci, pub)
	sc.res.Reset(m.ix.Len())
	ci.lay.MatchPathTids(pub, cs.tids, sc.res, nil)
	var t1 time.Time
	if bd != nil {
		t1 = time.Now()
		bd.PredMatch += t1.Sub(t0)
	}

	acc := m.colSweep(sc, cs, ci, ambiguous, bd, bud)
	if bud.Exceeded() {
		return
	}
	m.markCandidates(sc, ci, acc, nil, ambiguous, bud)
	for _, e := range m.nested {
		e.root.collect(m, sc, bud)
	}
	if bd != nil {
		bd.ExprMatch += time.Since(t1)
	}
}

// colSweep runs the budget-charged sweep for one path and folds the
// occupancy counters into the batch stats. The budget is charged one
// step per 64-word-op block — strictly less than the scalar loop's
// per-unit probes for the same path, so a budget generous enough for the
// scalar matcher never trips only under the columnar one.
func (m *Matcher) colSweep(sc *scratch, cs *colScratch, ci *colIndex, ambiguous bool, bd *Breakdown, bud *guard.Budget) []uint64 {
	var ts time.Time
	if bd != nil {
		ts = time.Now()
	}
	acc, refOps := ci.sweep(cs, sc.res.Touched())
	live, cands := 0, 0
	for _, w := range acc {
		if w != 0 {
			live++
			cands += bits.OnesCount64(w)
		}
	}
	if bd != nil {
		bd.Sweep += time.Since(ts)
	}
	cs.stats.paths++
	cs.stats.words += int64(len(acc))
	cs.stats.wordsLive += int64(live)
	cs.stats.candidates += int64(cands)
	if ambiguous {
		cs.stats.ambiguous++
	}
	bud.StepN(int64((ci.sweepCost+refOps)>>6) + 1)
	return acc
}

// colMatchPathCached is the cache-enabled body of colMatchPath, entered
// after the dedup check. The hit branch is byte-for-byte the scalar one
// (matchPathCached): replay the transcript, apply the cached structural
// outcome, re-run the live units. On a miss the sweep replaces the
// scalar structural runUnits: the structural candidate half evaluates
// against the clean matched2 buffer with mark logging on, so the cached
// outcome stays a pure function of the signature, and entries written by
// the scalar and columnar paths are interchangeable (the mark sets are
// equal; see the covering-parity note above).
func (m *Matcher) colMatchPathCached(sc *scratch, cs *colScratch, ci *colIndex, pub *xmldoc.Publication, bd *Breakdown, t0 time.Time, bud *guard.Budget) {
	sc.sig = appendPubSig(sc.sig[:0], pub)
	h := sigHash(sc.sig)

	ent, ok := m.cache.Get(h, sc.sig)
	var tc time.Time
	if bd != nil {
		tc = time.Now()
		bd.Cache += tc.Sub(t0)
	}
	if ok {
		if m.needRes {
			sc.res.Reset(m.ix.Len())
			m.ix.Replay(&ent.Rec, pub, sc.res)
		}
		var t1 time.Time
		if bd != nil {
			t1 = time.Now()
			bd.PredMatch += t1.Sub(tc)
		}
		for _, id := range ent.Outcome {
			sc.matched[id] = true
		}
		if m.needRes {
			m.runUnits(sc, m.liveUnits, m.liveClusters, bud)
			for _, e := range m.nested {
				e.root.collect(m, sc, bud)
			}
		}
		if bd != nil {
			bd.ExprMatch += time.Since(t1)
		}
		return
	}

	// Miss: stage 1 over the layout, recording the transcript when
	// value-dependent work will need it replayed on later hits.
	ambiguous := cs.resolveTids(ci, pub)
	sc.res.Reset(m.ix.Len())
	if m.needRes {
		sc.rec.Reset()
		ci.lay.MatchPathTids(pub, cs.tids, sc.res, &sc.rec)
	} else {
		ci.lay.MatchPathTids(pub, cs.tids, sc.res, nil)
	}
	var t1 time.Time
	if bd != nil {
		t1 = time.Now()
		bd.PredMatch += t1.Sub(tc)
	}

	acc := m.colSweep(sc, cs, ci, ambiguous, bd, bud)
	if bud.Exceeded() {
		return
	}

	// Structural candidates against the clean buffer with logging on.
	sc.matched, sc.matched2 = sc.matched2, sc.matched
	sc.log = sc.log[:0]
	sc.logging = true
	m.markCandidates(sc, ci, acc, ci.structMask, ambiguous, bud)
	sc.logging = false
	sc.matched, sc.matched2 = sc.matched2, sc.matched
	for _, id := range sc.log {
		sc.matched[id] = true
		sc.matched2[id] = false // restore the all-false invariant
	}
	if bud.Exceeded() {
		// Incomplete structural outcome: abandon the path without Put.
		return
	}

	ne := &pathcache.Entry{Outcome: append([]int32(nil), sc.log...)}
	if m.needRes {
		ne.Rec = sc.rec.Clone()
	}
	m.cache.Put(h, sc.sig, ne)

	// Live candidates directly into the document state.
	m.markCandidates(sc, ci, acc, ci.liveMask, ambiguous, bud)
	for _, e := range m.nested {
		e.root.collect(m, sc, bud)
	}
	if bd != nil {
		bd.ExprMatch += time.Since(t1)
	}
}

// matchDocColumnar matches one parsed document through the columnar
// kernel, mirroring MatchDocumentBudget's per-document protocol (path
// loop with budget checkpoints, nested recombination, result
// collection, metric observation). Callers hold the read lock with the
// columnar index current.
func (m *Matcher) matchDocColumnar(ci *colIndex, cs *colScratch, doc *xmldoc.Document, bud *guard.Budget) ([]SID, error) {
	t0 := time.Now()
	var bd Breakdown
	sc := m.getScratch()
	defer m.pool.Put(sc)

	dedup := m.pathDedup()
	for i := range doc.Paths {
		if !bud.CheckPoint() {
			break
		}
		m.colMatchPath(sc, cs, ci, &doc.Paths[i], dedup, &bd, bud)
		if bud.Exceeded() {
			break
		}
	}
	if err := bud.Err(); err != nil {
		clear(sc.ncands)
		return nil, err
	}

	t2 := time.Now()
	for _, e := range m.nested {
		if e.root.resolveRoot(sc) {
			sc.matched[e.id] = true
		}
	}
	clear(sc.ncands)
	for _, e := range m.exprs {
		if sc.matched[e.id] {
			sc.out = append(sc.out, e.sids...)
		}
	}
	out := append([]SID(nil), sc.out...)
	bd.Other = time.Since(t2)
	m.observe(&bd, t0, len(doc.Paths), len(out))
	return out, nil
}

// MatchDocumentsColumnar matches a batch of parsed documents through the
// columnar kernel, sharing one pooled columnar scratch (level bitsets,
// accumulator, tag-id arena) across the batch. buds[i] budgets document
// i (a short or nil slice leaves the remainder unbudgeted); each
// document fails or succeeds independently — outs[i] is nil exactly
// when errs[i] is non-nil. Results are identical to MatchDocumentBudget
// on each document; registration may run concurrently, as with the
// scalar entry points.
func (m *Matcher) MatchDocumentsColumnar(docs []*xmldoc.Document, buds []*guard.Budget) (outs [][]SID, errs []error) {
	outs = make([][]SID, len(docs))
	errs = make([]error, len(docs))
	if len(docs) == 0 {
		return outs, errs
	}
	ci := m.ensureColumnar()
	defer m.mu.RUnlock()
	cs := m.getColScratch(ci)
	defer m.colPool.Put(cs)

	for i, doc := range docs {
		var bud *guard.Budget
		if i < len(buds) {
			bud = buds[i]
		}
		outs[i], errs[i] = m.matchDocColumnar(ci, cs, doc, bud)
	}
	if m.mx != nil {
		m.mx.ColBatches.Inc()
		m.mx.ColDocs.Add(int64(len(docs)))
		m.mx.ColPaths.Add(cs.stats.paths)
		m.mx.ColCandidates.Add(cs.stats.candidates)
		m.mx.ColAmbiguous.Add(cs.stats.ambiguous)
		m.mx.ColWords.Add(cs.stats.words)
		m.mx.ColWordsLive.Add(cs.stats.wordsLive)
	}
	return outs, errs
}
