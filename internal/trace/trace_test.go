package trace

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"testing"
	"time"
)

func TestIDRoundTrip(t *testing.T) {
	for i := 0; i < 100; i++ {
		id := NewID()
		if id.IsZero() {
			t.Fatal("NewID returned zero ID")
		}
		s := id.String()
		if len(s) != 32 {
			t.Fatalf("String() length = %d, want 32 (%q)", len(s), s)
		}
		back, ok := ParseID(s)
		if !ok || back != id {
			t.Fatalf("ParseID(%q) = %v, %v; want %v, true", s, back, ok, id)
		}
	}
}

func TestParseIDRejects(t *testing.T) {
	for _, s := range []string{
		"",
		"abc",
		"00000000000000000000000000000000",  // zero sentinel
		"g0000000000000000000000000000001",  // non-hex
		"000000000000000000000000000000001", // 33 chars
	} {
		if _, ok := ParseID(s); ok {
			t.Errorf("ParseID(%q) accepted, want reject", s)
		}
	}
}

func TestHeaderRoundTrip(t *testing.T) {
	id := NewID()
	h := FormatHeader(id, 7)
	gotID, gotSpan, ok := ParseHeader(h)
	if !ok || gotID != id || gotSpan != 7 {
		t.Fatalf("ParseHeader(%q) = %v, %v, %v", h, gotID, gotSpan, ok)
	}
	// Bare trace-ID form.
	gotID, gotSpan, ok = ParseHeader(id.String())
	if !ok || gotID != id || gotSpan != 0 {
		t.Fatalf("ParseHeader(bare) = %v, %v, %v", gotID, gotSpan, ok)
	}
	for _, bad := range []string{"", "xyz", id.String() + "-", id.String() + "-zz", id.String() + ":0000000000000001"} {
		if _, _, ok := ParseHeader(bad); ok {
			t.Errorf("ParseHeader(%q) accepted, want reject", bad)
		}
	}
}

func TestSpanTree(t *testing.T) {
	tr := New()
	root := tr.StartSpan("publish", 0)
	child := tr.StartSpan("rpc", root.ID())
	child.SetShard("shard-0")
	child.SetRetries(2)
	child.SetError(errors.New("boom"))
	child.End()
	root.End()

	spans := tr.Snapshot()
	if len(spans) != 2 {
		t.Fatalf("got %d spans, want 2", len(spans))
	}
	if spans[0].Name != "publish" || spans[0].Parent != 0 {
		t.Errorf("root span = %+v", spans[0])
	}
	if spans[1].Parent != spans[0].ID {
		t.Errorf("child parent = %v, want %v", spans[1].Parent, spans[0].ID)
	}
	if spans[1].Shard != "shard-0" || spans[1].Retries != 2 || spans[1].Error != "boom" {
		t.Errorf("child attrs = %+v", spans[1])
	}
	if spans[0].DurationNanos < spans[1].DurationNanos {
		t.Errorf("root (%d ns) shorter than child (%d ns)", spans[0].DurationNanos, spans[1].DurationNanos)
	}
}

func TestJoinParentsRootSpans(t *testing.T) {
	id := NewID()
	tr := Join(id, 42)
	if tr.ID() != id {
		t.Fatalf("joined trace ID = %v, want %v", tr.ID(), id)
	}
	sp := tr.StartSpan("local", 0)
	sp.End()
	spans := tr.Snapshot()
	if spans[0].Parent != 42 {
		t.Errorf("root span parent = %v, want remote parent 42", spans[0].Parent)
	}
	// Zero ID falls back to a fresh trace.
	if fresh := Join(ID{}, 0); fresh.ID().IsZero() {
		t.Error("Join with zero ID produced zero trace ID")
	}
}

func TestAddCompletedOffsets(t *testing.T) {
	anchor := time.Now().Add(-time.Second)
	tr := NewAt(anchor)
	start := anchor.Add(100 * time.Millisecond)
	id := tr.AddCompleted("rpc", "shard-1", 0, start, 50*time.Millisecond, 1, "deadline")
	if id == 0 {
		t.Fatal("AddCompleted returned zero span ID")
	}
	spans := tr.Snapshot()
	if len(spans) != 1 {
		t.Fatalf("got %d spans, want 1", len(spans))
	}
	sp := spans[0]
	if sp.StartNanos != (100 * time.Millisecond).Nanoseconds() {
		t.Errorf("StartNanos = %d, want %d", sp.StartNanos, (100 * time.Millisecond).Nanoseconds())
	}
	if sp.DurationNanos != (50 * time.Millisecond).Nanoseconds() {
		t.Errorf("DurationNanos = %d", sp.DurationNanos)
	}
	if sp.Shard != "shard-1" || sp.Retries != 1 || sp.Error != "deadline" {
		t.Errorf("span = %+v", sp)
	}
}

func TestNilTraceIsInert(t *testing.T) {
	var tr *Trace
	if tr.Enabled() {
		t.Error("nil trace reports enabled")
	}
	if !tr.ID().IsZero() {
		t.Error("nil trace has non-zero ID")
	}
	sp := tr.StartSpan("x", 0)
	sp.SetShard("s")
	sp.SetError(errors.New("e"))
	sp.SetRetries(1)
	sp.SetNote("n")
	if sp.Header() != "" {
		t.Errorf("inert span header = %q", sp.Header())
	}
	if d := sp.End(); d != 0 {
		t.Errorf("inert span End = %v", d)
	}
	if tr.AddCompleted("x", "", 0, time.Now(), 0, 0, "") != 0 {
		t.Error("nil AddCompleted returned non-zero")
	}
	if tr.Snapshot() != nil {
		t.Error("nil Snapshot non-nil")
	}
}

func TestContextRoundTrip(t *testing.T) {
	if FromContext(context.Background()) != nil {
		t.Error("empty context carries a trace")
	}
	tr := New()
	ctx := NewContext(context.Background(), tr)
	if FromContext(ctx) != tr {
		t.Error("trace not recovered from context")
	}
	// nil trace leaves context untouched.
	base := context.Background()
	if NewContext(base, nil) != base {
		t.Error("NewContext(nil) returned a new context")
	}
}

func TestTraceConcurrentSpans(t *testing.T) {
	tr := New()
	const workers, per = 8, 50
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < per; i++ {
				sp := tr.StartSpan(fmt.Sprintf("w%d", w), 0)
				sp.SetShard("s")
				sp.End()
			}
		}(w)
	}
	wg.Wait()
	spans := tr.Snapshot()
	if len(spans) != workers*per {
		t.Fatalf("got %d spans, want %d", len(spans), workers*per)
	}
	seen := make(map[SpanID]bool, len(spans))
	for _, sp := range spans {
		if seen[sp.ID] {
			t.Fatalf("duplicate span ID %v", sp.ID)
		}
		seen[sp.ID] = true
	}
}

func TestFlightRecorderRing(t *testing.T) {
	f := NewFlightRecorder(4)
	if f.Cap() != 4 {
		t.Fatalf("Cap = %d", f.Cap())
	}
	for i := 0; i < 10; i++ {
		f.Add(&Record{Op: fmt.Sprintf("op-%d", i)})
	}
	if f.Recorded() != 10 {
		t.Errorf("Recorded = %d, want 10", f.Recorded())
	}
	snap := f.Snapshot()
	if len(snap) != 4 {
		t.Fatalf("snapshot length = %d, want 4", len(snap))
	}
	for i, r := range snap {
		want := fmt.Sprintf("op-%d", 6+i)
		if r.Op != want {
			t.Errorf("snap[%d].Op = %q, want %q (oldest-to-newest)", i, r.Op, want)
		}
	}
}

func TestFlightRecorderDefaults(t *testing.T) {
	f := NewFlightRecorder(0)
	if f.Cap() != DefaultFlightRecords {
		t.Fatalf("default cap = %d, want %d", f.Cap(), DefaultFlightRecords)
	}
	var nilRec *FlightRecorder
	nilRec.Add(&Record{})
	if nilRec.Snapshot() != nil || nilRec.Recorded() != 0 || nilRec.Cap() != 0 {
		t.Error("nil recorder not inert")
	}
}

func TestFlightRecorderConcurrent(t *testing.T) {
	f := NewFlightRecorder(8)
	const workers, per = 8, 200
	var wg sync.WaitGroup
	stop := make(chan struct{})
	// Concurrent readers must never observe a torn record.
	for r := 0; r < 2; r++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				select {
				case <-stop:
					return
				default:
				}
				for _, rec := range f.Snapshot() {
					if rec.Op == "" {
						t.Error("torn record: empty Op")
						return
					}
				}
			}
		}()
	}
	var writers sync.WaitGroup
	for w := 0; w < workers; w++ {
		writers.Add(1)
		go func(w int) {
			defer writers.Done()
			for i := 0; i < per; i++ {
				f.Add(&Record{Op: fmt.Sprintf("w%d-%d", w, i)})
			}
		}(w)
	}
	writers.Wait()
	close(stop)
	wg.Wait()
	if f.Recorded() != workers*per {
		t.Errorf("Recorded = %d, want %d", f.Recorded(), workers*per)
	}
	if len(f.Snapshot()) != 8 {
		t.Errorf("snapshot length = %d, want 8", len(f.Snapshot()))
	}
}
