// Package trace is the cluster's publish-scoped distributed tracing
// core: 128-bit trace identifiers, a small append-only span tree, an
// HTTP propagation header, and a lock-free flight recorder (flight.go)
// that retains the span trees of the last K anomalous operations.
//
// The package is stdlib-only and follows the same always-on cost
// contract as internal/metrics: every method is safe on a nil *Trace
// and performs zero heap allocations in that case, so instrumented hot
// paths (the coordinator's scatter/gather publish, the server's publish
// handler) pay nothing when tracing is off. A trace is enabled
// per-operation — by an incoming X-Predfilter-Trace header, an explicit
// ?trace=1, or a trace-everything configuration switch — and allocates
// only then.
//
// Span identifiers are sequential within a trace (the trace ID carries
// all the entropy); spans form a tree through Parent references, and
// every span records its start offset from the trace's start so a span
// tree is also a timeline.
package trace

import (
	"fmt"
	"math/rand/v2"
	"strconv"
	"sync"
	"time"
)

// HeaderName is the HTTP header that propagates a trace across the
// cluster: "trace-id-hex32-span-id-hex16", injected by the coordinator
// into every per-shard RPC and echoed by shards in responses.
const HeaderName = "X-Predfilter-Trace"

// ResponseHeaderName carries the trace ID back to the publisher on the
// coordinator's (and a traced shard's) publish response.
const ResponseHeaderName = "X-Predfilter-Trace-Id"

// ID is a 128-bit trace identifier. The zero value means "no trace".
type ID struct {
	Hi, Lo uint64
}

// NewID returns a random, non-zero trace identifier. Randomness is
// statistical (math/rand/v2), not cryptographic — trace IDs are
// correlation keys, not secrets.
func NewID() ID {
	for {
		id := ID{Hi: rand.Uint64(), Lo: rand.Uint64()}
		if !id.IsZero() {
			return id
		}
	}
}

// IsZero reports whether the ID is the absent-trace sentinel.
func (id ID) IsZero() bool { return id.Hi == 0 && id.Lo == 0 }

// String renders the ID as 32 lowercase hex digits.
func (id ID) String() string {
	return fmt.Sprintf("%016x%016x", id.Hi, id.Lo)
}

// ParseID parses the 32-hex-digit form produced by String.
func ParseID(s string) (ID, bool) {
	if len(s) != 32 {
		return ID{}, false
	}
	hi, err1 := strconv.ParseUint(s[:16], 16, 64)
	lo, err2 := strconv.ParseUint(s[16:], 16, 64)
	if err1 != nil || err2 != nil {
		return ID{}, false
	}
	id := ID{Hi: hi, Lo: lo}
	return id, !id.IsZero()
}

// SpanID identifies one span within a trace. 0 means "no parent" (a
// root span).
type SpanID uint64

// String renders the span ID as 16 hex digits.
func (s SpanID) String() string { return fmt.Sprintf("%016x", uint64(s)) }

// FormatHeader renders the propagation header value for one outgoing
// call: the trace ID and the caller's span ID joined by a dash.
func FormatHeader(id ID, span SpanID) string {
	return id.String() + "-" + span.String()
}

// ParseHeader parses a propagation header value. It accepts the bare
// trace-ID form too (no span suffix), for clients that only want to
// name the trace.
func ParseHeader(v string) (ID, SpanID, bool) {
	if len(v) < 32 {
		return ID{}, 0, false
	}
	id, ok := ParseID(v[:32])
	if !ok {
		return ID{}, 0, false
	}
	if len(v) == 32 {
		return id, 0, true
	}
	if v[32] != '-' || len(v) != 32+1+16 {
		return ID{}, 0, false
	}
	span, err := strconv.ParseUint(v[33:], 16, 64)
	if err != nil {
		return ID{}, 0, false
	}
	return id, SpanID(span), true
}

// SpanRecord is one completed (or in-flight) span as it appears in a
// trace snapshot and in flight-recorder dumps. Offsets are relative to
// the trace's start, so a span tree doubles as a timeline.
type SpanRecord struct {
	ID            SpanID `json:"id"`
	Parent        SpanID `json:"parent,omitempty"`
	Name          string `json:"name"`
	Shard         string `json:"shard,omitempty"`
	StartNanos    int64  `json:"start_ns"`
	DurationNanos int64  `json:"duration_ns"`
	Retries       int    `json:"retries,omitempty"`
	Error         string `json:"error,omitempty"`
	Note          string `json:"note,omitempty"`
}

// Trace is one operation-scoped trace: an identifier plus an
// append-only span tree. All methods are safe for concurrent use and
// safe on a nil receiver (every recording call is then a no-op that
// performs no allocation — the disabled-tracing contract).
type Trace struct {
	id     ID
	parent SpanID // remote parent for root spans (propagated traces)
	start  time.Time

	mu     sync.Mutex
	nextID SpanID
	spans  []SpanRecord
}

// New starts a trace with a fresh random ID anchored at time.Now().
func New() *Trace { return NewAt(time.Now()) }

// NewAt starts a trace with a fresh random ID anchored at start. It
// exists so a caller that decides to record only after the fact (the
// flight recorder's anomaly path) can synthesize a trace whose span
// offsets are measured from the operation's true start.
func NewAt(start time.Time) *Trace {
	return &Trace{id: NewID(), start: start}
}

// Join continues a propagated trace: spans started here become
// children of the remote caller's span.
func Join(id ID, parent SpanID) *Trace {
	if id.IsZero() {
		return New()
	}
	return &Trace{id: id, parent: parent, start: time.Now()}
}

// ID returns the trace identifier (zero on a nil trace).
func (t *Trace) ID() ID {
	if t == nil {
		return ID{}
	}
	return t.id
}

// Enabled reports whether recording is on (non-nil receiver).
func (t *Trace) Enabled() bool { return t != nil }

// Start returns the trace's anchor time (zero on a nil trace).
func (t *Trace) Start() time.Time {
	if t == nil {
		return time.Time{}
	}
	return t.start
}

// Span is a handle on one live span. The zero value (from a nil trace)
// is inert: every method is a no-op and Header returns "".
type Span struct {
	t   *Trace
	idx int
	id  SpanID
	t0  time.Time
}

// StartSpan opens a span under the given parent (0 parents a root span
// under the trace's remote parent, if any).
func (t *Trace) StartSpan(name string, parent SpanID) Span {
	if t == nil {
		return Span{}
	}
	now := time.Now()
	t.mu.Lock()
	t.nextID++
	id := t.nextID
	if parent == 0 {
		parent = t.parent
	}
	idx := len(t.spans)
	t.spans = append(t.spans, SpanRecord{
		ID:         id,
		Parent:     parent,
		Name:       name,
		StartNanos: now.Sub(t.start).Nanoseconds(),
	})
	t.mu.Unlock()
	return Span{t: t, idx: idx, id: id, t0: now}
}

// ID returns the span's identifier (0 for an inert span).
func (s Span) ID() SpanID { return s.id }

// Header renders the propagation header value naming this span as the
// remote parent, or "" for an inert span.
func (s Span) Header() string {
	if s.t == nil {
		return ""
	}
	return FormatHeader(s.t.id, s.id)
}

// SetShard attributes the span to a shard.
func (s Span) SetShard(shard string) {
	if s.t == nil {
		return
	}
	s.t.mu.Lock()
	s.t.spans[s.idx].Shard = shard
	s.t.mu.Unlock()
}

// SetError records the span's failure.
func (s Span) SetError(err error) {
	if s.t == nil || err == nil {
		return
	}
	msg := err.Error()
	s.t.mu.Lock()
	s.t.spans[s.idx].Error = msg
	s.t.mu.Unlock()
}

// SetRetries records how many times the span's operation was retried.
func (s Span) SetRetries(n int) {
	if s.t == nil {
		return
	}
	s.t.mu.Lock()
	s.t.spans[s.idx].Retries = n
	s.t.mu.Unlock()
}

// SetNote attaches a freeform annotation.
func (s Span) SetNote(note string) {
	if s.t == nil {
		return
	}
	s.t.mu.Lock()
	s.t.spans[s.idx].Note = note
	s.t.mu.Unlock()
}

// End closes the span, fixing its duration. It returns the duration so
// callers can feed the same measurement into a latency histogram.
func (s Span) End() time.Duration {
	if s.t == nil {
		return 0
	}
	d := time.Since(s.t0)
	s.t.mu.Lock()
	s.t.spans[s.idx].DurationNanos = d.Nanoseconds()
	s.t.mu.Unlock()
	return d
}

// AddCompleted appends an already-measured span — the synthesis path
// used when an untraced operation turns out anomalous and its recorded
// timings are reconstructed into a span tree after the fact. start is
// the span's absolute start time; offsets are computed against the
// trace's anchor.
func (t *Trace) AddCompleted(name, shard string, parent SpanID, start time.Time, d time.Duration, retries int, errMsg string) SpanID {
	if t == nil {
		return 0
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	t.nextID++
	id := t.nextID
	if parent == 0 {
		parent = t.parent
	}
	t.spans = append(t.spans, SpanRecord{
		ID:            id,
		Parent:        parent,
		Name:          name,
		Shard:         shard,
		StartNanos:    start.Sub(t.start).Nanoseconds(),
		DurationNanos: d.Nanoseconds(),
		Retries:       retries,
		Error:         errMsg,
	})
	return id
}

// Snapshot copies the span tree (nil on a nil trace).
func (t *Trace) Snapshot() []SpanRecord {
	if t == nil {
		return nil
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	out := make([]SpanRecord, len(t.spans))
	copy(out, t.spans)
	return out
}
