package trace

import "context"

type ctxKey struct{}

// NewContext returns ctx carrying t. A nil t returns ctx unchanged, so
// the untraced path allocates nothing.
func NewContext(ctx context.Context, t *Trace) context.Context {
	if t == nil {
		return ctx
	}
	return context.WithValue(ctx, ctxKey{}, t)
}

// FromContext returns the trace carried by ctx, or nil.
func FromContext(ctx context.Context) *Trace {
	if ctx == nil {
		return nil
	}
	t, _ := ctx.Value(ctxKey{}).(*Trace)
	return t
}
