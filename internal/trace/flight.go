package trace

import (
	"sync/atomic"
	"time"
)

// DefaultFlightRecords is the ring capacity used when a FlightRecorder
// is constructed with k <= 0.
const DefaultFlightRecords = 64

// Record is one retained anomalous (or explicitly traced) operation:
// the outcome summary plus the full span tree. Records are immutable
// once stored.
type Record struct {
	TraceID       string       `json:"trace_id"`
	Time          time.Time    `json:"time"`
	Op            string       `json:"op"`
	Reasons       []string     `json:"reasons"`
	DurationNanos int64        `json:"duration_ns"`
	DocBytes      int          `json:"doc_bytes,omitempty"`
	Matches       int          `json:"matches,omitempty"`
	Degraded      []string     `json:"degraded,omitempty"`
	Skipped       []string     `json:"skipped,omitempty"`
	Error         string       `json:"error,omitempty"`
	Spans         []SpanRecord `json:"spans,omitempty"`
}

// FlightRecorder retains the last K records in a lock-free ring.
// Writers claim a slot with one atomic increment and publish an
// immutable *Record with one atomic store; readers load slots without
// blocking writers. Under a race between a reader and a lapping writer
// a snapshot may momentarily contain a newer record in an "old" slot —
// acceptable for a diagnostic buffer, and every record it returns was
// genuinely recorded.
type FlightRecorder struct {
	slots []atomic.Pointer[Record]
	pos   atomic.Uint64
}

// NewFlightRecorder returns a recorder retaining the last k records
// (DefaultFlightRecords when k <= 0).
func NewFlightRecorder(k int) *FlightRecorder {
	if k <= 0 {
		k = DefaultFlightRecords
	}
	return &FlightRecorder{slots: make([]atomic.Pointer[Record], k)}
}

// Add stores r as the newest record. r must not be mutated afterwards.
// Safe on a nil recorder (no-op).
func (f *FlightRecorder) Add(r *Record) {
	if f == nil || r == nil {
		return
	}
	idx := f.pos.Add(1) - 1
	f.slots[idx%uint64(len(f.slots))].Store(r)
}

// Recorded returns the total number of records ever added.
func (f *FlightRecorder) Recorded() uint64 {
	if f == nil {
		return 0
	}
	return f.pos.Load()
}

// Cap returns the ring capacity (0 on a nil recorder).
func (f *FlightRecorder) Cap() int {
	if f == nil {
		return 0
	}
	return len(f.slots)
}

// Snapshot returns the retained records ordered oldest to newest. Nil
// recorder yields nil.
func (f *FlightRecorder) Snapshot() []*Record {
	if f == nil {
		return nil
	}
	k := uint64(len(f.slots))
	n := f.pos.Load()
	start := uint64(0)
	if n > k {
		start = n - k
	}
	out := make([]*Record, 0, k)
	for i := start; i < n; i++ {
		if r := f.slots[i%k].Load(); r != nil {
			out = append(out, r)
		}
	}
	return out
}
