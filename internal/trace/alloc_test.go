//go:build !race

package trace

import (
	"context"
	"testing"
)

// The disabled-tracing contract: the full instrumentation sequence a
// hot path executes — context plumbing, span lifecycle, attribute
// setters, flight-recorder admission — must allocate nothing when the
// trace is nil. (-race instruments allocations, so the guard is built
// out under the race detector, mirroring internal/metrics.)
func TestDisabledTracingZeroAlloc(t *testing.T) {
	ctx := context.Background()
	var rec *FlightRecorder
	allocs := testing.AllocsPerRun(1000, func() {
		tr := FromContext(ctx)
		c2 := NewContext(ctx, tr)
		root := tr.StartSpan("publish", 0)
		sp := tr.StartSpan("rpc", root.ID())
		sp.SetShard("shard-0")
		sp.SetRetries(0)
		_ = sp.Header()
		sp.End()
		root.End()
		_ = tr.ID()
		_ = tr.Snapshot()
		rec.Add(nil)
		_ = c2
	})
	if allocs != 0 {
		t.Fatalf("disabled tracing allocated %.1f allocs/op, want 0", allocs)
	}
}
