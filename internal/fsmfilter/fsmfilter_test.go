package fsmfilter

import (
	"fmt"
	"math/rand"
	"strings"
	"testing"

	"predfilter/internal/refmatch"
	"predfilter/internal/xmldoc"
	"predfilter/internal/xpath"
)

var tags = []string{"a", "b", "c", "d", "e"}

func randXPE(rng *rand.Rand, withAttrs bool) string {
	n := 1 + rng.Intn(4)
	var b strings.Builder
	if rng.Intn(2) == 0 {
		b.WriteString("/")
	}
	for i := 0; i < n; i++ {
		if i > 0 {
			if rng.Intn(5) == 0 {
				b.WriteString("//")
			} else {
				b.WriteString("/")
			}
		} else if b.Len() == 1 && rng.Intn(6) == 0 {
			b.Reset()
			b.WriteString("//")
		}
		if rng.Intn(4) == 0 {
			b.WriteString("*")
			continue
		}
		b.WriteString(tags[rng.Intn(len(tags))])
		if withAttrs && rng.Intn(3) == 0 {
			ops := []string{"=", ">=", "<=", "!=", ">", "<"}
			fmt.Fprintf(&b, "[@%s%s%d]", []string{"x", "y"}[rng.Intn(2)], ops[rng.Intn(len(ops))], 1+rng.Intn(3))
		}
	}
	return b.String()
}

func randXML(rng *rand.Rand, withAttrs bool) []byte {
	var b strings.Builder
	var build func(depth int)
	build = func(depth int) {
		tag := tags[rng.Intn(len(tags))]
		b.WriteString("<" + tag)
		if withAttrs && rng.Intn(3) == 0 {
			fmt.Fprintf(&b, ` %s="%d"`, []string{"x", "y"}[rng.Intn(2)], 1+rng.Intn(3))
		}
		b.WriteString(">")
		if depth < 5 {
			for k := rng.Intn(3); k > 0; k-- {
				build(depth + 1)
			}
		}
		b.WriteString("</" + tag + ">")
	}
	build(1)
	return []byte(b.String())
}

func TestExamples(t *testing.T) {
	e := New()
	xpes := []string{"/a/b/c", "/a/b/d", "a//c", "b/c", "/b", "/*/*/*", "/a/*/c", "//b/c", "c", "/a//c", "b//b"}
	want := map[string]bool{"/a/b/c": true, "a//c": true, "b/c": true, "/*/*/*": true, "/a/*/c": true, "//b/c": true, "c": true, "/a//c": true}
	sids := make([]SID, len(xpes))
	for i, s := range xpes {
		sid, err := e.Add(s)
		if err != nil {
			t.Fatalf("Add(%q): %v", s, err)
		}
		sids[i] = sid
	}
	got, err := e.Filter([]byte("<a><b><c/></b><d/></a>"))
	if err != nil {
		t.Fatal(err)
	}
	set := make(map[SID]bool)
	for _, s := range got {
		set[s] = true
	}
	for i, s := range xpes {
		if set[sids[i]] != want[s] {
			t.Errorf("%q: matched=%v, want %v", s, set[sids[i]], want[s])
		}
	}
}

// TestScoping: the classic XFilter trap — an activation created under one
// element must not fire under a sibling.
func TestScoping(t *testing.T) {
	e := New()
	sid, err := e.Add("a/b")
	if err != nil {
		t.Fatal(err)
	}
	// <r><a><x/></a><c><b/></c></r>: b exists at the right level but is
	// not a child of a.
	got, err := e.Filter([]byte("<r><a><x/></a><c><b/></c></r>"))
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 0 {
		t.Errorf("a/b matched across sibling scopes: %v (sid %d)", got, sid)
	}
	// ... but matches when b really is under a.
	got, err = e.Filter([]byte("<r><a><b/></a></r>"))
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 1 {
		t.Errorf("a/b missed a genuine match: %v", got)
	}
}

// TestRandomEquivalence cross-validates against the reference matcher,
// with and without attribute filters.
func TestRandomEquivalence(t *testing.T) {
	rng := rand.New(rand.NewSource(83))
	for round := 0; round < 60; round++ {
		withAttrs := round%2 == 1
		e := New()
		xpes := make([]string, 40)
		sids := make([]SID, len(xpes))
		for i := range xpes {
			xpes[i] = randXPE(rng, withAttrs)
			sid, err := e.Add(xpes[i])
			if err != nil {
				t.Fatalf("Add(%q): %v", xpes[i], err)
			}
			sids[i] = sid
		}
		for d := 0; d < 5; d++ {
			xmlBytes := randXML(rng, withAttrs)
			doc, err := xmldoc.Parse(xmlBytes)
			if err != nil {
				t.Fatal(err)
			}
			got, err := e.Filter(xmlBytes)
			if err != nil {
				t.Fatal(err)
			}
			set := make(map[SID]bool)
			for _, s := range got {
				set[s] = true
			}
			for i, s := range xpes {
				want := refmatch.Match(xpath.MustParse(s), doc)
				if set[sids[i]] != want {
					t.Fatalf("round %d: %q matched=%v, ref=%v on %s", round, s, set[sids[i]], want, xmlBytes)
				}
			}
		}
	}
}

func TestDuplicatesAndStats(t *testing.T) {
	e := New()
	s1, _ := e.Add("/a")
	s2, _ := e.Add("/a")
	if st := e.Stats(); st.DistinctExpressions != 1 || st.SIDs != 2 {
		t.Errorf("stats = %+v", st)
	}
	got, err := e.Filter([]byte("<a/>"))
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 2 {
		t.Fatalf("got %v, want both sids", got)
	}
	set := map[SID]bool{got[0]: true, got[1]: true}
	if !set[s1] || !set[s2] {
		t.Errorf("sids %v", got)
	}
}

func TestErrors(t *testing.T) {
	e := New()
	if _, err := e.Add("/a[b]"); err == nil {
		t.Error("Add accepted a nested path filter")
	}
	if _, err := e.Add("]["); err == nil {
		t.Error("Add accepted garbage")
	}
	if _, err := e.Add("/a"); err != nil {
		t.Fatal(err)
	}
	if _, err := e.Filter([]byte("<a><b></a>")); err == nil {
		t.Error("Filter accepted mismatched tags")
	}
	if _, err := e.Filter([]byte("<a>")); err == nil {
		t.Error("Filter accepted a truncated document")
	}
}
