// Package fsmfilter reimplements XFilter (Altinel & Franklin, VLDB 2000),
// the earliest automaton-based XML filtering system and the system the
// paper's related-work section contrasts against: "XFilter treats each
// XPE as a finite state machine. This approach is not able to adequately
// handle overlap, especially, prefix overlap between expressions."
//
// Each expression runs as its own state machine. A query index keyed by
// element name holds the currently active states (XFilter's candidate
// lists); document events advance them — a start element activates the
// successors of every satisfied state, an end element retracts the
// activations made in its scope. Because nothing is shared between
// expressions, workloads with heavy overlap pay per expression; the
// benchmark suite uses this engine to quantify exactly the sharing that
// YFilter's shared NFA and the predicate engine's shared predicate index
// provide.
//
// Duplicate expressions are deduplicated (as in the other engines here),
// which is itself charitable to XFilter on duplicate-heavy workloads.
package fsmfilter

import (
	"bytes"
	"encoding/xml"
	"fmt"
	"io"

	"predfilter/internal/xmlevents"
	"predfilter/internal/xpath"
)

// SID identifies one registered expression.
type SID int32

// wildcardKey indexes activations whose next step is a wildcard.
const wildcardKey = "*"

// step is one compiled location step.
type step struct {
	name     string // "" for wildcard
	wildcard bool
	desc     bool // reached via the descendant axis
	attrs    []xpath.AttrFilter
}

// query is one distinct compiled expression.
type query struct {
	id    int
	steps []step
	sids  []SID
}

// Engine is an XFilter instance.
type Engine struct {
	queries []*query
	byKey   map[string]*query
	nsids   int
}

// New returns an empty engine.
func New() *Engine {
	return &Engine{byKey: make(map[string]*query)}
}

// Add registers an expression. Nested path filters are not supported
// (XFilter's published system predates them in this form).
func (e *Engine) Add(s string) (SID, error) {
	p, err := xpath.Parse(s)
	if err != nil {
		return 0, err
	}
	return e.AddPath(p)
}

// AddPath registers a parsed expression.
func (e *Engine) AddPath(p *xpath.Path) (SID, error) {
	if !p.IsSinglePath() {
		return 0, fmt.Errorf("fsmfilter: nested path filters are not supported: %q", p)
	}
	key := canonKey(p)
	q := e.byKey[key]
	if q == nil {
		q = compile(p)
		q.id = len(e.queries)
		e.queries = append(e.queries, q)
		e.byKey[key] = q
	}
	sid := SID(e.nsids)
	e.nsids++
	q.sids = append(q.sids, sid)
	return sid, nil
}

func canonKey(p *xpath.Path) string {
	if p.Absolute {
		return p.String()
	}
	return "//" + p.String()
}

func compile(p *xpath.Path) *query {
	q := &query{steps: make([]step, len(p.Steps))}
	for i, s := range p.Steps {
		st := step{name: s.Name, wildcard: s.Wildcard, attrs: s.Attrs}
		if s.Axis == xpath.Descendant || (i == 0 && !p.Absolute) {
			// A relative expression may start anywhere: its first state
			// behaves as if reached by a descendant axis.
			st.desc = true
		}
		q.steps[i] = st
	}
	return q
}

// Stats summarizes engine state.
type Stats struct {
	DistinctExpressions int
	SIDs                int
}

// Stats returns engine statistics.
func (e *Engine) Stats() Stats {
	return Stats{DistinctExpressions: len(e.queries), SIDs: e.nsids}
}

// activation is one live state of one query's machine: the query is
// waiting for step idx at the given level (exact, or minimum when the
// step is reached via the descendant axis).
type activation struct {
	q     *query
	idx   int32
	level int32 // required level (exact) or minimum level (minLvl)
	min   bool
}

// runtime is the per-document evaluation state.
type runtime struct {
	lists    map[string][]activation
	undo     [][]undoEntry // per-depth truncation log
	matched  []bool
	nmatched int
}

type undoEntry struct {
	key    string
	oldLen int
}

// Filter parses the document and returns the SIDs of all matching
// expressions.
func (e *Engine) Filter(doc []byte) ([]SID, error) {
	return e.FilterReader(bytes.NewReader(doc))
}

// FilterReader is Filter over a stream.
func (e *Engine) FilterReader(r io.Reader) ([]SID, error) {
	rt := &runtime{
		lists:   make(map[string][]activation),
		matched: make([]bool, len(e.queries)),
	}
	// Initial activations: every query's first step, at depth 0 (never
	// retracted).
	for _, q := range e.queries {
		first := q.steps[0]
		rt.add(first, activation{q: q, idx: 0, level: 1, min: first.desc})
	}

	depth := 0
	err := xmlevents.ForEach(r, "fsmfilter",
		func(t xml.StartElement) error {
			depth++
			rt.undo = append(rt.undo, nil)
			rt.startElement(t, depth)
			return nil
		},
		func(t xml.EndElement) error {
			if len(rt.undo) == 0 {
				return fmt.Errorf("fsmfilter: unbalanced end element <%s>", t.Name.Local)
			}
			// Roll back in reverse: a list appended to more than once in
			// this scope must end at its earliest recorded length.
			frame := rt.undo[len(rt.undo)-1]
			for i := len(frame) - 1; i >= 0; i-- {
				rt.lists[frame[i].key] = rt.lists[frame[i].key][:frame[i].oldLen]
			}
			rt.undo = rt.undo[:len(rt.undo)-1]
			depth--
			return nil
		})
	if err != nil {
		return nil, err
	}
	if depth != 0 {
		return nil, fmt.Errorf("fsmfilter: unexpected EOF with %d open elements", depth)
	}

	out := make([]SID, 0, rt.nmatched)
	for id, ok := range rt.matched {
		if ok {
			out = append(out, e.queries[id].sids...)
		}
	}
	return out, nil
}

// add appends an activation to the list its step is indexed under.
func (rt *runtime) add(st step, a activation) {
	key := st.name
	if st.wildcard {
		key = wildcardKey
	}
	rt.lists[key] = append(rt.lists[key], a)
}

// addScoped is add with retraction when the current element closes.
func (rt *runtime) addScoped(st step, a activation) {
	key := st.name
	if st.wildcard {
		key = wildcardKey
	}
	d := len(rt.undo) - 1
	rt.undo[d] = append(rt.undo[d], undoEntry{key: key, oldLen: len(rt.lists[key])})
	rt.lists[key] = append(rt.lists[key], a)
}

// startElement advances every activation satisfied by this element.
func (rt *runtime) startElement(t xml.StartElement, level int) {
	rt.advance(rt.lists[t.Name.Local], t, level)
	rt.advance(rt.lists[wildcardKey], t, level)
}

func (rt *runtime) advance(acts []activation, t xml.StartElement, level int) {
	// The slice may grow while iterating (an activation for the same key
	// added by an earlier activation must not fire on this same element);
	// iterate over the snapshot length.
	for i := 0; i < len(acts); i++ {
		a := acts[i]
		st := &a.q.steps[a.idx]
		if a.min {
			if int32(level) < a.level {
				continue
			}
		} else if int32(level) != a.level {
			continue
		}
		if !attrsOK(st.attrs, t.Attr) {
			continue
		}
		if int(a.idx) == len(a.q.steps)-1 {
			if !rt.matched[a.q.id] {
				rt.matched[a.q.id] = true
				rt.nmatched++
			}
			continue
		}
		next := a.q.steps[a.idx+1]
		na := activation{q: a.q, idx: a.idx + 1, level: int32(level) + 1, min: next.desc}
		rt.addScoped(next, na)
	}
}

func attrsOK(filters []xpath.AttrFilter, attrs []xml.Attr) bool {
	for _, f := range filters {
		ok := false
		for _, a := range attrs {
			if a.Name.Local != f.Name {
				continue
			}
			if f.Eval(a.Value) {
				ok = true
			}
			break
		}
		if !ok {
			return false
		}
	}
	return true
}
