package xpath

import (
	"math/rand"
	"strings"
	"testing"
	"testing/quick"
)

func TestParseBasic(t *testing.T) {
	cases := []struct {
		in   string
		abs  bool
		n    int
		want string // canonical form; "" means same as input
	}{
		{"/a/b/c", true, 3, ""},
		{"a/b/c", false, 3, ""},
		{"/a//b", true, 2, ""},
		{"//a", true, 1, ""},
		{"*", false, 1, ""},
		{"/*/*/*", true, 3, ""},
		{"a/*/b//c", false, 4, ""},
		{"/a[@x=3]/b", true, 2, ""},
		{"/a[@x]/b", true, 2, ""},
		{"/a[@x!=3]", true, 1, ""},
		{"/a[@x>=3][@y<=2]", true, 1, ""},
		{"/a[@x>1][@y<9]", true, 1, ""},
		{"/a[b/c]/d", true, 2, ""},
		{"/a[b][c]", true, 1, ""},
		{"a[b[c]]", false, 1, ""},
		{"/a[*/c[d]/e]//c[d]/e", true, 3, ""},
		{" /a / b ", true, 2, "/a/b"},
		{`/a[@x="hello world"]`, true, 1, `/a[@x="hello world"]`},
		{`/a[@x='v1']`, true, 1, "/a[@x=v1]"},
		{"/ns:tag/sub-tag/t.2", true, 3, ""},
	}
	for _, tc := range cases {
		t.Run(tc.in, func(t *testing.T) {
			p, err := Parse(tc.in)
			if err != nil {
				t.Fatalf("Parse(%q): %v", tc.in, err)
			}
			if p.Absolute != tc.abs {
				t.Errorf("Absolute = %v, want %v", p.Absolute, tc.abs)
			}
			if len(p.Steps) != tc.n {
				t.Errorf("len(Steps) = %d, want %d", len(p.Steps), tc.n)
			}
			want := tc.want
			if want == "" {
				want = tc.in
			}
			if got := p.String(); got != want {
				t.Errorf("String() = %q, want %q", got, want)
			}
		})
	}
}

func TestParseStructure(t *testing.T) {
	p := MustParse("/a//b[@x=3]/*[c//d]")
	if !p.Absolute {
		t.Error("not absolute")
	}
	if p.Steps[0].Axis != Child || p.Steps[0].Name != "a" {
		t.Errorf("step 0 = %+v", p.Steps[0])
	}
	if p.Steps[1].Axis != Descendant || p.Steps[1].Name != "b" {
		t.Errorf("step 1 = %+v", p.Steps[1])
	}
	if len(p.Steps[1].Attrs) != 1 || p.Steps[1].Attrs[0] != (AttrFilter{Name: "x", Op: AttrEQ, Value: "3"}) {
		t.Errorf("step 1 attrs = %+v", p.Steps[1].Attrs)
	}
	if !p.Steps[2].Wildcard {
		t.Error("step 2 not wildcard")
	}
	if len(p.Steps[2].Nested) != 1 {
		t.Fatalf("step 2 nested = %v", p.Steps[2].Nested)
	}
	q := p.Steps[2].Nested[0]
	if q.Absolute || len(q.Steps) != 2 || q.Steps[1].Axis != Descendant {
		t.Errorf("nested = %+v", q)
	}
}

func TestParseErrors(t *testing.T) {
	bad := []string{
		"", "/", "//", "a//", "/a/", "a[", "a[]", "a[@]", "a[@x=]", "a[@x!3]",
		"a]b", "a[b", `a[@x="unterminated]`, "a[/b]", "a b", "/a/&", "a[@x=<]",
		"a$", "[b]",
	}
	for _, in := range bad {
		if p, err := Parse(in); err == nil {
			t.Errorf("Parse(%q) = %q, want error", in, p)
		}
	}
	var pe *ParseError
	_, err := Parse("/a/&")
	if err == nil {
		t.Fatal("no error")
	}
	var ok bool
	pe, ok = err.(*ParseError)
	if !ok {
		t.Fatalf("error type %T, want *ParseError", err)
	}
	if pe.Pos != 3 || !strings.Contains(pe.Error(), "offset 3") {
		t.Errorf("ParseError = %+v (%s)", pe, pe)
	}
}

// randPath builds a random valid Path directly (not via text) for
// round-trip testing.
func randPath(rng *rand.Rand, depth int) *Path {
	tags := []string{"a", "bb", "c-1", "d.x", "e:f"}
	p := &Path{Absolute: rng.Intn(2) == 0}
	n := 1 + rng.Intn(4)
	for i := 0; i < n; i++ {
		s := Step{Axis: Child}
		if rng.Intn(4) == 0 && (i > 0 || p.Absolute) {
			s.Axis = Descendant
		}
		if rng.Intn(5) == 0 {
			s.Wildcard = true
		} else {
			s.Name = tags[rng.Intn(len(tags))]
			if rng.Intn(4) == 0 {
				s.Attrs = append(s.Attrs, AttrFilter{
					Name:  "k",
					Op:    AttrOp(1 + rng.Intn(6)),
					Value: "v1",
				})
			}
			if depth < 2 && rng.Intn(5) == 0 {
				s.Nested = append(s.Nested, randPath(rng, depth+1))
			}
		}
		p.Steps = append(p.Steps, s)
	}
	// Nested paths must be relative.
	fixNested(p)
	return p
}

func fixNested(p *Path) {
	for i := range p.Steps {
		for _, q := range p.Steps[i].Nested {
			q.Absolute = false
			if q.Steps[0].Axis == Descendant {
				// keep: [//x] is legal (descendant of the context node)
				_ = q
			}
			fixNested(q)
		}
	}
}

// TestRoundTrip: Parse(p.String()) must equal p, for random paths.
func TestRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(29))
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed ^ rng.Int63()))
		p := randPath(r, 0)
		q, err := Parse(p.String())
		if err != nil {
			t.Logf("Parse(%q): %v", p.String(), err)
			return false
		}
		return p.Equal(q)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 2000}); err != nil {
		t.Error(err)
	}
}

// TestRoundTripTexts: String of a parsed string re-parses to an equal AST.
func TestRoundTripTexts(t *testing.T) {
	inputs := []string{
		"/a/b/b", "a", "a/a/b/c", "/a/*/*/b", "/a/b/*/*", "/*/a/b", "/*/*/*/*",
		"a/b/*/*", "*/*/a/*/b", "a/*/*/b/c", "*/*/*/*", "/a//b/c", "/*/b//c/*",
		"a/b//c", "*/a/*/b//c/*/*", "/a[*/c[d]/e]//c[d]/e",
		`//x[@a=1][@b>=2]/y[z//w]`,
	}
	for _, in := range inputs {
		p := MustParse(in)
		q := MustParse(p.String())
		if !p.Equal(q) {
			t.Errorf("round trip of %q: %q != %q", in, p, q)
		}
	}
}

func TestClone(t *testing.T) {
	p := MustParse("/a[@x=1]/b[c/d]")
	q := p.Clone()
	if !p.Equal(q) {
		t.Fatal("clone not equal")
	}
	q.Steps[0].Attrs[0].Value = "2"
	q.Steps[1].Nested[0].Steps[0].Name = "z"
	if p.Steps[0].Attrs[0].Value != "1" {
		t.Error("clone shares attribute storage")
	}
	if p.Steps[1].Nested[0].Steps[0].Name != "c" {
		t.Error("clone shares nested storage")
	}
}

func TestHelpers(t *testing.T) {
	if !MustParse("/a/b").IsSinglePath() {
		t.Error("IsSinglePath(/a/b) = false")
	}
	if MustParse("/a[b]").IsSinglePath() {
		t.Error("IsSinglePath(/a[b]) = true")
	}
	if !MustParse("/a[b[@x=1]]").HasAttrFilters() {
		t.Error("HasAttrFilters missed a nested filter")
	}
	if MustParse("/a[b]/c").HasAttrFilters() {
		t.Error("HasAttrFilters false positive")
	}
	if got := MustParse("/a//b").Len(); got != 2 {
		t.Errorf("Len = %d", got)
	}
	if got := (Step{Wildcard: true}).Test(); got != "*" {
		t.Errorf("Test() = %q", got)
	}
}
