package xpath

import "testing"

// FuzzParseXPath: the parser must never panic, and anything it accepts
// must round-trip through String.
func FuzzParseXPath(f *testing.F) {
	for _, seed := range []string{
		"/a/b/c", "a//b", "*/a/*/b//c/*/*", "/a[@x=3]/b", "/a[*/c[d]/e]//c[d]/e",
		"//a", "/*/*/*", "a[@k]", `a[@k="v v"]`, "a[b[c]]", "[", "]", "a[",
		"a[@", "///", "a[@x!=]", "a/*[", "", " ", "/a /b",
	} {
		f.Add(seed)
	}
	f.Fuzz(func(t *testing.T, input string) {
		p, err := Parse(input)
		if err != nil {
			return
		}
		s := p.String()
		q, err := Parse(s)
		if err != nil {
			t.Fatalf("accepted %q but its String %q does not re-parse: %v", input, s, err)
		}
		if !p.Equal(q) {
			t.Fatalf("round trip changed %q: %q vs %q", input, s, q)
		}
	})
}
