package xpath

import (
	"fmt"
	"strings"
)

// ParseError describes a syntax error with its byte offset in the input.
type ParseError struct {
	Input string
	Pos   int
	Msg   string
}

func (e *ParseError) Error() string {
	return fmt.Sprintf("xpath: parse %q: at offset %d: %s", e.Input, e.Pos, e.Msg)
}

// Parse parses an XPath expression in the fragment supported by the paper.
//
// Grammar (whitespace allowed around operators and brackets):
//
//	path    := axis? step (axis step)*
//	axis    := "/" | "//"
//	step    := nametest filter*
//	nametest:= NAME | "*"
//	filter  := "[" "@" NAME (op value)? "]" | "[" path "]"
//	op      := "=" | "!=" | "<" | "<=" | ">" | ">="
//	value   := NUMBER | '"' ... '"' | "'" ... "'" | NAME
//
// A leading axis makes the path absolute. Nested paths inside filters are
// relative to their enclosing step.
func Parse(input string) (*Path, error) {
	p := &parser{input: input}
	path, err := p.parsePath(false)
	if err != nil {
		return nil, err
	}
	p.skipSpace()
	if p.pos != len(p.input) {
		return nil, p.errorf("unexpected %q", p.rest())
	}
	return path, nil
}

// MustParse is Parse that panics on error; intended for tests and constant
// expression tables.
func MustParse(input string) *Path {
	path, err := Parse(input)
	if err != nil {
		panic(err)
	}
	return path
}

type parser struct {
	input string
	pos   int
}

func (p *parser) errorf(format string, args ...any) error {
	return &ParseError{Input: p.input, Pos: p.pos, Msg: fmt.Sprintf(format, args...)}
}

func (p *parser) rest() string {
	const max = 12
	r := p.input[p.pos:]
	if len(r) > max {
		r = r[:max] + "..."
	}
	return r
}

func (p *parser) skipSpace() {
	for p.pos < len(p.input) && (p.input[p.pos] == ' ' || p.input[p.pos] == '\t') {
		p.pos++
	}
}

func (p *parser) peek() byte {
	if p.pos < len(p.input) {
		return p.input[p.pos]
	}
	return 0
}

// consumeAxis consumes "/" or "//" and reports which, or ok=false if the
// next token is not an axis.
func (p *parser) consumeAxis() (Axis, bool) {
	p.skipSpace()
	if p.peek() != '/' {
		return Child, false
	}
	p.pos++
	if p.peek() == '/' {
		p.pos++
		return Descendant, true
	}
	return Child, true
}

// parsePath parses a (possibly absolute) path. nested is true when
// parsing a nested path filter, which is always relative to its context
// node: a leading "//" there selects descendants of the context node
// rather than making the path absolute (a leading "/" is rejected).
func (p *parser) parsePath(nested bool) (*Path, error) {
	path := &Path{}
	axis, leading := p.consumeAxis()
	switch {
	case leading && nested:
		if axis == Child {
			return nil, p.errorf("nested path filter must be relative")
		}
		// leading "//" in a filter: descendant of the context node.
	case leading:
		path.Absolute = true
	default:
		axis = Child
	}
	for {
		step, err := p.parseStep(axis)
		if err != nil {
			return nil, err
		}
		path.Steps = append(path.Steps, step)
		save := p.pos
		next, ok := p.consumeAxis()
		if !ok {
			p.pos = save
			break
		}
		axis = next
	}
	if len(path.Steps) == 0 {
		return nil, p.errorf("empty path")
	}
	_ = nested
	return path, nil
}

func (p *parser) parseStep(axis Axis) (Step, error) {
	p.skipSpace()
	step := Step{Axis: axis}
	switch {
	case p.peek() == '*':
		p.pos++
		step.Wildcard = true
	default:
		name := p.scanName()
		if name == "" {
			return step, p.errorf("expected tag name or '*', found %q", p.rest())
		}
		step.Name = name
	}
	for {
		p.skipSpace()
		if p.peek() != '[' {
			return step, nil
		}
		p.pos++
		p.skipSpace()
		if p.peek() == '@' {
			p.pos++
			f, err := p.parseAttrFilter()
			if err != nil {
				return step, err
			}
			step.Attrs = append(step.Attrs, f)
		} else {
			sub, err := p.parsePath(true)
			if err != nil {
				return step, err
			}
			step.Nested = append(step.Nested, sub)
		}
		p.skipSpace()
		if p.peek() != ']' {
			return step, p.errorf("expected ']', found %q", p.rest())
		}
		p.pos++
	}
}

func (p *parser) parseAttrFilter() (AttrFilter, error) {
	name := p.scanName()
	if name == "" {
		return AttrFilter{}, p.errorf("expected attribute name, found %q", p.rest())
	}
	f := AttrFilter{Name: name, Op: AttrExists}
	p.skipSpace()
	switch p.peek() {
	case '=':
		p.pos++
		f.Op = AttrEQ
	case '!':
		p.pos++
		if p.peek() != '=' {
			return f, p.errorf("expected '=' after '!'")
		}
		p.pos++
		f.Op = AttrNE
	case '<':
		p.pos++
		f.Op = AttrLT
		if p.peek() == '=' {
			p.pos++
			f.Op = AttrLE
		}
	case '>':
		p.pos++
		f.Op = AttrGT
		if p.peek() == '=' {
			p.pos++
			f.Op = AttrGE
		}
	default:
		return f, nil // existence filter [@a]
	}
	val, err := p.parseValue()
	if err != nil {
		return f, err
	}
	f.Value = val
	return f, nil
}

func (p *parser) parseValue() (string, error) {
	p.skipSpace()
	switch c := p.peek(); {
	case c == '"' || c == '\'':
		quote := c
		p.pos++
		var b strings.Builder
		for p.pos < len(p.input) && p.input[p.pos] != quote {
			if p.input[p.pos] == '\\' && p.pos+1 < len(p.input) {
				p.pos++ // backslash escapes the next byte literally
			}
			b.WriteByte(p.input[p.pos])
			p.pos++
		}
		if p.pos == len(p.input) {
			return "", p.errorf("unterminated string literal")
		}
		p.pos++
		return b.String(), nil
	default:
		start := p.pos
		for p.pos < len(p.input) && isValueChar(p.input[p.pos]) {
			p.pos++
		}
		if p.pos == start {
			return "", p.errorf("expected value, found %q", p.rest())
		}
		return p.input[start:p.pos], nil
	}
}

// scanName scans a tag or attribute name (an approximation of an XML
// NCName: a letter or underscore followed by letters, digits, '_', '-',
// '.' or ':').
func (p *parser) scanName() string {
	start := p.pos
	if p.pos < len(p.input) && isNameStart(p.input[p.pos]) {
		p.pos++
		for p.pos < len(p.input) && isNameChar(p.input[p.pos]) {
			p.pos++
		}
	}
	return p.input[start:p.pos]
}

func isNameStart(c byte) bool {
	return c == '_' || (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z')
}

func isNameChar(c byte) bool {
	return isNameStart(c) || (c >= '0' && c <= '9') || c == '-' || c == '.' || c == ':'
}

func isValueChar(c byte) bool {
	return isNameChar(c)
}
