// Package xpath parses the XPath fragment used by the predicate-based
// filtering paper (Hou & Jacobsen, ICDE 2006): the child (/) and
// descendant (//) axes, name tests, wildcards (*), attribute filters
// ([@a op v]) and nested path filters ([p]).
//
// The package produces a small AST (Path, Step, AttrFilter) with a
// canonical string form; Parse and Path.String round-trip.
package xpath

import "strings"

// Axis identifies how a location step relates to the previous one.
type Axis int

const (
	// Child is the parent-child axis, written "/".
	Child Axis = iota
	// Descendant is the ancestor-descendant axis, written "//".
	Descendant
)

// String returns the XPath spelling of the axis.
func (a Axis) String() string {
	if a == Descendant {
		return "//"
	}
	return "/"
}

// AttrOp is a relational operator in an attribute filter.
type AttrOp int

const (
	// AttrExists tests mere presence of the attribute: [@a].
	AttrExists AttrOp = iota
	// AttrEQ is [@a = v].
	AttrEQ
	// AttrNE is [@a != v].
	AttrNE
	// AttrLT is [@a < v].
	AttrLT
	// AttrLE is [@a <= v].
	AttrLE
	// AttrGT is [@a > v].
	AttrGT
	// AttrGE is [@a >= v].
	AttrGE
)

var attrOpNames = map[AttrOp]string{
	AttrExists: "",
	AttrEQ:     "=",
	AttrNE:     "!=",
	AttrLT:     "<",
	AttrLE:     "<=",
	AttrGT:     ">",
	AttrGE:     ">=",
}

// String returns the XPath spelling of the operator ("" for AttrExists).
func (o AttrOp) String() string { return attrOpNames[o] }

// AttrFilter is an attribute-based filter attached to a location step,
// e.g. [@x = 3]. Value is kept as written; numeric comparison is applied
// when both sides parse as numbers (see Eval in package matcher).
type AttrFilter struct {
	Name  string
	Op    AttrOp
	Value string
}

// String returns the filter in canonical form, e.g. `[@x = "3"]` is
// rendered as [@x=3] (values are printed bare when possible, quoted when
// they contain characters that would not re-parse; inside quotes only the
// backslash and the quote itself are escaped).
func (f AttrFilter) String() string {
	var b strings.Builder
	b.WriteString("[@")
	b.WriteString(f.Name)
	if f.Op != AttrExists {
		b.WriteString(f.Op.String())
		if needsQuoting(f.Value) {
			b.WriteByte('"')
			for i := 0; i < len(f.Value); i++ {
				c := f.Value[i]
				if c == '"' || c == '\\' {
					b.WriteByte('\\')
				}
				b.WriteByte(c)
			}
			b.WriteByte('"')
		} else {
			b.WriteString(f.Value)
		}
	}
	b.WriteString("]")
	return b.String()
}

func needsQuoting(v string) bool {
	if v == "" {
		return true
	}
	for _, r := range v {
		switch {
		case r >= 'a' && r <= 'z', r >= 'A' && r <= 'Z', r >= '0' && r <= '9':
		case r == '_', r == '-', r == '.', r == ':':
		default:
			return true
		}
	}
	return false
}

// Step is a single location step: an axis, a name test (a tag name or the
// wildcard), and zero or more filters.
type Step struct {
	Axis     Axis
	Name     string // tag name; ignored when Wildcard
	Wildcard bool
	Attrs    []AttrFilter
	Nested   []*Path // nested path filters, e.g. the [d] in a[d]/e
}

// Test returns the name test as written: the tag name or "*".
func (s Step) Test() string {
	if s.Wildcard {
		return "*"
	}
	return s.Name
}

// String renders the step without its leading axis.
func (s Step) String() string {
	var b strings.Builder
	b.WriteString(s.Test())
	for _, a := range s.Attrs {
		b.WriteString(a.String())
	}
	for _, n := range s.Nested {
		b.WriteString("[")
		b.WriteString(n.String())
		b.WriteString("]")
	}
	return b.String()
}

// Path is a parsed XPath expression.
type Path struct {
	// Absolute reports whether the expression is anchored at the document
	// root (it was written with a leading "/" or "//").
	Absolute bool
	Steps    []Step
}

// String renders the path in canonical form; Parse(p.String()) yields an
// equal Path.
func (p *Path) String() string {
	var b strings.Builder
	for i, s := range p.Steps {
		if i > 0 || p.Absolute || s.Axis == Descendant {
			b.WriteString(s.Axis.String())
		}
		b.WriteString(s.String())
	}
	return b.String()
}

// IsSinglePath reports whether the expression is a single linear path,
// i.e. no step carries a nested path filter. Attribute filters are allowed.
func (p *Path) IsSinglePath() bool {
	for _, s := range p.Steps {
		if len(s.Nested) > 0 {
			return false
		}
	}
	return true
}

// HasAttrFilters reports whether any step (at any nesting depth) carries an
// attribute filter.
func (p *Path) HasAttrFilters() bool {
	for _, s := range p.Steps {
		if len(s.Attrs) > 0 {
			return true
		}
		for _, n := range s.Nested {
			if n.HasAttrFilters() {
				return true
			}
		}
	}
	return false
}

// Len returns the number of location steps of the top-level path.
func (p *Path) Len() int { return len(p.Steps) }

// Clone returns a deep copy of the path.
func (p *Path) Clone() *Path {
	q := &Path{Absolute: p.Absolute, Steps: make([]Step, len(p.Steps))}
	for i, s := range p.Steps {
		cs := s
		if len(s.Attrs) > 0 {
			cs.Attrs = append([]AttrFilter(nil), s.Attrs...)
		}
		if len(s.Nested) > 0 {
			cs.Nested = make([]*Path, len(s.Nested))
			for j, n := range s.Nested {
				cs.Nested[j] = n.Clone()
			}
		}
		q.Steps[i] = cs
	}
	return q
}

// Equal reports structural equality of two paths.
func (p *Path) Equal(q *Path) bool {
	if p.Absolute != q.Absolute || len(p.Steps) != len(q.Steps) {
		return false
	}
	for i := range p.Steps {
		if !stepEqual(p.Steps[i], q.Steps[i]) {
			return false
		}
	}
	return true
}

func stepEqual(a, b Step) bool {
	if a.Axis != b.Axis || a.Wildcard != b.Wildcard || (!a.Wildcard && a.Name != b.Name) {
		return false
	}
	if len(a.Attrs) != len(b.Attrs) || len(a.Nested) != len(b.Nested) {
		return false
	}
	for i := range a.Attrs {
		if a.Attrs[i] != b.Attrs[i] {
			return false
		}
	}
	for i := range a.Nested {
		if !a.Nested[i].Equal(b.Nested[i]) {
			return false
		}
	}
	return true
}
