package xpath

import (
	"strconv"
	"strings"
)

// Eval reports whether an attribute value satisfies the filter.
// Comparison is numeric when both the filter value and the attribute
// value parse as floating point numbers, and lexicographic otherwise;
// AttrExists is satisfied by any present value. This is the single source
// of truth for attribute comparison across all engines.
func (f AttrFilter) Eval(value string) bool {
	if f.Op == AttrExists {
		return true
	}
	if fn, err1 := strconv.ParseFloat(f.Value, 64); err1 == nil {
		if vn, err2 := strconv.ParseFloat(value, 64); err2 == nil {
			return f.cmpOK(compareFloat(vn, fn))
		}
	}
	return f.cmpOK(strings.Compare(value, f.Value))
}

func compareFloat(a, b float64) int {
	switch {
	case a < b:
		return -1
	case a > b:
		return 1
	}
	return 0
}

func (f AttrFilter) cmpOK(c int) bool {
	switch f.Op {
	case AttrEQ:
		return c == 0
	case AttrNE:
		return c != 0
	case AttrLT:
		return c < 0
	case AttrLE:
		return c <= 0
	case AttrGT:
		return c > 0
	case AttrGE:
		return c >= 0
	}
	return true
}
