// Package store implements the durable subscription store behind the
// filtering engine: an append-only, CRC32-C-checksummed write-ahead log of
// subscription operations (add sid expression / remove sid) plus an
// atomically-replaced snapshot file that compacts the log.
//
// The store exists to split the engine's lifecycle into a slow build phase
// and a fast, restartable serving phase: subscriptions survive process
// restarts, and recovery is a snapshot load plus a WAL replay instead of a
// full re-registration of the workload.
//
// Durability contract:
//
//   - Every operation acknowledged by AppendAdd/AppendRemove is on disk
//     (fsynced unless Options.NoSync) before the call returns.
//   - A crash at any point leaves at most a torn WAL tail; recovery
//     truncates the tail at the first corrupt record and keeps every
//     acknowledged operation before it.
//   - Snapshot replaces the snapshot file atomically (temp file + rename)
//     and only then truncates the WAL. A crash between the two leaves old
//     WAL records that replay idempotently over the new snapshot: an add
//     of an already-live sid and a remove of an unknown sid are no-ops,
//     and sids are never reissued, so replay converges to the same state.
//
// SID assignment is owned by the store: NextSID is strictly monotone,
// persisted in the snapshot, and advanced by replay, so a subscription id
// handed to a client remains valid — and is never reassigned to someone
// else — across any number of restarts.
package store

import (
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"sync"
	"time"

	"predfilter/internal/metrics"
)

// ErrStaleCursor reports a WAL-shipping cursor that no longer identifies
// a position in the live log: the epoch moved on (a snapshot compacted
// the log), the offset is past the tail, or the offset does not fall on a
// record boundary. The reader must resync from a full snapshot
// (ShipSnapshot) instead of tailing.
var ErrStaleCursor = errors.New("store: wal cursor is stale; resync from snapshot")

// Default file names inside a state directory.
const (
	walFile  = "wal.log"
	snapFile = "snapshot.snap"
)

// Options configures a Store.
type Options struct {
	// NoSync disables fsync on WAL appends and snapshot writes. The store
	// then survives process crashes (the page cache keeps the writes) but
	// not OS crashes or power loss. Intended for tests and benchmarks.
	NoSync bool
	// Metrics, when non-nil, receives WAL-append and snapshot latency
	// observations (the store histograms of internal/metrics).
	Metrics *metrics.Set
}

// Stats counts store activity. Recovery fields describe the last Open;
// the remaining counters accumulate over the store's lifetime.
type Stats struct {
	// Live is the number of live subscriptions.
	Live int
	// NextSID is the next subscription id to be assigned.
	NextSID uint32
	// SnapshotEntries is the number of entries loaded from the snapshot at
	// Open.
	SnapshotEntries int
	// ReplayedRecords is the number of intact WAL records replayed at Open.
	ReplayedRecords int
	// TornBytes is the number of torn-tail bytes truncated at Open.
	TornBytes int64
	// WALRecords is the number of records currently in the WAL (since the
	// last snapshot), including replayed ones.
	WALRecords int64
	// WALBytes is the WAL body size in bytes (header excluded).
	WALBytes int64
	// Appends is the number of records appended through this handle.
	Appends int64
	// Snapshots is the number of snapshots written through this handle.
	Snapshots int64
	// LastSnapshot is the wall-clock time of the last snapshot written
	// through this handle (zero if none).
	LastSnapshot time.Time
}

// Store is a durable subscription store rooted at one state directory.
// It is safe for concurrent use.
type Store struct {
	dir  string
	opts Options

	mu      sync.Mutex
	w       *wal
	live    map[uint32]string
	nextSID uint32
	closed  bool

	// epoch counts WAL resets (snapshot compactions) since Open. Within
	// one epoch the WAL body is append-only, so (epoch, byte offset) is a
	// stable shipping cursor; a reset invalidates every outstanding cursor.
	epoch int64

	walRecords int64
	stats      Stats
}

// Open opens (creating if necessary) the store in dir and recovers its
// state: the latest snapshot is loaded, the WAL is replayed over it, and
// any torn WAL tail is truncated at the first corrupt record.
func Open(dir string, opts Options) (*Store, error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, err
	}
	entries, nextSID, _, err := readSnapshot(filepath.Join(dir, snapFile))
	if err != nil {
		return nil, err
	}
	s := &Store{
		dir:     dir,
		opts:    opts,
		live:    make(map[uint32]string, len(entries)),
		nextSID: nextSID,
	}
	for _, e := range entries {
		s.live[e.SID] = e.Expr
		if e.SID >= s.nextSID {
			s.nextSID = e.SID + 1
		}
	}
	s.stats.SnapshotEntries = len(entries)

	w, recs, torn, err := openWAL(filepath.Join(dir, walFile), !opts.NoSync)
	if err != nil {
		return nil, err
	}
	s.w = w
	s.stats.TornBytes = torn
	s.stats.ReplayedRecords = len(recs)
	s.walRecords = int64(len(recs))
	for _, r := range recs {
		s.apply(r)
	}
	return s, nil
}

// apply folds one WAL record into the live set. Replay is deliberately
// tolerant: after a crash between snapshot and WAL truncation the WAL
// still holds records already compacted into the snapshot, so an add of a
// live sid and a remove of an unknown sid are no-ops (sids are unique and
// never reassigned, so "already live" can only mean "already applied").
func (s *Store) apply(r rec) {
	if r.remove {
		delete(s.live, r.sid)
		return
	}
	if _, ok := s.live[r.sid]; !ok {
		s.live[r.sid] = r.expr
	}
	if r.sid >= s.nextSID {
		s.nextSID = r.sid + 1
	}
}

// NextSID returns the id the next AppendAdd will assign.
func (s *Store) NextSID() uint32 {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.nextSID
}

// AppendAdd durably records the addition of a subscription and returns
// once it is on disk. sid must be the store's NextSID: ids are assigned by
// the store, in order, exactly once.
func (s *Store) AppendAdd(sid uint32, expr string) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return fmt.Errorf("store: closed")
	}
	if sid != s.nextSID {
		return fmt.Errorf("store: add sid %d out of order (next is %d)", sid, s.nextSID)
	}
	if len(expr) > maxRecord-5 {
		return fmt.Errorf("store: expression of %d bytes exceeds record limit", len(expr))
	}
	payload := appendAddPayload(make([]byte, 0, 5+len(expr)), sid, expr)
	t0 := time.Now()
	if err := s.w.append(payload); err != nil {
		return err
	}
	s.opts.Metrics.ObserveWALAppend(time.Since(t0))
	s.live[sid] = expr
	s.nextSID = sid + 1
	s.walRecords++
	s.stats.Appends++
	return nil
}

// AppendRemove durably records the removal of a live subscription.
func (s *Store) AppendRemove(sid uint32) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return fmt.Errorf("store: closed")
	}
	if _, ok := s.live[sid]; !ok {
		return fmt.Errorf("store: remove of unknown sid %d", sid)
	}
	payload := appendRemovePayload(make([]byte, 0, 5), sid)
	t0 := time.Now()
	if err := s.w.append(payload); err != nil {
		return err
	}
	s.opts.Metrics.ObserveWALAppend(time.Since(t0))
	delete(s.live, sid)
	s.walRecords++
	s.stats.Appends++
	return nil
}

// AppendAddAt durably records the addition of a subscription under a
// caller-assigned sid. It exists for cluster deployments, where sids are
// assigned globally by a coordinator and each shard's store holds a
// sparse subset of them (and for WAL-shipped standbys replaying a
// primary's log). The sid must not be live; NextSID advances past it, so
// locally assigned ids (AppendAdd) never collide with shipped ones.
func (s *Store) AppendAddAt(sid uint32, expr string) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return fmt.Errorf("store: closed")
	}
	if _, ok := s.live[sid]; ok {
		return fmt.Errorf("store: add of already-live sid %d", sid)
	}
	if len(expr) > maxRecord-5 {
		return fmt.Errorf("store: expression of %d bytes exceeds record limit", len(expr))
	}
	payload := appendAddPayload(make([]byte, 0, 5+len(expr)), sid, expr)
	t0 := time.Now()
	if err := s.w.append(payload); err != nil {
		return err
	}
	s.opts.Metrics.ObserveWALAppend(time.Since(t0))
	s.live[sid] = expr
	if sid >= s.nextSID {
		s.nextSID = sid + 1
	}
	s.walRecords++
	s.stats.Appends++
	return nil
}

// Rec is one decoded WAL operation, as surfaced to WAL-shipping readers:
// either the addition of SID under Expr, or (Remove set) the removal of
// SID.
type Rec struct {
	Remove bool
	SID    uint32
	Expr   string
}

// WALEpoch returns the current shipping epoch. The epoch increments on
// every snapshot compaction; a (epoch, offset) cursor from ReadFrom is
// valid exactly as long as the epoch stands.
func (s *Store) WALEpoch() int64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.epoch
}

// ReadFrom reads the WAL records at body offset off of the given epoch
// and returns them with the cursor for the next call. It reads only the
// tail [off, size) — not the whole log — so a shipping poll is
// proportional to what changed since the last one. An empty tail returns
// (nil, off, nil).
//
// ErrStaleCursor means the cursor no longer identifies a position in the
// live log (the epoch moved on, or off is past the tail or inside a
// record); the reader must resync from ShipSnapshot. Torn-tail handling
// is unaffected: recovery truncated any tear at Open, appends under the
// store lock are atomic with respect to readers, and every record
// returned here passed the same length/CRC/payload checks replay uses.
func (s *Store) ReadFrom(epoch, off int64) ([]Rec, int64, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return nil, 0, fmt.Errorf("store: closed")
	}
	if epoch != s.epoch || off < 0 || off > s.w.bodySize() {
		return nil, 0, ErrStaleCursor
	}
	if off == s.w.bodySize() {
		return nil, off, nil
	}
	data, err := s.w.readBody(off, s.w.bodySize()-off)
	if err != nil {
		return nil, 0, err
	}
	recs, valid := scanRecords(data)
	if int64(valid) != int64(len(data)) {
		// The acknowledged body is intact by construction, so a scan that
		// stops early can only mean off was not a record boundary.
		return nil, 0, ErrStaleCursor
	}
	out := make([]Rec, len(recs))
	for i, r := range recs {
		out[i] = Rec{Remove: r.remove, SID: r.sid, Expr: r.expr}
	}
	return out, off + int64(valid), nil
}

// ShipSnapshot returns the full live set plus the WAL cursor that
// immediately follows it, atomically: applying the entries and then
// tailing ReadFrom from (epoch, offset) reproduces every subsequent
// operation exactly once. This is the catch-up half of the WAL-shipping
// protocol.
func (s *Store) ShipSnapshot() (entries []Entry, nextSID uint32, epoch, offset int64) {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.entriesLocked(), s.nextSID, s.epoch, s.w.bodySize()
}

// Entries returns the live subscriptions, ascending by sid. Ascending sid
// order is chronological registration order, so replaying Entries into a
// fresh engine reproduces the surviving registration sequence.
func (s *Store) Entries() []Entry {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.entriesLocked()
}

func (s *Store) entriesLocked() []Entry {
	out := make([]Entry, 0, len(s.live))
	for sid, expr := range s.live {
		out = append(out, Entry{SID: sid, Expr: expr})
	}
	sort.Slice(out, func(i, j int) bool { return out[i].SID < out[j].SID })
	return out
}

// Expr returns the expression registered under a live sid.
func (s *Store) Expr(sid uint32) (string, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	expr, ok := s.live[sid]
	return expr, ok
}

// Snapshot compacts the store: it atomically replaces the snapshot file
// with the current live set and then truncates the WAL. Restart cost after
// a snapshot is proportional to the live set, not to operation history.
func (s *Store) Snapshot() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return fmt.Errorf("store: closed")
	}
	path := filepath.Join(s.dir, snapFile)
	t0 := time.Now()
	if err := writeSnapshot(path, s.entriesLocked(), s.nextSID, !s.opts.NoSync); err != nil {
		return err
	}
	s.opts.Metrics.ObserveSnapshot(time.Since(t0))
	// The snapshot is durable; the WAL records it subsumes can go. A crash
	// before this truncate only means those records replay (idempotently)
	// on the next Open.
	if err := s.w.reset(); err != nil {
		return err
	}
	s.epoch++
	s.walRecords = 0
	s.stats.Snapshots++
	s.stats.LastSnapshot = time.Now()
	return nil
}

// WALRecords returns the number of records accumulated in the WAL since
// the last snapshot — the input to size-triggered snapshot policies.
func (s *Store) WALRecords() int64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.walRecords
}

// Stats returns a snapshot of the store counters.
func (s *Store) Stats() Stats {
	s.mu.Lock()
	defer s.mu.Unlock()
	st := s.stats
	st.Live = len(s.live)
	st.NextSID = s.nextSID
	st.WALRecords = s.walRecords
	st.WALBytes = s.w.bodySize()
	return st
}

// Dir returns the store's state directory.
func (s *Store) Dir() string { return s.dir }

// Close closes the store's files. It does not snapshot; callers that want
// a compacted shutdown call Snapshot first.
func (s *Store) Close() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return nil
	}
	s.closed = true
	return s.w.close()
}
