package store

import (
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"os"
	"path/filepath"
	"sort"
	"sync"
	"time"
)

// Coordinator state store: the durable half of the cluster coordinator.
//
// The coordinator's authoritative state — the global SID counter, the
// sid→(owner shard, expression) routing table, and the orphan set of
// burned sids — used to live only in memory, which made a coordinator
// restart depend on every shard being reachable for recovery. CoordStore
// persists that state with the same machinery as the subscription store:
// an append-only CRC32-C-framed WAL of routing operations plus an
// atomically-replaced snapshot that compacts it. A kill -9'd coordinator
// reopens its CoordStore and is fully routed again with zero shard
// round-trips.
//
// WAL record payloads (framed exactly like the subscription WAL):
//
//	'A' [4]sid [2]ownerLen [ownerLen]owner [n]expression — route sid to owner
//	'R' [4]sid                                           — remove sid
//	'B' [4]sid [n]shard                                  — burn sid as orphan on shard
//	'P' [4]sid                                           — reap (clear) an orphan
//	'O' [4]sid [n]owner                                  — re-route sid (migration)
//
// Replay is idempotent under the same rules as the subscription store:
// an add overwrites, a remove/reap of an unknown sid is a no-op, and the
// SID counter only ever advances, so records that survive a crash
// between snapshot and WAL truncation converge to the same state.

const (
	coordWALMagic  = "XFCWAL01"
	coordSnapMagic = "XFCSNP01"

	coordWALFile  = "coord.wal"
	coordSnapFile = "coord.snap"

	opCoordAdd    = 'A'
	opCoordRemove = 'R'
	opCoordBurn   = 'B'
	opCoordReap   = 'P'
	opCoordOwner  = 'O'
)

// CoordSub is one routed subscription: the shard that holds it and the
// expression as the coordinator accepted it.
type CoordSub struct {
	Owner string
	Expr  string
}

// CoordState is a copy of the coordinator store's recovered state.
type CoordState struct {
	// Subs maps each live sid to its owning shard and expression.
	Subs map[uint32]CoordSub
	// Orphans maps each burned sid to the shard that may still hold an
	// unrecorded copy of it.
	Orphans map[uint32]string
	// NextSID is the next subscription id the coordinator will assign.
	NextSID uint32
}

// CoordStats counts coordinator-store activity, mirroring Stats.
type CoordStats struct {
	Live            int    `json:"live"`
	Orphans         int    `json:"orphans"`
	NextSID         uint32 `json:"next_sid"`
	SnapshotEntries int    `json:"snapshot_entries"`
	ReplayedRecords int    `json:"replayed_records"`
	TornBytes       int64  `json:"torn_bytes"`
	WALRecords      int64  `json:"wal_records"`
	Appends         int64  `json:"appends"`
	Snapshots       int64  `json:"snapshots"`
}

// coordRec is one decoded coordinator WAL operation.
type coordRec struct {
	op    byte
	sid   uint32
	owner string // add, owner, burn (shard name)
	expr  string // add
}

// CoordStore is the coordinator's durable routing state, rooted in the
// same kind of state directory as a Store (the file names do not
// collide, so a coordinator that is also a shard could share one — they
// normally do not). Safe for concurrent use.
type CoordStore struct {
	dir  string
	opts Options

	mu      sync.Mutex
	w       *wal
	subs    map[uint32]CoordSub
	orphans map[uint32]string
	nextSID uint32
	closed  bool

	walRecords int64
	stats      CoordStats
}

// OpenCoord opens (creating if necessary) the coordinator store in dir
// and recovers its state: snapshot load, WAL replay, torn tail truncated
// at the first corrupt record.
func OpenCoord(dir string, opts Options) (*CoordStore, error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, err
	}
	subs, orphans, nextSID, err := readCoordSnapshot(filepath.Join(dir, coordSnapFile))
	if err != nil {
		return nil, err
	}
	cs := &CoordStore{
		dir:     dir,
		opts:    opts,
		subs:    subs,
		orphans: orphans,
		nextSID: nextSID,
	}
	cs.stats.SnapshotEntries = len(subs) + len(orphans)

	w, body, torn, err := openRawWAL(filepath.Join(dir, coordWALFile), coordWALMagic, !opts.NoSync)
	if err != nil {
		return nil, err
	}
	recs, valid := scanCoordRecords(body)
	if valid != len(body) {
		// A frame that does not decode as a coordinator op is a tear for
		// this format; truncate it like any other.
		w.size = int64(len(coordWALMagic)) + int64(valid)
		torn += int64(len(body)) - int64(valid)
		if terr := w.f.Truncate(w.size); terr != nil {
			w.f.Close()
			return nil, terr
		}
		if serr := w.fsync(); serr != nil {
			w.f.Close()
			return nil, serr
		}
	}
	cs.w = w
	cs.stats.TornBytes = torn
	cs.stats.ReplayedRecords = len(recs)
	cs.walRecords = int64(len(recs))
	for _, r := range recs {
		cs.apply(r)
	}
	return cs, nil
}

// apply folds one WAL record into the state. Replay tolerance mirrors
// Store.apply: records already compacted into the snapshot re-apply as
// no-ops, and the SID counter only advances.
func (cs *CoordStore) apply(r coordRec) {
	switch r.op {
	case opCoordAdd:
		cs.subs[r.sid] = CoordSub{Owner: r.owner, Expr: r.expr}
		if r.sid >= cs.nextSID {
			cs.nextSID = r.sid + 1
		}
	case opCoordRemove:
		delete(cs.subs, r.sid)
	case opCoordBurn:
		cs.orphans[r.sid] = r.owner
		if r.sid >= cs.nextSID {
			cs.nextSID = r.sid + 1
		}
	case opCoordReap:
		delete(cs.orphans, r.sid)
	case opCoordOwner:
		if sub, ok := cs.subs[r.sid]; ok {
			sub.Owner = r.owner
			cs.subs[r.sid] = sub
		}
	}
}

// scanCoordRecords decodes the framed coordinator operations in body and
// returns them plus the byte offset of the first frame whose payload does
// not decode — len(body) when all do.
func scanCoordRecords(body []byte) (recs []coordRec, valid int) {
	off := 0
	for {
		if len(body)-off < frameSize {
			return recs, off
		}
		n := int(binary.LittleEndian.Uint32(body[off:]))
		if n > maxRecord || len(body)-off-frameSize < n {
			return recs, off
		}
		payload := body[off+frameSize : off+frameSize+n]
		if crc32.Checksum(payload, castagnoli) != binary.LittleEndian.Uint32(body[off+4:]) {
			return recs, off
		}
		r, ok := decodeCoordPayload(payload)
		if !ok {
			return recs, off
		}
		recs = append(recs, r)
		off += frameSize + n
	}
}

// decodeCoordPayload decodes one coordinator operation payload; false
// means corruption (recovery truncates there).
func decodeCoordPayload(p []byte) (coordRec, bool) {
	if len(p) < 5 {
		return coordRec{}, false
	}
	r := coordRec{op: p[0], sid: binary.LittleEndian.Uint32(p[1:5])}
	rest := p[5:]
	switch r.op {
	case opCoordAdd:
		if len(rest) < 2 {
			return coordRec{}, false
		}
		ol := int(binary.LittleEndian.Uint16(rest))
		if len(rest)-2 < ol {
			return coordRec{}, false
		}
		r.owner = string(rest[2 : 2+ol])
		r.expr = string(rest[2+ol:])
		if r.owner == "" {
			return coordRec{}, false
		}
	case opCoordRemove, opCoordReap:
		if len(rest) != 0 {
			return coordRec{}, false
		}
	case opCoordBurn, opCoordOwner:
		if len(rest) == 0 {
			return coordRec{}, false
		}
		r.owner = string(rest)
	default:
		return coordRec{}, false
	}
	return r, true
}

// encodeCoordPayload is the inverse of decodeCoordPayload.
func encodeCoordPayload(buf []byte, r coordRec) []byte {
	buf = append(buf, r.op)
	buf = binary.LittleEndian.AppendUint32(buf, r.sid)
	switch r.op {
	case opCoordAdd:
		buf = binary.LittleEndian.AppendUint16(buf, uint16(len(r.owner)))
		buf = append(buf, r.owner...)
		buf = append(buf, r.expr...)
	case opCoordBurn, opCoordOwner:
		buf = append(buf, r.owner...)
	}
	return buf
}

// append durably logs one operation and folds it into the in-memory
// state. Callers hold cs.mu.
func (cs *CoordStore) append(r coordRec) error {
	if cs.closed {
		return fmt.Errorf("store: coordinator store closed")
	}
	payload := encodeCoordPayload(make([]byte, 0, 16+len(r.owner)+len(r.expr)), r)
	if len(payload) > maxRecord {
		return fmt.Errorf("store: coordinator record of %d bytes exceeds record limit", len(payload))
	}
	t0 := time.Now()
	if err := cs.w.append(payload); err != nil {
		return err
	}
	cs.opts.Metrics.ObserveWALAppend(time.Since(t0))
	cs.apply(r)
	cs.walRecords++
	cs.stats.Appends++
	return nil
}

// AppendAdd durably routes sid to owner under expr. sid must be the
// store's NextSID or beyond (the coordinator assigns ids in order but
// burn records can leave holes).
func (cs *CoordStore) AppendAdd(sid uint32, owner, expr string) error {
	cs.mu.Lock()
	defer cs.mu.Unlock()
	if owner == "" {
		return fmt.Errorf("store: add sid %d with empty owner", sid)
	}
	if len(owner) > 1<<16-1 {
		return fmt.Errorf("store: owner name of %d bytes exceeds record limit", len(owner))
	}
	if _, live := cs.subs[sid]; live {
		return fmt.Errorf("store: add of already-routed sid %d", sid)
	}
	return cs.append(coordRec{op: opCoordAdd, sid: sid, owner: owner, expr: expr})
}

// AppendRemove durably removes a routed sid.
func (cs *CoordStore) AppendRemove(sid uint32) error {
	cs.mu.Lock()
	defer cs.mu.Unlock()
	if _, live := cs.subs[sid]; !live {
		return fmt.Errorf("store: remove of unrouted sid %d", sid)
	}
	return cs.append(coordRec{op: opCoordRemove, sid: sid})
}

// AppendBurn durably records sid as burned: the shard may hold an
// unrecorded copy, and the SID sequence advances past it.
func (cs *CoordStore) AppendBurn(sid uint32, shard string) error {
	cs.mu.Lock()
	defer cs.mu.Unlock()
	if shard == "" {
		return fmt.Errorf("store: burn sid %d with empty shard", sid)
	}
	return cs.append(coordRec{op: opCoordBurn, sid: sid, owner: shard})
}

// AppendReap durably clears a burned sid once its shard-side copy is
// confirmed gone (or gone with its shard).
func (cs *CoordStore) AppendReap(sid uint32) error {
	cs.mu.Lock()
	defer cs.mu.Unlock()
	if _, ok := cs.orphans[sid]; !ok {
		return fmt.Errorf("store: reap of unknown orphan sid %d", sid)
	}
	return cs.append(coordRec{op: opCoordReap, sid: sid})
}

// AppendOwner durably re-routes a live sid to a new owner (migration).
func (cs *CoordStore) AppendOwner(sid uint32, owner string) error {
	cs.mu.Lock()
	defer cs.mu.Unlock()
	if owner == "" {
		return fmt.Errorf("store: re-route sid %d to empty owner", sid)
	}
	if _, live := cs.subs[sid]; !live {
		return fmt.Errorf("store: re-route of unrouted sid %d", sid)
	}
	return cs.append(coordRec{op: opCoordOwner, sid: sid, owner: owner})
}

// State returns a copy of the recovered routing state.
func (cs *CoordStore) State() CoordState {
	cs.mu.Lock()
	defer cs.mu.Unlock()
	st := CoordState{
		Subs:    make(map[uint32]CoordSub, len(cs.subs)),
		Orphans: make(map[uint32]string, len(cs.orphans)),
		NextSID: cs.nextSID,
	}
	for sid, sub := range cs.subs {
		st.Subs[sid] = sub
	}
	for sid, shard := range cs.orphans {
		st.Orphans[sid] = shard
	}
	return st
}

// Snapshot compacts the store: the snapshot file is atomically replaced
// with the current routing state and the WAL truncated, exactly like
// Store.Snapshot.
func (cs *CoordStore) Snapshot() error {
	cs.mu.Lock()
	defer cs.mu.Unlock()
	if cs.closed {
		return fmt.Errorf("store: coordinator store closed")
	}
	t0 := time.Now()
	if err := writeCoordSnapshot(filepath.Join(cs.dir, coordSnapFile), cs.subs, cs.orphans, cs.nextSID, !cs.opts.NoSync); err != nil {
		return err
	}
	cs.opts.Metrics.ObserveSnapshot(time.Since(t0))
	if err := cs.w.reset(); err != nil {
		return err
	}
	cs.walRecords = 0
	cs.stats.Snapshots++
	return nil
}

// WALRecords returns the records accumulated since the last snapshot —
// the input to size-triggered snapshot policies.
func (cs *CoordStore) WALRecords() int64 {
	cs.mu.Lock()
	defer cs.mu.Unlock()
	return cs.walRecords
}

// Stats returns a snapshot of the store counters.
func (cs *CoordStore) Stats() CoordStats {
	cs.mu.Lock()
	defer cs.mu.Unlock()
	st := cs.stats
	st.Live = len(cs.subs)
	st.Orphans = len(cs.orphans)
	st.NextSID = cs.nextSID
	st.WALRecords = cs.walRecords
	return st
}

// Close closes the store's files without snapshotting.
func (cs *CoordStore) Close() error {
	cs.mu.Lock()
	defer cs.mu.Unlock()
	if cs.closed {
		return nil
	}
	cs.closed = true
	return cs.w.close()
}

// Coordinator snapshot file layout:
//
//	[8]  magic "XFCSNP01"
//	[4]  uint32 LE routed-subscription count
//	[4]  uint32 LE orphan count
//	[4]  uint32 LE next sid
//	[*]  one framed record per routed subscription, payload as opCoordAdd
//	     (op byte included), ascending by sid
//	[*]  one framed record per orphan, payload as opCoordBurn, ascending
//
// Same contract as the subscription snapshot: written to a temp file,
// fsynced, renamed; damage is a hard error, never a silent partial load.
func writeCoordSnapshot(path string, subs map[uint32]CoordSub, orphans map[uint32]string, nextSID uint32, sync bool) error {
	subIDs := make([]uint32, 0, len(subs))
	for sid := range subs {
		subIDs = append(subIDs, sid)
	}
	sort.Slice(subIDs, func(i, j int) bool { return subIDs[i] < subIDs[j] })
	orphIDs := make([]uint32, 0, len(orphans))
	for sid := range orphans {
		orphIDs = append(orphIDs, sid)
	}
	sort.Slice(orphIDs, func(i, j int) bool { return orphIDs[i] < orphIDs[j] })

	buf := make([]byte, 0, 20+len(subIDs)*48+len(orphIDs)*24)
	buf = append(buf, coordSnapMagic...)
	buf = binary.LittleEndian.AppendUint32(buf, uint32(len(subIDs)))
	buf = binary.LittleEndian.AppendUint32(buf, uint32(len(orphIDs)))
	buf = binary.LittleEndian.AppendUint32(buf, nextSID)
	payload := make([]byte, 0, 64)
	for _, sid := range subIDs {
		sub := subs[sid]
		payload = encodeCoordPayload(payload[:0], coordRec{op: opCoordAdd, sid: sid, owner: sub.Owner, expr: sub.Expr})
		buf = appendFrame(buf, payload)
	}
	for _, sid := range orphIDs {
		payload = encodeCoordPayload(payload[:0], coordRec{op: opCoordBurn, sid: sid, owner: orphans[sid]})
		buf = appendFrame(buf, payload)
	}

	dir := filepath.Dir(path)
	tmp, err := os.CreateTemp(dir, ".coord-snapshot-*.tmp")
	if err != nil {
		return err
	}
	defer os.Remove(tmp.Name()) // no-op after successful rename
	if _, err := tmp.Write(buf); err != nil {
		tmp.Close()
		return err
	}
	if sync {
		if err := tmp.Sync(); err != nil {
			tmp.Close()
			return err
		}
	}
	if err := tmp.Close(); err != nil {
		return err
	}
	if err := os.Rename(tmp.Name(), path); err != nil {
		return err
	}
	if sync {
		return syncDir(dir)
	}
	return nil
}

// readCoordSnapshot loads the coordinator snapshot at path. A missing
// file returns empty maps and nextSID 0.
func readCoordSnapshot(path string) (subs map[uint32]CoordSub, orphans map[uint32]string, nextSID uint32, err error) {
	subs = make(map[uint32]CoordSub)
	orphans = make(map[uint32]string)
	data, err := os.ReadFile(path)
	if os.IsNotExist(err) {
		return subs, orphans, 0, nil
	}
	if err != nil {
		return nil, nil, 0, err
	}
	if len(data) < len(coordSnapMagic)+12 || string(data[:len(coordSnapMagic)]) != coordSnapMagic {
		return nil, nil, 0, fmt.Errorf("store: %s: not a coordinator snapshot (bad magic)", path)
	}
	nsubs := binary.LittleEndian.Uint32(data[len(coordSnapMagic):])
	norph := binary.LittleEndian.Uint32(data[len(coordSnapMagic)+4:])
	nextSID = binary.LittleEndian.Uint32(data[len(coordSnapMagic)+8:])
	body := data[len(coordSnapMagic)+12:]

	off := 0
	total := nsubs + norph
	for i := uint32(0); i < total; i++ {
		if len(body)-off < frameSize {
			return nil, nil, 0, fmt.Errorf("store: %s: truncated coordinator snapshot (%d of %d entries)", path, i, total)
		}
		n := int(binary.LittleEndian.Uint32(body[off:]))
		sum := binary.LittleEndian.Uint32(body[off+4:])
		if n > maxRecord || len(body)-off-frameSize < n {
			return nil, nil, 0, fmt.Errorf("store: %s: truncated coordinator snapshot (%d of %d entries)", path, i, total)
		}
		payload := body[off+frameSize : off+frameSize+n]
		if crc32.Checksum(payload, castagnoli) != sum {
			return nil, nil, 0, fmt.Errorf("store: %s: coordinator snapshot entry %d fails checksum", path, i)
		}
		r, ok := decodeCoordPayload(payload)
		if !ok {
			return nil, nil, 0, fmt.Errorf("store: %s: coordinator snapshot entry %d malformed", path, i)
		}
		switch {
		case i < nsubs && r.op == opCoordAdd:
			subs[r.sid] = CoordSub{Owner: r.owner, Expr: r.expr}
		case i >= nsubs && r.op == opCoordBurn:
			orphans[r.sid] = r.owner
		default:
			return nil, nil, 0, fmt.Errorf("store: %s: coordinator snapshot entry %d has op %q out of section", path, i, r.op)
		}
		off += frameSize + n
	}
	return subs, orphans, nextSID, nil
}
