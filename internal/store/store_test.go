package store

import (
	"path/filepath"
	"reflect"
	"testing"
)

func mustOpen(t *testing.T, dir string) *Store {
	t.Helper()
	s, err := Open(dir, Options{NoSync: true})
	if err != nil {
		t.Fatalf("Open(%s): %v", dir, err)
	}
	return s
}

func mustAdd(t *testing.T, s *Store, expr string) uint32 {
	t.Helper()
	sid := s.NextSID()
	if err := s.AppendAdd(sid, expr); err != nil {
		t.Fatalf("AppendAdd(%d, %q): %v", sid, expr, err)
	}
	return sid
}

func wantEntries(t *testing.T, s *Store, want []Entry) {
	t.Helper()
	got := s.Entries()
	if len(got) == 0 && len(want) == 0 {
		return
	}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("Entries = %v, want %v", got, want)
	}
}

func TestEmptyStateDir(t *testing.T) {
	dir := t.TempDir()
	s := mustOpen(t, dir)
	wantEntries(t, s, nil)
	if got := s.NextSID(); got != 0 {
		t.Fatalf("NextSID = %d, want 0", got)
	}
	st := s.Stats()
	if st.SnapshotEntries != 0 || st.ReplayedRecords != 0 || st.TornBytes != 0 {
		t.Fatalf("fresh store reports recovery activity: %+v", st)
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	// Reopening the (now header-only) directory is equally empty.
	s2 := mustOpen(t, dir)
	defer s2.Close()
	wantEntries(t, s2, nil)
}

func TestWALOnlyRecovery(t *testing.T) {
	dir := t.TempDir()
	s := mustOpen(t, dir)
	a := mustAdd(t, s, "/a/b")
	b := mustAdd(t, s, "//c[@k=v]")
	c := mustAdd(t, s, "/a/b") // duplicate expression, distinct sid
	if err := s.AppendRemove(b); err != nil {
		t.Fatal(err)
	}
	s.Close()

	s2 := mustOpen(t, dir)
	defer s2.Close()
	wantEntries(t, s2, []Entry{{a, "/a/b"}, {c, "/a/b"}})
	if got := s2.NextSID(); got != 3 {
		t.Fatalf("NextSID = %d, want 3", got)
	}
	if st := s2.Stats(); st.ReplayedRecords != 4 || st.SnapshotEntries != 0 {
		t.Fatalf("recovery stats = %+v, want 4 replayed, 0 snapshot", st)
	}
}

func TestSnapshotOnlyRecovery(t *testing.T) {
	dir := t.TempDir()
	s := mustOpen(t, dir)
	a := mustAdd(t, s, "/x")
	b := mustAdd(t, s, "/y//z")
	mustAdd(t, s, "/gone")
	if err := s.AppendRemove(2); err != nil {
		t.Fatal(err)
	}
	if err := s.Snapshot(); err != nil {
		t.Fatal(err)
	}
	if got := s.WALRecords(); got != 0 {
		t.Fatalf("WALRecords after snapshot = %d, want 0", got)
	}
	s.Close()

	s2 := mustOpen(t, dir)
	defer s2.Close()
	wantEntries(t, s2, []Entry{{a, "/x"}, {b, "/y//z"}})
	st := s2.Stats()
	if st.SnapshotEntries != 2 || st.ReplayedRecords != 0 {
		t.Fatalf("recovery stats = %+v, want 2 snapshot entries, 0 replayed", st)
	}
	// The removed sid 2 was compacted away, but its id must not be reissued.
	if got := s2.NextSID(); got != 3 {
		t.Fatalf("NextSID = %d, want 3 (removed sid must not be reissued)", got)
	}
}

func TestSnapshotPlusWALRecovery(t *testing.T) {
	dir := t.TempDir()
	s := mustOpen(t, dir)
	a := mustAdd(t, s, "/pre")
	if err := s.Snapshot(); err != nil {
		t.Fatal(err)
	}
	post := mustAdd(t, s, "/post")
	if err := s.AppendRemove(a); err != nil {
		t.Fatal(err)
	}
	s.Close()

	s2 := mustOpen(t, dir)
	defer s2.Close()
	wantEntries(t, s2, []Entry{{post, "/post"}})
	st := s2.Stats()
	if st.SnapshotEntries != 1 || st.ReplayedRecords != 2 {
		t.Fatalf("recovery stats = %+v, want 1 snapshot entry, 2 replayed", st)
	}
}

func TestDoubleRecoveryIdempotent(t *testing.T) {
	dir := t.TempDir()
	s := mustOpen(t, dir)
	mustAdd(t, s, "/a")
	mustAdd(t, s, "/b")
	s.AppendRemove(0)
	s.Close()

	s1 := mustOpen(t, dir)
	first := s1.Entries()
	next1 := s1.NextSID()
	s1.Close()

	s2 := mustOpen(t, dir)
	defer s2.Close()
	if !reflect.DeepEqual(s2.Entries(), first) || s2.NextSID() != next1 {
		t.Fatalf("second recovery diverged: %v/%d vs %v/%d",
			s2.Entries(), s2.NextSID(), first, next1)
	}
	if st := s2.Stats(); st.TornBytes != 0 {
		t.Fatalf("second recovery truncated %d bytes of an intact log", st.TornBytes)
	}
}

func TestRemovedSIDNeverReissued(t *testing.T) {
	dir := t.TempDir()
	s := mustOpen(t, dir)
	seen := map[uint32]bool{}
	for i := 0; i < 5; i++ {
		sid := mustAdd(t, s, "/a")
		if seen[sid] {
			t.Fatalf("sid %d issued twice", sid)
		}
		seen[sid] = true
		if err := s.AppendRemove(sid); err != nil {
			t.Fatal(err)
		}
	}
	s.Close()
	// Across a restart too.
	s2 := mustOpen(t, dir)
	defer s2.Close()
	sid := mustAdd(t, s2, "/a")
	if seen[sid] {
		t.Fatalf("sid %d reissued after restart", sid)
	}
}

func TestAppendValidation(t *testing.T) {
	s := mustOpen(t, t.TempDir())
	defer s.Close()
	if err := s.AppendAdd(7, "/a"); err == nil {
		t.Fatal("out-of-order AppendAdd accepted")
	}
	if err := s.AppendRemove(0); err == nil {
		t.Fatal("AppendRemove of unknown sid accepted")
	}
	mustAdd(t, s, "/a")
	if err := s.AppendAdd(0, "/b"); err == nil {
		t.Fatal("AppendAdd of already-assigned sid accepted")
	}
}

// TestReplayIdempotentOverSnapshot simulates a crash in the window between
// writing the snapshot and truncating the WAL: the WAL then still holds
// every record the snapshot already compacted. Replay must converge to the
// same state.
func TestReplayIdempotentOverSnapshot(t *testing.T) {
	dir := t.TempDir()
	s := mustOpen(t, dir)
	mustAdd(t, s, "/a")
	mustAdd(t, s, "/b")
	s.AppendRemove(0)
	mustAdd(t, s, "/c")

	walPath := filepath.Join(dir, walFile)
	pre := readFile(t, walPath)
	if err := s.Snapshot(); err != nil { // truncates the WAL
		t.Fatal(err)
	}
	want := s.Entries()
	wantNext := s.NextSID()
	s.Close()

	// Put the pre-snapshot records back, as if the truncate never happened.
	writeFile(t, walPath, pre)

	s2 := mustOpen(t, dir)
	defer s2.Close()
	if !reflect.DeepEqual(s2.Entries(), want) {
		t.Fatalf("replay over snapshot diverged: %v, want %v", s2.Entries(), want)
	}
	if s2.NextSID() != wantNext {
		t.Fatalf("NextSID = %d, want %d", s2.NextSID(), wantNext)
	}
}
