package store

import (
	"errors"
	"reflect"
	"testing"
)

// readAll is the follower's tailing step: read everything past the
// cursor, failing the test on any error.
func readAll(t *testing.T, s *Store, epoch, off int64) ([]Rec, int64) {
	t.Helper()
	recs, next, err := s.ReadFrom(epoch, off)
	if err != nil {
		t.Fatalf("ReadFrom(%d, %d): %v", epoch, off, err)
	}
	return recs, next
}

func TestReadFromTailsIncrementally(t *testing.T) {
	s := mustOpen(t, t.TempDir())
	defer s.Close()

	epoch := s.WALEpoch()
	recs, next := readAll(t, s, epoch, 0)
	if len(recs) != 0 || next != 0 {
		t.Fatalf("empty log: got %d recs, next %d", len(recs), next)
	}

	a := mustAdd(t, s, "/a/b")
	b := mustAdd(t, s, "/a/c")
	recs, next = readAll(t, s, epoch, 0)
	want := []Rec{{SID: a, Expr: "/a/b"}, {SID: b, Expr: "/a/c"}}
	if !reflect.DeepEqual(recs, want) {
		t.Fatalf("ReadFrom = %+v, want %+v", recs, want)
	}

	// The cursor only sees what changed since the last poll.
	if err := s.AppendRemove(a); err != nil {
		t.Fatal(err)
	}
	recs, next2 := readAll(t, s, epoch, next)
	if !reflect.DeepEqual(recs, []Rec{{Remove: true, SID: a}}) {
		t.Fatalf("tail ReadFrom = %+v, want the single remove", recs)
	}
	// An idle poll returns an empty tail and the same cursor.
	recs, next3 := readAll(t, s, epoch, next2)
	if len(recs) != 0 || next3 != next2 {
		t.Fatalf("idle poll: got %d recs, cursor %d -> %d", len(recs), next2, next3)
	}
}

func TestReadFromStaleCursor(t *testing.T) {
	s := mustOpen(t, t.TempDir())
	defer s.Close()
	mustAdd(t, s, "/a/b")
	epoch := s.WALEpoch()
	_, next := readAll(t, s, epoch, 0)

	// Mid-record offsets are rejected, not misdecoded.
	if _, _, err := s.ReadFrom(epoch, next-1); !errors.Is(err, ErrStaleCursor) {
		t.Fatalf("mid-record offset: err = %v, want ErrStaleCursor", err)
	}
	// Offsets past the tail are rejected.
	if _, _, err := s.ReadFrom(epoch, next+1); !errors.Is(err, ErrStaleCursor) {
		t.Fatalf("past-tail offset: err = %v, want ErrStaleCursor", err)
	}

	// A snapshot compacts the log and invalidates every cursor of the old
	// epoch, even offset 0.
	if err := s.Snapshot(); err != nil {
		t.Fatal(err)
	}
	if _, _, err := s.ReadFrom(epoch, 0); !errors.Is(err, ErrStaleCursor) {
		t.Fatalf("old-epoch cursor after snapshot: err = %v, want ErrStaleCursor", err)
	}
	if got := s.WALEpoch(); got != epoch+1 {
		t.Fatalf("WALEpoch after snapshot = %d, want %d", got, epoch+1)
	}
}

func TestShipSnapshotHandsOffToTail(t *testing.T) {
	s := mustOpen(t, t.TempDir())
	defer s.Close()
	a := mustAdd(t, s, "/a")
	mustAdd(t, s, "/b")

	entries, nextSID, epoch, off := s.ShipSnapshot()
	if len(entries) != 2 || nextSID != 2 {
		t.Fatalf("ShipSnapshot = %v entries, nextSID %d", entries, nextSID)
	}
	// Operations after the snapshot appear exactly once, via the cursor.
	if err := s.AppendRemove(a); err != nil {
		t.Fatal(err)
	}
	recs, _ := readAll(t, s, epoch, off)
	if !reflect.DeepEqual(recs, []Rec{{Remove: true, SID: a}}) {
		t.Fatalf("post-snapshot tail = %+v, want the single remove", recs)
	}
}

func TestAppendAddAtSparseSIDs(t *testing.T) {
	dir := t.TempDir()
	s := mustOpen(t, dir)
	// A shard in a cluster holds a sparse subset of globally assigned sids.
	if err := s.AppendAddAt(3, "/a"); err != nil {
		t.Fatal(err)
	}
	if err := s.AppendAddAt(7, "/b"); err != nil {
		t.Fatal(err)
	}
	if err := s.AppendAddAt(7, "/c"); err == nil {
		t.Fatal("AppendAddAt of a live sid succeeded")
	}
	// NextSID advanced past the sparse ids, so local assignment cannot
	// collide with shipped ones.
	if got := s.NextSID(); got != 8 {
		t.Fatalf("NextSID = %d, want 8", got)
	}
	local := mustAdd(t, s, "/d")
	if local != 8 {
		t.Fatalf("local sid = %d, want 8", local)
	}
	want := []Entry{{3, "/a"}, {7, "/b"}, {8, "/d"}}
	wantEntries(t, s, want)
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	// Sparse sids recover like any other: replay is sid-faithful.
	s2 := mustOpen(t, dir)
	defer s2.Close()
	wantEntries(t, s2, want)
	if got := s2.NextSID(); got != 9 {
		t.Fatalf("recovered NextSID = %d, want 9", got)
	}
}
