package store

import (
	"os"
	"path/filepath"
	"reflect"
	"testing"
)

// Fault-injection tests: every way a crash can damage the WAL — a torn
// tail at any byte offset, flipped payload or checksum bytes, garbage
// appended past the last record — must recover to a clean prefix of the
// acknowledged operations, never to an error or to invented state.

func readFile(t *testing.T, path string) []byte {
	t.Helper()
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	return data
}

func writeFile(t *testing.T, path string, data []byte) {
	t.Helper()
	if err := os.WriteFile(path, data, 0o644); err != nil {
		t.Fatal(err)
	}
}

// buildWAL writes ops into a fresh store and returns the state dir, the
// raw WAL bytes, and the byte offset at which each record ends (so tests
// can tear the file at precise record boundaries).
func buildWAL(t *testing.T, exprs []string) (dir string, raw []byte, ends []int64) {
	t.Helper()
	dir = t.TempDir()
	s := mustOpen(t, dir)
	path := filepath.Join(dir, walFile)
	for _, e := range exprs {
		mustAdd(t, s, e)
		fi, err := os.Stat(path)
		if err != nil {
			t.Fatal(err)
		}
		ends = append(ends, fi.Size())
	}
	s.Close()
	return dir, readFile(t, path), ends
}

// TestKillMidWrite truncates the WAL at every possible byte offset —
// every prefix a crash mid-write could leave — and checks that recovery
// yields exactly the operations whose records are complete at that offset,
// and that the file is physically truncated back to that clean prefix.
func TestKillMidWrite(t *testing.T) {
	exprs := []string{"/a", "/b/c", "//d[@k=v]", "/e//f"}
	dir, raw, ends := buildWAL(t, exprs)
	walPath := filepath.Join(dir, walFile)

	for cut := 0; cut <= len(raw); cut++ {
		writeFile(t, walPath, raw[:cut])
		s, err := Open(dir, Options{NoSync: true})
		if err != nil {
			t.Fatalf("cut=%d: Open: %v", cut, err)
		}
		// Number of operations fully acknowledged at this cut.
		want := 0
		for _, end := range ends {
			if int64(cut) >= end {
				want++
			}
		}
		got := s.Entries()
		if len(got) != want {
			t.Fatalf("cut=%d: recovered %d entries, want %d", cut, len(got), want)
		}
		for i, e := range got {
			if e.SID != uint32(i) || e.Expr != exprs[i] {
				t.Fatalf("cut=%d: entry %d = %+v, want {%d %s}", cut, i, e, i, exprs[i])
			}
		}
		// The torn tail must be gone from disk: recovery truncates, and a
		// fresh append after recovery extends an intact file.
		sid := mustAdd(t, s, "/post-crash")
		s.Close()
		s2 := mustOpen(t, dir)
		got2 := s2.Entries()
		if len(got2) != want+1 || got2[len(got2)-1] != (Entry{sid, "/post-crash"}) {
			t.Fatalf("cut=%d: post-crash append lost: %v", cut, got2)
		}
		if st := s2.Stats(); st.TornBytes != 0 {
			t.Fatalf("cut=%d: second recovery still found %d torn bytes", cut, st.TornBytes)
		}
		s2.Close()
	}
}

// TestFlippedByte corrupts each byte of one record in the middle of the
// WAL (frame, checksum, and payload bytes alike) and checks that recovery
// keeps everything before the corrupt record and truncates it and
// everything after.
func TestFlippedByte(t *testing.T) {
	exprs := []string{"/a", "/b/c", "//d[@k=v]", "/e//f"}
	dir, raw, ends := buildWAL(t, exprs)
	walPath := filepath.Join(dir, walFile)

	// Corrupt record 2 (offsets ends[1]..ends[2]).
	for off := ends[1]; off < ends[2]; off++ {
		mut := append([]byte(nil), raw...)
		mut[off] ^= 0x40
		writeFile(t, walPath, mut)
		s, err := Open(dir, Options{NoSync: true})
		if err != nil {
			t.Fatalf("off=%d: Open: %v", off, err)
		}
		got := s.Entries()
		// A flip inside the length prefix can only shrink/grow the claimed
		// record, which breaks the CRC or the length sanity check; in every
		// case records 0 and 1 survive and record 2 onward is dropped.
		want := []Entry{{0, "/a"}, {1, "/b/c"}}
		if !reflect.DeepEqual(got, want) {
			t.Fatalf("off=%d: recovered %v, want %v", off, got, want)
		}
		s.Close()
	}
}

// TestGarbageTail appends random junk after the last intact record.
func TestGarbageTail(t *testing.T) {
	exprs := []string{"/a", "/b"}
	dir, raw, _ := buildWAL(t, exprs)
	walPath := filepath.Join(dir, walFile)
	junk := []byte{0xff, 0x13, 0x37, 0x00, 0x00, 0xde, 0xad, 0xbe, 0xef, 0x01}
	writeFile(t, walPath, append(append([]byte(nil), raw...), junk...))

	s := mustOpen(t, dir)
	defer s.Close()
	wantEntries(t, s, []Entry{{0, "/a"}, {1, "/b"}})
	if st := s.Stats(); st.TornBytes != int64(len(junk)) {
		t.Fatalf("TornBytes = %d, want %d", st.TornBytes, len(junk))
	}
}

// TestTornHeader covers a crash during the very first header write: no
// operation can have been acknowledged yet, so the store restarts empty.
func TestTornHeader(t *testing.T) {
	dir := t.TempDir()
	writeFile(t, filepath.Join(dir, walFile), []byte(walMagic[:3]))
	s := mustOpen(t, dir)
	defer s.Close()
	wantEntries(t, s, nil)
	mustAdd(t, s, "/a")
	wantEntries(t, s, []Entry{{0, "/a"}})
}

// TestForeignFile rejects a WAL-named file that is not a WAL, instead of
// silently destroying it.
func TestForeignFile(t *testing.T) {
	dir := t.TempDir()
	writeFile(t, filepath.Join(dir, walFile), []byte("definitely not a WAL"))
	if _, err := Open(dir, Options{NoSync: true}); err == nil {
		t.Fatal("Open accepted a non-WAL file")
	}
}

// TestCorruptSnapshot is the contract difference between the two files:
// snapshots are written atomically, so damage is a hard error, never a
// silent partial load.
func TestCorruptSnapshot(t *testing.T) {
	dir := t.TempDir()
	s := mustOpen(t, dir)
	mustAdd(t, s, "/a")
	mustAdd(t, s, "/b")
	if err := s.Snapshot(); err != nil {
		t.Fatal(err)
	}
	s.Close()

	snapPath := filepath.Join(dir, snapFile)
	raw := readFile(t, snapPath)
	for _, tc := range []struct {
		name string
		mut  func([]byte) []byte
	}{
		{"flipped payload byte", func(b []byte) []byte {
			m := append([]byte(nil), b...)
			m[len(m)-1] ^= 0x01
			return m
		}},
		{"truncated entry", func(b []byte) []byte { return b[:len(b)-3] }},
		{"bad magic", func(b []byte) []byte {
			m := append([]byte(nil), b...)
			m[0] = 'Z'
			return m
		}},
	} {
		writeFile(t, snapPath, tc.mut(raw))
		if _, err := Open(dir, Options{NoSync: true}); err == nil {
			t.Fatalf("%s: Open accepted a corrupt snapshot", tc.name)
		}
	}
	// Restore and confirm the baseline still recovers.
	writeFile(t, snapPath, raw)
	s2 := mustOpen(t, dir)
	defer s2.Close()
	wantEntries(t, s2, []Entry{{0, "/a"}, {1, "/b"}})
}
