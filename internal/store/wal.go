package store

import (
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"os"
)

// WAL file layout:
//
//	[8]  magic "XFWAL001"
//	[*]  records, each framed as
//	       [4] uint32 LE payload length
//	       [4] uint32 LE CRC32-C of the payload
//	       [n] payload
//
// A record payload is one subscription operation:
//
//	'A' [4]sid [n]expression   — add sid with canonical expression
//	'R' [4]sid                 — remove sid
//
// Appends are sequential and (unless Options.NoSync) fsynced before the
// operation is acknowledged, so the only damage a crash can leave is a
// torn tail: a record whose frame, payload, or checksum was not written
// completely. Recovery scans from the header, stops at the first record
// that fails the length/CRC/payload checks, and truncates the file there —
// every acknowledged operation before the tear survives.

const (
	walMagic = "XFWAL001"
	// maxRecord bounds a record payload; a larger length prefix cannot be a
	// real record and is treated as corruption.
	maxRecord = 1 << 20

	opAdd    = 'A'
	opRemove = 'R'

	frameSize = 8 // length + checksum
)

// castagnoli is the CRC32-C table (hardware-accelerated on most targets).
var castagnoli = crc32.MakeTable(crc32.Castagnoli)

// rec is one decoded WAL operation.
type rec struct {
	remove bool
	sid    uint32
	expr   string
}

// appendFrame frames payload into buf: length, CRC32-C, payload.
func appendFrame(buf, payload []byte) []byte {
	buf = binary.LittleEndian.AppendUint32(buf, uint32(len(payload)))
	buf = binary.LittleEndian.AppendUint32(buf, crc32.Checksum(payload, castagnoli))
	return append(buf, payload...)
}

// appendAddPayload encodes an add operation.
func appendAddPayload(buf []byte, sid uint32, expr string) []byte {
	buf = append(buf, opAdd)
	buf = binary.LittleEndian.AppendUint32(buf, sid)
	return append(buf, expr...)
}

// appendRemovePayload encodes a remove operation.
func appendRemovePayload(buf []byte, sid uint32) []byte {
	buf = append(buf, opRemove)
	return binary.LittleEndian.AppendUint32(buf, sid)
}

// decodePayload decodes one operation payload. It returns false on any
// malformed payload (unknown op byte, short sid, trailing bytes on a
// remove) — during recovery that means corruption, not a version skew.
func decodePayload(p []byte) (rec, bool) {
	if len(p) < 5 {
		return rec{}, false
	}
	sid := binary.LittleEndian.Uint32(p[1:5])
	switch p[0] {
	case opAdd:
		return rec{sid: sid, expr: string(p[5:])}, true
	case opRemove:
		if len(p) != 5 {
			return rec{}, false
		}
		return rec{remove: true, sid: sid}, true
	}
	return rec{}, false
}

// scanFrames walks the framed payloads in data (a WAL body, after the
// magic header) and returns the byte offset of the first frame-level
// tear — a short frame, an implausible length, or a checksum mismatch —
// or len(data) when every frame is intact. Payload semantics are not
// checked; that is per-format.
func scanFrames(data []byte) (valid int) {
	off := 0
	for {
		if len(data)-off < frameSize {
			return off
		}
		n := int(binary.LittleEndian.Uint32(data[off:]))
		sum := binary.LittleEndian.Uint32(data[off+4:])
		if n > maxRecord || len(data)-off-frameSize < n {
			return off
		}
		if crc32.Checksum(data[off+frameSize:off+frameSize+n], castagnoli) != sum {
			return off
		}
		off += frameSize + n
	}
}

// scanRecords walks the framed records in data (the WAL body, after the
// magic header) and returns the decoded records plus the byte offset of
// the first tear — len(data) when the whole body is intact.
func scanRecords(data []byte) (recs []rec, valid int) {
	off := 0
	for {
		if len(data)-off < frameSize {
			return recs, off
		}
		n := int(binary.LittleEndian.Uint32(data[off:]))
		sum := binary.LittleEndian.Uint32(data[off+4:])
		if n > maxRecord || len(data)-off-frameSize < n {
			return recs, off
		}
		payload := data[off+frameSize : off+frameSize+n]
		if crc32.Checksum(payload, castagnoli) != sum {
			return recs, off
		}
		r, ok := decodePayload(payload)
		if !ok {
			return recs, off
		}
		recs = append(recs, r)
		off += frameSize + n
	}
}

// wal is the open write-ahead log file, positioned for appends. magic
// identifies the log's format — the subscription WAL and the coordinator
// WAL share the framing but must never be confused for one another.
type wal struct {
	f     *os.File
	magic string
	size  int64 // current file size; appends go here
	sync  bool
	buf   []byte // reusable append buffer
}

// openRawWAL opens (creating if necessary) the WAL at path, scans its
// framed body, and truncates any torn tail so subsequent appends extend
// an intact file. It returns the open log, the raw body prefix that
// passed the frame checks, and the number of torn-tail bytes discarded.
// Payload decoding is the caller's business (record vocabularies differ
// per log format); every returned frame passed the length and CRC
// checks.
func openRawWAL(path, magic string, sync bool) (*wal, []byte, int64, error) {
	f, err := os.OpenFile(path, os.O_RDWR|os.O_CREATE, 0o644)
	if err != nil {
		return nil, nil, 0, err
	}
	data, err := os.ReadFile(path)
	if err != nil {
		f.Close()
		return nil, nil, 0, err
	}
	w := &wal{f: f, magic: magic, sync: sync}

	switch {
	case len(data) == 0:
		// Fresh log: write the header.
		if err := w.writeHeader(); err != nil {
			f.Close()
			return nil, nil, 0, err
		}
		return w, nil, 0, nil
	case len(data) < len(magic):
		// A tear inside the header itself (crash during the very first
		// write): no record can have been acknowledged, start over.
		if err := w.reset(); err != nil {
			f.Close()
			return nil, nil, 0, err
		}
		return w, nil, int64(len(data)), nil
	case string(data[:len(magic)]) != magic:
		f.Close()
		return nil, nil, 0, fmt.Errorf("store: %s: not a %s WAL (bad magic)", path, magic)
	}

	body := data[len(magic):]
	valid := scanFrames(body)
	torn := int64(len(body)) - int64(valid)
	w.size = int64(len(magic)) + int64(valid)
	if torn > 0 {
		if err := f.Truncate(w.size); err != nil {
			f.Close()
			return nil, nil, 0, err
		}
		if err := w.fsync(); err != nil {
			f.Close()
			return nil, nil, 0, err
		}
	}
	return w, body[:valid], torn, nil
}

// openWAL opens the subscription WAL at path and decodes its records.
func openWAL(path string, sync bool) (*wal, []rec, int64, error) {
	w, body, torn, err := openRawWAL(path, walMagic, sync)
	if err != nil {
		return nil, nil, 0, err
	}
	recs, valid := scanRecords(body)
	if valid != len(body) {
		// A frame whose payload does not decode as a subscription op is a
		// tear for this format: truncate it like any other.
		w.size = int64(len(walMagic)) + int64(valid)
		torn += int64(len(body)) - int64(valid)
		if terr := w.f.Truncate(w.size); terr != nil {
			w.f.Close()
			return nil, nil, 0, terr
		}
		if serr := w.fsync(); serr != nil {
			w.f.Close()
			return nil, nil, 0, serr
		}
	}
	return w, recs, torn, nil
}

func (w *wal) writeHeader() error {
	if _, err := w.f.WriteAt([]byte(w.magic), 0); err != nil {
		return err
	}
	w.size = int64(len(w.magic))
	return w.fsync()
}

// reset empties the log back to a bare header.
func (w *wal) reset() error {
	if err := w.f.Truncate(0); err != nil {
		return err
	}
	return w.writeHeader()
}

// append writes one framed payload at the tail and makes it durable.
func (w *wal) append(payload []byte) error {
	w.buf = appendFrame(w.buf[:0], payload)
	if _, err := w.f.WriteAt(w.buf, w.size); err != nil {
		return err
	}
	w.size += int64(len(w.buf))
	return w.fsync()
}

// bodySize returns the record-body size in bytes (header excluded).
func (w *wal) bodySize() int64 { return w.size - int64(len(w.magic)) }

// readBody reads the record-body range [off, off+n) into a fresh buffer.
// The range must lie within the current body; appends only extend the
// file, so a range captured under the store lock stays valid until the
// next reset.
func (w *wal) readBody(off, n int64) ([]byte, error) {
	buf := make([]byte, n)
	if _, err := w.f.ReadAt(buf, int64(len(w.magic))+off); err != nil {
		return nil, err
	}
	return buf, nil
}

func (w *wal) fsync() error {
	if !w.sync {
		return nil
	}
	return w.f.Sync()
}

func (w *wal) close() error { return w.f.Close() }
