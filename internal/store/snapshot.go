package store

import (
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"os"
	"path/filepath"
	"sort"
)

// Snapshot file layout:
//
//	[8]  magic "XFSNAP01"
//	[4]  uint32 LE entry count
//	[4]  uint32 LE next sid (preserves sid monotonicity across compaction:
//	     the highest assigned sid may belong to a removed, compacted-away
//	     subscription, and must never be reissued)
//	[*]  one framed record per live subscription, same framing as the WAL,
//	     payload [4]sid [n]expression, ordered by ascending sid
//
// The snapshot is only ever written to a temporary file in the same
// directory, fsynced, and renamed over the previous one, so a crash during
// snapshotting leaves the old snapshot untouched. Unlike the WAL, a
// snapshot that fails validation is a hard error: rename is atomic, so a
// bad snapshot means external damage, and silently dropping it would
// silently drop compacted subscriptions.

const snapMagic = "XFSNAP01"

// Entry is one live subscription in the store.
type Entry struct {
	SID  uint32
	Expr string
}

// writeSnapshot atomically replaces the snapshot at path with the given
// live set. entries need not be sorted; the file is written sid-ascending.
func writeSnapshot(path string, entries []Entry, nextSID uint32, sync bool) error {
	sorted := append([]Entry(nil), entries...)
	sort.Slice(sorted, func(i, j int) bool { return sorted[i].SID < sorted[j].SID })

	buf := make([]byte, 0, 16+len(sorted)*32)
	buf = append(buf, snapMagic...)
	buf = binary.LittleEndian.AppendUint32(buf, uint32(len(sorted)))
	buf = binary.LittleEndian.AppendUint32(buf, nextSID)
	payload := make([]byte, 0, 64)
	for _, e := range sorted {
		payload = payload[:0]
		payload = binary.LittleEndian.AppendUint32(payload, e.SID)
		payload = append(payload, e.Expr...)
		buf = appendFrame(buf, payload)
	}

	dir := filepath.Dir(path)
	tmp, err := os.CreateTemp(dir, ".snapshot-*.tmp")
	if err != nil {
		return err
	}
	defer os.Remove(tmp.Name()) // no-op after successful rename
	if _, err := tmp.Write(buf); err != nil {
		tmp.Close()
		return err
	}
	if sync {
		if err := tmp.Sync(); err != nil {
			tmp.Close()
			return err
		}
	}
	if err := tmp.Close(); err != nil {
		return err
	}
	if err := os.Rename(tmp.Name(), path); err != nil {
		return err
	}
	if sync {
		return syncDir(dir)
	}
	return nil
}

// readSnapshot loads the snapshot at path. A missing file is not an
// error: it returns (nil, 0, false, nil).
func readSnapshot(path string) (entries []Entry, nextSID uint32, ok bool, err error) {
	data, err := os.ReadFile(path)
	if os.IsNotExist(err) {
		return nil, 0, false, nil
	}
	if err != nil {
		return nil, 0, false, err
	}
	if len(data) < len(snapMagic)+8 || string(data[:len(snapMagic)]) != snapMagic {
		return nil, 0, false, fmt.Errorf("store: %s: not a subscription snapshot (bad magic)", path)
	}
	count := binary.LittleEndian.Uint32(data[len(snapMagic):])
	nextSID = binary.LittleEndian.Uint32(data[len(snapMagic)+4:])
	body := data[len(snapMagic)+8:]

	off := 0
	for i := uint32(0); i < count; i++ {
		if len(body)-off < frameSize {
			return nil, 0, false, fmt.Errorf("store: %s: truncated snapshot (%d of %d entries)", path, i, count)
		}
		n := int(binary.LittleEndian.Uint32(body[off:]))
		sum := binary.LittleEndian.Uint32(body[off+4:])
		if n > maxRecord || len(body)-off-frameSize < n {
			return nil, 0, false, fmt.Errorf("store: %s: truncated snapshot (%d of %d entries)", path, i, count)
		}
		payload := body[off+frameSize : off+frameSize+n]
		if crc32.Checksum(payload, castagnoli) != sum {
			return nil, 0, false, fmt.Errorf("store: %s: snapshot entry %d fails checksum", path, i)
		}
		if len(payload) < 4 {
			return nil, 0, false, fmt.Errorf("store: %s: snapshot entry %d malformed", path, i)
		}
		entries = append(entries, Entry{
			SID:  binary.LittleEndian.Uint32(payload),
			Expr: string(payload[4:]),
		})
		off += frameSize + n
	}
	return entries, nextSID, true, nil
}

// syncDir fsyncs a directory so a just-renamed file's directory entry is
// durable.
func syncDir(dir string) error {
	d, err := os.Open(dir)
	if err != nil {
		return err
	}
	defer d.Close()
	return d.Sync()
}
