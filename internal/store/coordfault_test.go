package store

import (
	"os"
	"path/filepath"
	"reflect"
	"testing"
)

// Fault-injection tests for the coordinator store, mirroring
// fault_test.go: a crash can tear the coordinator WAL at any byte
// offset, and recovery must yield exactly the prefix of acknowledged
// routing operations — never an error, never invented routes.

func mustOpenCoord(t *testing.T, dir string) *CoordStore {
	t.Helper()
	cs, err := OpenCoord(dir, Options{NoSync: true})
	if err != nil {
		t.Fatal(err)
	}
	return cs
}

// coordOp is one scripted routing operation for buildCoordWAL.
type coordOp struct {
	op    byte
	sid   uint32
	owner string
	expr  string
}

func applyCoordOp(t *testing.T, cs *CoordStore, o coordOp) {
	t.Helper()
	var err error
	switch o.op {
	case opCoordAdd:
		err = cs.AppendAdd(o.sid, o.owner, o.expr)
	case opCoordRemove:
		err = cs.AppendRemove(o.sid)
	case opCoordBurn:
		err = cs.AppendBurn(o.sid, o.owner)
	case opCoordReap:
		err = cs.AppendReap(o.sid)
	case opCoordOwner:
		err = cs.AppendOwner(o.sid, o.owner)
	default:
		t.Fatalf("unknown op %q", o.op)
	}
	if err != nil {
		t.Fatal(err)
	}
}

// coordStateAfter folds ops[:n] into the expected recovered state.
func coordStateAfter(ops []coordOp, n int) CoordState {
	st := CoordState{Subs: map[uint32]CoordSub{}, Orphans: map[uint32]string{}}
	for _, o := range ops[:n] {
		switch o.op {
		case opCoordAdd:
			st.Subs[o.sid] = CoordSub{Owner: o.owner, Expr: o.expr}
			if o.sid >= st.NextSID {
				st.NextSID = o.sid + 1
			}
		case opCoordRemove:
			delete(st.Subs, o.sid)
		case opCoordBurn:
			st.Orphans[o.sid] = o.owner
			if o.sid >= st.NextSID {
				st.NextSID = o.sid + 1
			}
		case opCoordReap:
			delete(st.Orphans, o.sid)
		case opCoordOwner:
			if sub, ok := st.Subs[o.sid]; ok {
				sub.Owner = o.owner
				st.Subs[o.sid] = sub
			}
		}
	}
	return st
}

// buildCoordWAL writes a mixed operation sequence — adds, a burn, a
// reap, a remove, a migration — into a fresh coordinator store and
// returns the state dir, the raw WAL bytes, and each record's end
// offset.
func buildCoordWAL(t *testing.T) (dir string, ops []coordOp, raw []byte, ends []int64) {
	t.Helper()
	ops = []coordOp{
		{op: opCoordAdd, sid: 0, owner: "shard-0", expr: "/a"},
		{op: opCoordAdd, sid: 1, owner: "shard-1", expr: "/b/c"},
		{op: opCoordBurn, sid: 2, owner: "shard-0"},
		{op: opCoordAdd, sid: 3, owner: "shard-0", expr: "//d[@k=v]"},
		{op: opCoordOwner, sid: 1, owner: "shard-2"},
		{op: opCoordReap, sid: 2},
		{op: opCoordRemove, sid: 0},
		{op: opCoordAdd, sid: 4, owner: "shard-2", expr: "/e//f"},
	}
	dir = t.TempDir()
	cs := mustOpenCoord(t, dir)
	path := filepath.Join(dir, coordWALFile)
	for _, o := range ops {
		applyCoordOp(t, cs, o)
		fi, err := os.Stat(path)
		if err != nil {
			t.Fatal(err)
		}
		ends = append(ends, fi.Size())
	}
	cs.Close()
	return dir, ops, readFile(t, path), ends
}

// TestCoordStoreKillMidWrite truncates the coordinator WAL at every
// possible byte offset and checks that recovery yields exactly the
// operations whose records are complete at that offset, and that a
// post-crash append lands on an intact file.
func TestCoordStoreKillMidWrite(t *testing.T) {
	dir, ops, raw, ends := buildCoordWAL(t)
	walPath := filepath.Join(dir, coordWALFile)

	for cut := 0; cut <= len(raw); cut++ {
		writeFile(t, walPath, raw[:cut])
		cs, err := OpenCoord(dir, Options{NoSync: true})
		if err != nil {
			t.Fatalf("cut=%d: OpenCoord: %v", cut, err)
		}
		complete := 0
		for _, end := range ends {
			if int64(cut) >= end {
				complete++
			}
		}
		want := coordStateAfter(ops, complete)
		got := cs.State()
		if !reflect.DeepEqual(got, want) {
			t.Fatalf("cut=%d (%d complete): recovered %+v, want %+v", cut, complete, got, want)
		}
		// Post-crash append extends an intact file and survives reopen.
		sid := got.NextSID
		if err := cs.AppendAdd(sid, "shard-9", "/post-crash"); err != nil {
			t.Fatalf("cut=%d: post-crash add: %v", cut, err)
		}
		cs.Close()
		cs2 := mustOpenCoord(t, dir)
		got2 := cs2.State()
		if got2.Subs[sid] != (CoordSub{Owner: "shard-9", Expr: "/post-crash"}) || got2.NextSID != sid+1 {
			t.Fatalf("cut=%d: post-crash append lost: %+v", cut, got2)
		}
		if st := cs2.Stats(); st.TornBytes != 0 {
			t.Fatalf("cut=%d: second recovery still found %d torn bytes", cut, st.TornBytes)
		}
		cs2.Close()
	}
}

// TestCoordStoreFlippedByte corrupts each byte of a record in the middle
// of the coordinator WAL and checks that recovery keeps everything
// before the corrupt record and drops it and everything after.
func TestCoordStoreFlippedByte(t *testing.T) {
	dir, ops, raw, ends := buildCoordWAL(t)
	walPath := filepath.Join(dir, coordWALFile)

	// Corrupt record 3 (the second add, offsets ends[2]..ends[3]).
	for off := ends[2]; off < ends[3]; off++ {
		mut := append([]byte(nil), raw...)
		mut[off] ^= 0x40
		writeFile(t, walPath, mut)
		cs, err := OpenCoord(dir, Options{NoSync: true})
		if err != nil {
			t.Fatalf("off=%d: OpenCoord: %v", off, err)
		}
		want := coordStateAfter(ops, 3)
		if got := cs.State(); !reflect.DeepEqual(got, want) {
			t.Fatalf("off=%d: recovered %+v, want %+v", off, got, want)
		}
		cs.Close()
	}
}

// TestCoordStoreForeignWAL rejects a subscription WAL (or any other
// file) masquerading as a coordinator WAL instead of destroying it —
// the two formats share framing but not magic.
func TestCoordStoreForeignWAL(t *testing.T) {
	dir := t.TempDir()
	s := mustOpen(t, dir) // subscription store writes walFile
	mustAdd(t, s, "/a")
	s.Close()
	// Copy the subscription WAL over the coordinator WAL path.
	writeFile(t, filepath.Join(dir, coordWALFile), readFile(t, filepath.Join(dir, walFile)))
	if _, err := OpenCoord(dir, Options{NoSync: true}); err == nil {
		t.Fatal("OpenCoord accepted a subscription WAL")
	}
}

// TestCoordStoreSnapshotCompaction snapshots mid-sequence and checks
// that replay of the remaining WAL on top of the snapshot converges to
// the same state, including after a torn post-snapshot tail.
func TestCoordStoreSnapshotCompaction(t *testing.T) {
	dir := t.TempDir()
	cs := mustOpenCoord(t, dir)
	applyCoordOp(t, cs, coordOp{op: opCoordAdd, sid: 0, owner: "shard-0", expr: "/a"})
	applyCoordOp(t, cs, coordOp{op: opCoordBurn, sid: 1, owner: "shard-1"})
	if err := cs.Snapshot(); err != nil {
		t.Fatal(err)
	}
	if n := cs.WALRecords(); n != 0 {
		t.Fatalf("WALRecords after snapshot = %d, want 0", n)
	}
	applyCoordOp(t, cs, coordOp{op: opCoordAdd, sid: 2, owner: "shard-1", expr: "/b"})
	applyCoordOp(t, cs, coordOp{op: opCoordReap, sid: 1})
	cs.Close()

	cs2 := mustOpenCoord(t, dir)
	want := CoordState{
		Subs:    map[uint32]CoordSub{0: {Owner: "shard-0", Expr: "/a"}, 2: {Owner: "shard-1", Expr: "/b"}},
		Orphans: map[uint32]string{},
		NextSID: 3,
	}
	if got := cs2.State(); !reflect.DeepEqual(got, want) {
		t.Fatalf("recovered %+v, want %+v", got, want)
	}
	if st := cs2.Stats(); st.SnapshotEntries != 2 || st.ReplayedRecords != 2 {
		t.Fatalf("stats = %+v, want 2 snapshot entries + 2 replayed records", st)
	}
	cs2.Close()

	// Tear the post-snapshot WAL tail: the snapshot still loads, the torn
	// record drops.
	walPath := filepath.Join(dir, coordWALFile)
	raw := readFile(t, walPath)
	writeFile(t, walPath, raw[:len(raw)-2])
	cs3 := mustOpenCoord(t, dir)
	defer cs3.Close()
	want = CoordState{
		Subs:    map[uint32]CoordSub{0: {Owner: "shard-0", Expr: "/a"}, 2: {Owner: "shard-1", Expr: "/b"}},
		Orphans: map[uint32]string{1: "shard-1"},
		NextSID: 3,
	}
	if got := cs3.State(); !reflect.DeepEqual(got, want) {
		t.Fatalf("after torn tail: recovered %+v, want %+v", got, want)
	}
}

// TestCoordStoreCorruptSnapshot: coordinator snapshots are atomic, so
// damage is a hard error, never a partial routing table.
func TestCoordStoreCorruptSnapshot(t *testing.T) {
	dir := t.TempDir()
	cs := mustOpenCoord(t, dir)
	applyCoordOp(t, cs, coordOp{op: opCoordAdd, sid: 0, owner: "shard-0", expr: "/a"})
	applyCoordOp(t, cs, coordOp{op: opCoordBurn, sid: 1, owner: "shard-1"})
	if err := cs.Snapshot(); err != nil {
		t.Fatal(err)
	}
	cs.Close()

	snapPath := filepath.Join(dir, coordSnapFile)
	raw := readFile(t, snapPath)
	for _, tc := range []struct {
		name string
		mut  func([]byte) []byte
	}{
		{"flipped payload byte", func(b []byte) []byte {
			m := append([]byte(nil), b...)
			m[len(m)-1] ^= 0x01
			return m
		}},
		{"truncated entry", func(b []byte) []byte { return b[:len(b)-3] }},
		{"bad magic", func(b []byte) []byte {
			m := append([]byte(nil), b...)
			m[0] = 'Z'
			return m
		}},
	} {
		writeFile(t, snapPath, tc.mut(raw))
		if _, err := OpenCoord(dir, Options{NoSync: true}); err == nil {
			t.Fatalf("%s: OpenCoord accepted a corrupt snapshot", tc.name)
		}
	}
	writeFile(t, snapPath, raw)
	cs2 := mustOpenCoord(t, dir)
	defer cs2.Close()
	want := CoordState{
		Subs:    map[uint32]CoordSub{0: {Owner: "shard-0", Expr: "/a"}},
		Orphans: map[uint32]string{1: "shard-1"},
		NextSID: 2,
	}
	if got := cs2.State(); !reflect.DeepEqual(got, want) {
		t.Fatalf("baseline recovery: %+v, want %+v", got, want)
	}
}

// TestCoordStoreAppendGuards: misuse is rejected before touching the
// log — double adds, removes of unknown sids, empty owners.
func TestCoordStoreAppendGuards(t *testing.T) {
	cs := mustOpenCoord(t, t.TempDir())
	defer cs.Close()
	applyCoordOp(t, cs, coordOp{op: opCoordAdd, sid: 0, owner: "shard-0", expr: "/a"})
	if err := cs.AppendAdd(0, "shard-1", "/b"); err == nil {
		t.Fatal("AppendAdd accepted a duplicate sid")
	}
	if err := cs.AppendAdd(1, "", "/b"); err == nil {
		t.Fatal("AppendAdd accepted an empty owner")
	}
	if err := cs.AppendRemove(7); err == nil {
		t.Fatal("AppendRemove accepted an unknown sid")
	}
	if err := cs.AppendReap(7); err == nil {
		t.Fatal("AppendReap accepted an unknown orphan")
	}
	if err := cs.AppendOwner(7, "shard-1"); err == nil {
		t.Fatal("AppendOwner accepted an unrouted sid")
	}
	if err := cs.AppendBurn(1, ""); err == nil {
		t.Fatal("AppendBurn accepted an empty shard")
	}
}
