// Package xpgen generates XPath expression workloads by schema-valid
// random walks over a DTD, standing in for the XPath generator of Diao et
// al. that the paper used. The parameters the paper names are exposed
// directly: D (distinct vs. non-distinct), L (maximum expression length),
// W (wildcard probability per location step), DO (descendant-operator
// probability per location step), and the number of attribute filters per
// path used in the Figure 9 experiments.
package xpgen

import (
	"fmt"
	"math/rand"
	"strings"

	"predfilter/internal/dtd"
)

// Config controls workload generation.
type Config struct {
	// Count is the number of expressions to generate.
	Count int
	// MaxLength is L: the maximum number of location steps.
	MaxLength int
	// Wildcard is W: the probability a step's name test becomes "*".
	Wildcard float64
	// Descendant is DO: the probability a step uses the descendant axis.
	Descendant float64
	// Distinct is D: when set, duplicates are discarded until Count
	// distinct expressions exist.
	Distinct bool
	// Filters is the number of attribute filters attached per expression
	// (0, 1 or 2 in the paper's Figure 9 experiments).
	Filters int
	// Seed makes generation deterministic.
	Seed int64
}

// Generate produces a workload from the DTD. With Distinct set it returns
// an error if the schema cannot yield Count distinct expressions within a
// generous attempt budget (so misconfiguration is loud, mirroring the
// paper's observation that the PSD schema saturates around 10k distinct
// expressions).
func Generate(d *dtd.DTD, cfg Config) ([]string, error) {
	if cfg.MaxLength <= 0 {
		cfg.MaxLength = 6
	}
	rng := rand.New(rand.NewSource(cfg.Seed))
	out := make([]string, 0, cfg.Count)
	seen := make(map[string]bool)
	attempts := 0
	maxAttempts := cfg.Count * 400
	if maxAttempts < 100000 {
		maxAttempts = 100000
	}
	for len(out) < cfg.Count {
		attempts++
		if cfg.Distinct && attempts > maxAttempts {
			return out, fmt.Errorf("xpgen: only %d distinct expressions reachable after %d attempts (schema %s saturated; asked for %d)",
				len(out), attempts, d.Name, cfg.Count)
		}
		s := one(d, cfg, rng)
		if cfg.Distinct {
			if seen[s] {
				continue
			}
			seen[s] = true
		}
		out = append(out, s)
	}
	return out, nil
}

// MustGenerate is Generate that panics on error; intended for benchmarks
// and tests with known-feasible configurations.
func MustGenerate(d *dtd.DTD, cfg Config) []string {
	out, err := Generate(d, cfg)
	if err != nil {
		panic(err)
	}
	return out
}

// stepInfo records, per emitted location step, the element the walk
// resolved to and where in the expression string the step's name test
// ends (for filter insertion).
type stepInfo struct {
	elem     *dtd.Element
	wildcard bool
	pos      int
}

// one produces a single expression by walking the DTD from the (virtual)
// document root.
func one(d *dtd.DTD, cfg Config, rng *rand.Rand) string {
	// Lengths concentrate near L (walks can still end early at schema
	// leaves): this matches the regime of the paper's workloads, whose
	// NITF expressions are "extremely selective" (§6.2) — short uniform
	// lengths would make most expressions trivially matchable.
	lo := cfg.MaxLength - 2
	if lo < 2 {
		lo = 2
	}
	if lo > cfg.MaxLength {
		lo = cfg.MaxLength
	}
	length := lo + rng.Intn(cfg.MaxLength-lo+1)
	var b strings.Builder
	steps := make([]stepInfo, 0, length)

	cur := &dtd.Element{Name: "", Children: []dtd.Child{{Name: d.Root}}}
	for i := 0; i < length; i++ {
		if len(cur.Children) == 0 {
			break // reached a leaf element; the expression ends early
		}
		axis := "/"
		if rng.Float64() < cfg.Descendant {
			axis = "//"
			// A descendant step may land several levels down; walk extra
			// levels silently.
			for extra := rng.Intn(2); extra > 0 && len(cur.Children) > 0; extra-- {
				cur = d.Element(cur.Children[rng.Intn(len(cur.Children))].Name)
			}
			if len(cur.Children) == 0 {
				break
			}
		}
		next := d.Element(cur.Children[rng.Intn(len(cur.Children))].Name)
		b.WriteString(axis)
		wild := rng.Float64() < cfg.Wildcard
		if wild {
			b.WriteString("*")
		} else {
			b.WriteString(next.Name)
		}
		steps = append(steps, stepInfo{elem: next, wildcard: wild, pos: b.Len()})
		cur = next
	}
	expr := b.String()
	if expr == "" {
		// Degenerate corner (descendant walk fell off a leaf immediately);
		// fall back to the root element.
		expr = "/" + d.Root
		steps = append(steps, stepInfo{elem: d.Element(d.Root), pos: len(expr)})
	}

	if cfg.Filters > 0 {
		expr = attachFilters(expr, steps, cfg.Filters, rng)
	}
	return expr
}

// attachFilters inserts attribute filters (equality predicates on
// schema-declared attributes, as in the Diao generator) at randomly chosen
// non-wildcard steps.
func attachFilters(expr string, steps []stepInfo, n int, rng *rand.Rand) string {
	// Candidate steps: non-wildcard with at least one declared attribute.
	var cands []int
	for i, s := range steps {
		if !s.wildcard && len(s.elem.Attrs) > 0 {
			cands = append(cands, i)
		}
	}
	if len(cands) == 0 {
		return expr
	}
	// Build insertions back to front so offsets stay valid.
	type ins struct {
		pos  int
		text string
	}
	var inss []ins
	for k := 0; k < n; k++ {
		si := cands[rng.Intn(len(cands))]
		el := steps[si].elem
		a := el.Attrs[rng.Intn(len(el.Attrs))]
		v := a.Values[rng.Intn(len(a.Values))]
		inss = append(inss, ins{pos: steps[si].pos, text: fmt.Sprintf("[@%s=%s]", a.Name, v)})
	}
	// Apply from the rightmost offset.
	for {
		swapped := false
		for i := 1; i < len(inss); i++ {
			if inss[i-1].pos < inss[i].pos {
				inss[i-1], inss[i] = inss[i], inss[i-1]
				swapped = true
			}
		}
		if !swapped {
			break
		}
	}
	for _, in := range inss {
		expr = expr[:in.pos] + in.text + expr[in.pos:]
	}
	return expr
}
