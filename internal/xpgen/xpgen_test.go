package xpgen

import (
	"reflect"
	"testing"

	"predfilter/internal/dtd"
	"predfilter/internal/xpath"
)

func TestGeneratesParsable(t *testing.T) {
	for _, d := range []*dtd.DTD{dtd.NITF(), dtd.PSD()} {
		xpes := MustGenerate(d, Config{Count: 500, MaxLength: 6, Wildcard: 0.2, Descendant: 0.2, Seed: 1})
		if len(xpes) != 500 {
			t.Fatalf("%s: got %d expressions", d.Name, len(xpes))
		}
		for _, s := range xpes {
			p, err := xpath.Parse(s)
			if err != nil {
				t.Fatalf("%s: generated unparsable %q: %v", d.Name, s, err)
			}
			if len(p.Steps) > 6 {
				t.Errorf("%s: %q longer than L=6", d.Name, s)
			}
			if !p.Absolute {
				t.Errorf("%s: %q is relative; the generator emits absolute expressions", d.Name, s)
			}
		}
	}
}

func TestDistinct(t *testing.T) {
	xpes := MustGenerate(dtd.NITF(), Config{Count: 2000, MaxLength: 6, Wildcard: 0.2, Descendant: 0.2, Distinct: true, Seed: 2})
	seen := map[string]bool{}
	for _, s := range xpes {
		if seen[s] {
			t.Fatalf("duplicate %q in distinct workload", s)
		}
		seen[s] = true
	}
}

func TestNonDistinctHasDuplicates(t *testing.T) {
	xpes := MustGenerate(dtd.PSD(), Config{Count: 20000, MaxLength: 6, Wildcard: 0.2, Descendant: 0.2, Seed: 3})
	seen := map[string]bool{}
	for _, s := range xpes {
		seen[s] = true
	}
	if len(seen) == len(xpes) {
		t.Error("20k PSD expressions with no duplicates; duplicate workloads should repeat")
	}
	// The paper observes PSD saturates around 10k distinct expressions.
	if len(seen) > 15000 {
		t.Errorf("PSD distinct count %d; expected saturation well below the total", len(seen))
	}
}

func TestSaturationError(t *testing.T) {
	// With L=1, W=0 and DO=0 the only expression is /ProteinDatabase, so
	// asking for 1000 distinct ones must fail loudly.
	out, err := Generate(dtd.PSD(), Config{Count: 1000, MaxLength: 1, Wildcard: 0, Descendant: 0, Distinct: true, Seed: 4})
	if err == nil {
		t.Error("Generate produced 1000 distinct expressions from a saturated configuration")
	}
	if len(out) != 1 {
		t.Errorf("reachable distinct expressions = %d, want 1", len(out))
	}
}

func TestDeterministic(t *testing.T) {
	a := MustGenerate(dtd.NITF(), Config{Count: 200, MaxLength: 6, Wildcard: 0.3, Descendant: 0.3, Seed: 5})
	b := MustGenerate(dtd.NITF(), Config{Count: 200, MaxLength: 6, Wildcard: 0.3, Descendant: 0.3, Seed: 5})
	if !reflect.DeepEqual(a, b) {
		t.Error("same seed produced different workloads")
	}
}

func TestWildcardProbability(t *testing.T) {
	count := func(w float64) float64 {
		xpes := MustGenerate(dtd.NITF(), Config{Count: 2000, MaxLength: 6, Wildcard: w, Descendant: 0.2, Seed: 6})
		wild, steps := 0, 0
		for _, s := range xpes {
			p := xpath.MustParse(s)
			for _, st := range p.Steps {
				steps++
				if st.Wildcard {
					wild++
				}
			}
		}
		return float64(wild) / float64(steps)
	}
	if f := count(0); f != 0 {
		t.Errorf("W=0 produced wildcard fraction %.2f", f)
	}
	f5 := count(0.5)
	if f5 < 0.4 || f5 > 0.6 {
		t.Errorf("W=0.5 produced wildcard fraction %.2f", f5)
	}
	if f9 := count(0.9); f9 <= f5 {
		t.Errorf("wildcard fraction not increasing: %.2f at 0.9 vs %.2f at 0.5", f9, f5)
	}
}

func TestDescendantProbability(t *testing.T) {
	frac := func(do float64) float64 {
		xpes := MustGenerate(dtd.NITF(), Config{Count: 2000, MaxLength: 6, Wildcard: 0.2, Descendant: do, Seed: 7})
		desc, steps := 0, 0
		for _, s := range xpes {
			p := xpath.MustParse(s)
			for _, st := range p.Steps {
				steps++
				if st.Axis == xpath.Descendant {
					desc++
				}
			}
		}
		return float64(desc) / float64(steps)
	}
	if f := frac(0); f != 0 {
		t.Errorf("DO=0 produced descendant fraction %.2f", f)
	}
	if f := frac(0.6); f < 0.45 || f > 0.75 {
		t.Errorf("DO=0.6 produced descendant fraction %.2f", f)
	}
}

func TestFilters(t *testing.T) {
	xpes := MustGenerate(dtd.NITF(), Config{Count: 500, MaxLength: 6, Wildcard: 0.2, Descendant: 0.2, Filters: 2, Seed: 8})
	withFilters := 0
	for _, s := range xpes {
		p, err := xpath.Parse(s)
		if err != nil {
			t.Fatalf("unparsable %q: %v", s, err)
		}
		n := 0
		for _, st := range p.Steps {
			n += len(st.Attrs)
			if st.Wildcard && len(st.Attrs) > 0 {
				t.Errorf("%q: filter on wildcard step", s)
			}
		}
		if n > 0 {
			withFilters++
		}
		if n > 2 {
			t.Errorf("%q has %d filters, want <= 2", s, n)
		}
	}
	if float64(withFilters) < 0.7*float64(len(xpes)) {
		t.Errorf("only %d/%d expressions carry filters", withFilters, len(xpes))
	}
}

// TestSchemaValidWalks: with W=0 and DO=0 every generated expression is a
// literal schema path from the root.
func TestSchemaValidWalks(t *testing.T) {
	d := dtd.PSD()
	xpes := MustGenerate(d, Config{Count: 300, MaxLength: 6, Seed: 9})
	for _, s := range xpes {
		p := xpath.MustParse(s)
		cur := ""
		for i, st := range p.Steps {
			if i == 0 {
				if st.Name != d.Root {
					t.Fatalf("%q does not start at the root", s)
				}
				cur = st.Name
				continue
			}
			parent := d.Element(cur)
			ok := false
			for _, c := range parent.Children {
				if c.Name == st.Name {
					ok = true
					break
				}
			}
			if !ok {
				t.Fatalf("%q: %s is not a declared child of %s", s, st.Name, cur)
			}
			cur = st.Name
		}
	}
}
