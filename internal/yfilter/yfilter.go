// Package yfilter reimplements the YFilter engine (Diao et al., "Path
// sharing and predicate evaluation for high-performance XML filtering"),
// the automaton-based baseline of the paper's evaluation: all expressions
// are combined into a single non-deterministic finite automaton whose
// transitions are triggered by document tags. Common expression prefixes
// share states; execution keeps a runtime stack of active state sets and
// does not stop at the first accepting state, so all matching expressions
// are found in one pass over the document's events.
//
// The descendant operator is modeled in the standard YFilter way: an
// ε-transition into a state with a *-self-loop. Attribute filters are
// evaluated selection-postponed (the configuration the YFilter paper
// recommends and the one benchmarked here): when an expression's accepting
// state is reached, its filters are verified directly against the current
// element stack.
package yfilter

import (
	"bytes"
	"encoding/xml"
	"fmt"
	"io"

	"predfilter/internal/xmlevents"
	"predfilter/internal/xpath"
)

// SID identifies one registered expression; duplicates share the
// automaton but receive distinct SIDs.
type SID int32

const noState = int32(-1)

// state is one NFA state.
type state struct {
	child    map[string]int32 // tag-labeled child-axis transitions
	star     int32            // '*' child-axis transition
	dslash   int32            // ε-transition into the //-self-loop state
	selfLoop bool             // set on //-states: remains active on any tag
	accept   []int32          // expression ids accepting here
}

// expr is one distinct expression.
type expr struct {
	sids []SID
	path *xpath.Path // retained only when attribute filters must be
	// verified after structural acceptance
	attrs bool
}

// Engine is a YFilter instance.
type Engine struct {
	states []state
	exprs  []*expr
	byKey  map[string]*expr
	nsids  int
}

// New returns an empty engine.
func New() *Engine {
	e := &Engine{byKey: make(map[string]*expr)}
	e.newState() // state 0 is the root
	return e
}

func (e *Engine) newState() int32 {
	e.states = append(e.states, state{star: noState, dslash: noState})
	return int32(len(e.states) - 1)
}

// Add registers an expression. Nested path filters are outside YFilter's
// benchmarked fragment here and are rejected.
func (e *Engine) Add(s string) (SID, error) {
	p, err := xpath.Parse(s)
	if err != nil {
		return 0, err
	}
	return e.AddPath(p)
}

// AddPath registers a parsed expression.
func (e *Engine) AddPath(p *xpath.Path) (SID, error) {
	if !p.IsSinglePath() {
		return 0, fmt.Errorf("yfilter: nested path filters are not supported: %q", p)
	}
	key := canonKey(p)
	ex := e.byKey[key]
	if ex == nil {
		ex = &expr{attrs: p.HasAttrFilters()}
		if ex.attrs {
			ex.path = p.Clone()
		}
		id := int32(len(e.exprs))
		e.exprs = append(e.exprs, ex)
		e.byKey[key] = ex
		e.insert(p, id)
	}
	sid := SID(e.nsids)
	e.nsids++
	ex.sids = append(ex.sids, sid)
	return sid, nil
}

// canonKey renders the expression with a normalized leading axis: a
// relative expression is equivalent to the same expression anchored by a
// leading descendant axis.
func canonKey(p *xpath.Path) string {
	if p.Absolute {
		return p.String()
	}
	return "//" + p.String()
}

// insert threads the expression through the automaton, sharing prefixes.
func (e *Engine) insert(p *xpath.Path, id int32) {
	cur := int32(0)
	for i, s := range p.Steps {
		axis := s.Axis
		if i == 0 && !p.Absolute {
			// A relative expression may start anywhere: leading //.
			axis = xpath.Descendant
		}
		if axis == xpath.Descendant {
			if e.states[cur].dslash == noState {
				d := e.newState()
				e.states[d].selfLoop = true
				e.states[cur].dslash = d
			}
			cur = e.states[cur].dslash
		}
		if s.Wildcard {
			if e.states[cur].star == noState {
				n := e.newState()
				e.states[cur].star = n
			}
			cur = e.states[cur].star
			continue
		}
		st := &e.states[cur]
		if st.child == nil {
			st.child = make(map[string]int32)
		}
		next, ok := st.child[s.Name]
		if !ok {
			next = e.newState()
			e.states[cur].child[s.Name] = next
		}
		cur = next
	}
	e.states[cur].accept = append(e.states[cur].accept, id)
}

// Stats summarizes automaton size.
type Stats struct {
	States              int
	DistinctExpressions int
	SIDs                int
}

// Stats returns engine statistics.
func (e *Engine) Stats() Stats {
	return Stats{States: len(e.states), DistinctExpressions: len(e.exprs), SIDs: e.nsids}
}

// pathElem is one open element on the runtime stack (for postponed
// attribute verification).
type pathElem struct {
	tag   string
	attrs []xml.Attr
}

// Filter parses the document and returns the SIDs of all matching
// expressions.
func (e *Engine) Filter(doc []byte) ([]SID, error) {
	return e.FilterReader(bytes.NewReader(doc))
}

// FilterReader is Filter over a stream.
func (e *Engine) FilterReader(r io.Reader) ([]SID, error) {
	matched := make([]bool, len(e.exprs))
	nmatched := 0

	// The runtime stack of active state sets. Sets are flat slices; the
	// stack records the length boundaries so sets can live in one arena.
	arena := make([]int32, 0, 256)
	bounds := make([]int, 1, 64)
	var path []pathElem

	// push adds a state and its ε-closure (the //-state) to the set under
	// construction and processes acceptance.
	push := func(s int32, elemDepth int) {
		arena = append(arena, s)
		st := &e.states[s]
		if st.dslash != noState {
			arena = append(arena, st.dslash)
		}
		for _, id := range st.accept {
			if matched[id] {
				continue
			}
			ex := e.exprs[id]
			if ex.attrs && !checkAttrs(ex.path, path) {
				continue
			}
			matched[id] = true
			nmatched++
		}
		_ = elemDepth
	}

	// Initial set: the root state and its closure.
	push(0, 0)
	bounds = append(bounds, len(arena))

	err := xmlevents.ForEach(r, "yfilter",
		func(t xml.StartElement) error {
			path = append(path, pathElem{tag: t.Name.Local, attrs: t.Attr})
			lo, hi := bounds[len(bounds)-2], bounds[len(bounds)-1]
			for i := lo; i < hi; i++ {
				st := &e.states[arena[i]]
				if st.child != nil {
					if next, ok := st.child[t.Name.Local]; ok {
						push(next, len(path))
					}
				}
				if st.star != noState {
					push(st.star, len(path))
				}
				if st.selfLoop {
					push(arena[i], len(path))
				}
			}
			bounds = append(bounds, len(arena))
			return nil
		},
		func(t xml.EndElement) error {
			if len(bounds) < 3 {
				return fmt.Errorf("yfilter: unbalanced end element <%s>", t.Name.Local)
			}
			bounds = bounds[:len(bounds)-1]
			arena = arena[:bounds[len(bounds)-1]]
			path = path[:len(path)-1]
			return nil
		})
	if err != nil {
		return nil, err
	}

	out := make([]SID, 0, nmatched)
	for id, ok := range matched {
		if ok {
			out = append(out, e.exprs[id].sids...)
		}
	}
	return out, nil
}

// checkAttrs verifies the expression (structure and attribute filters)
// directly against the current element stack: this is the
// selection-postponed evaluation — it only runs for expressions that
// already matched structurally.
func checkAttrs(p *xpath.Path, path []pathElem) bool {
	var place func(i, pos int) bool
	place = func(i, pos int) bool {
		if pos > len(path) {
			return false
		}
		el := &path[pos-1]
		s := &p.Steps[i]
		if !s.Wildcard && s.Name != el.tag {
			return false
		}
		for _, f := range s.Attrs {
			if !evalAttr(f, el.attrs) {
				return false
			}
		}
		if i == len(p.Steps)-1 {
			return true
		}
		if p.Steps[i+1].Axis == xpath.Child {
			return place(i+1, pos+1)
		}
		for q := pos + 1; q <= len(path); q++ {
			if place(i+1, q) {
				return true
			}
		}
		return false
	}
	if p.Absolute && p.Steps[0].Axis == xpath.Child {
		return place(0, 1)
	}
	for pos := 1; pos <= len(path); pos++ {
		if place(0, pos) {
			return true
		}
	}
	return false
}

func evalAttr(f xpath.AttrFilter, attrs []xml.Attr) bool {
	for _, a := range attrs {
		if a.Name.Local == f.Name {
			return f.Eval(a.Value)
		}
	}
	return false
}
