package yfilter

import (
	"math/rand"
	"testing"
)

// BenchmarkFilter measures NFA execution on a synthetic overlap-heavy
// workload (engine construction excluded).
func BenchmarkFilter(b *testing.B) {
	rng := rand.New(rand.NewSource(1))
	e := New()
	for i := 0; i < 20000; i++ {
		if _, err := e.Add(randXPE(rng, false)); err != nil {
			b.Fatal(err)
		}
	}
	docs := make([][]byte, 8)
	for i := range docs {
		docs[i] = randXML(rng, false)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := e.Filter(docs[i%len(docs)]); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkAdd measures automaton construction throughput.
func BenchmarkAdd(b *testing.B) {
	rng := rand.New(rand.NewSource(2))
	xpes := make([]string, 10000)
	for i := range xpes {
		xpes[i] = randXPE(rng, false)
	}
	e := New()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := e.Add(xpes[i%len(xpes)]); err != nil {
			b.Fatal(err)
		}
	}
}
