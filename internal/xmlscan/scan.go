// Package xmlscan is a zero-copy, byte-level XML scanner for the
// filtering pipeline: it tokenizes the structural subset the path
// extractor consumes (start/end tags, attributes, character data) directly
// over the input bytes, with no per-token allocation. Tag and attribute
// names are returned as sub-slices of the input and interned through Dict;
// attribute values are returned raw (entities unexpanded) and decoded by
// the caller with AppendUnescaped into an arena of its choosing.
//
// The scanner deliberately covers only the XML subset the engine accepts
// today through encoding/xml, and it is strict the cheap way: anything
// outside the subset — DTDs and directives, namespaced element names,
// non-ASCII names, exotic declarations — fails with a *SyntaxError rather
// than being handled. Callers that need encoding/xml's exact judgement
// (package xmldoc does) re-parse rejected input with encoding/xml, so a
// scanner rejection is never load-bearing: on the accept path the scanner
// matches encoding/xml event for event, and on the reject path the
// fallback decides. Only the five predefined entities (amp, lt, gt, apos,
// quot) and numeric character references are expanded; there is no DTD
// entity expansion at all.
package xmlscan

import (
	"fmt"
	"io"
	"unicode/utf8"
)

// Kind classifies the current token.
type Kind uint8

const (
	// EOF means the input is exhausted (only returned without error when
	// the input ends between tokens).
	EOF Kind = iota
	// Start is a start tag (or the start-tag half of a self-closing
	// element); Name and Attrs describe it.
	Start
	// End is an end tag (or the synthesized end of a self-closing
	// element); Name describes it.
	End
	// Text is character data or CDATA content; Data holds the raw bytes
	// (entities validated but unexpanded, CR unnormalized).
	Text
)

// Attr is one attribute of a start tag. Name is the local name (namespace
// prefix stripped); Value is the raw value between the quotes — entities
// are validated on the text path but expanded only when the caller asks
// via AppendUnescaped. Both alias the scanner's input buffer and are valid
// until the next call to Next.
type Attr struct {
	Name  []byte
	Value []byte
}

// SyntaxError reports input the scanner does not accept, with the byte
// offset it stopped at. It covers both genuinely malformed XML and
// well-formed XML outside the scanner's subset; callers that must
// distinguish re-parse with encoding/xml.
type SyntaxError struct {
	Msg string
	Off int
}

func (e *SyntaxError) Error() string {
	return fmt.Sprintf("xmlscan: %s at byte offset %d", e.Msg, e.Off)
}

// Scanner tokenizes one document. The zero value is unusable; call
// ResetBytes or ResetReader first. A Scanner is reusable (that is the
// point: its internal buffers persist across documents) but not safe for
// concurrent use.
type Scanner struct {
	buf []byte // input seen so far; all of it is retained (no compaction)
	pos int

	r    io.Reader
	rerr error  // deferred error from r (io.EOF for normal end)
	rbuf []byte // read scratch, reused across fills
	own  []byte // retained grow-buffer for reader mode

	// Current token, valid until the next call to Next. All byte slices
	// alias buf.
	Name  []byte
	Attrs []Attr
	Data  []byte

	pendingEnd bool // a self-closed element owes an End token
	err        error
}

const (
	readChunk    = 32 << 10
	maxRetainBuf = 1 << 20 // reader-mode buffer kept across Resets
	maxEntityLen = 64      // longest &...; span the scanner accepts
)

// ResetBytes readies the scanner over in-memory input. The input is not
// copied; tokens alias it.
func (s *Scanner) ResetBytes(data []byte) {
	s.buf = data
	s.reset()
	s.r = nil
	s.rerr = nil
}

// ResetReader readies the scanner over streaming input. Consumed bytes
// are retained (so a caller can replay the stream into another parser via
// Consumed); the retention buffer is reused across Resets up to a cap.
func (s *Scanner) ResetReader(r io.Reader) {
	if cap(s.own) > maxRetainBuf {
		s.own = nil
	}
	s.buf = s.own[:0]
	s.reset()
	s.r = r
	s.rerr = nil
}

func (s *Scanner) reset() {
	s.pos = 0
	s.Name = nil
	s.Data = nil
	s.Attrs = s.Attrs[:0]
	s.pendingEnd = false
	s.err = nil
}

// Release drops the reference to the input (and, in reader mode, keeps the
// grow-buffer for reuse). Call it before pooling the scanner so a pooled
// scanner does not pin a caller's document alive.
func (s *Scanner) Release() {
	if s.r != nil {
		s.own = s.buf[:0]
	}
	s.buf = nil
	s.r = nil
	s.Name = nil
	s.Data = nil
	s.Attrs = s.Attrs[:0]
}

// Consumed returns every input byte read so far (reader mode: everything
// consumed from the reader, parsed or not). Callers use it to hand a
// rejected stream to another parser without losing the prefix.
func (s *Scanner) Consumed() []byte { return s.buf }

// fill reads more input in reader mode, reporting whether the buffer grew.
// On failure the error is parked in rerr for the caller to classify.
func (s *Scanner) fill() bool {
	if s.r == nil || s.rerr != nil {
		return false
	}
	if s.rbuf == nil {
		s.rbuf = make([]byte, readChunk)
	}
	for spins := 0; ; spins++ {
		n, err := s.r.Read(s.rbuf)
		if n > 0 {
			s.buf = append(s.buf, s.rbuf[:n]...)
			s.own = s.buf
		}
		if err != nil {
			s.rerr = err
			return n > 0
		}
		if n > 0 {
			return true
		}
		if spins >= 100 {
			s.rerr = io.ErrNoProgress
			return false
		}
	}
}

// ensure makes at least n bytes available at pos, filling as needed.
func (s *Scanner) ensure(n int) bool {
	for len(s.buf)-s.pos < n {
		if !s.fill() {
			return false
		}
	}
	return true
}

// serr records and returns a syntax error at the current offset.
func (s *Scanner) serr(msg string) error {
	s.err = &SyntaxError{Msg: msg, Off: s.pos}
	return s.err
}

// needMore records the right error for "ran out of input": the reader's
// own failure if it had one, else an unexpected-EOF syntax error.
func (s *Scanner) needMore() error {
	if s.rerr != nil && s.rerr != io.EOF {
		s.err = s.rerr
		return s.err
	}
	return s.serr("unexpected EOF")
}

// Next advances to the next token. It returns EOF with a nil error at
// clean end of input; any other condition that stops the scan returns the
// sticky error (a *SyntaxError, or the reader's error in reader mode).
func (s *Scanner) Next() (Kind, error) {
	if s.err != nil {
		return EOF, s.err
	}
	if s.pendingEnd {
		s.pendingEnd = false
		return End, nil
	}
	for {
		if !s.ensure(1) {
			if s.rerr != nil && s.rerr != io.EOF {
				s.err = s.rerr
				return EOF, s.err
			}
			return EOF, nil
		}
		if s.buf[s.pos] != '<' {
			return s.text()
		}
		if !s.ensure(2) {
			return EOF, s.needMore()
		}
		switch s.buf[s.pos+1] {
		case '/':
			return s.endTag()
		case '?':
			if err := s.procInst(); err != nil {
				return EOF, err
			}
		case '!':
			emit, err := s.bang()
			if err != nil {
				return EOF, err
			}
			if emit {
				return Text, nil
			}
		default:
			return s.startTag()
		}
	}
}

// text scans a run of character data up to the next '<' or EOF,
// validating characters and entities without expanding anything.
func (s *Scanner) text() (Kind, error) {
	start := s.pos
	for {
		if s.pos == len(s.buf) && !s.fill() {
			if s.rerr != nil && s.rerr != io.EOF {
				s.err = s.rerr
				return EOF, s.err
			}
			break
		}
		c := s.buf[s.pos]
		switch {
		case c == '<':
			goto done
		case c == '&':
			if err := s.checkEntity(); err != nil {
				return EOF, err
			}
		case c == ']':
			// "]]>" may not appear raw in character data.
			s.ensure(3)
			if len(s.buf)-s.pos >= 3 && s.buf[s.pos+1] == ']' && s.buf[s.pos+2] == '>' {
				return EOF, s.serr("unescaped ]]> not in CDATA section")
			}
			s.pos++
		case c == '\t' || c == '\n' || c == '\r':
			s.pos++
		case c < 0x20:
			return EOF, s.serr("illegal character code in character data")
		case c < 0x80:
			s.pos++
		default:
			if err := s.checkRune(); err != nil {
				return EOF, err
			}
		}
	}
done:
	s.Data = s.buf[start:s.pos]
	return Text, nil
}

// checkEntity validates the &...; reference at pos and steps past it.
func (s *Scanner) checkEntity() error {
	i := s.pos + 1
	for {
		if i == len(s.buf) && !s.fill() {
			return s.needMore()
		}
		if i-s.pos > maxEntityLen {
			return s.serr("character entity too long")
		}
		if s.buf[i] == ';' {
			break
		}
		i++
	}
	if _, err := ParseEntity(s.buf[s.pos : i+1]); err != nil {
		return s.serr(err.Error())
	}
	s.pos = i + 1
	return nil
}

// checkRune validates one multi-byte UTF-8 sequence at pos and steps past
// it, filling first if the sequence straddles a read boundary.
func (s *Scanner) checkRune() error {
	for len(s.buf)-s.pos < utf8.UTFMax && !utf8.FullRune(s.buf[s.pos:]) {
		if !s.fill() {
			break
		}
	}
	r, size := utf8.DecodeRune(s.buf[s.pos:])
	if r == utf8.RuneError && size <= 1 {
		return s.serr("invalid UTF-8")
	}
	if !InCharRange(r) {
		return s.serr("illegal character code")
	}
	s.pos += size
	return nil
}

// Name classification. The scanner only accepts ASCII names; XML permits
// a large Unicode name alphabet, which encoding/xml implements — inputs
// using it are out of subset and routed to the fallback by erroring here.
const (
	nameElem = iota // element names: no colon (namespaced elements are out of subset)
	nameAttr        // attribute names: one colon splits prefix:local
	namePI          // processing-instruction targets: colons pass through
)

func isNameStartByte(c byte) bool {
	return c == '_' || c == ':' ||
		(c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z')
}

func isNameByte(c byte) bool {
	return isNameStartByte(c) || c == '-' || c == '.' ||
		(c >= '0' && c <= '9')
}

// readName scans an XML name at pos per the kind's rules and returns the
// local part.
func (s *Scanner) readName(kind int) ([]byte, error) {
	if s.pos == len(s.buf) && !s.fill() {
		return nil, s.needMore()
	}
	start := s.pos
	c := s.buf[s.pos]
	if !isNameStartByte(c) || (kind == nameElem && c == ':') {
		return nil, s.serr("invalid XML name")
	}
	colon := -1
	if c == ':' {
		colon = 0
	}
	s.pos++
	for {
		if s.pos == len(s.buf) && !s.fill() {
			break
		}
		c = s.buf[s.pos]
		if !isNameByte(c) {
			if c >= 0x80 {
				// encoding/xml folds non-ASCII bytes into the name and
				// validates the result as UTF-8; it may accept (Unicode
				// name) or reject (bad encoding). Either way it is out of
				// this scanner's ASCII-name subset.
				return nil, s.serr("non-ASCII byte in name")
			}
			break
		}
		if c == ':' {
			switch kind {
			case nameElem:
				return nil, s.serr("colon in element name")
			case nameAttr:
				if colon >= 0 {
					return nil, s.serr("multiple colons in attribute name")
				}
				colon = s.pos - start
			}
		}
		s.pos++
	}
	name := s.buf[start:s.pos]
	if kind == nameAttr && colon > 0 && colon < len(name)-1 {
		// prefix:local — the pipeline consumes local names only. Edge
		// colons (":a", "a:") keep the whole name, as encoding/xml does.
		name = name[colon+1:]
	}
	return name, nil
}

// skipSpace advances past XML whitespace, guaranteeing at least one more
// byte is available on return.
func (s *Scanner) skipSpace() error {
	for {
		if s.pos == len(s.buf) && !s.fill() {
			return s.needMore()
		}
		switch s.buf[s.pos] {
		case ' ', '\t', '\r', '\n':
			s.pos++
		default:
			return nil
		}
	}
}

// startTag scans "<name (attr="value")* /?>".
func (s *Scanner) startTag() (Kind, error) {
	s.pos++ // '<'
	name, err := s.readName(nameElem)
	if err != nil {
		return EOF, err
	}
	s.Name = name
	s.Attrs = s.Attrs[:0]
	for {
		if err := s.skipSpace(); err != nil {
			return EOF, err
		}
		switch c := s.buf[s.pos]; c {
		case '>':
			s.pos++
			return Start, nil
		case '/':
			if !s.ensure(2) {
				return EOF, s.needMore()
			}
			if s.buf[s.pos+1] != '>' {
				return EOF, s.serr("expected /> in element")
			}
			s.pos += 2
			s.pendingEnd = true
			return Start, nil
		}
		aname, err := s.readName(nameAttr)
		if err != nil {
			return EOF, err
		}
		if err := s.skipSpace(); err != nil {
			return EOF, err
		}
		if s.buf[s.pos] != '=' {
			return EOF, s.serr("attribute name without = in element")
		}
		s.pos++
		if err := s.skipSpace(); err != nil {
			return EOF, err
		}
		q := s.buf[s.pos]
		if q != '"' && q != '\'' {
			return EOF, s.serr("unquoted or missing attribute value in element")
		}
		s.pos++
		vstart := s.pos
		for {
			if s.pos == len(s.buf) && !s.fill() {
				return EOF, s.needMore()
			}
			if s.buf[s.pos] == q {
				break
			}
			s.pos++
		}
		val := s.buf[vstart:s.pos]
		s.pos++
		s.Attrs = append(s.Attrs, Attr{Name: aname, Value: val})
	}
}

// endTag scans "</name >".
func (s *Scanner) endTag() (Kind, error) {
	s.pos += 2 // "</"
	name, err := s.readName(nameElem)
	if err != nil {
		return EOF, err
	}
	if err := s.skipSpace(); err != nil {
		return EOF, err
	}
	if s.buf[s.pos] != '>' {
		return EOF, s.serr("invalid characters between end tag name and >")
	}
	s.pos++
	s.Name = name
	return End, nil
}

// procInst scans "<?target ...?>", checking an XML declaration's encoding
// when the target is "xml". Instruction bodies are not character-validated
// (encoding/xml does not validate them either).
func (s *Scanner) procInst() error {
	s.pos += 2 // "<?"
	target, err := s.readName(namePI)
	if err != nil {
		return err
	}
	istart := s.pos
	for {
		if !s.ensure(2) {
			return s.needMore()
		}
		if s.buf[s.pos] == '?' && s.buf[s.pos+1] == '>' {
			break
		}
		s.pos++
	}
	inst := s.buf[istart:s.pos]
	s.pos += 2
	if string(target) == "xml" {
		return s.checkXMLDecl(inst)
	}
	return nil
}

// checkXMLDecl rejects XML declarations that name a non-UTF-8 encoding or
// a version other than 1.0. It is deliberately pessimistic: every
// "encoding="/"version=" occurrence is checked (encoding/xml takes the
// first one its own extraction finds), and anything not clearly
// utf-8/1.0 is an error so the fallback gets the final word.
func (s *Scanner) checkXMLDecl(inst []byte) error {
	if !declParamOK(inst, "encoding=", "utf-8") {
		return s.serr("xml declaration names a non-UTF-8 encoding")
	}
	if !declParamOK(inst, "version=", "1.0") {
		return s.serr("xml declaration names an unsupported version")
	}
	return nil
}

// declParamOK reports whether every quoted param occurrence in an XML
// declaration body carries the one accepted value (ASCII case-folded).
// Unquoted and unterminated occurrences are skipped, as encoding/xml's
// extraction skips them too.
func declParamOK(inst []byte, param, want string) bool {
	for i := 0; i+len(param) <= len(inst); i++ {
		if inst[i] != param[0] || string(inst[i:i+len(param)]) != param {
			continue
		}
		rest := inst[i+len(param):]
		if len(rest) == 0 {
			continue
		}
		q := rest[0]
		if q != '"' && q != '\'' {
			continue // unquoted: encoding/xml extracts nothing
		}
		end := -1
		for j := 1; j < len(rest); j++ {
			if rest[j] == q {
				end = j
				break
			}
		}
		if end < 0 {
			continue // unterminated: encoding/xml extracts nothing
		}
		if !asciiEqualFold(rest[1:end], want) {
			return false
		}
	}
	return true
}

func asciiEqualFold(b []byte, s string) bool {
	if len(b) != len(s) {
		return false
	}
	for i := 0; i < len(b); i++ {
		c, d := b[i], s[i]
		if c >= 'A' && c <= 'Z' {
			c += 'a' - 'A'
		}
		if d >= 'A' && d <= 'Z' {
			d += 'a' - 'A'
		}
		if c != d {
			return false
		}
	}
	return true
}

// bang dispatches "<!...": comments and CDATA sections are in subset;
// everything else (DOCTYPE and other directives) is not and errors so the
// fallback can decide.
func (s *Scanner) bang() (emitText bool, err error) {
	if !s.ensure(4) {
		return false, s.needMore()
	}
	if s.buf[s.pos+2] == '-' && s.buf[s.pos+3] == '-' {
		s.pos += 4
		return false, s.comment()
	}
	if s.buf[s.pos+2] == '[' {
		if !s.ensure(9) {
			return false, s.needMore()
		}
		if string(s.buf[s.pos+3:s.pos+9]) == "CDATA[" {
			s.pos += 9
			return true, s.cdata()
		}
		return false, s.serr("invalid <![ sequence")
	}
	return false, s.serr("directives are not supported")
}

// comment scans to "-->"; a "--" not followed by '>' is an error, as in
// encoding/xml. Comment bodies are not character-validated (encoding/xml
// does not validate them either).
func (s *Scanner) comment() error {
	for {
		if !s.ensure(1) {
			return s.needMore()
		}
		if s.buf[s.pos] != '-' {
			s.pos++
			continue
		}
		if !s.ensure(2) {
			return s.needMore()
		}
		if s.buf[s.pos+1] != '-' {
			s.pos += 2
			continue
		}
		if !s.ensure(3) {
			return s.needMore()
		}
		if s.buf[s.pos+2] != '>' {
			return s.serr(`invalid sequence "--" in comment`)
		}
		s.pos += 3
		return nil
	}
}

// cdata scans "<![CDATA[ ... ]]>", character-validating the content, and
// leaves it in Data.
func (s *Scanner) cdata() error {
	start := s.pos
	for {
		if s.pos == len(s.buf) && !s.fill() {
			return s.needMore()
		}
		c := s.buf[s.pos]
		switch {
		case c == ']':
			s.ensure(3)
			if len(s.buf)-s.pos >= 3 && s.buf[s.pos+1] == ']' && s.buf[s.pos+2] == '>' {
				s.Data = s.buf[start:s.pos]
				s.pos += 3
				return nil
			}
			s.pos++
		case c == '\t' || c == '\n' || c == '\r':
			s.pos++
		case c < 0x20:
			return s.serr("illegal character code in CDATA section")
		case c < 0x80:
			s.pos++
		default:
			if err := s.checkRune(); err != nil {
				return err
			}
		}
	}
}
