package xmlscan

import (
	"sync"
	"sync/atomic"
)

// Dict is an interned-name dictionary shared across documents: Intern maps
// equal byte sequences to one canonical string, so a tag or attribute name
// that appears in millions of documents is allocated once and every Tuple
// thereafter shares it. Beyond the memory win, interning makes the hot
// tag-equality comparisons of path extraction and occurrence counting
// pointer-equal in the common case.
//
// The dictionary is striped to keep concurrent parsers off one lock, and
// capped: DTD-driven workloads have small closed vocabularies, so an input
// that keeps minting fresh names (an adversary, or name-like garbage) is
// served plain copies once the cap is reached instead of growing the
// process-lifetime table without bound.
type Dict struct {
	shards  [dictShards]dictShard
	entries atomic.Int64
	bytes   atomic.Int64
}

const (
	dictShards = 16 // power of two; shard picked by name hash

	// maxDictEntries / maxDictBytes bound the process-lifetime table. The
	// built-in DTD vocabularies are a few hundred names; real-world
	// vocabularies are thousands. Past the cap Intern degrades to a plain
	// per-call copy (correct, just unshared).
	maxDictEntries = 1 << 15
	maxDictBytes   = 1 << 21
)

type dictShard struct {
	mu sync.RWMutex
	m  map[string]string
}

// NewDict returns an empty dictionary.
func NewDict() *Dict {
	d := &Dict{}
	for i := range d.shards {
		d.shards[i].m = make(map[string]string)
	}
	return d
}

// Names is the package-wide dictionary used by default: tag vocabulary is
// a property of the schema, not of one parser instance, so sharing across
// engines and goroutines is the point.
var Names = NewDict()

// Intern returns the canonical string equal to b, allocating it on first
// sight. The fast path (name already interned) does not allocate: the
// map lookup keyed by string(b) is recognized by the compiler and reads
// the map without materializing a string.
func (d *Dict) Intern(b []byte) string {
	if len(b) == 0 {
		return ""
	}
	// FNV-1a over the name picks the shard.
	h := uint32(2166136261)
	for _, c := range b {
		h = (h ^ uint32(c)) * 16777619
	}
	s := &d.shards[h&(dictShards-1)]

	s.mu.RLock()
	v, ok := s.m[string(b)]
	s.mu.RUnlock()
	if ok {
		return v
	}

	if d.entries.Load() >= maxDictEntries || d.bytes.Load() >= maxDictBytes {
		return string(b)
	}
	v = string(b)
	s.mu.Lock()
	if w, ok := s.m[v]; ok {
		v = w
	} else {
		s.m[v] = v
		d.entries.Add(1)
		d.bytes.Add(int64(len(v)))
	}
	s.mu.Unlock()
	return v
}

// Len returns the number of interned names.
func (d *Dict) Len() int { return int(d.entries.Load()) }

// Bytes returns the total size of the interned names.
func (d *Dict) Bytes() int64 { return d.bytes.Load() }
