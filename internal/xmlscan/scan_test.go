package xmlscan

import (
	"bytes"
	"io"
	"strings"
	"testing"
)

// tok is a flattened token for test expectations.
type tok struct {
	kind  Kind
	name  string
	attrs []Attr
	data  string
}

func drain(t *testing.T, s *Scanner) ([]tok, error) {
	t.Helper()
	var out []tok
	for {
		k, err := s.Next()
		if err != nil {
			return out, err
		}
		switch k {
		case EOF:
			return out, nil
		case Start:
			tk := tok{kind: Start, name: string(s.Name)}
			for _, a := range s.Attrs {
				tk.attrs = append(tk.attrs, Attr{Name: append([]byte(nil), a.Name...), Value: append([]byte(nil), a.Value...)})
			}
			out = append(out, tk)
		case End:
			out = append(out, tok{kind: End, name: string(s.Name)})
		case Text:
			out = append(out, tok{kind: Text, data: string(s.Data)})
		}
	}
}

func TestScannerBasic(t *testing.T) {
	var s Scanner
	s.ResetBytes([]byte(`<a x="1" y='2'><b/>text</a>`))
	toks, err := drain(t, &s)
	if err != nil {
		t.Fatal(err)
	}
	want := []tok{
		{kind: Start, name: "a"},
		{kind: Start, name: "b"},
		{kind: End, name: "b"},
		{kind: Text, data: "text"},
		{kind: End, name: "a"},
	}
	if len(toks) != len(want) {
		t.Fatalf("got %d tokens, want %d: %+v", len(toks), len(want), toks)
	}
	for i := range want {
		if toks[i].kind != want[i].kind || toks[i].name != want[i].name {
			t.Errorf("token %d: got %+v want %+v", i, toks[i], want[i])
		}
	}
	if len(toks[0].attrs) != 2 || string(toks[0].attrs[0].Name) != "x" ||
		string(toks[0].attrs[0].Value) != "1" || string(toks[0].attrs[1].Value) != "2" {
		t.Errorf("attrs: %+v", toks[0].attrs)
	}
}

func TestScannerSkipsNonElements(t *testing.T) {
	in := "\uFEFF<?xml version=\"1.0\" encoding=\"UTF-8\"?><!--c--><a><![CDATA[<raw>]]></a><!--trailing-->"
	var s Scanner
	s.ResetBytes([]byte(in))
	toks, err := drain(t, &s)
	if err != nil {
		t.Fatal(err)
	}
	var kinds []Kind
	for _, tk := range toks {
		kinds = append(kinds, tk.kind)
	}
	// BOM text, start, CDATA text, end.
	want := []Kind{Text, Start, Text, End}
	if len(kinds) != len(want) {
		t.Fatalf("kinds %v, want %v (tokens %+v)", kinds, want, toks)
	}
	for i := range want {
		if kinds[i] != want[i] {
			t.Fatalf("kinds %v, want %v", kinds, want)
		}
	}
	if toks[2].data != "<raw>" {
		t.Errorf("CDATA data %q", toks[2].data)
	}
}

func TestScannerRejects(t *testing.T) {
	// Tag matching is the caller's job; everything here is rejected by the
	// tokenizer itself.
	bad := []string{
		"<!DOCTYPE x>", // directives out of subset
		"<p:a></p:a>",  // namespaced element names out of subset
		"<a>\x01</a>",  // illegal control character
		"<a>]]></a>",   // raw ]]> in character data
		"<a>&unknown;</a>",
		"<a b=c></a>", // unquoted attribute value
		"<a b></a>",   // attribute without value
		"<a/ >",       // space inside />
		"</ a>",       // space before end-tag name
		"<a><![CDAT[x]]></a>",
		"<a><!-- -- --></a>",
		"<?xml version=\"1.0\" encoding=\"ISO-8859-1\"?><a/>",
		"<a \xc3>", // invalid UTF-8 opening an attribute name
	}
	for _, in := range bad {
		var s Scanner
		s.ResetBytes([]byte(in))
		if _, err := drain(t, &s); err == nil {
			t.Errorf("scanner accepted %q", in)
		}
	}
}

func TestScannerEntities(t *testing.T) {
	cases := map[string]string{
		"&amp;":     "&",
		"&lt;":      "<",
		"&gt;":      ">",
		"&apos;":    "'",
		"&quot;":    `"`,
		"&#65;":     "A",
		"&#x41;":    "A",
		"&#x1F600;": "\U0001F600",
		"&#xD800;":  "�", // surrogate maps to the replacement rune, as in encoding/xml
	}
	for in, want := range cases {
		out, err := AppendUnescaped(nil, []byte(in))
		if err != nil {
			t.Errorf("AppendUnescaped(%q): %v", in, err)
			continue
		}
		if string(out) != want {
			t.Errorf("AppendUnescaped(%q) = %q, want %q", in, out, want)
		}
	}
	for _, bad := range []string{"&#X41;", "&#;", "&#x;", "&nope;", "&", "&amp", "&#x110000;"} {
		if _, err := AppendUnescaped(nil, []byte(bad)); err == nil {
			t.Errorf("AppendUnescaped(%q) accepted", bad)
		}
	}
	// CR normalization applies to literal CRs only.
	out, err := AppendUnescaped(nil, []byte("a\r\nb\rc&#13;d"))
	if err != nil {
		t.Fatal(err)
	}
	if string(out) != "a\nb\nc\rd" {
		t.Errorf("CR normalization: %q", out)
	}
}

func TestScannerReaderMode(t *testing.T) {
	// A one-byte-at-a-time reader forces every refill boundary.
	doc := `<root a="v&amp;v"><child><leaf/></child>text<other>x</other></root>`
	var s Scanner
	s.ResetReader(iotest{r: strings.NewReader(doc)})
	toks, err := drain(t, &s)
	if err != nil {
		t.Fatal(err)
	}
	var names []string
	for _, tk := range toks {
		if tk.kind == Start {
			names = append(names, tk.name)
		}
	}
	want := []string{"root", "child", "leaf", "other"}
	if strings.Join(names, ",") != strings.Join(want, ",") {
		t.Errorf("start tags %v, want %v", names, want)
	}
	if string(s.Consumed()) != doc {
		t.Errorf("Consumed() = %q", s.Consumed())
	}
}

// iotest reads one byte at a time.
type iotest struct{ r io.Reader }

func (o iotest) Read(p []byte) (int, error) {
	if len(p) > 1 {
		p = p[:1]
	}
	return o.r.Read(p)
}

func TestScannerReaderError(t *testing.T) {
	var s Scanner
	s.ResetReader(io.MultiReader(strings.NewReader("<a><b>"), errReader{}))
	if _, err := drain(t, &s); err != io.ErrUnexpectedEOF {
		t.Fatalf("want the reader's own error back, got %v", err)
	}
}

type errReader struct{}

func (errReader) Read([]byte) (int, error) { return 0, io.ErrUnexpectedEOF }

func TestDictInterns(t *testing.T) {
	d := NewDict()
	a := d.Intern([]byte("headline"))
	b := d.Intern([]byte("headline"))
	if a != "headline" || b != "headline" {
		t.Fatalf("Intern: %q %q", a, b)
	}
	if d.Len() != 1 {
		t.Fatalf("Len = %d", d.Len())
	}
	if d.Bytes() != int64(len("headline")) {
		t.Fatalf("Bytes = %d", d.Bytes())
	}
	if got := d.Intern(nil); got != "" {
		t.Fatalf("Intern(nil) = %q", got)
	}
}

func TestScannerSelfCloseAttrs(t *testing.T) {
	var s Scanner
	s.ResetBytes([]byte(`<a b="1"c="2"/>`)) // no space between attributes, as encoding/xml allows
	toks, err := drain(t, &s)
	if err != nil {
		t.Fatal(err)
	}
	if len(toks) != 2 || toks[0].kind != Start || toks[1].kind != End {
		t.Fatalf("tokens %+v", toks)
	}
	if len(toks[0].attrs) != 2 {
		t.Fatalf("attrs %+v", toks[0].attrs)
	}
}

func TestScannerAttrNamespaceSplit(t *testing.T) {
	var s Scanner
	s.ResetBytes([]byte(`<a xml:lang="en" :edge="1" edge:="2"/>`))
	toks, err := drain(t, &s)
	if err != nil {
		t.Fatal(err)
	}
	got := []string{}
	for _, a := range toks[0].attrs {
		got = append(got, string(a.Name))
	}
	want := []string{"lang", ":edge", "edge:"}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("attr names %v, want %v", got, want)
		}
	}
}

func TestScannerLargeDocNoCorruption(t *testing.T) {
	// Force several reader refills and check the token stream stays
	// coherent (spans index a growing buffer).
	var b bytes.Buffer
	b.WriteString("<root>")
	for i := 0; i < 5000; i++ {
		b.WriteString(`<item key="value-value-value">payload text</item>`)
	}
	b.WriteString("</root>")
	var s Scanner
	s.ResetReader(bytes.NewReader(b.Bytes()))
	starts, ends := 0, 0
	for {
		k, err := s.Next()
		if err != nil {
			t.Fatal(err)
		}
		if k == EOF {
			break
		}
		switch k {
		case Start:
			starts++
			if string(s.Name) != "root" && string(s.Name) != "item" {
				t.Fatalf("bad name %q", s.Name)
			}
		case End:
			ends++
		}
	}
	if starts != 5001 || ends != 5001 {
		t.Fatalf("starts=%d ends=%d", starts, ends)
	}
}
