package xmlscan

import (
	"errors"
	"unicode/utf8"
)

var (
	errInvalidEntity = errors.New("invalid character entity")
	errUnescapedLT   = errors.New("unescaped < inside quoted string")
	errIllegalChar   = errors.New("illegal character code")
	errInvalidUTF8   = errors.New("invalid UTF-8")
)

// InCharRange reports whether r is in the XML Char production — the same
// range encoding/xml enforces (notably: DEL is legal, U+FFFE/U+FFFF are
// not, and the C0 controls other than tab/LF/CR are not).
func InCharRange(r rune) bool {
	return r == 0x09 || r == 0x0A || r == 0x0D ||
		(r >= 0x20 && r <= 0xD7FF) ||
		(r >= 0xE000 && r <= 0xFFFD) ||
		(r >= 0x10000 && r <= 0x10FFFF)
}

// ParseEntity decodes one complete &...; span (b[0] == '&', b[len-1] ==
// ';'). Exactly the five predefined entities and numeric character
// references are accepted — there is no DTD, so there is nothing else to
// resolve. Numeric references mirror encoding/xml: lowercase 'x' selects
// hex (digits either case), leading zeros are fine, values above U+10FFFF
// are invalid, surrogate code points decode to U+FFFD, and the decoded
// rune must be in the XML character range.
func ParseEntity(b []byte) (rune, error) {
	if len(b) < 3 {
		return 0, errInvalidEntity
	}
	body := b[1 : len(b)-1]
	if body[0] == '#' {
		digits := body[1:]
		base := uint64(10)
		if len(digits) > 0 && digits[0] == 'x' {
			base = 16
			digits = digits[1:]
		}
		if len(digits) == 0 {
			return 0, errInvalidEntity
		}
		var v uint64
		for _, c := range digits {
			var d uint64
			switch {
			case c >= '0' && c <= '9':
				d = uint64(c - '0')
			case base == 16 && c >= 'a' && c <= 'f':
				d = uint64(c-'a') + 10
			case base == 16 && c >= 'A' && c <= 'F':
				d = uint64(c-'A') + 10
			default:
				return 0, errInvalidEntity
			}
			v = v*base + d
			if v > 0x10FFFF {
				return 0, errInvalidEntity
			}
		}
		r := rune(v)
		if r >= 0xD800 && r <= 0xDFFF {
			r = utf8.RuneError
		}
		if !InCharRange(r) {
			return 0, errInvalidEntity
		}
		return r, nil
	}
	switch string(body) {
	case "amp":
		return '&', nil
	case "lt":
		return '<', nil
	case "gt":
		return '>', nil
	case "apos":
		return '\'', nil
	case "quot":
		return '"', nil
	}
	return 0, errInvalidEntity
}

// AppendUnescaped appends the decoded form of a raw attribute value (or
// text span) to dst, applying exactly the transformations encoding/xml
// applies: entity expansion, CR and CRLF normalization to LF (literal CRs
// only — a CR written as &#13; stays a CR), and character validation. A
// raw '<' is an error, as it is inside encoding/xml quoted values; '>' and
// "]]>" are legal here (the text-path "]]>" prohibition is the scanner's
// job, not this function's).
func AppendUnescaped(dst, raw []byte) ([]byte, error) {
	for i := 0; i < len(raw); {
		c := raw[i]
		switch {
		case c == '&':
			j := i + 1
			for j < len(raw) && raw[j] != ';' && j-i <= maxEntityLen {
				j++
			}
			if j >= len(raw) || raw[j] != ';' {
				return dst, errInvalidEntity
			}
			r, err := ParseEntity(raw[i : j+1])
			if err != nil {
				return dst, err
			}
			dst = utf8.AppendRune(dst, r)
			i = j + 1
		case c == '<':
			return dst, errUnescapedLT
		case c == '\r':
			dst = append(dst, '\n')
			i++
			if i < len(raw) && raw[i] == '\n' {
				i++
			}
		case c == '\t' || c == '\n':
			dst = append(dst, c)
			i++
		case c < 0x20:
			return dst, errIllegalChar
		case c < 0x80:
			dst = append(dst, c)
			i++
		default:
			r, size := utf8.DecodeRune(raw[i:])
			if r == utf8.RuneError && size <= 1 {
				return dst, errInvalidUTF8
			}
			if !InCharRange(r) {
				return dst, errIllegalChar
			}
			dst = append(dst, raw[i:i+size]...)
			i += size
		}
	}
	return dst, nil
}
