package xmldoc

import (
	"bytes"
	"errors"
	"fmt"
	"io"
	"os"
	"sync"
	"sync/atomic"

	"predfilter/internal/guard"
	"predfilter/internal/xmlscan"
)

// Mode selects the XML parser behind Parse and friends.
type Mode int

const (
	// ModeAuto uses the package default: the zero-copy scanner, unless the
	// PREDFILTER_XML_PARSER environment variable forces encoding/xml.
	ModeAuto Mode = iota
	// ModeScan forces the zero-copy scanner fast path (with its
	// encoding/xml fallback for out-of-subset input).
	ModeScan
	// ModeStd forces encoding/xml.
	ModeStd
)

// ParserEnv is the environment variable consulted by ModeAuto: set it to
// "std" (or "stdlib", "encoding/xml") to take the encoding/xml path for
// every document — the escape hatch if the fast path misbehaves in the
// field.
const ParserEnv = "PREDFILTER_XML_PARSER"

var envForceStd atomic.Bool

func init() {
	switch os.Getenv(ParserEnv) {
	case "std", "stdlib", "encoding/xml":
		envForceStd.Store(true)
	}
}

func useStd(mode Mode) bool {
	switch mode {
	case ModeStd:
		return true
	case ModeScan:
		return false
	default:
		return envForceStd.Load()
	}
}

// The fast path re-parses with encoding/xml whenever the scanner stops for
// any reason other than a structural limit trip: malformed input, input
// outside the scanner's subset (DOCTYPE, namespaced element names, Unicode
// names), or a builder-detected structural error. encoding/xml's verdict —
// accept or the exact rejection the old parser produced — is then
// authoritative, so the fast path never changes the package's observable
// accept/reject behavior; the scanner only has to agree with encoding/xml
// on documents it accepts (the differential fuzz target pins that).
var (
	errScanTrailing   = errors.New("xmldoc: content after the document root")
	errScanUnbalanced = errors.New("xmldoc: unbalanced end element")
	errScanMismatched = errors.New("xmldoc: mismatched end element")
	errScanIncomplete = errors.New("xmldoc: incomplete document")
)

// fastFrame is one open element during the scan.
type fastFrame struct {
	tag            string
	nodeID         int
	childIdx       int
	children       int
	attrLo, attrHi int
}

// fastTuple is a pending Tuple, holding attribute arena coordinates
// instead of slices so slab growth during the scan cannot leave earlier
// paths aliasing a stale backing array.
type fastTuple struct {
	tag            string
	occ            int
	nodeID         int
	childIdx       int
	attrLo, attrHi int
}

// fastAttr is a pending Attr; the value lives in the shared value buffer
// at [vLo, vHi).
type fastAttr struct {
	name     string
	vLo, vHi int
}

// fastBuilder is the pooled per-parse scratch state: the scanner, the
// element stack, and the tuple/attr/value slabs the document is
// accumulated into. finalize copies the slabs into exact-size arrays, so
// nothing pooled leaks into a returned Document and steady-state parsing
// costs a handful of allocations regardless of document size.
type fastBuilder struct {
	sc     xmlscan.Scanner
	frames []fastFrame
	tuples []fastTuple
	ends   []int // cumulative tuple-count boundary of each emitted path
	attrs  []fastAttr
	vbuf   []byte
}

var fastPool = sync.Pool{New: func() any { return new(fastBuilder) }}

// build drains the scanner into the slabs, enforcing the structural limits
// at the same points the encoding/xml path does (depth before push, paths
// and tuples at leaf close), and finalizes into a Document.
func (b *fastBuilder) build(lim guard.Limits) (*Document, error) {
	b.frames = b.frames[:0]
	b.tuples = b.tuples[:0]
	b.ends = b.ends[:0]
	b.attrs = b.attrs[:0]
	b.vbuf = b.vbuf[:0]
	nextID := 0
	started := false
	rootClosed := false
	tuples := 0
	for {
		k, err := b.sc.Next()
		if err != nil {
			return nil, err
		}
		switch k {
		case xmlscan.Start:
			if rootClosed {
				return nil, errScanTrailing
			}
			started = true
			if lim.MaxDepth > 0 && len(b.frames) >= lim.MaxDepth {
				return nil, guard.ParseError(guard.Depth, int64(lim.MaxDepth), int64(len(b.frames)+1))
			}
			childIdx := 1
			if n := len(b.frames); n > 0 {
				b.frames[n-1].children++
				childIdx = b.frames[n-1].children
			}
			attrLo := len(b.attrs)
			for i := range b.sc.Attrs {
				a := &b.sc.Attrs[i]
				vLo := len(b.vbuf)
				b.vbuf, err = xmlscan.AppendUnescaped(b.vbuf, a.Value)
				if err != nil {
					return nil, err
				}
				b.attrs = append(b.attrs, fastAttr{
					name: xmlscan.Names.Intern(a.Name),
					vLo:  vLo, vHi: len(b.vbuf),
				})
			}
			b.frames = append(b.frames, fastFrame{
				tag:    xmlscan.Names.Intern(b.sc.Name),
				nodeID: nextID, childIdx: childIdx,
				attrLo: attrLo, attrHi: len(b.attrs),
			})
			nextID++
		case xmlscan.End:
			if len(b.frames) == 0 {
				if rootClosed {
					return nil, errScanTrailing
				}
				return nil, errScanUnbalanced
			}
			top := &b.frames[len(b.frames)-1]
			if string(b.sc.Name) != top.tag {
				return nil, errScanMismatched
			}
			if top.children == 0 {
				if lim.MaxPaths > 0 && len(b.ends) >= lim.MaxPaths {
					return nil, guard.ParseError(guard.Paths, int64(lim.MaxPaths), int64(len(b.ends)+1))
				}
				tuples += len(b.frames)
				if lim.MaxTuples > 0 && tuples > lim.MaxTuples {
					return nil, guard.ParseError(guard.Tuples, int64(lim.MaxTuples), int64(tuples))
				}
				for i := range b.frames {
					f := &b.frames[i]
					// Occurrence number by scanning the open ancestors, as
					// in the encoding/xml path. Interned tags make the
					// comparison pointer-equal in the common case.
					occ := 1
					for j := 0; j < i; j++ {
						if b.frames[j].tag == f.tag {
							occ++
						}
					}
					b.tuples = append(b.tuples, fastTuple{
						tag: f.tag, occ: occ, nodeID: f.nodeID,
						childIdx: f.childIdx, attrLo: f.attrLo, attrHi: f.attrHi,
					})
				}
				b.ends = append(b.ends, len(b.tuples))
			}
			b.frames = b.frames[:len(b.frames)-1]
			if len(b.frames) == 0 {
				rootClosed = true
			}
		case xmlscan.Text:
			// Character data carries no path structure; the scanner already
			// validated it.
		case xmlscan.EOF:
			if !started || !rootClosed {
				return nil, errScanIncomplete
			}
			return b.finalize(nextID), nil
		}
	}
}

// finalize materializes the slabs into a Document in a fixed number of
// allocations: one value string, one attr array, one tuple array, one
// path array, one Document. Everything else this parse touched goes back
// to the pool.
func (b *fastBuilder) finalize(elements int) *Document {
	big := string(b.vbuf)
	var attrArr []Attr
	if len(b.attrs) > 0 {
		attrArr = make([]Attr, len(b.attrs))
		for i, a := range b.attrs {
			attrArr[i] = Attr{Name: a.name, Value: big[a.vLo:a.vHi]}
		}
	}
	tupArr := make([]Tuple, len(b.tuples))
	paths := make([]Publication, len(b.ends))
	lo := 0
	for p, hi := range b.ends {
		for i := lo; i < hi; i++ {
			ft := &b.tuples[i]
			var as []Attr
			if ft.attrHi > ft.attrLo {
				as = attrArr[ft.attrLo:ft.attrHi:ft.attrHi]
			}
			tupArr[i] = Tuple{
				Tag: ft.tag, Pos: i - lo + 1, Occ: ft.occ,
				NodeID: ft.nodeID, ChildIdx: ft.childIdx, Attrs: as,
			}
		}
		paths[p] = Publication{Length: hi - lo, Tuples: tupArr[lo:hi:hi]}
		lo = hi
	}
	return &Document{Paths: paths, Elements: elements}
}

// parseBytesMode parses in-memory input under the selected mode,
// reporting whether the encoding/xml fallback ran.
func parseBytesMode(data []byte, lim guard.Limits, mode Mode) (*Document, bool, error) {
	if lim.MaxDocBytes > 0 && int64(len(data)) > lim.MaxDocBytes {
		return nil, false, guard.ParseError(guard.DocBytes, lim.MaxDocBytes, int64(len(data)))
	}
	if useStd(mode) {
		d, err := parseStdReader(bytes.NewReader(data), lim)
		return d, false, err
	}
	b := fastPool.Get().(*fastBuilder)
	b.sc.ResetBytes(data)
	d, err := b.build(lim)
	b.sc.Release()
	fastPool.Put(b)
	if err == nil {
		return d, false, nil
	}
	var le *guard.LimitError
	if errors.As(err, &le) {
		return nil, false, err
	}
	d, err = parseStdReader(bytes.NewReader(data), lim)
	return d, true, err
}

// parseReaderMode parses streaming input under the selected mode. The
// scanner retains every byte it consumes, so a fallback replays the
// consumed prefix ahead of the rest of the stream; the size limit is
// enforced while streaming on both paths (the fallback re-counts from
// zero over the replayed prefix, so nothing is double-charged).
func parseReaderMode(r io.Reader, lim guard.Limits, mode Mode) (*Document, bool, error) {
	if useStd(mode) {
		d, err := parseStdReader(r, lim)
		return d, false, err
	}
	var in io.Reader = r
	if lim.MaxDocBytes > 0 {
		in = &limitReader{r: r, max: lim.MaxDocBytes}
	}
	b := fastPool.Get().(*fastBuilder)
	b.sc.ResetReader(in)
	d, err := b.build(lim)
	if err == nil {
		b.sc.Release()
		fastPool.Put(b)
		return d, false, nil
	}
	var le *guard.LimitError
	if errors.As(err, &le) {
		b.sc.Release()
		fastPool.Put(b)
		if le.Kind == guard.DocBytes {
			// Reader-originated limit errors arrive wrapped in the package
			// prefix on the encoding/xml path (the decoder hands the
			// reader's error through and parseOneLimits wraps it); the
			// builder's own structural trips are returned bare there.
			return nil, false, fmt.Errorf("xmldoc: %w", err)
		}
		return nil, false, err
	}
	consumed := append([]byte(nil), b.sc.Consumed()...)
	b.sc.Release()
	fastPool.Put(b)
	d, err = parseStdReader(io.MultiReader(bytes.NewReader(consumed), r), lim)
	return d, true, err
}
