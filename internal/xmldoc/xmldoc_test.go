package xmldoc

import (
	"io"
	"math/rand"
	"reflect"
	"strings"
	"testing"
	"testing/quick"
)

func TestParseSimple(t *testing.T) {
	doc, err := Parse([]byte(`<a><b><c/></b><d/></a>`))
	if err != nil {
		t.Fatal(err)
	}
	if doc.Elements != 4 {
		t.Errorf("Elements = %d, want 4", doc.Elements)
	}
	if len(doc.Paths) != 2 {
		t.Fatalf("paths = %d, want 2", len(doc.Paths))
	}
	if got := doc.Paths[0].String(); got != "/a/b/c" {
		t.Errorf("path 0 = %s", got)
	}
	if got := doc.Paths[1].String(); got != "/a/d" {
		t.Errorf("path 1 = %s", got)
	}
	if doc.Paths[0].Length != 3 || doc.Paths[1].Length != 2 {
		t.Errorf("lengths = %d, %d", doc.Paths[0].Length, doc.Paths[1].Length)
	}
}

// TestExample1 reproduces Example 1 of the paper: the path (a,b,c,a,b,c)
// is annotated with occurrence numbers (a¹,b¹,c¹,a²,b²,c²) and encoded as
// (length,6),(a¹,1),(b¹,2),(c¹,3),(a²,4),(b²,5),(c²,6).
func TestExample1(t *testing.T) {
	doc, err := Parse([]byte(`<a><b><c><a><b><c/></b></a></c></b></a>`))
	if err != nil {
		t.Fatal(err)
	}
	if len(doc.Paths) != 1 {
		t.Fatalf("paths = %d", len(doc.Paths))
	}
	p := doc.Paths[0]
	if p.Length != 6 {
		t.Errorf("length = %d, want 6", p.Length)
	}
	want := []struct {
		tag string
		pos int
		occ int
	}{
		{"a", 1, 1}, {"b", 2, 1}, {"c", 3, 1}, {"a", 4, 2}, {"b", 5, 2}, {"c", 6, 2},
	}
	for i, w := range want {
		tu := p.Tuples[i]
		if tu.Tag != w.tag || tu.Pos != w.pos || tu.Occ != w.occ {
			t.Errorf("tuple %d = (%s,%d) occ %d, want (%s,%d) occ %d",
				i, tu.Tag, tu.Pos, tu.Occ, w.tag, w.pos, w.occ)
		}
	}
}

func TestAttributes(t *testing.T) {
	doc, err := Parse([]byte(`<a x="1" y="two"><b z="3"/></a>`))
	if err != nil {
		t.Fatal(err)
	}
	tu := &doc.Paths[0].Tuples[0]
	if v, ok := tu.Attr("x"); !ok || v != "1" {
		t.Errorf("Attr(x) = %q, %v", v, ok)
	}
	if v, ok := tu.Attr("y"); !ok || v != "two" {
		t.Errorf("Attr(y) = %q, %v", v, ok)
	}
	if _, ok := tu.Attr("z"); ok {
		t.Error("Attr(z) found on a")
	}
	if v, ok := doc.Paths[0].Tuples[1].Attr("z"); !ok || v != "3" {
		t.Errorf("b Attr(z) = %q, %v", v, ok)
	}
}

func TestNodeIDsAndChildIdx(t *testing.T) {
	doc, err := Parse([]byte(`<a><b><c/></b><b><d/></b></a>`))
	if err != nil {
		t.Fatal(err)
	}
	if len(doc.Paths) != 2 {
		t.Fatalf("paths = %d", len(doc.Paths))
	}
	p0, p1 := doc.Paths[0], doc.Paths[1]
	// Shared root must have the same node id in both paths; the two b
	// siblings must not.
	if p0.Tuples[0].NodeID != p1.Tuples[0].NodeID {
		t.Error("root node id differs between paths")
	}
	if p0.Tuples[1].NodeID == p1.Tuples[1].NodeID {
		t.Error("sibling b elements share a node id")
	}
	// Child indices <m1,...>: root is child 1; first b child 1, second
	// b child 2.
	if p0.Tuples[0].ChildIdx != 1 || p0.Tuples[1].ChildIdx != 1 || p1.Tuples[1].ChildIdx != 2 {
		t.Errorf("child indices: %d %d / %d", p0.Tuples[0].ChildIdx, p0.Tuples[1].ChildIdx, p1.Tuples[1].ChildIdx)
	}
	// Occurrence numbers are per path: each path sees its b as the first.
	if p0.Tuples[1].Occ != 1 || p1.Tuples[1].Occ != 1 {
		t.Errorf("occ = %d, %d; want 1, 1", p0.Tuples[1].Occ, p1.Tuples[1].Occ)
	}
}

func TestIgnoresNonElements(t *testing.T) {
	in := `<?xml version="1.0"?><!-- c --><a>text<b/><!-- x -->more<![CDATA[raw]]></a>`
	doc, err := Parse([]byte(in))
	if err != nil {
		t.Fatal(err)
	}
	if doc.Elements != 2 || len(doc.Paths) != 1 || doc.Paths[0].String() != "/a/b" {
		t.Errorf("doc = %+v", doc)
	}
}

func TestSingleElement(t *testing.T) {
	doc, err := Parse([]byte(`<root/>`))
	if err != nil {
		t.Fatal(err)
	}
	if len(doc.Paths) != 1 || doc.Paths[0].Length != 1 {
		t.Fatalf("paths = %+v", doc.Paths)
	}
}

func TestParseErrors(t *testing.T) {
	for _, in := range []string{`<a><b></a>`, `<a>`, `</a>`, `<a`} {
		if _, err := Parse([]byte(in)); err == nil {
			t.Errorf("Parse(%q) succeeded", in)
		}
	}
}

func TestFromPaths(t *testing.T) {
	doc := FromPaths([]string{"a", "b", "a"}, []string{"x"})
	if doc.Elements != 4 || len(doc.Paths) != 2 {
		t.Fatalf("doc = %+v", doc)
	}
	p := doc.Paths[0]
	if p.Tuples[2].Occ != 2 {
		t.Errorf("occ of second a = %d", p.Tuples[2].Occ)
	}
	if got := p.Tags(); !reflect.DeepEqual(got, []string{"a", "b", "a"}) {
		t.Errorf("Tags = %v", got)
	}
}

// TestOccurrenceInvariant: for any parsed document, occurrence numbers
// count per-path tag repetitions exactly, and positions are 1..Length.
func TestOccurrenceInvariant(t *testing.T) {
	rng := rand.New(rand.NewSource(51))
	gen := func(r *rand.Rand) []byte {
		tags := []string{"a", "b", "c"}
		var b strings.Builder
		var build func(depth int)
		build = func(depth int) {
			tag := tags[r.Intn(len(tags))]
			b.WriteString("<" + tag + ">")
			if depth < 6 {
				for k := r.Intn(3); k > 0; k-- {
					build(depth + 1)
				}
			}
			b.WriteString("</" + tag + ">")
		}
		build(1)
		return []byte(b.String())
	}
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed ^ rng.Int63()))
		doc, err := Parse(gen(r))
		if err != nil {
			return false
		}
		for _, p := range doc.Paths {
			if p.Length != len(p.Tuples) {
				return false
			}
			counts := map[string]int{}
			for i, tu := range p.Tuples {
				if tu.Pos != i+1 {
					return false
				}
				counts[tu.Tag]++
				if tu.Occ != counts[tu.Tag] {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Error(err)
	}
}

// TestPathCount: the number of root-to-leaf paths equals the number of
// leaf elements.
func TestPathCount(t *testing.T) {
	doc, err := Parse([]byte(`<a><b/><c><d/><e/><f><g/></f></c></a>`))
	if err != nil {
		t.Fatal(err)
	}
	if len(doc.Paths) != 4 { // b, d, e, g
		t.Errorf("paths = %d, want 4", len(doc.Paths))
	}
}

func TestParseStream(t *testing.T) {
	in := `<a><b/></a> <c/>
	<d><e/></d>`
	var roots []string
	n, err := ParseStream(strings.NewReader(in), func(d *Document) error {
		roots = append(roots, d.Paths[0].Tuples[0].Tag)
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if n != 3 || !reflect.DeepEqual(roots, []string{"a", "c", "d"}) {
		t.Errorf("n=%d roots=%v", n, roots)
	}

	// Errors stop the stream with the count of complete documents.
	n, err = ParseStream(strings.NewReader(`<a/><b>`), func(*Document) error { return nil })
	if err == nil || n != 1 {
		t.Errorf("truncated stream: n=%d err=%v", n, err)
	}

	// Callback errors propagate.
	sentinel := false
	_, err = ParseStream(strings.NewReader(`<a/><b/>`), func(*Document) error {
		if sentinel {
			t.Fatal("callback ran after error")
		}
		sentinel = true
		return io.ErrUnexpectedEOF
	})
	if err != io.ErrUnexpectedEOF {
		t.Errorf("callback error not propagated: %v", err)
	}

	// Node ids restart per document (documents are independent).
	var first []int
	ParseStream(strings.NewReader(`<a><b/></a><a><b/></a>`), func(d *Document) error {
		first = append(first, d.Paths[0].Tuples[0].NodeID)
		return nil
	})
	if len(first) != 2 || first[0] != first[1] {
		t.Errorf("per-document node ids = %v, want equal restarts", first)
	}
}

func TestParseRejectsConcatenated(t *testing.T) {
	if _, err := Parse([]byte(`<a/><b/>`)); err == nil {
		t.Error("Parse accepted two top-level elements")
	}
	if _, err := Parse([]byte(``)); err == nil {
		t.Error("Parse accepted empty input")
	}
	if _, err := Parse([]byte(`just text`)); err == nil {
		t.Error("Parse accepted elementless input")
	}
	// Trailing comments and whitespace are fine.
	if _, err := Parse([]byte(`<a/> <!-- done -->` + "\n")); err != nil {
		t.Errorf("Parse rejected trailing comment: %v", err)
	}
}
