package xmldoc

import (
	"bytes"
	"errors"
	"strings"
	"testing"

	"predfilter/internal/guard"
)

func nested(depth int) []byte {
	var b bytes.Buffer
	for i := 0; i < depth; i++ {
		b.WriteString("<d>")
	}
	for i := 0; i < depth; i++ {
		b.WriteString("</d>")
	}
	return b.Bytes()
}

func wide(leaves int) []byte {
	var b bytes.Buffer
	b.WriteString("<r>")
	for i := 0; i < leaves; i++ {
		b.WriteString("<p/>")
	}
	b.WriteString("</r>")
	return b.Bytes()
}

func wantLimit(t *testing.T, err error, kind guard.Kind) *guard.LimitError {
	t.Helper()
	var le *guard.LimitError
	if !errors.As(err, &le) {
		t.Fatalf("err = %v, want *guard.LimitError", err)
	}
	if le.Kind != kind {
		t.Fatalf("tripped %v, want %v (err: %v)", le.Kind, kind, err)
	}
	if le.Stage != "parse" {
		t.Fatalf("Stage = %q, want parse", le.Stage)
	}
	return le
}

func TestParseLimitsDepth(t *testing.T) {
	doc := nested(10)
	if _, err := ParseLimits(doc, guard.Limits{MaxDepth: 10}); err != nil {
		t.Fatalf("depth exactly at bound: %v", err)
	}
	le := wantLimit(t, mustErr(t, doc, guard.Limits{MaxDepth: 9}), guard.Depth)
	if le.Limit != 9 || le.Got != 10 {
		t.Fatalf("LimitError = %+v, want Limit=9 Got=10", le)
	}
}

func TestParseLimitsPaths(t *testing.T) {
	doc := wide(8)
	if _, err := ParseLimits(doc, guard.Limits{MaxPaths: 8}); err != nil {
		t.Fatalf("paths exactly at bound: %v", err)
	}
	le := wantLimit(t, mustErr(t, doc, guard.Limits{MaxPaths: 7}), guard.Paths)
	if le.Limit != 7 {
		t.Fatalf("LimitError = %+v, want Limit=7", le)
	}
}

func TestParseLimitsTuples(t *testing.T) {
	// wide(8) decomposes into 8 paths of 2 tuples each = 16 tuples.
	doc := wide(8)
	if _, err := ParseLimits(doc, guard.Limits{MaxTuples: 16}); err != nil {
		t.Fatalf("tuples exactly at bound: %v", err)
	}
	wantLimit(t, mustErr(t, doc, guard.Limits{MaxTuples: 15}), guard.Tuples)
}

func TestParseLimitsDocBytes(t *testing.T) {
	doc := []byte("<a><b/></a>")
	if _, err := ParseLimits(doc, guard.Limits{MaxDocBytes: int64(len(doc))}); err != nil {
		t.Fatalf("size exactly at bound: %v", err)
	}
	le := wantLimit(t, mustErr(t, doc, guard.Limits{MaxDocBytes: int64(len(doc)) - 1}), guard.DocBytes)
	if le.Got != int64(len(doc)) {
		t.Fatalf("Got = %d, want %d", le.Got, len(doc))
	}
}

func TestParseReaderLimitsDocBytes(t *testing.T) {
	doc := "<a><b/></a>"
	// A stream ending exactly at the bound parses; one byte more trips.
	if _, err := ParseReaderLimits(strings.NewReader(doc), guard.Limits{MaxDocBytes: int64(len(doc))}); err != nil {
		t.Fatalf("stream exactly at bound: %v", err)
	}
	_, err := ParseReaderLimits(strings.NewReader(doc+" "), guard.Limits{MaxDocBytes: int64(len(doc))})
	wantLimit(t, err, guard.DocBytes)
}

func TestParseReaderLimitsDepth(t *testing.T) {
	_, err := ParseReaderLimits(bytes.NewReader(nested(64)), guard.Limits{MaxDepth: 8})
	wantLimit(t, err, guard.Depth)
}

func TestParseLimitsZeroEnforcesNothing(t *testing.T) {
	d, err := ParseLimits(nested(100), guard.Limits{})
	if err != nil {
		t.Fatalf("zero limits rejected a document: %v", err)
	}
	if len(d.Paths) != 1 {
		t.Fatalf("paths = %d, want 1", len(d.Paths))
	}
}

func TestParseLimitsFailsFast(t *testing.T) {
	// A depth bomb must be rejected from its prefix without parsing the
	// rest: parse a 1M-deep document with MaxDepth 16 and rely on the test
	// timeout to catch quadratic or hanging behavior. (No closing tags are
	// even present — only the opening run — so completing the parse is
	// impossible and an early structural stop is the only way out.)
	var b bytes.Buffer
	for i := 0; i < 1<<20; i++ {
		b.WriteString("<d>")
	}
	_, err := ParseReaderLimits(bytes.NewReader(b.Bytes()), guard.Limits{MaxDepth: 16})
	wantLimit(t, err, guard.Depth)
}

func mustErr(t *testing.T, data []byte, lim guard.Limits) error {
	t.Helper()
	d, err := ParseLimits(data, lim)
	if err == nil {
		t.Fatalf("parse succeeded (%d paths), want a limit error", len(d.Paths))
	}
	return err
}
