package xmldoc

import (
	"strings"
	"testing"
)

// BenchmarkParse measures SAX path extraction and publication encoding on
// a repetitive ~10 KB document (the per-document cost the paper reports
// as negligible).
func BenchmarkParse(b *testing.B) {
	var sb strings.Builder
	sb.WriteString("<root>")
	for i := 0; i < 60; i++ {
		sb.WriteString(`<rec id="1"><k>x</k><v a="2"><w/><w/></v></rec>`)
	}
	sb.WriteString("</root>")
	data := []byte(sb.String())
	b.SetBytes(int64(len(data)))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := Parse(data); err != nil {
			b.Fatal(err)
		}
	}
}
