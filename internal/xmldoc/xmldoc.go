// Package xmldoc decomposes XML documents into root-to-leaf paths and
// encodes each path as a "publication": the set of (attribute, value)
// tuples defined in §3.3 of the paper — a (length, n) tuple plus one
// (tag, position) tuple per location step, annotated with per-path tag
// occurrence numbers, element attributes, per-document node identifiers
// and child indices (the <m1,...,mn> structure tuples of §5).
//
// Parsing is streaming (SAX style): only a stack of open elements is
// retained, and a path is emitted each time a leaf element closes. Two
// parsers implement that contract. The default is the zero-copy scanner
// of internal/xmlscan (pooled scratch, interned tag dictionary, a handful
// of allocations per document); input the scanner does not accept —
// malformed or outside its subset, e.g. DOCTYPE declarations or
// namespaced element names — is transparently re-parsed with
// encoding/xml, whose verdict is authoritative. ModeStd (or the
// PREDFILTER_XML_PARSER environment variable) forces the encoding/xml
// path outright.
package xmldoc

import (
	"encoding/xml"
	"fmt"
	"io"
	"strings"
	"time"

	"predfilter/internal/guard"
	"predfilter/internal/metrics"
)

// Attr is an attribute name/value pair attached to an element.
type Attr struct {
	Name  string
	Value string
}

// Tuple is one (tag, position) pair of a publication. Pos is the 1-based
// position of the tag in the path; Occ is the tag's occurrence number
// within the path (1-based: the k-th time this tag name appears in the
// path); NodeID identifies the element within its document so that nested
// path recombination can detect shared ancestors; ChildIdx says this
// element is the ChildIdx-th child element of its parent (1 for the root).
type Tuple struct {
	Tag      string
	Pos      int
	Occ      int
	NodeID   int
	ChildIdx int
	Attrs    []Attr
}

// Attr returns the value of the named attribute and whether it is present.
func (t *Tuple) Attr(name string) (string, bool) {
	for _, a := range t.Attrs {
		if a.Name == name {
			return a.Value, true
		}
	}
	return "", false
}

// Publication is the encoding of a single document path
// {(length, n), (t1, 1), ..., (tn, n)}.
type Publication struct {
	Length int
	Tuples []Tuple
}

// Tags returns the tag names of the path in order.
func (p *Publication) Tags() []string {
	tags := make([]string, len(p.Tuples))
	for i, t := range p.Tuples {
		tags[i] = t.Tag
	}
	return tags
}

// String renders the path as /t1/t2/.../tn.
func (p *Publication) String() string {
	var b strings.Builder
	for _, t := range p.Tuples {
		b.WriteByte('/')
		b.WriteString(t.Tag)
	}
	return b.String()
}

// Document is the path-decomposed form of one XML document.
type Document struct {
	Paths    []Publication
	Elements int // total number of elements in the document
}

// Parse decomposes the XML document in data.
func Parse(data []byte) (*Document, error) {
	return ParseLimits(data, guard.Limits{})
}

// ParseLimits is Parse with structural limits enforced as the document
// streams: nesting depth, path count, total tuple count, and raw size
// (checked up front for byte-slice input). Exceeding a limit returns a
// typed *guard.LimitError; zero limits enforce nothing.
func ParseLimits(data []byte, lim guard.Limits) (*Document, error) {
	return ParseLimitsMode(data, lim, ModeAuto)
}

// ParseLimitsMode is ParseLimits with an explicit parser selection (see
// Mode; ModeAuto is what ParseLimits uses).
func ParseLimitsMode(data []byte, lim guard.Limits, mode Mode) (*Document, error) {
	d, _, err := parseBytesMode(data, lim, mode)
	return d, err
}

// ParseMetered is Parse with stage observation: the parse + path
// extraction duration and input size land in ms (the engine's metric
// set). A nil ms records nothing.
func ParseMetered(data []byte, ms *metrics.Set) (*Document, error) {
	return ParseMeteredLimits(data, ms, guard.Limits{})
}

// ParseMeteredLimits is ParseLimits with stage observation.
func ParseMeteredLimits(data []byte, ms *metrics.Set, lim guard.Limits) (*Document, error) {
	return ParseMeteredLimitsMode(data, ms, lim, ModeAuto)
}

// ParseMeteredLimitsMode is ParseMeteredLimits with an explicit parser
// selection. Alongside duration and size it records which parse path
// served the document (scanner fast path vs encoding/xml fallback).
func ParseMeteredLimitsMode(data []byte, ms *metrics.Set, lim guard.Limits, mode Mode) (*Document, error) {
	t0 := time.Now()
	d, fellBack, err := parseBytesMode(data, lim, mode)
	ms.ObserveParse(time.Since(t0), len(data), err)
	ms.ObserveParsePath(!useStd(mode) && err == nil && !fellBack, fellBack)
	return d, err
}

// ParseReaderMetered is ParseReader with stage observation. The input
// size of a stream is not known, so only the duration is recorded.
func ParseReaderMetered(r io.Reader, ms *metrics.Set) (*Document, error) {
	return ParseReaderMeteredLimits(r, ms, guard.Limits{})
}

// ParseReaderMeteredLimits is ParseReaderLimits with stage observation.
func ParseReaderMeteredLimits(r io.Reader, ms *metrics.Set, lim guard.Limits) (*Document, error) {
	return ParseReaderMeteredLimitsMode(r, ms, lim, ModeAuto)
}

// ParseReaderMeteredLimitsMode is ParseReaderMeteredLimits with an
// explicit parser selection.
func ParseReaderMeteredLimitsMode(r io.Reader, ms *metrics.Set, lim guard.Limits, mode Mode) (*Document, error) {
	t0 := time.Now()
	d, fellBack, err := parseReaderMode(r, lim, mode)
	ms.ObserveParse(time.Since(t0), 0, err)
	ms.ObserveParsePath(!useStd(mode) && err == nil && !fellBack, fellBack)
	return d, err
}

// limitReader bounds the bytes consumed from a stream, failing with a
// typed *guard.LimitError once the bound is crossed (unlike io.LimitReader
// it errors instead of faking EOF, so a truncated bomb cannot masquerade
// as a well-formed smaller document error).
type limitReader struct {
	r   io.Reader
	n   int64 // bytes consumed
	max int64
}

func (l *limitReader) Read(p []byte) (int, error) {
	// Allow one sentinel byte past the bound: a document ending exactly at
	// the bound reads EOF there and parses, while a longer one trips.
	rem := l.max - l.n + 1
	if rem <= 0 {
		return 0, guard.ParseError(guard.DocBytes, l.max, l.n)
	}
	if int64(len(p)) > rem {
		p = p[:rem]
	}
	n, err := l.r.Read(p)
	l.n += int64(n)
	if l.n > l.max {
		return n, guard.ParseError(guard.DocBytes, l.max, l.n)
	}
	return n, err
}

// ParseReader decomposes the XML document read from r. Input with more
// than one top-level element is rejected; use ParseStream for
// concatenated documents.
func ParseReader(r io.Reader) (*Document, error) {
	return ParseReaderLimits(r, guard.Limits{})
}

// ParseReaderLimits is ParseReader with structural limits enforced as the
// stream is consumed (see ParseLimits).
func ParseReaderLimits(r io.Reader, lim guard.Limits) (*Document, error) {
	return ParseReaderLimitsMode(r, lim, ModeAuto)
}

// ParseReaderLimitsMode is ParseReaderLimits with an explicit parser
// selection.
func ParseReaderLimitsMode(r io.Reader, lim guard.Limits, mode Mode) (*Document, error) {
	d, _, err := parseReaderMode(r, lim, mode)
	return d, err
}

// parseStdReader is the encoding/xml path: the original parser, kept both
// as the ModeStd implementation and as the authority the scanner fast
// path falls back to on any input it does not accept.
func parseStdReader(r io.Reader, lim guard.Limits) (*Document, error) {
	if lim.MaxDocBytes > 0 {
		r = &limitReader{r: r, max: lim.MaxDocBytes}
	}
	dec := xml.NewDecoder(r)
	doc, err := parseOneLimits(dec, lim)
	if err == io.EOF {
		return nil, fmt.Errorf("xmldoc: no document element")
	}
	if err != nil {
		return nil, err
	}
	for {
		tok, err := dec.Token()
		if err == io.EOF {
			return doc, nil
		}
		if err != nil {
			return nil, fmt.Errorf("xmldoc: %w", err)
		}
		switch tok.(type) {
		case xml.StartElement, xml.EndElement:
			return nil, fmt.Errorf("xmldoc: content after the document root; use ParseStream for concatenated documents")
		}
	}
}

// ParseStream reads a sequence of concatenated XML documents from r
// (optionally separated by whitespace), invoking fn for each. It stops at
// the first parse error or when fn returns an error, and reports the
// number of complete documents processed.
func ParseStream(r io.Reader, fn func(*Document) error) (int, error) {
	dec := xml.NewDecoder(r)
	n := 0
	for {
		doc, err := parseOne(dec)
		if err == io.EOF {
			return n, nil
		}
		if err != nil {
			return n, err
		}
		if err := fn(doc); err != nil {
			return n, err
		}
		n++
	}
}

// parseOne decodes a single document's element tree from an open decoder
// with no structural limits. It returns io.EOF when no further document
// starts.
func parseOne(dec *xml.Decoder) (*Document, error) {
	return parseOneLimits(dec, guard.Limits{})
}

// parseOneLimits is parseOne enforcing the structural limits as the token
// stream is consumed: the decoder never holds more than MaxDepth open
// elements, and path extraction stops at MaxPaths paths / MaxTuples total
// tuples — a bomb is rejected while still small, not after
// materialization.
func parseOneLimits(dec *xml.Decoder, lim guard.Limits) (*Document, error) {
	doc := &Document{}
	type frame struct {
		tag      string
		attrs    []Attr
		nodeID   int
		childIdx int
		children int
	}
	var stack []frame
	nextID := 0
	started := false
	tuples := 0
	for {
		tok, err := dec.Token()
		if err == io.EOF {
			if !started {
				return nil, io.EOF
			}
			return nil, fmt.Errorf("xmldoc: unexpected EOF with %d open elements", len(stack))
		}
		if err != nil {
			return nil, fmt.Errorf("xmldoc: %w", err)
		}
		switch t := tok.(type) {
		case xml.StartElement:
			started = true
			if lim.MaxDepth > 0 && len(stack) >= lim.MaxDepth {
				return nil, guard.ParseError(guard.Depth, int64(lim.MaxDepth), int64(len(stack)+1))
			}
			childIdx := 1
			if n := len(stack); n > 0 {
				stack[n-1].children++
				childIdx = stack[n-1].children
			}
			var attrs []Attr
			if len(t.Attr) > 0 {
				attrs = make([]Attr, len(t.Attr))
				for i, a := range t.Attr {
					attrs[i] = Attr{Name: a.Name.Local, Value: a.Value}
				}
			}
			stack = append(stack, frame{tag: t.Name.Local, attrs: attrs, nodeID: nextID, childIdx: childIdx})
			nextID++
		case xml.EndElement:
			if len(stack) == 0 {
				return nil, fmt.Errorf("xmldoc: unbalanced end element <%s>", t.Name.Local)
			}
			if stack[len(stack)-1].children == 0 {
				if lim.MaxPaths > 0 && len(doc.Paths) >= lim.MaxPaths {
					return nil, guard.ParseError(guard.Paths, int64(lim.MaxPaths), int64(len(doc.Paths)+1))
				}
				tuples += len(stack)
				if lim.MaxTuples > 0 && tuples > lim.MaxTuples {
					return nil, guard.ParseError(guard.Tuples, int64(lim.MaxTuples), int64(tuples))
				}
				pub := Publication{Length: len(stack), Tuples: make([]Tuple, len(stack))}
				for i, f := range stack {
					// Occurrence number by scanning the open ancestors:
					// quadratic in the nesting depth, but depths are small
					// and it beats a per-path map allocation on the parse
					// hot path.
					occ := 1
					for j := 0; j < i; j++ {
						if stack[j].tag == f.tag {
							occ++
						}
					}
					pub.Tuples[i] = Tuple{
						Tag: f.tag, Pos: i + 1, Occ: occ,
						NodeID: f.nodeID, ChildIdx: f.childIdx, Attrs: f.attrs,
					}
				}
				doc.Paths = append(doc.Paths, pub)
			}
			stack = stack[:len(stack)-1]
			if len(stack) == 0 {
				doc.Elements = nextID
				return doc, nil
			}
		}
	}
}

// FromPaths builds a Document directly from tag-name paths, computing
// occurrence numbers. It is intended for tests and synthetic workloads
// where no serialized XML exists. Node ids are unique per tuple (paths are
// treated as disjoint except for nothing), and child indices are all 1.
func FromPaths(paths ...[]string) *Document {
	doc := &Document{}
	nextID := 0
	for _, tags := range paths {
		pub := Publication{Length: len(tags), Tuples: make([]Tuple, len(tags))}
		occ := make(map[string]int, len(tags))
		for i, tag := range tags {
			occ[tag]++
			pub.Tuples[i] = Tuple{Tag: tag, Pos: i + 1, Occ: occ[tag], NodeID: nextID, ChildIdx: 1}
			nextID++
		}
		doc.Paths = append(doc.Paths, pub)
		doc.Elements += len(tags)
	}
	return doc
}
