//go:build !race

// The race detector's instrumentation changes allocation behavior, so the
// AllocsPerRun assertions only run in the regular test legs.

package xmldoc

import (
	"fmt"
	"strings"
	"testing"

	"predfilter/internal/guard"
)

// TestParseScanAllocs pins the steady-state allocation cost of the
// zero-copy parse path. After a warm-up parse (which sizes the pooled
// scratch and interns the vocabulary), a parse allocates only the
// finalized Document: the value string, the attr/tuple/path arrays and
// the Document header — a constant, regardless of document size. The
// bound is deliberately loose against pool churn but far below both the
// ~40-element document's size and the >1000 allocs/doc the encoding/xml
// path costs, so any per-element or per-token regression trips it.
func TestParseScanAllocs(t *testing.T) {
	var sb strings.Builder
	sb.WriteString("<doc>")
	for i := 0; i < 12; i++ {
		fmt.Fprintf(&sb, `<sec id="s%d"><p class="x">text &amp; more</p><p>t</p></sec>`, i)
	}
	sb.WriteString("</doc>")
	data := []byte(sb.String())

	// Warm up pool, dictionary, and scratch capacities.
	for i := 0; i < 3; i++ {
		if _, err := ParseLimitsMode(data, guard.Limits{}, ModeScan); err != nil {
			t.Fatal(err)
		}
	}
	const bound = 8
	allocs := testing.AllocsPerRun(100, func() {
		if _, err := ParseLimitsMode(data, guard.Limits{}, ModeScan); err != nil {
			t.Fatal(err)
		}
	})
	if allocs > bound {
		t.Fatalf("scanner parse allocates %.1f per document, want <= %d", allocs, bound)
	}
}

// TestParseScanAllocsReader is the reader-mode variant: the retained input
// buffer and read scratch are pooled too, so a stream parse stays within a
// small constant plus the one reader wrapper the caller provides.
func TestParseScanAllocsReader(t *testing.T) {
	var sb strings.Builder
	sb.WriteString("<doc>")
	for i := 0; i < 12; i++ {
		fmt.Fprintf(&sb, `<sec id="s%d"><p>text</p></sec>`, i)
	}
	sb.WriteString("</doc>")
	data := sb.String()

	for i := 0; i < 3; i++ {
		if _, err := ParseReaderLimitsMode(strings.NewReader(data), guard.Limits{}, ModeScan); err != nil {
			t.Fatal(err)
		}
	}
	const bound = 12
	allocs := testing.AllocsPerRun(100, func() {
		if _, err := ParseReaderLimitsMode(strings.NewReader(data), guard.Limits{}, ModeScan); err != nil {
			t.Fatal(err)
		}
	})
	if allocs > bound {
		t.Fatalf("reader-mode scanner parse allocates %.1f per document, want <= %d", allocs, bound)
	}
}
