package xmldoc

import (
	"bytes"
	"errors"
	"reflect"
	"strings"
	"testing"

	"predfilter/internal/guard"
)

// equivCases is shared by the table test and the fuzz seed corpus: inputs
// chosen to hit the scanner's edges (accepted and rejected alike). On
// every one of them ModeScan and ModeStd must agree.
var equivCases = []string{
	// Plain structure.
	`<a/>`,
	`<a></a>`,
	`<a><b/><b/><c><d/></c></a>`,
	`<r><x><y><z>deep</z></y></x></r>`,
	// Attributes: quoting styles, duplicates, no inter-attr space,
	// namespace prefixes, whitespace around '='.
	`<a x="1" y='2'/>`,
	`<a x="1"y='2'/>`,
	`<a x = "1"/>`,
	`<a x="1" x="2"/>`,
	`<a xml:lang="en" xmlns="u" xmlns:p="v" p:q="w"/>`,
	`<a :x="1" y:="2"/>`,
	`<a value="a&amp;b&lt;c&gt;d&apos;e&quot;f"/>`,
	`<a v="&#65;&#x41;&#x1f600;"/>`,
	`<a v="tab	tab"/>`,
	"<a v=\"line\nline\"/>",
	"<a v=\"cr\rcr\"/>",
	"<a v=\"crlf\r\nx\"/>",
	`<a v="&#13;"/>`,
	`<a v=">]]>ok"/>`,
	`<a v="bad<bad"/>`,
	`<a v="&#xD800;"/>`,
	`<a v="&bad;"/>`,
	`<a v="&#x110000;"/>`,
	`<a v='mixed "quotes"'/>`,
	`<a b="1" b="1" b="1"/>`,
	// Character data.
	`<a>text</a>`,
	`<a>one<b>two</b>three</a>`,
	"<a>\r\n\t mixed \r ws</a>",
	`<a>&amp;&#65;</a>`,
	`<a>]]</a>`,
	`<a>]]></a>`,
	`<a>&nope;</a>`,
	"<a>\x00</a>",
	"<a>\x1f</a>",
	"<a>\x7f</a>",
	"<a>\ufffd</a>",
	"<a>\xff\xfe</a>",
	"<a>héllo wörld 漢字 🙂</a>",
	// CDATA, comments, PIs.
	`<a><![CDATA[<not><tags>&amp;]]></a>`,
	`<a><![CDATA[]]]><![CDATA[]]]]><![CDATA[>]]></a>`,
	`<a><![CDAT[x]]></a>`,
	`<a><![cdata[x]]></a>`,
	`<a><!-- comment -- --></a>`,
	`<a><!-- ok - dash --></a>`,
	`<!----><a/>`,
	`<!-----><a/>`,
	`<a><?pi body?></a>`,
	`<a><?pi?></a>`,
	`<?target data?><a/>`,
	`<?xml version="1.0"?><a/>`,
	`<?xml version="1.0" encoding="UTF-8"?><a/>`,
	`<?xml version="1.0" encoding="utf-8"?><a/>`,
	`<?xml version="1.0" encoding="ISO-8859-1"?><a/>`,
	`<a/><?xml version="1.0" encoding="ISO-8859-1"?>`,
	`<a><?xml encoding="ISO-8859-1"?></a>`,
	`<?xml version="1.0" xencoding="ISO-8859-1"?><a/>`,
	`<?xml version="1.0" encoding=utf-8?><a/>`,
	`<?xml version="1.0" encoding="utf-8?><a/>`,
	`<?xml version="0"?><a/>`,
	`<?xml version="1.1"?><a/>`,
	`<?xml version=""?><a/>`,
	`<?xml version=1.1?><a/>`,
	`<a/><?xml version="2.0"?>`,
	// Doctype and directives: out of the scanner's subset, settled by the
	// fallback.
	`<!DOCTYPE doc><doc/>`,
	`<!DOCTYPE doc [<!ELEMENT doc EMPTY>]><doc/>`,
	`<!ENTITY x "y"><a/>`,
	// Leading/trailing content around the root.
	"\uFEFF<a/>",
	`  <a/>  `,
	"junk<a/>junk",
	`<a/><b/>`,
	`<a/></b>`,
	`<a/><!-- trailing -->`,
	`<a/><!-- unterminated`,
	`<a/><?pi data?>`,
	`<a/><![CDATA[x]]>`,
	// Malformed structure.
	``,
	`   `,
	`<`,
	`<a`,
	`<a>`,
	`</a>`,
	`<a><b></a>`,
	`<a></a`,
	`<a b="1"`,
	`<a b="1`,
	`<a/ >`,
	`</ a>`,
	"</a\t\n>",
	`</a x>`,
	`<a b = c/>`,
	`<a b/>`,
	`<1a/>`,
	`<-a/>`,
	`<a.b-c_d/>`,
	`<a><a><a></a></a></a>`,
	// Namespaced element names (fallback path) including the mismatched
	// end-tag quirk encoding/xml accepts.
	`<p:a xmlns:p="u"></p:a>`,
	`<p:a xmlns:p="u" xmlns:q="u"></q:a>`,
	`<p:q:r/>`,
	// Unicode names (fallback path).
	`<日本語>x</日本語>`,
	`<a é="1"/>`,
	`<aé/>`,
	// Non-ASCII bytes terminating a name: encoding/xml folds them into the
	// name and then validates it as UTF-8 (fuzzer-found divergence).
	"<?A\x800?><A/>",
	"<?pi\xc3\xa9 x?><a/>",
	"<a\x80/>",
	"<a b\x80=\"1\"/>",
	// Self-closing with the works.
	`<a><b c="1" d='2'/><b/></a>`,
}

// parseBoth parses data under both parser selections and fails the test on
// any accept/reject or structural divergence. It returns the ModeStd view.
func parseBoth(t testing.TB, data []byte, lim guard.Limits) (*Document, error) {
	t.Helper()
	ds, errS := ParseLimitsMode(data, lim, ModeScan)
	dx, errX := ParseLimitsMode(data, lim, ModeStd)
	if (errS == nil) != (errX == nil) {
		t.Fatalf("accept/reject divergence on %q:\n  scan: %v\n  std:  %v", data, errS, errX)
	}
	if errS == nil && !reflect.DeepEqual(ds, dx) {
		t.Fatalf("document divergence on %q:\n  scan: %+v\n  std:  %+v", data, ds, dx)
	}
	// Reader mode must agree with byte mode.
	dr, errR := ParseReaderLimitsMode(bytes.NewReader(data), lim, ModeScan)
	if (errR == nil) != (errX == nil) {
		t.Fatalf("reader accept/reject divergence on %q:\n  scan(reader): %v\n  std:          %v", data, errR, errX)
	}
	if errR == nil && !reflect.DeepEqual(dr, dx) {
		t.Fatalf("reader document divergence on %q", data)
	}
	return dx, errX
}

func TestScanEquivalenceTable(t *testing.T) {
	for _, in := range equivCases {
		parseBoth(t, []byte(in), guard.Limits{})
	}
}

func TestScanEquivalenceOneByteReader(t *testing.T) {
	// Every refill boundary in reader mode, on the accepted subset.
	for _, in := range equivCases {
		dx, errX := ParseLimitsMode([]byte(in), guard.Limits{}, ModeStd)
		dr, errR := ParseReaderLimitsMode(oneByteReader{strings.NewReader(in)}, guard.Limits{}, ModeScan)
		if (errR == nil) != (errX == nil) {
			t.Fatalf("one-byte reader divergence on %q: scan=%v std=%v", in, errR, errX)
		}
		if errR == nil && !reflect.DeepEqual(dr, dx) {
			t.Fatalf("one-byte reader document divergence on %q", in)
		}
	}
}

type oneByteReader struct{ r *strings.Reader }

func (o oneByteReader) Read(p []byte) (int, error) {
	if len(p) > 1 {
		p = p[:1]
	}
	return o.r.Read(p)
}

func TestScanModeLimitsEquivalence(t *testing.T) {
	// Structural limits must trip identically (same kind, limit, got) on
	// both parser paths.
	deep := "<d><d><d><d><d><d>x</d></d></d></d></d></d>"
	wide := "<r><a/><b/><c/><e/></r>"
	cases := []struct {
		in  string
		lim guard.Limits
	}{
		{deep, guard.Limits{MaxDepth: 3}},
		{deep, guard.Limits{MaxDepth: 6}},
		{deep, guard.Limits{MaxDepth: 7}},
		{wide, guard.Limits{MaxPaths: 3}},
		{wide, guard.Limits{MaxPaths: 4}},
		{wide, guard.Limits{MaxTuples: 7}},
		{wide, guard.Limits{MaxTuples: 8}},
		{wide, guard.Limits{MaxDocBytes: 10}},
		{wide, guard.Limits{MaxDocBytes: int64(len(wide))}},
	}
	for _, c := range cases {
		_, errS := ParseLimitsMode([]byte(c.in), c.lim, ModeScan)
		_, errX := ParseLimitsMode([]byte(c.in), c.lim, ModeStd)
		var leS, leX *guard.LimitError
		asS, asX := errors.As(errS, &leS), errors.As(errX, &leX)
		if asS != asX {
			t.Fatalf("limit divergence on %q %+v: scan=%v std=%v", c.in, c.lim, errS, errX)
		}
		if asS && (leS.Kind != leX.Kind || leS.Limit != leX.Limit || leS.Got != leX.Got) {
			t.Fatalf("limit detail divergence on %q %+v:\n  scan: %+v\n  std:  %+v", c.in, c.lim, leS, leX)
		}
	}
}

func TestScanFallbackProducesStdErrors(t *testing.T) {
	// A rejected document must surface encoding/xml's own error through
	// the fast path, because the fallback re-parse is authoritative.
	_, errS := ParseLimitsMode([]byte(`<a><b></a>`), guard.Limits{}, ModeScan)
	_, errX := ParseLimitsMode([]byte(`<a><b></a>`), guard.Limits{}, ModeStd)
	if errS == nil || errX == nil {
		t.Fatalf("both must reject: scan=%v std=%v", errS, errX)
	}
	if errS.Error() != errX.Error() {
		t.Fatalf("error text diverges:\n  scan: %v\n  std:  %v", errS, errX)
	}
}

func TestScanReaderFallbackReplaysConsumedPrefix(t *testing.T) {
	// DOCTYPE up front sends the scanner to the fallback after part of the
	// stream is consumed; the replay must hand encoding/xml the full
	// document.
	doc := `<!DOCTYPE doc><doc><a x="1"/><b>t</b></doc>`
	d, err := ParseReaderLimitsMode(strings.NewReader(doc), guard.Limits{}, ModeScan)
	if err != nil {
		t.Fatal(err)
	}
	if d.Elements != 3 || len(d.Paths) != 2 {
		t.Fatalf("Elements=%d Paths=%d", d.Elements, len(d.Paths))
	}
}

func TestScanAttrsNilWhenAbsent(t *testing.T) {
	d, err := ParseLimitsMode([]byte(`<a><b c="1"/></a>`), guard.Limits{}, ModeScan)
	if err != nil {
		t.Fatal(err)
	}
	tup := d.Paths[0].Tuples
	if tup[0].Attrs != nil {
		t.Errorf("attr-less element has non-nil Attrs: %+v", tup[0].Attrs)
	}
	if v, ok := tup[1].Attr("c"); !ok || v != "1" {
		t.Errorf("attr lookup: %q %v", v, ok)
	}
}

func TestParserEnvForcesStd(t *testing.T) {
	// The env knob is latched in init, so exercise the switch directly.
	old := envForceStd.Load()
	defer envForceStd.Store(old)
	envForceStd.Store(true)
	if !useStd(ModeAuto) {
		t.Fatal("ModeAuto must follow the env override")
	}
	if useStd(ModeScan) {
		t.Fatal("ModeScan must ignore the env override")
	}
	if !useStd(ModeStd) {
		t.Fatal("ModeStd must always use the stdlib parser")
	}
	envForceStd.Store(false)
	if useStd(ModeAuto) {
		t.Fatal("ModeAuto must default to the scanner")
	}
}
