package xmldoc

import (
	"bytes"
	"errors"
	"reflect"
	"testing"

	"predfilter/internal/guard"
)

func limitAs(err error, le **guard.LimitError) bool { return errors.As(err, le) }

// FuzzScanEquivalence is the differential oracle for the zero-copy
// scanner: on every input, the scanner path (ModeScan, with its
// encoding/xml fallback) and the pure encoding/xml path (ModeStd) must
// agree — both reject, or both accept with deep-equal Documents — in byte
// mode and in reader mode alike. Because the fast path delegates every
// scanner rejection to encoding/xml, a divergence here means exactly one
// thing: the scanner accepted input it mis-parses, the one bug class the
// fallback cannot absorb.
func FuzzScanEquivalence(f *testing.F) {
	for _, s := range equivCases {
		f.Add([]byte(s))
	}
	f.Add([]byte(`<nitf><head><title>t</title></head><body content="x"><p>par</p></body></nitf>`))
	f.Add([]byte(`<ProteinDatabase><ProteinEntry id="A"><header><uid>1</uid></header></ProteinEntry></ProteinDatabase>`))
	f.Add(bytes.Repeat([]byte("<d>"), 40))
	f.Add([]byte(`<a aa="1" ab="2" ac="3" ad="4" ae="5" af="6" ag="7" ah="8" ai="9" aj="10" ak="11" al="12"/>`))
	f.Fuzz(func(t *testing.T, data []byte) {
		ds, errS := ParseLimitsMode(data, guard.Limits{}, ModeScan)
		dx, errX := ParseLimitsMode(data, guard.Limits{}, ModeStd)
		if (errS == nil) != (errX == nil) {
			t.Fatalf("accept/reject divergence:\n  scan: %v\n  std:  %v", errS, errX)
		}
		if errS == nil && !reflect.DeepEqual(ds, dx) {
			t.Fatalf("document divergence:\n  scan: %+v\n  std:  %+v", ds, dx)
		}
		dr, errR := ParseReaderLimitsMode(bytes.NewReader(data), guard.Limits{}, ModeScan)
		if (errR == nil) != (errX == nil) {
			t.Fatalf("reader accept/reject divergence:\n  scan(reader): %v\n  std: %v", errR, errX)
		}
		if errR == nil && !reflect.DeepEqual(dr, dx) {
			t.Fatalf("reader document divergence")
		}

		// Under tight structural limits both paths must trip identically.
		lim := guard.Limits{MaxDepth: 4, MaxPaths: 4, MaxTuples: 12, MaxDocBytes: 96}
		_, errS = ParseLimitsMode(data, lim, ModeScan)
		_, errX = ParseLimitsMode(data, lim, ModeStd)
		var leS, leX *guard.LimitError
		if asS, asX := limitAs(errS, &leS), limitAs(errX, &leX); asS != asX {
			t.Fatalf("limit divergence: scan=%v std=%v", errS, errX)
		} else if asS && (leS.Kind != leX.Kind || leS.Limit != leX.Limit || leS.Got != leX.Got) {
			t.Fatalf("limit detail divergence:\n  scan: %+v\n  std:  %+v", leS, leX)
		}
		if (errS == nil) != (errX == nil) {
			t.Fatalf("limited accept/reject divergence:\n  scan: %v\n  std:  %v", errS, errX)
		}
	})
}
