package xmldoc

import "testing"

// FuzzParseDocument: malformed input must error cleanly, and accepted
// documents must satisfy the encoding invariants (positions 1..Length,
// correct occurrence counting, path count = leaf count).
func FuzzParseDocument(f *testing.F) {
	for _, seed := range []string{
		"<a/>", "<a><b/></a>", "<a><b><c/></b><d/></a>", `<a x="1">t</a>`,
		"<a><b></a>", "<a>", "", "plain", "<a><a><a/></a></a>",
		"<?xml version=\"1.0\"?><r><!-- c --><x/></r>",
	} {
		f.Add(seed)
	}
	f.Fuzz(func(t *testing.T, input string) {
		doc, err := Parse([]byte(input))
		if err != nil {
			return
		}
		for _, p := range doc.Paths {
			if p.Length != len(p.Tuples) || p.Length == 0 {
				t.Fatalf("bad path length %d/%d for %q", p.Length, len(p.Tuples), input)
			}
			occ := map[string]int{}
			for i, tu := range p.Tuples {
				if tu.Pos != i+1 {
					t.Fatalf("position %d at index %d for %q", tu.Pos, i, input)
				}
				occ[tu.Tag]++
				if tu.Occ != occ[tu.Tag] {
					t.Fatalf("occurrence %d (want %d) for %q", tu.Occ, occ[tu.Tag], input)
				}
			}
		}
	})
}
