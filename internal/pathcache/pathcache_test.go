package pathcache

import (
	"fmt"
	"sync"
	"testing"

	"predfilter/internal/predindex"
)

// hash mimics the matcher's FNV-1a signature hash; any deterministic
// function works for the cache (equality is on the full bytes).
func hash(sig []byte) uint64 {
	h := uint64(0xcbf29ce484222325)
	for _, b := range sig {
		h = (h ^ uint64(b)) * 0x100000001b3
	}
	return h
}

func entry(n int) *Entry {
	e := &Entry{Outcome: make([]int32, n)}
	for i := range e.Outcome {
		e.Outcome[i] = int32(i)
	}
	return e
}

func TestGetPutRoundTrip(t *testing.T) {
	c := New(1 << 20)
	sig := []byte("a\x00\x01\x00b\x00\x01\x00")
	if _, ok := c.Get(hash(sig), sig); ok {
		t.Fatal("hit on empty cache")
	}
	c.Put(hash(sig), sig, entry(3))
	got, ok := c.Get(hash(sig), sig)
	if !ok || len(got.Outcome) != 3 {
		t.Fatalf("got %v ok=%v", got, ok)
	}
	st := c.Stats()
	if st.Hits != 1 || st.Misses != 1 || st.Entries != 1 {
		t.Fatalf("stats %+v", st)
	}
}

// Two different signatures with an identical hash must not alias: the
// cache compares full signature bytes, so the second signature simply
// misses (and may be stored alongside under its own interned key).
func TestHashCollisionDoesNotAlias(t *testing.T) {
	c := New(1 << 20)
	a, b := []byte("sig-a"), []byte("sig-b")
	h := uint64(12345) // same (wrong) hash for both
	c.Put(h, a, entry(1))
	if _, ok := c.Get(h, b); ok {
		t.Fatal("colliding signature served the wrong entry")
	}
	c.Put(h, b, entry(2))
	ea, _ := c.Get(h, a)
	eb, _ := c.Get(h, b)
	if len(ea.Outcome) != 1 || len(eb.Outcome) != 2 {
		t.Fatalf("aliased entries: %v %v", ea, eb)
	}
}

func TestInvalidateDropsStale(t *testing.T) {
	c := New(1 << 20)
	sig := []byte("stale")
	c.Put(hash(sig), sig, entry(1))
	c.Invalidate()
	if _, ok := c.Get(hash(sig), sig); ok {
		t.Fatal("stale entry served after Invalidate")
	}
	st := c.Stats()
	if st.Invalidations != 1 {
		t.Fatalf("invalidations %d", st.Invalidations)
	}
	if st.Entries != 0 {
		t.Fatalf("stale entry still resident: %+v", st)
	}
	// Re-population at the new generation works.
	c.Put(hash(sig), sig, entry(2))
	if e, ok := c.Get(hash(sig), sig); !ok || len(e.Outcome) != 2 {
		t.Fatalf("re-populated entry %v ok=%v", e, ok)
	}
}

func TestByteBoundEvictsLRU(t *testing.T) {
	// Small bound: each entry is ~240 bytes (overhead + key + outcome),
	// so only a handful fit per shard. Insert many and verify the bound
	// holds and the most recent entries survive.
	c := New(nShards * 1024)
	var sigs [][]byte
	for i := 0; i < 256; i++ {
		sig := []byte(fmt.Sprintf("signature-%03d", i))
		sigs = append(sigs, sig)
		c.Put(hash(sig), sig, entry(16))
	}
	st := c.Stats()
	if st.Bytes > c.shardMax*nShards {
		t.Fatalf("bytes %d over bound %d", st.Bytes, c.shardMax*nShards)
	}
	if st.Evictions == 0 {
		t.Fatal("no evictions despite overflow")
	}
	if st.Entries == 0 {
		t.Fatal("everything evicted")
	}
	// The very last insert must still be resident (it is the MRU of its
	// shard and fits alone).
	last := sigs[len(sigs)-1]
	if _, ok := c.Get(hash(last), last); !ok {
		t.Fatal("most recent entry was evicted")
	}
}

func TestLRUOrderWithinShard(t *testing.T) {
	// Force everything into one shard by using the same hash. Bound the
	// shard so only ~2 entries fit; touching A should keep it alive while
	// B is evicted.
	c := New(nShards * 400)
	h := uint64(7)
	a, b, d := []byte("entry-a"), []byte("entry-b"), []byte("entry-c")
	c.Put(h, a, entry(8))
	c.Put(h, b, entry(8))
	if _, ok := c.Get(h, a); !ok {
		t.Fatal("a missing before overflow")
	}
	c.Put(h, d, entry(8)) // evicts LRU = b
	if _, ok := c.Get(h, b); ok {
		t.Fatal("LRU entry b survived eviction")
	}
	if _, ok := c.Get(h, a); !ok {
		t.Fatal("recently used entry a was evicted")
	}
}

func TestOversizeEntryNotStored(t *testing.T) {
	c := New(nShards * 256)
	sig := []byte("huge")
	c.Put(hash(sig), sig, entry(4096))
	if _, ok := c.Get(hash(sig), sig); ok {
		t.Fatal("oversize entry was stored")
	}
}

func TestPutOverwrites(t *testing.T) {
	c := New(1 << 20)
	sig := []byte("twice")
	c.Put(hash(sig), sig, entry(1))
	c.Put(hash(sig), sig, entry(5))
	e, ok := c.Get(hash(sig), sig)
	if !ok || len(e.Outcome) != 5 {
		t.Fatalf("overwrite lost: %v ok=%v", e, ok)
	}
	if st := c.Stats(); st.Entries != 1 {
		t.Fatalf("duplicate entries after overwrite: %+v", st)
	}
}

func TestDefaultSize(t *testing.T) {
	c := New(0)
	if st := c.Stats(); st.MaxBytes != DefaultMaxBytes/nShards*nShards {
		t.Fatalf("default max %d", st.MaxBytes)
	}
}

func TestRecordingEntrySized(t *testing.T) {
	e := &Entry{
		Outcome: make([]int32, 2),
		Rec: predindex.Recording{
			Bare:     make([]predindex.BareHit, 3),
			Residual: make([]predindex.ResidualHit, 1),
		},
	}
	got := sizeBytes("k", e)
	want := int64(128 + 1 + 4*2 + 12*3 + 20*1)
	if got != want {
		t.Fatalf("sizeBytes = %d, want %d", got, want)
	}
}

// Concurrent mixed traffic across generations; run under -race.
func TestConcurrentAccess(t *testing.T) {
	c := New(nShards * 4096)
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 500; i++ {
				sig := []byte(fmt.Sprintf("sig-%d", (g*31+i)%64))
				h := hash(sig)
				if _, ok := c.Get(h, sig); !ok {
					c.Put(h, sig, entry(i%8))
				}
				if i%97 == 0 {
					c.Invalidate()
				}
			}
		}(g)
	}
	wg.Wait()
	st := c.Stats()
	if st.Hits+st.Misses != 8*500 {
		t.Fatalf("lookups %d", st.Hits+st.Misses)
	}
}
