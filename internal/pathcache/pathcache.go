// Package pathcache implements the structural path-signature cache: the
// document-side dual of the paper's expression-side sharing. Documents
// generated from one DTD repeat the same root-to-leaf tag sequences over
// and over (NITF documents average ~128 tags across ~60 paths, and a
// filtering run sees dozens to thousands of documents), yet the matcher
// re-runs the predicate-matching stage and the occurrence machinery for
// every repeat. The four structural predicate types — absolute position,
// relative distance, end-of-path and length-of-expression — see only tag
// names and positions, so their results for a path are a pure function of
// the path's signature (tag sequence plus per-path occurrence vector).
// This cache stores, per distinct signature, the structural matching
// outcome (the expression ids marked by value-independent iteration
// units) together with the replayable predicate-stage transcript needed
// to re-check value-dependent work (attribute filters, nested path
// filters) against the live document.
//
// Structure: a sharded LRU bounded by total byte size. Keys are the full
// signature bytes, interned once per distinct signature as the map key —
// lookups compare entire signatures (not hashes), so a hash collision
// costs a shard choice, never a wrong result. A generation counter
// invalidates the whole cache in O(1): the matcher bumps it on every
// registration change (new expressions may add predicates and reorganize
// covering), and entries stamped with an older generation are dropped on
// access instead of being served stale.
//
// Concurrency: all methods are safe for concurrent use. Callers must
// ensure that a Put's value was computed at the current generation; the
// matcher guarantees this by bumping the generation only under its write
// lock while matching holds the read lock.
package pathcache

import (
	"sync"
	"sync/atomic"

	"predfilter/internal/predindex"
)

// DefaultMaxBytes is the cache bound used when New is given no positive
// size: large enough for tens of thousands of distinct path signatures,
// small next to the predicate index of any serious subscription set.
const DefaultMaxBytes = 16 << 20

// nShards keeps lock hold times short when parallel matchers share one
// cache; signatures spread across shards by hash.
const nShards = 16

// Entry is one cached per-signature result.
type Entry struct {
	// Outcome is the structural matching contribution of the path: the
	// ids (expression and group-representative slots) marked by the
	// value-independent iteration units, starting from a clean state.
	Outcome []int32
	// Rec is the replayable predicate-stage transcript, populated only
	// when the matcher has value-dependent work to re-run on a hit.
	Rec predindex.Recording
}

// sizeBytes estimates the heap footprint of an entry under its interned
// key; the constants are the struct sizes plus map/list bookkeeping.
func sizeBytes(key string, e *Entry) int64 {
	const overhead = 128 // entry struct, map bucket share, LRU links
	return overhead + int64(len(key)) +
		4*int64(len(e.Outcome)) +
		12*int64(len(e.Rec.Bare)) +
		20*int64(len(e.Rec.Residual))
}

// node is one resident entry with its LRU links.
type node struct {
	key        string
	gen        uint64
	val        *Entry
	size       int64
	prev, next *node
}

// shard is one lock domain: a map from interned signature to node plus an
// intrusive LRU list (front = most recently used).
type shard struct {
	mu    sync.Mutex
	m     map[string]*node
	front *node
	back  *node
	bytes int64
}

// Cache is the sharded LRU. Create with New.
type Cache struct {
	shardMax int64 // byte bound per shard
	gen      atomic.Uint64

	hits          atomic.Int64
	misses        atomic.Int64
	evictions     atomic.Int64
	invalidations atomic.Int64

	shards [nShards]shard
}

// New returns a cache bounded by maxBytes in total (DefaultMaxBytes when
// maxBytes <= 0).
func New(maxBytes int64) *Cache {
	if maxBytes <= 0 {
		maxBytes = DefaultMaxBytes
	}
	per := maxBytes / nShards
	if per < 1 {
		per = 1
	}
	c := &Cache{shardMax: per}
	for i := range c.shards {
		c.shards[i].m = make(map[string]*node)
	}
	return c
}

// Generation returns the current generation counter.
func (c *Cache) Generation() uint64 { return c.gen.Load() }

// Invalidate makes every resident entry stale in O(1). Stale entries are
// dropped lazily, when a lookup touches them or the LRU pushes them out.
func (c *Cache) Invalidate() {
	c.gen.Add(1)
	c.invalidations.Add(1)
}

func (c *Cache) shard(hash uint64) *shard { return &c.shards[hash%nShards] }

// Get returns the entry stored for the signature, or (nil, false). hash
// must be a hash of sig (it selects the shard; equality is decided on the
// full signature bytes). A hit refreshes the entry's LRU position; a
// stale entry (older generation) is removed and reported as a miss.
// Get performs no allocations.
func (c *Cache) Get(hash uint64, sig []byte) (*Entry, bool) {
	s := c.shard(hash)
	s.mu.Lock()
	n := s.m[string(sig)] // no allocation: map lookup on converted []byte
	if n == nil {
		s.mu.Unlock()
		c.misses.Add(1)
		return nil, false
	}
	if n.gen != c.gen.Load() {
		s.remove(n)
		s.mu.Unlock()
		c.evictions.Add(1)
		c.misses.Add(1)
		return nil, false
	}
	s.moveFront(n)
	val := n.val
	s.mu.Unlock()
	c.hits.Add(1)
	return val, true
}

// Put stores the entry under the signature at the current generation,
// evicting least-recently-used entries to stay within the byte bound. The
// signature bytes are copied (interned) once; val is retained as-is and
// must not be mutated afterwards. Entries larger than a whole shard are
// not stored.
func (c *Cache) Put(hash uint64, sig []byte, val *Entry) {
	gen := c.gen.Load()
	s := c.shard(hash)
	s.mu.Lock()
	if n := s.m[string(sig)]; n != nil {
		// Concurrent workers can compute the same miss twice, and a stale
		// entry may be overwritten in place; refresh rather than duplicate.
		s.bytes -= n.size
		n.val = val
		n.gen = gen
		n.size = sizeBytes(n.key, val)
		s.bytes += n.size
		s.moveFront(n)
	} else {
		key := string(sig) // the one allocation: the interned signature
		n := &node{key: key, gen: gen, val: val, size: sizeBytes(key, val)}
		if n.size > c.shardMax {
			s.mu.Unlock()
			return
		}
		s.m[key] = n
		s.pushFront(n)
		s.bytes += n.size
	}
	for s.bytes > c.shardMax && s.back != nil {
		s.remove(s.back)
		c.evictions.Add(1)
	}
	s.mu.Unlock()
}

// pushFront links n at the front of the LRU list. Callers hold s.mu.
func (s *shard) pushFront(n *node) {
	n.prev = nil
	n.next = s.front
	if s.front != nil {
		s.front.prev = n
	}
	s.front = n
	if s.back == nil {
		s.back = n
	}
}

// moveFront refreshes n's LRU position. Callers hold s.mu.
func (s *shard) moveFront(n *node) {
	if s.front == n {
		return
	}
	s.unlink(n)
	s.pushFront(n)
}

// unlink detaches n from the LRU list. Callers hold s.mu.
func (s *shard) unlink(n *node) {
	if n.prev != nil {
		n.prev.next = n.next
	} else {
		s.front = n.next
	}
	if n.next != nil {
		n.next.prev = n.prev
	} else {
		s.back = n.prev
	}
	n.prev, n.next = nil, nil
}

// remove deletes n from the shard entirely. Callers hold s.mu.
func (s *shard) remove(n *node) {
	s.unlink(n)
	delete(s.m, n.key)
	s.bytes -= n.size
}

// Stats is a point-in-time summary of cache activity and residency.
type Stats struct {
	Hits          int64
	Misses        int64
	Evictions     int64 // capacity evictions plus stale-entry drops
	Invalidations int64 // Invalidate calls (generation bumps)
	Entries       int   // resident entries (stale ones included until dropped)
	Bytes         int64 // resident byte estimate
	MaxBytes      int64 // configured bound
	Generation    uint64
}

// HitRate returns hits / (hits + misses), or 0 before any lookup. The
// sum is computed in floating point so counters near the int64 limit
// cannot overflow into a negative total.
func (s Stats) HitRate() float64 {
	total := float64(s.Hits) + float64(s.Misses)
	if total == 0 {
		return 0
	}
	return float64(s.Hits) / total
}

// Stats snapshots the counters and residency.
func (c *Cache) Stats() Stats {
	st := Stats{
		Hits:          c.hits.Load(),
		Misses:        c.misses.Load(),
		Evictions:     c.evictions.Load(),
		Invalidations: c.invalidations.Load(),
		MaxBytes:      c.shardMax * nShards,
		Generation:    c.gen.Load(),
	}
	for i := range c.shards {
		s := &c.shards[i]
		s.mu.Lock()
		st.Entries += len(s.m)
		st.Bytes += s.bytes
		s.mu.Unlock()
	}
	return st
}
