package metrics

import (
	"testing"

	"predfilter/internal/guard"
)

// The metrics package stays dependency-free, so NumLimitKinds is a plain
// constant rather than guard.NumKinds. This cross-check is the only
// coupling: adding a guard.Kind without growing the counter array would
// silently drop its trips.
func TestNumLimitKindsCoversGuard(t *testing.T) {
	if NumLimitKinds < int(guard.NumKinds) {
		t.Fatalf("metrics.NumLimitKinds = %d < guard.NumKinds = %d; grow the counter array",
			NumLimitKinds, guard.NumKinds)
	}
}

func TestObserveLimitTrip(t *testing.T) {
	var s Set
	s.ObserveLimitTrip(int(guard.Steps))
	s.ObserveLimitTrip(int(guard.Steps))
	s.ObserveLimitTrip(int(guard.Deadline))
	// Out-of-range kinds are clamped, not panicked on.
	s.ObserveLimitTrip(-1)
	s.ObserveLimitTrip(NumLimitKinds + 5)
	trips := s.LimitTrips()
	if trips[guard.Steps] != 2 || trips[guard.Deadline] != 1 {
		t.Fatalf("trips = %v", trips)
	}
	// nil receiver is the disabled-metrics fast path.
	var nilSet *Set
	nilSet.ObserveLimitTrip(int(guard.Steps))
	nilSet.ObservePanic()
}

func TestObservePanic(t *testing.T) {
	var s Set
	s.ObservePanic()
	s.ObservePanic()
	if got := s.Panics.Load(); got != 2 {
		t.Fatalf("Panics = %d, want 2", got)
	}
}
