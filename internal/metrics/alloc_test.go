//go:build !race

// The race detector's instrumentation changes allocation behavior, so the
// AllocsPerRun assertions only run in the regular test legs.

package metrics

import (
	"testing"
	"time"
)

// TestRecordingAllocs pins the recording contract: Counter.Add,
// Gauge.Set and Histogram.Observe perform zero heap allocations, so the
// instrumented hot paths keep their allocation profile with metrics on.
func TestRecordingAllocs(t *testing.T) {
	s := NewSet()
	if a := testing.AllocsPerRun(100, func() {
		s.DocsTotal.Add(3)
		s.StreamQueueDepth.Set(7)
		s.Parse.Observe(time.Millisecond)
		s.Match.Observe(time.Microsecond)
		s.StreamBusy(2).Add(11)
	}); a != 0 {
		t.Fatalf("recording allocates %.1f per run, want 0", a)
	}
	var h Histogram
	if a := testing.AllocsPerRun(100, func() { h.Observe(time.Second) }); a != 0 {
		t.Fatalf("Observe allocates %.1f per run, want 0", a)
	}
}
