package metrics

import (
	"fmt"
	"io"
	"strconv"
	"strings"
)

// Exposition writes the Prometheus text exposition format (version
// 0.0.4): one HELP/TYPE header per family followed by its samples.
// Durations are exposed in seconds, per Prometheus convention. Write
// errors stick: subsequent calls are no-ops and Err reports the first
// failure.
type Exposition struct {
	w   io.Writer
	err error
}

// NewExposition returns an exposition writer over w.
func NewExposition(w io.Writer) *Exposition { return &Exposition{w: w} }

// Err returns the first write error, if any.
func (e *Exposition) Err() error { return e.err }

func (e *Exposition) printf(format string, args ...any) {
	if e.err != nil {
		return
	}
	_, e.err = fmt.Fprintf(e.w, format, args...)
}

// Family writes the HELP/TYPE header for a metric family. typ is
// "counter", "gauge" or "histogram".
func (e *Exposition) Family(name, help, typ string) {
	e.printf("# HELP %s %s\n# TYPE %s %s\n", name, help, name, typ)
}

// Value writes one sample. labels is either empty or a pre-rendered
// label body such as `stage="parse"`.
func (e *Exposition) Value(name, labels string, v float64) {
	if labels != "" {
		e.printf("%s{%s} %s\n", name, labels, fmtFloat(v))
		return
	}
	e.printf("%s %s\n", name, fmtFloat(v))
}

// Int is Value for integer-valued samples.
func (e *Exposition) Int(name, labels string, v int64) {
	if labels != "" {
		e.printf("%s{%s} %d\n", name, labels, v)
		return
	}
	e.printf("%s %d\n", name, v)
}

// Histogram writes a histogram family member: cumulative buckets with
// upper bounds in seconds, then _sum (seconds) and _count. labels may be
// empty; the le label is appended to it.
func (e *Exposition) Histogram(name, labels string, s HistSnapshot) {
	sep := ""
	if labels != "" {
		sep = ","
	}
	var cum uint64
	for i := 0; i < NumBuckets; i++ {
		cum += s.Buckets[i]
		le := "+Inf"
		if i < NumBuckets-1 {
			le = fmtFloat(BucketUpperNanos(i) / 1e9)
		}
		e.printf("%s_bucket{%s%sle=%q} %d\n", name, labels, sep, le, cum)
	}
	if labels != "" {
		e.printf("%s_sum{%s} %s\n", name, labels, fmtFloat(float64(s.SumNanos)/1e9))
		e.printf("%s_count{%s} %d\n", name, labels, s.Count)
		return
	}
	e.printf("%s_sum %s\n", name, fmtFloat(float64(s.SumNanos)/1e9))
	e.printf("%s_count %d\n", name, s.Count)
}

// fmtFloat renders a float the way Prometheus clients expect: shortest
// representation that round-trips.
func fmtFloat(v float64) string {
	return strconv.FormatFloat(v, 'g', -1, 64)
}

// EscapeLabelValue escapes a label value per the Prometheus 0.0.4 text
// format: backslash, double-quote and newline become \\, \" and \n.
// These are the only three escapes the format defines — Go's %q is not
// a substitute (it escapes tabs and non-ASCII in ways scrapers reject).
func EscapeLabelValue(s string) string {
	if !strings.ContainsAny(s, "\\\"\n") {
		return s
	}
	var b strings.Builder
	b.Grow(len(s) + 8)
	for i := 0; i < len(s); i++ {
		switch c := s[i]; c {
		case '\\':
			b.WriteString(`\\`)
		case '"':
			b.WriteString(`\"`)
		case '\n':
			b.WriteString(`\n`)
		default:
			b.WriteByte(c)
		}
	}
	return b.String()
}

// Label renders one name="value" label pair with the value escaped,
// ready to pass (possibly comma-joined with others) as the labels
// argument of Value, Int or Histogram.
func Label(name, value string) string {
	return name + `="` + EscapeLabelValue(value) + `"`
}
