package metrics

import (
	"bufio"
	"fmt"
	"math"
	"regexp"
	"strconv"
	"strings"
)

// metricLine matches one Prometheus text-format sample line.
var metricLine = regexp.MustCompile(`^[a-zA-Z_:][a-zA-Z0-9_:]*(\{[^}]*\})? (NaN|[+-]?Inf|[0-9.eE+-]+)$`)

// ValidateExposition checks text against the Prometheus text-format
// invariants the scrape path relies on: every non-comment line is a
// well-formed sample, histogram bucket bounds strictly increase, bucket
// counts are cumulative, and each histogram's +Inf bucket equals its
// _count. It is used by the package tests, the server tests and the CI
// smoke check.
func ValidateExposition(text string) error {
	type histState struct {
		last    uint64
		lastLe  float64
		infSeen bool
		inf     uint64
	}
	hists := make(map[string]*histState)
	counts := make(map[string]uint64)
	sc := bufio.NewScanner(strings.NewReader(text))
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	for sc.Scan() {
		line := sc.Text()
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		if !metricLine.MatchString(line) {
			return fmt.Errorf("malformed exposition line: %q", line)
		}
		name := line
		if i := strings.IndexAny(line, "{ "); i >= 0 {
			name = line[:i]
		}
		val := line[strings.LastIndex(line, " ")+1:]
		switch {
		case strings.HasSuffix(name, "_bucket") && strings.Contains(line, `le="`):
			series := line[:strings.Index(line, "le=")]
			h := hists[series]
			if h == nil {
				h = &histState{lastLe: math.Inf(-1)}
				hists[series] = h
			}
			n, err := strconv.ParseUint(val, 10, 64)
			if err != nil {
				return fmt.Errorf("bucket count %q: %v", val, err)
			}
			le := line[strings.Index(line, `le="`)+4:]
			le = le[:strings.Index(le, `"`)]
			if le == "+Inf" {
				h.infSeen = true
				h.inf = n
			} else {
				b, err := strconv.ParseFloat(le, 64)
				if err != nil {
					return fmt.Errorf("le bound %q: %v", le, err)
				}
				if b <= h.lastLe {
					return fmt.Errorf("le bounds not increasing at %q", line)
				}
				h.lastLe = b
			}
			if n < h.last {
				return fmt.Errorf("bucket counts not cumulative at %q", line)
			}
			h.last = n
		case strings.HasSuffix(name, "_count"):
			n, err := strconv.ParseUint(val, 10, 64)
			if err != nil {
				return fmt.Errorf("count %q: %v", val, err)
			}
			// Key by the full series minus the trailing "_count" so it
			// aligns with the bucket-series prefix (which ends just before
			// the le label).
			key := strings.TrimSuffix(name, "_count") + "_bucket"
			if i := strings.Index(line, "{"); i >= 0 {
				labels := line[i+1 : strings.Index(line, "}")]
				if labels != "" {
					key += "{" + labels + ","
				}
			} else {
				key += "{"
			}
			counts[key] = n
		}
	}
	if err := sc.Err(); err != nil {
		return err
	}
	for series, h := range hists {
		if !h.infSeen {
			return fmt.Errorf("histogram series %q has no +Inf bucket", series)
		}
		if n, ok := counts[series]; ok && n != h.inf {
			return fmt.Errorf("histogram series %q: +Inf bucket %d != count %d", series, h.inf, n)
		}
	}
	return nil
}
