package metrics

import (
	"fmt"
	"math"
	"strconv"
	"strings"
)

// ValidateExposition checks text against the Prometheus text-format
// invariants the scrape path relies on: every non-comment line is a
// well-formed sample whose label values use only the three legal
// escapes (\\, \", \n — an unescaped backslash, quote or newline is
// rejected), histogram bucket bounds strictly increase, bucket counts
// are cumulative, and each histogram's +Inf bucket equals its _count.
// It is used by the package tests, the server tests and the CI smoke
// check.
func ValidateExposition(text string) error {
	type histState struct {
		last    float64
		lastLe  float64
		infSeen bool
		inf     float64
		first   string
	}
	hists := make(map[string]*histState)
	counts := make(map[string]float64)
	lineNo := 0
	for len(text) > 0 {
		lineNo++
		line := text
		if i := strings.IndexByte(text, '\n'); i >= 0 {
			line, text = text[:i], text[i+1:]
		} else {
			text = ""
		}
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		s, err := parseSampleLine(line)
		if err != nil {
			return fmt.Errorf("malformed exposition line %d: %w", lineNo, err)
		}
		le, hasLe := s.Label("le")
		switch {
		case strings.HasSuffix(s.Name, "_bucket") && hasLe:
			if s.Value < 0 || s.Value != math.Trunc(s.Value) {
				return fmt.Errorf("bucket count %v not a whole number at %q", s.Value, line)
			}
			key := histKey(s.Name, s.Labels)
			h := hists[key]
			if h == nil {
				h = &histState{lastLe: math.Inf(-1), first: line}
				hists[key] = h
			}
			if le == "+Inf" {
				h.infSeen = true
				h.inf = s.Value
			} else {
				b, err := strconv.ParseFloat(le, 64)
				if err != nil {
					return fmt.Errorf("le bound %q: %v", le, err)
				}
				if b <= h.lastLe {
					return fmt.Errorf("le bounds not increasing at %q", line)
				}
				h.lastLe = b
			}
			if s.Value < h.last {
				return fmt.Errorf("bucket counts not cumulative at %q", line)
			}
			h.last = s.Value
		case strings.HasSuffix(s.Name, "_count"):
			if s.Value < 0 || s.Value != math.Trunc(s.Value) {
				return fmt.Errorf("count %v not a whole number at %q", s.Value, line)
			}
			counts[histKey(strings.TrimSuffix(s.Name, "_count")+"_bucket", s.Labels)] = s.Value
		}
	}
	for key, h := range hists {
		if !h.infSeen {
			return fmt.Errorf("histogram series %q has no +Inf bucket", h.first)
		}
		if n, ok := counts[key]; ok && n != h.inf {
			return fmt.Errorf("histogram series %q: +Inf bucket %v != count %v", key, h.inf, n)
		}
	}
	return nil
}

// histKey identifies one histogram series: the sample name plus its
// labels minus le, order-preserved. The same key is produced by the
// series' _count sample (which carries the identical labels, sans le).
func histKey(name string, labels []LabelPair) string {
	var b strings.Builder
	b.WriteString(name)
	for _, lp := range labels {
		if lp.Name == "le" {
			continue
		}
		b.WriteByte(0)
		b.WriteString(lp.Name)
		b.WriteByte(0)
		b.WriteString(lp.Value)
	}
	return b.String()
}
