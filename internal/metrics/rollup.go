package metrics

import (
	"fmt"
	"io"
	"math"
	"strconv"
	"strings"
)

// This file implements the coordinator-side metrics rollup: a strict
// parser for the Prometheus 0.0.4 text format (shared with
// ValidateExposition) and a Rollup accumulator that merges many shards'
// expositions into one cluster-wide exposition. Aggregation is plain
// per-series summation, which for histogram families IS the bucket-wise
// merge: every histogram in the system shares the same fixed
// power-of-two bounds (see HistSnapshot.Merge), so summing each
// {...,le="x"} series across shards preserves cumulativity and the
// +Inf==_count invariant.

// LabelPair is one parsed name="value" label with the value unescaped.
type LabelPair struct {
	Name, Value string
}

// Sample is one parsed sample line.
type Sample struct {
	Name   string
	Labels []LabelPair
	Value  float64
}

// Family is one parsed metric family: its HELP/TYPE header (possibly
// empty for untyped expositions) and its samples in input order.
// Histogram families own their _bucket/_sum/_count samples.
type Family struct {
	Name    string
	Help    string
	Type    string
	Samples []Sample
}

// Label returns the value of the named label and whether it is present.
func (s *Sample) Label(name string) (string, bool) {
	for _, lp := range s.Labels {
		if lp.Name == name {
			return lp.Value, true
		}
	}
	return "", false
}

// ParseExposition parses a Prometheus 0.0.4 text exposition into
// families, preserving input order. It is strict about the parts the
// cluster relies on: sample lines must be syntactically well formed and
// label values must use only the three legal escapes (\\, \", \n) —
// an unescaped backslash or quote is an error, not a lenient pass.
func ParseExposition(text string) ([]*Family, error) {
	var (
		order []*Family
		byNam = make(map[string]*Family)
	)
	family := func(name string) *Family {
		if f := byNam[name]; f != nil {
			return f
		}
		// A histogram's samples arrive as base_bucket/base_sum/base_count;
		// attach them to the base family when one is declared.
		for _, suf := range []string{"_bucket", "_sum", "_count"} {
			if base, ok := strings.CutSuffix(name, suf); ok {
				if f := byNam[base]; f != nil && f.Type == "histogram" {
					return f
				}
			}
		}
		f := &Family{Name: name}
		byNam[name] = f
		order = append(order, f)
		return f
	}
	lineNo := 0
	for len(text) > 0 {
		lineNo++
		line := text
		if i := strings.IndexByte(text, '\n'); i >= 0 {
			line, text = text[:i], text[i+1:]
		} else {
			text = ""
		}
		if line == "" {
			continue
		}
		if strings.HasPrefix(line, "#") {
			kind, rest, ok := cutComment(line)
			if !ok {
				continue // freeform comment
			}
			name, payload, _ := strings.Cut(rest, " ")
			f := family(name)
			switch kind {
			case "HELP":
				f.Help = payload
			case "TYPE":
				f.Type = payload
			}
			continue
		}
		s, err := parseSampleLine(line)
		if err != nil {
			return nil, fmt.Errorf("line %d: %w", lineNo, err)
		}
		f := family(s.Name)
		f.Samples = append(f.Samples, s)
	}
	return order, nil
}

// cutComment splits "# HELP name ..." / "# TYPE name ..." comments.
func cutComment(line string) (kind, rest string, ok bool) {
	rest, ok = strings.CutPrefix(line, "# HELP ")
	if ok {
		return "HELP", rest, true
	}
	rest, ok = strings.CutPrefix(line, "# TYPE ")
	if ok {
		return "TYPE", rest, true
	}
	return "", "", false
}

func isNameStart(c byte) bool {
	return c == '_' || c == ':' || (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z')
}

func isNameByte(c byte) bool {
	return isNameStart(c) || (c >= '0' && c <= '9')
}

// parseSampleLine parses one sample line:
//
//	name[{label="value",...}] value [timestamp]
//
// enforcing the 0.0.4 escaping rules inside label values.
func parseSampleLine(line string) (Sample, error) {
	var s Sample
	i := 0
	for i < len(line) && isNameByte(line[i]) {
		i++
	}
	if i == 0 || !isNameStart(line[0]) {
		return s, fmt.Errorf("malformed metric name in %q", line)
	}
	s.Name = line[:i]
	if i < len(line) && line[i] == '{' {
		i++
		for {
			if i >= len(line) {
				return s, fmt.Errorf("unterminated label set in %q", line)
			}
			if line[i] == '}' {
				i++
				break
			}
			j := i
			for j < len(line) && isNameByte(line[j]) && line[j] != ':' {
				j++
			}
			if j == i || line[i] == ':' || !isNameStart(line[i]) {
				return s, fmt.Errorf("malformed label name in %q", line)
			}
			name := line[i:j]
			if j+1 >= len(line) || line[j] != '=' || line[j+1] != '"' {
				return s, fmt.Errorf("label %q missing quoted value in %q", name, line)
			}
			val, rest, err := parseQuotedValue(line[j+2:])
			if err != nil {
				return s, fmt.Errorf("label %q in %q: %w", name, line, err)
			}
			s.Labels = append(s.Labels, LabelPair{Name: name, Value: val})
			i = len(line) - len(rest)
			if i < len(line) && line[i] == ',' {
				i++
				continue
			}
			if i >= len(line) || line[i] != '}' {
				return s, fmt.Errorf("expected ',' or '}' after label %q in %q", name, line)
			}
		}
	}
	if i >= len(line) || line[i] != ' ' {
		return s, fmt.Errorf("missing value in %q", line)
	}
	i++
	valTok := line[i:]
	if sp := strings.IndexByte(valTok, ' '); sp >= 0 {
		// Optional millisecond timestamp; validate and discard.
		ts := valTok[sp+1:]
		valTok = valTok[:sp]
		if _, err := strconv.ParseInt(ts, 10, 64); err != nil {
			return s, fmt.Errorf("malformed timestamp %q in %q", ts, line)
		}
	}
	v, err := strconv.ParseFloat(valTok, 64)
	if err != nil {
		return s, fmt.Errorf("malformed value %q in %q", valTok, line)
	}
	s.Value = v
	return s, nil
}

// parseQuotedValue consumes a label value after its opening quote,
// returning the unescaped value and the remainder of the line after the
// closing quote. Only \\, \" and \n are legal escapes; a backslash
// followed by anything else (or a dangling one) is rejected — this is
// what makes ValidateExposition catch unescaped label values.
func parseQuotedValue(rest string) (val, tail string, err error) {
	var b strings.Builder
	for i := 0; i < len(rest); i++ {
		switch c := rest[i]; c {
		case '"':
			return b.String(), rest[i+1:], nil
		case '\\':
			if i+1 >= len(rest) {
				return "", "", fmt.Errorf("dangling backslash in label value")
			}
			i++
			switch rest[i] {
			case '\\':
				b.WriteByte('\\')
			case '"':
				b.WriteByte('"')
			case 'n':
				b.WriteByte('\n')
			default:
				return "", "", fmt.Errorf("invalid escape \\%c in label value", rest[i])
			}
		default:
			b.WriteByte(c)
		}
	}
	return "", "", fmt.Errorf("unterminated label value")
}

// Rollup accumulates per-shard expositions and writes the cluster-wide
// merge: every series appears once per contributing shard with a
// shard="<name>" label prepended, plus a shard="all" aggregate that is
// the per-series sum (for histograms, the exact bucket-wise merge).
// Family and series order follow first appearance so bucket series keep
// their le-ascending layout.
type Rollup struct {
	shards []string
	order  []*rollupFam
	fams   map[string]*rollupFam
}

type rollupFam struct {
	name, help, typ string
	order           []*rollupSeries
	series          map[string]*rollupSeries
}

type rollupSeries struct {
	name   string
	labels []LabelPair
	shards map[string]float64
	sum    float64
}

// NewRollup returns an empty rollup.
func NewRollup() *Rollup {
	return &Rollup{fams: make(map[string]*rollupFam)}
}

// Add parses one shard's exposition text and folds it in. On a parse
// error nothing from this shard is incorporated — the caller should
// surface the shard as a failed scrape instead of silently dropping it.
func (r *Rollup) Add(shard, text string) error {
	fams, err := ParseExposition(text)
	if err != nil {
		return fmt.Errorf("shard %q: %w", shard, err)
	}
	r.shards = append(r.shards, shard)
	for _, pf := range fams {
		f := r.fams[pf.Name]
		if f == nil {
			f = &rollupFam{name: pf.Name, series: make(map[string]*rollupSeries)}
			r.fams[pf.Name] = f
			r.order = append(r.order, f)
		}
		if f.help == "" {
			f.help = pf.Help
		}
		if f.typ == "" {
			f.typ = pf.Type
		}
		for _, smp := range pf.Samples {
			key := seriesKey(smp.Name, smp.Labels)
			sr := f.series[key]
			if sr == nil {
				sr = &rollupSeries{name: smp.Name, labels: smp.Labels, shards: make(map[string]float64)}
				f.series[key] = sr
				f.order = append(f.order, sr)
			}
			sr.shards[shard] += smp.Value
			if !math.IsNaN(smp.Value) {
				sr.sum += smp.Value
			}
		}
	}
	return nil
}

func seriesKey(name string, labels []LabelPair) string {
	var b strings.Builder
	b.WriteString(name)
	for _, lp := range labels {
		b.WriteByte(0)
		b.WriteString(lp.Name)
		b.WriteByte(0)
		b.WriteString(lp.Value)
	}
	return b.String()
}

// AggregateLabel is the shard-label value naming the cluster-wide sum
// in a rolled-up exposition.
const AggregateLabel = "all"

// WriteText writes the merged exposition. The shard label is emitted
// first in every label set (ahead of any le label) so series keyed on
// their pre-le prefix — as ValidateExposition and most scrape pipelines
// do — stay distinct per shard.
func (r *Rollup) WriteText(w io.Writer) error {
	e := NewExposition(w)
	for _, f := range r.order {
		help := f.help
		if help == "" {
			help = f.name
		}
		typ := f.typ
		if typ == "" {
			typ = "untyped"
		}
		e.Family(f.name, help, typ)
		for _, sr := range f.order {
			base := renderLabels(sr.labels)
			for _, shard := range r.shards {
				v, ok := sr.shards[shard]
				if !ok {
					continue
				}
				e.Value(sr.name, joinLabels(Label("shard", shard), base), v)
			}
			e.Value(sr.name, joinLabels(Label("shard", AggregateLabel), base), sr.sum)
		}
	}
	return e.Err()
}

func renderLabels(labels []LabelPair) string {
	if len(labels) == 0 {
		return ""
	}
	parts := make([]string, len(labels))
	for i, lp := range labels {
		parts[i] = Label(lp.Name, lp.Value)
	}
	return strings.Join(parts, ",")
}

func joinLabels(a, b string) string {
	if b == "" {
		return a
	}
	return a + "," + b
}
