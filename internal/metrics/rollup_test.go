package metrics

import (
	"strings"
	"testing"
	"time"
)

func TestEscapeLabelValue(t *testing.T) {
	cases := []struct{ in, want string }{
		{"plain", "plain"},
		{`back\slash`, `back\\slash`},
		{`qu"ote`, `qu\"ote`},
		{"new\nline", `new\nline`},
		{"shard-0}, evil=\"1\"", `shard-0}, evil=\"1\"`},
		{`\`, `\\`},
	}
	for _, c := range cases {
		if got := EscapeLabelValue(c.in); got != c.want {
			t.Errorf("EscapeLabelValue(%q) = %q, want %q", c.in, got, c.want)
		}
	}
	if got := Label("shard", `a"b`); got != `shard="a\"b"` {
		t.Errorf("Label = %q", got)
	}
}

func TestParseSampleLineRoundTrip(t *testing.T) {
	hostile := "sh\\ard\"0\nx"
	line := `m{shard="` + EscapeLabelValue(hostile) + `",stage="parse"} 42`
	s, err := parseSampleLine(line)
	if err != nil {
		t.Fatalf("parseSampleLine(%q): %v", line, err)
	}
	if s.Name != "m" || s.Value != 42 {
		t.Fatalf("sample = %+v", s)
	}
	if v, ok := s.Label("shard"); !ok || v != hostile {
		t.Errorf("shard label = %q, %v; want %q (unescaped round trip)", v, ok, hostile)
	}
	if v, _ := s.Label("stage"); v != "parse" {
		t.Errorf("stage label = %q", v)
	}
}

func TestParseSampleLineRejects(t *testing.T) {
	bad := []string{
		`m{shard="a\qb"} 1`,  // invalid escape
		`m{shard="a\"} 1`,    // escaped closing quote -> unterminated
		`m{shard="a} 1`,      // unterminated value
		`m{shard=a} 1`,       // unquoted value
		`m{shard="a" x} 1`,   // junk after value
		`m{="a"} 1`,          // empty label name
		`m{1x="a"} 1`,        // label name starts with digit
		`m 1 2 3`,            // trailing junk
		`m`,                  // no value
		`m{shard="a"}1`,      // missing space
		`{shard="a"} 1`,      // no metric name
		`m{shard="a"} 1e1e1`, // malformed value
	}
	for _, line := range bad {
		if _, err := parseSampleLine(line); err == nil {
			t.Errorf("parseSampleLine(%q) accepted, want error", line)
		}
	}
}

// The satellite regression: an exposition whose label value contains a
// raw backslash or quote must be rejected, and the same value passed
// through EscapeLabelValue must validate.
func TestValidateExpositionHostileShardName(t *testing.T) {
	hostile := `shard"0\final` + "\nrow"
	if err := ValidateExposition(`predfilter_cluster_x{shard="` + hostile + `"} 1` + "\n"); err == nil {
		t.Fatal("unescaped hostile label value validated, want reject")
	}
	good := `predfilter_cluster_x{shard="` + EscapeLabelValue(hostile) + `"} 1` + "\n"
	if err := ValidateExposition(good); err != nil {
		t.Fatalf("escaped hostile label value rejected: %v\n%s", err, good)
	}
}

// The old regex validator choked on a legal '}' inside a label value;
// the parser must accept it.
func TestValidateExpositionBraceInLabelValue(t *testing.T) {
	if err := ValidateExposition(`m{expr="/a/b[c}d]"} 1` + "\n"); err != nil {
		t.Fatalf("legal '}' inside label value rejected: %v", err)
	}
}

func TestValidateExpositionHistogramInvariants(t *testing.T) {
	ok := strings.Join([]string{
		`h_bucket{shard="a",le="0.1"} 1`,
		`h_bucket{shard="a",le="+Inf"} 2`,
		`h_count{shard="a"} 2`,
		`h_bucket{shard="b",le="0.1"} 5`,
		`h_bucket{shard="b",le="+Inf"} 5`,
		`h_count{shard="b"} 5`,
	}, "\n") + "\n"
	if err := ValidateExposition(ok); err != nil {
		t.Fatalf("valid histogram rejected: %v", err)
	}
	bad := []string{
		"h_bucket{le=\"0.2\"} 1\nh_bucket{le=\"0.1\"} 2\nh_bucket{le=\"+Inf\"} 2\n",   // bounds not increasing
		"h_bucket{le=\"0.1\"} 3\nh_bucket{le=\"+Inf\"} 2\n",                           // not cumulative
		"h_bucket{le=\"0.1\"} 1\nh_bucket{le=\"+Inf\"} 2\nh_count 3\n",                // +Inf != count
		"h_bucket{le=\"0.1\"} 1\n",                                                    // no +Inf
		"h_bucket{shard=\"a\",le=\"0.1\"} 1\nh_bucket{shard=\"a\",le=\"+Inf\"} 1.5\n", // fractional count
	}
	for _, text := range bad {
		if err := ValidateExposition(text); err == nil {
			t.Errorf("invalid histogram accepted:\n%s", text)
		}
	}
}

func TestParseExposition(t *testing.T) {
	text := strings.Join([]string{
		`# HELP docs_total Documents.`,
		`# TYPE docs_total counter`,
		`docs_total 10`,
		`# HELP lat_seconds Latency.`,
		`# TYPE lat_seconds histogram`,
		`lat_seconds_bucket{le="0.1"} 4`,
		`lat_seconds_bucket{le="+Inf"} 5`,
		`lat_seconds_sum 0.7`,
		`lat_seconds_count 5`,
	}, "\n") + "\n"
	fams, err := ParseExposition(text)
	if err != nil {
		t.Fatal(err)
	}
	if len(fams) != 2 {
		t.Fatalf("got %d families, want 2", len(fams))
	}
	if fams[0].Name != "docs_total" || fams[0].Type != "counter" || len(fams[0].Samples) != 1 {
		t.Errorf("family 0 = %+v", fams[0])
	}
	h := fams[1]
	if h.Name != "lat_seconds" || h.Type != "histogram" {
		t.Fatalf("family 1 = %+v", h)
	}
	// _bucket/_sum/_count all attach to the declared histogram family.
	if len(h.Samples) != 4 {
		t.Fatalf("histogram family has %d samples, want 4", len(h.Samples))
	}
	if h.Samples[3].Name != "lat_seconds_count" || h.Samples[3].Value != 5 {
		t.Errorf("last sample = %+v", h.Samples[3])
	}
}

func TestHistSnapshotMergeProperties(t *testing.T) {
	mk := func(seed int) HistSnapshot {
		var h Histogram
		for i := 0; i < 50; i++ {
			h.Observe(time.Duration((seed + 1) * (i + 1) * int(time.Microsecond)))
		}
		return h.Snapshot()
	}
	a, b, c := mk(0), mk(3), mk(17)

	// Identity.
	if got := a.Merge(HistSnapshot{}); got != a {
		t.Error("merge with zero snapshot is not identity")
	}
	// Commutativity.
	if ab, ba := a.Merge(b), b.Merge(a); ab != ba {
		t.Error("merge not commutative")
	}
	// Associativity — the property the rollup's per-shard fold relies on.
	if l, r := a.Merge(b).Merge(c), a.Merge(b.Merge(c)); l != r {
		t.Error("merge not associative")
	}
	// Counts and mass add up.
	m := a.Merge(b)
	if m.Count != a.Count+b.Count || m.SumNanos != a.SumNanos+b.SumNanos {
		t.Errorf("merged count/sum = %d/%d", m.Count, m.SumNanos)
	}
	var buckets uint64
	for _, n := range m.Buckets {
		buckets += n
	}
	if buckets != m.Count {
		t.Errorf("merged buckets sum %d != count %d", buckets, m.Count)
	}
}

func TestMergedQuantileMatchesCombinedStream(t *testing.T) {
	// Observing one stream into two histograms and merging must give the
	// same snapshot as observing it into one.
	var h1, h2, all Histogram
	for i := 1; i <= 400; i++ {
		d := time.Duration(i) * 37 * time.Microsecond
		if i%2 == 0 {
			h1.Observe(d)
		} else {
			h2.Observe(d)
		}
		all.Observe(d)
	}
	if got, want := h1.Snapshot().Merge(h2.Snapshot()), all.Snapshot(); got != want {
		t.Fatal("merged snapshot differs from combined-stream snapshot")
	}
}

func TestRollupAggregatesAndValidates(t *testing.T) {
	shardText := func(docs int, bucket1 int) string {
		var b strings.Builder
		e := NewExposition(&b)
		e.Family("predfilter_docs_total", "Documents.", "counter")
		e.Int("predfilter_docs_total", "", int64(docs))
		e.Family("predfilter_stage_duration_seconds", "Latency.", "histogram")
		var h Histogram
		for i := 0; i < bucket1; i++ {
			h.Observe(time.Millisecond)
		}
		e.Histogram("predfilter_stage_duration_seconds", `stage="parse"`, h.Snapshot())
		return b.String()
	}
	r := NewRollup()
	if err := r.Add("shard-0", shardText(3, 2)); err != nil {
		t.Fatal(err)
	}
	if err := r.Add("shard-1", shardText(7, 5)); err != nil {
		t.Fatal(err)
	}
	var out strings.Builder
	if err := r.WriteText(&out); err != nil {
		t.Fatal(err)
	}
	text := out.String()
	if err := ValidateExposition(text); err != nil {
		t.Fatalf("rollup output fails validation: %v\n%s", err, text)
	}
	for _, want := range []string{
		`predfilter_docs_total{shard="shard-0"} 3`,
		`predfilter_docs_total{shard="shard-1"} 7`,
		`predfilter_docs_total{shard="all"} 10`,
		`predfilter_stage_duration_seconds_count{shard="all",stage="parse"} 7`,
		`predfilter_stage_duration_seconds_bucket{shard="all",stage="parse",le="+Inf"} 7`,
	} {
		if !strings.Contains(text, want) {
			t.Errorf("rollup output missing %q\n%s", want, text)
		}
	}
}

func TestRollupShardLabelPrecedesLe(t *testing.T) {
	r := NewRollup()
	text := "h_bucket{le=\"0.1\"} 1\nh_bucket{le=\"+Inf\"} 1\nh_sum 0.01\nh_count 1\n"
	if err := r.Add("s0", text); err != nil {
		t.Fatal(err)
	}
	var out strings.Builder
	if err := r.WriteText(&out); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out.String(), `h_bucket{shard="s0",le="0.1"} 1`) {
		t.Fatalf("shard label not first:\n%s", out.String())
	}
	if err := ValidateExposition(out.String()); err != nil {
		t.Fatal(err)
	}
}

func TestRollupHostileShardName(t *testing.T) {
	r := NewRollup()
	hostile := `sh"ard\0` + "\n"
	if err := r.Add(hostile, "m_total 4\n"); err != nil {
		t.Fatal(err)
	}
	var out strings.Builder
	if err := r.WriteText(&out); err != nil {
		t.Fatal(err)
	}
	if err := ValidateExposition(out.String()); err != nil {
		t.Fatalf("rollup with hostile shard name fails validation: %v\n%s", err, out.String())
	}
	if !strings.Contains(out.String(), `shard="sh\"ard\\0\n"`) {
		t.Fatalf("hostile shard name not escaped:\n%s", out.String())
	}
}

func TestRollupRejectsMalformedShard(t *testing.T) {
	r := NewRollup()
	if err := r.Add("bad", `m{x="unterminated} 1`+"\n"); err == nil {
		t.Fatal("malformed shard exposition accepted")
	}
	// The failed shard contributes nothing.
	if err := r.Add("good", "m_total 1\n"); err != nil {
		t.Fatal(err)
	}
	var out strings.Builder
	if err := r.WriteText(&out); err != nil {
		t.Fatal(err)
	}
	if strings.Contains(out.String(), "bad") {
		t.Fatalf("failed shard leaked into rollup:\n%s", out.String())
	}
}
