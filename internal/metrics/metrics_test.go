package metrics

import (
	"bytes"
	"math"
	"strings"
	"sync"
	"testing"
	"time"
)

func TestBucketIdx(t *testing.T) {
	cases := []struct {
		ns   uint64
		want int
	}{
		{0, 0},
		{1, 0},
		{255, 0},
		{256, 1},
		{511, 1},
		{512, 2},
		{1 << 33, 26},
		{1<<34 - 1, 26},
		{1 << 34, 27},
		{math.MaxUint64, 27},
	}
	for _, c := range cases {
		if got := bucketIdx(c.ns); got != c.want {
			t.Errorf("bucketIdx(%d) = %d, want %d", c.ns, got, c.want)
		}
	}
}

func TestHistogramObserveAndSnapshot(t *testing.T) {
	var h Histogram
	durs := []time.Duration{100 * time.Nanosecond, time.Microsecond, time.Millisecond, time.Second, -time.Second}
	for _, d := range durs {
		h.Observe(d)
	}
	s := h.Snapshot()
	if s.Count != uint64(len(durs)) {
		t.Fatalf("count = %d, want %d", s.Count, len(durs))
	}
	wantSum := uint64(100 + 1e3 + 1e6 + 1e9) // negative clamps to 0
	if s.SumNanos != wantSum {
		t.Fatalf("sum = %d, want %d", s.SumNanos, wantSum)
	}
	var total uint64
	for _, b := range s.Buckets {
		total += b
	}
	if total != s.Count {
		t.Fatalf("bucket total %d != count %d", total, s.Count)
	}
}

func TestQuantile(t *testing.T) {
	var h Histogram
	if got := h.Snapshot().Quantile(0.5); got != 0 {
		t.Fatalf("empty histogram quantile = %v, want 0", got)
	}
	// 1000 observations of ~1ms: the estimates must stay within the
	// bucket holding 1ms ([2^19, 2^20) ns).
	for i := 0; i < 1000; i++ {
		h.Observe(time.Millisecond)
	}
	s := h.Snapshot()
	for _, q := range []float64{0.5, 0.95, 0.99} {
		v := s.Quantile(q)
		if v < float64(uint64(1)<<19) || v > float64(uint64(1)<<20) {
			t.Fatalf("q%.2f = %vns outside the 1ms bucket", q, v)
		}
	}
	// Overflow bucket reports its lower bound.
	var o Histogram
	o.Observe(time.Hour)
	if got, want := o.Snapshot().Quantile(0.5), float64(uint64(1)<<34); got != want {
		t.Fatalf("overflow quantile = %v, want %v", got, want)
	}
}

func TestHistogramConcurrent(t *testing.T) {
	var h Histogram
	const (
		workers = 8
		perW    = 10000
	)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < perW; i++ {
				h.Observe(time.Duration(w*1000+i) * time.Nanosecond)
			}
		}(w)
	}
	wg.Wait()
	if got := h.Snapshot().Count; got != workers*perW {
		t.Fatalf("count = %d, want %d", got, workers*perW)
	}
}

func TestSetStreamBusyClamps(t *testing.T) {
	s := NewSet()
	s.StreamBusy(-1).Add(1)
	s.StreamBusy(MaxStreamWorkers + 5).Add(2)
	busy := s.StreamBusyNanos()
	if len(busy) != MaxStreamWorkers {
		t.Fatalf("busy length = %d, want %d", len(busy), MaxStreamWorkers)
	}
	if busy[0] != 1 || busy[MaxStreamWorkers-1] != 2 {
		t.Fatalf("clamped counters = %d, %d", busy[0], busy[MaxStreamWorkers-1])
	}
}

func TestNilSetObserveParse(t *testing.T) {
	var s *Set
	s.ObserveParse(time.Millisecond, 10, nil) // must not panic
}

func TestExpositionFormat(t *testing.T) {
	var buf bytes.Buffer
	e := NewExposition(&buf)
	e.Family("x_total", "a counter", "counter")
	e.Int("x_total", "", 7)
	e.Family("g", "a gauge", "gauge")
	e.Value("g", `kind="q"`, 1.5)
	e.Family("d_seconds", "a histogram", "histogram")
	var h Histogram
	h.Observe(time.Millisecond)
	h.Observe(time.Second)
	e.Histogram("d_seconds", `stage="parse"`, h.Snapshot())
	e.Histogram("d_seconds", `stage="match"`, h.Snapshot())
	e.Family("u_seconds", "unlabeled histogram", "histogram")
	e.Histogram("u_seconds", "", h.Snapshot())
	if err := e.Err(); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	if err := ValidateExposition(out); err != nil {
		t.Fatalf("exposition invalid: %v\n%s", err, out)
	}
	for _, want := range []string{
		"# TYPE d_seconds histogram",
		`d_seconds_bucket{stage="parse",le="+Inf"} 2`,
		`d_seconds_count{stage="parse"} 2`,
		"x_total 7",
		`g{kind="q"} 1.5`,
		"u_seconds_count 2",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("exposition missing %q:\n%s", want, out)
		}
	}
}

func TestValidateExpositionRejects(t *testing.T) {
	for _, bad := range []string{
		"not a metric line at all!",
		"x_bucket{le=\"0.1\"} 5\nx_bucket{le=\"0.2\"} 3\nx_bucket{le=\"+Inf\"} 5\nx_count 5",
		"x_bucket{le=\"0.2\"} 1\nx_bucket{le=\"0.1\"} 2\nx_bucket{le=\"+Inf\"} 2\nx_count 2",
		"x_bucket{le=\"0.1\"} 1\nx_bucket{le=\"+Inf\"} 2\nx_count 3",
		"x_bucket{le=\"0.1\"} 1\nx_count 1",
	} {
		if err := ValidateExposition(bad); err == nil {
			t.Errorf("ValidateExposition accepted invalid input:\n%s", bad)
		}
	}
	if err := ValidateExposition("# just a comment\n\nok_total 1"); err != nil {
		t.Errorf("valid input rejected: %v", err)
	}
}
