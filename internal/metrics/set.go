package metrics

import "time"

// MaxStreamWorkers bounds the per-worker busy-time counter vector of the
// stream pipeline; workers beyond the bound share the last slot.
const MaxStreamWorkers = 32

// NumLimitKinds sizes the per-limit trip counter vector. It must be at
// least guard.NumKinds; the two constants are cross-checked by a test
// (this package stays dependency-free, so it cannot import guard).
const NumLimitKinds = 8

// Set is the engine-wide pipeline metric set: one instance per Engine,
// always on, shared by every stage (parse, predicate matching, occurrence
// determination, cache, store, stream pipeline). All fields follow the
// zero-allocation recording contract; a nil *Set is accepted by every
// helper so bare components (a standalone Matcher in tests) can skip
// instrumentation without branching at each site.
type Set struct {
	// Document-level counters.
	DocsTotal    Counter // documents matched (all entry points)
	DocErrors    Counter // documents rejected by the parser
	DocBytes     Counter // XML bytes parsed
	PathsTotal   Counter // root-to-leaf paths matched
	MatchesTotal Counter // matching SIDs reported
	SlowDocs     Counter // documents over the slow-document threshold

	// Parse-path counters: documents served end-to-end by the zero-copy
	// scanner fast path, and documents the fast path handed to the
	// encoding/xml fallback (out-of-subset or malformed input). Documents
	// parsed with the stdlib parser selected outright count in neither.
	ParseScanDocs     Counter
	ParseFallbackDocs Counter

	// Per-document stage latency histograms. Parse covers XML parsing plus
	// path extraction; Cache the path-signature cache probes and replays;
	// PredMatch the predicate matching stage; Occur occurrence
	// determination plus result collection; Match the whole post-parse
	// matching call. The parallel path records Match only (its workers
	// deliberately keep clock calls off the shards).
	Parse     Histogram
	Cache     Histogram
	PredMatch Histogram
	Occur     Histogram
	Match     Histogram

	// Durable-store stage histograms.
	WALAppend Histogram
	Snapshot  Histogram

	// Stream pipeline instrumentation.
	StreamQueueDepth Gauge   // documents dispatched but not yet picked up
	StreamJobs       Counter // documents that entered the worker pool
	StreamBatches    Counter // dispatch groups delivered to workers (effective batch size = StreamJobs / StreamBatches)
	streamBusy       [MaxStreamWorkers]Counter

	// Columnar batch-matcher instrumentation (the bitset kernel in
	// internal/matcher): batches and documents it evaluated, paths swept,
	// candidate bits surviving the per-path fold, paths that needed scalar
	// occurrence verification (a tag repeated on the path), and the
	// occupancy pair — candidate-bitset words scanned vs words holding at
	// least one candidate. ColSweep is the per-document time spent in pure
	// bitset work, a sub-stage of Occur.
	ColBatches    Counter
	ColDocs       Counter
	ColPaths      Counter
	ColCandidates Counter
	ColAmbiguous  Counter
	ColWords      Counter
	ColWordsLive  Counter
	ColSweep      Histogram

	// Resource-governance counters: documents stopped by each limit kind
	// (indexed by guard.Kind) and panics recovered by the isolation layer
	// (stream workers, HTTP handlers).
	limitTrips [NumLimitKinds]Counter
	Panics     Counter
}

// NewSet returns a ready-to-record metric set.
func NewSet() *Set { return &Set{} }

// ObserveParse records one parse outcome: duration and input size, or a
// parse failure. Path counts are recorded by the matcher (PathsTotal), so
// parse-only callers do not double-count them. Safe on a nil receiver.
func (s *Set) ObserveParse(d time.Duration, bytes int, err error) {
	if s == nil {
		return
	}
	if err != nil {
		s.DocErrors.Inc()
		return
	}
	s.Parse.Observe(d)
	s.DocBytes.Add(int64(bytes))
}

// ObserveParsePath records which parser served one document: scanOK means
// the zero-copy scanner fast path handled it end to end, fellBack means
// the encoding/xml fallback ran (whatever its outcome). Safe on a nil
// receiver.
func (s *Set) ObserveParsePath(scanOK, fellBack bool) {
	if s == nil {
		return
	}
	if scanOK {
		s.ParseScanDocs.Inc()
	}
	if fellBack {
		s.ParseFallbackDocs.Inc()
	}
}

// ObserveWALAppend records one durable WAL append. Safe on a nil receiver.
func (s *Set) ObserveWALAppend(d time.Duration) {
	if s == nil {
		return
	}
	s.WALAppend.Observe(d)
}

// ObserveSnapshot records one snapshot write. Safe on a nil receiver.
func (s *Set) ObserveSnapshot(d time.Duration) {
	if s == nil {
		return
	}
	s.Snapshot.Observe(d)
}

// ObserveLimitTrip counts one governance stop of the given limit kind
// (guard.Kind values; out-of-range kinds clamp to the last slot). Safe on
// a nil receiver.
func (s *Set) ObserveLimitTrip(kind int) {
	if s == nil {
		return
	}
	if kind < 0 {
		kind = 0
	}
	if kind >= NumLimitKinds {
		kind = NumLimitKinds - 1
	}
	s.limitTrips[kind].Inc()
}

// ObservePanic counts one recovered panic. Safe on a nil receiver.
func (s *Set) ObservePanic() {
	if s == nil {
		return
	}
	s.Panics.Inc()
}

// LimitTrips returns the per-kind governance trip counts (indexed by
// guard.Kind).
func (s *Set) LimitTrips() [NumLimitKinds]int64 {
	var out [NumLimitKinds]int64
	if s == nil {
		return out
	}
	for i := range out {
		out[i] = s.limitTrips[i].Load()
	}
	return out
}

// StreamBusy returns worker w's cumulative busy-time counter
// (nanoseconds), clamping out-of-range workers to the last slot.
func (s *Set) StreamBusy(w int) *Counter {
	if w < 0 {
		w = 0
	}
	if w >= MaxStreamWorkers {
		w = MaxStreamWorkers - 1
	}
	return &s.streamBusy[w]
}

// StreamBusyNanos returns the per-worker busy-time counters up to the
// highest worker that recorded anything.
func (s *Set) StreamBusyNanos() []int64 {
	n := 0
	for i := range s.streamBusy {
		if s.streamBusy[i].Load() > 0 {
			n = i + 1
		}
	}
	out := make([]int64, n)
	for i := range out {
		out[i] = s.streamBusy[i].Load()
	}
	return out
}
