// Package metrics is the engine's stdlib-only observability core:
// lock-free counters, gauges and fixed-bucket latency histograms cheap
// enough to stay on permanently, plus a hand-rolled Prometheus
// text-exposition writer (expo.go).
//
// The recording contract is zero heap allocations per operation:
// Counter.Add, Gauge.Set and Histogram.Observe touch only preallocated
// atomics, so instrumented hot paths (per-document, per-path) keep their
// allocation profile with metrics enabled. Histograms are sharded into
// cache-line-padded stripes to keep concurrent recorders (the stream
// worker pool, parallel matchers) off one contended line; stripe
// selection is a multiplicative hash of the observed value, so no extra
// shared state is touched to pick a stripe.
//
// Buckets are fixed at construction: powers of two from 256ns to ~17s
// (2^8..2^34 ns) plus an overflow bucket. Bucket i < NumBuckets-1 counts
// observations in [2^(7+i), 2^(8+i)) ns — bucket 0 absorbs everything
// below 256ns — and the last bucket absorbs the rest. Quantiles are
// estimated by linear interpolation inside the selected bucket, which
// bounds the relative error by the bucket width (a factor of two).
package metrics

import (
	"math"
	"math/bits"
	"sync/atomic"
	"time"
)

// Counter is a monotonically increasing atomic counter.
type Counter struct {
	v atomic.Int64
}

// Add adds n (n must be non-negative for Prometheus counter semantics).
func (c *Counter) Add(n int64) { c.v.Add(n) }

// Inc adds one.
func (c *Counter) Inc() { c.v.Add(1) }

// Load returns the current value.
func (c *Counter) Load() int64 { return c.v.Load() }

// Gauge is an atomic instantaneous value (queue depths, resident sizes).
type Gauge struct {
	v atomic.Int64
}

// Set stores v.
func (g *Gauge) Set(v int64) { g.v.Store(v) }

// Inc adds one.
func (g *Gauge) Inc() { g.v.Add(1) }

// Dec subtracts one.
func (g *Gauge) Dec() { g.v.Add(-1) }

// Add adjusts the gauge by n (negative to decrease).
func (g *Gauge) Add(n int64) { g.v.Add(n) }

// Load returns the current value.
func (g *Gauge) Load() int64 { return g.v.Load() }

// NumBuckets is the number of histogram buckets, including the overflow
// bucket.
const NumBuckets = 28

// minBucketBits is the exponent of the first finite upper bound: bucket 0
// counts durations below 2^minBucketBits nanoseconds.
const minBucketBits = 8

// numStripes shards each histogram's buckets to spread concurrent
// recorders; a power of two so stripe selection is a shift.
const numStripes = 8

// stripe is one shard of a histogram, padded out to its own cache lines
// so recorders hashing to different stripes never share a line.
type stripe struct {
	count   atomic.Uint64
	sum     atomic.Uint64 // nanoseconds
	buckets [NumBuckets]atomic.Uint64
	_       [16]byte // pad the 240-byte payload to 256
}

// Histogram is a fixed-bucket latency histogram. The zero value is ready
// to use; Observe never allocates.
type Histogram struct {
	stripes [numStripes]stripe
}

// bucketIdx maps a nanosecond value to its bucket.
func bucketIdx(ns uint64) int {
	l := bits.Len64(ns)
	if l <= minBucketBits {
		return 0
	}
	i := l - minBucketBits
	if i >= NumBuckets {
		i = NumBuckets - 1
	}
	return i
}

// stripeIdx picks a stripe from the observed value: a golden-ratio
// multiplicative hash whose top bits depend on every input bit, so nearby
// durations spread across stripes without any shared round-robin state.
func stripeIdx(ns uint64) int {
	return int((ns * 0x9E3779B97F4A7C15) >> (64 - 3)) // 2^3 == numStripes
}

// Observe records one duration. Negative durations clamp to zero.
func (h *Histogram) Observe(d time.Duration) {
	ns := d.Nanoseconds()
	if ns < 0 {
		ns = 0
	}
	st := &h.stripes[stripeIdx(uint64(ns))]
	st.count.Add(1)
	st.sum.Add(uint64(ns))
	st.buckets[bucketIdx(uint64(ns))].Add(1)
}

// HistSnapshot is a point-in-time copy of a histogram's counts. Buckets
// holds per-bucket (non-cumulative) counts.
type HistSnapshot struct {
	Count    uint64
	SumNanos uint64
	Buckets  [NumBuckets]uint64
}

// Snapshot folds the stripes into one consistent-enough copy (each atomic
// is read once; concurrent Observes may land between reads, which skews a
// snapshot by at most the in-flight operations — the usual monitoring
// contract).
func (h *Histogram) Snapshot() HistSnapshot {
	var s HistSnapshot
	for i := range h.stripes {
		st := &h.stripes[i]
		s.Count += st.count.Load()
		s.SumNanos += st.sum.Load()
		for b := range st.buckets {
			s.Buckets[b] += st.buckets[b].Load()
		}
	}
	return s
}

// Merge returns the bucket-wise sum of s and o. Because every histogram
// in the process (and across cluster shards) shares the same fixed
// power-of-two bucket bounds, merging is exact: no rebinning, and the
// operation is associative and commutative with HistSnapshot{} as
// identity — the property the coordinator's cluster-wide metrics rollup
// relies on.
func (s HistSnapshot) Merge(o HistSnapshot) HistSnapshot {
	out := HistSnapshot{Count: s.Count + o.Count, SumNanos: s.SumNanos + o.SumNanos}
	for i := range out.Buckets {
		out.Buckets[i] = s.Buckets[i] + o.Buckets[i]
	}
	return out
}

// BucketUpperNanos returns bucket i's inclusive-exclusive upper bound in
// nanoseconds, or +Inf for the overflow bucket.
func BucketUpperNanos(i int) float64 {
	if i >= NumBuckets-1 {
		return math.Inf(1)
	}
	return float64(uint64(1) << (minBucketBits + i))
}

// bucketLowerNanos returns bucket i's lower bound in nanoseconds.
func bucketLowerNanos(i int) float64 {
	if i == 0 {
		return 0
	}
	return float64(uint64(1) << (minBucketBits + i - 1))
}

// Quantile estimates the q-quantile (0 < q <= 1) in nanoseconds by linear
// interpolation within the bucket holding the target rank. It returns 0
// for an empty histogram. The overflow bucket reports its lower bound.
func (s HistSnapshot) Quantile(q float64) float64 {
	if s.Count == 0 {
		return 0
	}
	rank := q * float64(s.Count)
	var cum float64
	for i, c := range s.Buckets {
		if c == 0 {
			continue
		}
		next := cum + float64(c)
		if rank <= next {
			lo, hi := bucketLowerNanos(i), BucketUpperNanos(i)
			if math.IsInf(hi, 1) {
				return lo
			}
			return lo + (hi-lo)*(rank-cum)/float64(c)
		}
		cum = next
	}
	return bucketLowerNanos(NumBuckets - 1)
}
