package indexfilter

import (
	"math/rand"
	"testing"
)

// BenchmarkFilter measures prefix-tree evaluation over the per-document
// index streams (engine construction excluded).
func BenchmarkFilter(b *testing.B) {
	rng := rand.New(rand.NewSource(1))
	e := New()
	for i := 0; i < 20000; i++ {
		if _, err := e.Add(randXPE(rng)); err != nil {
			b.Fatal(err)
		}
	}
	docs := make([][]byte, 8)
	for i := range docs {
		docs[i] = randXML(rng)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := e.Filter(docs[i%len(docs)]); err != nil {
			b.Fatal(err)
		}
	}
}
