// Package indexfilter reimplements the Index-Filter algorithm (Bruno et
// al., "Navigation- vs. index-based XML multi-query processing", ICDE
// 2003), the index-based baseline of the paper's evaluation. Queries are
// kept in a prefix tree; for each document, per-tag index streams of
// (start, end, level) element intervals are built, and the prefix tree is
// evaluated by joining a node's candidate stream against its parent's
// matched interval. As in the paper's comparison, the algorithm is
// modified to stop at the first match per expression, and wildcards match
// any element (which makes the wildcard node's index stream the stream of
// all elements — the behavior §6.3 describes).
package indexfilter

import (
	"bytes"
	"encoding/xml"
	"fmt"
	"io"
	"sort"

	"predfilter/internal/xmlevents"
	"predfilter/internal/xpath"
)

// SID identifies one registered expression; duplicates share the prefix
// tree but receive distinct SIDs.
type SID int32

// qnode is one prefix-tree node: a location step (axis + name test).
type qnode struct {
	desc     bool // descendant axis edge from the parent
	wildcard bool
	name     string
	parent   *qnode
	children []*qnode
	exprs    []int32 // distinct-expression ids ending here
	subtree  int     // number of distinct expressions in this subtree
}

func (n *qnode) findChild(desc, wildcard bool, name string) *qnode {
	for _, c := range n.children {
		if c.desc == desc && c.wildcard == wildcard && (wildcard || c.name == name) {
			return c
		}
	}
	return nil
}

// expr is one distinct registered expression.
type expr struct {
	sids []SID
}

// Engine is an Index-Filter instance.
type Engine struct {
	root  *qnode
	exprs []*expr
	byKey map[string]*expr
	nsids int
}

// New returns an empty engine.
func New() *Engine {
	return &Engine{root: &qnode{}, byKey: make(map[string]*expr)}
}

// Add registers an expression. Attribute and nested path filters are
// outside the fragment the paper benchmarks Index-Filter on and are
// rejected.
func (e *Engine) Add(s string) (SID, error) {
	p, err := xpath.Parse(s)
	if err != nil {
		return 0, err
	}
	return e.AddPath(p)
}

// AddPath registers a parsed expression.
func (e *Engine) AddPath(p *xpath.Path) (SID, error) {
	if !p.IsSinglePath() {
		return 0, fmt.Errorf("indexfilter: nested path filters are not supported: %q", p)
	}
	if p.HasAttrFilters() {
		return 0, fmt.Errorf("indexfilter: attribute filters are not supported: %q", p)
	}
	key := canonKey(p)
	ex := e.byKey[key]
	if ex == nil {
		ex = &expr{}
		id := int32(len(e.exprs))
		e.exprs = append(e.exprs, ex)
		e.byKey[key] = ex
		e.insert(p, id)
	}
	sid := SID(e.nsids)
	e.nsids++
	ex.sids = append(ex.sids, sid)
	return sid, nil
}

func canonKey(p *xpath.Path) string {
	if p.Absolute {
		return p.String()
	}
	return "//" + p.String()
}

func (e *Engine) insert(p *xpath.Path, id int32) {
	cur := e.root
	for i, s := range p.Steps {
		desc := s.Axis == xpath.Descendant
		if i == 0 && !p.Absolute {
			desc = true // a relative expression may start anywhere
		}
		next := cur.findChild(desc, s.Wildcard, s.Name)
		if next == nil {
			next = &qnode{desc: desc, wildcard: s.Wildcard, name: s.Name, parent: cur}
			cur.children = append(cur.children, next)
		}
		cur = next
	}
	cur.exprs = append(cur.exprs, id)
	e.bumpSubtree(p)
}

// bumpSubtree recounts subtree expression totals along the inserted path.
// (Recomputing the whole tree is avoided by incrementing along the walk.)
func (e *Engine) bumpSubtree(p *xpath.Path) {
	cur := e.root
	cur.subtree++
	for i, s := range p.Steps {
		desc := s.Axis == xpath.Descendant
		if i == 0 && !p.Absolute {
			desc = true
		}
		cur = cur.findChild(desc, s.Wildcard, s.Name)
		cur.subtree++
	}
}

// elem is one document element in interval encoding.
type elem struct {
	start, end int32
	level      int32
}

// docIndex holds the per-tag index streams of one document, each sorted by
// start position (document order).
type docIndex struct {
	byTag map[string][]elem
	all   []elem
}

// buildIndex parses the document into its index streams.
func buildIndex(r io.Reader) (*docIndex, error) {
	ix := &docIndex{byTag: make(map[string][]elem)}
	type open struct {
		tag   string
		start int32
		level int32
	}
	var stack []open
	counter := int32(0)
	err := xmlevents.ForEach(r, "indexfilter",
		func(t xml.StartElement) error {
			counter++
			stack = append(stack, open{tag: t.Name.Local, start: counter, level: int32(len(stack) + 1)})
			return nil
		},
		func(t xml.EndElement) error {
			if len(stack) == 0 {
				return fmt.Errorf("indexfilter: unbalanced end element <%s>", t.Name.Local)
			}
			counter++
			o := stack[len(stack)-1]
			stack = stack[:len(stack)-1]
			el := elem{start: o.start, end: counter, level: o.level}
			ix.byTag[o.tag] = append(ix.byTag[o.tag], el)
			ix.all = append(ix.all, el)
			return nil
		})
	if err != nil {
		return nil, err
	}
	if len(stack) != 0 {
		return nil, fmt.Errorf("indexfilter: unexpected EOF with %d open elements", len(stack))
	}
	// End events close inner elements first; restore document order.
	for _, s := range ix.byTag {
		sort.Slice(s, func(i, j int) bool { return s[i].start < s[j].start })
	}
	sort.Slice(ix.all, func(i, j int) bool { return ix.all[i].start < ix.all[j].start })
	return ix, nil
}

// stream returns the candidate index stream for a query node.
func (ix *docIndex) stream(n *qnode) []elem {
	if n.wildcard {
		return ix.all
	}
	return ix.byTag[n.name]
}

// Filter parses the document and returns the SIDs of all matching
// expressions.
func (e *Engine) Filter(doc []byte) ([]SID, error) {
	return e.FilterReader(bytes.NewReader(doc))
}

// FilterReader is Filter over a stream.
func (e *Engine) FilterReader(r io.Reader) ([]SID, error) {
	ix, err := buildIndex(r)
	if err != nil {
		return nil, err
	}
	run := &evaluation{e: e, ix: ix, matched: make([]bool, len(e.exprs)), done: make(map[*qnode]int)}
	// The root context is the virtual document node enclosing everything.
	root := elem{start: 0, end: int32(len(ix.all))*2 + 1, level: 0}
	run.evalChildren(e.root, root)

	out := make([]SID, 0, run.nmatched)
	for id, ok := range run.matched {
		if ok {
			out = append(out, e.exprs[id].sids...)
		}
	}
	return out, nil
}

// evaluation is per-document evaluation state.
type evaluation struct {
	e        *Engine
	ix       *docIndex
	matched  []bool
	nmatched int
	done     map[*qnode]int // per-node count of already-matched subtree expressions
}

// satisfied reports whether every expression in the node's subtree already
// matched (the paper's first-match modification: such subtrees are
// skipped).
func (r *evaluation) satisfied(n *qnode) bool {
	return r.done[n] >= n.subtree
}

// evalChildren joins every child node's index stream against the parent's
// matched interval.
func (r *evaluation) evalChildren(n *qnode, ctx elem) {
	for _, c := range n.children {
		if r.satisfied(c) {
			continue
		}
		r.evalNode(c, ctx)
	}
}

// evalNode scans the candidate stream of c for elements inside the
// context interval with the right level relation.
func (r *evaluation) evalNode(c *qnode, ctx elem) {
	stream := r.ix.stream(c)
	// Binary search: first candidate starting after the context start.
	lo := sort.Search(len(stream), func(i int) bool { return stream[i].start > ctx.start })
	for i := lo; i < len(stream) && stream[i].start < ctx.end; i++ {
		el := stream[i]
		if c.desc {
			if el.level <= ctx.level {
				continue
			}
		} else if el.level != ctx.level+1 {
			continue
		}
		r.visit(c, el)
		if r.satisfied(c) {
			return
		}
	}
}

// visit handles one matched element for node c: record expression matches
// and recurse into children.
func (r *evaluation) visit(c *qnode, el elem) {
	for _, id := range c.exprs {
		if !r.matched[id] {
			r.matched[id] = true
			r.nmatched++
			r.creditUp(c)
		}
	}
	r.evalChildren(c, el)
}

// creditUp records that one more subtree expression of c — and of every
// ancestor — is satisfied, so exhausted subtrees are pruned (the paper's
// first-match modification).
func (r *evaluation) creditUp(c *qnode) {
	for n := c; n != nil; n = n.parent {
		r.done[n]++
	}
}
