package indexfilter

import (
	"math/rand"
	"strings"
	"testing"

	"predfilter/internal/refmatch"
	"predfilter/internal/xmldoc"
	"predfilter/internal/xpath"
)

var tags = []string{"a", "b", "c", "d", "e"}

func randXPE(rng *rand.Rand) string {
	n := 1 + rng.Intn(4)
	var b strings.Builder
	if rng.Intn(2) == 0 {
		b.WriteString("/")
	}
	for i := 0; i < n; i++ {
		if i > 0 {
			if rng.Intn(5) == 0 {
				b.WriteString("//")
			} else {
				b.WriteString("/")
			}
		} else if b.Len() == 1 && rng.Intn(6) == 0 {
			b.Reset()
			b.WriteString("//")
		}
		if rng.Intn(4) == 0 {
			b.WriteString("*")
			continue
		}
		b.WriteString(tags[rng.Intn(len(tags))])
	}
	return b.String()
}

func randXML(rng *rand.Rand) []byte {
	var b strings.Builder
	var build func(depth int)
	build = func(depth int) {
		tag := tags[rng.Intn(len(tags))]
		b.WriteString("<" + tag + ">")
		if depth < 5 {
			for k := rng.Intn(3); k > 0; k-- {
				build(depth + 1)
			}
		}
		b.WriteString("</" + tag + ">")
	}
	build(1)
	return []byte(b.String())
}

// TestExamples checks hand-verified matches.
func TestExamples(t *testing.T) {
	e := New()
	xpes := []string{"/a/b/c", "/a/b/d", "a//c", "b/c", "/b", "/*/*/*", "/a/*/c", "//b/c", "c", "/a//c", "b//b", "c/*"}
	want := map[string]bool{"/a/b/c": true, "a//c": true, "b/c": true, "/*/*/*": true, "/a/*/c": true, "//b/c": true, "c": true, "/a//c": true}
	sids := make([]SID, len(xpes))
	for i, s := range xpes {
		sid, err := e.Add(s)
		if err != nil {
			t.Fatalf("Add(%q): %v", s, err)
		}
		sids[i] = sid
	}
	got, err := e.Filter([]byte("<a><b><c/></b><d/></a>"))
	if err != nil {
		t.Fatal(err)
	}
	set := make(map[SID]bool)
	for _, s := range got {
		set[s] = true
	}
	for i, s := range xpes {
		if set[sids[i]] != want[s] {
			t.Errorf("%q: matched=%v, want %v", s, set[sids[i]], want[s])
		}
	}
}

// TestRandomEquivalence cross-validates against the reference matcher.
func TestRandomEquivalence(t *testing.T) {
	rng := rand.New(rand.NewSource(41))
	for round := 0; round < 60; round++ {
		e := New()
		xpes := make([]string, 40)
		sids := make([]SID, len(xpes))
		for i := range xpes {
			xpes[i] = randXPE(rng)
			sid, err := e.Add(xpes[i])
			if err != nil {
				t.Fatalf("Add(%q): %v", xpes[i], err)
			}
			sids[i] = sid
		}
		for d := 0; d < 5; d++ {
			xmlBytes := randXML(rng)
			doc, err := xmldoc.Parse(xmlBytes)
			if err != nil {
				t.Fatal(err)
			}
			got, err := e.Filter(xmlBytes)
			if err != nil {
				t.Fatal(err)
			}
			set := make(map[SID]bool)
			for _, s := range got {
				set[s] = true
			}
			for i, s := range xpes {
				want := refmatch.Match(xpath.MustParse(s), doc)
				if set[sids[i]] != want {
					t.Fatalf("round %d: %q matched=%v, ref=%v on %s", round, s, set[sids[i]], want, xmlBytes)
				}
			}
		}
	}
}

// TestUnsupportedRejected documents the unsupported fragments.
func TestUnsupportedRejected(t *testing.T) {
	e := New()
	if _, err := e.Add("/a[b]/c"); err == nil {
		t.Error("Add accepted a nested path filter")
	}
	if _, err := e.Add("/a[@x=1]"); err == nil {
		t.Error("Add accepted an attribute filter")
	}
}

// TestPruning: once every expression in a subtree matched, evaluation
// skips the subtree (observable only via correctness here; the cost effect
// is exercised by benchmarks).
func TestPruning(t *testing.T) {
	e := New()
	s1, _ := e.Add("/a/b")
	s2, _ := e.Add("/a/b") // duplicate shares the node
	got, err := e.Filter([]byte("<a><b/><b/><b/></a>"))
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 2 {
		t.Fatalf("got %v, want 2 sids", got)
	}
	set := map[SID]bool{got[0]: true, got[1]: true}
	if !set[s1] || !set[s2] {
		t.Errorf("sids %v, want %d and %d", got, s1, s2)
	}
}

// TestInterval checks the interval encoding of buildIndex.
func TestInterval(t *testing.T) {
	ix, err := buildIndex(strings.NewReader("<a><b><c/></b><d/></a>"))
	if err != nil {
		t.Fatal(err)
	}
	if len(ix.all) != 4 {
		t.Fatalf("got %d elements, want 4", len(ix.all))
	}
	a := ix.byTag["a"][0]
	b := ix.byTag["b"][0]
	c := ix.byTag["c"][0]
	d := ix.byTag["d"][0]
	if a.level != 1 || b.level != 2 || c.level != 3 || d.level != 2 {
		t.Errorf("levels: a=%d b=%d c=%d d=%d", a.level, b.level, c.level, d.level)
	}
	contains := func(outer, inner elem) bool {
		return outer.start < inner.start && inner.end < outer.end
	}
	if !contains(a, b) || !contains(b, c) || !contains(a, d) || contains(b, d) {
		t.Errorf("interval containment wrong: a=%v b=%v c=%v d=%v", a, b, c, d)
	}
	// Document order within the all stream.
	for i := 1; i < len(ix.all); i++ {
		if ix.all[i-1].start >= ix.all[i].start {
			t.Errorf("all stream not in document order: %v", ix.all)
		}
	}
}

// TestMalformed checks malformed documents error cleanly.
func TestMalformed(t *testing.T) {
	e := New()
	if _, err := e.Add("/a"); err != nil {
		t.Fatal(err)
	}
	if _, err := e.Filter([]byte("<a><b></a>")); err == nil {
		t.Error("Filter accepted mismatched tags")
	}
	if _, err := e.Filter([]byte("<a>")); err == nil {
		t.Error("Filter accepted truncated document")
	}
}
