package predindex

import (
	"fmt"
	"math/rand"
	"testing"

	"predfilter/internal/predicate"
	"predfilter/internal/xmldoc"
	"predfilter/internal/xpath"
)

// resultsEqual compares the full per-predicate occurrence-pair state of
// two accumulators over an index.
func resultsEqual(ix *Index, a, b *Results) error {
	for pid := PID(0); int(pid) < ix.Len(); pid++ {
		ga, gb := a.Get(pid), b.Get(pid)
		if fmt.Sprint(ga) != fmt.Sprint(gb) {
			return fmt.Errorf("pid %d (%s): %v vs %v", pid, ix.Pred(pid), ga, gb)
		}
	}
	return nil
}

// A recording replayed against the same publication must reproduce the
// fresh MatchPath results exactly, including attribute-carrying
// predicates re-verified on live tuples.
func TestReplayReproducesMatchPath(t *testing.T) {
	ix := New()
	for _, s := range []string{
		"a//b/c",
		"/a/b",
		"//c",
		"a//c",
		`/a/b[@x=1]/c`,
		`//b[@x=2]`,
		`a[@y=z]//c[@x=1]`,
	} {
		enc := predicate.MustEncode(xpath.MustParse(s), predicate.Inline)
		for _, p := range enc.Preds {
			ix.Insert(p)
		}
	}

	docs := []*xmldoc.Document{
		xmldoc.FromPaths([]string{"a", "b", "c", "a", "b", "c"}),
		xmldoc.FromPaths([]string{"a", "b", "c"}),
		xmldoc.FromPaths([]string{"c"}),
	}
	// A path with attributes: same structure as docs[1], different values.
	withAttrs, err := xmldoc.Parse([]byte(`<a y="z"><b x="1"><c x="1"/></b></a>`))
	if err != nil {
		t.Fatal(err)
	}
	otherAttrs, err := xmldoc.Parse([]byte(`<a y="q"><b x="2"><c x="7"/></b></a>`))
	if err != nil {
		t.Fatal(err)
	}
	docs = append(docs, withAttrs, otherAttrs)

	for di, doc := range docs {
		for pi := range doc.Paths {
			pub := &doc.Paths[pi]
			fresh := NewResults(ix.Len())
			fresh.Reset(ix.Len())
			var rec Recording
			ix.MatchPathRecord(pub, fresh, &rec)

			replayed := NewResults(ix.Len())
			replayed.Reset(ix.Len())
			ix.Replay(&rec, pub, replayed)
			if err := resultsEqual(ix, fresh, replayed); err != nil {
				t.Fatalf("doc %d path %d: %v", di, pi, err)
			}

			// Recording with MatchPathRecord must not change the direct
			// results either.
			plain := NewResults(ix.Len())
			plain.Reset(ix.Len())
			ix.MatchPath(pub, plain)
			if err := resultsEqual(ix, fresh, plain); err != nil {
				t.Fatalf("doc %d path %d (record vs plain): %v", di, pi, err)
			}
		}
	}
}

// A recording made on one publication replayed against a structurally
// identical publication with different attribute values must equal a
// fresh run on the second publication: the residual hits are re-verified
// live.
func TestReplayReVerifiesAttributesOnLivePath(t *testing.T) {
	ix := New()
	enc := predicate.MustEncode(xpath.MustParse(`/a/b[@x=1]`), predicate.Inline)
	var pids []PID
	for _, p := range enc.Preds {
		pids = append(pids, ix.Insert(p))
	}

	matching, _ := xmldoc.Parse([]byte(`<a><b x="1"/></a>`))
	nonMatching, _ := xmldoc.Parse([]byte(`<a><b x="2"/></a>`))

	// Record on the non-matching publication (structural occurrence exists,
	// filter fails), replay on the matching one: the filter must pass now.
	rec := Recording{}
	res := NewResults(ix.Len())
	res.Reset(ix.Len())
	ix.MatchPathRecord(&nonMatching.Paths[0], res, &rec)

	replayed := NewResults(ix.Len())
	replayed.Reset(ix.Len())
	ix.Replay(&rec, &matching.Paths[0], replayed)

	fresh := NewResults(ix.Len())
	fresh.Reset(ix.Len())
	ix.MatchPath(&matching.Paths[0], fresh)
	if err := resultsEqual(ix, fresh, replayed); err != nil {
		t.Fatal(err)
	}

	// And the reverse direction: recorded where the filter passed,
	// replayed where it fails.
	rec.Reset()
	res.Reset(ix.Len())
	ix.MatchPathRecord(&matching.Paths[0], res, &rec)
	replayed.Reset(ix.Len())
	ix.Replay(&rec, &nonMatching.Paths[0], replayed)
	fresh.Reset(ix.Len())
	ix.MatchPath(&nonMatching.Paths[0], fresh)
	if err := resultsEqual(ix, fresh, replayed); err != nil {
		t.Fatal(err)
	}
}

// Randomized cross-check: random predicate sets over random paths; replay
// must always equal a fresh run on the same publication.
func TestReplayRandomized(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	tags := []string{"a", "b", "c", "d"}
	for trial := 0; trial < 50; trial++ {
		ix := New()
		for i := 0; i < 20; i++ {
			var sb []byte
			if rng.Intn(2) == 0 {
				sb = append(sb, '/')
			}
			steps := 1 + rng.Intn(3)
			for s := 0; s < steps; s++ {
				if s > 0 {
					if rng.Intn(2) == 0 {
						sb = append(sb, '/')
					} else {
						sb = append(sb, '/', '/')
					}
				}
				sb = append(sb, tags[rng.Intn(len(tags))]...)
				if rng.Intn(4) == 0 {
					sb = append(sb, fmt.Sprintf("[@k=%d]", rng.Intn(2))...)
				}
			}
			p, err := xpath.Parse(string(sb))
			if err != nil {
				continue
			}
			enc, err := predicate.Encode(p, predicate.Inline)
			if err != nil {
				continue
			}
			for _, pr := range enc.Preds {
				ix.Insert(pr)
			}
		}
		var xb []byte
		depth := 1 + rng.Intn(5)
		open := make([]string, 0, depth)
		for d := 0; d < depth; d++ {
			tag := tags[rng.Intn(len(tags))]
			attr := ""
			if rng.Intn(3) == 0 {
				attr = fmt.Sprintf(` k="%d"`, rng.Intn(2))
			}
			xb = append(xb, fmt.Sprintf("<%s%s>", tag, attr)...)
			open = append(open, tag)
		}
		for d := depth - 1; d >= 0; d-- {
			xb = append(xb, fmt.Sprintf("</%s>", open[d])...)
		}
		doc, err := xmldoc.Parse(xb)
		if err != nil {
			t.Fatalf("trial %d: %v (%s)", trial, err, xb)
		}
		pub := &doc.Paths[0]

		fresh := NewResults(ix.Len())
		fresh.Reset(ix.Len())
		var rec Recording
		ix.MatchPathRecord(pub, fresh, &rec)

		replayed := NewResults(ix.Len())
		replayed.Reset(ix.Len())
		ix.Replay(&rec, pub, replayed)
		if err := resultsEqual(ix, fresh, replayed); err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
	}
}

func TestRecordingClone(t *testing.T) {
	r := Recording{
		Bare:     []BareHit{{PID: 1, A: 2, B: 3}},
		Residual: []ResidualHit{{PID: 4, T1: 0, T2: -1, A: 1, B: 1}},
	}
	c := r.Clone()
	r.Reset()
	r.Bare = append(r.Bare, BareHit{PID: 9})
	if len(c.Bare) != 1 || c.Bare[0].PID != 1 || len(c.Residual) != 1 {
		t.Fatalf("clone mutated: %+v", c)
	}
	var empty Recording
	ec := empty.Clone()
	if ec.Bare != nil || ec.Residual != nil {
		t.Fatalf("empty clone not empty: %+v", ec)
	}
}
