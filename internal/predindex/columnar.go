package predindex

import "predfilter/internal/xmldoc"

// Layout is a frozen struct-of-arrays projection of an Index: every tag
// the index mentions gets a dense int32 id, and the per-tag hash-table
// rows (absolute, end-of-path, relative) are re-hung off tag-id-indexed
// slices. The matcher's columnar kernel resolves a publication's tags to
// ids once per path and then runs the predicate stage entirely over
// integer-indexed arrays — no string hashing in the tuple or tuple-pair
// loops. A Layout is a read-only view: it shares the index's cell arrays
// and is valid until predicates are added (the matcher rebuilds it on its
// freeze generation).
type Layout struct {
	ix   *Index
	n    int // predicate count at build time
	tids map[string]int32
	abs  []*opArrays           // tag id → absolute-predicate arrays
	eop  []*cells              // tag id → end-of-path GE array
	rel  []map[int32]*opArrays // tag id → second-tag id → arrays
}

// BuildLayout freezes the index's current predicate set into a Layout.
func (ix *Index) BuildLayout() *Layout {
	l := &Layout{ix: ix, n: ix.Len(), tids: make(map[string]int32)}
	// tid grows the per-tag slices, so it must run before the slice header
	// of its own assignment target is read.
	for tag, a := range ix.abs {
		id := l.tid(tag)
		l.abs[id] = a
	}
	for tag, cs := range ix.eop {
		id := l.tid(tag)
		l.eop[id] = cs
	}
	for tag, m := range ix.rel {
		row := make(map[int32]*opArrays, len(m))
		for t2, a := range m {
			row[l.tid(t2)] = a
		}
		id := l.tid(tag)
		l.rel[id] = row
	}
	return l
}

// tid returns the dense id for tag, assigning one (and growing the
// per-tag slices) on first sight. Build-time only.
func (l *Layout) tid(tag string) int32 {
	id, ok := l.tids[tag]
	if !ok {
		id = int32(len(l.tids))
		l.tids[tag] = id
		l.abs = append(l.abs, nil)
		l.eop = append(l.eop, nil)
		l.rel = append(l.rel, nil)
	}
	return id
}

// Tid resolves a tag to its layout id, or -1 when no stored predicate
// mentions the tag (such tuples can match nothing and are skipped by id).
func (l *Layout) Tid(tag string) int32 {
	if id, ok := l.tids[tag]; ok {
		return id
	}
	return -1
}

// Len returns the predicate count the layout was built for.
func (l *Layout) Len() int { return l.n }

// Tags returns the number of distinct tags the layout indexes.
func (l *Layout) Tags() int { return len(l.tids) }

// MatchPathTids is Index.MatchPath/MatchPathRecord over the frozen
// layout, with the publication's tags pre-resolved to layout ids (tids[i]
// is the id of pub.Tuples[i].Tag, -1 for unknown tags; the caller
// resolves once per path and reuses the buffer). The cell visit order is
// identical to Index.matchPath, so the Results contents — per-predicate
// pair sequences and the touched order — and the Recording transcript
// are exactly those of a fresh MatchPath run; rec may be nil.
func (l *Layout) MatchPathTids(pub *xmldoc.Publication, tids []int32, res *Results, rec *Recording) {
	ix := l.ix
	ln := pub.Length

	// Length-of-expression predicates: (length, >=, v) matches iff v <= l.
	for v := 1; v < len(ix.length) && v <= ln; v++ {
		if c := &ix.length[v]; !c.empty() {
			ix.emit(c, nil, nil, 0, 0, res, rec)
		}
	}

	for i := range pub.Tuples {
		ti := tids[i]
		if ti < 0 {
			continue // the index has no predicate on this tag
		}
		t := &pub.Tuples[i]
		occ := int32(t.Occ)

		// Absolute predicates on t.Tag.
		if a := l.abs[ti]; a != nil {
			if v := t.Pos; v < len(a.eq) {
				if c := &a.eq[v]; !c.empty() {
					ix.emit(c, t, nil, occ, occ, res, rec)
				}
			}
			for v := 1; v < len(a.ge) && v <= t.Pos; v++ {
				if c := &a.ge[v]; !c.empty() {
					ix.emit(c, t, nil, occ, occ, res, rec)
				}
			}
		}

		// End-of-path predicates: (p_t⊣, >=, v) matches iff l - pos >= v.
		if cs := l.eop[ti]; cs != nil {
			for v := 1; v < len(*cs) && v <= ln-t.Pos; v++ {
				if c := &(*cs)[v]; !c.empty() {
					ix.emit(c, t, nil, occ, occ, res, rec)
				}
			}
		}

		// Relative predicates with t as the first tag.
		row := l.rel[ti]
		if row == nil {
			continue
		}
		for j := i + 1; j < len(pub.Tuples); j++ {
			tj := tids[j]
			if tj < 0 {
				continue
			}
			a := row[tj]
			if a == nil {
				continue
			}
			u := &pub.Tuples[j]
			d := u.Pos - t.Pos
			if d < len(a.eq) {
				if c := &a.eq[d]; !c.empty() {
					ix.emit(c, t, u, occ, int32(u.Occ), res, rec)
				}
			}
			for v := 1; v < len(a.ge) && v <= d; v++ {
				if c := &a.ge[v]; !c.empty() {
					ix.emit(c, t, u, occ, int32(u.Occ), res, rec)
				}
			}
		}
	}
}
