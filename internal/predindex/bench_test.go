package predindex

import (
	"fmt"
	"math/rand"
	"testing"

	"predfilter/internal/predicate"
	"predfilter/internal/xmldoc"
)

func randomPreds(n int) []predicate.Predicate {
	rng := rand.New(rand.NewSource(3))
	tags := []string{"a", "b", "c", "d", "e", "f"}
	out := make([]predicate.Predicate, n)
	for i := range out {
		op := predicate.Op(rng.Intn(2))
		switch rng.Intn(4) {
		case 0:
			out[i] = predicate.Predicate{Kind: predicate.Absolute, Op: op, Tag1: tags[rng.Intn(len(tags))], Value: 1 + rng.Intn(6)}
		case 1:
			out[i] = predicate.Predicate{Kind: predicate.Relative, Op: op, Tag1: tags[rng.Intn(len(tags))], Tag2: tags[rng.Intn(len(tags))], Value: 1 + rng.Intn(4)}
		case 2:
			out[i] = predicate.Predicate{Kind: predicate.EndOfPath, Op: predicate.GE, Tag1: tags[rng.Intn(len(tags))], Value: 1 + rng.Intn(4)}
		default:
			out[i] = predicate.Predicate{Kind: predicate.Length, Op: predicate.GE, Value: 1 + rng.Intn(8)}
		}
	}
	return out
}

// BenchmarkInsert measures predicate insertion with heavy dedup (the
// random space is small, so most inserts hit existing pids).
func BenchmarkInsert(b *testing.B) {
	preds := randomPreds(4096)
	ix := New()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		ix.Insert(preds[i%len(preds)])
	}
}

// BenchmarkMatchPath measures the predicate matching stage at several
// index sizes.
func BenchmarkMatchPath(b *testing.B) {
	doc := xmldoc.FromPaths([]string{"a", "b", "c", "d", "e", "f", "a", "b"})
	for _, n := range []int{64, 512, 4096} {
		b.Run(fmt.Sprintf("preds=%d", n), func(b *testing.B) {
			ix := New()
			for _, p := range randomPreds(n) {
				ix.Insert(p)
			}
			res := ix.NewResults()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				res.Reset(ix.Len())
				ix.MatchPath(&doc.Paths[0], res)
			}
		})
	}
}
