package predindex

import (
	"fmt"
	"math/rand"
	"sort"
	"testing"

	"predfilter/internal/occur"
	"predfilter/internal/predicate"
	"predfilter/internal/xmldoc"
	"predfilter/internal/xpath"
)

// TestTable1 reproduces Table 1 of the paper: the individual predicate
// matching results for the expressions a//b/c and c//b//a over the
// document path (a, b, c, a, b, c).
func TestTable1(t *testing.T) {
	ix := New()
	encode := func(s string) []PID {
		enc := predicate.MustEncode(xpath.MustParse(s), predicate.Inline)
		pids := make([]PID, len(enc.Preds))
		for i, p := range enc.Preds {
			pids[i] = ix.Insert(p)
		}
		return pids
	}
	e1 := encode("a//b/c")  // (d(p_a,p_b),>=,1) ↦ (d(p_b,p_c),=,1)
	e2 := encode("c//b//a") // (d(p_c,p_b),>=,1) ↦ (d(p_b,p_a),>=,1)

	doc := xmldoc.FromPaths([]string{"a", "b", "c", "a", "b", "c"})
	res := NewResults(ix.Len())
	res.Reset(ix.Len())
	ix.MatchPath(&doc.Paths[0], res)

	want := map[string][][2]int32{
		// Table 1, row by row (occurrence-number pairs).
		"(d(p_a, p_b), >=, 1)": {{1, 1}, {1, 2}, {2, 2}},
		"(d(p_b, p_c), =, 1)":  {{1, 1}, {2, 2}},
		"(d(p_c, p_b), >=, 1)": {{1, 2}},
		"(d(p_b, p_a), >=, 1)": {{1, 2}},
	}
	check := func(pid PID) {
		name := ix.Pred(pid).String()
		exp, ok := want[name]
		if !ok {
			t.Fatalf("unexpected predicate %s", name)
		}
		got := res.Get(pid)
		pairs := make([][2]int32, len(got))
		for i, p := range got {
			pairs[i] = [2]int32{p.A, p.B}
		}
		sort.Slice(pairs, func(i, j int) bool {
			if pairs[i][0] != pairs[j][0] {
				return pairs[i][0] < pairs[j][0]
			}
			return pairs[i][1] < pairs[j][1]
		})
		if fmt.Sprint(pairs) != fmt.Sprint(exp) {
			t.Errorf("%s: matching results %v, want %v", name, pairs, exp)
		}
	}
	for _, pid := range e1 {
		check(pid)
	}
	for _, pid := range e2 {
		check(pid)
	}

	// Example 2's conclusions: a//b/c has a true match, c//b//a does not.
	chain := func(pids []PID) [][]occur.Pair {
		out := make([][]occur.Pair, len(pids))
		for i, pid := range pids {
			out[i] = res.Get(pid)
		}
		return out
	}
	if ok, _ := occur.Determine(chain(e1)); !ok {
		t.Error("a//b/c should match (a,b,c,a,b,c)")
	}
	if ok, _ := occur.Determine(chain(e2)); ok {
		t.Error("c//b//a should not match (a,b,c,a,b,c)")
	}
}

// TestInsertDedup checks that identical predicates share a pid and that
// distinct ones (including attribute-filter structural twins) do not.
func TestInsertDedup(t *testing.T) {
	ix := New()
	p1 := predicate.Predicate{Kind: predicate.Relative, Op: predicate.EQ, Tag1: "a", Tag2: "b", Value: 2}
	p2 := predicate.Predicate{Kind: predicate.Relative, Op: predicate.EQ, Tag1: "a", Tag2: "b", Value: 2}
	if ix.Insert(p1) != ix.Insert(p2) {
		t.Error("identical relative predicates got different pids")
	}
	p3 := p1
	p3.Op = predicate.GE
	if ix.Insert(p3) == ix.Insert(p1) {
		t.Error("different operators share a pid")
	}
	p4 := p1
	p4.Value = 3
	if ix.Insert(p4) == ix.Insert(p1) {
		t.Error("different values share a pid")
	}
	p5 := p1
	p5.Attrs1 = []xpath.AttrFilter{{Name: "x", Op: xpath.AttrEQ, Value: "1"}}
	pid5 := ix.Insert(p5)
	if pid5 == ix.Insert(p1) {
		t.Error("attribute twin shares the bare pid")
	}
	if pid5 != ix.Insert(p5) {
		t.Error("identical attribute twin got a new pid")
	}
	p6 := p5
	p6.Attrs1 = []xpath.AttrFilter{{Name: "x", Op: xpath.AttrEQ, Value: "2"}}
	if ix.Insert(p6) == pid5 {
		t.Error("different attribute values share a pid")
	}
	if ix.Len() != 5 {
		t.Errorf("index has %d predicates, want 5", ix.Len())
	}
}

// TestLookup checks Lookup mirrors Insert without mutation.
func TestLookup(t *testing.T) {
	ix := New()
	p := predicate.Predicate{Kind: predicate.Absolute, Op: predicate.EQ, Tag1: "a", Value: 1}
	if got := ix.Lookup(p); got != NoPID {
		t.Errorf("Lookup on empty index = %d, want NoPID", got)
	}
	pid := ix.Insert(p)
	if got := ix.Lookup(p); got != pid {
		t.Errorf("Lookup = %d, want %d", got, pid)
	}
	if ix.Len() != 1 {
		t.Errorf("Lookup mutated the index: len %d", ix.Len())
	}
}

// naiveMatch evaluates one predicate against a publication directly from
// the §4.1.1 rules — the oracle for the index's matching stage.
func naiveMatch(p predicate.Predicate, pub *xmldoc.Publication) [][2]int32 {
	var out [][2]int32
	cmp := func(op predicate.Op, got, want int) bool {
		if op == predicate.EQ {
			return got == want
		}
		return got >= want
	}
	switch p.Kind {
	case predicate.Absolute:
		for i := range pub.Tuples {
			t := &pub.Tuples[i]
			if t.Tag == p.Tag1 && cmp(p.Op, t.Pos, p.Value) && predicate.EvalAttrs(p.Attrs1, t) {
				out = append(out, [2]int32{int32(t.Occ), int32(t.Occ)})
			}
		}
	case predicate.Relative:
		for i := range pub.Tuples {
			for j := i + 1; j < len(pub.Tuples); j++ {
				t1, t2 := &pub.Tuples[i], &pub.Tuples[j]
				if t1.Tag == p.Tag1 && t2.Tag == p.Tag2 && cmp(p.Op, t2.Pos-t1.Pos, p.Value) &&
					predicate.EvalAttrs(p.Attrs1, t1) && predicate.EvalAttrs(p.Attrs2, t2) {
					out = append(out, [2]int32{int32(t1.Occ), int32(t2.Occ)})
				}
			}
		}
	case predicate.EndOfPath:
		for i := range pub.Tuples {
			t := &pub.Tuples[i]
			if t.Tag == p.Tag1 && pub.Length-t.Pos >= p.Value && predicate.EvalAttrs(p.Attrs1, t) {
				out = append(out, [2]int32{int32(t.Occ), int32(t.Occ)})
			}
		}
	case predicate.Length:
		if pub.Length >= p.Value {
			out = append(out, [2]int32{0, 0})
		}
	}
	return out
}

// TestMatchPathAgainstNaive fuzzes the index matching stage against the
// direct evaluation rules.
func TestMatchPathAgainstNaive(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	tags := []string{"a", "b", "c", "d"}
	for round := 0; round < 300; round++ {
		ix := New()
		var preds []predicate.Predicate
		for i := 0; i < 30; i++ {
			var p predicate.Predicate
			op := predicate.Op(rng.Intn(2))
			switch rng.Intn(4) {
			case 0:
				p = predicate.Predicate{Kind: predicate.Absolute, Op: op, Tag1: tags[rng.Intn(len(tags))], Value: 1 + rng.Intn(6)}
			case 1:
				p = predicate.Predicate{Kind: predicate.Relative, Op: op, Tag1: tags[rng.Intn(len(tags))], Tag2: tags[rng.Intn(len(tags))], Value: 1 + rng.Intn(4)}
			case 2:
				p = predicate.Predicate{Kind: predicate.EndOfPath, Op: predicate.GE, Tag1: tags[rng.Intn(len(tags))], Value: 1 + rng.Intn(4)}
			default:
				p = predicate.Predicate{Kind: predicate.Length, Op: predicate.GE, Value: 1 + rng.Intn(8)}
			}
			ix.Insert(p)
			preds = append(preds, p)
		}
		n := 1 + rng.Intn(8)
		path := make([]string, n)
		for i := range path {
			path[i] = tags[rng.Intn(len(tags))]
		}
		doc := xmldoc.FromPaths(path)
		res := NewResults(ix.Len())
		res.Reset(ix.Len())
		ix.MatchPath(&doc.Paths[0], res)
		for _, p := range preds {
			pid := ix.Lookup(p)
			if pid == NoPID {
				t.Fatalf("predicate %s not found after insert", p)
			}
			want := naiveMatch(p, &doc.Paths[0])
			got := res.Get(pid)
			if len(got) != len(want) {
				t.Fatalf("round %d path %v: %s matched %v, want %v", round, path, p, got, want)
			}
			sort.Slice(got, func(i, j int) bool {
				if got[i].A != got[j].A {
					return got[i].A < got[j].A
				}
				return got[i].B < got[j].B
			})
			sort.Slice(want, func(i, j int) bool {
				if want[i][0] != want[j][0] {
					return want[i][0] < want[j][0]
				}
				return want[i][1] < want[j][1]
			})
			for i := range want {
				if got[i].A != want[i][0] || got[i].B != want[i][1] {
					t.Fatalf("round %d path %v: %s matched %v, want %v", round, path, p, got, want)
				}
			}
		}
	}
}

// TestResultsEpoch checks stale results do not leak between publications.
func TestResultsEpoch(t *testing.T) {
	ix := New()
	pid := ix.Insert(predicate.Predicate{Kind: predicate.Absolute, Op: predicate.EQ, Tag1: "a", Value: 1})
	res := NewResults(ix.Len())

	doc := xmldoc.FromPaths([]string{"a", "b"}, []string{"b", "a"})
	res.Reset(ix.Len())
	ix.MatchPath(&doc.Paths[0], res)
	if !res.Matched(pid) {
		t.Fatal("(p_a,=,1) should match path a/b")
	}
	res.Reset(ix.Len())
	ix.MatchPath(&doc.Paths[1], res)
	if res.Matched(pid) {
		t.Fatal("(p_a,=,1) result leaked into path b/a")
	}
	if got := res.Get(pid); got != nil {
		t.Fatalf("Get returned stale pairs %v", got)
	}
}

// TestResultsGrowth checks the accumulator accommodates predicates added
// after its creation.
func TestResultsGrowth(t *testing.T) {
	ix := New()
	res := NewResults(ix.Len())
	ix.Insert(predicate.Predicate{Kind: predicate.Absolute, Op: predicate.EQ, Tag1: "a", Value: 1})
	pid2 := ix.Insert(predicate.Predicate{Kind: predicate.Absolute, Op: predicate.GE, Tag1: "b", Value: 1})
	doc := xmldoc.FromPaths([]string{"a", "b"})
	res.Reset(ix.Len())
	ix.MatchPath(&doc.Paths[0], res)
	if !res.Matched(pid2) {
		t.Error("grown accumulator lost results for new pid")
	}
}
