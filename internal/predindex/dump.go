package predindex

import (
	"fmt"
	"io"
	"sort"

	"predfilter/internal/predicate"
)

// Dump writes a human-readable rendering of the index structure — the
// multi-stage hash tables and per-operator position arrays of the paper's
// Figure 1 — for debugging and inspection.
func (ix *Index) Dump(w io.Writer) {
	fmt.Fprintf(w, "predicate index: %d distinct predicates\n", ix.Len())

	dumpCells := func(indent string, cs cells) {
		for v := range cs {
			c := &cs[v]
			if c.empty() {
				continue
			}
			fmt.Fprintf(w, "%svalue %d:", indent, v)
			if c.bare != NoPID {
				fmt.Fprintf(w, " pid=%d", c.bare)
			}
			for _, pid := range c.vars {
				fmt.Fprintf(w, " pid=%d%s", pid, attrNote(ix.preds[pid]))
			}
			fmt.Fprintln(w)
		}
	}
	dumpOps := func(indent string, a *opArrays) {
		if hasAny(a.eq) {
			fmt.Fprintf(w, "%sop =\n", indent)
			dumpCells(indent+"  ", a.eq)
		}
		if hasAny(a.ge) {
			fmt.Fprintf(w, "%sop >=\n", indent)
			dumpCells(indent+"  ", a.ge)
		}
	}

	fmt.Fprintln(w, "absolute predicates (p_t, op, v):")
	for _, tag := range sortedKeys(ix.abs) {
		fmt.Fprintf(w, "  tag %s\n", tag)
		dumpOps("    ", ix.abs[tag])
	}
	fmt.Fprintln(w, "relative predicates (d(p_t1, p_t2), op, v):")
	for _, t1 := range sortedKeys(ix.rel) {
		second := ix.rel[t1]
		for _, t2 := range sortedKeys(second) {
			fmt.Fprintf(w, "  tags %s -> %s\n", t1, t2)
			dumpOps("    ", second[t2])
		}
	}
	fmt.Fprintln(w, "end-of-path predicates (p_t⊣, >=, v):")
	for _, tag := range sortedKeys(ix.eop) {
		fmt.Fprintf(w, "  tag %s\n", tag)
		dumpCells("    ", *ix.eop[tag])
	}
	if hasAny(ix.length) {
		fmt.Fprintln(w, "length-of-expression predicates (length, >=, v):")
		dumpCells("  ", ix.length)
	}
}

func attrNote(p predicate.Predicate) string {
	if !p.HasAttrs() {
		return ""
	}
	return "[filters:" + p.AttrKey() + "]"
}

func hasAny(cs cells) bool {
	for i := range cs {
		if !cs[i].empty() {
			return true
		}
	}
	return false
}

func sortedKeys[V any](m map[string]V) []string {
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}
