// Package predindex implements the predicate index of the paper
// (§4.1.2, Figure 1): distinct predicates are stored exactly once and
// managed through multi-stage hash tables — first by predicate type, then
// by tag name(s) — that lead to per-operator arrays indexed by predicate
// value. The index also implements the predicate matching stage (§4.1):
// evaluating one publication (encoded document path) against all stored
// predicates and recording occurrence-pair results per predicate.
package predindex

import (
	"predfilter/internal/occur"
	"predfilter/internal/predicate"
	"predfilter/internal/xmldoc"
)

// PID identifies a distinct predicate within an Index.
type PID int32

// NoPID is the zero-value sentinel for "no predicate".
const NoPID PID = -1

// cell holds the predicates sharing one (type, tags, op, value) slot.
// The common case is a single bare (filter-free) predicate; predicates
// carrying inline attribute filters are structural twins kept in vars.
type cell struct {
	bare PID
	vars []PID
}

func (c *cell) empty() bool { return c.bare == NoPID && len(c.vars) == 0 }

// cells is a position-value-indexed array of cells (index 0 unused, since
// predicate values are 1-based).
type cells []cell

func (cs *cells) at(v int) *cell {
	for len(*cs) <= v {
		*cs = append(*cs, cell{bare: NoPID})
	}
	return &(*cs)[v]
}

// opArrays is the pair of per-operator arrays hanging off a hash bucket.
type opArrays struct {
	eq cells
	ge cells
}

func (a *opArrays) sel(op predicate.Op) *cells {
	if op == predicate.EQ {
		return &a.eq
	}
	return &a.ge
}

// Index is the predicate index. The zero value is not ready; use New.
type Index struct {
	preds  []predicate.Predicate
	abs    map[string]*opArrays            // absolute: tag → arrays
	rel    map[string]map[string]*opArrays // relative: tag1 → tag2 → arrays
	eop    map[string]*cells               // end-of-path: tag → GE array
	length cells                           // length-of-expression: GE array
}

// New returns an empty predicate index.
func New() *Index {
	return &Index{
		abs: make(map[string]*opArrays),
		rel: make(map[string]map[string]*opArrays),
		eop: make(map[string]*cells),
	}
}

// Len returns the number of distinct predicates stored.
func (ix *Index) Len() int { return len(ix.preds) }

// Pred returns the stored predicate for pid.
func (ix *Index) Pred(pid PID) predicate.Predicate { return ix.preds[pid] }

// Insert stores p if no identical predicate exists and returns its pid;
// an identical predicate (same type, tags, operator, value and attribute
// filters) is returned unchanged — this is where overlap across
// expressions collapses into shared work.
func (ix *Index) Insert(p predicate.Predicate) PID {
	c := ix.cellFor(p)
	if !p.HasAttrs() {
		if c.bare != NoPID {
			return c.bare
		}
		pid := ix.add(p)
		c.bare = pid
		return pid
	}
	key := p.AttrKey()
	for _, pid := range c.vars {
		if ix.preds[pid].AttrKey() == key {
			return pid
		}
	}
	pid := ix.add(p)
	c.vars = append(c.vars, pid)
	return pid
}

// Lookup returns the pid of a predicate identical to p, or NoPID.
func (ix *Index) Lookup(p predicate.Predicate) PID {
	c := ix.cellFor(p)
	if !p.HasAttrs() {
		return c.bare
	}
	key := p.AttrKey()
	for _, pid := range c.vars {
		if ix.preds[pid].AttrKey() == key {
			return pid
		}
	}
	return NoPID
}

func (ix *Index) add(p predicate.Predicate) PID {
	pid := PID(len(ix.preds))
	ix.preds = append(ix.preds, p)
	return pid
}

func (ix *Index) cellFor(p predicate.Predicate) *cell {
	switch p.Kind {
	case predicate.Absolute:
		a := ix.abs[p.Tag1]
		if a == nil {
			a = &opArrays{}
			ix.abs[p.Tag1] = a
		}
		return a.sel(p.Op).at(p.Value)
	case predicate.Relative:
		m := ix.rel[p.Tag1]
		if m == nil {
			m = make(map[string]*opArrays)
			ix.rel[p.Tag1] = m
		}
		a := m[p.Tag2]
		if a == nil {
			a = &opArrays{}
			m[p.Tag2] = a
		}
		return a.sel(p.Op).at(p.Value)
	case predicate.EndOfPath:
		cs := ix.eop[p.Tag1]
		if cs == nil {
			cs = &cells{}
			ix.eop[p.Tag1] = cs
		}
		return cs.at(p.Value)
	default: // predicate.Length
		return ix.length.at(p.Value)
	}
}

// Results accumulates per-predicate occurrence-pair matching results for
// one publication. It is reusable across publications via Reset (epoch
// stamping avoids clearing the whole arrays each time).
type Results struct {
	pairs   [][]occur.Pair
	stamp   []uint64
	cur     uint64
	touched []PID
}

// NewResults returns a result accumulator sized for the index's current
// predicate count.
func (ix *Index) NewResults() *Results { return NewResults(ix.Len()) }

// NewResults returns a result accumulator sized for n predicates.
func NewResults(n int) *Results {
	return &Results{
		pairs: make([][]occur.Pair, n),
		stamp: make([]uint64, n),
	}
}

// Reset prepares the accumulator for a new publication; n is the current
// predicate count (the accumulator grows if predicates were added).
func (r *Results) Reset(n int) {
	if len(r.pairs) < n {
		r.pairs = append(r.pairs, make([][]occur.Pair, n-len(r.pairs))...)
		r.stamp = append(r.stamp, make([]uint64, n-len(r.stamp))...)
	}
	r.cur++
	r.touched = r.touched[:0]
}

// Add records an occurrence pair for pid.
func (r *Results) Add(pid PID, a, b int32) {
	if r.stamp[pid] != r.cur {
		r.stamp[pid] = r.cur
		r.pairs[pid] = r.pairs[pid][:0]
		r.touched = append(r.touched, pid)
	}
	r.pairs[pid] = append(r.pairs[pid], occur.Pair{A: a, B: b})
}

// Touched returns the pids that matched the current publication, in first
// match order. The slice is owned by the accumulator and valid until the
// next Reset.
func (r *Results) Touched() []PID { return r.touched }

// Get returns the occurrence pairs recorded for pid in the current
// publication (nil if the predicate did not match).
func (r *Results) Get(pid PID) []occur.Pair {
	if int(pid) >= len(r.stamp) || r.stamp[pid] != r.cur {
		return nil
	}
	return r.pairs[pid]
}

// Matched reports whether pid matched the current publication.
func (r *Results) Matched(pid PID) bool {
	return int(pid) < len(r.stamp) && r.stamp[pid] == r.cur && len(r.pairs[pid]) > 0
}

// BareHit is one occurrence-pair result of a bare (filter-free)
// predicate: a pure function of the publication's tag/position structure.
type BareHit struct {
	PID  PID
	A, B int32
}

// ResidualHit is one structural occurrence of an attribute-carrying
// predicate: the cell matched on tags and positions alone, but whether
// the predicate matches a given publication still depends on the
// attribute values of the tuples at T1/T2 (tuple indices into the
// publication; -1 when the side has no tuple, as for length predicates).
type ResidualHit struct {
	PID    PID
	T1, T2 int32
	A, B   int32
}

// Recording is a replayable transcript of one MatchPath run: Bare holds
// every bare-predicate occurrence pair, Residual every structural
// occurrence of an attribute-carrying predicate (recorded whether or not
// the attribute filters passed on the recorded publication). Replaying it
// against a structurally identical publication reproduces a fresh
// MatchPath run without touching the index's hash tables or scanning
// tuple pairs.
type Recording struct {
	Bare     []BareHit
	Residual []ResidualHit
}

// Reset empties the recording for reuse, keeping capacity.
func (r *Recording) Reset() {
	r.Bare = r.Bare[:0]
	r.Residual = r.Residual[:0]
}

// Clone returns a deep copy with exact-length slices (for retention in a
// cache while the receiver is reused as scratch).
func (r *Recording) Clone() Recording {
	var c Recording
	if len(r.Bare) > 0 {
		c.Bare = append(make([]BareHit, 0, len(r.Bare)), r.Bare...)
	}
	if len(r.Residual) > 0 {
		c.Residual = append(make([]ResidualHit, 0, len(r.Residual)), r.Residual...)
	}
	return c
}

// MatchPath evaluates every stored predicate against the publication,
// recording occurrence pairs into res (which must have been Reset for this
// publication). This is the predicate matching stage of §4.1: absolute,
// end-of-path and length predicates are evaluated per tuple; relative
// predicates per ordered pair of tuples.
func (ix *Index) MatchPath(pub *xmldoc.Publication, res *Results) {
	ix.matchPath(pub, res, nil)
}

// MatchPathRecord is MatchPath that additionally appends a replayable
// transcript of the run to rec (which the caller Resets).
func (ix *Index) MatchPathRecord(pub *xmldoc.Publication, res *Results, rec *Recording) {
	ix.matchPath(pub, res, rec)
}

// Replay reproduces a recorded MatchPath run into res (which must have
// been Reset for this publication), re-evaluating the attribute-dependent
// hits against pub's live tuples. pub must be structurally identical (tag
// sequence, positions and occurrence numbers) to the publication the
// recording was made from, and the index must not have gained predicates
// since; the per-predicate occurrence-pair sequences then equal a fresh
// MatchPath run exactly. Replay performs no allocations beyond res's
// amortized growth.
func (ix *Index) Replay(rec *Recording, pub *xmldoc.Publication, res *Results) {
	for _, h := range rec.Bare {
		res.Add(h.PID, h.A, h.B)
	}
	for _, h := range rec.Residual {
		p := &ix.preds[h.PID]
		if h.T1 >= 0 && !predicate.EvalAttrs(p.Attrs1, &pub.Tuples[h.T1]) {
			continue
		}
		if h.T2 >= 0 && !predicate.EvalAttrs(p.Attrs2, &pub.Tuples[h.T2]) {
			continue
		}
		res.Add(h.PID, h.A, h.B)
	}
}

func (ix *Index) matchPath(pub *xmldoc.Publication, res *Results, rec *Recording) {
	l := pub.Length

	// The value-indexed arrays are dense, so most cells visited below are
	// empty; the inlinable empty() guard keeps those off the emit call.

	// Length-of-expression predicates: (length, >=, v) matches iff v <= l.
	for v := 1; v < len(ix.length) && v <= l; v++ {
		if c := &ix.length[v]; !c.empty() {
			ix.emit(c, nil, nil, 0, 0, res, rec)
		}
	}

	for i := range pub.Tuples {
		t := &pub.Tuples[i]
		occ := int32(t.Occ)

		// Absolute predicates on t.Tag.
		if a := ix.abs[t.Tag]; a != nil {
			if v := t.Pos; v < len(a.eq) {
				if c := &a.eq[v]; !c.empty() {
					ix.emit(c, t, nil, occ, occ, res, rec)
				}
			}
			for v := 1; v < len(a.ge) && v <= t.Pos; v++ {
				if c := &a.ge[v]; !c.empty() {
					ix.emit(c, t, nil, occ, occ, res, rec)
				}
			}
		}

		// End-of-path predicates: (p_t⊣, >=, v) matches iff l - pos >= v.
		if cs := ix.eop[t.Tag]; cs != nil {
			for v := 1; v < len(*cs) && v <= l-t.Pos; v++ {
				if c := &(*cs)[v]; !c.empty() {
					ix.emit(c, t, nil, occ, occ, res, rec)
				}
			}
		}

		// Relative predicates with t as the first tag.
		m := ix.rel[t.Tag]
		if m == nil {
			continue
		}
		for j := i + 1; j < len(pub.Tuples); j++ {
			u := &pub.Tuples[j]
			a := m[u.Tag]
			if a == nil {
				continue
			}
			d := u.Pos - t.Pos
			if d < len(a.eq) {
				if c := &a.eq[d]; !c.empty() {
					ix.emit(c, t, u, occ, int32(u.Occ), res, rec)
				}
			}
			for v := 1; v < len(a.ge) && v <= d; v++ {
				if c := &a.ge[v]; !c.empty() {
					ix.emit(c, t, u, occ, int32(u.Occ), res, rec)
				}
			}
		}
	}
}

// emit records cell matches, verifying inline attribute filters on the
// attribute-carrying structural twins. t1/t2 may be nil for length
// predicates. With rec non-nil, bare hits and the structural occurrences
// of attribute-carrying predicates (before filter verification — the
// residual, value-dependent part) are transcribed for later replay; a
// tuple's index in the publication is its 1-based position minus one.
func (ix *Index) emit(c *cell, t1, t2 *xmldoc.Tuple, a, b int32, res *Results, rec *Recording) {
	if c.bare != NoPID {
		res.Add(c.bare, a, b)
		if rec != nil {
			rec.Bare = append(rec.Bare, BareHit{PID: c.bare, A: a, B: b})
		}
	}
	for _, pid := range c.vars {
		if rec != nil {
			i1, i2 := int32(-1), int32(-1)
			if t1 != nil {
				i1 = int32(t1.Pos - 1)
			}
			if t2 != nil {
				i2 = int32(t2.Pos - 1)
			}
			rec.Residual = append(rec.Residual, ResidualHit{PID: pid, T1: i1, T2: i2, A: a, B: b})
		}
		p := &ix.preds[pid]
		if t1 != nil && !predicate.EvalAttrs(p.Attrs1, t1) {
			continue
		}
		if t2 != nil && !predicate.EvalAttrs(p.Attrs2, t2) {
			continue
		}
		res.Add(pid, a, b)
	}
}
