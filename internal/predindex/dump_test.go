package predindex

import (
	"strings"
	"testing"

	"predfilter/internal/predicate"
	"predfilter/internal/xpath"
)

func TestDump(t *testing.T) {
	ix := New()
	for _, s := range []string{"/a/*/c", "*/a/*/c/*/*/*", "a//b", "/*/*", "x/*"} {
		for _, p := range predicate.MustEncode(xpath.MustParse(s), predicate.Inline).Preds {
			ix.Insert(p)
		}
	}
	// One attribute twin.
	ix.Insert(predicate.Predicate{
		Kind: predicate.Absolute, Op: predicate.EQ, Tag1: "a", Value: 1,
		Attrs1: []xpath.AttrFilter{{Name: "k", Op: xpath.AttrEQ, Value: "1"}},
	})

	var sb strings.Builder
	ix.Dump(&sb)
	out := sb.String()
	for _, want := range []string{
		"absolute predicates", "relative predicates", "end-of-path predicates",
		"length-of-expression predicates",
		"tags a -> c", // the shared (d(p_a,p_c),=,2) of the Figure 1 example
		"tag a", "op =", "op >=", "[filters:",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("Dump missing %q:\n%s", want, out)
		}
	}
	// The paper's Figure 1 point: /a/*/c and */a/*/c/*/*/* share the
	// relative predicate — exactly one a->c entry with value 2.
	if n := strings.Count(out, "tags a -> c"); n != 1 {
		t.Errorf("a->c bucket appears %d times, want 1", n)
	}
}
