package predindex

import (
	"fmt"
	"math/rand"
	"testing"

	"predfilter/internal/predicate"
	"predfilter/internal/xmldoc"
	"predfilter/internal/xpath"
)

// resolveTids maps a publication's tags through the layout the way the
// matcher's columnar kernel does.
func resolveTids(l *Layout, pub *xmldoc.Publication) []int32 {
	tids := make([]int32, len(pub.Tuples))
	for i := range pub.Tuples {
		tids[i] = l.Tid(pub.Tuples[i].Tag)
	}
	return tids
}

func touchedEqual(a, b []PID) error {
	if len(a) != len(b) {
		return fmt.Errorf("touched counts differ: %d vs %d", len(a), len(b))
	}
	for i := range a {
		if a[i] != b[i] {
			return fmt.Errorf("touched[%d]: %d vs %d", i, a[i], b[i])
		}
	}
	return nil
}

func recordingEqual(a, b *Recording) error {
	if fmt.Sprint(a.Bare) != fmt.Sprint(b.Bare) {
		return fmt.Errorf("bare transcripts differ:\n%v\n%v", a.Bare, b.Bare)
	}
	if fmt.Sprint(a.Residual) != fmt.Sprint(b.Residual) {
		return fmt.Errorf("residual transcripts differ:\n%v\n%v", a.Residual, b.Residual)
	}
	return nil
}

// The layout's tid-resolved predicate stage must be bit-for-bit the
// index's: identical pair sequences per predicate, identical touched
// order, identical recording transcript — over randomized predicate sets
// and publications, including repeated tags, attribute-carrying
// predicates and tags the index has never seen.
func TestLayoutMatchesMatchPathRandomized(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	tags := []string{"a", "b", "c", "d", "e"}
	for trial := 0; trial < 60; trial++ {
		ix := New()
		nexpr := 1 + rng.Intn(12)
		for i := 0; i < nexpr; i++ {
			s := randXPE(rng, tags)
			enc, err := predicate.Encode(xpath.MustParse(s), predicate.Inline)
			if err != nil {
				t.Fatalf("encode %q: %v", s, err)
			}
			for _, p := range enc.Preds {
				ix.Insert(p)
			}
		}
		lay := ix.BuildLayout()
		if lay.Len() != ix.Len() {
			t.Fatalf("layout Len %d, index Len %d", lay.Len(), ix.Len())
		}

		for d := 0; d < 8; d++ {
			pub := randPub(rng, append(tags, "zz")) // zz is never indexed
			want := NewResults(ix.Len())
			want.Reset(ix.Len())
			var wantRec Recording
			ix.MatchPathRecord(pub, want, &wantRec)

			got := NewResults(ix.Len())
			got.Reset(ix.Len())
			var gotRec Recording
			lay.MatchPathTids(pub, resolveTids(lay, pub), got, &gotRec)

			if err := resultsEqual(ix, want, got); err != nil {
				t.Fatalf("trial %d doc %d: %v", trial, d, err)
			}
			if err := touchedEqual(want.Touched(), got.Touched()); err != nil {
				t.Fatalf("trial %d doc %d: %v", trial, d, err)
			}
			if err := recordingEqual(&wantRec, &gotRec); err != nil {
				t.Fatalf("trial %d doc %d: %v", trial, d, err)
			}
		}
	}
}

// randXPE builds a random expression in the supported fragment:
// absolute/relative, child/descendant axes, wildcards, occasional
// attribute filters.
func randXPE(rng *rand.Rand, tags []string) string {
	n := 1 + rng.Intn(4)
	s := ""
	if rng.Intn(2) == 0 {
		s = "/"
	}
	for i := 0; i < n; i++ {
		if i > 0 {
			if rng.Intn(3) == 0 {
				s += "//"
			} else {
				s += "/"
			}
		}
		if rng.Intn(6) == 0 {
			s += "*"
			continue
		}
		tag := tags[rng.Intn(len(tags))]
		s += tag
		if rng.Intn(4) == 0 {
			s += fmt.Sprintf("[@x=%d]", rng.Intn(3))
		}
	}
	if s == "" || s == "/" {
		s = "/" + tags[0]
	}
	return s
}

// randPub builds one random root-to-leaf publication, with repeated tags
// (occurrence numbers > 1) and random attributes.
func randPub(rng *rand.Rand, tags []string) *xmldoc.Publication {
	depth := 1 + rng.Intn(7)
	path := make([]string, depth)
	for i := range path {
		path[i] = tags[rng.Intn(len(tags))]
	}
	doc := xmldoc.FromPaths(path)
	pub := &doc.Paths[0]
	for i := range pub.Tuples {
		if rng.Intn(3) == 0 {
			pub.Tuples[i].Attrs = []xmldoc.Attr{{Name: "x", Value: fmt.Sprint(rng.Intn(3))}}
		}
	}
	return pub
}
