// Package xmlgen generates synthetic XML documents from a DTD content
// model. It stands in for the IBM XML Generator the paper used (the
// original is a closed binary release): the controls the paper varies are
// reproduced — maximum nesting levels (6–10) and default-ish everything
// else — and the default configuration targets the paper's document scale
// (~140 tags, ~9 KB per document).
package xmlgen

import (
	"bytes"
	"fmt"
	"math/rand"

	"predfilter/internal/dtd"
)

// Config controls document generation.
type Config struct {
	// MaxLevels caps element nesting depth (the paper varies 6–10).
	MaxLevels int
	// TargetTags is a soft budget for the number of elements; expansion
	// stops queueing children once reached.
	TargetTags int
	// MaxRepeats caps the instance count of * and + particles.
	MaxRepeats int
	// EdgeProb is the probability that an optional (? or *) parent→child
	// edge is active in a given document. The choice is made once per
	// document, not per element instance: a document uses a consistent
	// subset of the schema's optional markup (as real corpora do), so
	// repeated elements do not gradually cover every optional branch.
	// This is what separates the selective NITF regime from the
	// high-match PSD regime (PSD has few optional edges).
	EdgeProb float64
	// OptionalProb is the probability an instance of an active optional
	// (?) child is emitted.
	OptionalProb float64
	// StarProb is the probability an instance of an active * particle is
	// emitted at all.
	StarProb float64
	// AttrProb is the probability an optional attribute is emitted.
	AttrProb float64
	// TextProb is the probability a leaf element receives text content.
	TextProb float64
	// Seed makes generation deterministic.
	Seed int64
}

// DefaultConfig mirrors the paper's setup (default generator parameters,
// documents averaging ≈140 tags / ≈9 KB).
func DefaultConfig() Config {
	return Config{
		MaxLevels:    8,
		TargetTags:   340,
		MaxRepeats:   16,
		EdgeProb:     0.45,
		OptionalProb: 0.8,
		StarProb:     0.95,
		AttrProb:     0.5,
		TextProb:     0.7,
	}
}

// Generator produces documents from one DTD.
type Generator struct {
	d   *dtd.DTD
	cfg Config
	rng *rand.Rand
}

// New returns a generator; zero config fields are filled from
// DefaultConfig.
func New(d *dtd.DTD, cfg Config) *Generator {
	def := DefaultConfig()
	if cfg.MaxLevels == 0 {
		cfg.MaxLevels = def.MaxLevels
	}
	if cfg.TargetTags == 0 {
		cfg.TargetTags = def.TargetTags
	}
	if cfg.MaxRepeats == 0 {
		cfg.MaxRepeats = def.MaxRepeats
	}
	if cfg.EdgeProb == 0 {
		cfg.EdgeProb = def.EdgeProb
	}
	if cfg.OptionalProb == 0 {
		cfg.OptionalProb = def.OptionalProb
	}
	if cfg.StarProb == 0 {
		cfg.StarProb = def.StarProb
	}
	if cfg.AttrProb == 0 {
		cfg.AttrProb = def.AttrProb
	}
	if cfg.TextProb == 0 {
		cfg.TextProb = def.TextProb
	}
	return &Generator{d: d, cfg: cfg, rng: rand.New(rand.NewSource(cfg.Seed))}
}

var words = []string{
	"market", "protein", "update", "report", "sample", "series", "signal",
	"region", "detail", "source", "record", "factor", "result", "survey",
}

// Generate produces one document.
func (g *Generator) Generate() []byte {
	var buf bytes.Buffer
	tags := 0
	// Per-document profile of active optional edges (see Config.EdgeProb).
	edges := make(map[[2]string]bool)
	active := func(parent, child string) bool {
		key := [2]string{parent, child}
		v, ok := edges[key]
		if !ok {
			v = g.rng.Float64() < g.cfg.EdgeProb
			edges[key] = v
		}
		return v
	}
	var emit func(name string, depth int)
	emit = func(name string, depth int) {
		tags++
		el := g.d.Element(name)
		buf.WriteByte('<')
		buf.WriteString(name)
		for _, a := range el.Attrs {
			if !a.Required && g.rng.Float64() >= g.cfg.AttrProb {
				continue
			}
			fmt.Fprintf(&buf, ` %s="%s"`, a.Name, a.Values[g.rng.Intn(len(a.Values))])
		}
		buf.WriteByte('>')
		children := 0
		if depth < g.cfg.MaxLevels {
			for _, c := range el.Children {
				if tags >= g.cfg.TargetTags {
					break
				}
				if (c.Repeat == dtd.Optional || c.Repeat == dtd.Star) && !active(name, c.Name) {
					continue
				}
				for i := 0; i < g.count(c.Repeat); i++ {
					if tags >= g.cfg.TargetTags {
						break
					}
					emit(c.Name, depth+1)
					children++
				}
			}
		}
		if children == 0 && g.rng.Float64() < g.cfg.TextProb {
			buf.WriteString(words[g.rng.Intn(len(words))])
			buf.WriteByte(' ')
			buf.WriteString(words[g.rng.Intn(len(words))])
		}
		buf.WriteString("</")
		buf.WriteString(name)
		buf.WriteByte('>')
	}
	emit(g.d.Root, 1)
	return buf.Bytes()
}

// count draws the instance count for one child particle.
func (g *Generator) count(r dtd.Repeat) int {
	switch r {
	case dtd.One:
		return 1
	case dtd.Optional:
		if g.rng.Float64() < g.cfg.OptionalProb {
			return 1
		}
		return 0
	case dtd.Star:
		if g.rng.Float64() < g.cfg.StarProb {
			return 1 + g.rng.Intn(g.cfg.MaxRepeats)
		}
		return 0
	default: // dtd.Plus
		return 1 + g.rng.Intn(g.cfg.MaxRepeats)
	}
}

// GenerateN produces n documents.
func (g *Generator) GenerateN(n int) [][]byte {
	out := make([][]byte, n)
	for i := range out {
		out[i] = g.Generate()
	}
	return out
}
