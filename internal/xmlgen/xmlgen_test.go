package xmlgen

import (
	"bytes"
	"testing"

	"predfilter/internal/dtd"
	"predfilter/internal/xmldoc"
)

func TestGeneratesWellFormed(t *testing.T) {
	for _, d := range []*dtd.DTD{dtd.NITF(), dtd.PSD()} {
		g := New(d, Config{Seed: 1})
		for i := 0; i < 25; i++ {
			raw := g.Generate()
			doc, err := xmldoc.Parse(raw)
			if err != nil {
				t.Fatalf("%s doc %d: %v\n%s", d.Name, i, err, raw)
			}
			if doc.Elements == 0 {
				t.Fatalf("%s doc %d: empty document", d.Name, i)
			}
			if doc.Paths[0].Tuples[0].Tag != d.Root {
				t.Errorf("%s doc %d: root = %s", d.Name, i, doc.Paths[0].Tuples[0].Tag)
			}
		}
	}
}

func TestMaxLevelsRespected(t *testing.T) {
	for _, levels := range []int{6, 8, 10} {
		g := New(dtd.NITF(), Config{MaxLevels: levels, Seed: 2})
		for i := 0; i < 20; i++ {
			doc, err := xmldoc.Parse(g.Generate())
			if err != nil {
				t.Fatal(err)
			}
			for _, p := range doc.Paths {
				if p.Length > levels {
					t.Fatalf("MaxLevels=%d but path of length %d: %s", levels, p.Length, p.String())
				}
			}
		}
	}
}

func TestDeterministic(t *testing.T) {
	a := New(dtd.PSD(), Config{Seed: 7}).GenerateN(5)
	b := New(dtd.PSD(), Config{Seed: 7}).GenerateN(5)
	for i := range a {
		if !bytes.Equal(a[i], b[i]) {
			t.Fatalf("doc %d differs across runs with the same seed", i)
		}
	}
	c := New(dtd.PSD(), Config{Seed: 8}).Generate()
	if bytes.Equal(a[0], c) {
		t.Error("different seeds produced identical documents")
	}
}

func TestSchemaValid(t *testing.T) {
	// Every generated parent→child edge must be declared by the DTD.
	for _, d := range []*dtd.DTD{dtd.NITF(), dtd.PSD()} {
		g := New(d, Config{Seed: 3})
		for i := 0; i < 10; i++ {
			doc, err := xmldoc.Parse(g.Generate())
			if err != nil {
				t.Fatal(err)
			}
			for _, p := range doc.Paths {
				for j := 1; j < len(p.Tuples); j++ {
					parent := d.Element(p.Tuples[j-1].Tag)
					if parent == nil {
						t.Fatalf("%s: undeclared element %s", d.Name, p.Tuples[j-1].Tag)
					}
					found := false
					for _, c := range parent.Children {
						if c.Name == p.Tuples[j].Tag {
							found = true
							break
						}
					}
					if !found {
						t.Fatalf("%s: edge %s→%s not in schema", d.Name, p.Tuples[j-1].Tag, p.Tuples[j].Tag)
					}
				}
			}
		}
	}
}

func TestAttributesDeclared(t *testing.T) {
	g := New(dtd.NITF(), Config{Seed: 4})
	d := dtd.NITF()
	doc, err := xmldoc.Parse(g.Generate())
	if err != nil {
		t.Fatal(err)
	}
	sawAttr := false
	for _, p := range doc.Paths {
		for _, tu := range p.Tuples {
			el := d.Element(tu.Tag)
			for _, a := range tu.Attrs {
				sawAttr = true
				ok := false
				for _, decl := range el.Attrs {
					if decl.Name == a.Name {
						ok = true
						for _, v := range decl.Values {
							if v == a.Value {
								goto next
							}
						}
						t.Fatalf("%s@%s=%q not among declared values", tu.Tag, a.Name, a.Value)
					}
				}
				if !ok {
					t.Fatalf("%s@%s not declared", tu.Tag, a.Name)
				}
			next:
			}
		}
	}
	if !sawAttr {
		t.Error("NITF document generated without any attributes")
	}
}

func TestTargetTagsBudget(t *testing.T) {
	g := New(dtd.PSD(), Config{TargetTags: 40, Seed: 5})
	for i := 0; i < 10; i++ {
		doc, err := xmldoc.Parse(g.Generate())
		if err != nil {
			t.Fatal(err)
		}
		// The budget is soft (the element being expanded may finish its
		// current child), but should not be blown past wildly.
		if doc.Elements > 80 {
			t.Errorf("TargetTags=40 produced %d elements", doc.Elements)
		}
	}
}

func TestRequiredChildrenAlwaysPresent(t *testing.T) {
	// PSD: every ProteinEntry must contain its required children
	// regardless of the per-document edge profile.
	g := New(dtd.PSD(), Config{Seed: 6, TargetTags: 100000})
	doc, err := xmldoc.Parse(g.Generate())
	if err != nil {
		t.Fatal(err)
	}
	tags := map[string]bool{}
	for _, p := range doc.Paths {
		for _, tu := range p.Tuples {
			tags[tu.Tag] = true
		}
	}
	for _, must := range []string{"ProteinDatabase", "ProteinEntry", "header", "uid", "protein", "name", "sequence"} {
		if !tags[must] {
			t.Errorf("required element %s missing from generated PSD document", must)
		}
	}
}
