// Package xtrie reimplements the XTrie filtering engine (Chan, Felber,
// Garofalakis & Rastogi, "Efficient filtering of XML documents with XPath
// expressions", ICDE 2002) — the trie-based system of the paper's related
// work: "XTrie proposes a trie-based index structure, which decomposes
// the XPEs to substrings that only contain parent-child operators. As a
// result, the processing of these common substrings among queries can be
// shared."
//
// Expressions are decomposed into substrings — maximal runs of tags
// joined only by the child axis — broken at descendant operators and
// wildcards, which become gap constraints between consecutive substrings.
// All substrings live in one shared trie with Aho–Corasick failure and
// output links; while SAX-parsing a document the engine advances one trie
// state per open element, so every substring ending at the current
// element is found incrementally. A substring table per expression then
// checks the gap constraints against the levels where the expression's
// earlier substrings matched on the current path.
//
// The original XTrie does not define wildcard handling (the paper notes
// this for Index-Filter too); here wildcards contribute to gap distances,
// wildcard-only expressions become document-depth constraints, and
// trailing wildcards become subtree-depth constraints — preserving the
// same matching semantics as every other engine in this repository.
package xtrie

import (
	"fmt"
	"sync"

	"predfilter/internal/xpath"
)

// SID identifies one registered expression.
type SID int32

// gap constrains the distance between the end level of the previous
// substring (or the virtual document root for the first) and the start
// level of this one.
type gap struct {
	dist  int32
	exact bool
}

// row is one substring-table row: the expression's i-th substring and its
// gap constraint to the predecessor.
type row struct {
	q   *query
	idx int32
}

// query is one distinct compiled expression.
type query struct {
	id       int
	subs     []int32 // substring ids, in order
	gaps     []gap   // gaps[i] constrains subs[i] against subs[i-1]
	lens     []int32 // substring lengths
	trailing int32   // trailing wildcard count (0 = none)
	depthReq int32   // wildcard-only expression: required document depth
	recBase  int32   // first per-row record slot (assigned at freeze)
	sids     []SID
}

// tnode is one trie node.
type tnode struct {
	children map[string]*tnode
	fail     *tnode
	// out lists substring ids ending exactly at this node; outLink points
	// to the nearest failure ancestor that has output (dictionary suffix
	// link), so all substrings ending at the current path position are
	// enumerable in output-size time.
	out     []int32
	outLink *tnode
	depth   int32
}

// Engine is an XTrie instance.
type Engine struct {
	root      *tnode
	nodes     []*tnode // all nodes, for link construction
	subLen    []int32
	subRows   [][]row // substring id → table rows referencing it
	byNode    map[*tnode]int32
	queries   []*query
	depthOnly []*query // wildcard-only expressions (document-depth checks)
	byKey     map[string]*query
	nsids     int
	dirty     bool
	recSlots  int
	pool      sync.Pool // *runtime
}

// New returns an empty engine.
func New() *Engine {
	e := &Engine{
		root:   &tnode{children: make(map[string]*tnode)},
		byNode: make(map[*tnode]int32),
		byKey:  make(map[string]*query),
	}
	e.nodes = append(e.nodes, e.root)
	return e
}

// Add registers an expression. Nested path filters and attribute filters
// are outside XTrie's published fragment and are rejected.
func (e *Engine) Add(s string) (SID, error) {
	p, err := xpath.Parse(s)
	if err != nil {
		return 0, err
	}
	return e.AddPath(p)
}

// AddPath registers a parsed expression.
func (e *Engine) AddPath(p *xpath.Path) (SID, error) {
	if !p.IsSinglePath() {
		return 0, fmt.Errorf("xtrie: nested path filters are not supported: %q", p)
	}
	if p.HasAttrFilters() {
		return 0, fmt.Errorf("xtrie: attribute filters are not supported: %q", p)
	}
	key := canonKey(p)
	q := e.byKey[key]
	if q == nil {
		q = e.compile(p)
		q.id = len(e.queries)
		e.queries = append(e.queries, q)
		e.byKey[key] = q
		e.dirty = true
	}
	sid := SID(e.nsids)
	e.nsids++
	q.sids = append(q.sids, sid)
	return sid, nil
}

func canonKey(p *xpath.Path) string {
	if p.Absolute {
		return p.String()
	}
	return "//" + p.String()
}

// compile decomposes the expression into substrings with gap constraints.
func (e *Engine) compile(p *xpath.Path) *query {
	q := &query{}

	// Split steps into substring runs (consecutive child-axis tag steps).
	var cur []string
	pendingGap := gap{dist: 1, exact: p.Absolute}
	wilds := int32(0)
	flush := func() {
		if len(cur) == 0 {
			return
		}
		id := e.internSubstring(cur)
		q.subs = append(q.subs, id)
		q.gaps = append(q.gaps, pendingGap)
		q.lens = append(q.lens, int32(len(cur)))
		cur = nil
		pendingGap = gap{dist: 1, exact: true}
		wilds = 0
	}
	for i, s := range p.Steps {
		desc := s.Axis == xpath.Descendant || (i == 0 && !p.Absolute)
		if desc || s.Wildcard {
			// The run (if any) ends before this step.
			flush()
			if desc {
				pendingGap.exact = false
			}
			if s.Wildcard {
				wilds++
				pendingGap.dist = wilds + 1
				continue
			}
			// A descendant-axis tag step starts a new run.
			pendingGap.dist = wilds + 1
			cur = append(cur, s.Name)
			continue
		}
		cur = append(cur, s.Name)
	}
	switch {
	case len(cur) > 0:
		flush()
	case len(q.subs) > 0:
		// Trailing wildcards after the last substring: the matched
		// element must have a descendant chain at least this deep.
		q.trailing = wilds
	default:
		// Wildcard-only expression: a document-depth requirement.
		q.depthReq = wilds
	}
	return q
}

// internSubstring inserts the tag run into the trie and returns its
// substring id (shared across expressions — XTrie's sharing).
func (e *Engine) internSubstring(tags []string) int32 {
	n := e.root
	for _, tag := range tags {
		c := n.children[tag]
		if c == nil {
			c = &tnode{children: make(map[string]*tnode), depth: n.depth + 1}
			n.children[tag] = c
			e.nodes = append(e.nodes, c)
			e.dirty = true
		}
		n = c
	}
	if id, ok := e.byNode[n]; ok {
		return id
	}
	id := int32(len(e.subLen))
	e.byNode[n] = id
	e.subLen = append(e.subLen, int32(len(tags)))
	e.subRows = append(e.subRows, nil)
	n.out = append(n.out, id)
	return id
}

// freeze (re)builds the Aho–Corasick failure and output links and the
// substring table after registrations.
func (e *Engine) freeze() {
	if !e.dirty {
		return
	}
	// BFS failure links.
	queue := make([]*tnode, 0, len(e.nodes))
	e.root.fail = nil
	e.root.outLink = nil
	for _, c := range e.root.children {
		c.fail = e.root
		c.outLink = nil
		queue = append(queue, c)
	}
	for len(queue) > 0 {
		n := queue[0]
		queue = queue[1:]
		for tag, c := range n.children {
			f := n.fail
			for f != nil && f.children[tag] == nil {
				f = f.fail
			}
			if f == nil {
				c.fail = e.root
			} else {
				c.fail = f.children[tag]
			}
			if len(c.fail.out) > 0 {
				c.outLink = c.fail
			} else {
				c.outLink = c.fail.outLink
			}
			queue = append(queue, c)
		}
	}
	// Substring table.
	for i := range e.subRows {
		e.subRows[i] = e.subRows[i][:0]
	}
	e.depthOnly = e.depthOnly[:0]
	e.recSlots = 0
	for _, q := range e.queries {
		if len(q.subs) == 0 {
			e.depthOnly = append(e.depthOnly, q)
			continue
		}
		q.recBase = int32(e.recSlots)
		e.recSlots += len(q.subs)
		for i, sub := range q.subs {
			e.subRows[sub] = append(e.subRows[sub], row{q: q, idx: int32(i)})
		}
	}
	e.dirty = false
}

// Stats summarizes engine state.
type Stats struct {
	DistinctExpressions int
	Substrings          int
	TrieNodes           int
	SIDs                int
}

// Stats returns engine statistics.
func (e *Engine) Stats() Stats {
	return Stats{
		DistinctExpressions: len(e.queries),
		Substrings:          len(e.subLen),
		TrieNodes:           len(e.nodes),
		SIDs:                e.nsids,
	}
}
