package xtrie

import (
	"math/rand"
	"testing"
)

// BenchmarkFilter measures substring-trie evaluation (engine construction
// and link building excluded).
func BenchmarkFilter(b *testing.B) {
	rng := rand.New(rand.NewSource(1))
	e := New()
	for i := 0; i < 20000; i++ {
		if _, err := e.Add(randXPE(rng)); err != nil {
			b.Fatal(err)
		}
	}
	docs := make([][]byte, 8)
	for i := range docs {
		docs[i] = randXML(rng)
	}
	if _, err := e.Filter(docs[0]); err != nil { // freeze links
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := e.Filter(docs[i%len(docs)]); err != nil {
			b.Fatal(err)
		}
	}
}
