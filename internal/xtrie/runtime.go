package xtrie

import (
	"bytes"
	"encoding/xml"
	"fmt"
	"io"

	"predfilter/internal/xmlevents"
)

// runtime is the per-document evaluation state. Runtimes are pooled on
// the engine and all per-query storage is epoch-stamped, so filtering a
// document costs no allocation proportional to the number of registered
// expressions.
type runtime struct {
	e      *Engine
	states []*tnode // trie state per open-element depth; states[0] = root

	// rec[slot] holds the end levels at which a substring-table row
	// matched on the current path (slot = query.recBase + row index);
	// entries are retracted when the element that produced them closes.
	// Stale slots (stamp != epoch) read as empty.
	rec   [][]int32
	stamp []uint64

	matchedStamp []uint64
	epoch        uint64
	nmatched     int
	matchedIDs   []int32

	// pending holds subtree-depth requirements from trailing wildcards.
	pending []pendingReq
	// undo logs per-depth retraction entries.
	undo [][]undoEntry
}

type pendingReq struct {
	q   *query
	req int32
}

type undoEntry struct {
	slot   int32 // -1 marks a pending-list truncation
	oldLen int32
}

func (rt *runtime) reset(e *Engine) {
	rt.e = e
	rt.states = append(rt.states[:0], e.root)
	for len(rt.rec) < e.recSlots {
		rt.rec = append(rt.rec, nil)
		rt.stamp = append(rt.stamp, 0)
	}
	for len(rt.matchedStamp) < len(e.queries) {
		rt.matchedStamp = append(rt.matchedStamp, 0)
	}
	rt.epoch++
	rt.nmatched = 0
	rt.matchedIDs = rt.matchedIDs[:0]
	rt.pending = rt.pending[:0]
	rt.undo = rt.undo[:0]
}

func (rt *runtime) isMatched(q *query) bool {
	return rt.matchedStamp[q.id] == rt.epoch
}

func (rt *runtime) mark(q *query) {
	if rt.matchedStamp[q.id] != rt.epoch {
		rt.matchedStamp[q.id] = rt.epoch
		rt.nmatched++
		rt.matchedIDs = append(rt.matchedIDs, int32(q.id))
	}
}

// slotPairs returns the live entries of a slot (empty when stale).
func (rt *runtime) slot(slot int32) []int32 {
	if rt.stamp[slot] != rt.epoch {
		return nil
	}
	return rt.rec[slot]
}

// Filter parses the document and returns the SIDs of all matching
// expressions.
func (e *Engine) Filter(doc []byte) ([]SID, error) {
	return e.FilterReader(bytes.NewReader(doc))
}

// FilterReader is Filter over a stream.
func (e *Engine) FilterReader(r io.Reader) ([]SID, error) {
	e.freeze()
	rt, _ := e.pool.Get().(*runtime)
	if rt == nil {
		rt = &runtime{}
	}
	rt.reset(e)
	defer e.pool.Put(rt)

	level := int32(0)
	err := xmlevents.ForEach(r, "xtrie",
		func(t xml.StartElement) error {
			level++
			rt.undo = append(rt.undo, nil)
			rt.startElement(t.Name.Local, level)
			return nil
		},
		func(t xml.EndElement) error {
			if len(rt.undo) == 0 {
				return fmt.Errorf("xtrie: unbalanced end element <%s>", t.Name.Local)
			}
			frame := rt.undo[len(rt.undo)-1]
			for i := len(frame) - 1; i >= 0; i-- {
				u := frame[i]
				if u.slot < 0 {
					rt.pending = rt.pending[:u.oldLen]
				} else {
					rt.rec[u.slot] = rt.rec[u.slot][:u.oldLen]
				}
			}
			rt.undo = rt.undo[:len(rt.undo)-1]
			rt.states = rt.states[:len(rt.states)-1]
			level--
			return nil
		})
	if err != nil {
		return nil, err
	}
	if level != 0 {
		return nil, fmt.Errorf("xtrie: unexpected EOF with %d open elements", level)
	}

	out := make([]SID, 0, rt.nmatched)
	for _, id := range rt.matchedIDs {
		out = append(out, e.queries[id].sids...)
	}
	return out, nil
}

// startElement advances the trie state, satisfies pending depth
// requirements, and processes every substring ending at this element.
func (rt *runtime) startElement(tag string, level int32) {
	// Depth requirements: trailing-wildcard pendings and wildcard-only
	// expressions.
	for _, p := range rt.pending {
		if level >= p.req {
			rt.mark(p.q)
		}
	}
	for _, q := range rt.e.depthOnly {
		if level >= q.depthReq {
			rt.mark(q)
		}
	}

	// Aho–Corasick advance from the parent's state.
	n := rt.states[len(rt.states)-1]
	for n != nil && n.children[tag] == nil {
		n = n.fail
	}
	if n == nil {
		n = rt.e.root
	} else {
		n = n.children[tag]
	}
	rt.states = append(rt.states, n)

	// Outputs: every substring ending at this element, via the dictionary
	// suffix chain.
	for m := n; m != nil; m = m.outLink {
		for _, sub := range m.out {
			rt.substringMatched(sub, level)
		}
	}
}

// substringMatched processes one substring occurrence ending at level.
func (rt *runtime) substringMatched(sub, level int32) {
	start := level - rt.e.subLen[sub] + 1
	for _, row := range rt.e.subRows[sub] {
		q := row.q
		if rt.isMatched(q) {
			continue
		}
		g := q.gaps[row.idx]
		ok := false
		if row.idx == 0 {
			if g.exact {
				ok = start == g.dist
			} else {
				ok = start >= g.dist
			}
		} else {
			for _, parentEnd := range rt.slot(q.recBase + row.idx - 1) {
				if g.exact {
					if start-parentEnd == g.dist {
						ok = true
						break
					}
				} else if start-parentEnd >= g.dist {
					ok = true
					break
				}
			}
		}
		if !ok {
			continue
		}
		if int(row.idx) == len(q.subs)-1 {
			if q.trailing == 0 {
				rt.mark(q)
			} else {
				rt.addPending(pendingReq{q: q, req: level + q.trailing})
			}
			continue
		}
		rt.record(q.recBase+row.idx, level)
	}
}

// record notes that a row slot matched ending at level, retractable when
// the current element closes.
func (rt *runtime) record(slot, level int32) {
	if rt.stamp[slot] != rt.epoch {
		rt.stamp[slot] = rt.epoch
		rt.rec[slot] = rt.rec[slot][:0]
	}
	d := len(rt.undo) - 1
	rt.undo[d] = append(rt.undo[d], undoEntry{slot: slot, oldLen: int32(len(rt.rec[slot]))})
	rt.rec[slot] = append(rt.rec[slot], level)
}

func (rt *runtime) addPending(p pendingReq) {
	d := len(rt.undo) - 1
	rt.undo[d] = append(rt.undo[d], undoEntry{slot: -1, oldLen: int32(len(rt.pending))})
	rt.pending = append(rt.pending, p)
}
