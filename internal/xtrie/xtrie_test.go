package xtrie

import (
	"math/rand"
	"strings"
	"testing"

	"predfilter/internal/refmatch"
	"predfilter/internal/xmldoc"
	"predfilter/internal/xpath"
)

var tags = []string{"a", "b", "c", "d", "e"}

func randXPE(rng *rand.Rand) string {
	n := 1 + rng.Intn(4)
	var b strings.Builder
	if rng.Intn(2) == 0 {
		b.WriteString("/")
	}
	for i := 0; i < n; i++ {
		if i > 0 {
			if rng.Intn(5) == 0 {
				b.WriteString("//")
			} else {
				b.WriteString("/")
			}
		} else if b.Len() == 1 && rng.Intn(6) == 0 {
			b.Reset()
			b.WriteString("//")
		}
		if rng.Intn(4) == 0 {
			b.WriteString("*")
			continue
		}
		b.WriteString(tags[rng.Intn(len(tags))])
	}
	return b.String()
}

func randXML(rng *rand.Rand) []byte {
	var b strings.Builder
	var build func(depth int)
	build = func(depth int) {
		tag := tags[rng.Intn(len(tags))]
		b.WriteString("<" + tag + ">")
		if depth < 5 {
			for k := rng.Intn(3); k > 0; k-- {
				build(depth + 1)
			}
		}
		b.WriteString("</" + tag + ">")
	}
	build(1)
	return []byte(b.String())
}

func TestExamples(t *testing.T) {
	e := New()
	xpes := []string{
		"/a/b/c", "/a/b/d", "a//c", "b/c", "/b", "/*/*/*", "/a/*/c",
		"//b/c", "c", "/a//c", "b//b", "c/*", "/a/b/*", "a/*/*",
	}
	want := map[string]bool{
		"/a/b/c": true, "a//c": true, "b/c": true, "/*/*/*": true,
		"/a/*/c": true, "//b/c": true, "c": true, "/a//c": true,
		"/a/b/*": true, "a/*/*": true,
	}
	sids := make([]SID, len(xpes))
	for i, s := range xpes {
		sid, err := e.Add(s)
		if err != nil {
			t.Fatalf("Add(%q): %v", s, err)
		}
		sids[i] = sid
	}
	got, err := e.Filter([]byte("<a><b><c/></b><d/></a>"))
	if err != nil {
		t.Fatal(err)
	}
	set := make(map[SID]bool)
	for _, s := range got {
		set[s] = true
	}
	for i, s := range xpes {
		if set[sids[i]] != want[s] {
			t.Errorf("%q: matched=%v, want %v", s, set[sids[i]], want[s])
		}
	}
}

// TestSubstringSharing: XTrie's point — common substrings are stored once.
func TestSubstringSharing(t *testing.T) {
	e := New()
	// a/b appears in both expressions (as a substring run).
	if _, err := e.Add("/a/b//x"); err != nil {
		t.Fatal(err)
	}
	st1 := e.Stats()
	if _, err := e.Add("//a/b/y"); err != nil {
		t.Fatal(err)
	}
	// The a/b run is shared; only x's and y's nodes are new... the second
	// expression's substring is a/b/y (one run), which extends the a/b
	// branch. Either way, the trie must not duplicate the a/b prefix.
	st2 := e.Stats()
	if st2.TrieNodes-st1.TrieNodes > 1 {
		t.Errorf("adding //a/b/y grew the trie by %d nodes, want <= 1 (shared a/b prefix)", st2.TrieNodes-st1.TrieNodes)
	}
}

// TestAhoCorasickOverlap: overlapping occurrences on repetitive paths.
func TestAhoCorasickOverlap(t *testing.T) {
	e := New()
	sid, err := e.Add("a/a/b")
	if err != nil {
		t.Fatal(err)
	}
	// Path a/a/a/b: the run a/a/b must be found ending at the b even
	// though the walk passes through a longer a-chain (failure links).
	got, err := e.Filter([]byte("<a><a><a><b/></a></a></a>"))
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 1 || got[0] != sid {
		t.Errorf("a/a/b on a/a/a/b: got %v", got)
	}
}

// TestScoping: recorded substring matches die with their scope.
func TestScoping(t *testing.T) {
	e := New()
	sid, err := e.Add("a//b")
	if err != nil {
		t.Fatal(err)
	}
	// a and b in disjoint subtrees: no match.
	got, err := e.Filter([]byte("<r><x><a/></x><y><b/></y></r>"))
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 0 {
		t.Errorf("a//b matched across scopes: %v (sid %d)", got, sid)
	}
}

// TestRandomEquivalence cross-validates against the reference matcher.
func TestRandomEquivalence(t *testing.T) {
	rng := rand.New(rand.NewSource(89))
	for round := 0; round < 80; round++ {
		e := New()
		xpes := make([]string, 40)
		sids := make([]SID, len(xpes))
		for i := range xpes {
			xpes[i] = randXPE(rng)
			sid, err := e.Add(xpes[i])
			if err != nil {
				t.Fatalf("Add(%q): %v", xpes[i], err)
			}
			sids[i] = sid
		}
		for d := 0; d < 5; d++ {
			xmlBytes := randXML(rng)
			doc, err := xmldoc.Parse(xmlBytes)
			if err != nil {
				t.Fatal(err)
			}
			got, err := e.Filter(xmlBytes)
			if err != nil {
				t.Fatal(err)
			}
			set := make(map[SID]bool)
			for _, s := range got {
				set[s] = true
			}
			for i, s := range xpes {
				want := refmatch.Match(xpath.MustParse(s), doc)
				if set[sids[i]] != want {
					t.Fatalf("round %d: %q matched=%v, ref=%v on %s", round, s, set[sids[i]], want, xmlBytes)
				}
			}
		}
	}
}

func TestIncrementalAdd(t *testing.T) {
	// Adding after filtering must rebuild links correctly.
	e := New()
	if _, err := e.Add("/a/b"); err != nil {
		t.Fatal(err)
	}
	if _, err := e.Filter([]byte("<a><b/></a>")); err != nil {
		t.Fatal(err)
	}
	sid2, err := e.Add("b/c")
	if err != nil {
		t.Fatal(err)
	}
	got, err := e.Filter([]byte("<x><b><c/></b></x>"))
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 1 || got[0] != sid2 {
		t.Errorf("post-filter add: got %v", got)
	}
}

func TestErrors(t *testing.T) {
	e := New()
	if _, err := e.Add("/a[b]"); err == nil {
		t.Error("Add accepted a nested path filter")
	}
	if _, err := e.Add("/a[@x=1]"); err == nil {
		t.Error("Add accepted an attribute filter")
	}
	if _, err := e.Add("/a"); err != nil {
		t.Fatal(err)
	}
	if _, err := e.Filter([]byte("<a><b></a>")); err == nil {
		t.Error("Filter accepted mismatched tags")
	}
	if _, err := e.Filter([]byte("<a>")); err == nil {
		t.Error("Filter accepted a truncated document")
	}
}
