package guard

import (
	"context"
	"errors"
	"fmt"
	"testing"
	"time"
)

func TestNewBudgetNilWhenUnbounded(t *testing.T) {
	if b := NewBudget(context.Background(), Limits{}); b != nil {
		t.Fatalf("NewBudget with no bounds = %+v, want nil", b)
	}
	// Parse-stage-only limits never need a match budget.
	if b := NewBudget(context.Background(), Limits{MaxDepth: 4, MaxPaths: 4, MaxTuples: 4, MaxDocBytes: 4}); b != nil {
		t.Fatalf("NewBudget with parse-only bounds = %+v, want nil", b)
	}
	if b := NewBudget(nil, Limits{}); b != nil {
		t.Fatalf("NewBudget(nil ctx, no bounds) = %+v, want nil", b)
	}
}

func TestNewBudgetNonNilWhenBounded(t *testing.T) {
	if NewBudget(context.Background(), Limits{MaxSteps: 1}) == nil {
		t.Fatal("MaxSteps bound should produce a budget")
	}
	if NewBudget(context.Background(), Limits{MatchDeadline: time.Second}) == nil {
		t.Fatal("MatchDeadline bound should produce a budget")
	}
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	if NewBudget(ctx, Limits{}) == nil {
		t.Fatal("cancellable context should produce a budget")
	}
	dctx, dcancel := context.WithTimeout(context.Background(), time.Hour)
	defer dcancel()
	if NewBudget(dctx, Limits{}) == nil {
		t.Fatal("context deadline should produce a budget")
	}
}

func TestNilBudgetIsUnlimited(t *testing.T) {
	var b *Budget
	if !b.CheckPoint() {
		t.Fatal("nil budget CheckPoint = false")
	}
	if b.Exceeded() {
		t.Fatal("nil budget Exceeded = true")
	}
	if b.Err() != nil {
		t.Fatalf("nil budget Err = %v", b.Err())
	}
	if b.Steps() != 0 {
		t.Fatalf("nil budget Steps = %d", b.Steps())
	}
	if b.Fork() != nil {
		t.Fatal("nil budget Fork != nil")
	}
}

func TestStepBudgetExactCutoff(t *testing.T) {
	const max = 100
	b := NewBudget(context.Background(), Limits{MaxSteps: max})
	for i := 0; i < max; i++ {
		if !b.Step() {
			t.Fatalf("step %d of %d refused", i+1, max)
		}
	}
	if b.Step() {
		t.Fatalf("step %d granted beyond budget", max+1)
	}
	if !b.Exceeded() {
		t.Fatal("Exceeded = false after trip")
	}
	var le *LimitError
	if err := b.Err(); !errors.As(err, &le) {
		t.Fatalf("Err = %v, want *LimitError", err)
	}
	if le.Kind != Steps || le.Limit != max || le.Got != max+1 || le.Stage != "match" {
		t.Fatalf("LimitError = %+v, want Kind=Steps Limit=%d Got=%d Stage=match", le, max, max+1)
	}
	// Sticky: everything keeps failing.
	if b.Step() || b.CheckPoint() {
		t.Fatal("budget recovered after trip")
	}
}

func TestCancellation(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	b := NewBudget(ctx, Limits{})
	if !b.CheckPoint() {
		t.Fatal("CheckPoint failed before cancel")
	}
	cancel()
	if b.CheckPoint() {
		t.Fatal("CheckPoint passed after cancel")
	}
	var le *LimitError
	if err := b.Err(); !errors.As(err, &le) || le.Kind != Canceled {
		t.Fatalf("Err = %v, want Canceled *LimitError", b.Err())
	}
	if !errors.Is(b.Err(), context.Canceled) {
		t.Fatal("Canceled LimitError should unwrap to context.Canceled")
	}
}

func TestContextDeadline(t *testing.T) {
	ctx, cancel := context.WithTimeout(context.Background(), time.Nanosecond)
	defer cancel()
	<-ctx.Done()
	b := NewBudget(ctx, Limits{})
	if b.CheckPoint() {
		t.Fatal("CheckPoint passed after context deadline")
	}
	var le *LimitError
	if err := b.Err(); !errors.As(err, &le) || le.Kind != Deadline {
		t.Fatalf("Err = %v, want Deadline *LimitError", b.Err())
	}
	if !errors.Is(b.Err(), context.DeadlineExceeded) {
		t.Fatal("Deadline LimitError should unwrap to context.DeadlineExceeded")
	}
}

func TestMatchDeadline(t *testing.T) {
	b := NewBudget(context.Background(), Limits{MatchDeadline: time.Nanosecond})
	time.Sleep(time.Millisecond)
	if b.CheckPoint() {
		t.Fatal("CheckPoint passed after match deadline")
	}
	var le *LimitError
	if err := b.Err(); !errors.As(err, &le) || le.Kind != Deadline {
		t.Fatalf("Err = %v, want Deadline *LimitError", b.Err())
	}
	if le.Limit != int64(time.Nanosecond) || le.Got <= 0 {
		t.Fatalf("LimitError = %+v, want Limit=1ns and positive Got", le)
	}
}

func TestStepConsultsDeadlinePeriodically(t *testing.T) {
	// Steps alone must notice a passed deadline within one check window
	// even though the step bound is unlimited.
	b := NewBudget(context.Background(), Limits{MatchDeadline: time.Nanosecond})
	time.Sleep(time.Millisecond)
	granted := 0
	for b.Step() {
		granted++
		if granted > checkMask+1 {
			t.Fatalf("deadline unnoticed after %d steps (check window %d)", granted, checkMask+1)
		}
	}
	if b.Err() == nil {
		t.Fatal("no error recorded after deadline stop")
	}
}

// wrappedDeadlineCtx is a custom context whose Err wraps
// context.DeadlineExceeded instead of returning it directly; the kind
// classification must use errors.Is, not ==.
type wrappedDeadlineCtx struct {
	context.Context
	done chan struct{}
}

func (c *wrappedDeadlineCtx) Done() <-chan struct{} { return c.done }
func (c *wrappedDeadlineCtx) Err() error {
	select {
	case <-c.done:
		return fmt.Errorf("custom wrapper: %w", context.DeadlineExceeded)
	default:
		return nil
	}
}

func TestWrappedContextDeadlineClassifiedAsDeadline(t *testing.T) {
	ctx := &wrappedDeadlineCtx{Context: context.Background(), done: make(chan struct{})}
	close(ctx.done)
	b := NewBudget(ctx, Limits{})
	if b.CheckPoint() {
		t.Fatal("CheckPoint passed on a done context")
	}
	var le *LimitError
	if err := b.Err(); !errors.As(err, &le) || le.Kind != Deadline {
		t.Fatalf("Err = %v (kind %v), want Deadline *LimitError", b.Err(), le.Kind)
	}
	if !errors.Is(b.Err(), context.DeadlineExceeded) {
		t.Fatal("wrapped deadline should still unwrap to context.DeadlineExceeded")
	}
}

func TestForkCarriesDeadline(t *testing.T) {
	// The fork's deadline is the parent's original anchor, not re-anchored
	// to the fork time: the whole document must finish within one
	// MatchDeadline no matter how many shards or passes it is split into.
	b := NewBudget(context.Background(), Limits{MatchDeadline: 30 * time.Millisecond})
	time.Sleep(50 * time.Millisecond)
	if b.CheckPoint() {
		t.Fatal("parent budget should be past its deadline")
	}
	f := b.Fork()
	if f.CheckPoint() {
		t.Fatal("fork of an expired-deadline budget should be expired too")
	}
	var le *LimitError
	if err := f.Err(); !errors.As(err, &le) || le.Kind != Deadline {
		t.Fatalf("fork Err = %v, want Deadline *LimitError", f.Err())
	}
	if le.Got < int64(30*time.Millisecond) {
		t.Fatalf("fork Got = %v, want elapsed measured from the original anchor", time.Duration(le.Got))
	}
}

func TestForkResetsSteps(t *testing.T) {
	b := NewBudget(context.Background(), Limits{MaxSteps: 5})
	for b.Step() {
	}
	if !b.Exceeded() {
		t.Fatal("parent budget should be exhausted")
	}
	f := b.Fork()
	if f == nil {
		t.Fatal("Fork of bounded budget = nil")
	}
	if f.Exceeded() || f.Steps() != 0 {
		t.Fatalf("forked budget not fresh: exceeded=%v steps=%d", f.Exceeded(), f.Steps())
	}
	if !f.Step() {
		t.Fatal("forked budget refused its first step")
	}
}

func TestParseError(t *testing.T) {
	err := ParseError(Depth, 32, 33)
	if err.Kind != Depth || err.Limit != 32 || err.Got != 33 || err.Stage != "parse" {
		t.Fatalf("ParseError = %+v", err)
	}
	if err.Unwrap() != nil {
		t.Fatalf("structural ParseError unwraps to %v, want nil", err.Unwrap())
	}
}

func TestKindStrings(t *testing.T) {
	// Stable names: these are metric label values, so renaming one is a
	// breaking change.
	want := map[Kind]string{
		Depth:    "depth",
		Paths:    "paths",
		Tuples:   "tuples",
		DocBytes: "doc_bytes",
		Steps:    "steps",
		Deadline: "deadline",
		Canceled: "canceled",
	}
	if len(want) != int(NumKinds) {
		t.Fatalf("test covers %d kinds, NumKinds = %d", len(want), NumKinds)
	}
	for k, s := range want {
		if k.String() != s {
			t.Errorf("%d.String() = %q, want %q", int(k), k.String(), s)
		}
	}
	if got := Kind(99).String(); got != "Kind(99)" {
		t.Errorf("out-of-range Kind.String() = %q", got)
	}
}

func TestLimitErrorMessages(t *testing.T) {
	cases := []struct {
		err  *LimitError
		want string
	}{
		{ParseError(Depth, 32, 33), "guard: parse depth limit exceeded: 33 > 32"},
		{&LimitError{Kind: Steps, Limit: 10, Got: 11, Stage: "match"}, "guard: match steps limit exceeded: 11 > 10"},
		{&LimitError{Kind: Deadline, Limit: int64(time.Second), Got: int64(2 * time.Second), Stage: "match"},
			"guard: match deadline exceeded after 2s (budget 1s)"},
		{&LimitError{Kind: Canceled, Got: int64(time.Second), Stage: "match"},
			"guard: match canceled after 1s"},
	}
	for _, c := range cases {
		if got := c.err.Error(); got != c.want {
			t.Errorf("Error() = %q, want %q", got, c.want)
		}
	}
}

func TestZero(t *testing.T) {
	if !(Limits{}).Zero() {
		t.Fatal("zero Limits not Zero")
	}
	if (Limits{MaxDepth: 1}).Zero() {
		t.Fatal("non-zero Limits reported Zero")
	}
}

func TestStepNChargesAndTrips(t *testing.T) {
	b := NewBudget(context.Background(), Limits{MaxSteps: 100})
	if !b.StepN(40) || !b.StepN(60) {
		t.Fatalf("StepN tripped within the budget: %v", b.Err())
	}
	if b.Steps() != 100 {
		t.Fatalf("Steps = %d, want 100", b.Steps())
	}
	if b.StepN(1) {
		t.Fatal("StepN over the bound did not trip")
	}
	var le *LimitError
	if err := b.Err(); !errors.As(err, &le) || le.Kind != Steps || le.Stage != "match" {
		t.Fatalf("Err = %v, want a Steps match LimitError", err)
	}
	// Sticky: later bulk charges keep failing.
	if b.StepN(1) {
		t.Fatal("StepN after trip returned true")
	}
	// Nil budget is unlimited.
	var nb *Budget
	if !nb.StepN(1 << 40) {
		t.Fatal("nil budget StepN returned false")
	}
}

func TestStepNMixesWithStep(t *testing.T) {
	b := NewBudget(context.Background(), Limits{MaxSteps: 10})
	for i := 0; i < 5; i++ {
		if !b.Step() {
			t.Fatalf("Step %d tripped early: %v", i, b.Err())
		}
	}
	if !b.StepN(5) {
		t.Fatalf("StepN at the bound tripped: %v", b.Err())
	}
	if b.Step() {
		t.Fatal("Step past the mixed total did not trip")
	}
}

func TestStepNCanceledContext(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	b := NewBudget(ctx, Limits{MaxSteps: 1 << 30})
	cancel()
	if b.StepN(1) {
		t.Fatal("StepN under a canceled context returned true")
	}
	var le *LimitError
	if err := b.Err(); !errors.As(err, &le) || le.Kind != Canceled {
		t.Fatalf("Err = %v, want Canceled", err)
	}
}
