// Package guard is the engine's resource-governance layer: per-document
// structural limits enforced while parsing, and a per-document match
// budget (occurrence-determination steps, wall-clock deadline,
// cancellation) enforced while matching.
//
// The paper's occurrence determination (Algorithm 1, §4.2.1) is a
// backtracking search whose worst case is exponential in the number of
// occurrence pairs, and path extraction (§3.3) materializes every
// root-to-leaf path — so one adversarial document (deeply nested,
// massively wide, or occurrence-heavy) can stall an engine that otherwise
// serves millions of subscriptions. Production filtering engines in the
// same lineage (YFilter, ONYX) treat per-document bounds and load
// shedding as first class; this package is that layer.
//
// Every governance stop is a typed *LimitError saying which limit
// tripped, the configured bound, and how far the document got. Partial
// work is never reported as "no match": the pipeline returns the error
// instead of a result.
package guard

import (
	"context"
	"errors"
	"fmt"
	"math"
	"time"
)

// Kind identifies which limit a LimitError reports.
type Kind int

const (
	// Depth is the maximum open-element nesting depth (Limits.MaxDepth).
	Depth Kind = iota
	// Paths is the maximum root-to-leaf path count (Limits.MaxPaths).
	Paths
	// Tuples is the maximum total path-tuple count (Limits.MaxTuples).
	Tuples
	// DocBytes is the maximum document size (Limits.MaxDocBytes).
	DocBytes
	// Steps is the occurrence-determination step budget (Limits.MaxSteps).
	Steps
	// Deadline is the wall-clock budget: Limits.MatchDeadline or a
	// deadline carried by the caller's context.
	Deadline
	// Canceled reports context cancellation (the caller gave up; nothing
	// about the document itself exceeded a bound).
	Canceled

	// NumKinds is the number of limit kinds; counters indexed by Kind are
	// sized by it.
	NumKinds
)

// String returns the kind's stable snake_case name (used as the metric
// label value).
func (k Kind) String() string {
	switch k {
	case Depth:
		return "depth"
	case Paths:
		return "paths"
	case Tuples:
		return "tuples"
	case DocBytes:
		return "doc_bytes"
	case Steps:
		return "steps"
	case Deadline:
		return "deadline"
	case Canceled:
		return "canceled"
	}
	return fmt.Sprintf("Kind(%d)", int(k))
}

// LimitError reports a governance stop: which limit tripped, the
// configured bound, and how far the document got before tripping it. It
// is returned (never panicked) by every budgeted pipeline entry point,
// and inspectable with errors.As; Deadline and Canceled errors
// additionally unwrap to the matching context error, so
// errors.Is(err, context.DeadlineExceeded) keeps working.
type LimitError struct {
	// Kind says which limit tripped.
	Kind Kind
	// Limit is the configured bound (0 for Canceled, which has none).
	Limit int64
	// Got is the observed value when the limit tripped: the depth/path/
	// tuple/byte count reached, the steps consumed, or — for Deadline and
	// Canceled — the elapsed match time in nanoseconds.
	Got int64
	// Stage is the pipeline stage that tripped: "parse" or "match".
	Stage string

	cause error // context error for Deadline/Canceled, nil otherwise
}

// Error implements error.
func (e *LimitError) Error() string {
	switch e.Kind {
	case Canceled:
		return fmt.Sprintf("guard: %s canceled after %v", e.Stage, time.Duration(e.Got))
	case Deadline:
		return fmt.Sprintf("guard: %s deadline exceeded after %v (budget %v)",
			e.Stage, time.Duration(e.Got), time.Duration(e.Limit))
	}
	return fmt.Sprintf("guard: %s %s limit exceeded: %d > %d", e.Stage, e.Kind, e.Got, e.Limit)
}

// Unwrap exposes the underlying context error of Deadline/Canceled stops.
func (e *LimitError) Unwrap() error { return e.cause }

// Limits bounds per-document resource use. The zero value enforces
// nothing; each field is independent and zero disables that bound.
type Limits struct {
	// MaxDepth bounds the open-element nesting depth while parsing
	// (defense against depth bombs).
	MaxDepth int
	// MaxPaths bounds the number of root-to-leaf paths extracted from one
	// document (defense against wide path-explosion documents).
	MaxPaths int
	// MaxTuples bounds the total tuple count across all extracted paths —
	// the document's decomposed size, which grows as depth × paths and is
	// the real memory bound for pathological trees.
	MaxTuples int
	// MaxDocBytes bounds the raw XML size, checked before (byte-slice
	// input) or while (stream input) parsing.
	MaxDocBytes int64
	// MaxSteps bounds the occurrence-determination search effort per
	// document: every occurrence pair visited by the backtracking search,
	// summed over all paths and expressions, counts one step.
	MaxSteps int64
	// MatchDeadline bounds the wall-clock match time per document,
	// measured from budget creation (document entry to the match stage).
	MatchDeadline time.Duration
}

// Zero reports whether the limits enforce nothing.
func (l Limits) Zero() bool { return l == Limits{} }

// bounded reports whether any match-stage bound is set (parse-stage
// bounds are enforced by the parser, not the budget).
func (l Limits) bounded() bool { return l.MaxSteps > 0 || l.MatchDeadline > 0 }

// checkMask makes the budget re-check the clock and the context every
// 4096 steps: rare enough to stay off the search's critical path, frequent
// enough that a runaway search overshoots a deadline by microseconds.
const checkMask = 1<<12 - 1

// Budget is the per-document match accounting threaded through the
// matching pipeline. It is single-goroutine state (parallel matchers give
// each shard its own budget via Fork); a nil *Budget means unlimited and
// is accepted by the pipeline everywhere.
type Budget struct {
	ctx      context.Context
	maxSteps int64
	steps    int64
	deadline time.Time // zero when no wall-clock bound applies
	start    time.Time
	err      *LimitError // sticky: once set, every check fails
	lim      Limits      // retained for Fork
}

// NewBudget returns a budget enforcing the limits' match-stage bounds and
// the context's deadline/cancellation. It returns nil — the unlimited
// budget — when there is nothing to enforce: no step bound, no deadline
// (neither configured nor on the context) and a non-cancellable context.
func NewBudget(ctx context.Context, lim Limits) *Budget {
	if ctx == nil {
		ctx = context.Background()
	}
	_, hasCtxDeadline := ctx.Deadline()
	if !lim.bounded() && !hasCtxDeadline && ctx.Done() == nil {
		return nil
	}
	b := &Budget{ctx: ctx, maxSteps: math.MaxInt64, start: time.Now(), lim: lim}
	if lim.MaxSteps > 0 {
		b.maxSteps = lim.MaxSteps
	}
	if lim.MatchDeadline > 0 {
		b.deadline = b.start.Add(lim.MatchDeadline)
	}
	return b
}

// Fork returns a fresh budget with the same limits and context, for a
// parallel shard or a second pass over the same document: steps reset
// (each fork may spend the full step budget; across parallel shards the
// aggregate bound is workers × MaxSteps), while the wall-clock anchor and
// deadline carry over unchanged — the whole document still has to finish
// within the original MatchDeadline. Fork of a nil budget is nil.
func (b *Budget) Fork() *Budget {
	if b == nil {
		return nil
	}
	f := &Budget{
		ctx:      b.ctx,
		maxSteps: math.MaxInt64,
		deadline: b.deadline,
		start:    b.start,
		lim:      b.lim,
	}
	if b.lim.MaxSteps > 0 {
		f.maxSteps = b.lim.MaxSteps
	}
	return f
}

// Step consumes one unit of occurrence-determination effort. It returns
// false once the budget is exhausted — step bound hit, deadline passed,
// or context done — and the budget's error is set; the caller must stop
// searching and surface Err, never a partial result. The clock and the
// context are consulted every 4096 steps.
func (b *Budget) Step() bool {
	if b.err != nil {
		return false
	}
	b.steps++
	if b.steps > b.maxSteps {
		b.err = &LimitError{Kind: Steps, Limit: b.maxSteps, Got: b.steps, Stage: "match"}
		return false
	}
	if b.steps&checkMask == 0 {
		return b.checkNow()
	}
	return true
}

// StepN consumes n units of matching effort at once — the bulk
// counterpart of Step for the columnar sweep, which charges one unit per
// block of bitset word operations rather than per occurrence pair. The
// clock and the context are consulted on every call (StepN runs once per
// path, far below Step's 4096-step cadence), and the sticky error is the
// same Steps/Deadline/Canceled *LimitError that Step reports. A nil
// budget is unlimited, matching the rest of the pipeline.
func (b *Budget) StepN(n int64) bool {
	if b == nil {
		return true
	}
	if b.err != nil {
		return false
	}
	b.steps += n
	if b.steps > b.maxSteps {
		b.err = &LimitError{Kind: Steps, Limit: b.maxSteps, Got: b.steps, Stage: "match"}
		return false
	}
	return b.checkNow()
}

// CheckPoint is the between-paths check: context done and deadline only,
// no step consumed. It returns false once the budget is exhausted.
func (b *Budget) CheckPoint() bool {
	if b == nil {
		return true
	}
	if b.err != nil {
		return false
	}
	return b.checkNow()
}

// checkNow consults the context and the wall clock, recording the first
// failure as the sticky error.
func (b *Budget) checkNow() bool {
	if err := b.ctx.Err(); err != nil {
		kind := Canceled
		if errors.Is(err, context.DeadlineExceeded) {
			kind = Deadline
		}
		b.err = &LimitError{
			Kind:  kind,
			Limit: int64(b.lim.MatchDeadline),
			Got:   int64(time.Since(b.start)),
			Stage: "match",
			cause: err,
		}
		return false
	}
	if !b.deadline.IsZero() && time.Now().After(b.deadline) {
		b.err = &LimitError{
			Kind:  Deadline,
			Limit: int64(b.lim.MatchDeadline),
			Got:   int64(time.Since(b.start)),
			Stage: "match",
			cause: context.DeadlineExceeded,
		}
		return false
	}
	return true
}

// Steps returns the occurrence-determination steps consumed so far.
func (b *Budget) Steps() int64 {
	if b == nil {
		return 0
	}
	return b.steps
}

// Exceeded reports whether the budget has tripped.
func (b *Budget) Exceeded() bool { return b != nil && b.err != nil }

// Err returns the sticky *LimitError as an error, or nil while the budget
// holds. The concrete type is always *LimitError.
func (b *Budget) Err() error {
	if b == nil || b.err == nil {
		return nil
	}
	return b.err
}

// ParseError builds the typed error for a parse-stage structural trip.
func ParseError(kind Kind, limit, got int64) *LimitError {
	return &LimitError{Kind: kind, Limit: limit, Got: got, Stage: "parse"}
}
