// Package xmlevents drives an encoding/xml token loop and dispatches
// element events to caller-supplied handlers. It is the one shared decode
// loop of the baseline engines (yfilter, xtrie, fsmfilter, indexfilter),
// which deliberately stay on encoding/xml: they are the measurement
// baselines the zero-copy scanner in internal/xmlscan is compared
// against, so their parsing cost must remain the stdlib's.
package xmlevents

import (
	"encoding/xml"
	"fmt"
	"io"
)

// ForEach decodes r token by token, calling start for every
// xml.StartElement and end for every xml.EndElement, until EOF or error.
// Character data, comments, processing instructions and directives are
// skipped. Decoder errors are wrapped as "<pkg>: <err>"; handler errors
// are returned verbatim (handlers carry their own package prefix). A nil
// handler skips its event kind.
func ForEach(r io.Reader, pkg string, start func(xml.StartElement) error, end func(xml.EndElement) error) error {
	dec := xml.NewDecoder(r)
	for {
		tok, err := dec.Token()
		if err == io.EOF {
			return nil
		}
		if err != nil {
			return fmt.Errorf("%s: %w", pkg, err)
		}
		switch t := tok.(type) {
		case xml.StartElement:
			if start != nil {
				if err := start(t); err != nil {
					return err
				}
			}
		case xml.EndElement:
			if end != nil {
				if err := end(t); err != nil {
					return err
				}
			}
		}
	}
}
