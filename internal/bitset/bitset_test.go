package bitset

import (
	"math/rand"
	"testing"
)

func TestWordsAndTailMask(t *testing.T) {
	cases := []struct {
		n     int
		words int
		mask  uint64
	}{
		{0, 0, ^uint64(0)},
		{1, 1, 1},
		{63, 1, 1<<63 - 1},
		{64, 1, ^uint64(0)},
		{65, 2, 1},
		{128, 2, ^uint64(0)},
		{130, 3, 3},
	}
	for _, c := range cases {
		if got := Words(c.n); got != c.words {
			t.Errorf("Words(%d) = %d, want %d", c.n, got, c.words)
		}
		if got := TailMask(c.n); got != c.mask {
			t.Errorf("TailMask(%d) = %#x, want %#x", c.n, got, c.mask)
		}
	}
}

func TestSetGetClear(t *testing.T) {
	const n = 200
	b := make([]uint64, Words(n))
	ref := make(map[int]bool)
	rng := rand.New(rand.NewSource(1))
	for step := 0; step < 1000; step++ {
		i := rng.Intn(n)
		if rng.Intn(2) == 0 {
			Set(b, i)
			ref[i] = true
		} else {
			Clear(b, i)
			delete(ref, i)
		}
	}
	for i := 0; i < n; i++ {
		if Get(b, i) != ref[i] {
			t.Fatalf("bit %d: got %v, want %v", i, Get(b, i), ref[i])
		}
	}
	if got := Count(b); got != len(ref) {
		t.Fatalf("Count = %d, want %d", got, len(ref))
	}
}

func TestAndOrZero(t *testing.T) {
	a := []uint64{0xff00ff00, 0x0f0f, 0xffff}
	b := []uint64{0x00ffff00, 0xf00f}
	And(a, b)
	want := []uint64{0xff00ff00 & 0x00ffff00, 0x0f0f & 0xf00f, 0xffff}
	for i := range a {
		if a[i] != want[i] {
			t.Fatalf("And word %d = %#x, want %#x", i, a[i], want[i])
		}
	}
	Or(a, b)
	for i := range b {
		if a[i]&b[i] != b[i] {
			t.Fatalf("Or word %d missing bits", i)
		}
	}
	Zero(a)
	if Count(a) != 0 || NonZeroWords(a) != 0 {
		t.Fatal("Zero left bits set")
	}
}

func TestForEachAscending(t *testing.T) {
	b := make([]uint64, 3)
	want := []int{0, 1, 63, 64, 100, 191}
	for _, i := range want {
		Set(b, i)
	}
	var got []int
	ForEach(b, func(i int) { got = append(got, i) })
	if len(got) != len(want) {
		t.Fatalf("ForEach visited %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("ForEach visited %v, want %v", got, want)
		}
	}
	if nz := NonZeroWords(b); nz != 3 {
		t.Fatalf("NonZeroWords = %d, want 3", nz)
	}
}
