// Package bitset provides the dense []uint64 bitset primitives of the
// columnar batch matcher: expression membership and per-level match state
// are packed 64 columns to a word, so one AND/OR advances 64 expressions
// at once (the software analog of the FPGA filtering papers' parallel
// evaluation). The package is deliberately minimal — fixed-width dense
// words, no growth policy, no iterator abstraction — because the matcher's
// sweep loop owns the layout and fuses the hot operations itself; what
// lives here are the primitives that loop and its tests share.
package bitset

import "math/bits"

// WordBits is the number of columns per word.
const WordBits = 64

// Words returns the number of words needed to hold n bits.
func Words(n int) int { return (n + WordBits - 1) / WordBits }

// Set sets bit i. The caller guarantees i < len(b)*WordBits.
func Set(b []uint64, i int) { b[i>>6] |= 1 << (uint(i) & 63) }

// Clear clears bit i. The caller guarantees i < len(b)*WordBits.
func Clear(b []uint64, i int) { b[i>>6] &^= 1 << (uint(i) & 63) }

// Get reports bit i. The caller guarantees i < len(b)*WordBits.
func Get(b []uint64, i int) bool { return b[i>>6]&(1<<(uint(i)&63)) != 0 }

// TailMask returns the valid-bit mask of the last word covering n bits:
// all ones when n is a multiple of WordBits (and for n == 0), otherwise
// the low n%WordBits bits.
func TailMask(n int) uint64 {
	if r := n & 63; r != 0 {
		return (1 << uint(r)) - 1
	}
	return ^uint64(0)
}

// Zero clears every word.
func Zero(b []uint64) {
	for i := range b {
		b[i] = 0
	}
}

// And intersects src into dst word-wise over their common length.
func And(dst, src []uint64) {
	n := min(len(dst), len(src))
	for i := 0; i < n; i++ {
		dst[i] &= src[i]
	}
}

// Or unions src into dst word-wise over their common length.
func Or(dst, src []uint64) {
	n := min(len(dst), len(src))
	for i := 0; i < n; i++ {
		dst[i] |= src[i]
	}
}

// Count returns the number of set bits.
func Count(b []uint64) int {
	n := 0
	for _, w := range b {
		n += bits.OnesCount64(w)
	}
	return n
}

// NonZeroWords returns the number of words with at least one set bit —
// the numerator of the sweep-occupancy ratio the matcher reports.
func NonZeroWords(b []uint64) int {
	n := 0
	for _, w := range b {
		if w != 0 {
			n++
		}
	}
	return n
}

// ForEach calls fn with the index of every set bit, ascending.
func ForEach(b []uint64, fn func(i int)) {
	for w, word := range b {
		base := w << 6
		for word != 0 {
			fn(base + bits.TrailingZeros64(word))
			word &= word - 1
		}
	}
}
