package cluster_test

import (
	"context"
	"fmt"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"predfilter"
	"predfilter/internal/cluster"
	"predfilter/internal/server"
)

// TestClusterSubscribeLostAck is the wedge regression: a shard that
// commits a registration but loses the ack must not pin the SID sequence.
// The coordinator burns the sid, keeps its matches out of publish
// results while the shard-side copy lingers, reaps it once the shard
// answers again, and every subsequent Subscribe succeeds.
func TestClusterSubscribeLostAck(t *testing.T) {
	srv := server.New(server.Config{})
	var blackhole atomic.Bool
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if blackhole.Load() {
			switch {
			case r.Method == http.MethodPost && r.URL.Path == "/subscriptions":
				// The shard commits; the ack is "lost in transit".
				rec := httptest.NewRecorder()
				srv.ServeHTTP(rec, r)
				http.Error(w, "lost ack", http.StatusServiceUnavailable)
				return
			case r.Method == http.MethodDelete:
				// Cleanup cannot get through either.
				http.Error(w, "unreachable", http.StatusServiceUnavailable)
				return
			}
		}
		srv.ServeHTTP(w, r)
	}))
	defer ts.Close()

	c, err := cluster.New(cluster.Config{
		Shards:  []cluster.ShardSpec{{Name: "shard-0", Addr: ts.URL}},
		Retries: -1, // single attempt: the failure surfaces immediately
	})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	ctx := context.Background()

	blackhole.Store(true)
	if _, err := c.Subscribe(ctx, "/nitf/head/title"); err == nil {
		t.Fatal("subscribe through the blackhole unexpectedly succeeded")
	}
	// The shard holds the orphaned registration under sid 0.
	if _, held := srv.SubscriptionIDs()[0]; !held {
		t.Fatal("test setup: shard did not commit the orphaned registration")
	}
	blackhole.Store(false)

	// The orphan's matches must not surface: it has no coordinator record.
	doc := []byte("<nitf><head><title>x</title></head><body/></nitf>")
	res, err := c.Publish(ctx, doc)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.SIDs) != 0 {
		t.Fatalf("publish surfaced orphaned sids %v", res.SIDs)
	}
	if _, ok := c.OwnerOf(0); ok {
		t.Fatal("orphaned sid 0 has an owner record")
	}

	// The next subscribe must not collide with the orphan (no 409 wedge):
	// the burned sid is skipped, and the reap pass clears the shard-side
	// copy.
	sid, err := c.Subscribe(ctx, "/nitf/body")
	if err != nil {
		t.Fatalf("subscribe after lost ack: %v", err)
	}
	if sid != 1 {
		t.Fatalf("subscribe after lost ack assigned sid %d, want 1 (0 is burned)", sid)
	}
	ids := srv.SubscriptionIDs()
	if _, held := ids[0]; held {
		t.Fatal("orphaned sid 0 still registered on the shard after reap")
	}
	if _, held := ids[1]; !held {
		t.Fatal("sid 1 missing on the shard")
	}
	res, err = c.Publish(ctx, doc)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.SIDs) != 1 || res.SIDs[0] != 1 {
		t.Fatalf("publish after reap matched %v, want [1]", res.SIDs)
	}
}

// TestClusterSubscribeRefusalKeepsForeignData: when a shard answers a
// subscribe with a permanent refusal (409 — the sid is live with an
// expression this coordinator never placed, e.g. after a restart
// without Config.Recover), the failure cleanup must not delete that
// foreign subscription: the shard deliberately committed nothing of
// ours, and the 409'd copy is live data.
func TestClusterSubscribeRefusalKeepsForeignData(t *testing.T) {
	set := newShardSet(t, 1)
	ctx := context.Background()

	first := newTestCoordinator(t, set.specs)
	if _, err := first.Subscribe(ctx, "/nitf/head/title"); err != nil {
		t.Fatal(err)
	}
	first.Close()

	// A fresh coordinator without recovery: its sid 0 collides.
	c := newTestCoordinator(t, set.specs)
	if _, err := c.Subscribe(ctx, "/nitf/body"); err == nil ||
		!strings.Contains(err.Error(), "different expression") {
		t.Fatalf("colliding subscribe: err = %v, want the shard's 409", err)
	}
	if _, held := set.servers[0].SubscriptionIDs()[0]; !held {
		t.Fatal("subscribe-failure cleanup deleted the pre-existing subscription")
	}
	// The refusal burned nothing: the recovery path still sees sid 0.
	if st := c.Stats(); st.SubscribedNext != 0 {
		t.Fatalf("permanent refusal advanced next sid to %d", st.SubscribedNext)
	}
}

// TestClusterCoordinatorRecover restarts the coordinator in front of
// populated shards: Config.Recover rebuilds the ownership records and
// resumes the SID sequence from the shards' live sets, so subscribes,
// unsubscribes and routing all keep working.
func TestClusterCoordinatorRecover(t *testing.T) {
	w := testWorkload(t, 60, 4)
	ctx := context.Background()
	set := newShardSet(t, 2)

	first := newTestCoordinator(t, set.specs)
	for _, xpe := range w.XPEs {
		if _, err := first.Subscribe(ctx, xpe); err != nil {
			t.Fatal(err)
		}
	}
	removed := []predfilter.SID{3, 7}
	for _, sid := range removed {
		if err := first.Unsubscribe(ctx, sid); err != nil {
			t.Fatal(err)
		}
	}
	first.Close()

	c, err := cluster.New(cluster.Config{Shards: set.specs, Recover: true})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	st := c.Stats()
	if want := len(w.XPEs) - len(removed); st.Subscriptions != want {
		t.Fatalf("recovered %d subscriptions, want %d", st.Subscriptions, want)
	}
	if st.SubscribedNext != uint32(len(w.XPEs)) {
		t.Fatalf("recovered next sid %d, want %d", st.SubscribedNext, len(w.XPEs))
	}
	// Every recorded owner actually holds its subscription.
	holds := map[string]map[predfilter.SID]string{}
	for i, srv := range set.servers {
		holds[fmt.Sprintf("shard-%d", i)] = srv.SubscriptionIDs()
	}
	for i := range w.XPEs {
		sid := predfilter.SID(i)
		owner, ok := c.OwnerOf(sid)
		if sid == removed[0] || sid == removed[1] {
			if ok {
				t.Fatalf("unsubscribed sid %d resurrected by recovery", sid)
			}
			continue
		}
		if !ok {
			t.Fatalf("sid %d lost by recovery", sid)
		}
		if _, held := holds[owner][sid]; !held {
			t.Fatalf("sid %d recovered onto %s, which does not hold it", sid, owner)
		}
	}
	// The sequence resumes with no collision, and removal still routes.
	sid, err := c.Subscribe(ctx, w.XPEs[0])
	if err != nil {
		t.Fatalf("subscribe after recovery: %v", err)
	}
	if sid != predfilter.SID(len(w.XPEs)) {
		t.Fatalf("subscribe after recovery assigned sid %d, want %d", sid, len(w.XPEs))
	}
	if err := c.Unsubscribe(ctx, 0); err != nil {
		t.Fatalf("unsubscribe after recovery: %v", err)
	}
	if res, err := c.Publish(ctx, w.Docs[0]); err != nil || res.Degraded {
		t.Fatalf("publish after recovery: res=%+v err=%v", res, err)
	}
}

// TestClusterRecoverDuplicateCopy feeds recovery the aftermath of a
// migration that crashed between its add and its remove: the same
// (id, expression) live on two shards. Recovery keeps one copy, deletes
// the stray, and records the kept shard as owner.
func TestClusterRecoverDuplicateCopy(t *testing.T) {
	set := newShardSet(t, 2)
	for _, srv := range set.servers {
		if err := srv.ApplyAdd(5, "/nitf/head/title"); err != nil {
			t.Fatal(err)
		}
	}
	c, err := cluster.New(cluster.Config{Shards: set.specs, Recover: true})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	owner, ok := c.OwnerOf(5)
	if !ok {
		t.Fatal("duplicated sid lost by recovery")
	}
	copies := 0
	for i, srv := range set.servers {
		if _, held := srv.SubscriptionIDs()[5]; held {
			copies++
			if name := fmt.Sprintf("shard-%d", i); name != owner {
				t.Fatalf("surviving copy on %s, but owner recorded as %s", name, owner)
			}
		}
	}
	if copies != 1 {
		t.Fatalf("%d copies survive recovery, want 1", copies)
	}
}

// TestClusterRecoverUnreachableShard: recovery must refuse to guess — a
// shard that cannot be listed fails New rather than silently re-issuing
// its live ids.
func TestClusterRecoverUnreachableShard(t *testing.T) {
	set := newShardSet(t, 1)
	dead := httptest.NewServer(http.NotFoundHandler())
	deadURL := dead.URL
	dead.Close()
	_, err := cluster.New(cluster.Config{
		Shards: []cluster.ShardSpec{
			set.specs[0],
			{Name: "shard-dead", Addr: deadURL},
		},
		Recover: true,
	})
	if err == nil || !strings.Contains(err.Error(), "recover") {
		t.Fatalf("recovery over a dead shard: err = %v, want recover error", err)
	}
}

// TestClusterPublishDuringSlowSubscribe pins the lock split: a subscribe
// stalled inside its shard call must not stall the publish path (or
// Stats), because the coordinator no longer holds its state lock across
// shard HTTP calls.
func TestClusterPublishDuringSlowSubscribe(t *testing.T) {
	gate := make(chan struct{})
	var gateOnce sync.Once
	release := func() { gateOnce.Do(func() { close(gate) }) }
	defer release()

	set := &shardSet{}
	for i := 0; i < 2; i++ {
		srv := server.New(server.Config{})
		ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
			if r.Method == http.MethodPost && r.URL.Path == "/subscriptions" {
				<-gate
			}
			srv.ServeHTTP(w, r)
		}))
		t.Cleanup(ts.Close)
		set.servers = append(set.servers, srv)
		set.specs = append(set.specs, cluster.ShardSpec{Name: fmt.Sprintf("shard-%d", i), Addr: ts.URL})
	}
	c := newTestCoordinator(t, set.specs)

	subDone := make(chan error, 1)
	go func() {
		_, err := c.Subscribe(context.Background(), "/nitf/head/title")
		subDone <- err
	}()
	// Let the subscribe reach the gated shard call.
	time.Sleep(50 * time.Millisecond)

	ctx, cancel := context.WithTimeout(context.Background(), 3*time.Second)
	defer cancel()
	res, err := c.Publish(ctx, []byte("<nitf><head/></nitf>"))
	if err != nil {
		t.Fatalf("publish while a subscribe is stalled: %v", err)
	}
	if res.Degraded {
		t.Fatalf("publish degraded while a subscribe is stalled: %+v", res)
	}
	_ = c.Stats() // must not block either
	select {
	case err := <-subDone:
		t.Fatalf("subscribe finished before the gate opened (err=%v); the test raced", err)
	default:
	}
	release()
	if err := <-subDone; err != nil {
		t.Fatalf("gated subscribe: %v", err)
	}
}

// TestClusterCloseConcurrent: Close is idempotent and safe to race.
func TestClusterCloseConcurrent(t *testing.T) {
	set := newShardSet(t, 1)
	c, err := cluster.New(cluster.Config{
		Shards:         set.specs,
		HealthInterval: 10 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	var wg sync.WaitGroup
	for i := 0; i < 4; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			c.Close()
		}()
	}
	wg.Wait()
	c.Close()
}

// TestClusterRetriesDisabled: Retries = -1 is the documented at-most-once
// opt-out — a failing shard is skipped after exactly one attempt, while
// the zero value keeps the default retry budget.
func TestClusterRetriesDisabled(t *testing.T) {
	live := newShardSet(t, 1)
	dead := httptest.NewServer(http.NotFoundHandler())
	deadURL := dead.URL
	dead.Close()
	specs := []cluster.ShardSpec{
		live.specs[0],
		{Name: "shard-dead", Addr: deadURL},
	}
	retriesAfterPublish := func(t *testing.T, retries int) int64 {
		t.Helper()
		c, err := cluster.New(cluster.Config{
			Shards:       specs,
			Retries:      retries,
			RetryBackoff: time.Millisecond,
		})
		if err != nil {
			t.Fatal(err)
		}
		defer c.Close()
		res, err := c.Publish(context.Background(), []byte("<nitf/>"))
		if err != nil {
			t.Fatal(err)
		}
		if !res.Degraded || len(res.Skipped) != 1 || res.Skipped[0] != "shard-dead" {
			t.Fatalf("publish result %+v, want shard-dead skipped", res)
		}
		for _, s := range c.Stats().PerShard {
			if s.Name == "shard-dead" {
				return s.Retries
			}
		}
		t.Fatal("shard-dead missing from stats")
		return 0
	}
	if got := retriesAfterPublish(t, -1); got != 0 {
		t.Fatalf("Retries=-1 still retried %d times", got)
	}
	if got := retriesAfterPublish(t, 0); got != 2 {
		t.Fatalf("Retries=0 retried %d times, want the default 2", got)
	}
}
