package cluster_test

import (
	"context"
	"strings"
	"testing"
	"time"

	"predfilter"
	"predfilter/internal/cluster"
	"predfilter/internal/faultnet"
)

// End-to-end breaker lifecycle under a deterministic network fault: a
// partitioned shard flaps publishes into failures until the breaker
// opens, open-breaker publishes degrade fast instead of burning the
// publish timeout, and healing the link closes the breaker through a
// half-open probe.

func shardStats(t *testing.T, c *cluster.Coordinator, name string) cluster.ShardStats {
	t.Helper()
	for _, sh := range c.Stats().PerShard {
		if sh.Name == name {
			return sh
		}
	}
	t.Fatalf("no stats for shard %q", name)
	return cluster.ShardStats{}
}

func TestClusterBreakerFaultnetLifecycle(t *testing.T) {
	const publishTimeout = 400 * time.Millisecond
	w := testWorkload(t, 40, 6)
	want := singleEngineSets(t, w)
	ctx := context.Background()
	set := newShardSet(t, 2)

	px, err := faultnet.New(strings.TrimPrefix(set.https[1].URL, "http://"))
	if err != nil {
		t.Fatal(err)
	}
	defer px.Close()

	c, err := cluster.New(cluster.Config{
		Shards: []cluster.ShardSpec{
			set.specs[0],
			{Name: "shard-1", Addr: px.URL()},
		},
		PublishTimeout:   publishTimeout,
		Retries:          -1,
		BreakerThreshold: 3,
		BreakerCooldown:  250 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	for _, xpe := range w.XPEs {
		if _, err := c.Subscribe(ctx, xpe); err != nil {
			t.Fatal(err)
		}
	}

	// Healthy baseline through the transparent proxy.
	var healthyMax time.Duration
	for i, doc := range w.Docs {
		t0 := time.Now()
		res, err := c.Publish(ctx, doc)
		if err != nil || res.Degraded {
			t.Fatalf("healthy publish %d: degraded=%v err=%v", i, res.Degraded, err)
		}
		if !sidSetsEqual(res.SIDs, want[i]) {
			t.Fatalf("healthy doc %d: matched %v, want %v", i, res.SIDs, want[i])
		}
		if d := time.Since(t0); d > healthyMax {
			healthyMax = d
		}
	}
	if st := shardStats(t, c, "shard-1"); st.Breaker != "closed" {
		t.Fatalf("breaker %q under healthy traffic", st.Breaker)
	}

	// Partition shard-1. Each publish now burns the publish timeout on
	// that shard and degrades; after BreakerThreshold consecutive
	// failures the breaker opens.
	px.Partition()
	opened := false
	for i := 0; i < 10 && !opened; i++ {
		res, err := c.Publish(ctx, w.Docs[i%len(w.Docs)])
		if err != nil {
			t.Fatalf("partitioned publish errored: %v", err)
		}
		if !res.Degraded {
			t.Fatal("partitioned publish not degraded")
		}
		opened = shardStats(t, c, "shard-1").Breaker == "open"
	}
	if !opened {
		t.Fatal("breaker never opened under partition")
	}

	// Open breaker: publishes short-circuit the dead shard. The
	// acceptance bound — p99 within 2× the healthy baseline — is
	// asserted on every open-breaker publish, with a floor so a fast
	// healthy run doesn't make the bound flaky.
	bound := 2 * healthyMax
	if floor := 150 * time.Millisecond; bound < floor {
		bound = floor
	}
	for i := 0; i < 5; i++ {
		t0 := time.Now()
		res, err := c.Publish(ctx, w.Docs[i%len(w.Docs)])
		elapsed := time.Since(t0)
		if err != nil || !res.Degraded {
			t.Fatalf("open-breaker publish: degraded=%v err=%v", res.Degraded, err)
		}
		if elapsed > bound {
			t.Fatalf("open-breaker publish took %v, bound %v (healthy max %v)", elapsed, bound, healthyMax)
		}
		if !sidSetsEqual(res.SIDs, intersectOwned(t, c, "shard-0", want[i%len(w.Docs)])) {
			t.Fatalf("open-breaker publish %d: wrong surviving matches", i)
		}
	}
	st := shardStats(t, c, "shard-1")
	if st.FastFails == 0 {
		t.Fatal("open breaker recorded no fast-fails")
	}
	if st.BreakerOpens == 0 {
		t.Fatal("breaker open transition not counted")
	}

	// Heal. After the cooldown the next publish carries the half-open
	// probe, succeeds, and recloses the breaker; publishes are whole
	// again, sid for sid.
	px.Heal()
	time.Sleep(300 * time.Millisecond)
	deadline := time.Now().Add(5 * time.Second)
	for {
		res, err := c.Publish(ctx, w.Docs[0])
		if err != nil {
			t.Fatalf("publish after heal: %v", err)
		}
		if !res.Degraded && shardStats(t, c, "shard-1").Breaker == "closed" {
			if !sidSetsEqual(res.SIDs, want[0]) {
				t.Fatalf("healed publish matched %v, want %v", res.SIDs, want[0])
			}
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("breaker never reclosed after heal: %q", shardStats(t, c, "shard-1").Breaker)
		}
		time.Sleep(50 * time.Millisecond)
	}
	for i, doc := range w.Docs {
		res, err := c.Publish(ctx, doc)
		if err != nil || res.Degraded {
			t.Fatalf("post-heal publish %d: degraded=%v err=%v", i, res.Degraded, err)
		}
		if !sidSetsEqual(res.SIDs, want[i]) {
			t.Fatalf("post-heal doc %d: matched %v, want %v", i, res.SIDs, want[i])
		}
	}
}

// intersectOwned filters want down to the sids owned by shard name —
// the matches a publish can still report while every other shard is
// down.
func intersectOwned(t *testing.T, c *cluster.Coordinator, name string, want []predfilter.SID) []predfilter.SID {
	t.Helper()
	out := make([]predfilter.SID, 0, len(want))
	for _, sid := range want {
		if owner, ok := c.OwnerOf(sid); ok && owner == name {
			out = append(out, sid)
		}
	}
	return out
}

// TestClusterBreakerFlapReset: a link that flaps — fails, recovers
// before the threshold, fails again — must not open the breaker; only
// consecutive failures count.
func TestClusterBreakerFlapReset(t *testing.T) {
	w := testWorkload(t, 10, 2)
	ctx := context.Background()
	set := newShardSet(t, 2)
	px, err := faultnet.New(strings.TrimPrefix(set.https[1].URL, "http://"))
	if err != nil {
		t.Fatal(err)
	}
	defer px.Close()
	c, err := cluster.New(cluster.Config{
		Shards: []cluster.ShardSpec{
			set.specs[0],
			{Name: "shard-1", Addr: px.URL()},
		},
		PublishTimeout:   300 * time.Millisecond,
		Retries:          -1,
		BreakerThreshold: 3,
		BreakerCooldown:  10 * time.Second, // would be sticky if it opened
	})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	for _, xpe := range w.XPEs {
		if _, err := c.Subscribe(ctx, xpe); err != nil {
			t.Fatal(err)
		}
	}
	// Two failures, heal, two failures, heal: never three consecutive.
	for round := 0; round < 2; round++ {
		px.Partition()
		for i := 0; i < 2; i++ {
			res, err := c.Publish(ctx, w.Docs[0])
			if err != nil {
				t.Fatalf("partitioned publish round %d errored: %v", round, err)
			}
			if !res.Degraded {
				t.Fatal("partitioned publish not degraded")
			}
		}
		px.Heal()
		if res, err := c.Publish(ctx, w.Docs[0]); err != nil || res.Degraded {
			t.Fatalf("healed publish round %d: degraded=%v err=%v", round, res.Degraded, err)
		}
	}
	if st := shardStats(t, c, "shard-1"); st.Breaker != "closed" || st.BreakerOpens != 0 {
		t.Fatalf("flapping link opened the breaker: state %q, opens %d", st.Breaker, st.BreakerOpens)
	}
}
