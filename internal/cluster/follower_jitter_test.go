package cluster

import (
	"testing"
	"time"
)

// TestJitterIntervalBounds pins the follower poll jitter to its contract:
// uniformly within ±20% of the base interval, and actually varying.
func TestJitterIntervalBounds(t *testing.T) {
	base := 250 * time.Millisecond
	lo := time.Duration(float64(base) * 0.8)
	hi := time.Duration(float64(base) * 1.2)
	first := jitterInterval(base)
	varied := false
	for i := 0; i < 1000; i++ {
		d := jitterInterval(base)
		if d < lo || d > hi {
			t.Fatalf("jitterInterval(%v) = %v, outside [%v, %v]", base, d, lo, hi)
		}
		if d != first {
			varied = true
		}
	}
	if !varied {
		t.Error("jitterInterval returned a constant across 1000 draws")
	}
}
