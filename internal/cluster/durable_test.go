package cluster_test

import (
	"context"
	"fmt"
	"net/http"
	"net/http/httptest"
	"sync/atomic"
	"testing"
	"time"

	"predfilter"
	"predfilter/internal/cluster"
)

// Durable coordinator state: a kill -9'd coordinator restarts into a
// fully routed cluster from local state alone — routing table, SID
// counter, and orphan set — with zero shard round-trips, and publishes
// after the restart are SID-identical to an uncrashed coordinator.

// unreachableSpecs maps shard names onto an address nothing listens on:
// the restart must succeed without a single shard round-trip.
func unreachableSpecs(names ...string) []cluster.ShardSpec {
	specs := make([]cluster.ShardSpec, len(names))
	for i, n := range names {
		specs[i] = cluster.ShardSpec{Name: n, Addr: "http://127.0.0.1:1"}
	}
	return specs
}

func newDurableCoordinator(t *testing.T, specs []cluster.ShardSpec, stateDir string, recover_ bool) *cluster.Coordinator {
	t.Helper()
	c, err := cluster.New(cluster.Config{
		Shards:       specs,
		StateDir:     stateDir,
		NoSync:       true,
		Recover:      recover_,
		Retries:      1,
		RetryBackoff: 5 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	return c
}

// TestClusterDurableRestart is the acceptance property: kill -9 the
// coordinator mid-workload, restart it with every shard unreachable,
// and the full routing table, next SID, and subscription set come back
// from local state alone. A further restart against the live shards
// publishes SID-identically to an uncrashed coordinator.
func TestClusterDurableRestart(t *testing.T) {
	w := testWorkload(t, 120, 10)
	want := singleEngineSets(t, w)
	ctx := context.Background()
	set := newShardSet(t, 2)
	stateDir := t.TempDir()

	crashed := newDurableCoordinator(t, set.specs, stateDir, false)
	for i, xpe := range w.XPEs {
		if _, err := crashed.Subscribe(ctx, xpe); err != nil {
			t.Fatalf("subscribe %d: %v", i, err)
		}
	}
	removed := map[predfilter.SID]bool{2: true, 9: true}
	for sid := range removed {
		if err := crashed.Unsubscribe(ctx, sid); err != nil {
			t.Fatal(err)
		}
	}
	owners := map[predfilter.SID]string{}
	for i := range w.XPEs {
		if o, ok := crashed.OwnerOf(predfilter.SID(i)); ok {
			owners[predfilter.SID(i)] = o
		}
	}
	// Mid-workload: half the documents are in flight when the crash hits.
	for _, doc := range w.Docs[:len(w.Docs)/2] {
		if _, err := crashed.Publish(ctx, doc); err != nil {
			t.Fatal(err)
		}
	}
	// kill -9: the coordinator is dropped without Close — no snapshot, no
	// flush. Recovery replays the WAL.

	restarted := newDurableCoordinator(t,
		unreachableSpecs("shard-0", "shard-1"), stateDir, false)
	st := restarted.Stats()
	if st.Store == nil {
		t.Fatal("durable coordinator reports no store stats")
	}
	if wantSubs := len(w.XPEs) - len(removed); st.Subscriptions != wantSubs {
		t.Fatalf("recovered %d subscriptions, want %d", st.Subscriptions, wantSubs)
	}
	if st.SubscribedNext != uint32(len(w.XPEs)) {
		t.Fatalf("recovered next sid %d, want %d", st.SubscribedNext, len(w.XPEs))
	}
	for i := range w.XPEs {
		sid := predfilter.SID(i)
		owner, ok := restarted.OwnerOf(sid)
		if removed[sid] {
			if ok {
				t.Fatalf("unsubscribed sid %d resurrected by restart", sid)
			}
			continue
		}
		if !ok || owner != owners[sid] {
			t.Fatalf("sid %d: owner %q after restart, want %q", sid, owner, owners[sid])
		}
	}
	restarted.Close()

	// Restart against the live shards: the match sets are exactly what an
	// uncrashed coordinator — and a single engine minus the two removed
	// subscriptions — would report, sid for sid.
	final := newDurableCoordinator(t, set.specs, stateDir, false)
	defer final.Close()
	for i, doc := range w.Docs {
		res, err := final.Publish(ctx, doc)
		if err != nil {
			t.Fatalf("publish %d after restart: %v", i, err)
		}
		if res.Degraded {
			t.Fatalf("publish %d degraded after restart", i)
		}
		expect := make([]predfilter.SID, 0, len(want[i]))
		for _, sid := range want[i] {
			if !removed[sid] {
				expect = append(expect, sid)
			}
		}
		if !sidSetsEqual(res.SIDs, expect) {
			t.Fatalf("doc %d after restart: matched %v, want %v", i, res.SIDs, expect)
		}
	}
	// The SID sequence continues exactly where the crashed coordinator
	// left it.
	sid, err := final.Subscribe(ctx, "/nitf/head/title")
	if err != nil {
		t.Fatal(err)
	}
	if sid != predfilter.SID(len(w.XPEs)) {
		t.Fatalf("post-restart subscribe assigned sid %d, want %d", sid, len(w.XPEs))
	}
}

// TestClusterDurableOrphanPersistence: a sid burned by a lost-ack
// subscribe survives a kill -9 — without that, a restarted coordinator
// would reissue the sid while the shard still holds the half-committed
// copy (resurrecting it), or surface the orphan's matches. The reap is
// durable too: once the shard-side copy is confirmed deleted, no
// restart resurrects the orphan.
func TestClusterDurableOrphanPersistence(t *testing.T) {
	srv, blackhole := newLostAckShard(t)
	stateDir := t.TempDir()
	ctx := context.Background()

	crashed, err := cluster.New(cluster.Config{
		Shards:   []cluster.ShardSpec{{Name: "shard-0", Addr: srv.URL}},
		StateDir: stateDir,
		NoSync:   true,
		Retries:  -1,
	})
	if err != nil {
		t.Fatal(err)
	}
	blackhole.Store(true)
	if _, err := crashed.Subscribe(ctx, "/nitf/head/title"); err == nil {
		t.Fatal("subscribe through the blackhole unexpectedly succeeded")
	}
	blackhole.Store(false)
	// kill -9 with the orphan burned but never reaped.

	restarted, err := cluster.New(cluster.Config{
		Shards:   unreachableSpecs("shard-0"),
		StateDir: stateDir,
		NoSync:   true,
	})
	if err != nil {
		t.Fatal(err)
	}
	st := restarted.Stats()
	if st.Orphans != 1 {
		t.Fatalf("restart recovered %d orphans, want 1", st.Orphans)
	}
	if st.SubscribedNext != 1 {
		t.Fatalf("restart recovered next sid %d, want 1 (0 is burned)", st.SubscribedNext)
	}
	restarted.Close()

	// Against the live shard, the next subscribe skips the burned sid and
	// the reap pass clears the shard-side copy.
	live, err := cluster.New(cluster.Config{
		Shards:   []cluster.ShardSpec{{Name: "shard-0", Addr: srv.URL}},
		StateDir: stateDir,
		NoSync:   true,
		Retries:  -1,
	})
	if err != nil {
		t.Fatal(err)
	}
	sid, err := live.Subscribe(ctx, "/nitf/body")
	if err != nil {
		t.Fatal(err)
	}
	if sid != 1 {
		t.Fatalf("subscribe after restart assigned sid %d, want 1", sid)
	}
	if live.Stats().Orphans != 0 {
		t.Fatal("orphan not reaped against the live shard")
	}
	// kill -9 again: the reap must be durable.
	final, err := cluster.New(cluster.Config{
		Shards:   unreachableSpecs("shard-0"),
		StateDir: stateDir,
		NoSync:   true,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer final.Close()
	st = final.Stats()
	if st.Orphans != 0 || st.SubscribedNext != 2 || st.Subscriptions != 1 {
		t.Fatalf("after durable reap: %d orphans, next sid %d, %d subscriptions; want 0/2/1",
			st.Orphans, st.SubscribedNext, st.Subscriptions)
	}
}

// newLostAckShard is a shard whose subscribe commits but answers 503,
// and whose DELETE also fails, while the blackhole flag is set — the
// lost-ack window from coordinator_test.go, reusable.
func newLostAckShard(t *testing.T) (*httptest.Server, *atomic.Bool) {
	t.Helper()
	srv := newShardSet(t, 1)
	var blackhole atomic.Bool
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if blackhole.Load() {
			switch {
			case r.Method == http.MethodPost && r.URL.Path == "/subscriptions":
				rec := httptest.NewRecorder()
				srv.servers[0].ServeHTTP(rec, r)
				http.Error(w, "lost ack", http.StatusServiceUnavailable)
				return
			case r.Method == http.MethodDelete:
				http.Error(w, "unreachable", http.StatusServiceUnavailable)
				return
			}
		}
		srv.servers[0].ServeHTTP(w, r)
	}))
	t.Cleanup(ts.Close)
	return ts, &blackhole
}

// TestClusterDurableMigration: ownership moved by AddShard survives a
// kill -9 — the durable records track migrations, not just subscribes.
func TestClusterDurableMigration(t *testing.T) {
	w := testWorkload(t, 60, 2)
	ctx := context.Background()
	set := newShardSet(t, 2)
	stateDir := t.TempDir()

	crashed := newDurableCoordinator(t, set.specs, stateDir, false)
	for _, xpe := range w.XPEs {
		if _, err := crashed.Subscribe(ctx, xpe); err != nil {
			t.Fatal(err)
		}
	}
	srv3 := newShardSet(t, 3) // only its third server is used
	spec3 := cluster.ShardSpec{Name: "shard-2", Addr: srv3.specs[2].Addr}
	if err := crashed.AddShard(ctx, spec3); err != nil {
		t.Fatal(err)
	}
	owners := map[predfilter.SID]string{}
	movedToNew := 0
	for i := range w.XPEs {
		o, ok := crashed.OwnerOf(predfilter.SID(i))
		if !ok {
			t.Fatalf("sid %d unowned after rebalance", i)
		}
		owners[predfilter.SID(i)] = o
		if o == "shard-2" {
			movedToNew++
		}
	}
	if movedToNew == 0 {
		t.Fatal("rebalance moved nothing to the new shard; migration persistence untested")
	}
	// kill -9.

	restarted, err := cluster.New(cluster.Config{
		Shards:   unreachableSpecs("shard-0", "shard-1", "shard-2"),
		StateDir: stateDir,
		NoSync:   true,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer restarted.Close()
	for i := range w.XPEs {
		sid := predfilter.SID(i)
		if o, ok := restarted.OwnerOf(sid); !ok || o != owners[sid] {
			t.Fatalf("sid %d: owner %q after restart, want %q (migration lost)", sid, o, owners[sid])
		}
	}
}

// TestClusterDurableConfigMismatch: records routed to a shard that
// vanished from the configuration are a hard startup error — silently
// unroutable subscriptions must not pass.
func TestClusterDurableConfigMismatch(t *testing.T) {
	set := newShardSet(t, 2)
	stateDir := t.TempDir()
	ctx := context.Background()
	c := newDurableCoordinator(t, set.specs, stateDir, false)
	for i := 0; i < 8; i++ {
		if _, err := c.Subscribe(ctx, fmt.Sprintf("/nitf/body/p%d", i)); err != nil {
			t.Fatal(err)
		}
	}
	c.Close()
	if _, err := cluster.New(cluster.Config{
		Shards:   unreachableSpecs("shard-0"), // shard-1 dropped from config
		StateDir: stateDir,
		NoSync:   true,
	}); err == nil {
		t.Fatal("startup accepted records routed to an unconfigured shard")
	}
}

// TestClusterDurableVerifyRepair: with durable records, Config.Recover
// is the verify/repair pass — a shard that lost a subscription gets it
// re-subscribed, a subscription the shards hold without a record is
// adopted (and the SID sequence advances past it), and an unreachable
// shard is skipped instead of failing startup.
func TestClusterDurableVerifyRepair(t *testing.T) {
	w := testWorkload(t, 40, 2)
	ctx := context.Background()
	set := newShardSet(t, 2)
	stateDir := t.TempDir()

	c := newDurableCoordinator(t, set.specs, stateDir, false)
	for _, xpe := range w.XPEs {
		if _, err := c.Subscribe(ctx, xpe); err != nil {
			t.Fatal(err)
		}
	}
	lostOwner, _ := c.OwnerOf(4)
	c.Close()

	// Divergence the log cannot see: the owner of sid 4 loses it (wiped
	// shard state), and sid 99 appears on shard-0 with no record (a
	// shard ack whose durable record was lost).
	for i, srv := range set.servers {
		if fmt.Sprintf("shard-%d", i) == lostOwner {
			if err := srv.ApplyRemove(4); err != nil {
				t.Fatal(err)
			}
		}
	}
	if err := set.servers[0].ApplyAdd(99, "/nitf/head/title"); err != nil {
		t.Fatal(err)
	}

	repaired := newDurableCoordinator(t, set.specs, stateDir, true)
	// sid 4 is back on its owner.
	holds := map[string]map[predfilter.SID]string{}
	for i, srv := range set.servers {
		holds[fmt.Sprintf("shard-%d", i)] = srv.SubscriptionIDs()
	}
	if _, held := holds[lostOwner][4]; !held {
		t.Fatalf("verify did not re-subscribe lost sid 4 on %s", lostOwner)
	}
	// sid 99 is adopted and the sequence advances past it.
	if owner, ok := repaired.OwnerOf(99); !ok || owner != "shard-0" {
		t.Fatalf("unrecorded sid 99: owner %q, want shard-0 (adopted)", owner)
	}
	st := repaired.Stats()
	if st.SubscribedNext != 100 {
		t.Fatalf("next sid %d after adoption, want 100", st.SubscribedNext)
	}
	sid, err := repaired.Subscribe(ctx, "/nitf/body")
	if err != nil {
		t.Fatal(err)
	}
	if sid != 100 {
		t.Fatalf("subscribe after adoption assigned sid %d, want 100", sid)
	}
	repaired.Close()

	// The adoption and repair are durable: a restart with every shard
	// unreachable still knows them.
	restarted, err := cluster.New(cluster.Config{
		Shards:   unreachableSpecs("shard-0", "shard-1"),
		StateDir: stateDir,
		NoSync:   true,
	})
	if err != nil {
		t.Fatal(err)
	}
	if st := restarted.Stats(); st.SubscribedNext != 101 {
		t.Fatalf("restart after repair: next sid %d, want 101", st.SubscribedNext)
	}
	restarted.Close()

	// Verify/repair with one shard unreachable: startup succeeds (the
	// dead shard is skipped), unlike record-less recovery which must
	// refuse.
	deadTS := httptest.NewServer(http.NotFoundHandler())
	deadURL := deadTS.URL
	deadTS.Close()
	tolerant, err := cluster.New(cluster.Config{
		Shards: []cluster.ShardSpec{
			set.specs[0],
			{Name: "shard-1", Addr: deadURL},
		},
		StateDir: stateDir,
		NoSync:   true,
		Recover:  true,
	})
	if err != nil {
		t.Fatalf("verify pass failed over an unreachable shard: %v", err)
	}
	defer tolerant.Close()
	if st := tolerant.Stats(); st.SubscribedNext != 101 {
		t.Fatalf("tolerant verify lost state: next sid %d, want 101", st.SubscribedNext)
	}
}
