package cluster

import (
	"fmt"
	"testing"

	"predfilter"
)

func TestRingDeterministicPlacement(t *testing.T) {
	a := newRing([]string{"s0", "s1", "s2"}, 0)
	b := newRing([]string{"s2", "s0", "s1"}, 0) // order must not matter
	for sid := predfilter.SID(0); sid < 1000; sid++ {
		oa, err := a.ownerSID(sid)
		if err != nil {
			t.Fatal(err)
		}
		ob, err := b.ownerSID(sid)
		if err != nil {
			t.Fatal(err)
		}
		if oa != ob {
			t.Fatalf("sid %d: placement depends on insertion order (%s vs %s)", sid, oa, ob)
		}
	}
}

func TestRingSpreadsLoad(t *testing.T) {
	const shards, keys = 4, 10000
	names := make([]string, shards)
	for i := range names {
		names[i] = fmt.Sprintf("shard-%d", i)
	}
	r := newRing(names, 0)
	counts := map[string]int{}
	for sid := predfilter.SID(0); sid < keys; sid++ {
		o, err := r.ownerSID(sid)
		if err != nil {
			t.Fatal(err)
		}
		counts[o]++
	}
	if len(counts) != shards {
		t.Fatalf("only %d of %d shards own keys: %v", len(counts), shards, counts)
	}
	// With 128 vnodes per shard the imbalance stays well under 2x.
	for n, c := range counts {
		if c < keys/shards/2 || c > keys/shards*2 {
			t.Fatalf("shard %s owns %d of %d keys (counts %v)", n, c, keys, counts)
		}
	}
}

// TestRingRebalanceFraction is the consistent-hashing contract: growing
// N shards to N+1 moves close to 1/(N+1) of the keys — not ~all of them,
// the failure mode of mod-N placement — and every key that does not move
// to the new shard keeps its owner.
func TestRingRebalanceFraction(t *testing.T) {
	const keys = 20000
	for _, n := range []int{2, 4, 8} {
		names := make([]string, n)
		for i := range names {
			names[i] = fmt.Sprintf("shard-%d", i)
		}
		r := newRing(names, 0)
		before := make([]string, keys)
		for sid := 0; sid < keys; sid++ {
			o, err := r.ownerSID(predfilter.SID(sid))
			if err != nil {
				t.Fatal(err)
			}
			before[sid] = o
		}
		added := fmt.Sprintf("shard-%d", n)
		r.add(added)
		moved := 0
		for sid := 0; sid < keys; sid++ {
			o, err := r.ownerSID(predfilter.SID(sid))
			if err != nil {
				t.Fatal(err)
			}
			if o == before[sid] {
				continue
			}
			if o != added {
				t.Fatalf("n=%d sid %d moved %s→%s, not to the new shard", n, sid, before[sid], o)
			}
			moved++
		}
		want := float64(keys) / float64(n+1)
		if f := float64(moved); f < want*0.5 || f > want*1.5 {
			t.Fatalf("n=%d→%d shards moved %d keys, want ≈%.0f (±50%%)", n, n+1, moved, want)
		}

		// Removing the shard restores every prior assignment exactly.
		r.remove(added)
		for sid := 0; sid < keys; sid++ {
			o, err := r.ownerSID(predfilter.SID(sid))
			if err != nil {
				t.Fatal(err)
			}
			if o != before[sid] {
				t.Fatalf("n=%d sid %d: remove did not restore owner (%s vs %s)", n, sid, o, before[sid])
			}
		}
	}
}

func TestRingEmpty(t *testing.T) {
	r := newRing(nil, 0)
	if _, err := r.owner(42); err == nil {
		t.Fatal("empty ring resolved an owner")
	}
}
