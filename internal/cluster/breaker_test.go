package cluster

import (
	"errors"
	"net/http"
	"testing"
	"time"
)

// Breaker state machine: every transition the publish path and health
// monitor rely on, exercised directly with a controlled clock.

func TestBreakerOpensAtThreshold(t *testing.T) {
	b := newBreaker(3, time.Second)
	now := time.Unix(0, 0)
	for i := 0; i < 2; i++ {
		if !b.allow(now) {
			t.Fatalf("closed breaker refused call %d", i)
		}
		if opened := b.failure(now); opened {
			t.Fatalf("breaker opened after %d failures, threshold 3", i+1)
		}
	}
	if !b.allow(now) {
		t.Fatal("closed breaker refused the threshold call")
	}
	if !b.failure(now) {
		t.Fatal("breaker did not open at the threshold")
	}
	if st, opens, _ := b.snapshot(); st != "open" || opens != 1 {
		t.Fatalf("state %q, opens %d after threshold", st, opens)
	}
	// Open: everything inside the cooldown is refused without touching
	// the network.
	if b.allow(now.Add(time.Second - time.Millisecond)) {
		t.Fatal("open breaker granted a call inside the cooldown")
	}
	if _, _, fastFails := b.snapshot(); fastFails == 0 {
		t.Fatal("refused call not counted as a fast-fail")
	}
}

func TestBreakerSuccessResetsFailureStreak(t *testing.T) {
	b := newBreaker(3, time.Second)
	now := time.Unix(0, 0)
	b.failure(now)
	b.failure(now)
	b.success() // streak broken
	b.failure(now)
	b.failure(now)
	if st, _, _ := b.snapshot(); st != "closed" {
		t.Fatalf("breaker %q after interleaved successes; consecutive-failure counting is broken", st)
	}
}

func TestBreakerHalfOpenSingleProbe(t *testing.T) {
	b := newBreaker(1, time.Second)
	now := time.Unix(0, 0)
	b.failure(now) // open
	probeTime := now.Add(time.Second)
	if !b.allow(probeTime) {
		t.Fatal("cooldown elapsed but probe refused")
	}
	// Exactly one probe: concurrent callers are refused until it reports.
	if b.allow(probeTime) {
		t.Fatal("second concurrent probe granted")
	}
	if st, _, _ := b.snapshot(); st != "half_open" {
		t.Fatalf("state %q during probe, want half_open", st)
	}
	if reclosed := b.success(); !reclosed {
		t.Fatal("successful probe did not report reclosing")
	}
	if st, _, _ := b.snapshot(); st != "closed" {
		t.Fatalf("state %q after successful probe, want closed", st)
	}
	if !b.allow(probeTime) {
		t.Fatal("reclosed breaker refused a call")
	}
}

func TestBreakerFailedProbeReopens(t *testing.T) {
	b := newBreaker(1, time.Second)
	now := time.Unix(0, 0)
	b.failure(now)
	probeTime := now.Add(time.Second)
	if !b.allow(probeTime) {
		t.Fatal("probe refused")
	}
	if opened := b.failure(probeTime); !opened {
		t.Fatal("failed probe did not report reopening")
	}
	// The cooldown restarts from the failed probe.
	if b.allow(probeTime.Add(500 * time.Millisecond)) {
		t.Fatal("reopened breaker granted a call before the new cooldown elapsed")
	}
	if !b.allow(probeTime.Add(time.Second)) {
		t.Fatal("reopened breaker refused the next probe after its cooldown")
	}
	if _, opens, _ := b.snapshot(); opens != 2 {
		t.Fatalf("opens = %d, want 2 (threshold + failed probe)", opens)
	}
}

func TestBreakerInFlightFailureWhileOpenKeepsCooldown(t *testing.T) {
	b := newBreaker(1, time.Second)
	now := time.Unix(0, 0)
	b.failure(now) // open at t=0
	// A call that was already in flight when the breaker tripped fails
	// late; it must not push the cooldown out.
	b.failure(now.Add(900 * time.Millisecond))
	if !b.allow(now.Add(time.Second)) {
		t.Fatal("late in-flight failure extended the cooldown")
	}
}

func TestBreakerNilDisabled(t *testing.T) {
	var b *breaker
	now := time.Unix(0, 0)
	if !b.allow(now) {
		t.Fatal("nil breaker refused a call")
	}
	b.failure(now)
	b.success()
	if reclosed, opened := b.recordOutcome(errors.New("x"), now); reclosed || opened {
		t.Fatal("nil breaker reported a transition")
	}
	if st, opens, fastFails := b.snapshot(); st != "disabled" || opens != 0 || fastFails != 0 {
		t.Fatalf("nil snapshot = %q/%d/%d", st, opens, fastFails)
	}
	if b.stateGauge() != 0 {
		t.Fatal("nil breaker gauge != 0")
	}
}

// TestBreakerOutcomeClassification: deliberate shard answers — even
// error statuses, and 429 backpressure in particular — are successes;
// transport errors and transient gateway statuses are failures.
func TestBreakerOutcomeClassification(t *testing.T) {
	now := time.Unix(0, 0)
	cases := []struct {
		name    string
		err     error
		failure bool
	}{
		{"nil", nil, false},
		{"conflict 409", &shardError{status: http.StatusConflict, transient: false}, false},
		{"backpressure 429", &shardError{status: http.StatusTooManyRequests, transient: true, retryAfter: 1}, false},
		{"network", &shardError{status: 0, transient: true, msg: "dial refused"}, true},
		{"bad gateway 503", &shardError{status: http.StatusServiceUnavailable, transient: true}, true},
		{"plain error", errors.New("context deadline exceeded"), true},
	}
	for _, tc := range cases {
		b := newBreaker(1, time.Second)
		b.recordOutcome(tc.err, now)
		st, _, _ := b.snapshot()
		if tc.failure && st != "open" {
			t.Errorf("%s: breaker %q, want open (failure)", tc.name, st)
		}
		if !tc.failure && st != "closed" {
			t.Errorf("%s: breaker %q, want closed (success)", tc.name, st)
		}
	}
}

// TestBackoffBounds: attempt k draws from (0, min(base·2^(k-1), max)],
// and a 429 Retry-After raises the floor to the shard's ask.
func TestBackoffBounds(t *testing.T) {
	c := &Coordinator{cfg: Config{
		RetryBackoff:    10 * time.Millisecond,
		RetryBackoffMax: 80 * time.Millisecond,
	}}
	for attempt := 1; attempt <= 6; attempt++ {
		cap := 10 * time.Millisecond << (attempt - 1)
		if cap > 80*time.Millisecond {
			cap = 80 * time.Millisecond
		}
		for i := 0; i < 200; i++ {
			d := c.backoffFor(attempt, errors.New("transient"))
			if d <= 0 || d > cap {
				t.Fatalf("attempt %d: backoff %v outside (0, %v]", attempt, d, cap)
			}
		}
	}
	// Full jitter means the draws actually vary.
	seen := map[time.Duration]bool{}
	for i := 0; i < 50; i++ {
		seen[c.backoffFor(4, nil)] = true
	}
	if len(seen) < 2 {
		t.Fatal("backoff draws show no jitter")
	}
	// Retry-After floor: the shard asked for 1s; a draw from an 80ms cap
	// must be raised to it.
	floor := c.backoffFor(1, &shardError{status: http.StatusTooManyRequests, transient: true, retryAfter: 1})
	if floor < time.Second {
		t.Fatalf("429 Retry-After floor ignored: backoff %v", floor)
	}
}
