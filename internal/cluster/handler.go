package cluster

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"log/slog"
	"net/http"
	"strconv"
	"sync"

	"predfilter"
	"predfilter/internal/metrics"
	"predfilter/internal/store"
	"predfilter/internal/trace"
)

// The coordinator's HTTP surface mirrors one shard's API — clients point
// at a cluster the way they point at a single server:
//
//	POST   /subscriptions        {"expression": ...}  → 201 {"id": n}
//	GET    /subscriptions/{id}                        → proxied to the owning shard
//	DELETE /subscriptions/{id}                        → 204
//	POST   /publish              <xml document>       → 200 {"matches", "ids", "degraded"?, "skipped"?, "trace_id"?}
//	GET    /deliveries/{id}?max=k                     → proxied to the owning shard
//	GET    /stats                                     → cluster + per-shard counters + shard snapshots
//	GET    /metrics                                   → Prometheus text: coordinator families plus every
//	                                                    shard's families rolled up (shard="name" and
//	                                                    shard="all" aggregate series)
//	GET    /debug/flight                              → last K anomalous publishes with span trees
//	GET    /healthz                                   → 200 always
//	GET    /readyz                                    → 200, or 503 after Close
//
// A publish carrying an X-Predfilter-Trace header (or ?trace=1) is
// traced end to end: the response echoes the trace ID in both the JSON
// body and the X-Predfilter-Trace-Id header.

func (c *Coordinator) initMux() {
	c.mux = http.NewServeMux()
	c.mux.HandleFunc("POST /subscriptions", c.handleSubscribe)
	c.mux.HandleFunc("GET /subscriptions/{id}", c.proxyToOwner)
	c.mux.HandleFunc("DELETE /subscriptions/{id}", c.handleUnsubscribe)
	c.mux.HandleFunc("POST /publish", c.handlePublish)
	c.mux.HandleFunc("GET /deliveries/{id}", c.proxyToOwner)
	c.mux.HandleFunc("GET /stats", c.handleStats)
	c.mux.HandleFunc("GET /metrics", c.handleMetrics)
	c.mux.HandleFunc("GET /debug/flight", c.handleFlight)
	c.mux.HandleFunc("GET /healthz", func(w http.ResponseWriter, r *http.Request) {
		cwriteJSON(w, http.StatusOK, map[string]string{"status": "ok"})
	})
	c.mux.HandleFunc("GET /readyz", func(w http.ResponseWriter, r *http.Request) {
		if c.draining.Load() {
			w.Header().Set("Retry-After", "1")
			cwriteJSON(w, http.StatusServiceUnavailable, map[string]string{"status": "draining"})
			return
		}
		cwriteJSON(w, http.StatusOK, map[string]string{"status": "ok"})
	})
}

func (c *Coordinator) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	c.mux.ServeHTTP(w, r)
}

func cwriteJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	_ = json.NewEncoder(w).Encode(v)
}

func cwriteError(w http.ResponseWriter, status int, format string, args ...any) {
	cwriteJSON(w, status, map[string]string{"error": fmt.Sprintf(format, args...)})
}

// relayError maps a failed shard call onto the coordinator's own response:
// a deliberate shard answer keeps its status, a network failure becomes a
// 502.
func relayError(w http.ResponseWriter, err error) {
	var se *shardError
	if errors.As(err, &se) {
		cwriteError(w, se.Status(), "%s", se.msg)
		return
	}
	cwriteError(w, http.StatusBadGateway, "%v", err)
}

func (c *Coordinator) handleSubscribe(w http.ResponseWriter, r *http.Request) {
	if c.draining.Load() {
		cwriteError(w, http.StatusServiceUnavailable, "coordinator is shutting down")
		return
	}
	var req struct {
		Expression string `json:"expression"`
	}
	if err := json.NewDecoder(io.LimitReader(r.Body, 1<<20)).Decode(&req); err != nil {
		cwriteError(w, http.StatusBadRequest, "decode request: %v", err)
		return
	}
	if req.Expression == "" {
		cwriteError(w, http.StatusBadRequest, "missing expression")
		return
	}
	sid, err := c.Subscribe(r.Context(), req.Expression)
	if err != nil {
		var se *shardError
		if errors.As(err, &se) {
			relayError(w, se)
			return
		}
		cwriteError(w, http.StatusUnprocessableEntity, "%v", err)
		return
	}
	cwriteJSON(w, http.StatusCreated, map[string]any{"id": sid})
}

func (c *Coordinator) handleUnsubscribe(w http.ResponseWriter, r *http.Request) {
	sid, ok := sidFromPath(w, r)
	if !ok {
		return
	}
	if err := c.Unsubscribe(r.Context(), sid); err != nil {
		var se *shardError
		if errors.As(err, &se) {
			relayError(w, se)
			return
		}
		cwriteError(w, http.StatusNotFound, "%v", err)
		return
	}
	w.WriteHeader(http.StatusNoContent)
}

// proxyToOwner relays a per-subscription GET (subscription info,
// deliveries) to the shard holding the subscription. Delivery queues live
// on the shards; the coordinator only knows where.
func (c *Coordinator) proxyToOwner(w http.ResponseWriter, r *http.Request) {
	sid, ok := sidFromPath(w, r)
	if !ok {
		return
	}
	owner, ok := c.OwnerOf(sid)
	if !ok {
		cwriteError(w, http.StatusNotFound, "no subscription %d", sid)
		return
	}
	c.mu.Lock()
	sh := c.shards[owner]
	c.mu.Unlock()
	if sh == nil {
		cwriteError(w, http.StatusNotFound, "no subscription %d", sid)
		return
	}
	url := sh.currentAddr() + r.URL.Path
	if r.URL.RawQuery != "" {
		url += "?" + r.URL.RawQuery
	}
	req, err := http.NewRequestWithContext(r.Context(), http.MethodGet, url, nil)
	if err != nil {
		cwriteError(w, http.StatusInternalServerError, "%v", err)
		return
	}
	if v := r.Header.Get(trace.HeaderName); v != "" {
		req.Header.Set(trace.HeaderName, v)
	}
	resp, err := c.api.hc.Do(req)
	if err != nil {
		cwriteError(w, http.StatusBadGateway, "shard %s: %v", owner, err)
		return
	}
	defer resp.Body.Close()
	if ct := resp.Header.Get("Content-Type"); ct != "" {
		w.Header().Set("Content-Type", ct)
	}
	w.WriteHeader(resp.StatusCode)
	_, _ = io.Copy(w, io.LimitReader(resp.Body, 64<<20))
}

func (c *Coordinator) handlePublish(w http.ResponseWriter, r *http.Request) {
	if c.draining.Load() {
		w.Header().Set("Retry-After", "1")
		cwriteError(w, http.StatusServiceUnavailable, "coordinator is shutting down")
		return
	}
	doc, err := io.ReadAll(io.LimitReader(r.Body, c.cfg.MaxDocumentBytes+1))
	if err != nil {
		cwriteError(w, http.StatusBadRequest, "read body: %v", err)
		return
	}
	if int64(len(doc)) > c.cfg.MaxDocumentBytes {
		cwriteError(w, http.StatusRequestEntityTooLarge, "document exceeds %d bytes", c.cfg.MaxDocumentBytes)
		return
	}
	var tr *trace.Trace
	if id, parent, ok := trace.ParseHeader(r.Header.Get(trace.HeaderName)); ok {
		tr = trace.Join(id, parent)
	} else if r.URL.Query().Get("trace") == "1" {
		tr = trace.New()
	}
	ctx := r.Context()
	if tr != nil {
		ctx = trace.NewContext(ctx, tr)
	}
	res, err := c.Publish(ctx, doc)
	if tr.Enabled() {
		w.Header().Set(trace.ResponseHeaderName, tr.ID().String())
	}
	if err != nil {
		// All shards shedding load is cluster backpressure, not a gateway
		// fault: relay 429 with the largest shard Retry-After so the
		// publisher's pacing hint survives the scatter/gather hop.
		var ae *allShardsError
		if errors.As(err, &ae) && ae.rateLimited {
			if ae.retryAfter > 0 {
				w.Header().Set("Retry-After", strconv.Itoa(ae.retryAfter))
			}
			cwriteError(w, http.StatusTooManyRequests, "%v", err)
			return
		}
		relayError(w, err)
		return
	}
	resp := map[string]any{"matches": len(res.SIDs), "ids": res.SIDs}
	if res.Degraded {
		resp["degraded"] = true
		resp["skipped"] = res.Skipped
	}
	if res.TraceID != "" {
		resp["trace_id"] = res.TraceID
		w.Header().Set(trace.ResponseHeaderName, res.TraceID)
	}
	cwriteJSON(w, http.StatusOK, resp)
}

// handleFlight dumps the flight recorder: the last K anomalous or
// explicitly traced publishes, each with its span tree.
func (c *Coordinator) handleFlight(w http.ResponseWriter, r *http.Request) {
	cwriteJSON(w, http.StatusOK, map[string]any{
		"recorded": c.flight.Recorded(),
		"capacity": c.flight.Cap(),
		"records":  c.flight.Snapshot(),
	})
}

func sidFromPath(w http.ResponseWriter, r *http.Request) (predfilter.SID, bool) {
	id, err := strconv.ParseUint(r.PathValue("id"), 10, 32)
	if err != nil {
		cwriteError(w, http.StatusBadRequest, "bad subscription id %q", r.PathValue("id"))
		return 0, false
	}
	return predfilter.SID(id), true
}

// Stats is the coordinator's observable state: cluster-level counters and
// one entry per shard.
type Stats struct {
	Subscriptions  int          `json:"subscriptions"`
	Shards         int          `json:"shards"`
	Orphans        int          `json:"orphans"`
	DocsPublished  int64        `json:"docs_published"`
	DocsDegraded   int64        `json:"docs_degraded"`
	DocsFailed     int64        `json:"docs_failed"`
	Failovers      int64        `json:"failovers"`
	PerShard       []ShardStats `json:"per_shard"`
	SubscribedNext uint32       `json:"next_sid"`
	// Store reports the durable coordinator state (nil when the
	// coordinator runs without Config.StateDir).
	Store *store.CoordStats `json:"store,omitempty"`
}

// ShardStats is one shard's routing state and publish counters.
type ShardStats struct {
	Name          string  `json:"name"`
	Addr          string  `json:"addr"`
	Standby       string  `json:"standby,omitempty"`
	Promoted      bool    `json:"promoted,omitempty"`
	Healthy       bool    `json:"healthy"`
	Subscriptions int     `json:"subscriptions"`
	Published     int64   `json:"published"`
	Errors        int64   `json:"errors"`
	Retries       int64   `json:"retries"`
	Skipped       int64   `json:"skipped"`
	PublishSecs   float64 `json:"publish_seconds"`
	// Breaker is the circuit breaker state: "closed", "half_open",
	// "open", or "disabled".
	Breaker      string `json:"breaker"`
	BreakerOpens int64  `json:"breaker_opens"`
	// FastFails counts calls the open breaker refused without touching
	// the network.
	FastFails int64 `json:"fast_fails"`
}

// Stats snapshots the coordinator's counters.
func (c *Coordinator) Stats() Stats {
	c.mu.Lock()
	perShard := make(map[string]int, len(c.shards))
	for _, rec := range c.subs {
		perShard[rec.owner]++
	}
	st := Stats{
		Subscriptions:  len(c.subs),
		Shards:         len(c.shards),
		Orphans:        len(c.orphans),
		SubscribedNext: uint32(c.nextSID),
	}
	shards := make([]*shard, 0, len(c.order))
	for _, name := range c.order {
		shards = append(shards, c.shards[name])
	}
	c.mu.Unlock()
	st.DocsPublished = c.docsPublished.Load()
	st.DocsDegraded = c.docsDegraded.Load()
	st.DocsFailed = c.docsFailed.Load()
	st.Failovers = c.failovers.Load()
	if c.st != nil {
		cst := c.st.Stats()
		st.Store = &cst
	}
	for _, sh := range shards {
		sh.mu.Lock()
		addr, standby, promoted := sh.addr, sh.standby, sh.promoted
		sh.mu.Unlock()
		brkState, brkOpens, brkFastFails := sh.brk.snapshot()
		st.PerShard = append(st.PerShard, ShardStats{
			Name:          sh.name,
			Addr:          addr,
			Standby:       standby,
			Promoted:      promoted,
			Healthy:       sh.healthy.Load(),
			Subscriptions: perShard[sh.name],
			Published:     sh.published.Load(),
			Errors:        sh.errs.Load(),
			Retries:       sh.retries.Load(),
			Skipped:       sh.skipped.Load(),
			PublishSecs:   float64(sh.publishNanos.Load()) / 1e9,
			Breaker:       brkState,
			BreakerOpens:  brkOpens,
			FastFails:     brkFastFails,
		})
	}
	return st
}

// statsResponse is the coordinator's /stats document: its own counters
// (the Stats fields, inlined) plus every shard's /stats snapshot
// verbatim. A shard whose snapshot could not be fetched is named in
// scrape_errors and omitted from shard_snapshots — the response is
// marked degraded, never dropped.
type statsResponse struct {
	Stats
	ShardSnapshots map[string]json.RawMessage `json:"shard_snapshots,omitempty"`
	ScrapeErrors   []string                   `json:"scrape_errors,omitempty"`
}

func (c *Coordinator) handleStats(w http.ResponseWriter, r *http.Request) {
	shards := c.shardList()
	snaps := make([]json.RawMessage, len(shards))
	errs := make([]error, len(shards))
	var wg sync.WaitGroup
	wg.Add(len(shards))
	for i, sh := range shards {
		go func(i int, sh *shard) {
			defer wg.Done()
			ctx, cancel := context.WithTimeout(r.Context(), c.cfg.AdminTimeout)
			defer cancel()
			snaps[i], errs[i] = c.api.statsJSON(ctx, sh.currentAddr())
		}(i, sh)
	}
	wg.Wait()
	resp := statsResponse{Stats: c.Stats(), ShardSnapshots: make(map[string]json.RawMessage)}
	for i, sh := range shards {
		if errs[i] != nil {
			c.scrapeErrs.Add(1)
			resp.ScrapeErrors = append(resp.ScrapeErrors, sh.name)
			continue
		}
		resp.ShardSnapshots[sh.name] = snaps[i]
	}
	cwriteJSON(w, http.StatusOK, resp)
}

// handleMetrics exposes the coordinator's counters in the Prometheus text
// format, per-shard series labelled shard="name", followed by a rollup of
// every shard's own /metrics exposition: each shard series re-labelled
// shard="name" plus a shard="all" aggregate per series. Counter sums and
// bucket-wise histogram merges are the same operation here — all
// histograms share fixed power-of-two bounds, so summing per-le series is
// an exact merge. A shard whose scrape fails is marked (scrape_ok 0,
// scrape_errors_total) and skipped; the response is degraded, not
// dropped.
func (c *Coordinator) handleMetrics(w http.ResponseWriter, r *http.Request) {
	// Scrape every shard concurrently before rendering, so scrape_ok and
	// scrape_errors_total reflect this pass.
	shards := c.shardList()
	texts := make([]string, len(shards))
	errs := make([]error, len(shards))
	var wg sync.WaitGroup
	wg.Add(len(shards))
	for i, sh := range shards {
		go func(i int, sh *shard) {
			defer wg.Done()
			ctx, cancel := context.WithTimeout(r.Context(), c.cfg.AdminTimeout)
			defer cancel()
			texts[i], errs[i] = c.api.metricsText(ctx, sh.currentAddr())
		}(i, sh)
	}
	wg.Wait()
	roll := metrics.NewRollup()
	for i, sh := range shards {
		if errs[i] == nil {
			errs[i] = roll.Add(sh.name, texts[i])
		}
		if errs[i] != nil {
			c.scrapeErrs.Add(1)
			c.log.Warn("cluster: shard metrics scrape failed",
				slog.String("shard", sh.name),
				slog.String("error", errs[i].Error()))
		}
	}

	st := c.Stats()
	var buf bytes.Buffer
	x := metrics.NewExposition(&buf)
	x.Family("predfilter_cluster_shards", "Shards on the ring.", "gauge")
	x.Int("predfilter_cluster_shards", "", int64(st.Shards))
	x.Family("predfilter_cluster_subscriptions", "Live subscriptions across all shards.", "gauge")
	x.Int("predfilter_cluster_subscriptions", "", int64(st.Subscriptions))
	x.Family("predfilter_cluster_docs_published_total", "Documents accepted by the scatter/gather publish path.", "counter")
	x.Int("predfilter_cluster_docs_published_total", "", st.DocsPublished)
	x.Family("predfilter_cluster_docs_degraded_total", "Published documents answered with a partial match set.", "counter")
	x.Int("predfilter_cluster_docs_degraded_total", "", st.DocsDegraded)
	x.Family("predfilter_cluster_docs_failed_total", "Published documents refused outright.", "counter")
	x.Int("predfilter_cluster_docs_failed_total", "", st.DocsFailed)
	x.Family("predfilter_cluster_failovers_total", "Standby promotions.", "counter")
	x.Int("predfilter_cluster_failovers_total", "", st.Failovers)
	x.Family("predfilter_cluster_shard_subscriptions", "Subscriptions owned per shard.", "gauge")
	for _, s := range st.PerShard {
		x.Int("predfilter_cluster_shard_subscriptions", shardLabel(s.Name), int64(s.Subscriptions))
	}
	x.Family("predfilter_cluster_shard_healthy", "Last health probe outcome per shard (1 healthy).", "gauge")
	for _, s := range st.PerShard {
		v := int64(0)
		if s.Healthy {
			v = 1
		}
		x.Int("predfilter_cluster_shard_healthy", shardLabel(s.Name), v)
	}
	x.Family("predfilter_cluster_shard_published_total", "Successful per-shard publish calls.", "counter")
	for _, s := range st.PerShard {
		x.Int("predfilter_cluster_shard_published_total", shardLabel(s.Name), s.Published)
	}
	x.Family("predfilter_cluster_shard_errors_total", "Failed per-shard publish calls (after retries).", "counter")
	for _, s := range st.PerShard {
		x.Int("predfilter_cluster_shard_errors_total", shardLabel(s.Name), s.Errors)
	}
	x.Family("predfilter_cluster_shard_retries_total", "Per-shard publish attempts retried.", "counter")
	for _, s := range st.PerShard {
		x.Int("predfilter_cluster_shard_retries_total", shardLabel(s.Name), s.Retries)
	}
	x.Family("predfilter_cluster_shard_skipped_total", "Documents that skipped a shard after exhausting retries.", "counter")
	for _, s := range st.PerShard {
		x.Int("predfilter_cluster_shard_skipped_total", shardLabel(s.Name), s.Skipped)
	}
	x.Family("predfilter_cluster_shard_publish_seconds_total", "Wall time spent in per-shard publish calls.", "counter")
	for _, s := range st.PerShard {
		x.Value("predfilter_cluster_shard_publish_seconds_total", shardLabel(s.Name), s.PublishSecs)
	}
	x.Family("predfilter_cluster_breaker_state", "Circuit breaker state per shard (0 closed, 1 half-open, 2 open).", "gauge")
	for _, sh := range shards {
		x.Int("predfilter_cluster_breaker_state", shardLabel(sh.name), sh.brk.stateGauge())
	}
	x.Family("predfilter_cluster_breaker_opens_total", "Circuit breaker open transitions per shard.", "counter")
	for _, s := range st.PerShard {
		x.Int("predfilter_cluster_breaker_opens_total", shardLabel(s.Name), s.BreakerOpens)
	}
	x.Family("predfilter_cluster_breaker_fast_fails_total", "Calls refused by an open breaker without touching the network.", "counter")
	for _, s := range st.PerShard {
		x.Int("predfilter_cluster_breaker_fast_fails_total", shardLabel(s.Name), s.FastFails)
	}
	x.Family("predfilter_cluster_orphan_sids", "Burned subscription ids awaiting reap.", "gauge")
	x.Int("predfilter_cluster_orphan_sids", "", int64(st.Orphans))
	if st.Store != nil {
		x.Family("predfilter_coord_store_wal_records", "Coordinator state records since the last snapshot.", "gauge")
		x.Int("predfilter_coord_store_wal_records", "", st.Store.WALRecords)
		x.Family("predfilter_coord_store_appends_total", "Coordinator state records appended.", "counter")
		x.Int("predfilter_coord_store_appends_total", "", st.Store.Appends)
		x.Family("predfilter_coord_store_snapshots_total", "Coordinator state snapshot compactions.", "counter")
		x.Int("predfilter_coord_store_snapshots_total", "", st.Store.Snapshots)
		x.Family("predfilter_coord_store_torn_bytes", "Torn-tail bytes discarded at last coordinator state recovery.", "gauge")
		x.Int("predfilter_coord_store_torn_bytes", "", st.Store.TornBytes)
	}
	x.Family("predfilter_cluster_rpc_duration_seconds", "Coordinator-to-shard RPC latency per shard and stage (every attempt, including retried ones).", "histogram")
	for _, sh := range shards {
		for stage := 0; stage < numRPCStages; stage++ {
			s := sh.rpc[stage].Snapshot()
			if s.Count == 0 {
				continue
			}
			x.Histogram("predfilter_cluster_rpc_duration_seconds",
				shardLabel(sh.name)+","+metrics.Label("stage", rpcStageNames[stage]), s)
		}
	}
	x.Family("predfilter_cluster_gather_merge_seconds", "Gather-merge stage of scatter/gather publish.", "histogram")
	x.Histogram("predfilter_cluster_gather_merge_seconds", "", c.gatherMerge.Snapshot())
	x.Family("predfilter_cluster_scrape_errors_total", "Shard scrapes that failed during /metrics or /stats rollup.", "counter")
	x.Int("predfilter_cluster_scrape_errors_total", "", c.scrapeErrs.Load())
	x.Family("predfilter_cluster_scrape_ok", "Whether the shard's /metrics scrape succeeded on this pass (1 ok).", "gauge")
	for i, sh := range shards {
		ok := int64(1)
		if errs[i] != nil {
			ok = 0
		}
		x.Int("predfilter_cluster_scrape_ok", shardLabel(sh.name), ok)
	}
	if err := x.Err(); err != nil {
		cwriteError(w, http.StatusInternalServerError, "metrics: %v", err)
		return
	}
	if err := roll.WriteText(&buf); err != nil {
		cwriteError(w, http.StatusInternalServerError, "metrics rollup: %v", err)
		return
	}
	w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
	w.WriteHeader(http.StatusOK)
	_, _ = w.Write(buf.Bytes())
}

// shardLabel renders the shard label with the name escaped per the
// text-format rules — a shard named with quotes, backslashes or newlines
// must not corrupt the exposition.
func shardLabel(name string) string { return metrics.Label("shard", name) }
