package cluster_test

import (
	"io"
	"log/slog"
	"math"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"predfilter/internal/cluster"
	"predfilter/internal/metrics"
	"predfilter/internal/server"
	"predfilter/internal/trace"
)

func quietLogger() *slog.Logger {
	return slog.New(slog.NewTextHandler(io.Discard, nil))
}

// TestClusterTracedPublishAndFlightRecorder is the observability
// acceptance path: a two-shard cluster with one deliberately slow shard,
// a publish with ?trace=1. The response must carry the trace ID (header
// and body), and /debug/flight must hold a record for that trace whose
// span tree attributes the latency to the slow shard.
func TestClusterTracedPublishAndFlightRecorder(t *testing.T) {
	const delay = 60 * time.Millisecond
	fast := server.New(server.Config{})
	tsFast := httptest.NewServer(fast)
	defer tsFast.Close()
	slow := server.New(server.Config{})
	tsSlow := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if r.Method == http.MethodPost && r.URL.Path == "/publish" {
			time.Sleep(delay)
		}
		slow.ServeHTTP(w, r)
	}))
	defer tsSlow.Close()

	c, err := cluster.New(cluster.Config{
		Shards: []cluster.ShardSpec{
			{Name: "fast", Addr: tsFast.URL},
			{Name: "slow", Addr: tsSlow.URL},
		},
		SlowPublishThreshold: delay / 2,
		Retries:              -1,
		Logger:               quietLogger(),
	})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	front := httptest.NewServer(c)
	defer front.Close()

	resp, err := http.Post(front.URL+"/subscriptions", "application/json",
		strings.NewReader(`{"expression":"/doc/a"}`))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusCreated {
		t.Fatalf("subscribe: status %d", resp.StatusCode)
	}

	resp, err = http.Post(front.URL+"/publish?trace=1", "application/xml",
		strings.NewReader("<doc><a>x</a></doc>"))
	if err != nil {
		t.Fatal(err)
	}
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("publish: status %d", resp.StatusCode)
	}
	tid := resp.Header.Get(trace.ResponseHeaderName)
	var pub struct {
		Matches int    `json:"matches"`
		TraceID string `json:"trace_id"`
	}
	if err := jsonDecode(resp, &pub); err != nil {
		t.Fatal(err)
	}
	if tid == "" {
		t.Fatalf("no %s header on traced publish", trace.ResponseHeaderName)
	}
	if pub.TraceID != tid {
		t.Fatalf("body trace_id %q != header %q", pub.TraceID, tid)
	}
	if pub.Matches != 1 {
		t.Fatalf("matches = %d, want 1", pub.Matches)
	}

	resp, err = http.Get(front.URL + "/debug/flight")
	if err != nil {
		t.Fatal(err)
	}
	var fl struct {
		Recorded uint64          `json:"recorded"`
		Capacity int             `json:"capacity"`
		Records  []*trace.Record `json:"records"`
	}
	if err := jsonDecode(resp, &fl); err != nil {
		t.Fatal(err)
	}
	if fl.Capacity != trace.DefaultFlightRecords {
		t.Fatalf("capacity = %d, want %d", fl.Capacity, trace.DefaultFlightRecords)
	}
	var rec *trace.Record
	for _, r := range fl.Records {
		if r.TraceID == tid {
			rec = r
		}
	}
	if rec == nil {
		t.Fatalf("no flight record for trace %s (got %d records)", tid, len(fl.Records))
	}
	reasons := strings.Join(rec.Reasons, ",")
	if !strings.Contains(reasons, "traced") || !strings.Contains(reasons, "slow") {
		t.Fatalf("reasons = %v, want traced and slow", rec.Reasons)
	}
	var slowDur, fastDur int64 = -1, -1
	sawMerge := false
	for _, sp := range rec.Spans {
		switch {
		case sp.Name == "shard.publish" && sp.Shard == "slow":
			slowDur = sp.DurationNanos
		case sp.Name == "shard.publish" && sp.Shard == "fast":
			fastDur = sp.DurationNanos
		case sp.Name == "gather.merge":
			sawMerge = true
		}
	}
	if slowDur < 0 || fastDur < 0 || !sawMerge {
		t.Fatalf("span tree missing shard.publish/gather.merge spans: %+v", rec.Spans)
	}
	if slowDur < int64(delay) {
		t.Fatalf("slow shard span %dns, want >= %dns", slowDur, int64(delay))
	}
	if slowDur <= fastDur {
		t.Fatalf("span tree does not attribute latency to the slow shard: slow %dns <= fast %dns", slowDur, fastDur)
	}
}

// TestClusterDegradedPublishFlight exercises the span-synthesis path: an
// untraced publish against a cluster with one dead shard must still land
// in the flight recorder, flagged degraded, with an after-the-fact span
// tree blaming the dead shard.
func TestClusterDegradedPublishFlight(t *testing.T) {
	live := server.New(server.Config{})
	tsLive := httptest.NewServer(live)
	defer tsLive.Close()
	tsDead := httptest.NewServer(http.NotFoundHandler())
	deadURL := tsDead.URL
	tsDead.Close()

	c, err := cluster.New(cluster.Config{
		Shards: []cluster.ShardSpec{
			{Name: "live", Addr: tsLive.URL},
			{Name: "dead", Addr: deadURL},
		},
		Retries: -1,
		Logger:  quietLogger(),
	})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	front := httptest.NewServer(c)
	defer front.Close()

	resp, err := http.Post(front.URL+"/publish", "application/xml",
		strings.NewReader("<doc/>"))
	if err != nil {
		t.Fatal(err)
	}
	var pub struct {
		Degraded bool     `json:"degraded"`
		Skipped  []string `json:"skipped"`
		TraceID  string   `json:"trace_id"`
	}
	if err := jsonDecode(resp, &pub); err != nil {
		t.Fatal(err)
	}
	if resp.StatusCode != http.StatusOK || !pub.Degraded {
		t.Fatalf("status %d degraded %v, want 200 degraded", resp.StatusCode, pub.Degraded)
	}
	if pub.TraceID != "" {
		t.Fatalf("untraced publish answered trace_id %q", pub.TraceID)
	}

	resp, err = http.Get(front.URL + "/debug/flight")
	if err != nil {
		t.Fatal(err)
	}
	var fl struct {
		Records []*trace.Record `json:"records"`
	}
	if err := jsonDecode(resp, &fl); err != nil {
		t.Fatal(err)
	}
	if len(fl.Records) != 1 {
		t.Fatalf("flight records = %d, want 1", len(fl.Records))
	}
	rec := fl.Records[0]
	if rec.TraceID != "" {
		t.Fatalf("synthesized record carries trace id %q", rec.TraceID)
	}
	if !strings.Contains(strings.Join(rec.Reasons, ","), "degraded") {
		t.Fatalf("reasons = %v, want degraded", rec.Reasons)
	}
	if len(rec.Skipped) != 1 || rec.Skipped[0] != "dead" {
		t.Fatalf("skipped = %v, want [dead]", rec.Skipped)
	}
	foundDead := false
	for _, sp := range rec.Spans {
		if sp.Name == "shard.publish" && sp.Shard == "dead" {
			foundDead = true
			if sp.Error == "" {
				t.Fatal("dead shard's synthesized span has no error")
			}
		}
	}
	if !foundDead {
		t.Fatalf("no synthesized span for the dead shard: %+v", rec.Spans)
	}
}

// TestClusterMetricsRollupAggregation publishes through a two-shard
// cluster and then checks — programmatically, series by series — that
// every shard="all" sample in the coordinator's /metrics equals the sum
// of the per-shard samples of the same series. For histogram families
// the per-le equality IS the bucket-wise merge property. The whole
// exposition must also pass the strict validator.
func TestClusterMetricsRollupAggregation(t *testing.T) {
	set := newShardSet(t, 2)
	c := newTestCoordinator(t, set.specs)
	front := httptest.NewServer(c)
	defer front.Close()

	for _, expr := range []string{"/doc/a", "/doc/b[@id]"} {
		resp, err := http.Post(front.URL+"/subscriptions", "application/json",
			strings.NewReader(`{"expression":"`+expr+`"}`))
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusCreated {
			t.Fatalf("subscribe %s: status %d", expr, resp.StatusCode)
		}
	}
	for i := 0; i < 3; i++ {
		resp, err := http.Post(front.URL+"/publish", "application/xml",
			strings.NewReader(`<doc><a>x</a><b id="1"/></doc>`))
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("publish: status %d", resp.StatusCode)
		}
	}

	resp, err := http.Get(front.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	body, err := io.ReadAll(resp.Body)
	resp.Body.Close()
	if err != nil {
		t.Fatal(err)
	}
	text := string(body)
	if err := metrics.ValidateExposition(text); err != nil {
		t.Fatalf("coordinator exposition invalid: %v", err)
	}
	fams, err := metrics.ParseExposition(text)
	if err != nil {
		t.Fatal(err)
	}

	type agg struct {
		all    float64
		hasAll bool
		sum    float64
		n      int
	}
	groups := make(map[string]*agg)
	for _, f := range fams {
		for i := range f.Samples {
			s := &f.Samples[i]
			shardVal, ok := s.Label("shard")
			if !ok {
				continue
			}
			key := s.Name
			for _, lp := range s.Labels {
				if lp.Name != "shard" {
					key += "|" + lp.Name + "=" + lp.Value
				}
			}
			g := groups[key]
			if g == nil {
				g = &agg{}
				groups[key] = g
			}
			if shardVal == "all" {
				g.all, g.hasAll = s.Value, true
			} else {
				g.sum += s.Value
				g.n++
			}
		}
	}
	checked, buckets := 0, 0
	for key, g := range groups {
		if !g.hasAll {
			// Coordinator-native per-shard families have no aggregate
			// series; only rolled-up shard families do.
			if !strings.HasPrefix(key, "predfilter_cluster_") {
				t.Errorf("rolled-up series %s has no shard=\"all\" aggregate", key)
			}
			continue
		}
		if g.n != 2 {
			t.Errorf("series %s: %d per-shard samples, want 2", key, g.n)
		}
		if math.IsNaN(g.all) {
			continue
		}
		if g.all != g.sum {
			t.Errorf("series %s: shard=\"all\" %v != per-shard sum %v", key, g.all, g.sum)
		}
		checked++
		if strings.Contains(key, "_bucket|") {
			buckets++
		}
	}
	if checked == 0 {
		t.Fatal("no aggregated series checked")
	}
	if buckets == 0 {
		t.Fatal("no histogram bucket series aggregated")
	}
	if !strings.Contains(text, `predfilter_stage_duration_seconds_bucket{shard="all"`) {
		t.Fatal("stage histogram not rolled up with a shard=\"all\" aggregate")
	}
}

// TestClusterRetryAfterForwarding: when every shard sheds load with 429,
// the coordinator answers 429 itself and forwards the largest shard
// Retry-After, so the publisher's pacing hint survives scatter/gather.
func TestClusterRetryAfterForwarding(t *testing.T) {
	shed := func(after string) *httptest.Server {
		ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
			w.Header().Set("Retry-After", after)
			http.Error(w, "shedding", http.StatusTooManyRequests)
		}))
		t.Cleanup(ts.Close)
		return ts
	}
	c, err := cluster.New(cluster.Config{
		Shards: []cluster.ShardSpec{
			{Name: "a", Addr: shed("3").URL},
			{Name: "b", Addr: shed("7").URL},
		},
		Retries: -1,
		Logger:  quietLogger(),
	})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	front := httptest.NewServer(c)
	defer front.Close()

	resp, err := http.Post(front.URL+"/publish", "application/xml",
		strings.NewReader("<doc/>"))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("status %d, want 429", resp.StatusCode)
	}
	if got := resp.Header.Get("Retry-After"); got != "7" {
		t.Fatalf("Retry-After %q, want the max shard hint 7", got)
	}
}

// TestClusterMetricsDegradedScrape: a shard that cannot be scraped marks
// the rollup degraded (scrape_ok 0, scrape_errors_total) but the
// coordinator's /metrics still answers 200 with a valid exposition
// carrying the reachable shard's series.
func TestClusterMetricsDegradedScrape(t *testing.T) {
	live := server.New(server.Config{})
	tsLive := httptest.NewServer(live)
	defer tsLive.Close()
	tsDead := httptest.NewServer(http.NotFoundHandler())
	deadURL := tsDead.URL
	tsDead.Close()

	c, err := cluster.New(cluster.Config{
		Shards: []cluster.ShardSpec{
			{Name: "live", Addr: tsLive.URL},
			{Name: "dead", Addr: deadURL},
		},
		Retries: -1,
		Logger:  quietLogger(),
	})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	front := httptest.NewServer(c)
	defer front.Close()

	resp, err := http.Get(front.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	body, err := io.ReadAll(resp.Body)
	resp.Body.Close()
	if err != nil {
		t.Fatal(err)
	}
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d, want 200 on degraded scrape", resp.StatusCode)
	}
	text := string(body)
	if err := metrics.ValidateExposition(text); err != nil {
		t.Fatalf("degraded exposition invalid: %v", err)
	}
	if !strings.Contains(text, `predfilter_cluster_scrape_ok{shard="dead"} 0`) {
		t.Fatal("dead shard not marked scrape_ok 0")
	}
	if !strings.Contains(text, `predfilter_cluster_scrape_ok{shard="live"} 1`) {
		t.Fatal("live shard not marked scrape_ok 1")
	}
	if !strings.Contains(text, "predfilter_cluster_scrape_errors_total 1") {
		t.Fatal("scrape error not counted")
	}
	if !strings.Contains(text, `predfilter_docs_total{shard="live"}`) {
		t.Fatal("live shard's series missing from the degraded rollup")
	}
}
