// Package cluster shards a subscription set across N filtering shards and
// scatter/gathers published documents over all of them: the software
// analog of partitioning the expression set across parallel hardware
// engines. A Coordinator owns a consistent-hash ring that places every
// subscription id on its shard, routes subscribe/unsubscribe to the
// owner, fans each publish out to all shards with per-shard deadlines and
// retry, and merges the partial match sets into the single-engine result
// order. A shard that stays down after retries degrades the publish
// (partial match set, flagged, with the skipped shards named) instead of
// failing it; a configured standby — kept hot by WAL shipping (Follower)
// — is promoted in its place.
package cluster

import (
	"encoding/binary"
	"fmt"
	"hash/fnv"
	"sort"
	"strconv"

	"predfilter"
)

// ring is a consistent-hash ring over shard names. Each shard contributes
// vnodes virtual points, so ownership spreads evenly and adding or
// removing one shard moves only ~1/N of the keys. Placement is by
// subscription id: hashing the SID (not the expression) keeps a
// subscription on the same shard for its whole life, which is what makes
// SID-stable replay (AddWithSID) and WAL-shipped standbys line up with
// the coordinator's routing.
type ring struct {
	vnodes int
	points []ringPoint // sorted by (hash, name)
}

type ringPoint struct {
	hash uint64
	name string
}

// defaultVirtualNodes balances placement evenness (stddev of shard load
// falls as 1/sqrt(vnodes)) against ring size; 128 points per shard keeps
// the load imbalance within a few percent at any realistic shard count.
const defaultVirtualNodes = 128

func newRing(names []string, vnodes int) *ring {
	if vnodes <= 0 {
		vnodes = defaultVirtualNodes
	}
	r := &ring{vnodes: vnodes}
	for _, n := range names {
		r.add(n)
	}
	return r
}

// mix64 is a splitmix64-style finalizer. Raw FNV-1a avalanches poorly
// into the high bits for structured inputs like "shard-0#17" — without
// this pass the vnode points of sibling shards cluster in bands and one
// shard ends up owning most of the key space (a measured 68/32 split at
// two shards). The finalizer's full avalanche restores the uniform
// placement consistent hashing assumes.
func mix64(x uint64) uint64 {
	x ^= x >> 30
	x *= 0xbf58476d1ce4e5b9
	x ^= x >> 27
	x *= 0x94d049bb133111eb
	x ^= x >> 31
	return x
}

// vnodeHash hashes one virtual point. FNV-1a over "name#i" plus the
// avalanche finalizer is stable across processes and runs — the ring
// must place identically on every coordinator that sees the same shard
// list.
func vnodeHash(name string, i int) uint64 {
	h := fnv.New64a()
	h.Write([]byte(name))
	h.Write([]byte{'#'})
	h.Write([]byte(strconv.Itoa(i)))
	return mix64(h.Sum64())
}

// sidKey hashes a subscription id onto the ring's key space.
func sidKey(sid predfilter.SID) uint64 {
	var b [8]byte
	binary.LittleEndian.PutUint64(b[:], uint64(sid))
	h := fnv.New64a()
	h.Write(b[:])
	return mix64(h.Sum64())
}

func (r *ring) add(name string) {
	for i := 0; i < r.vnodes; i++ {
		r.points = append(r.points, ringPoint{vnodeHash(name, i), name})
	}
	r.sortPoints()
}

func (r *ring) remove(name string) {
	out := r.points[:0]
	for _, p := range r.points {
		if p.name != name {
			out = append(out, p)
		}
	}
	r.points = out
}

func (r *ring) sortPoints() {
	sort.Slice(r.points, func(i, j int) bool {
		if r.points[i].hash != r.points[j].hash {
			return r.points[i].hash < r.points[j].hash
		}
		// Identical 64-bit points from different shards are vanishingly
		// rare; break the tie deterministically so every coordinator
		// resolves ownership identically.
		return r.points[i].name < r.points[j].name
	})
}

// owner returns the shard owning key: the first virtual point at or after
// the key, wrapping at the top of the ring.
func (r *ring) owner(key uint64) (string, error) {
	if len(r.points) == 0 {
		return "", fmt.Errorf("cluster: ring is empty")
	}
	i := sort.Search(len(r.points), func(i int) bool { return r.points[i].hash >= key })
	if i == len(r.points) {
		i = 0
	}
	return r.points[i].name, nil
}

// ownerSID returns the shard owning a subscription id.
func (r *ring) ownerSID(sid predfilter.SID) (string, error) { return r.owner(sidKey(sid)) }
