package cluster_test

import (
	"context"
	"net"
	"net/http"
	"net/http/httptest"
	"reflect"
	"testing"
	"time"

	"predfilter"
	"predfilter/internal/cluster"
	"predfilter/internal/server"
)

// newPrimary opens a persistent server over dir behind a real listener.
func newPrimary(t *testing.T, dir string) (*server.Server, *httptest.Server) {
	t.Helper()
	srv, err := server.Open(server.Config{StateDir: dir, NoSync: true})
	if err != nil {
		t.Fatal(err)
	}
	return srv, httptest.NewServer(srv)
}

// TestFollowerTailsWAL is the shipping happy path: bootstrap snapshot,
// then incremental tails that carry exactly the operations since the
// cursor — no re-reading of the whole log per poll.
func TestFollowerTailsWAL(t *testing.T) {
	primary, ts := newPrimary(t, t.TempDir())
	defer primary.Close()
	defer ts.Close()
	standby := server.New(server.Config{})
	fol, err := cluster.NewFollower(cluster.FollowerConfig{Primary: ts.URL, Target: standby})
	if err != nil {
		t.Fatal(err)
	}
	ctx := context.Background()

	if n, snap, err := fol.Poll(ctx); err != nil || !snap || n != 0 {
		t.Fatalf("bootstrap poll = (%d, %v, %v), want empty snapshot", n, snap, err)
	}

	if err := primary.ApplyAdd(0, "/a/b"); err != nil {
		t.Fatal(err)
	}
	if err := primary.ApplyAdd(5, "/c/d[@e=\"f\"]"); err != nil {
		t.Fatal(err)
	}
	if n, snap, err := fol.Poll(ctx); err != nil || snap || n != 2 {
		t.Fatalf("tail poll = (%d, %v, %v), want 2 tailed ops", n, snap, err)
	}
	if got := standby.SubscriptionIDs(); !reflect.DeepEqual(got, primary.SubscriptionIDs()) {
		t.Fatalf("standby = %v, primary = %v", got, primary.SubscriptionIDs())
	}

	// Removal ships too, and an idle primary ships nothing.
	if err := primary.ApplyRemove(0); err != nil {
		t.Fatal(err)
	}
	if n, snap, err := fol.Poll(ctx); err != nil || snap || n != 1 {
		t.Fatalf("remove poll = (%d, %v, %v)", n, snap, err)
	}
	if n, snap, err := fol.Poll(ctx); err != nil || snap || n != 0 {
		t.Fatalf("idle poll = (%d, %v, %v), want empty tail", n, snap, err)
	}
	if got := standby.SubscriptionIDs(); len(got) != 1 || got[5] == "" {
		t.Fatalf("standby after remove = %v", got)
	}
}

// TestFollowerResyncsAfterCompaction: a snapshot on the primary truncates
// the log and bumps the epoch; the follower's next poll detects the stale
// cursor and reconciles from a full snapshot instead of silently missing
// operations.
func TestFollowerResyncsAfterCompaction(t *testing.T) {
	primary, ts := newPrimary(t, t.TempDir())
	defer primary.Close()
	defer ts.Close()
	standby := server.New(server.Config{})
	fol, err := cluster.NewFollower(cluster.FollowerConfig{Primary: ts.URL, Target: standby})
	if err != nil {
		t.Fatal(err)
	}
	ctx := context.Background()
	if _, _, err := fol.Poll(ctx); err != nil {
		t.Fatal(err)
	}
	for sid, expr := range map[predfilter.SID]string{0: "/a", 1: "/b", 2: "/c"} {
		if err := primary.ApplyAdd(sid, expr); err != nil {
			t.Fatal(err)
		}
	}
	// Compact while the follower is behind.
	resp, err := http.Post(ts.URL+"/admin/snapshot", "", nil)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("admin snapshot = %d", resp.StatusCode)
	}
	n, snap, err := fol.Poll(ctx)
	if err != nil || !snap || n != 3 {
		t.Fatalf("post-compaction poll = (%d, %v, %v), want 3-entry snapshot reconcile", n, snap, err)
	}
	if got := standby.SubscriptionIDs(); !reflect.DeepEqual(got, primary.SubscriptionIDs()) {
		t.Fatalf("standby = %v, primary = %v", got, primary.SubscriptionIDs())
	}
	// Back to cheap tails afterwards.
	if err := primary.ApplyAdd(7, "/d"); err != nil {
		t.Fatal(err)
	}
	if n, snap, err := fol.Poll(ctx); err != nil || snap || n != 1 {
		t.Fatalf("post-resync tail = (%d, %v, %v)", n, snap, err)
	}
}

// TestFollowerResyncsAfterPrimaryRestart: a restarted primary gets a
// fresh run id, so a cursor from before the restart can never be trusted
// — offsets may alias a rewritten log. The follower detects the run
// change and resyncs; divergent standby state (here: a subscription the
// primary lost before restart) is reconciled away.
func TestFollowerResyncsAfterPrimaryRestart(t *testing.T) {
	dir := t.TempDir()
	primary, ts := newPrimary(t, dir)
	standby := server.New(server.Config{})
	fol, err := cluster.NewFollower(cluster.FollowerConfig{Primary: ts.URL, Target: standby})
	if err != nil {
		t.Fatal(err)
	}
	ctx := context.Background()
	if err := primary.ApplyAdd(0, "/a/b"); err != nil {
		t.Fatal(err)
	}
	if _, _, err := fol.Poll(ctx); err != nil {
		t.Fatal(err)
	}

	// Restart the primary on the same state directory AND the same
	// address — a follower keeps polling the address it was configured
	// with across its primary's restarts.
	addr := ts.Listener.Addr().String()
	ts.Close()
	if err := primary.Close(); err != nil {
		t.Fatal(err)
	}
	primary2, err := server.Open(server.Config{StateDir: dir, NoSync: true})
	if err != nil {
		t.Fatal(err)
	}
	defer primary2.Close()
	l, err := net.Listen("tcp", addr)
	if err != nil {
		t.Skipf("cannot rebind %s: %v", addr, err)
	}
	ts2 := httptest.NewUnstartedServer(primary2)
	ts2.Listener.Close()
	ts2.Listener = l
	ts2.Start()
	defer ts2.Close()
	if got := primary2.SubscriptionIDs(); len(got) != 1 {
		t.Fatalf("primary lost state across restart: %v", got)
	}

	// Drift the standby while disconnected; the resync must undo it.
	if err := standby.ApplyAdd(99, "/z"); err != nil {
		t.Fatal(err)
	}
	fol2, err := cluster.NewFollower(cluster.FollowerConfig{Primary: ts2.URL, Target: standby})
	if err != nil {
		t.Fatal(err)
	}
	// Carry the stale cursor over by polling once against the old run id:
	// fol2 has no cursor, which exercises bootstrap; fol (old cursor)
	// against the new primary exercises the run-mismatch path. Both must
	// land on a snapshot reconcile.
	for name, f := range map[string]*cluster.Follower{"stale-cursor": fol, "fresh": fol2} {
		if _, snap, err := f.Poll(ctx); err != nil || !snap {
			t.Fatalf("%s poll after restart: snap=%v err=%v", name, snap, err)
		}
	}
	if got := standby.SubscriptionIDs(); !reflect.DeepEqual(got, primary2.SubscriptionIDs()) {
		t.Fatalf("standby = %v, primary = %v", got, primary2.SubscriptionIDs())
	}
	if _, ok := standby.SubscriptionIDs()[99]; ok {
		t.Fatal("reconcile kept a subscription the primary does not have")
	}
}

// TestFollowerBackgroundLoop exercises Start/Stop: the loop converges the
// standby without explicit polls.
func TestFollowerBackgroundLoop(t *testing.T) {
	primary, ts := newPrimary(t, t.TempDir())
	defer primary.Close()
	defer ts.Close()
	standby := server.New(server.Config{})
	fol, err := cluster.NewFollower(cluster.FollowerConfig{
		Primary:  ts.URL,
		Target:   standby,
		Interval: 5 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := primary.ApplyAdd(3, "/x/y"); err != nil {
		t.Fatal(err)
	}
	fol.Start()
	defer fol.Stop()
	deadline := time.After(2 * time.Second)
	for len(standby.SubscriptionIDs()) == 0 {
		select {
		case <-deadline:
			t.Fatalf("standby never converged: %v", standby.SubscriptionIDs())
		case <-time.After(5 * time.Millisecond):
		}
	}
	if got := standby.SubscriptionIDs(); got[3] != "/x/y" {
		t.Fatalf("standby converged to %v", got)
	}
}
