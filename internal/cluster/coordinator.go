package cluster

import (
	"context"
	"errors"
	"fmt"
	"log/slog"
	"net/http"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"predfilter"
	"predfilter/internal/metrics"
	"predfilter/internal/store"
	"predfilter/internal/trace"
	"predfilter/internal/xpath"
)

// ShardSpec names one shard of the cluster: its routed address and,
// optionally, the address of a WAL-shipped standby to promote when the
// primary stays down.
type ShardSpec struct {
	// Name identifies the shard on the ring. Ring placement hashes the
	// name, so keep names stable across restarts and address changes
	// (defaults to Addr when empty — fine as long as addresses are
	// stable).
	Name string
	// Addr is the shard's base URL ("http://host:port").
	Addr string
	// Standby, when non-empty, is the base URL of the shard's hot standby
	// (a server kept in sync by a Follower shipping the primary's WAL).
	Standby string
}

// Config configures a Coordinator. The zero value of every field has a
// usable default except Shards, which must name at least one shard.
type Config struct {
	Shards []ShardSpec
	// VirtualNodes is the number of ring points per shard (default 128).
	VirtualNodes int
	// PublishTimeout bounds each shard's share of one scatter/gather
	// publish, per attempt (default 5s).
	PublishTimeout time.Duration
	// AdminTimeout bounds subscribe/unsubscribe/migration calls
	// (default 10s).
	AdminTimeout time.Duration
	// Retries is how many times a transient shard failure is retried
	// before the call is given up. Zero means the default of 2; -1 (any
	// negative value) disables retries entirely. Note that shard publish
	// is not idempotent: a retry after a lost response re-enqueues the
	// document in that shard's delivery queues, so retried publishes are
	// at-least-once per shard. Operators who need at-most-once delivery
	// must set Retries to -1 and accept more degraded results instead.
	Retries int
	// RetryBackoff is the base backoff between retries; attempt k waits a
	// full-jitter draw from (0, min(RetryBackoff×2^(k-1), RetryBackoffMax)]
	// (default 25ms). A 429's Retry-After is honored as the floor.
	RetryBackoff time.Duration
	// RetryBackoffMax caps the exponential backoff growth (default 1s, and
	// never below RetryBackoff).
	RetryBackoffMax time.Duration
	// BreakerThreshold is how many consecutive transient failures open a
	// shard's circuit breaker. Zero means the default of 5; negative
	// disables breakers entirely (every call goes to the network).
	BreakerThreshold int
	// BreakerCooldown is how long an open breaker refuses calls before
	// letting a single half-open probe through (default 2s).
	BreakerCooldown time.Duration
	// HealthInterval is the shard health-check period. 0 disables the
	// monitor (tests drive Promote explicitly); production coordinators
	// should run it.
	HealthInterval time.Duration
	// FailThreshold is how many consecutive failed health checks trigger
	// standby promotion (default 3).
	FailThreshold int
	// MaxDocumentBytes bounds documents accepted by the coordinator's own
	// /publish endpoint (default 1 MiB).
	MaxDocumentBytes int64
	// StateDir, when non-empty, makes the coordinator's routing state
	// durable: the SID counter, the sid→shard routing table, and the
	// orphan-SID set are write-ahead logged (and periodically compacted
	// into a snapshot) under this directory, so a kill -9'd coordinator
	// restarts into a fully routed cluster from local state alone — zero
	// shard round-trips, even with every shard unreachable. Without it the
	// routing state is in-memory only and a restart needs Recover.
	StateDir string
	// NoSync disables the per-append fsync on the coordinator state log.
	// Throughput over durability: a host crash (not a process crash) can
	// lose the last appended records.
	NoSync bool
	// SnapshotEvery compacts the coordinator state log into a snapshot
	// once it accumulates this many records (default 4096; negative
	// disables size-triggered compaction — Close still snapshots).
	SnapshotEvery int
	// Recover reconciles the coordinator's records against every shard's
	// live set (GET /subscriptions) at startup. Without StateDir it is the
	// only recovery path: ownership is recorded from where each id
	// actually lives, the SID sequence resumes past the highest live id,
	// and every shard must be reachable — recovering around an unreachable
	// shard would re-issue its live ids. With StateDir the durable state
	// is authoritative and Recover becomes an optional verify/repair pass:
	// subscriptions the shards hold but the records lack are adopted,
	// recorded subscriptions missing from their owner are re-subscribed,
	// duplicate copies are resolved, and unreachable shards are skipped
	// (verified on their next restart) instead of failing startup.
	Recover bool
	// Client is the HTTP client for shard calls (default: a dedicated
	// client with sensible pooling).
	Client *http.Client

	// SlowPublishThreshold flags a scatter/gather publish as anomalous
	// (retained in the flight recorder) when its total wall time reaches
	// this bound. 0 disables the slow criterion; degraded, failed,
	// retried and explicitly traced publishes are retained regardless.
	SlowPublishThreshold time.Duration
	// FlightRecords sizes the flight recorder ring (0 uses
	// trace.DefaultFlightRecords; negative disables it).
	FlightRecords int
	// TraceAll records a full span tree for every publish, not only those
	// carrying a trace header or ?trace=1. Meant for debugging sessions —
	// it puts an allocation on every publish.
	TraceAll bool
	// Logger receives the coordinator's structured events (retries,
	// failovers, migrations, orphan reaping); nil selects slog.Default().
	Logger *slog.Logger
}

// RPC stages instrumented per shard: each gets its own latency
// histogram, exposed as predfilter_cluster_rpc_duration_seconds with
// shard and stage labels.
const (
	rpcSubscribe = iota
	rpcUnsubscribe
	rpcPublish
	rpcProbe
	rpcPromote
	numRPCStages
)

var rpcStageNames = [numRPCStages]string{"subscribe", "unsubscribe", "publish", "probe", "promote"}

// shard is one shard's routing state and counters.
type shard struct {
	name    string
	standby string

	mu       sync.Mutex
	addr     string // current routed address (standby after promotion)
	promoted bool

	healthy     atomic.Bool
	consecFails int // monitor-goroutine only

	// brk is the shard's circuit breaker (nil when disabled): transient
	// failures on any RPC stage and failed health probes feed it, open
	// state short-circuits calls before they touch the network.
	brk *breaker

	published    atomic.Int64 // successful publish calls
	errs         atomic.Int64 // failed publish attempts (before retry)
	retries      atomic.Int64 // publish attempts retried
	skipped      atomic.Int64 // documents skipped after retries (degraded)
	publishNanos atomic.Int64

	// rpc holds one latency histogram per instrumented RPC stage; every
	// attempt against this shard is observed, so retries widen the tail
	// visibly instead of hiding inside one long aggregate.
	rpc [numRPCStages]metrics.Histogram
}

func (sh *shard) currentAddr() string {
	sh.mu.Lock()
	defer sh.mu.Unlock()
	return sh.addr
}

// subRecord is the coordinator's authoritative record of one
// subscription: the expression as submitted and the shard it lives on.
// Owner tracks migrations and stays valid across failover (promotion
// keeps the shard name).
type subRecord struct {
	expr  string
	owner string
}

// Coordinator owns the cluster: the ring, the global SID space, and the
// scatter/gather publish path. It is safe for concurrent use and
// implements http.Handler with the same API surface as one shard (plus
// per-shard stats), so clients talk to a cluster exactly as they would to
// a single server.
//
// Locking: adminMu serializes the admin operations — subscribe,
// unsubscribe, shard add/remove migration, orphan reaping — and is the
// only lock held across shard HTTP calls; the ring is touched exclusively
// by adminMu holders. mu guards the routing state (shards, order, subs,
// orphans, nextSID) and is never held across network I/O, so the publish
// path (shardList, Stats, proxyToOwner) cannot be stalled by a slow
// subscribe or a migration in progress.
type Coordinator struct {
	cfg    Config
	api    *shardAPI
	mux    *http.ServeMux
	log    *slog.Logger
	flight *trace.FlightRecorder

	adminMu sync.Mutex
	ring    *ring // adminMu holders only
	// st is the durable routing state (nil without Config.StateDir).
	// Appends happen under adminMu, before the corresponding in-memory
	// commit, so the log never lags what publishes can observe.
	st *store.CoordStore

	mu      sync.Mutex
	shards  map[string]*shard
	order   []string // shard names in Config order (stable scatter/stats order)
	subs    map[predfilter.SID]*subRecord
	orphans map[predfilter.SID]string // burned sid → shard possibly still holding it
	nextSID predfilter.SID

	docsPublished atomic.Int64
	docsDegraded  atomic.Int64
	docsFailed    atomic.Int64
	failovers     atomic.Int64
	scrapeErrs    atomic.Int64 // shard /metrics scrapes that failed during rollup
	draining      atomic.Bool

	gatherMerge metrics.Histogram // gather-merge stage of scatter/gather publish

	closeOnce sync.Once
	storeOnce sync.Once
	done      chan struct{}
	wg        sync.WaitGroup
}

// New returns a ready Coordinator over the configured shards. Without
// Config.Recover it does not probe them: a shard that is down simply
// degrades publishes (and fails subscribes that route to it) until it
// returns or its standby is promoted.
func New(cfg Config) (*Coordinator, error) {
	if len(cfg.Shards) == 0 {
		return nil, fmt.Errorf("cluster: no shards configured")
	}
	if cfg.PublishTimeout <= 0 {
		cfg.PublishTimeout = 5 * time.Second
	}
	if cfg.AdminTimeout <= 0 {
		cfg.AdminTimeout = 10 * time.Second
	}
	if cfg.Retries == 0 {
		cfg.Retries = 2
	} else if cfg.Retries < 0 {
		cfg.Retries = 0 // explicit opt-out: one attempt, at-most-once
	}
	if cfg.RetryBackoff <= 0 {
		cfg.RetryBackoff = 25 * time.Millisecond
	}
	if cfg.RetryBackoffMax <= 0 {
		cfg.RetryBackoffMax = time.Second
	}
	if cfg.RetryBackoffMax < cfg.RetryBackoff {
		cfg.RetryBackoffMax = cfg.RetryBackoff
	}
	if cfg.BreakerThreshold == 0 {
		cfg.BreakerThreshold = 5
	}
	if cfg.BreakerCooldown <= 0 {
		cfg.BreakerCooldown = 2 * time.Second
	}
	if cfg.SnapshotEvery == 0 {
		cfg.SnapshotEvery = 4096
	}
	if cfg.FailThreshold <= 0 {
		cfg.FailThreshold = 3
	}
	if cfg.MaxDocumentBytes <= 0 {
		cfg.MaxDocumentBytes = 1 << 20
	}
	if cfg.Client == nil {
		cfg.Client = &http.Client{Transport: &http.Transport{
			MaxIdleConnsPerHost: 64,
			IdleConnTimeout:     90 * time.Second,
		}}
	}
	if cfg.Logger == nil {
		cfg.Logger = slog.Default()
	}
	c := &Coordinator{
		cfg:     cfg,
		api:     &shardAPI{hc: cfg.Client},
		log:     cfg.Logger,
		ring:    newRing(nil, cfg.VirtualNodes),
		shards:  make(map[string]*shard),
		subs:    make(map[predfilter.SID]*subRecord),
		orphans: make(map[predfilter.SID]string),
		done:    make(chan struct{}),
	}
	if cfg.FlightRecords >= 0 {
		c.flight = trace.NewFlightRecorder(cfg.FlightRecords)
	}
	for _, spec := range cfg.Shards {
		name := spec.Name
		if name == "" {
			name = spec.Addr
		}
		if name == "" {
			return nil, fmt.Errorf("cluster: shard with neither name nor address")
		}
		if _, dup := c.shards[name]; dup {
			return nil, fmt.Errorf("cluster: duplicate shard name %q", name)
		}
		sh := &shard{name: name, addr: spec.Addr, standby: spec.Standby}
		if cfg.BreakerThreshold > 0 {
			sh.brk = newBreaker(cfg.BreakerThreshold, cfg.BreakerCooldown)
		}
		sh.healthy.Store(true)
		c.shards[name] = sh
		c.order = append(c.order, name)
		c.ring.add(name)
	}
	c.initMux()
	if cfg.StateDir != "" {
		if err := c.openState(); err != nil {
			return nil, err
		}
	}
	if cfg.Recover {
		var err error
		if c.st != nil {
			err = c.reconcileState(context.Background())
		} else {
			err = c.recoverState(context.Background())
		}
		if err != nil {
			c.closeState()
			return nil, err
		}
	}
	if cfg.HealthInterval > 0 {
		c.wg.Add(1)
		go c.monitor()
	}
	return c, nil
}

// recoverState rebuilds the coordinator's records from the shards' live
// subscription sets: a restarted coordinator in front of populated
// shards resumes with every ownership record intact and the SID sequence
// past the highest live id. A subscription found on two shards (a
// migration crashed between its add and its remove) keeps the
// ring-preferred copy; the stray is deleted, and a stray that cannot be
// deleted fails recovery — leaving it would re-match documents after the
// subscription is removed. Runs from New, before any goroutines start.
func (c *Coordinator) recoverState(ctx context.Context) error {
	recovered := make(map[predfilter.SID]*subRecord)
	var nextSID predfilter.SID
	for _, name := range c.order {
		sh := c.shards[name]
		cctx, cancel := context.WithTimeout(ctx, c.cfg.AdminTimeout)
		entries, err := c.api.listSubscriptions(cctx, sh.currentAddr())
		cancel()
		if err != nil {
			return fmt.Errorf("cluster: recover: list subscriptions on shard %s: %w", name, err)
		}
		for _, e := range entries {
			if e.ID >= nextSID {
				nextSID = e.ID + 1
			}
			prev := recovered[e.ID]
			if prev == nil {
				recovered[e.ID] = &subRecord{expr: e.Expression, owner: name}
				continue
			}
			if prev.expr != e.Expression {
				return fmt.Errorf("cluster: recover: sid %d live on shards %s and %s with different expressions",
					e.ID, prev.owner, name)
			}
			// Same (id, expression) on two shards: keep the copy the ring
			// would route to and delete the stray — both shards answered
			// the listing, so the delete is expected to work.
			stray := name
			if want, werr := c.ring.ownerSID(e.ID); werr == nil && want == name {
				stray = prev.owner
				prev.owner = name
			}
			cctx, cancel := context.WithTimeout(ctx, c.cfg.AdminTimeout)
			derr := c.api.unsubscribe(cctx, c.shards[stray].currentAddr(), e.ID)
			cancel()
			if derr != nil {
				return fmt.Errorf("cluster: recover: sid %d duplicated on %s and %s; removing the %s copy: %w",
					e.ID, prev.owner, stray, stray, derr)
			}
		}
	}
	c.mu.Lock()
	c.subs = recovered
	c.nextSID = nextSID
	c.mu.Unlock()
	return nil
}

// openState opens the durable routing state under Config.StateDir and
// loads it, so the restart resumes fully routed without asking any
// shard. Every recorded owner must still be a configured shard: the
// shard *set* lives in Config, and dropping a shard from the flags
// without RemoveShard would leave its subscriptions unroutable — that
// is a hard error here, not a silent one later. Orphans burned on
// shards no longer configured are reaped (their copies died with the
// shard). Runs from New, before the coordinator serves.
func (c *Coordinator) openState() error {
	cs, err := store.OpenCoord(c.cfg.StateDir, store.Options{NoSync: c.cfg.NoSync})
	if err != nil {
		return fmt.Errorf("cluster: open coordinator state: %w", err)
	}
	st := cs.State()
	subs := make(map[predfilter.SID]*subRecord, len(st.Subs))
	for sid, sub := range st.Subs {
		if c.shards[sub.Owner] == nil {
			cs.Close()
			return fmt.Errorf("cluster: recovered sid %d routed to unconfigured shard %q (shard removed from config without RemoveShard?)", sid, sub.Owner)
		}
		subs[predfilter.SID(sid)] = &subRecord{expr: sub.Expr, owner: sub.Owner}
	}
	orphans := make(map[predfilter.SID]string, len(st.Orphans))
	for sid, name := range st.Orphans {
		if c.shards[name] == nil {
			_ = cs.AppendReap(sid)
			continue
		}
		orphans[predfilter.SID(sid)] = name
	}
	c.mu.Lock()
	c.subs = subs
	c.orphans = orphans
	c.nextSID = predfilter.SID(st.NextSID)
	c.mu.Unlock()
	c.st = cs
	c.log.Info("cluster: coordinator state recovered",
		slog.Int("subscriptions", len(subs)),
		slog.Int("orphans", len(orphans)),
		slog.Int64("next_sid", int64(st.NextSID)))
	return nil
}

// closeState snapshots and closes the durable state (idempotent; no-op
// without one). The snapshot on the way out makes the next open replay
// nothing, but is an optimization only — a kill -9 skips it and replays
// the WAL instead.
func (c *Coordinator) closeState() {
	if c.st == nil {
		return
	}
	c.storeOnce.Do(func() {
		if err := c.st.Snapshot(); err != nil {
			c.log.Warn("cluster: coordinator state snapshot on close", slog.String("error", err.Error()))
		}
		if err := c.st.Close(); err != nil {
			c.log.Warn("cluster: coordinator state close", slog.String("error", err.Error()))
		}
	})
}

// persistReap clears a burned sid from the durable state. Failure is
// log-only: a restart resurrects the orphan and the next reap pass
// deletes it again (shard-side delete of a missing sid answers 404,
// which counts as success).
func (c *Coordinator) persistReap(sid predfilter.SID) {
	if c.st == nil {
		return
	}
	if err := c.st.AppendReap(uint32(sid)); err != nil {
		c.log.Debug("cluster: persist orphan reap",
			slog.Int64("sid", int64(sid)),
			slog.String("error", err.Error()))
	}
}

// maybeSnapshot compacts the coordinator state log once it accumulates
// Config.SnapshotEvery records. Callers hold adminMu.
func (c *Coordinator) maybeSnapshot() {
	if c.st == nil || c.cfg.SnapshotEvery <= 0 {
		return
	}
	if c.st.WALRecords() < int64(c.cfg.SnapshotEvery) {
		return
	}
	if err := c.st.Snapshot(); err != nil {
		c.log.Error("cluster: coordinator state snapshot", slog.String("error", err.Error()))
	}
}

// canonicalExpr renders an expression the way shards store it (parse +
// print). The coordinator's records keep the as-submitted form, so any
// comparison against a shard listing goes through this first.
func canonicalExpr(expr string) (string, error) {
	p, err := xpath.Parse(expr)
	if err != nil {
		return "", err
	}
	return p.String(), nil
}

// reconcileState is the verify/repair pass over the durable records:
// with StateDir the records are authoritative, and Recover compares
// them against what each shard actually holds, repairing divergence
// from the crash windows the log cannot cover (a shard ack whose
// durable record was never written, a migration torn between its add
// and its remove, a shard restarted from a wiped disk). Unreachable
// shards are skipped — their subscriptions are verified when they
// return — instead of failing startup the way record-less recovery
// must. Runs from New, before the coordinator serves, so the maps are
// accessed without locks.
func (c *Coordinator) reconcileState(ctx context.Context) error {
	type copyOn struct{ shard, expr string }
	listed := make(map[predfilter.SID][]copyOn)
	reachable := make(map[string]bool, len(c.order))
	for _, name := range c.order {
		sh := c.shards[name]
		cctx, cancel := context.WithTimeout(ctx, c.cfg.AdminTimeout)
		entries, err := c.api.listSubscriptions(cctx, sh.currentAddr())
		cancel()
		if err != nil {
			c.log.Warn("cluster: verify: shard unreachable, skipped",
				slog.String("shard", name),
				slog.String("error", err.Error()))
			continue
		}
		reachable[name] = true
		for _, e := range entries {
			listed[e.ID] = append(listed[e.ID], copyOn{shard: name, expr: e.Expression})
		}
	}

	del := func(sid predfilter.SID, name string) error {
		cctx, cancel := context.WithTimeout(ctx, c.cfg.AdminTimeout)
		defer cancel()
		return c.api.unsubscribe(cctx, c.shards[name].currentAddr(), sid)
	}

	for sid, copies := range listed {
		rec := c.subs[sid]
		_, orphaned := c.orphans[sid]
		switch {
		case rec == nil && orphaned:
			// A burned sid whose shard-side copy survives: the shards that
			// hold it answered the listing, so delete it here and now.
			for _, cp := range copies {
				if err := del(sid, cp.shard); err != nil {
					return fmt.Errorf("cluster: verify: delete orphaned sid %d on shard %s: %w", sid, cp.shard, err)
				}
			}
			delete(c.orphans, sid)
			c.persistReap(sid)
			c.log.Info("cluster: verify: reaped orphaned sid", slog.Int64("sid", int64(sid)))
		case rec == nil:
			// The shards hold a subscription the records lack — a shard ack
			// whose durable record was lost to a crash, or a registration
			// this coordinator never placed. Adopt the ring-preferred copy
			// (the canonical expression the shard stores becomes the
			// record) and delete the rest.
			keep := copies[0]
			if want, werr := c.ring.ownerSID(sid); werr == nil {
				for _, cp := range copies {
					if cp.shard == want {
						keep = cp
					}
				}
			}
			if err := c.st.AppendAdd(uint32(sid), keep.shard, keep.expr); err != nil {
				return fmt.Errorf("cluster: verify: persist adopted sid %d: %w", sid, err)
			}
			c.subs[sid] = &subRecord{expr: keep.expr, owner: keep.shard}
			if sid >= c.nextSID {
				c.nextSID = sid + 1
			}
			for _, cp := range copies {
				if cp.shard == keep.shard {
					continue
				}
				if err := del(sid, cp.shard); err != nil {
					return fmt.Errorf("cluster: verify: delete duplicate sid %d on shard %s: %w", sid, cp.shard, err)
				}
			}
			c.log.Warn("cluster: verify: adopted unrecorded subscription",
				slog.Int64("sid", int64(sid)),
				slog.String("shard", keep.shard))
		default:
			canon, cerr := canonicalExpr(rec.expr)
			if cerr != nil {
				canon = rec.expr
			}
			ownerHolds := false
			for _, cp := range copies {
				if cp.expr != canon && cp.expr != rec.expr {
					return fmt.Errorf("cluster: verify: sid %d on shard %s has expression %q, record says %q",
						sid, cp.shard, cp.expr, rec.expr)
				}
				if cp.shard == rec.owner {
					ownerHolds = true
				}
			}
			if !ownerHolds {
				if !reachable[rec.owner] {
					// The recorded owner did not answer; nothing can be
					// verified for this sid, so nothing is touched.
					continue
				}
				// The owner answered but lost the copy while another shard
				// holds one (a migration torn between add and remove):
				// re-route the record to a holder rather than re-adding.
				newOwner := copies[0].shard
				if err := c.st.AppendOwner(uint32(sid), newOwner); err != nil {
					return fmt.Errorf("cluster: verify: persist re-route of sid %d: %w", sid, err)
				}
				rec.owner = newOwner
				c.log.Warn("cluster: verify: re-routed sid to surviving copy",
					slog.Int64("sid", int64(sid)),
					slog.String("shard", newOwner))
			}
			for _, cp := range copies {
				if cp.shard == rec.owner {
					continue
				}
				if err := del(sid, cp.shard); err != nil {
					return fmt.Errorf("cluster: verify: delete stray sid %d on shard %s: %w", sid, cp.shard, err)
				}
			}
		}
	}

	// Records whose owner answered the listing but does not hold the sid
	// (a shard restarted from wiped state): put the subscription back.
	for sid, rec := range c.subs {
		if !reachable[rec.owner] {
			continue
		}
		held := false
		for _, cp := range listed[sid] {
			if cp.shard == rec.owner {
				held = true
			}
		}
		if held {
			continue
		}
		cctx, cancel := context.WithTimeout(ctx, c.cfg.AdminTimeout)
		err := c.api.subscribe(cctx, c.shards[rec.owner].currentAddr(), sid, rec.expr)
		cancel()
		if err != nil {
			return fmt.Errorf("cluster: verify: re-subscribe sid %d on shard %s: %w", sid, rec.owner, err)
		}
		c.log.Warn("cluster: verify: re-subscribed lost sid",
			slog.Int64("sid", int64(sid)),
			slog.String("shard", rec.owner))
	}

	// Orphans whose shard answered the listing without them: the
	// half-committed copy is confirmed gone.
	for sid, name := range c.orphans {
		if !reachable[name] {
			continue
		}
		held := false
		for _, cp := range listed[sid] {
			if cp.shard == name {
				held = true
			}
		}
		if held {
			continue // deleted and reaped in the walk above
		}
		delete(c.orphans, sid)
		c.persistReap(sid)
	}
	return nil
}

// Close stops the health monitor, marks the coordinator draining (its
// HTTP publish surface answers 503), and snapshots and closes the
// durable state when one is configured. Shards are independent processes
// and are not touched. Safe to call concurrently and more than once.
func (c *Coordinator) Close() {
	c.draining.Store(true)
	c.closeOnce.Do(func() { close(c.done) })
	c.wg.Wait()
	c.closeState()
}

// shardList snapshots the shards in configuration order.
func (c *Coordinator) shardList() []*shard {
	c.mu.Lock()
	defer c.mu.Unlock()
	out := make([]*shard, 0, len(c.order))
	for _, name := range c.order {
		out = append(out, c.shards[name])
	}
	return out
}

// Subscribe registers an expression cluster-wide: it validates the
// expression locally, assigns the next global SID, places it on its
// owning shard through the ring, and commits only after the shard
// acknowledged. Subscribes are serialized (registration is the cold
// path); the shard call runs outside the state lock, so publishes never
// wait on a slow registration. A failed shard call is cleaned up so it
// cannot wedge the sequence: see abandonSID — the sid is either verified
// free (and reused) or burned and reaped later, leaving a hole in the
// global sequence that nothing depends on.
func (c *Coordinator) Subscribe(ctx context.Context, expr string) (predfilter.SID, error) {
	if _, err := xpath.Parse(expr); err != nil {
		return 0, err
	}
	c.adminMu.Lock()
	defer c.adminMu.Unlock()
	c.reapOrphans(ctx)
	c.mu.Lock()
	sid := c.nextSID
	c.mu.Unlock()
	owner, err := c.ring.ownerSID(sid)
	if err != nil {
		return 0, err
	}
	c.mu.Lock()
	sh := c.shards[owner]
	c.mu.Unlock()
	cctx, cancel := context.WithTimeout(ctx, c.cfg.AdminTimeout)
	defer cancel()
	if attempts, err := c.callWithRetry(cctx, sh, rpcSubscribe, func(addr string) error {
		return c.api.subscribe(cctx, addr, sid, expr)
	}); err != nil {
		if attempts > 0 {
			// At least one RPC went out, so the shard may hold an
			// unacknowledged copy. With zero attempts (breaker open) the
			// sid is verifiably free — no cleanup, no burn.
			c.abandonSID(sh, sid, err)
		}
		return 0, fmt.Errorf("cluster: subscribe on shard %s: %w", owner, err)
	}
	if c.st != nil {
		if perr := c.st.AppendAdd(uint32(sid), owner, expr); perr != nil {
			// The shard acknowledged but the durable record cannot be
			// written. Undo on the shard so the sid stays verifiably free;
			// if even that fails, burn it so it is never reissued.
			dctx, dcancel := context.WithTimeout(context.Background(), c.cfg.AdminTimeout)
			derr := c.api.unsubscribe(dctx, sh.currentAddr(), sid)
			dcancel()
			if derr != nil {
				c.burnSID(sid, sh.name)
			}
			return 0, fmt.Errorf("cluster: persist subscription %d: %w", sid, perr)
		}
	}
	c.mu.Lock()
	c.subs[sid] = &subRecord{expr: expr, owner: owner}
	c.nextSID++
	c.mu.Unlock()
	c.maybeSnapshot()
	return sid, nil
}

// abandonSID cleans up after a failed subscribe call. An ambiguous
// failure (network error, timeout, 5xx — callErr transient) may have
// committed the registration on the shard with only the ack lost in
// transit; leaving that copy while reusing the sid would wedge the
// cluster — the next Subscribe would offer the same sid with a
// different expression, the shard would answer 409 (non-transient), and
// every registration from then on would fail. A best-effort delete
// (fresh context — the caller's may already be done) clears the
// maybe-committed copy, making the sid verifiably free to reuse. If
// even the delete fails, the sid is burned: nextSID advances past it
// and the sid is recorded as an orphan — filtered out of publish
// results (it may still match on the shard) and deleted for real by
// reapOrphans once the shard answers again.
//
// A *permanent* refusal is the opposite case and must not be cleaned
// up: the shard deliberately answered that nothing of ours was
// committed, and if the answer was 409 the sid is live with someone
// else's expression — a subscription this coordinator never placed
// (a restart without Config.Recover in front of populated shards).
// Deleting it would destroy live data the coordinator merely cannot
// see. Callers hold adminMu.
func (c *Coordinator) abandonSID(sh *shard, sid predfilter.SID, callErr error) {
	var se *shardError
	if errors.As(callErr, &se) && !se.transient {
		return
	}
	cctx, cancel := context.WithTimeout(context.Background(), c.cfg.AdminTimeout)
	defer cancel()
	if err := c.api.unsubscribe(cctx, sh.currentAddr(), sid); err == nil {
		return
	}
	c.burnSID(sid, sh.name)
}

// burnSID records sid as burned — the SID sequence advances past it and
// the sid joins the orphan set, durably when a state store is
// configured, so a restart cannot reissue it while the shard may still
// hold a half-committed copy. Callers hold adminMu.
func (c *Coordinator) burnSID(sid predfilter.SID, shardName string) {
	c.mu.Lock()
	if c.nextSID == sid {
		c.nextSID = sid + 1
	}
	c.orphans[sid] = shardName
	c.mu.Unlock()
	if c.st != nil {
		if err := c.st.AppendBurn(uint32(sid), shardName); err != nil {
			c.log.Error("cluster: persist burned sid",
				slog.Int64("sid", int64(sid)),
				slog.String("error", err.Error()))
		}
	}
	c.log.Warn("cluster: sid burned as orphan after failed subscribe",
		slog.Int64("sid", int64(sid)),
		slog.String("shard", shardName))
}

// reapOrphans retries the delete of every burned sid (abandonSID) whose
// shard may still hold an unrecorded registration. It runs on the admin
// path and on monitor ticks; shards currently failing health checks are
// skipped (the delete would only eat the admin budget). Success clears
// the orphan; failure leaves it for the next pass — publishes filter it
// out meanwhile. Callers hold adminMu.
func (c *Coordinator) reapOrphans(ctx context.Context) {
	c.mu.Lock()
	pending := make(map[predfilter.SID]*shard, len(c.orphans))
	var gone []predfilter.SID
	for sid, name := range c.orphans {
		sh := c.shards[name]
		if sh == nil {
			delete(c.orphans, sid) // shard left the cluster; its copy died with it
			gone = append(gone, sid)
			continue
		}
		if sh.healthy.Load() {
			pending[sid] = sh
		}
	}
	c.mu.Unlock()
	for _, sid := range gone {
		c.persistReap(sid)
	}
	for sid, sh := range pending {
		cctx, cancel := context.WithTimeout(ctx, c.cfg.AdminTimeout)
		err := c.api.unsubscribe(cctx, sh.currentAddr(), sid)
		cancel()
		if err == nil {
			c.mu.Lock()
			delete(c.orphans, sid)
			c.mu.Unlock()
			c.persistReap(sid)
			c.log.Info("cluster: reaped orphaned sid",
				slog.Int64("sid", int64(sid)),
				slog.String("shard", sh.name))
		}
	}
}

// Unsubscribe removes a subscription from its owning shard.
func (c *Coordinator) Unsubscribe(ctx context.Context, sid predfilter.SID) error {
	c.adminMu.Lock()
	defer c.adminMu.Unlock()
	c.mu.Lock()
	rec := c.subs[sid]
	var sh *shard
	if rec != nil {
		sh = c.shards[rec.owner]
	}
	c.mu.Unlock()
	if rec == nil {
		return fmt.Errorf("cluster: unknown sid %d", sid)
	}
	cctx, cancel := context.WithTimeout(ctx, c.cfg.AdminTimeout)
	defer cancel()
	if _, err := c.callWithRetry(cctx, sh, rpcUnsubscribe, func(addr string) error {
		return c.api.unsubscribe(cctx, addr, sid)
	}); err != nil {
		return fmt.Errorf("cluster: unsubscribe on shard %s: %w", rec.owner, err)
	}
	c.mu.Lock()
	delete(c.subs, sid)
	c.mu.Unlock()
	if c.st != nil {
		if perr := c.st.AppendRemove(uint32(sid)); perr != nil {
			// The shard deleted its copy but the record removal could not
			// be logged: a restart resurrects a record the shard no longer
			// backs, repaired by the Recover verify pass. Disk trouble —
			// surface it loudly, the unsubscribe itself succeeded.
			c.log.Error("cluster: persist unsubscribe",
				slog.Int64("sid", int64(sid)),
				slog.String("error", perr.Error()))
		}
	}
	c.maybeSnapshot()
	return nil
}

// OwnerOf reports which shard holds a live subscription.
func (c *Coordinator) OwnerOf(sid predfilter.SID) (string, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	rec := c.subs[sid]
	if rec == nil {
		return "", false
	}
	return rec.owner, true
}

// ctxTraceID renders the trace ID carried by ctx for log correlation
// ("" when the operation is untraced).
func ctxTraceID(ctx context.Context) string {
	if tr := trace.FromContext(ctx); tr.Enabled() {
		return tr.ID().String()
	}
	return ""
}

// callWithRetry runs one shard call against the shard's current address,
// retrying transient failures with capped exponential backoff and full
// jitter (backoffFor). The shard's circuit breaker gates every attempt:
// an open breaker short-circuits before touching the network — the
// caller gets errShardBreakerOpen (attempts == 0) or the last real
// error, immediately, instead of burning the stage's timeout — and each
// attempted call's outcome feeds the breaker back. The address is
// re-resolved per attempt so a promotion between attempts is picked up.
// Every attempt's latency lands in the shard's per-stage RPC histogram,
// and each retry is logged with the shard, stage and trace ID. attempts
// reports how many were made.
func (c *Coordinator) callWithRetry(ctx context.Context, sh *shard, stage int, call func(addr string) error) (attempts int, err error) {
	for attempt := 0; attempt <= c.cfg.Retries; attempt++ {
		if attempt > 0 {
			sh.retries.Add(1)
			c.log.Warn("cluster: retrying shard call",
				slog.String("shard", sh.name),
				slog.String("stage", rpcStageNames[stage]),
				slog.Int("attempt", attempt+1),
				slog.String("error", err.Error()),
				slog.String("trace_id", ctxTraceID(ctx)))
			select {
			case <-time.After(c.backoffFor(attempt, err)):
			case <-ctx.Done():
				return attempts, err
			}
		}
		if !sh.brk.allow(time.Now()) {
			if err == nil {
				err = errShardBreakerOpen
			}
			return attempts, err
		}
		attempts++
		t0 := time.Now()
		err = call(sh.currentAddr())
		sh.rpc[stage].Observe(time.Since(t0))
		reclosed, opened := sh.brk.recordOutcome(err, time.Now())
		if reclosed {
			c.log.Info("cluster: shard breaker closed", slog.String("shard", sh.name))
		}
		if opened {
			c.log.Warn("cluster: shard breaker opened",
				slog.String("shard", sh.name),
				slog.String("stage", rpcStageNames[stage]),
				slog.String("error", err.Error()))
		}
		if err == nil {
			return attempts, nil
		}
		var se *shardError
		if !errors.As(err, &se) || !se.transient {
			return attempts, err
		}
	}
	return attempts, err
}

// PublishResult is the outcome of one scatter/gather publish. When every
// shard answered, SIDs is exactly the match set a single engine holding
// all subscriptions would report (ascending id order — the gather merge's
// canonical delivery order). When a shard stayed down through the retry
// budget, Degraded is set and Skipped names it: the match set is the
// union of the answering shards, a flagged partial result rather than a
// failed publish. TraceID names the distributed trace when the publish
// was traced (an X-Predfilter-Trace header, ?trace=1, or
// Config.TraceAll), "" otherwise.
type PublishResult struct {
	SIDs     []predfilter.SID
	Degraded bool
	Skipped  []string
	TraceID  string
}

// allShardsError is the all-shards-skipped publish failure. When every
// skipped shard answered 429 the cluster as a whole is shedding load, so
// the coordinator relays 429 with the largest shard Retry-After instead
// of masking backpressure as a 502.
type allShardsError struct {
	shards      int
	rateLimited bool
	retryAfter  int // max shard Retry-After in seconds (0 when none given)
}

func (e *allShardsError) Error() string {
	if e.rateLimited {
		return fmt.Sprintf("cluster: all %d shards rate-limited", e.shards)
	}
	return fmt.Sprintf("cluster: all %d shards unreachable", e.shards)
}

// shardResult is one shard's gathered outcome within a scatter/gather
// publish — the gather input, and the raw material for flight-recorder
// span synthesis when an untraced publish turns out anomalous.
type shardResult struct {
	name       string
	sids       []predfilter.SID
	err        error
	attempts   int
	start      time.Time
	dur        time.Duration
	retryAfter int
}

// Publish scatters one document to every shard and gathers the merged
// match set. Per-shard deadlines (Config.PublishTimeout per attempt) keep
// one slow shard from pinning the whole publish; transient failures are
// retried with backoff (at-least-once per shard — see Config.Retries);
// a shard that stays down is skipped and flagged rather than failing the
// document. A permanent per-document refusal (parse failure,
// resource-limit trip — the governance statuses a single server would
// answer) fails the publish with that shard's error, because the
// document, not the cluster, is the problem.
//
// When ctx carries a *trace.Trace (trace.NewContext) — or Config.TraceAll
// is set — each per-shard call runs under its own span, propagated to the
// shard via X-Predfilter-Trace so the shard's spans join the same tree.
// Untraced publishes pay no allocations for tracing; if one turns out
// anomalous (degraded, failed, retried, or slower than
// Config.SlowPublishThreshold), a span tree is synthesized after the fact
// from the gathered timings and retained in the flight recorder.
func (c *Coordinator) Publish(ctx context.Context, doc []byte) (*PublishResult, error) {
	tr := trace.FromContext(ctx)
	if tr == nil && c.cfg.TraceAll {
		tr = trace.New()
		ctx = trace.NewContext(ctx, tr)
	}
	start := time.Now()
	shards := c.shardList()
	out := make([]shardResult, len(shards))
	var wg sync.WaitGroup
	wg.Add(len(shards))
	for i, sh := range shards {
		go func(i int, sh *shard) {
			defer wg.Done()
			t0 := time.Now()
			span := tr.StartSpan("shard.publish", 0)
			span.SetShard(sh.name)
			header := span.Header()
			var sids []predfilter.SID
			attempts, err := c.callWithRetry(ctx, sh, rpcPublish, func(addr string) error {
				cctx, cancel := context.WithTimeout(ctx, c.cfg.PublishTimeout)
				defer cancel()
				var cerr error
				sids, cerr = c.api.publish(cctx, addr, doc, header)
				return cerr
			})
			dur := time.Since(t0)
			sh.publishNanos.Add(dur.Nanoseconds())
			span.SetRetries(attempts - 1)
			span.SetError(err)
			span.End()
			g := shardResult{name: sh.name, attempts: attempts, start: t0, dur: dur}
			if err != nil {
				sh.errs.Add(1)
				var se *shardError
				if errors.As(err, &se) {
					g.retryAfter = se.retryAfter
				}
				g.err = err
				out[i] = g
				return
			}
			sh.published.Add(1)
			// The gather merge needs each partial set ascending; a shard's
			// own order (expression registration order) is not guaranteed
			// to be.
			sort.Slice(sids, func(a, b int) bool { return sids[a] < sids[b] })
			g.sids = sids
			out[i] = g
		}(i, sh)
	}
	wg.Wait()

	retried := 0
	for _, g := range out {
		retried += g.attempts - 1
	}
	res := &PublishResult{}
	if tr.Enabled() {
		res.TraceID = tr.ID().String()
	}
	sets := make([][]predfilter.SID, 0, len(shards))
	maxRetryAfter := 0
	allRateLimited := true
	for i, g := range out {
		if g.err == nil {
			sets = append(sets, g.sids)
			continue
		}
		var se *shardError
		if errors.As(g.err, &se) && !se.transient {
			// The document itself was refused; every shard would refuse it
			// the same way. Surface the governance answer, don't degrade.
			c.docsFailed.Add(1)
			err := fmt.Errorf("cluster: shard %s refused document: %w", g.name, g.err)
			c.recordPublishFlight(tr, start, time.Since(start), len(doc), 0, out, nil, retried, err.Error())
			return nil, err
		}
		if se == nil || se.status != http.StatusTooManyRequests {
			allRateLimited = false
		}
		if g.retryAfter > maxRetryAfter {
			maxRetryAfter = g.retryAfter
		}
		shards[i].skipped.Add(1)
		res.Skipped = append(res.Skipped, g.name)
	}
	if len(res.Skipped) == len(shards) {
		c.docsFailed.Add(1)
		err := &allShardsError{shards: len(shards), rateLimited: allRateLimited, retryAfter: maxRetryAfter}
		c.log.Warn("cluster: publish failed on every shard",
			slog.Int("shards", len(shards)),
			slog.Bool("rate_limited", allRateLimited),
			slog.String("trace_id", res.TraceID))
		c.recordPublishFlight(tr, start, time.Since(start), len(doc), 0, out, res.Skipped, retried, err.Error())
		return nil, err
	}
	m0 := time.Now()
	res.SIDs = c.filterOrphans(predfilter.MergeSIDSets(sets))
	md := time.Since(m0)
	c.gatherMerge.Observe(md)
	tr.AddCompleted("gather.merge", "", 0, m0, md, 0, "")
	res.Degraded = len(res.Skipped) > 0
	if res.Degraded {
		c.docsDegraded.Add(1)
		c.log.Warn("cluster: publish degraded",
			slog.Any("skipped", res.Skipped),
			slog.String("trace_id", res.TraceID))
	}
	c.docsPublished.Add(1)
	c.recordPublishFlight(tr, start, time.Since(start), len(doc), len(res.SIDs), out, res.Skipped, retried, "")
	return res, nil
}

// recordPublishFlight retains one scatter/gather publish in the flight
// recorder when it was anomalous: failed, degraded, retried, slower than
// Config.SlowPublishThreshold, or explicitly traced. A traced publish
// contributes its real span tree; an untraced one gets a tree
// synthesized from the per-shard gathered timings, so the record still
// attributes the latency shard by shard. Normal untraced publishes
// return before any allocation.
func (c *Coordinator) recordPublishFlight(tr *trace.Trace, start time.Time, elapsed time.Duration, docBytes, matches int, out []shardResult, skipped []string, retried int, errMsg string) {
	if c.flight == nil {
		return
	}
	var reasons []string
	if errMsg != "" {
		reasons = append(reasons, "failed")
	}
	if len(skipped) > 0 {
		reasons = append(reasons, "degraded")
	}
	if retried > 0 {
		reasons = append(reasons, "retried")
	}
	if c.cfg.SlowPublishThreshold > 0 && elapsed >= c.cfg.SlowPublishThreshold {
		reasons = append(reasons, "slow")
	}
	if tr.Enabled() {
		reasons = append(reasons, "traced")
	}
	if len(reasons) == 0 {
		return
	}
	rec := &trace.Record{
		Time:          start,
		Op:            "cluster.publish",
		Reasons:       reasons,
		DurationNanos: elapsed.Nanoseconds(),
		DocBytes:      docBytes,
		Matches:       matches,
		Skipped:       skipped,
		Error:         errMsg,
	}
	if tr.Enabled() {
		rec.TraceID = tr.ID().String()
		rec.Spans = tr.Snapshot()
	} else {
		st := trace.NewAt(start)
		for _, g := range out {
			msg := ""
			if g.err != nil {
				msg = g.err.Error()
			}
			st.AddCompleted("shard.publish", g.name, 0, g.start, g.dur, g.attempts-1, msg)
		}
		rec.Spans = st.Snapshot()
	}
	c.flight.Add(rec)
}

// FlightRecorder returns the coordinator's flight recorder (nil when
// disabled via Config.FlightRecords < 0).
func (c *Coordinator) FlightRecorder() *trace.FlightRecorder { return c.flight }

// filterOrphans drops burned sids from a merged match set: an orphan has
// no coordinator record (OwnerOf and delivery proxying would 404), so
// its matches must not surface while reapOrphans works on deleting the
// shard-side copy.
func (c *Coordinator) filterOrphans(sids []predfilter.SID) []predfilter.SID {
	c.mu.Lock()
	defer c.mu.Unlock()
	if len(c.orphans) == 0 {
		return sids
	}
	kept := sids[:0]
	for _, sid := range sids {
		if _, orphaned := c.orphans[sid]; !orphaned {
			kept = append(kept, sid)
		}
	}
	return kept
}

// Promote fails a shard over to its standby: the shard's routed address
// becomes the standby's, under the same name (ring placement and every
// recorded owner stay valid). The standby is expected to be caught up via
// WAL shipping; promotion does not copy state.
func (c *Coordinator) Promote(name string) error {
	t0 := time.Now()
	c.mu.Lock()
	sh := c.shards[name]
	c.mu.Unlock()
	if sh == nil {
		return fmt.Errorf("cluster: unknown shard %q", name)
	}
	sh.mu.Lock()
	defer sh.mu.Unlock()
	if sh.promoted {
		return fmt.Errorf("cluster: shard %s already promoted to %s", name, sh.addr)
	}
	if sh.standby == "" {
		return fmt.Errorf("cluster: shard %s has no standby", name)
	}
	sh.addr = sh.standby
	sh.standby = ""
	sh.promoted = true
	sh.healthy.Store(true)
	// The open breaker belonged to the dead primary; the promoted standby
	// starts with a clean slate.
	sh.brk.success()
	c.failovers.Add(1)
	sh.rpc[rpcPromote].Observe(time.Since(t0))
	c.log.Warn("cluster: failover, standby promoted",
		slog.String("shard", name),
		slog.String("addr", sh.addr))
	return nil
}

// monitor is the health-check loop: it probes every shard's /healthz each
// interval, promotes the standby of a shard that failed
// Config.FailThreshold consecutive probes, and opportunistically reaps
// orphaned sids when no admin operation is running.
func (c *Coordinator) monitor() {
	defer c.wg.Done()
	t := time.NewTicker(c.cfg.HealthInterval)
	defer t.Stop()
	for {
		select {
		case <-c.done:
			return
		case <-t.C:
		}
		for _, sh := range c.shardList() {
			ctx, cancel := context.WithTimeout(context.Background(), c.cfg.HealthInterval)
			t0 := time.Now()
			ok := c.api.healthy(ctx, sh.currentAddr())
			sh.rpc[rpcProbe].Observe(time.Since(t0))
			cancel()
			// The probe outcome feeds the breaker, bypassing allow: this is
			// how half-open probes ride the health monitor — a healed shard
			// recloses its breaker within one interval even with no publish
			// traffic probing it.
			var probeErr error
			if !ok {
				probeErr = errProbeFailed
			}
			reclosed, opened := sh.brk.recordOutcome(probeErr, time.Now())
			if reclosed {
				c.log.Info("cluster: shard breaker closed", slog.String("shard", sh.name))
			}
			if opened {
				c.log.Warn("cluster: shard breaker opened",
					slog.String("shard", sh.name),
					slog.String("stage", "probe"))
			}
			was := sh.healthy.Swap(ok)
			if ok != was {
				if ok {
					c.log.Info("cluster: shard recovered", slog.String("shard", sh.name))
				} else {
					c.log.Warn("cluster: shard health probe failed", slog.String("shard", sh.name))
				}
			}
			if ok {
				sh.consecFails = 0
				continue
			}
			sh.consecFails++
			if sh.consecFails >= c.cfg.FailThreshold {
				if err := c.Promote(sh.name); err == nil {
					sh.consecFails = 0
				} else {
					c.log.Debug("cluster: cannot promote failed shard",
						slog.String("shard", sh.name),
						slog.String("error", err.Error()))
				}
			}
		}
		if c.adminMu.TryLock() {
			c.reapOrphans(context.Background())
			c.adminMu.Unlock()
		}
	}
}

// AddShard grows the ring by one shard and migrates the subscriptions the
// new placement assigns to it: consistent hashing moves only ~1/(N+1) of
// the keys, and each moved subscription is registered on its new owner
// before it is removed from the old one — at no point does a moved SID
// resolve to a shard that does not hold it. On error the migration stops
// with every already-moved subscription consistent (record and placement
// agree); the caller may retry.
func (c *Coordinator) AddShard(ctx context.Context, spec ShardSpec) error {
	name := spec.Name
	if name == "" {
		name = spec.Addr
	}
	c.adminMu.Lock()
	defer c.adminMu.Unlock()
	c.mu.Lock()
	if _, dup := c.shards[name]; dup {
		c.mu.Unlock()
		return fmt.Errorf("cluster: shard %q already present", name)
	}
	if spec.Addr == "" {
		c.mu.Unlock()
		return fmt.Errorf("cluster: shard %q has no address", name)
	}
	sh := &shard{name: name, addr: spec.Addr, standby: spec.Standby}
	if c.cfg.BreakerThreshold > 0 {
		sh.brk = newBreaker(c.cfg.BreakerThreshold, c.cfg.BreakerCooldown)
	}
	sh.healthy.Store(true)
	c.shards[name] = sh
	c.order = append(c.order, name)
	c.mu.Unlock()
	c.ring.add(name)
	if moved, err := c.migrate(ctx); err == nil {
		c.log.Info("cluster: shard added",
			slog.String("shard", name),
			slog.Int("migrated", moved))
	} else {
		// Undo the ring change and migrate the already-moved keys back
		// through the same protocol, then forget the shard.
		c.ring.remove(name)
		_, uerr := c.migrate(ctx)
		c.mu.Lock()
		delete(c.shards, name)
		c.order = c.order[:len(c.order)-1]
		c.mu.Unlock()
		if uerr != nil {
			return fmt.Errorf("cluster: add shard %s: %v (rollback also failed: %v)", name, err, uerr)
		}
		return fmt.Errorf("cluster: add shard %s: %w", name, err)
	}
	return nil
}

// RemoveShard shrinks the ring by one shard, first migrating every
// subscription it owns to the new owners. Removal of an unreachable shard
// works too: the expressions move from the coordinator's authoritative
// records, and deletes on the leaving shard are best-effort.
func (c *Coordinator) RemoveShard(ctx context.Context, name string) error {
	c.adminMu.Lock()
	defer c.adminMu.Unlock()
	c.mu.Lock()
	if c.shards[name] == nil {
		c.mu.Unlock()
		return fmt.Errorf("cluster: unknown shard %q", name)
	}
	if len(c.shards) == 1 {
		c.mu.Unlock()
		return fmt.Errorf("cluster: cannot remove the last shard")
	}
	c.mu.Unlock()
	c.ring.remove(name)
	if moved, err := c.migrate(ctx); err != nil {
		c.ring.add(name)
		return fmt.Errorf("cluster: remove shard %s: %w", name, err)
	} else {
		c.log.Info("cluster: shard removed",
			slog.String("shard", name),
			slog.Int("migrated", moved))
	}
	c.mu.Lock()
	delete(c.shards, name)
	for i, n := range c.order {
		if n == name {
			c.order = append(c.order[:i], c.order[i+1:]...)
			break
		}
	}
	var reaped []predfilter.SID
	for sid, owner := range c.orphans {
		if owner == name {
			delete(c.orphans, sid) // its copy died with the shard
			reaped = append(reaped, sid)
		}
	}
	c.mu.Unlock()
	for _, sid := range reaped {
		c.persistReap(sid)
	}
	return nil
}

// migrate reconciles every subscription's placement with the current
// ring: each one whose owner changed is added to the new owner, then
// removed from the old. Callers hold adminMu (which keeps the ring and
// the record set stable); c.mu is taken only around map access, never
// across the shard calls, so publishes proceed throughout a migration —
// a document that lands during the add-before-remove window can see a
// moved sid on both shards, which the gather merge deduplicates. Shards
// being migrated *to* must be reachable (the data has to land
// somewhere); removal from the old owner is allowed to fail when that
// shard is gone — its copy is unreachable anyway, and re-running the
// migration is harmless because adds are idempotent under the same id.
func (c *Coordinator) migrate(ctx context.Context) (moved int, err error) {
	c.mu.Lock()
	sids := make([]predfilter.SID, 0, len(c.subs))
	for sid := range c.subs {
		sids = append(sids, sid)
	}
	c.mu.Unlock()
	sort.Slice(sids, func(i, j int) bool { return sids[i] < sids[j] })
	for _, sid := range sids {
		newOwner, oerr := c.ring.ownerSID(sid)
		if oerr != nil {
			return moved, oerr
		}
		c.mu.Lock()
		rec := c.subs[sid]
		var dst, src *shard
		if rec != nil && rec.owner != newOwner {
			dst = c.shards[newOwner]
			src = c.shards[rec.owner]
		}
		c.mu.Unlock()
		if rec == nil || rec.owner == newOwner {
			continue
		}
		if dst == nil {
			return moved, fmt.Errorf("migrate sid %d: ring names unknown shard %s", sid, newOwner)
		}
		cctx, cancel := context.WithTimeout(ctx, c.cfg.AdminTimeout)
		addErr := c.api.subscribe(cctx, dst.currentAddr(), sid, rec.expr)
		cancel()
		if addErr != nil {
			return moved, fmt.Errorf("migrate sid %d to %s: %w", sid, newOwner, addErr)
		}
		if src != nil {
			cctx, cancel := context.WithTimeout(ctx, c.cfg.AdminTimeout)
			_ = c.api.unsubscribe(cctx, src.currentAddr(), sid) // best-effort
			cancel()
		}
		c.mu.Lock()
		rec.owner = newOwner
		c.mu.Unlock()
		if c.st != nil {
			if perr := c.st.AppendOwner(uint32(sid), newOwner); perr != nil {
				c.log.Error("cluster: persist migration",
					slog.Int64("sid", int64(sid)),
					slog.String("shard", newOwner),
					slog.String("error", perr.Error()))
			}
		}
		moved++
	}
	return moved, nil
}
