package cluster

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"strconv"

	"predfilter"
	"predfilter/internal/server"
	"predfilter/internal/trace"
)

// shardAPI is the coordinator's HTTP client for one shard's
// internal/server API. It is stateless (the routed address is passed per
// call, because failover swaps a shard's address under the same name).
type shardAPI struct {
	hc *http.Client
}

// shardError is a failed shard call. transient errors (network failures,
// 429/502/503/504 — the shard may be restarting, shedding, or draining)
// are retried and can degrade a publish; permanent errors (anything else
// the shard deliberately answered, e.g. 422 for a document over resource
// limits) reflect the request itself and are surfaced to the caller —
// honoring the governance semantics a single server gives the same
// document.
type shardError struct {
	status    int // 0 for network errors
	msg       string
	transient bool
	// retryAfter is the shard's Retry-After answer in seconds (0 when
	// absent). The coordinator surfaces the max across shards on its own
	// 429 so a backpressured cluster propagates its pacing hint intact.
	retryAfter int
}

func (e *shardError) Error() string {
	if e.status == 0 {
		return e.msg
	}
	return fmt.Sprintf("shard answered %d: %s", e.status, e.msg)
}

// Status returns the HTTP status a coordinator should relay for this
// error (502 for network failures).
func (e *shardError) Status() int {
	if e.status == 0 {
		return http.StatusBadGateway
	}
	return e.status
}

func transientStatus(code int) bool {
	switch code {
	case http.StatusTooManyRequests, http.StatusBadGateway,
		http.StatusServiceUnavailable, http.StatusGatewayTimeout:
		return true
	}
	return false
}

// do runs one request and decodes the JSON response into out (when
// non-nil). Non-2xx answers and transport failures come back as
// *shardError with the transient/permanent split above. When the
// request's context carries a distributed trace and no propagation
// header was set explicitly, the trace ID is attached — subscribe,
// unsubscribe, proxy and WAL-shipping calls made under a traced
// operation all carry it without per-call plumbing.
func (a *shardAPI) do(req *http.Request, out any) error {
	if req.Header.Get(trace.HeaderName) == "" {
		if tr := trace.FromContext(req.Context()); tr.Enabled() {
			req.Header.Set(trace.HeaderName, trace.FormatHeader(tr.ID(), 0))
		}
	}
	resp, err := a.hc.Do(req)
	if err != nil {
		return &shardError{msg: err.Error(), transient: true}
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(io.LimitReader(resp.Body, 64<<20))
	if err != nil {
		return &shardError{msg: fmt.Sprintf("read response: %v", err), transient: true}
	}
	if resp.StatusCode < 200 || resp.StatusCode > 299 {
		msg := string(body)
		var je struct {
			Error string `json:"error"`
		}
		if json.Unmarshal(body, &je) == nil && je.Error != "" {
			msg = je.Error
		}
		ra := 0
		if v := resp.Header.Get("Retry-After"); v != "" {
			if n, perr := strconv.Atoi(v); perr == nil && n > 0 {
				ra = n
			}
		}
		return &shardError{status: resp.StatusCode, msg: msg, transient: transientStatus(resp.StatusCode), retryAfter: ra}
	}
	if out == nil {
		return nil
	}
	if err := json.Unmarshal(body, out); err != nil {
		return &shardError{msg: fmt.Sprintf("decode response: %v", err), transient: false}
	}
	return nil
}

func (a *shardAPI) getJSON(ctx context.Context, url string, out any) error {
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, url, nil)
	if err != nil {
		return &shardError{msg: err.Error()}
	}
	return a.do(req, out)
}

// subscribe registers expr under the coordinator-assigned sid on the
// shard at addr.
func (a *shardAPI) subscribe(ctx context.Context, addr string, sid predfilter.SID, expr string) error {
	body, _ := json.Marshal(map[string]any{"expression": expr, "id": int(sid)})
	req, err := http.NewRequestWithContext(ctx, http.MethodPost, addr+"/subscriptions", bytes.NewReader(body))
	if err != nil {
		return &shardError{msg: err.Error()}
	}
	req.Header.Set("Content-Type", "application/json")
	return a.do(req, nil)
}

// unsubscribe removes sid on the shard at addr. A 404 is success: the
// operation's goal (sid not registered there) already holds — migration
// and failover can legitimately race a removal.
func (a *shardAPI) unsubscribe(ctx context.Context, addr string, sid predfilter.SID) error {
	req, err := http.NewRequestWithContext(ctx, http.MethodDelete,
		fmt.Sprintf("%s/subscriptions/%d", addr, sid), nil)
	if err != nil {
		return &shardError{msg: err.Error()}
	}
	err = a.do(req, nil)
	var se *shardError
	if err != nil && errors.As(err, &se) && se.status == http.StatusNotFound {
		return nil
	}
	return err
}

// listSubscriptions fetches the shard's live (id, expression) set — the
// coordinator's recovery input (Config.Recover).
func (a *shardAPI) listSubscriptions(ctx context.Context, addr string) ([]server.SubscriptionEntry, error) {
	var resp struct {
		Subscriptions []server.SubscriptionEntry `json:"subscriptions"`
	}
	if err := a.getJSON(ctx, addr+"/subscriptions", &resp); err != nil {
		return nil, err
	}
	return resp.Subscriptions, nil
}

// publish posts one document to the shard at addr and returns the
// matching sids of that shard's subscription partition. traceHeader,
// when non-empty, is the X-Predfilter-Trace value naming this call's
// span as the remote parent (the per-shard publish span).
func (a *shardAPI) publish(ctx context.Context, addr string, doc []byte, traceHeader string) ([]predfilter.SID, error) {
	req, err := http.NewRequestWithContext(ctx, http.MethodPost, addr+"/publish", bytes.NewReader(doc))
	if err != nil {
		return nil, &shardError{msg: err.Error()}
	}
	req.Header.Set("Content-Type", "application/xml")
	if traceHeader != "" {
		req.Header.Set(trace.HeaderName, traceHeader)
	}
	var resp struct {
		IDs []predfilter.SID `json:"ids"`
	}
	if err := a.do(req, &resp); err != nil {
		return nil, err
	}
	return resp.IDs, nil
}

// metricsText fetches one shard's Prometheus exposition — the rollup
// input for the coordinator's cluster-wide /metrics.
func (a *shardAPI) metricsText(ctx context.Context, addr string) (string, error) {
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, addr+"/metrics", nil)
	if err != nil {
		return "", &shardError{msg: err.Error()}
	}
	resp, err := a.hc.Do(req)
	if err != nil {
		return "", &shardError{msg: err.Error(), transient: true}
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(io.LimitReader(resp.Body, 64<<20))
	if err != nil {
		return "", &shardError{msg: fmt.Sprintf("read response: %v", err), transient: true}
	}
	if resp.StatusCode != http.StatusOK {
		return "", &shardError{status: resp.StatusCode, msg: string(body), transient: transientStatus(resp.StatusCode)}
	}
	return string(body), nil
}

// statsJSON fetches one shard's /stats document verbatim — the rollup
// input for the coordinator's cluster-wide /stats.
func (a *shardAPI) statsJSON(ctx context.Context, addr string) (json.RawMessage, error) {
	var raw json.RawMessage
	if err := a.getJSON(ctx, addr+"/stats", &raw); err != nil {
		return nil, err
	}
	return raw, nil
}

// healthy probes the shard's liveness endpoint.
func (a *shardAPI) healthy(ctx context.Context, addr string) bool {
	return a.getJSON(ctx, addr+"/healthz", nil) == nil
}

// walPoll runs one WAL-shipping poll against a primary.
func (a *shardAPI) walPoll(ctx context.Context, addr, run string, epoch, from int64) (*server.WALShipResponse, error) {
	url := addr + "/admin/wal"
	if run != "" {
		url = fmt.Sprintf("%s?run=%s&epoch=%d&from=%d", url, run, epoch, from)
	}
	var resp server.WALShipResponse
	if err := a.getJSON(ctx, url, &resp); err != nil {
		return nil, err
	}
	return &resp, nil
}
