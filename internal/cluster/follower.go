package cluster

import (
	"context"
	"fmt"
	"math/rand/v2"
	"net/http"
	"sync"
	"time"

	"predfilter"
	"predfilter/internal/server"
)

// FollowerTarget is the standby a Follower keeps in sync: an apply
// surface with idempotent, id-stable operations. *server.Server
// implements it.
type FollowerTarget interface {
	// ApplyAdd registers expr under an explicit id; re-applying the same
	// (id, expression) is a no-op.
	ApplyAdd(sid predfilter.SID, expr string) error
	// ApplyRemove deletes a subscription; removing an unknown id is a
	// no-op.
	ApplyRemove(sid predfilter.SID) error
	// SubscriptionIDs lists the live subscriptions (id → expression).
	SubscriptionIDs() map[predfilter.SID]string
}

// Follower ships a primary's WAL onto a standby: it polls the primary's
// /admin/wal endpoint with a (run, epoch, offset) cursor and applies the
// returned operations to the target in log order. When the cursor goes
// stale — the primary compacted its log, restarted, or the follower is
// brand new — the primary answers with a full snapshot instead, and the
// follower reconciles the target against it (removing subscriptions the
// snapshot lacks, adding the ones it misses) before resuming the tail.
// The standby therefore converges to the primary's exact (id, expression)
// set, which is what makes promotion a pure address swap.
type Follower struct {
	api      *shardAPI
	primary  string
	target   FollowerTarget
	interval time.Duration

	mu    sync.Mutex
	run   string
	epoch int64
	next  int64

	applied   int64 // ops applied from tails
	snapshots int64 // full resyncs

	stopOnce sync.Once
	done     chan struct{}
	wg       sync.WaitGroup
}

// FollowerConfig configures a Follower.
type FollowerConfig struct {
	// Primary is the base URL of the server whose WAL is shipped.
	Primary string
	// Target applies the shipped operations (typically the standby
	// *server.Server, in-process).
	Target FollowerTarget
	// Interval is the poll period (default 250ms).
	Interval time.Duration
	// Client is the HTTP client for polling (default
	// http.DefaultClient).
	Client *http.Client
}

// NewFollower returns a follower ready to poll; call Start for the
// background loop or Poll to drive rounds explicitly (tests).
func NewFollower(cfg FollowerConfig) (*Follower, error) {
	if cfg.Primary == "" {
		return nil, fmt.Errorf("cluster: follower needs a primary address")
	}
	if cfg.Target == nil {
		return nil, fmt.Errorf("cluster: follower needs a target")
	}
	if cfg.Interval <= 0 {
		cfg.Interval = 250 * time.Millisecond
	}
	hc := cfg.Client
	if hc == nil {
		hc = http.DefaultClient
	}
	return &Follower{
		api:      &shardAPI{hc: hc},
		primary:  cfg.Primary,
		target:   cfg.Target,
		interval: cfg.Interval,
		done:     make(chan struct{}),
	}, nil
}

// Poll runs one shipping round: a single poll of the primary and the
// application of whatever it returned. It reports how many operations
// were applied and whether the round was a snapshot resync.
func (f *Follower) Poll(ctx context.Context) (ops int, snapshot bool, err error) {
	f.mu.Lock()
	defer f.mu.Unlock()
	resp, err := f.api.walPoll(ctx, f.primary, f.run, f.epoch, f.next)
	if err != nil {
		return 0, false, err
	}
	if resp.Snapshot {
		n, err := f.reconcile(resp.Entries)
		if err != nil {
			return n, true, err
		}
		f.run, f.epoch, f.next = resp.Run, resp.Epoch, resp.Next
		f.snapshots++
		return n, true, nil
	}
	for _, op := range resp.Ops {
		var aerr error
		switch op.Op {
		case "add":
			aerr = f.target.ApplyAdd(op.ID, op.Expression)
		case "remove":
			aerr = f.target.ApplyRemove(op.ID)
		default:
			aerr = fmt.Errorf("unknown wal op %q", op.Op)
		}
		if aerr != nil {
			// Stop mid-tail without advancing the cursor past the failed
			// record: the next round retries from it (applies are
			// idempotent, so the ones already done are harmless).
			return ops, false, fmt.Errorf("apply %s %d: %w", op.Op, op.ID, aerr)
		}
		ops++
	}
	f.run, f.epoch, f.next = resp.Run, resp.Epoch, resp.Next
	f.applied += int64(ops)
	return ops, false, nil
}

// reconcile makes the target's subscription set equal the snapshot's:
// extras are removed first (so an id being re-registered under a new
// expression never conflicts), then missing or changed entries are added.
func (f *Follower) reconcile(entries []server.WALShipEntry) (int, error) {
	want := make(map[predfilter.SID]string, len(entries))
	for _, e := range entries {
		want[e.ID] = e.Expression
	}
	have := f.target.SubscriptionIDs()
	n := 0
	for sid, expr := range have {
		if w, ok := want[sid]; !ok || w != expr {
			if err := f.target.ApplyRemove(sid); err != nil {
				return n, fmt.Errorf("reconcile remove %d: %w", sid, err)
			}
			n++
		}
	}
	for sid, expr := range want {
		if have[sid] == expr {
			continue
		}
		if err := f.target.ApplyAdd(sid, expr); err != nil {
			return n, fmt.Errorf("reconcile add %d: %w", sid, err)
		}
		n++
	}
	return n, nil
}

// jitterInterval spreads one poll delay uniformly over ±20% of base, so
// a fleet of followers started together (every standby after a
// coordinated restart) decorrelates instead of polling its primaries in
// lockstep.
func jitterInterval(base time.Duration) time.Duration {
	return time.Duration(float64(base) * (0.8 + 0.4*rand.Float64()))
}

// Start launches the background polling loop. Poll errors are retried
// next interval — the primary being briefly down is the normal case the
// follower exists for. Each delay is jittered ±20% around the configured
// interval (see jitterInterval).
func (f *Follower) Start() {
	f.wg.Add(1)
	go func() {
		defer f.wg.Done()
		t := time.NewTimer(jitterInterval(f.interval))
		defer t.Stop()
		for {
			select {
			case <-f.done:
				return
			case <-t.C:
			}
			ctx, cancel := context.WithTimeout(context.Background(), f.interval*4)
			_, _, _ = f.Poll(ctx)
			cancel()
			t.Reset(jitterInterval(f.interval))
		}
	}()
}

// Stop halts the polling loop. The target keeps whatever state was
// shipped — that is the point.
func (f *Follower) Stop() {
	f.stopOnce.Do(func() { close(f.done) })
	f.wg.Wait()
}

// Position reports the follower's current cursor and lifetime counters.
func (f *Follower) Position() (run string, epoch, next int64, applied, snapshots int64) {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.run, f.epoch, f.next, f.applied, f.snapshots
}
