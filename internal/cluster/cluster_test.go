package cluster_test

import (
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"reflect"
	"sort"
	"strings"
	"testing"
	"time"

	"predfilter"
	"predfilter/internal/bench"
	"predfilter/internal/cluster"
	"predfilter/internal/dtd"
	"predfilter/internal/server"
)

// testWorkload is a small randomized NITF workload: enough expressions
// that every shard of an 8-way split owns a real partition, documents
// deep enough to exercise predicates.
func testWorkload(t *testing.T, exprs, docs int) *bench.Workload {
	t.Helper()
	cfg := bench.DefaultWorkloadConfig(exprs)
	cfg.Docs = docs
	cfg.Filters = 1
	w, err := bench.NewWorkload(dtd.NITF(), cfg)
	if err != nil {
		t.Fatal(err)
	}
	return w
}

// singleEngineSets computes the reference match sets: one engine holding
// every expression, results sorted ascending (the cluster gather merge's
// canonical order — a single engine reports in registration order, which
// the merge normalizes).
func singleEngineSets(t *testing.T, w *bench.Workload) [][]predfilter.SID {
	t.Helper()
	eng := predfilter.New(predfilter.Config{})
	sids, err := eng.AddAll(w.XPEs)
	if err != nil {
		t.Fatal(err)
	}
	for i, sid := range sids {
		if sid != predfilter.SID(i) {
			t.Fatalf("reference engine assigned sid %d to expression %d", sid, i)
		}
	}
	out := make([][]predfilter.SID, len(w.Docs))
	for i, doc := range w.Docs {
		got, err := eng.Match(doc)
		if err != nil {
			t.Fatal(err)
		}
		sort.Slice(got, func(a, b int) bool { return got[a] < got[b] })
		out[i] = got
	}
	return out
}

// shardSet is N in-process shards behind real HTTP listeners.
type shardSet struct {
	servers []*server.Server
	https   []*httptest.Server
	specs   []cluster.ShardSpec
}

func newShardSet(t *testing.T, n int) *shardSet {
	t.Helper()
	set := &shardSet{}
	for i := 0; i < n; i++ {
		srv := server.New(server.Config{})
		ts := httptest.NewServer(srv)
		t.Cleanup(ts.Close)
		set.servers = append(set.servers, srv)
		set.https = append(set.https, ts)
		set.specs = append(set.specs, cluster.ShardSpec{
			Name: fmt.Sprintf("shard-%d", i),
			Addr: ts.URL,
		})
	}
	return set
}

func newTestCoordinator(t *testing.T, specs []cluster.ShardSpec) *cluster.Coordinator {
	t.Helper()
	c, err := cluster.New(cluster.Config{
		Shards:         specs,
		PublishTimeout: 5 * time.Second,
		Retries:        1,
		RetryBackoff:   5 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(c.Close)
	return c
}

// TestClusterEquivalence is the cross-shard correctness property: for
// shard counts 1, 2 and 4, a cluster holding a randomized workload
// reports — through the scatter/gather merge — exactly the match set and
// delivery order of one engine holding all subscriptions.
func TestClusterEquivalence(t *testing.T) {
	w := testWorkload(t, 300, 30)
	want := singleEngineSets(t, w)
	ctx := context.Background()
	for _, shards := range []int{1, 2, 4} {
		t.Run(fmt.Sprintf("shards=%d", shards), func(t *testing.T) {
			set := newShardSet(t, shards)
			c := newTestCoordinator(t, set.specs)
			for i, xpe := range w.XPEs {
				sid, err := c.Subscribe(ctx, xpe)
				if err != nil {
					t.Fatalf("subscribe %d: %v", i, err)
				}
				if sid != predfilter.SID(i) {
					t.Fatalf("cluster assigned sid %d to expression %d: global sid space must match a single engine's", sid, i)
				}
			}
			// Every shard owns a nonempty partition at these sizes; the
			// equivalence below would be vacuous otherwise.
			if shards > 1 {
				for i, srv := range set.servers {
					if len(srv.SubscriptionIDs()) == 0 {
						t.Fatalf("shard %d owns no subscriptions", i)
					}
				}
			}
			for i, doc := range w.Docs {
				res, err := c.Publish(ctx, doc)
				if err != nil {
					t.Fatalf("publish doc %d: %v", i, err)
				}
				if res.Degraded {
					t.Fatalf("doc %d: degraded result with all shards up", i)
				}
				if !sidSetsEqual(res.SIDs, want[i]) {
					t.Fatalf("doc %d: cluster matched %v, single engine %v", i, res.SIDs, want[i])
				}
			}
		})
	}
}

func sidSetsEqual(a, b []predfilter.SID) bool {
	if len(a) == 0 && len(b) == 0 {
		return true
	}
	return reflect.DeepEqual(a, b)
}

func jsonDecode(resp *http.Response, v any) error {
	defer resp.Body.Close()
	return json.NewDecoder(resp.Body).Decode(v)
}

// TestClusterHTTPSurface drives the coordinator through its HTTP handler
// — the path xfserve -cluster exposes — end to end: subscribe, publish,
// stats, metrics, delivery proxying.
func TestClusterHTTPSurface(t *testing.T) {
	set := newShardSet(t, 2)
	c := newTestCoordinator(t, set.specs)
	front := httptest.NewServer(c)
	defer front.Close()

	resp, err := http.Post(front.URL+"/subscriptions", "application/json",
		strings.NewReader(`{"expression":"/nitf/head/title"}`))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusCreated {
		t.Fatalf("subscribe = %d", resp.StatusCode)
	}

	pub, err := http.Post(front.URL+"/publish", "application/xml",
		strings.NewReader("<nitf><head><title>x</title></head></nitf>"))
	if err != nil {
		t.Fatal(err)
	}
	var pr struct {
		Matches  int              `json:"matches"`
		IDs      []predfilter.SID `json:"ids"`
		Degraded bool             `json:"degraded"`
	}
	if err := jsonDecode(pub, &pr); err != nil {
		t.Fatal(err)
	}
	if pr.Matches != 1 || len(pr.IDs) != 1 || pr.IDs[0] != 0 || pr.Degraded {
		t.Fatalf("publish = %+v, want ids [0]", pr)
	}

	// The delivered document is queued on the owning shard and readable
	// through the coordinator.
	del, err := http.Get(front.URL + "/deliveries/0")
	if err != nil {
		t.Fatal(err)
	}
	var dr struct {
		Documents []string `json:"documents"`
	}
	if err := jsonDecode(del, &dr); err != nil {
		t.Fatal(err)
	}
	if len(dr.Documents) != 1 || !strings.Contains(dr.Documents[0], "<title>") {
		t.Fatalf("deliveries = %+v", dr)
	}

	st, err := http.Get(front.URL + "/stats")
	if err != nil {
		t.Fatal(err)
	}
	var sr cluster.Stats
	if err := jsonDecode(st, &sr); err != nil {
		t.Fatal(err)
	}
	if sr.Subscriptions != 1 || sr.Shards != 2 || sr.DocsPublished != 1 {
		t.Fatalf("stats = %+v", sr)
	}

	met, err := http.Get(front.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer met.Body.Close()
	buf := new(strings.Builder)
	if _, err := io.Copy(buf, met.Body); err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{
		"predfilter_cluster_docs_published_total 1",
		`predfilter_cluster_shard_published_total{shard="shard-0"} 1`,
		`predfilter_cluster_shard_published_total{shard="shard-1"} 1`,
	} {
		if !strings.Contains(buf.String(), want) {
			t.Fatalf("metrics miss %q:\n%s", want, buf.String())
		}
	}
}

// TestClusterShardKillAndFailover is the chaos property: killing a shard
// mid-stream degrades publishes (partial match set, flagged, the dead
// shard named) instead of failing them, and promoting the WAL-shipped
// standby restores the full single-engine match set.
func TestClusterShardKillAndFailover(t *testing.T) {
	w := testWorkload(t, 200, 20)
	want := singleEngineSets(t, w)
	ctx := context.Background()

	// Shard 0 is plain; shard 1 is persistent with a hot standby kept in
	// sync by a follower (the topology -standbys configures).
	plain := server.New(server.Config{})
	plainTS := httptest.NewServer(plain)
	defer plainTS.Close()

	primary, err := server.Open(server.Config{StateDir: t.TempDir(), NoSync: true})
	if err != nil {
		t.Fatal(err)
	}
	defer primary.Close()
	primaryTS := httptest.NewServer(primary)

	standby := server.New(server.Config{})
	standbyTS := httptest.NewServer(standby)
	defer standbyTS.Close()

	fol, err := cluster.NewFollower(cluster.FollowerConfig{
		Primary: primaryTS.URL,
		Target:  standby,
	})
	if err != nil {
		t.Fatal(err)
	}

	c := newTestCoordinator(t, []cluster.ShardSpec{
		{Name: "shard-0", Addr: plainTS.URL},
		{Name: "shard-1", Addr: primaryTS.URL, Standby: standbyTS.URL},
	})
	for i, xpe := range w.XPEs {
		if _, err := c.Subscribe(ctx, xpe); err != nil {
			t.Fatalf("subscribe %d: %v", i, err)
		}
	}
	// Ship the registrations to the standby before the kill.
	if _, snap, err := fol.Poll(ctx); err != nil || !snap {
		t.Fatalf("follower bootstrap: snap=%v err=%v", snap, err)
	}
	if got, wantIDs := standby.SubscriptionIDs(), primary.SubscriptionIDs(); !reflect.DeepEqual(got, wantIDs) {
		t.Fatalf("standby out of sync before kill: %d vs %d subscriptions", len(got), len(wantIDs))
	}

	// Phase 1: healthy cluster matches the single engine.
	half := len(w.Docs) / 2
	for i, doc := range w.Docs[:half] {
		res, err := c.Publish(ctx, doc)
		if err != nil {
			t.Fatal(err)
		}
		if res.Degraded || !sidSetsEqual(res.SIDs, want[i]) {
			t.Fatalf("doc %d before kill: %+v, want %v", i, res, want[i])
		}
	}

	// Phase 2: kill the primary mid-stream. Publishes degrade — the match
	// set is exactly the surviving shard's partition, flagged, with the
	// dead shard named — rather than erroring.
	primaryTS.CloseClientConnections()
	primaryTS.Close()
	sawPartial := false
	for i, doc := range w.Docs[half:] {
		res, err := c.Publish(ctx, doc)
		if err != nil {
			t.Fatalf("doc %d after kill: %v", half+i, err)
		}
		if !res.Degraded || len(res.Skipped) != 1 || res.Skipped[0] != "shard-1" {
			t.Fatalf("doc %d after kill: degraded=%v skipped=%v", half+i, res.Degraded, res.Skipped)
		}
		full := want[half+i]
		if len(res.SIDs) > len(full) {
			t.Fatalf("doc %d degraded result larger than full set", half+i)
		}
		for _, sid := range res.SIDs {
			if owner, _ := c.OwnerOf(sid); owner != "shard-0" {
				t.Fatalf("degraded result contains sid %d owned by dead shard", sid)
			}
		}
		if len(res.SIDs) < len(full) {
			sawPartial = true
		}
	}
	if !sawPartial {
		t.Fatal("kill never produced a strictly partial match set; workload too small to exercise degradation")
	}

	// Phase 3: promote the standby. The full match set comes back.
	if err := c.Promote("shard-1"); err != nil {
		t.Fatal(err)
	}
	for i, doc := range w.Docs {
		res, err := c.Publish(ctx, doc)
		if err != nil {
			t.Fatalf("doc %d after failover: %v", i, err)
		}
		if res.Degraded || !sidSetsEqual(res.SIDs, want[i]) {
			t.Fatalf("doc %d after failover: %+v, want %v", i, res, want[i])
		}
	}
	if st := c.Stats(); st.Failovers != 1 {
		t.Fatalf("failovers = %d, want 1", st.Failovers)
	}
}

// TestClusterRebalanceMigration grows and shrinks a live cluster:
// AddShard moves only its consistent-hash share of the subscriptions,
// every SID keeps resolving to a shard that actually holds it, and the
// match set stays equivalent throughout.
func TestClusterRebalanceMigration(t *testing.T) {
	w := testWorkload(t, 200, 10)
	want := singleEngineSets(t, w)
	ctx := context.Background()

	set := newShardSet(t, 2)
	c := newTestCoordinator(t, set.specs)
	for _, xpe := range w.XPEs {
		if _, err := c.Subscribe(ctx, xpe); err != nil {
			t.Fatal(err)
		}
	}
	holds := func() map[string]map[predfilter.SID]string {
		m := map[string]map[predfilter.SID]string{}
		for i, srv := range set.servers {
			m[fmt.Sprintf("shard-%d", i)] = srv.SubscriptionIDs()
		}
		return m
	}
	ownersBefore := map[predfilter.SID]string{}
	for i := range w.XPEs {
		o, ok := c.OwnerOf(predfilter.SID(i))
		if !ok {
			t.Fatalf("sid %d unowned", i)
		}
		ownersBefore[predfilter.SID(i)] = o
	}

	// Grow 2 → 3.
	srv3 := server.New(server.Config{})
	ts3 := httptest.NewServer(srv3)
	defer ts3.Close()
	set.servers = append(set.servers, srv3)
	if err := c.AddShard(ctx, cluster.ShardSpec{Name: "shard-2", Addr: ts3.URL}); err != nil {
		t.Fatal(err)
	}
	moved := 0
	byShard := holds()
	for i := range w.XPEs {
		sid := predfilter.SID(i)
		owner, ok := c.OwnerOf(sid)
		if !ok {
			t.Fatalf("sid %d lost its owner after rebalance", sid)
		}
		if _, held := byShard[owner][sid]; !held {
			t.Fatalf("sid %d routed to %s, which does not hold it", sid, owner)
		}
		if owner != ownersBefore[sid] {
			if owner != "shard-2" {
				t.Fatalf("sid %d moved %s→%s, not to the new shard", sid, ownersBefore[sid], owner)
			}
			moved++
		}
	}
	expect := float64(len(w.XPEs)) / 3
	if f := float64(moved); f < expect*0.4 || f > expect*1.8 {
		t.Fatalf("migration moved %d of %d subscriptions, want ≈%.0f", moved, len(w.XPEs), expect)
	}
	for i, doc := range w.Docs {
		res, err := c.Publish(ctx, doc)
		if err != nil {
			t.Fatal(err)
		}
		if res.Degraded || !sidSetsEqual(res.SIDs, want[i]) {
			t.Fatalf("doc %d after grow: %+v, want %v", i, res, want[i])
		}
	}

	// Shrink 3 → 2: everything returns to the original placement.
	if err := c.RemoveShard(ctx, "shard-2"); err != nil {
		t.Fatal(err)
	}
	byShard = holds()
	for i := range w.XPEs {
		sid := predfilter.SID(i)
		owner, ok := c.OwnerOf(sid)
		if !ok || owner != ownersBefore[sid] {
			t.Fatalf("sid %d: owner %q after shrink, want %q", sid, owner, ownersBefore[sid])
		}
		if _, held := byShard[owner][sid]; !held {
			t.Fatalf("sid %d routed to %s after shrink, which does not hold it", sid, owner)
		}
	}
	for i, doc := range w.Docs {
		res, err := c.Publish(ctx, doc)
		if err != nil {
			t.Fatal(err)
		}
		if res.Degraded || !sidSetsEqual(res.SIDs, want[i]) {
			t.Fatalf("doc %d after shrink: %+v, want %v", i, res, want[i])
		}
	}
}
