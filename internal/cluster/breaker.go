package cluster

import (
	"errors"
	"math/rand/v2"
	"net/http"
	"sync"
	"sync/atomic"
	"time"
)

// Per-shard circuit breaker. A shard that keeps failing transiently —
// connection refused, timeouts, 5xx — trips its breaker after
// Config.BreakerThreshold consecutive failures; from then on calls
// short-circuit immediately (publishes mark the shard Skipped/Degraded
// without burning PublishTimeout on it) until the cooldown elapses, at
// which point exactly one probe call is let through. A successful probe
// closes the breaker; a failed one reopens it for another cooldown.
// The health monitor's /healthz probes feed the same breaker, so a
// coordinator with the monitor running recovers a healed shard within
// one health interval even when no publish traffic is probing.
//
// A deliberate shard answer counts as success even when it is an error
// status: a 409 or 422 proves the shard is alive and reasoning about
// the request, and 429 is backpressure from a live shard — opening the
// breaker on those would turn application answers into outages.

// errShardBreakerOpen is returned by callWithRetry when a shard's
// breaker refused the call before any attempt was made. It is not a
// *shardError: the publish path treats it like an exhausted transient
// failure (skip + degrade), and the subscribe path knows that no RPC
// was issued, so the sid is verifiably free — no cleanup, no burn.
var errShardBreakerOpen = errors.New("cluster: shard breaker open")

// errProbeFailed stands in for a failed /healthz probe when feeding the
// breaker (the probe API reports a bool, not an error).
var errProbeFailed = errors.New("cluster: health probe failed")

const (
	breakerClosed int32 = iota
	breakerHalfOpen
	breakerOpen
)

var breakerStateNames = [...]string{"closed", "half_open", "open"}

// breaker is one shard's circuit breaker. A nil *breaker is a disabled
// breaker: allow always grants, feedback is a no-op — the
// Config.BreakerThreshold < 0 opt-out costs one nil check.
type breaker struct {
	threshold int
	cooldown  time.Duration

	mu       sync.Mutex
	state    int32
	fails    int       // consecutive transient failures while closed
	openedAt time.Time // when the breaker last opened
	probing  bool      // a half-open probe is in flight

	opens     atomic.Int64 // closed/half-open → open transitions
	fastFails atomic.Int64 // calls refused without touching the network
}

func newBreaker(threshold int, cooldown time.Duration) *breaker {
	return &breaker{threshold: threshold, cooldown: cooldown}
}

// allow reports whether a call may proceed. While open it refuses
// everything until cooldown has elapsed, then grants a single probe
// (half-open); concurrent callers keep getting refused until that probe
// reports back through success or failure.
func (b *breaker) allow(now time.Time) bool {
	if b == nil {
		return true
	}
	b.mu.Lock()
	defer b.mu.Unlock()
	switch b.state {
	case breakerClosed:
		return true
	case breakerOpen:
		if now.Sub(b.openedAt) >= b.cooldown && !b.probing {
			b.state = breakerHalfOpen
			b.probing = true
			return true
		}
	case breakerHalfOpen:
		if !b.probing {
			b.probing = true
			return true
		}
	}
	b.fastFails.Add(1)
	return false
}

// success records a call the shard answered deliberately (any status).
// It closes the breaker from any state and reports whether it was open
// or half-open before — the caller logs the recovery exactly once.
func (b *breaker) success() (reclosed bool) {
	if b == nil {
		return false
	}
	b.mu.Lock()
	defer b.mu.Unlock()
	reclosed = b.state != breakerClosed
	b.state = breakerClosed
	b.fails = 0
	b.probing = false
	return reclosed
}

// failure records a transient failure and reports whether it opened the
// breaker. A failed half-open probe reopens immediately; a closed
// breaker opens at the threshold. Failures while already open (calls
// that were in flight when it tripped) keep it open without extending
// the cooldown.
func (b *breaker) failure(now time.Time) (opened bool) {
	if b == nil {
		return false
	}
	b.mu.Lock()
	defer b.mu.Unlock()
	switch b.state {
	case breakerHalfOpen:
		b.state = breakerOpen
		b.openedAt = now
		b.probing = false
		b.opens.Add(1)
		return true
	case breakerOpen:
		b.probing = false
		return false
	default:
		b.fails++
		if b.fails >= b.threshold {
			b.state = breakerOpen
			b.openedAt = now
			b.opens.Add(1)
			return true
		}
		return false
	}
}

// snapshot returns the state name and the lifetime counters.
func (b *breaker) snapshot() (state string, opens, fastFails int64) {
	if b == nil {
		return "disabled", 0, 0
	}
	b.mu.Lock()
	s := b.state
	b.mu.Unlock()
	return breakerStateNames[s], b.opens.Load(), b.fastFails.Load()
}

// stateGauge maps the breaker state onto the metric value for
// predfilter_cluster_breaker_state: 0 closed, 1 half-open, 2 open
// (disabled breakers report 0 — a disabled breaker never blocks).
func (b *breaker) stateGauge() int64 {
	if b == nil {
		return 0
	}
	b.mu.Lock()
	defer b.mu.Unlock()
	return int64(b.state)
}

// recordOutcome classifies one finished shard call into the breaker.
// err == nil and deliberate shard answers — non-transient statuses and
// 429 backpressure — are successes (the shard is alive); transport
// failures and gateway statuses (502/503/504) are failures.
func (b *breaker) recordOutcome(err error, now time.Time) (reclosed, opened bool) {
	if b == nil {
		return false, false
	}
	if err == nil {
		return b.success(), false
	}
	var se *shardError
	if errors.As(err, &se) && (!se.transient || se.status == http.StatusTooManyRequests) {
		return b.success(), false
	}
	return false, b.failure(now)
}

// backoffFor computes the sleep before retry attempt k (k ≥ 1):
// exponential growth from Config.RetryBackoff, capped at
// Config.RetryBackoffMax, with full jitter — a uniform draw from
// (0, cap] so a thundering herd of retries decorrelates instead of
// synchronizing on the failure instant. When the last failure was a 429
// carrying Retry-After, that becomes the floor: the shard asked for
// breathing room, and retrying sooner would only burn the attempt.
func (c *Coordinator) backoffFor(attempt int, lastErr error) time.Duration {
	d := c.cfg.RetryBackoff
	for i := 1; i < attempt; i++ {
		d *= 2
		if d >= c.cfg.RetryBackoffMax {
			d = c.cfg.RetryBackoffMax
			break
		}
	}
	if d > c.cfg.RetryBackoffMax {
		d = c.cfg.RetryBackoffMax
	}
	d = time.Duration(rand.Int64N(int64(d))) + 1
	var se *shardError
	if errors.As(lastErr, &se) && se.status == http.StatusTooManyRequests && se.retryAfter > 0 {
		if floor := time.Duration(se.retryAfter) * time.Second; d < floor {
			d = floor
		}
	}
	return d
}
