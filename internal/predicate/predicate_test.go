package predicate

import (
	"math/rand"
	"strings"
	"testing"
	"testing/quick"

	"predfilter/internal/xmldoc"
	"predfilter/internal/xpath"
)

func TestPredicateString(t *testing.T) {
	cases := []struct {
		p    Predicate
		want string
	}{
		{Predicate{Kind: Absolute, Op: EQ, Tag1: "a", Value: 1}, "(p_a, =, 1)"},
		{Predicate{Kind: Absolute, Op: GE, Tag1: "t", Value: 3}, "(p_t, >=, 3)"},
		{Predicate{Kind: Relative, Op: EQ, Tag1: "a", Tag2: "b", Value: 2}, "(d(p_a, p_b), =, 2)"},
		{Predicate{Kind: EndOfPath, Op: GE, Tag1: "c", Value: 2}, "(p_c⊣, >=, 2)"},
		{Predicate{Kind: Length, Op: GE, Value: 4}, "(length, >=, 4)"},
		{
			Predicate{Kind: Absolute, Op: EQ, Tag1: "t", Value: 2,
				Attrs1: []xpath.AttrFilter{{Name: "x", Op: xpath.AttrEQ, Value: "3"}}},
			"(p_t([x,=,3]), =, 2)",
		},
	}
	for _, tc := range cases {
		if got := tc.p.String(); got != tc.want {
			t.Errorf("String() = %q, want %q", got, tc.want)
		}
	}
}

func TestKindString(t *testing.T) {
	for k, want := range map[Kind]string{
		Absolute: "absolute", Relative: "relative", EndOfPath: "end-of-path", Length: "length",
	} {
		if got := k.String(); got != want {
			t.Errorf("Kind(%d).String() = %q, want %q", k, got, want)
		}
	}
}

func TestAttrKey(t *testing.T) {
	bare := Predicate{Kind: Absolute, Op: EQ, Tag1: "a", Value: 1}
	if bare.AttrKey() != "" {
		t.Errorf("bare AttrKey = %q", bare.AttrKey())
	}
	f1 := bare
	f1.Attrs1 = []xpath.AttrFilter{{Name: "x", Op: xpath.AttrEQ, Value: "1"}}
	f2 := bare
	f2.Attrs1 = []xpath.AttrFilter{{Name: "x", Op: xpath.AttrEQ, Value: "2"}}
	f3 := bare
	f3.Attrs2 = []xpath.AttrFilter{{Name: "x", Op: xpath.AttrEQ, Value: "1"}}
	keys := map[string]bool{}
	for _, p := range []Predicate{f1, f2, f3} {
		k := p.AttrKey()
		if k == "" {
			t.Errorf("filtered predicate has empty AttrKey: %s", p)
		}
		if keys[k] {
			t.Errorf("AttrKey collision for %s", p)
		}
		keys[k] = true
	}
	// Identical filters produce identical keys.
	f4 := f1
	if f4.AttrKey() != f1.AttrKey() {
		t.Error("identical filters differ in AttrKey")
	}
}

func TestEvalAttrs(t *testing.T) {
	tup := &xmldoc.Tuple{
		Tag:   "a",
		Attrs: []xmldoc.Attr{{Name: "n", Value: "10"}, {Name: "s", Value: "beta"}},
	}
	cases := []struct {
		f    xpath.AttrFilter
		want bool
	}{
		{xpath.AttrFilter{Name: "n", Op: xpath.AttrExists}, true},
		{xpath.AttrFilter{Name: "missing", Op: xpath.AttrExists}, false},
		{xpath.AttrFilter{Name: "n", Op: xpath.AttrEQ, Value: "10"}, true},
		{xpath.AttrFilter{Name: "n", Op: xpath.AttrEQ, Value: "10.0"}, true}, // numeric equality
		{xpath.AttrFilter{Name: "n", Op: xpath.AttrNE, Value: "9"}, true},
		{xpath.AttrFilter{Name: "n", Op: xpath.AttrGT, Value: "9"}, true}, // numeric: 10 > 9
		{xpath.AttrFilter{Name: "n", Op: xpath.AttrLT, Value: "9"}, false},
		{xpath.AttrFilter{Name: "n", Op: xpath.AttrGE, Value: "10"}, true},
		{xpath.AttrFilter{Name: "n", Op: xpath.AttrLE, Value: "10"}, true},
		{xpath.AttrFilter{Name: "s", Op: xpath.AttrEQ, Value: "beta"}, true},
		{xpath.AttrFilter{Name: "s", Op: xpath.AttrGT, Value: "alpha"}, true}, // lexicographic
		{xpath.AttrFilter{Name: "s", Op: xpath.AttrLT, Value: "alpha"}, false},
		{xpath.AttrFilter{Name: "s", Op: xpath.AttrNE, Value: "beta"}, false},
	}
	for _, tc := range cases {
		if got := EvalAttrs([]xpath.AttrFilter{tc.f}, tup); got != tc.want {
			t.Errorf("EvalAttrs(%v) = %v, want %v", tc.f, got, tc.want)
		}
	}
	// Conjunction: all filters must hold.
	both := []xpath.AttrFilter{
		{Name: "n", Op: xpath.AttrGE, Value: "10"},
		{Name: "s", Op: xpath.AttrEQ, Value: "beta"},
	}
	if !EvalAttrs(both, tup) {
		t.Error("conjunction of satisfied filters failed")
	}
	both[1].Value = "gamma"
	if EvalAttrs(both, tup) {
		t.Error("conjunction with one failing filter passed")
	}
	if !EvalAttrs(nil, tup) {
		t.Error("empty filter list must pass")
	}
}

// TestEncodingSizeInvariant: an encoding never has more predicates than
// location steps plus one (quick-checked over random expressions).
func TestEncodingSizeInvariant(t *testing.T) {
	tags := []string{"a", "b", "c"}
	rng := rand.New(rand.NewSource(71))
	gen := func(r *rand.Rand) string {
		n := 1 + r.Intn(6)
		var b strings.Builder
		if r.Intn(2) == 0 {
			b.WriteString("/")
		}
		for i := 0; i < n; i++ {
			if i > 0 {
				if r.Intn(4) == 0 {
					b.WriteString("//")
				} else {
					b.WriteString("/")
				}
			}
			if r.Intn(3) == 0 {
				b.WriteString("*")
			} else {
				b.WriteString(tags[r.Intn(len(tags))])
			}
		}
		return b.String()
	}
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed ^ rng.Int63()))
		s := gen(r)
		p := xpath.MustParse(s)
		enc, err := Encode(p, Inline)
		if err != nil {
			return false
		}
		if len(enc.Preds) == 0 || len(enc.Preds) > len(p.Steps)+1 {
			t.Logf("%q: %d predicates for %d steps", s, len(enc.Preds), len(p.Steps))
			return false
		}
		if len(enc.PostAttrs) != len(enc.Preds) {
			return false
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 3000}); err != nil {
		t.Error(err)
	}
}

// TestEncodingDeterministic: encoding the same expression twice yields
// identical predicate sequences.
func TestEncodingDeterministic(t *testing.T) {
	for _, s := range []string{"/a/b/c", "a//b", "*/a/*/b//c/*/*", "/a[@x=1]/b"} {
		a := MustEncode(xpath.MustParse(s), Inline)
		b := MustEncode(xpath.MustParse(s), Inline)
		if a.String() != b.String() {
			t.Errorf("%q encodes differently across calls", s)
		}
	}
}
