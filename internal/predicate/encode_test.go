package predicate

import (
	"testing"

	"predfilter/internal/xpath"
)

// TestPaperEncodings checks the encoder against every worked example of
// §3.2 of the paper (simple expressions s1–s3, wildcards s4–s11,
// descendant operators s12–s15, and the order-sensitivity example).
func TestPaperEncodings(t *testing.T) {
	cases := []struct {
		name string
		xpe  string
		want string
	}{
		{"s1", "/a/b/b", "(p_a, =, 1) ↦ (d(p_a, p_b), =, 1) ↦ (d(p_b, p_b), =, 1)"},
		{"s2", "a", "(p_a, >=, 1)"},
		{"s3", "a/a/b/c", "(d(p_a, p_a), =, 1) ↦ (d(p_a, p_b), =, 1) ↦ (d(p_b, p_c), =, 1)"},
		{"s4", "/a/*/*/b", "(p_a, =, 1) ↦ (d(p_a, p_b), =, 3)"},
		{"s5", "/a/b/*/*", "(p_a, =, 1) ↦ (d(p_a, p_b), =, 1) ↦ (p_b⊣, >=, 2)"},
		{"s6", "/*/a/b", "(p_a, =, 2) ↦ (d(p_a, p_b), =, 1)"},
		{"s7", "/*/*/*/*", "(length, >=, 4)"},
		{"s8", "a/b/*/*", "(d(p_a, p_b), =, 1) ↦ (p_b⊣, >=, 2)"},
		{"s9", "*/*/a/*/b", "(p_a, >=, 3) ↦ (d(p_a, p_b), =, 2)"},
		{"s10", "a/*/*/b/c", "(d(p_a, p_b), =, 3) ↦ (d(p_b, p_c), =, 1)"},
		{"s11", "*/*/*/*", "(length, >=, 4)"},
		{"s12", "/a//b/c", "(p_a, =, 1) ↦ (d(p_a, p_b), >=, 1) ↦ (d(p_b, p_c), =, 1)"},
		{"s13", "/*/b//c/*", "(p_b, =, 2) ↦ (d(p_b, p_c), >=, 1) ↦ (p_c⊣, >=, 1)"},
		{"s14", "a/b//c", "(d(p_a, p_b), =, 1) ↦ (d(p_b, p_c), >=, 1)"},
		{"s15", "*/a/*/b//c/*/*", "(p_a, >=, 2) ↦ (d(p_a, p_b), =, 2) ↦ (d(p_b, p_c), >=, 1) ↦ (p_c⊣, >=, 2)"},
		// §3.2 order-sensitivity examples.
		{"order1", "a/c/*/a//c", "(d(p_a, p_c), =, 1) ↦ (d(p_c, p_a), =, 2) ↦ (d(p_a, p_c), >=, 1)"},
		{"order2", "a//c/*/a/c", "(d(p_a, p_c), >=, 1) ↦ (d(p_c, p_a), =, 2) ↦ (d(p_a, p_c), =, 1)"},
		// §2 introduction example fragments.
		{"intro1", "a/b/c/d", "(d(p_a, p_b), =, 1) ↦ (d(p_b, p_c), =, 1) ↦ (d(p_c, p_d), =, 1)"},
		{"intro2", "b//b/c", "(d(p_b, p_b), >=, 1) ↦ (d(p_b, p_c), =, 1)"},
		// Additional regression coverage for first-step edge cases.
		{"desc-root", "//a/b", "(d(p_a, p_b), =, 1)"},
		{"desc-root-single", "//a", "(p_a, >=, 1)"},
		{"rel-trailing-only", "a/*", "(p_a⊣, >=, 1)"},
		{"abs-trailing-only", "/a/*", "(p_a, =, 1) ↦ (p_a⊣, >=, 1)"},
		{"wild-then-desc", "/*//a/b", "(p_a, >=, 2) ↦ (d(p_a, p_b), =, 1)"},
		{"all-wild-desc", "/*//*", "(length, >=, 2)"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			enc := MustEncode(xpath.MustParse(tc.xpe), Inline)
			if got := enc.String(); got != tc.want {
				t.Errorf("Encode(%q):\n got  %s\n want %s", tc.xpe, got, tc.want)
			}
		})
	}
}

// TestEncodingsShareCommonParts verifies the paper's central overlap
// claim: the common fragment of two expressions maps to the identical
// predicate value.
func TestEncodingsShareCommonParts(t *testing.T) {
	// a/b appears in both expressions at different offsets; both must
	// produce the predicate (d(p_a, p_b), =, 1).
	e1 := MustEncode(xpath.MustParse("/x/a/b"), Inline)
	e2 := MustEncode(xpath.MustParse("a/b/y"), Inline)
	want := Predicate{Kind: Relative, Op: EQ, Tag1: "a", Tag2: "b", Value: 1}
	found := func(e *Encoding) bool {
		for _, p := range e.Preds {
			if p.Kind == want.Kind && p.Op == want.Op && p.Tag1 == want.Tag1 && p.Tag2 == want.Tag2 && p.Value == want.Value {
				return true
			}
		}
		return false
	}
	if !found(e1) || !found(e2) {
		t.Errorf("common fragment a/b not encoded identically: %s vs %s", e1, e2)
	}
}

// TestEncodeChainAdjacency checks the structural invariant the occurrence
// determination algorithm relies on: adjacent predicates share the chained
// tag (predicate i's second tag variable equals predicate i+1's first).
func TestEncodeChainAdjacency(t *testing.T) {
	xpes := []string{
		"/a/b/c", "a//b/c", "*/a/*/b//c/*/*", "/a/*/*", "a/b", "/x//y//z/*",
		"/a/b/b", "a/c/*/a//c", "b//b/c",
	}
	for _, s := range xpes {
		enc := MustEncode(xpath.MustParse(s), Inline)
		for i := 1; i < len(enc.Preds); i++ {
			prev, cur := enc.Preds[i-1], enc.Preds[i]
			prevTag := prev.Tag1
			if prev.Kind == Relative {
				prevTag = prev.Tag2
			}
			if cur.Tag1 != prevTag {
				t.Errorf("%q: predicate %d (%s) does not chain on predicate %d (%s)", s, i, cur, i-1, prev)
			}
		}
	}
}

// TestEncodeRefs verifies every non-wildcard step is referenced by exactly
// one predicate side, and that the reference points at the right tag.
func TestEncodeRefs(t *testing.T) {
	xpes := []string{
		"/a/b/c", "a//b/c", "*/a/*/b//c/*/*", "/a/*/*", "a/b", "a", "/a",
		"a/*", "*/a/*", "/a/b/b", "a/c/*/a//c",
	}
	for _, s := range xpes {
		p := xpath.MustParse(s)
		enc := MustEncode(p, Inline)
		for i, st := range p.Steps {
			if st.Wildcard {
				if _, ok := enc.Refs[i]; ok {
					t.Errorf("%q: wildcard step %d has a reference", s, i)
				}
				continue
			}
			ref, ok := enc.Refs[i]
			if !ok {
				t.Errorf("%q: non-wildcard step %d has no reference", s, i)
				continue
			}
			pr := enc.Preds[ref.Pred]
			tag := pr.Tag1
			if ref.Side == Right {
				tag = pr.Tag2
			}
			if tag != st.Name {
				t.Errorf("%q: step %d (%s) referenced by %s side %d with tag %s", s, i, st.Name, pr, ref.Side, tag)
			}
		}
	}
}

// TestEncodeErrors checks the documented limitations are reported.
func TestEncodeErrors(t *testing.T) {
	if _, err := Encode(xpath.MustParse("/a[b]/c"), Inline); err == nil {
		t.Error("Encode accepted nested path filter; want error")
	}
	if _, err := Encode(xpath.MustParse("/a/*[@x=3]/b"), Inline); err == nil {
		t.Error("Encode accepted attribute filter on wildcard; want error")
	}
}

// TestEncodeAttrModes checks inline filters ride on predicates while
// postponed filters are recorded separately with bare predicates.
func TestEncodeAttrModes(t *testing.T) {
	p := xpath.MustParse(`/a[@x=3]/b[@y>=2]`)
	in := MustEncode(p, Inline)
	if len(in.Preds) != 2 {
		t.Fatalf("inline: got %d predicates, want 2", len(in.Preds))
	}
	if len(in.Preds[0].Attrs1) != 1 || in.Preds[0].Attrs1[0].Name != "x" {
		t.Errorf("inline: first predicate attrs = %v", in.Preds[0].Attrs1)
	}
	if len(in.Preds[1].Attrs2) != 1 || in.Preds[1].Attrs2[0].Name != "y" {
		t.Errorf("inline: second predicate right attrs = %v", in.Preds[1].Attrs2)
	}
	if in.HasPostAttrs() {
		t.Error("inline encoding reports postponed attrs")
	}

	po := MustEncode(p, Postponed)
	for i, pr := range po.Preds {
		if pr.HasAttrs() {
			t.Errorf("postponed: predicate %d carries inline attrs: %s", i, pr)
		}
	}
	if !po.HasPostAttrs() {
		t.Fatal("postponed encoding lost the filters")
	}
	if len(po.PostAttrs[0].Left) != 1 || po.PostAttrs[0].Left[0].Name != "x" {
		t.Errorf("postponed: PostAttrs[0].Left = %v", po.PostAttrs[0].Left)
	}
	if len(po.PostAttrs[1].Right) != 1 || po.PostAttrs[1].Right[0].Name != "y" {
		t.Errorf("postponed: PostAttrs[1].Right = %v", po.PostAttrs[1].Right)
	}
}

// TestAttrOnOmittedFirstPredicate exercises the case where the first-tag
// predicate is omitted (relative expression, first step not wildcarded):
// the step's filters must attach to the left side of the first relative
// predicate instead.
func TestAttrOnOmittedFirstPredicate(t *testing.T) {
	enc := MustEncode(xpath.MustParse(`a[@k=1]/b`), Inline)
	if len(enc.Preds) != 1 {
		t.Fatalf("got %d predicates, want 1 (%s)", len(enc.Preds), enc)
	}
	if len(enc.Preds[0].Attrs1) != 1 || enc.Preds[0].Attrs1[0].Name != "k" {
		t.Errorf("filters not carried to relative predicate: %s", enc)
	}
}
