// Package predicate implements the paper's predicate language (§3.2): the
// four structural predicate types — absolute, relative, end-of-path and
// length-of-expression — optionally augmented with attribute filters (§5),
// and the encoder that translates a parsed XPath expression into its
// ordered set of predicates.
package predicate

import (
	"fmt"
	"strings"

	"predfilter/internal/xmldoc"
	"predfilter/internal/xpath"
)

// Kind distinguishes the four predicate types of the paper.
type Kind int

const (
	// Absolute is (p_t, op, v): a constraint on the position of tag t.
	Absolute Kind = iota
	// Relative is (d(p_t1, p_t2), op, v): a constraint on the distance
	// between two tags.
	Relative
	// EndOfPath is (p_t⊣, >=, v): a constraint on the position of tag t
	// relative to the end of the document path.
	EndOfPath
	// Length is (length, >=, v): a constraint on the document path length.
	Length
)

// String returns a short name for the kind.
func (k Kind) String() string {
	switch k {
	case Absolute:
		return "absolute"
	case Relative:
		return "relative"
	case EndOfPath:
		return "end-of-path"
	case Length:
		return "length"
	}
	return fmt.Sprintf("Kind(%d)", int(k))
}

// Op is the relational operator of a predicate. The paper uses only
// equality and greater-than-or-equal; EndOfPath and Length predicates are
// always GE.
type Op int

const (
	// EQ is the equality operator.
	EQ Op = iota
	// GE is the greater-than-or-equal operator.
	GE
)

// String returns the operator's mathematical spelling.
func (o Op) String() string {
	if o == EQ {
		return "="
	}
	return ">="
}

// Predicate is one (attribute, operator, value) triple of the paper's
// predicate calculus. Tag1 is the predicate's tag (or the first tag for
// Relative predicates); Tag2 is the second tag of Relative predicates.
// Attrs1/Attrs2 carry inline attribute filters attached to the respective
// tag variables; they participate in predicate identity, so two structural
// twins with different filters are distinct predicates.
type Predicate struct {
	Kind   Kind
	Op     Op
	Tag1   string
	Tag2   string
	Value  int
	Attrs1 []xpath.AttrFilter
	Attrs2 []xpath.AttrFilter
}

// String renders the predicate in the paper's notation, e.g.
// (d(p_a, p_b), =, 2) or (p_a([x,=,3]), >=, 1).
func (p Predicate) String() string {
	tag := func(t string, attrs []xpath.AttrFilter) string {
		s := "p_" + t
		if len(attrs) > 0 {
			parts := make([]string, len(attrs))
			for i, a := range attrs {
				parts[i] = fmt.Sprintf("[%s,%s,%s]", a.Name, a.Op, a.Value)
			}
			s += "(" + strings.Join(parts, "") + ")"
		}
		return s
	}
	switch p.Kind {
	case Absolute:
		return fmt.Sprintf("(%s, %s, %d)", tag(p.Tag1, p.Attrs1), p.Op, p.Value)
	case Relative:
		return fmt.Sprintf("(d(%s, %s), %s, %d)", tag(p.Tag1, p.Attrs1), tag(p.Tag2, p.Attrs2), p.Op, p.Value)
	case EndOfPath:
		return fmt.Sprintf("(%s⊣, >=, %d)", tag(p.Tag1, p.Attrs1), p.Value)
	case Length:
		return fmt.Sprintf("(length, >=, %d)", p.Value)
	}
	return "(?)"
}

// AttrKey returns a canonical serialization of the predicate's attribute
// filters, used by the predicate index to separate structural twins.
// It is "" when the predicate carries no filters.
func (p Predicate) AttrKey() string {
	if len(p.Attrs1) == 0 && len(p.Attrs2) == 0 {
		return ""
	}
	var b strings.Builder
	for _, a := range p.Attrs1 {
		fmt.Fprintf(&b, "1:%s%d%s;", a.Name, a.Op, a.Value)
	}
	for _, a := range p.Attrs2 {
		fmt.Fprintf(&b, "2:%s%d%s;", a.Name, a.Op, a.Value)
	}
	return b.String()
}

// HasAttrs reports whether the predicate carries inline attribute filters.
func (p Predicate) HasAttrs() bool { return len(p.Attrs1) > 0 || len(p.Attrs2) > 0 }

// EvalAttrs reports whether the tuple's attributes satisfy every filter
// (see xpath.AttrFilter.Eval for the comparison semantics).
func EvalAttrs(filters []xpath.AttrFilter, t *xmldoc.Tuple) bool {
	for _, f := range filters {
		v, ok := t.Attr(f.Name)
		if !ok {
			return false
		}
		if !f.Eval(v) {
			return false
		}
	}
	return true
}
