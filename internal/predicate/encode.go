package predicate

import (
	"fmt"

	"predfilter/internal/xpath"
)

// Side identifies which tag variable of a predicate a location step maps to.
type Side int

const (
	// Left is Tag1 of the predicate.
	Left Side = iota
	// Right is Tag2 of a Relative predicate.
	Right
)

// StepRef locates, for a non-wildcard location step of the source
// expression, the predicate (by index into Encoding.Preds) and tag side
// that references it. It is what lets nested-path recombination and
// selection-postponed attribute evaluation recover "which document element
// matched step i" from an occurrence assignment.
type StepRef struct {
	Pred int
	Side Side
}

// Encoding is the ordered set of predicates for one single-path expression
// (paper §3.2), plus bookkeeping that maps location steps back onto
// predicates.
type Encoding struct {
	// Preds is the ordered predicate sequence pre_1 ↦ ... ↦ pre_n.
	Preds []Predicate
	// Refs maps each non-wildcard step index (0-based) of the source path
	// to the predicate/side referencing it. Empty for length-only
	// encodings.
	Refs map[int]StepRef
	// PostAttrs holds, for selection-postponed evaluation, the attribute
	// filters of the step referenced by each predicate position; the
	// predicates themselves are bare in that mode. PostAttrs[i] aligns
	// with Preds[i]; it is nil when the mode is inline or the expression
	// has no filters.
	PostAttrs []SideAttrs
	// Steps is the number of location steps of the source expression.
	Steps int
}

// SideAttrs carries postponed attribute filters for the two tag sides of a
// predicate position.
type SideAttrs struct {
	Left  []xpath.AttrFilter
	Right []xpath.AttrFilter
}

func (s SideAttrs) empty() bool { return len(s.Left) == 0 && len(s.Right) == 0 }

// HasPostAttrs reports whether any predicate position carries postponed
// attribute filters.
func (e *Encoding) HasPostAttrs() bool {
	for _, a := range e.PostAttrs {
		if !a.empty() {
			return true
		}
	}
	return false
}

// String renders the encoding as pre_1 ↦ pre_2 ↦ ... in the paper's
// notation.
func (e *Encoding) String() string {
	s := ""
	for i, p := range e.Preds {
		if i > 0 {
			s += " ↦ "
		}
		s += p.String()
	}
	return s
}

// AttrMode selects how attribute filters are evaluated (paper §5).
type AttrMode int

const (
	// Inline attaches attribute filters to the structural predicates, so
	// they are checked during predicate matching.
	Inline AttrMode = iota
	// Postponed strips attribute filters from the predicates and records
	// them for verification after structural matching.
	Postponed
)

// Encode translates a single-path XPath expression into its ordered set of
// predicates. It returns an error for expressions outside the supported
// fragment (nested path filters — use Decompose first — and filters
// attached to wildcard steps).
func Encode(p *xpath.Path, mode AttrMode) (*Encoding, error) {
	if !p.IsSinglePath() {
		return nil, fmt.Errorf("predicate: expression %q has nested path filters; decompose first", p)
	}
	for i, s := range p.Steps {
		if s.Wildcard && len(s.Attrs) > 0 {
			return nil, fmt.Errorf("predicate: attribute filter on wildcard step %d of %q is not supported", i+1, p)
		}
	}
	n := len(p.Steps)

	// Indices of the non-wildcard steps.
	var tags []int
	for i, s := range p.Steps {
		if !s.Wildcard {
			tags = append(tags, i)
		}
	}

	enc := &Encoding{Refs: make(map[int]StepRef), Steps: n}
	if len(tags) == 0 {
		// Only wildcards: (length, >=, n). Absolute and relative forms are
		// deliberately not distinguished (paper §3.2).
		enc.Preds = []Predicate{{Kind: Length, Op: GE, Value: n}}
		enc.PostAttrs = make([]SideAttrs, 1)
		return enc, nil
	}

	first := tags[0]
	last := tags[len(tags)-1]
	trailing := n - 1 - last

	// descUpTo reports whether any step in [from, to] (inclusive, 0-based)
	// uses the descendant axis.
	descIn := func(from, to int) bool {
		for i := from; i <= to; i++ {
			if p.Steps[i].Axis == xpath.Descendant {
				return true
			}
		}
		return false
	}

	attach := func(step int, side Side, pred *Predicate, post *SideAttrs) {
		attrs := p.Steps[step].Attrs
		if _, seen := enc.Refs[step]; seen {
			return
		}
		enc.Refs[step] = StepRef{Pred: len(enc.Preds), Side: side}
		if len(attrs) == 0 {
			return
		}
		if mode == Inline {
			if side == Left {
				pred.Attrs1 = append([]xpath.AttrFilter(nil), attrs...)
			} else {
				pred.Attrs2 = append([]xpath.AttrFilter(nil), attrs...)
			}
			return
		}
		if side == Left {
			post.Left = append([]xpath.AttrFilter(nil), attrs...)
		} else {
			post.Right = append([]xpath.AttrFilter(nil), attrs...)
		}
	}

	emit := func(pred Predicate, post SideAttrs) {
		enc.Preds = append(enc.Preds, pred)
		enc.PostAttrs = append(enc.PostAttrs, post)
	}

	// First-tag predicate. For an absolute expression with no descendant
	// axis up to the first tag it is (p_t, =, first+1) and always emitted.
	// Otherwise the candidate is (p_t, >=, first+1), emitted only when it
	// carries information the rest of the encoding does not: when the
	// minimum position exceeds 1, or when it would be the only reference
	// to the expression's only tag (paper's s2 and s9 versus s3 and s8).
	firstDesc := descIn(0, first)
	switch {
	case p.Absolute && !firstDesc:
		pred := Predicate{Kind: Absolute, Op: EQ, Tag1: p.Steps[first].Name, Value: first + 1}
		var post SideAttrs
		attach(first, Left, &pred, &post)
		emit(pred, post)
	case first+1 >= 2 || (len(tags) == 1 && trailing == 0):
		pred := Predicate{Kind: Absolute, Op: GE, Tag1: p.Steps[first].Name, Value: first + 1}
		var post SideAttrs
		attach(first, Left, &pred, &post)
		emit(pred, post)
	}

	// Relative predicates between consecutive non-wildcard tags.
	for j := 1; j < len(tags); j++ {
		u, w := tags[j-1], tags[j]
		op := EQ
		if descIn(u+1, w) {
			op = GE
		}
		pred := Predicate{
			Kind:  Relative,
			Op:    op,
			Tag1:  p.Steps[u].Name,
			Tag2:  p.Steps[w].Name,
			Value: w - u,
		}
		var post SideAttrs
		attach(u, Left, &pred, &post)
		attach(w, Right, &pred, &post)
		emit(pred, post)
	}

	// End-of-path predicate for trailing wildcards.
	if trailing > 0 {
		pred := Predicate{Kind: EndOfPath, Op: GE, Tag1: p.Steps[last].Name, Value: trailing}
		var post SideAttrs
		attach(last, Left, &pred, &post)
		emit(pred, post)
	}

	return enc, nil
}

// MustEncode is Encode that panics on error; intended for tests.
func MustEncode(p *xpath.Path, mode AttrMode) *Encoding {
	e, err := Encode(p, mode)
	if err != nil {
		panic(err)
	}
	return e
}
