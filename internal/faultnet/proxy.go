// Package faultnet is a deterministic fault-injection TCP proxy for
// cluster tests: it sits between the coordinator and a shard and
// imposes scripted network conditions — added latency, full or
// asymmetric partitions, connection resets, slow and truncated
// responses — so partition/flap/slow-network scenarios reproduce
// exactly instead of depending on kill timing. There is no randomness
// anywhere: the same rule schedule produces the same observable
// failures.
//
// Rules apply per copied chunk, not per connection, so changing them
// mid-connection takes effect on the next read — a proxy can go from
// healthy to partitioned under an established keepalive connection.
// For clients that pool connections (net/http keepalives), Partition
// and CutConns also sever established connections; otherwise a pooled
// connection opened before the rule change would tunnel through the
// partition.
package faultnet

import (
	"errors"
	"fmt"
	"io"
	"net"
	"sync"
	"time"
)

// Mode is what happens to new connections (and in-flight copies).
type Mode int

const (
	// Pass relays traffic normally (subject to Latency/BytesPerSec/
	// TruncateResponseAfter).
	Pass Mode = iota
	// Reset accepts and immediately resets new connections (RST-like
	// close) — the "process is dead" failure: connection refused-ish,
	// fails fast.
	Reset
	// Blackhole accepts new connections and reads nothing, answers
	// nothing — the partition failure: callers hang until their timeout.
	Blackhole
	// DropResponses relays the request upstream but discards the
	// response and holds the connection open — the asymmetric partition:
	// the shard commits work, the caller times out waiting for the ack
	// (the lost-ack window made reproducible).
	DropResponses
)

func (m Mode) String() string {
	switch m {
	case Pass:
		return "pass"
	case Reset:
		return "reset"
	case Blackhole:
		return "blackhole"
	case DropResponses:
		return "drop_responses"
	}
	return fmt.Sprintf("mode(%d)", int(m))
}

// Rules is one network condition. The zero value is a transparent
// proxy.
type Rules struct {
	Mode Mode
	// Latency is added once per direction per connection before the
	// first byte is relayed (connection setup cost of a slow link).
	Latency time.Duration
	// BytesPerSec throttles each direction to roughly this rate
	// (0 = unlimited). Implemented as a sleep per copied chunk, so the
	// effective rate is deterministic for a given byte stream.
	BytesPerSec int
	// TruncateResponseAfter closes the connection after this many
	// upstream→client bytes (0 = never): the torn-response failure.
	TruncateResponseAfter int64
}

// Proxy is one listener relaying to one upstream target under the
// current Rules. Safe for concurrent use.
type Proxy struct {
	target string
	ln     net.Listener

	mu    sync.Mutex
	rules Rules
	conns map[net.Conn]struct{}
	done  bool

	accepted  int64
	resets    int64
	blackhole int64
}

// New starts a proxy on 127.0.0.1 (ephemeral port) relaying to target
// ("host:port"). It begins transparent; impose conditions with
// SetRules/Partition.
func New(target string) (*Proxy, error) {
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return nil, err
	}
	p := &Proxy{target: target, ln: ln, conns: make(map[net.Conn]struct{})}
	go p.acceptLoop()
	return p, nil
}

// Addr is the proxy's listen address ("host:port").
func (p *Proxy) Addr() string { return p.ln.Addr().String() }

// URL is the proxy's address as a base URL.
func (p *Proxy) URL() string { return "http://" + p.Addr() }

// SetRules replaces the current rules. In-flight copies pick the new
// rules up on their next chunk; established connections stay up (use
// CutConns or Partition to sever them).
func (p *Proxy) SetRules(r Rules) {
	p.mu.Lock()
	p.rules = r
	p.mu.Unlock()
}

// Rules returns the current rules.
func (p *Proxy) Rules() Rules {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.rules
}

// Partition blackholes the link and severs every established
// connection — the full-partition failure for keepalive clients: pooled
// connections die, new ones hang.
func (p *Proxy) Partition() {
	p.SetRules(Rules{Mode: Blackhole})
	p.CutConns()
}

// Heal restores transparent relaying. Established blackholed
// connections are severed so callers stop waiting on dead reads and
// reconnect through the healed link.
func (p *Proxy) Heal() {
	p.SetRules(Rules{})
	p.CutConns()
}

// CutConns severs every established connection through the proxy
// without touching the rules.
func (p *Proxy) CutConns() {
	p.mu.Lock()
	for c := range p.conns {
		c.Close()
	}
	p.mu.Unlock()
}

// Stats reports connections accepted, reset, and blackholed.
func (p *Proxy) Stats() (accepted, resets, blackholed int64) {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.accepted, p.resets, p.blackhole
}

// Close stops the listener and severs every connection.
func (p *Proxy) Close() error {
	p.mu.Lock()
	if p.done {
		p.mu.Unlock()
		return nil
	}
	p.done = true
	p.mu.Unlock()
	err := p.ln.Close()
	p.CutConns()
	return err
}

func (p *Proxy) acceptLoop() {
	for {
		conn, err := p.ln.Accept()
		if err != nil {
			return // listener closed
		}
		p.mu.Lock()
		if p.done {
			p.mu.Unlock()
			conn.Close()
			return
		}
		p.accepted++
		r := p.rules
		switch r.Mode {
		case Reset:
			p.resets++
			p.mu.Unlock()
			// SetLinger(0) makes Close send RST instead of FIN: the caller
			// sees "connection reset by peer", not a clean EOF.
			if tc, ok := conn.(*net.TCPConn); ok {
				_ = tc.SetLinger(0)
			}
			conn.Close()
			continue
		case Blackhole:
			p.blackhole++
			// Track it so Heal/CutConns releases the hanging caller, and
			// hold it open reading nothing: the caller blocks until its
			// own timeout.
			p.conns[conn] = struct{}{}
			p.mu.Unlock()
			continue
		}
		p.conns[conn] = struct{}{}
		p.mu.Unlock()
		go p.relay(conn)
	}
}

func (p *Proxy) forget(c net.Conn) {
	p.mu.Lock()
	delete(p.conns, c)
	p.mu.Unlock()
}

// relay connects upstream and copies both directions, re-checking the
// rules per chunk.
func (p *Proxy) relay(client net.Conn) {
	defer p.forget(client)
	defer client.Close()
	upstream, err := net.DialTimeout("tcp", p.target, 10*time.Second)
	if err != nil {
		return
	}
	p.mu.Lock()
	if p.done {
		p.mu.Unlock()
		upstream.Close()
		return
	}
	p.conns[upstream] = struct{}{}
	p.mu.Unlock()
	defer p.forget(upstream)
	defer upstream.Close()

	var wg sync.WaitGroup
	wg.Add(2)
	go func() {
		defer wg.Done()
		p.copyDir(upstream, client, false)
		// Request side done: half-close toward the upstream so it sees
		// EOF, but keep the response side draining.
		if tc, ok := upstream.(*net.TCPConn); ok {
			_ = tc.CloseWrite()
		}
	}()
	go func() {
		defer wg.Done()
		p.copyDir(client, upstream, true)
		if tc, ok := client.(*net.TCPConn); ok {
			_ = tc.CloseWrite()
		}
	}()
	wg.Wait()
}

// copyDir copies src→dst one chunk at a time under the rules current at
// each chunk. response marks the upstream→client direction, which is
// the one TruncateResponseAfter and DropResponses act on.
func (p *Proxy) copyDir(dst, src net.Conn, response bool) {
	buf := make([]byte, 16<<10)
	var copied int64
	first := true
	for {
		n, rerr := src.Read(buf)
		if n > 0 {
			r := p.Rules()
			if r.Mode == Blackhole {
				// Partitioned mid-connection: swallow the bytes and stop
				// relaying; the connection stays up (and hanging) until
				// CutConns.
				continue
			}
			if first && r.Latency > 0 {
				time.Sleep(r.Latency)
			}
			first = false
			if r.BytesPerSec > 0 {
				time.Sleep(time.Duration(int64(n) * int64(time.Second) / int64(r.BytesPerSec)))
			}
			if response && r.Mode == DropResponses {
				// Relay nothing back; the caller waits on a response that
				// never comes while the upstream believes it answered.
				continue
			}
			if response && r.TruncateResponseAfter > 0 && copied+int64(n) >= r.TruncateResponseAfter {
				_, _ = dst.Write(buf[:r.TruncateResponseAfter-copied])
				if tc, ok := dst.(*net.TCPConn); ok {
					_ = tc.SetLinger(0)
				}
				dst.Close()
				src.Close()
				return
			}
			if _, werr := dst.Write(buf[:n]); werr != nil {
				return
			}
			copied += int64(n)
		}
		if rerr != nil {
			if !errors.Is(rerr, io.EOF) {
				return
			}
			return
		}
	}
}
