package faultnet

import (
	"context"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"
)

// newBackend starts an HTTP server answering "hello" and a proxy in
// front of it.
func newBackend(t *testing.T) (*httptest.Server, *Proxy) {
	t.Helper()
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		io.WriteString(w, "hello")
	}))
	t.Cleanup(srv.Close)
	p, err := New(strings.TrimPrefix(srv.URL, "http://"))
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { p.Close() })
	return srv, p
}

// get issues one GET through a fresh client (no pooled connections) and
// returns the body.
func get(p *Proxy, timeout time.Duration) (string, error) {
	hc := &http.Client{Timeout: timeout, Transport: &http.Transport{DisableKeepAlives: true}}
	resp, err := hc.Get(p.URL())
	if err != nil {
		return "", err
	}
	defer resp.Body.Close()
	b, err := io.ReadAll(resp.Body)
	return string(b), err
}

func TestProxyPass(t *testing.T) {
	_, p := newBackend(t)
	body, err := get(p, time.Second)
	if err != nil {
		t.Fatal(err)
	}
	if body != "hello" {
		t.Fatalf("body = %q", body)
	}
}

func TestProxyReset(t *testing.T) {
	_, p := newBackend(t)
	p.SetRules(Rules{Mode: Reset})
	t0 := time.Now()
	if _, err := get(p, 5*time.Second); err == nil {
		t.Fatal("reset mode answered")
	}
	// A reset fails fast — nothing like the client timeout.
	if d := time.Since(t0); d > time.Second {
		t.Fatalf("reset took %v, want fast failure", d)
	}
	if _, resets, _ := p.Stats(); resets == 0 {
		t.Fatal("no resets counted")
	}
}

func TestProxyBlackholeHangsUntilTimeout(t *testing.T) {
	_, p := newBackend(t)
	p.SetRules(Rules{Mode: Blackhole})
	t0 := time.Now()
	if _, err := get(p, 200*time.Millisecond); err == nil {
		t.Fatal("blackhole answered")
	}
	// A blackhole burns the caller's full timeout: that is the failure
	// being modeled.
	if d := time.Since(t0); d < 150*time.Millisecond {
		t.Fatalf("blackhole failed after %v, want the client timeout burned", d)
	}
}

func TestProxyHealReleasesAndRelays(t *testing.T) {
	_, p := newBackend(t)
	p.Partition()
	done := make(chan error, 1)
	go func() {
		_, err := get(p, 10*time.Second)
		done <- err
	}()
	time.Sleep(100 * time.Millisecond)
	p.Heal()
	select {
	case err := <-done:
		// The hanging caller was released (error) — it must not have
		// waited its full 10s timeout.
		if err == nil {
			t.Fatal("partitioned call succeeded")
		}
	case <-time.After(5 * time.Second):
		t.Fatal("heal did not release the blackholed connection")
	}
	body, err := get(p, time.Second)
	if err != nil || body != "hello" {
		t.Fatalf("after heal: %q, %v", body, err)
	}
}

func TestProxyPartitionCutsEstablishedConns(t *testing.T) {
	srv, p := newBackend(t)
	_ = srv
	// Keepalive client: the first call establishes a pooled connection.
	hc := &http.Client{Timeout: 2 * time.Second}
	resp, err := hc.Get(p.URL())
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	p.Partition()
	// The pooled connection is dead and new ones blackhole: the call
	// must fail rather than tunnel through.
	ctx, cancel := context.WithTimeout(context.Background(), 500*time.Millisecond)
	defer cancel()
	req, _ := http.NewRequestWithContext(ctx, http.MethodGet, p.URL(), nil)
	if resp, err := hc.Do(req); err == nil {
		resp.Body.Close()
		t.Fatal("call tunneled through a partition")
	}
}

func TestProxyLatency(t *testing.T) {
	_, p := newBackend(t)
	p.SetRules(Rules{Latency: 150 * time.Millisecond})
	t0 := time.Now()
	body, err := get(p, 5*time.Second)
	if err != nil || body != "hello" {
		t.Fatalf("%q, %v", body, err)
	}
	if d := time.Since(t0); d < 150*time.Millisecond {
		t.Fatalf("latency rule added only %v", d)
	}
}

func TestProxyTruncatedResponse(t *testing.T) {
	_, p := newBackend(t)
	p.SetRules(Rules{TruncateResponseAfter: 10})
	if _, err := get(p, 2*time.Second); err == nil {
		// 10 bytes is inside the status line: the client cannot have a
		// complete response.
		t.Fatal("truncated response parsed as success")
	}
}

func TestProxyDropResponses(t *testing.T) {
	hits := 0
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		hits++
		io.WriteString(w, "hello")
	}))
	defer srv.Close()
	p, err := New(strings.TrimPrefix(srv.URL, "http://"))
	if err != nil {
		t.Fatal(err)
	}
	defer p.Close()
	p.SetRules(Rules{Mode: DropResponses})
	if _, err := get(p, 300*time.Millisecond); err == nil {
		t.Fatal("dropped response answered")
	}
	// The asymmetry is the point: the upstream served the request even
	// though the caller saw nothing.
	if hits != 1 {
		t.Fatalf("upstream hits = %d, want 1", hits)
	}
}

func TestProxyScript(t *testing.T) {
	_, p := newBackend(t)
	go p.Script([]Step{
		{At: 0, Rules: Rules{Mode: Blackhole}, Cut: true},
		{At: 150 * time.Millisecond, Rules: Rules{}, Cut: true},
	})
	time.Sleep(20 * time.Millisecond)
	if _, err := get(p, 100*time.Millisecond); err == nil {
		t.Fatal("call succeeded during scripted partition")
	}
	time.Sleep(200 * time.Millisecond)
	body, err := get(p, time.Second)
	if err != nil || body != "hello" {
		t.Fatalf("after scripted heal: %q, %v", body, err)
	}
}

// TestProxyConcurrentChurn drives connections while rules flip, to give
// the race detector something to chew on.
func TestProxyConcurrentChurn(t *testing.T) {
	_, p := newBackend(t)
	stop := make(chan struct{})
	go func() {
		for {
			select {
			case <-stop:
				return
			default:
			}
			p.SetRules(Rules{Mode: Reset})
			p.SetRules(Rules{})
			p.CutConns()
		}
	}()
	for i := 0; i < 50; i++ {
		_, _ = get(p, 200*time.Millisecond)
	}
	close(stop)
	if accepted, _, _ := p.Stats(); accepted == 0 {
		t.Fatal("no connections accepted")
	}
	// The proxy must still relay cleanly after the churn.
	p.SetRules(Rules{})
	var ok bool
	for i := 0; i < 5 && !ok; i++ {
		if body, err := get(p, time.Second); err == nil && body == "hello" {
			ok = true
		}
	}
	if !ok {
		t.Fatal("proxy wedged after churn")
	}
}
