package faultnet

import "time"

// Step is one scheduled network condition change.
type Step struct {
	// At is the step's offset from the start of the script run.
	At time.Duration
	// Rules take effect at the step.
	Rules Rules
	// Cut severs established connections at the step (keepalive pools
	// would otherwise carry old conditions forward).
	Cut bool
}

// Script applies steps in order at their offsets from now and returns
// after the last one has been applied. The schedule is the test's
// clock: the same steps against the same workload produce the same
// sequence of observable failures. Run it from its own goroutine when
// the workload runs in the test goroutine.
func (p *Proxy) Script(steps []Step) {
	start := time.Now()
	for _, s := range steps {
		if d := s.At - time.Since(start); d > 0 {
			time.Sleep(d)
		}
		p.SetRules(s.Rules)
		if s.Cut {
			p.CutConns()
		}
	}
}
