// Package refmatch is a direct, deliberately simple XPath matcher used as
// the test oracle for the predicate-based engine (and for the YFilter and
// Index-Filter baselines). It evaluates the paper's matching semantics —
// an expression matches a document iff its evaluation over the document is
// a non-empty node set — by explicit placement search over the document's
// root-to-leaf paths, with node-identity checks for nested path filters.
//
// Nothing here is optimized; correctness by inspection is the point.
package refmatch

import (
	"predfilter/internal/predicate"
	"predfilter/internal/xmldoc"
	"predfilter/internal/xpath"
)

// Match reports whether the expression matches the document. Single-path
// expressions match iff they match any root-to-leaf path; nested path
// filters are evaluated against the document tree via node identity.
func Match(p *xpath.Path, doc *xmldoc.Document) bool {
	m := matcher{doc: doc}
	for i := range doc.Paths {
		if m.matchPub(p, &doc.Paths[i]) {
			return true
		}
	}
	return false
}

// MatchPath reports whether a single-path expression matches one document
// path in isolation. It must not be called with nested path filters
// (those need the whole document); see Match.
func MatchPath(p *xpath.Path, pub *xmldoc.Publication) bool {
	if !p.IsSinglePath() {
		panic("refmatch: MatchPath on nested-path expression")
	}
	m := matcher{}
	return m.matchPub(p, pub)
}

type matcher struct {
	doc *xmldoc.Document
}

// matchPub tries every admissible starting position for the first step.
// An absolute expression whose first step uses the child axis is anchored
// at position 1; everything else (leading descendant axis, or a relative
// expression under the paper's semantics) may start anywhere.
func (m *matcher) matchPub(p *xpath.Path, pub *xmldoc.Publication) bool {
	if len(p.Steps) == 0 {
		return false
	}
	if p.Absolute && p.Steps[0].Axis == xpath.Child {
		return m.placed(p.Steps, 0, pub, 1)
	}
	for pos := 1; pos <= pub.Length; pos++ {
		if m.placed(p.Steps, 0, pub, pos) {
			return true
		}
	}
	return false
}

// placed reports whether steps[i:] can be placed in pub with steps[i] at
// exactly position pos.
func (m *matcher) placed(steps []xpath.Step, i int, pub *xmldoc.Publication, pos int) bool {
	if pos > pub.Length {
		return false
	}
	t := &pub.Tuples[pos-1]
	s := &steps[i]
	if !s.Wildcard && t.Tag != s.Name {
		return false
	}
	if !predicate.EvalAttrs(s.Attrs, t) {
		return false
	}
	for _, q := range s.Nested {
		if !m.nested(q, t.NodeID, pos) {
			return false
		}
	}
	if i == len(steps)-1 {
		return true
	}
	if steps[i+1].Axis == xpath.Child {
		return m.placed(steps, i+1, pub, pos+1)
	}
	for p2 := pos + 1; p2 <= pub.Length; p2++ {
		if m.placed(steps, i+1, pub, p2) {
			return true
		}
	}
	return false
}

// nested reports whether the nested path q matches below the context node
// (identified by nodeID at path position pos). A nested path is relative
// to its context node: a leading child axis means a direct child, a
// leading descendant axis any strict descendant.
func (m *matcher) nested(q *xpath.Path, nodeID, pos int) bool {
	if m.doc == nil {
		panic("refmatch: nested path filter requires document context")
	}
	for i := range m.doc.Paths {
		pub := &m.doc.Paths[i]
		if pos > pub.Length || pub.Tuples[pos-1].NodeID != nodeID {
			continue
		}
		if q.Steps[0].Axis == xpath.Descendant {
			for p2 := pos + 1; p2 <= pub.Length; p2++ {
				if m.placed(q.Steps, 0, pub, p2) {
					return true
				}
			}
		} else if m.placed(q.Steps, 0, pub, pos+1) {
			return true
		}
	}
	return false
}
