package refmatch

import (
	"testing"

	"predfilter/internal/xmldoc"
	"predfilter/internal/xpath"
)

// The reference matcher is itself the oracle for every engine, so its own
// tests are exhaustive hand-checked cases.
func TestMatchPath(t *testing.T) {
	path := []string{"a", "b", "c", "a", "b", "c"}
	cases := []struct {
		xpe  string
		want bool
	}{
		// Anchored absolute.
		{"/a", true},
		{"/b", false},
		{"/a/b/c", true},
		{"/a/b/c/a/b/c", true},
		{"/a/b/c/a/b/c/a", false},
		{"/a/c", false},
		// Relative: anywhere.
		{"b/c", true},
		{"c/a", true},
		{"c/c", false},
		{"b/c/a/b", true},
		// Wildcards.
		{"/*/b", true},
		{"/*/*/*/*/*/*", true},
		{"/*/*/*/*/*/*/*", false},
		{"*/*/*", true},
		{"/a/*/c", true},
		{"/a/*/b", false},
		// Descendant.
		{"/a//c", true},
		{"a//a", true},
		{"c//b", true},
		{"c//c", true},
		{"//c//a", true},
		{"/c//a", false},
		// Paper Example 2.
		{"a//b/c", true},
		{"c//b//a", false},
		// Trailing wildcards need room.
		{"/a/b/c/a/b/*", true},
		{"/a/b/c/a/b/c/*", false},
		{"c/*/*", true},
		{"c/*/*/*/*", false},
	}
	doc := xmldoc.FromPaths(path)
	for _, tc := range cases {
		if got := MatchPath(xpath.MustParse(tc.xpe), &doc.Paths[0]); got != tc.want {
			t.Errorf("MatchPath(%q, %v) = %v, want %v", tc.xpe, path, got, tc.want)
		}
	}
}

func TestMatchDocument(t *testing.T) {
	doc, err := xmldoc.Parse([]byte(`<r><a><b/><c k="2"/></a><a><c k="5"/></a></r>`))
	if err != nil {
		t.Fatal(err)
	}
	cases := []struct {
		xpe  string
		want bool
	}{
		{"/r/a/b", true},
		{"/r/a/c", true},
		{"/r/b", false},
		{"/r/a[b]/c", true},        // the first a has both b and c
		{"/r/a[b][c]", true},       //
		{"/r/a[b]/c[@k=5]", false}, // k=5 is on the other a's c
		{"/r/a[b]/c[@k=2]", true},
		{"/r/a[c[@k=5]]", true},
		{"/r[a/b]//c", true},
		{"a[//c]", true},
		{"a[//b]", true},
		{"c[//b]", false}, // c has no descendants
	}
	for _, tc := range cases {
		if got := Match(xpath.MustParse(tc.xpe), doc); got != tc.want {
			t.Errorf("Match(%q) = %v, want %v", tc.xpe, got, tc.want)
		}
	}
}

func TestAttrOps(t *testing.T) {
	doc, err := xmldoc.Parse([]byte(`<a x="5" s="hello"/>`))
	if err != nil {
		t.Fatal(err)
	}
	cases := []struct {
		xpe  string
		want bool
	}{
		{"/a[@x]", true},
		{"/a[@y]", false},
		{"/a[@x=5]", true},
		{"/a[@x=4]", false},
		{"/a[@x!=4]", true},
		{"/a[@x>=5]", true},
		{"/a[@x>5]", false},
		{"/a[@x<=5]", true},
		{"/a[@x<5]", false},
		{"/a[@x>=4.5]", true}, // numeric, not lexicographic
		{"/a[@s=hello]", true},
		{"/a[@s>hell]", true}, // lexicographic fallback
	}
	for _, tc := range cases {
		if got := Match(xpath.MustParse(tc.xpe), doc); got != tc.want {
			t.Errorf("Match(%q) = %v, want %v", tc.xpe, got, tc.want)
		}
	}
}

func TestMatchPathPanicsOnNested(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("MatchPath accepted a nested-path expression")
		}
	}()
	doc := xmldoc.FromPaths([]string{"a"})
	MatchPath(xpath.MustParse("a[b]"), &doc.Paths[0])
}
