package server

import (
	"io"
	"net/http"
	"strings"
	"sync"
	"testing"

	"predfilter/internal/metrics"
)

// TestMetricsEndpoint: GET /metrics is always on and serves valid
// Prometheus text exposition carrying the per-stage histograms and the
// engine and server counters.
func TestMetricsEndpoint(t *testing.T) {
	ts := newTestServer(t, Config{})
	subscribe(t, ts, "/feed/alert")
	publish(t, ts, `<feed><alert/></feed>`)
	publish(t, ts, `<feed><other/></feed>`)

	resp, err := http.Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("/metrics: status %d", resp.StatusCode)
	}
	if ct := resp.Header.Get("Content-Type"); !strings.HasPrefix(ct, "text/plain") || !strings.Contains(ct, "0.0.4") {
		t.Fatalf("/metrics content type %q", ct)
	}
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	text := string(body)
	if err := metrics.ValidateExposition(text); err != nil {
		t.Fatalf("exposition invalid: %v\n%s", err, text)
	}
	for _, want := range []string{
		`predfilter_stage_duration_seconds_count{stage="parse"} 2`,
		`predfilter_stage_duration_seconds_count{stage="predicate_match"} 2`,
		`predfilter_stage_duration_seconds_count{stage="occurrence"} 2`,
		`predfilter_stage_duration_seconds_count{stage="cache"} 2`,
		`predfilter_stage_duration_seconds_count{stage="match"} 2`,
		"predfilter_docs_total 2",
		"predfilter_matches_total 1",
		"predfilter_server_docs_published_total 2",
		"predfilter_expressions 1",
		"predfilter_path_cache_misses_total",
		"# TYPE predfilter_stage_duration_seconds histogram",
	} {
		if !strings.Contains(text, want) {
			t.Errorf("/metrics missing %q", want)
		}
	}
}

// TestMetricsEndpointStore: with persistence on, /metrics additionally
// reports the store gauges and the WAL-append histogram records.
func TestMetricsEndpointStore(t *testing.T) {
	ts := newTestServer(t, Config{StateDir: t.TempDir(), NoSync: true})
	subscribe(t, ts, "/a/b")
	resp, err := http.Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	body, _ := io.ReadAll(resp.Body)
	text := string(body)
	if err := metrics.ValidateExposition(text); err != nil {
		t.Fatalf("exposition invalid: %v\n%s", err, text)
	}
	for _, want := range []string{
		"predfilter_store_live_subscriptions 1",
		"predfilter_store_appends_total 1",
		`predfilter_store_duration_seconds_count{op="wal_append"} 1`,
	} {
		if !strings.Contains(text, want) {
			t.Errorf("/metrics missing %q", want)
		}
	}
}

// TestPublishTraced: POST /publish?trace=1 returns the normal response
// plus a trace explaining at least one matched and one missed expression.
func TestPublishTraced(t *testing.T) {
	ts := newTestServer(t, Config{})
	hit := subscribe(t, ts, "/feed/alert")
	miss := subscribe(t, ts, "/feed/trade")

	resp, err := http.Post(ts.URL+"/publish?trace=1", "application/xml",
		strings.NewReader(`<feed><alert/></feed>`))
	if err != nil {
		t.Fatal(err)
	}
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("/publish?trace=1: status %d", resp.StatusCode)
	}
	out := decodeBody(t, resp)
	if out["matches"].(float64) != 1 {
		t.Fatalf("matches = %v, want 1", out["matches"])
	}
	tr, ok := out["trace"].(map[string]any)
	if !ok {
		t.Fatalf("no trace in response: %v", out)
	}
	if tr["total_nanos"].(float64) <= 0 {
		t.Fatalf("trace lacks stage costs: %v", tr)
	}
	exprs := tr["exprs"].([]any)
	byID := make(map[float64]map[string]any)
	for _, e := range exprs {
		et := e.(map[string]any)
		for _, id := range et["sids"].([]any) {
			byID[id.(float64)] = et
		}
	}
	h := byID[float64(hit)]
	if h == nil || h["matched"] != true {
		t.Fatalf("hit not explained: %v", h)
	}
	if len(h["paths"].([]any)) == 0 {
		t.Fatalf("hit lacks path evidence: %v", h)
	}
	m := byID[float64(miss)]
	if m == nil || m["matched"] != false {
		t.Fatalf("miss not explained: %v", m)
	}
	// The miss still saw the (length, …) and p_feed predicates hit, so it
	// carries evidence showing exactly which predicate came up empty.
	mp := m["paths"].([]any)
	if len(mp) == 0 {
		t.Fatalf("miss lacks path evidence: %v", m)
	}
	preds := mp[0].(map[string]any)["predicates"].([]any)
	var sawMiss bool
	for _, p := range preds {
		if p.(map[string]any)["hit"] == false {
			sawMiss = true
		}
	}
	if !sawMiss {
		t.Fatalf("miss evidence shows no failing predicate: %v", preds)
	}

	// An untraced publish must not carry a trace.
	out = publish(t, ts, `<feed><alert/></feed>`)
	if _, ok := out["trace"]; ok {
		t.Fatalf("untraced publish returned a trace: %v", out)
	}
}

// TestDebugVarsConcurrentPublish hammers /publish while polling
// /debug/vars, checking that every response is valid JSON with mutually
// consistent counters. Run with -race this also exercises the
// snapshot-once counter reads against the publish-path writers.
func TestDebugVarsConcurrentPublish(t *testing.T) {
	ts := newTestServer(t, Config{})
	subscribe(t, ts, "//alert")

	const publishers = 4
	const perPublisher = 25
	var wg sync.WaitGroup
	stop := make(chan struct{})
	wg.Add(publishers)
	for p := 0; p < publishers; p++ {
		go func() {
			defer wg.Done()
			for i := 0; i < perPublisher; i++ {
				resp, err := http.Post(ts.URL+"/publish", "application/xml",
					strings.NewReader(`<feed><alert/></feed>`))
				if err != nil {
					t.Error(err)
					return
				}
				io.Copy(io.Discard, resp.Body)
				resp.Body.Close()
			}
		}()
	}
	go func() { wg.Wait(); close(stop) }()

	polls := 0
	for {
		select {
		case <-stop:
			if polls == 0 {
				t.Fatal("no /debug/vars polls overlapped the publishes")
			}
			// Final poll after all publishes settled: exact counts.
			resp, err := http.Get(ts.URL + "/debug/vars")
			if err != nil {
				t.Fatal(err)
			}
			vars := decodeBody(t, resp)
			want := float64(publishers * perPublisher)
			if vars["docs_published"].(float64) != want {
				t.Fatalf("docs_published = %v, want %v", vars["docs_published"], want)
			}
			if vars["matches_total"].(float64) != want {
				t.Fatalf("matches_total = %v, want %v", vars["matches_total"], want)
			}
			return
		default:
		}
		resp, err := http.Get(ts.URL + "/debug/vars")
		if err != nil {
			t.Fatal(err)
		}
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("/debug/vars: status %d", resp.StatusCode)
		}
		// decodeBody fails the test on malformed JSON — the regression
		// this test exists for.
		vars := decodeBody(t, resp)
		docs := vars["docs_published"].(float64)
		matches := vars["matches_total"].(float64)
		if matches < docs-float64(publishers) || docs < 0 {
			// Every published document matches exactly one subscription;
			// matches may trail docs only by publishes between the two
			// counter loads (bounded by the in-flight publisher count).
			t.Fatalf("inconsistent snapshot: docs=%v matches=%v", docs, matches)
		}
		polls++
	}
}
