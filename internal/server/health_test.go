package server

import (
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"

	"predfilter"
)

func TestHealthzAlwaysOK(t *testing.T) {
	s := New(Config{})
	for _, drain := range []bool{false, true} {
		if drain {
			s.BeginDrain()
		}
		rr := httptest.NewRecorder()
		s.ServeHTTP(rr, httptest.NewRequest("GET", "/healthz", nil))
		if rr.Code != http.StatusOK {
			t.Fatalf("healthz (draining=%v) = %d, want 200", drain, rr.Code)
		}
	}
}

func TestReadyzDrainAware(t *testing.T) {
	s := New(Config{})
	rr := httptest.NewRecorder()
	s.ServeHTTP(rr, httptest.NewRequest("GET", "/readyz", nil))
	if rr.Code != http.StatusOK {
		t.Fatalf("readyz before drain = %d, want 200", rr.Code)
	}
	s.BeginDrain()
	rr = httptest.NewRecorder()
	s.ServeHTTP(rr, httptest.NewRequest("GET", "/readyz", nil))
	if rr.Code != http.StatusServiceUnavailable {
		t.Fatalf("readyz while draining = %d, want 503", rr.Code)
	}
	if rr.Header().Get("Retry-After") == "" {
		t.Fatal("draining readyz misses Retry-After")
	}
}

func TestSubscribeWithExplicitID(t *testing.T) {
	s := New(Config{})
	post := func(body string) *httptest.ResponseRecorder {
		rr := httptest.NewRecorder()
		s.ServeHTTP(rr, httptest.NewRequest("POST", "/subscriptions", strings.NewReader(body)))
		return rr
	}
	if rr := post(`{"expression":"/a/b","id":7}`); rr.Code != http.StatusCreated {
		t.Fatalf("subscribe id=7: %d %s", rr.Code, rr.Body)
	}
	// Idempotent retry: same id, same expression.
	if rr := post(`{"expression":"/a/b","id":7}`); rr.Code != http.StatusCreated {
		t.Fatalf("idempotent re-subscribe id=7: %d %s", rr.Code, rr.Body)
	}
	// Conflicting re-registration is refused.
	if rr := post(`{"expression":"/x/y","id":7}`); rr.Code != http.StatusConflict {
		t.Fatalf("conflicting re-subscribe id=7: %d, want 409", rr.Code)
	}
	// Auto-assignment continues past the pinned id.
	rr := post(`{"expression":"/c/d"}`)
	if rr.Code != http.StatusCreated {
		t.Fatalf("auto subscribe: %d %s", rr.Code, rr.Body)
	}
	var resp struct {
		ID predfilter.SID `json:"id"`
	}
	if err := json.Unmarshal(rr.Body.Bytes(), &resp); err != nil {
		t.Fatal(err)
	}
	if resp.ID <= 7 {
		t.Fatalf("auto-assigned id %d did not advance past pinned id 7", resp.ID)
	}
	// The pinned subscription matches like any other.
	rr = httptest.NewRecorder()
	s.ServeHTTP(rr, httptest.NewRequest("POST", "/publish", strings.NewReader("<a><b/></a>")))
	if rr.Code != http.StatusOK || !strings.Contains(rr.Body.String(), `"ids":[7]`) {
		t.Fatalf("publish = %d %s, want ids [7]", rr.Code, rr.Body)
	}
}

func TestWALShipEndpoint(t *testing.T) {
	dir := t.TempDir()
	s, err := Open(Config{StateDir: dir, NoSync: true})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()

	get := func(url string) WALShipResponse {
		t.Helper()
		rr := httptest.NewRecorder()
		s.ServeHTTP(rr, httptest.NewRequest("GET", url, nil))
		if rr.Code != http.StatusOK {
			t.Fatalf("GET %s = %d %s", url, rr.Code, rr.Body)
		}
		var resp WALShipResponse
		if err := json.Unmarshal(rr.Body.Bytes(), &resp); err != nil {
			t.Fatal(err)
		}
		return resp
	}

	// Bootstrap (no cursor) gets a snapshot.
	boot := get("/admin/wal")
	if !boot.Snapshot || len(boot.Entries) != 0 {
		t.Fatalf("bootstrap = %+v, want empty snapshot", boot)
	}

	if err := s.ApplyAdd(0, "/a/b"); err != nil {
		t.Fatal(err)
	}
	if err := s.ApplyAdd(5, "/c/d"); err != nil {
		t.Fatal(err)
	}
	cursor := fmt.Sprintf("/admin/wal?run=%s&epoch=%d&from=%d", boot.Run, boot.Epoch, boot.Next)
	tail := get(cursor)
	if tail.Snapshot || len(tail.Ops) != 2 {
		t.Fatalf("tail = %+v, want 2 ops", tail)
	}
	if tail.Ops[0].Op != "add" || tail.Ops[0].ID != 0 || tail.Ops[1].ID != 5 {
		t.Fatalf("tail ops = %+v", tail.Ops)
	}

	// A compaction invalidates the cursor: the next poll resyncs via
	// snapshot instead of silently missing operations.
	rr := httptest.NewRecorder()
	s.ServeHTTP(rr, httptest.NewRequest("POST", "/admin/snapshot", nil))
	if rr.Code != http.StatusOK {
		t.Fatalf("admin snapshot: %d %s", rr.Code, rr.Body)
	}
	resync := get(fmt.Sprintf("/admin/wal?run=%s&epoch=%d&from=%d", tail.Run, tail.Epoch, tail.Next))
	if !resync.Snapshot || len(resync.Entries) != 2 {
		t.Fatalf("post-compaction poll = %+v, want 2-entry snapshot", resync)
	}
	// A cursor from another server run likewise resyncs.
	foreign := get(fmt.Sprintf("/admin/wal?run=%016x&epoch=0&from=0", uint64(1)))
	if !foreign.Snapshot {
		t.Fatalf("foreign-run poll = %+v, want snapshot", foreign)
	}
}

func TestWALShipRequiresPersistence(t *testing.T) {
	s := New(Config{})
	rr := httptest.NewRecorder()
	s.ServeHTTP(rr, httptest.NewRequest("GET", "/admin/wal", nil))
	if rr.Code != http.StatusConflict {
		t.Fatalf("in-memory /admin/wal = %d, want 409", rr.Code)
	}
}
