// Package server implements a content-based dissemination service over
// the filtering engine: the selective information dissemination scenario
// the paper's introduction motivates, as an HTTP API. Clients register
// XPath subscriptions, publishers POST XML documents, and the service
// fans each document out to the matching subscriptions' delivery queues.
//
// The API (all JSON except the published XML body):
//
//	POST   /subscriptions        {"expression": "/nitf//p"}  → {"id": 7}
//	GET    /subscriptions                                    → live (id, expression) listing
//	DELETE /subscriptions/{id}                               → 204
//	GET    /subscriptions/{id}                               → subscription info
//	POST   /publish              <xml body>                  → {"matches": n, "ids": [...]}
//	POST   /publish?trace=1      <xml body>                  → the same plus a per-expression match trace
//	POST   /publish/batch        {"documents": [<xml>, ...]} → {"results": [...]}
//	GET    /deliveries/{id}?max=k                            → drained documents for one subscription
//	GET    /stats                                            → engine (and store) statistics
//	GET    /metrics                                          → Prometheus text exposition of the pipeline metrics
//	GET    /debug/vars           (always on)                 → JSON snapshot of the publish-path counters
//	GET    /debug/flight         (always on)                 → span trees of the last K anomalous publishes
//	GET    /healthz                                          → liveness probe (always 200 while the process serves)
//	GET    /readyz                                           → readiness probe (503 once draining began)
//	POST   /admin/snapshot                                   → compact the durable store now
//	GET    /admin/wal?run=&epoch=&from=                      → WAL-shipping poll for hot standbys (persistence only)
//
// POST /subscriptions also accepts an explicit {"id": n} to register under
// an externally assigned identifier — cluster coordinators own a global id
// space and place each id on its owning shard (internal/cluster).
//
// With Config.StateDir set (server.Open), the subscription set is durable:
// adds and removes are written to a checksummed write-ahead log before
// they are acknowledged, and a restart recovers every subscription under
// its original id (internal/store has the file formats and crash-recovery
// guarantees). Delivery queues are intentionally volatile.
//
// Batch publishes run through the engine's parallel matching pipeline
// (Engine.MatchStream), overlapping parsing and matching across the batch
// while preserving input order in the response.
//
// Deliveries are held in bounded per-subscription queues; a slow consumer
// loses oldest-first (counted in the subscription info) rather than
// blocking the publish path.
//
// Observability is always on: GET /metrics serves the engine's per-stage
// latency histograms and counters in the Prometheus text exposition
// format, /debug/vars serves a JSON snapshot of the publish-path
// counters, and POST /publish?trace=1 returns a per-expression match
// explanation alongside the normal response. With Config.Debug set, the
// server additionally exposes net/http/pprof under /debug/pprof/ so the
// matching pipeline can be profiled in place.
package server

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"math/rand"
	"net/http"
	"net/http/pprof"
	"runtime"
	"sort"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"predfilter"
	"predfilter/internal/metrics"
	"predfilter/internal/trace"
	"predfilter/internal/xpath"
)

// Config configures a Server.
type Config struct {
	// Engine configures the underlying filter engine.
	Engine predfilter.Config
	// QueueLimit bounds each subscription's delivery queue (default 128).
	QueueLimit int
	// MaxDocumentBytes bounds published documents (default 1 MiB).
	MaxDocumentBytes int64
	// Workers sizes the batch-publish matching pipeline (default
	// GOMAXPROCS).
	Workers int
	// Debug exposes /debug/pprof/. The observability endpoints (/metrics,
	// /debug/vars) are always on and not affected by this switch.
	Debug bool

	// MaxRequestBytes bounds the JSON request bodies of POST
	// /subscriptions and POST /publish/batch (default 64 MiB; oversized
	// requests get 413). It is the one knob for every JSON endpoint —
	// published XML documents are bounded separately by MaxDocumentBytes
	// and the engine's Limits.
	MaxRequestBytes int64
	// MaxInflight caps concurrently matching publish requests (0 =
	// unlimited). Requests beyond the cap wait in a bounded queue of
	// MaxQueued; once that is full too, the server sheds with 429 +
	// Retry-After instead of queueing unboundedly.
	MaxInflight int
	// MaxQueued bounds the publish wait queue used when MaxInflight is
	// saturated (default 4 × MaxInflight when MaxInflight is set).
	MaxQueued int
	// RequestTimeout bounds each publish request's matching work: the
	// request context gets this deadline, which the engine's match budget
	// observes per document (0 = no per-request deadline beyond the
	// engine's own Limits).
	RequestTimeout time.Duration

	// StateDir, when non-empty, makes the subscription set durable: every
	// add/remove is written to a write-ahead log in this directory before
	// it is acknowledged, and restarts recover the subscriptions under
	// their original ids (use Open, which can report recovery errors).
	// Delivery queues are in-memory only and do not survive restarts.
	StateDir string
	// SnapshotEvery compacts the log after this many operations
	// (0 = engine default, negative disables); see predfilter.PersistentConfig.
	SnapshotEvery int
	// SnapshotInterval additionally compacts on a timer (0 disables).
	SnapshotInterval time.Duration
	// NoSync disables fsync on the persistent store (tests/benchmarks).
	NoSync bool

	// FlightRecords sizes the flight recorder ring holding the span trees
	// of the last K anomalous publishes — slow (past the engine's
	// SlowDocThreshold), limit-tripped, timed-out, panicked, or
	// explicitly traced. 0 uses trace.DefaultFlightRecords; negative
	// disables the recorder. Exposed at GET /debug/flight.
	FlightRecords int
}

// Server is the dissemination service. Create with New or, when
// persistence is configured, Open; it implements http.Handler.
type Server struct {
	eng *predfilter.Engine
	// pe is the persistent engine when Config.StateDir is set (eng is then
	// pe's embedded in-memory engine); nil for a purely in-memory server.
	pe  *predfilter.PersistentEngine
	mux *http.ServeMux
	cfg Config

	// Publish-path counters (atomic: the publish paths run outside mu).
	docsPublished  atomic.Int64 // documents accepted by /publish and /publish/batch
	docsRejected   atomic.Int64 // documents that failed to parse
	matchesTotal   atomic.Int64 // sum of per-document match counts
	publishNanos   atomic.Int64 // wall time spent matching (per-request, so batch time counts once)
	batchDocsTotal atomic.Int64 // documents that arrived via /publish/batch

	// Admission control and degradation state. sem is the in-flight
	// publish semaphore (nil = unlimited); queued counts requests in the
	// bounded wait queue.
	sem      chan struct{}
	queued   atomic.Int64
	shed     atomic.Int64 // requests rejected with 429 (queue full) or dropped waiting
	timedOut atomic.Int64 // documents that hit the per-request/match deadline
	limited  atomic.Int64 // documents stopped by any governance limit
	panics   atomic.Int64 // handler panics recovered
	draining atomic.Bool  // Close/BeginDrain in progress: publishes get 503

	mu   sync.Mutex
	subs map[predfilter.SID]*subscription

	// runID identifies this server instance to WAL-shipping followers: a
	// follower whose cursor carries a different runID resyncs from a full
	// snapshot, so a primary restart (which resets the store's in-memory
	// epoch counter) can never be mistaken for cursor continuity.
	runID string

	// flight retains the span trees of recent anomalous publishes
	// (nil when Config.FlightRecords < 0).
	flight *trace.FlightRecorder
}

// subscription holds one registered expression and its delivery queue.
type subscription struct {
	Expression string `json:"expression"`
	Delivered  int    `json:"delivered"`
	Dropped    int    `json:"dropped"`
	Pending    int    `json:"pending"`

	queue [][]byte
}

// New returns a ready-to-serve Server. It panics if Config.StateDir is
// set and opening the store fails; use Open to handle recovery errors.
func New(cfg Config) *Server {
	s, err := Open(cfg)
	if err != nil {
		panic(err)
	}
	return s
}

// Open returns a ready-to-serve Server. With Config.StateDir set it opens
// the durable subscription store, recovers the persisted subscriptions
// (truncating a torn log tail if the last run crashed mid-write), and
// re-registers them under their original ids.
func Open(cfg Config) (*Server, error) {
	if cfg.QueueLimit <= 0 {
		cfg.QueueLimit = 128
	}
	if cfg.MaxDocumentBytes <= 0 {
		cfg.MaxDocumentBytes = 1 << 20
	}
	if cfg.MaxRequestBytes <= 0 {
		cfg.MaxRequestBytes = 64 << 20
	}
	if cfg.MaxInflight > 0 && cfg.MaxQueued <= 0 {
		cfg.MaxQueued = 4 * cfg.MaxInflight
	}
	s := &Server{
		mux:   http.NewServeMux(),
		cfg:   cfg,
		subs:  make(map[predfilter.SID]*subscription),
		runID: fmt.Sprintf("%016x", rand.Uint64()),
	}
	if cfg.FlightRecords >= 0 {
		s.flight = trace.NewFlightRecorder(cfg.FlightRecords)
	}
	if cfg.MaxInflight > 0 {
		s.sem = make(chan struct{}, cfg.MaxInflight)
	}
	if cfg.StateDir != "" {
		pe, err := predfilter.Open(cfg.StateDir, predfilter.PersistentConfig{
			Engine:           cfg.Engine,
			SnapshotEvery:    cfg.SnapshotEvery,
			SnapshotInterval: cfg.SnapshotInterval,
			NoSync:           cfg.NoSync,
		})
		if err != nil {
			return nil, err
		}
		s.pe = pe
		s.eng = pe.Engine
		for _, sub := range pe.Subscriptions() {
			s.subs[sub.ID] = &subscription{Expression: sub.Expression}
		}
	} else {
		s.eng = predfilter.New(cfg.Engine)
	}
	s.mux.HandleFunc("POST /subscriptions", s.handleSubscribe)
	s.mux.HandleFunc("GET /subscriptions", s.handleListSubscriptions)
	s.mux.HandleFunc("POST /admin/snapshot", s.handleAdminSnapshot)
	s.mux.HandleFunc("GET /subscriptions/{id}", s.handleGetSubscription)
	s.mux.HandleFunc("DELETE /subscriptions/{id}", s.handleUnsubscribe)
	s.mux.HandleFunc("POST /publish", s.handlePublish)
	s.mux.HandleFunc("POST /publish/batch", s.handlePublishBatch)
	s.mux.HandleFunc("GET /deliveries/{id}", s.handleDeliveries)
	s.mux.HandleFunc("GET /stats", s.handleStats)
	s.mux.HandleFunc("GET /metrics", s.handleMetrics)
	s.mux.HandleFunc("GET /debug/vars", s.handleDebugVars)
	s.mux.HandleFunc("GET /debug/flight", s.handleFlight)
	s.mux.HandleFunc("GET /healthz", s.handleHealthz)
	s.mux.HandleFunc("GET /readyz", s.handleReadyz)
	s.mux.HandleFunc("GET /admin/wal", s.handleWALShip)
	if cfg.Debug {
		s.mux.HandleFunc("GET /debug/pprof/", pprof.Index)
		s.mux.HandleFunc("GET /debug/pprof/cmdline", pprof.Cmdline)
		s.mux.HandleFunc("GET /debug/pprof/profile", pprof.Profile)
		s.mux.HandleFunc("GET /debug/pprof/symbol", pprof.Symbol)
		s.mux.HandleFunc("GET /debug/pprof/trace", pprof.Trace)
	}
	return s, nil
}

// ServeHTTP implements http.Handler. Panics in any handler are recovered
// here — counted, answered with 500, and isolated to the request that
// caused them — so one pathological document cannot take the service
// down. http.ErrAbortHandler (the stdlib's deliberate connection-abort
// panic) is re-raised untouched.
func (s *Server) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	defer func() {
		p := recover()
		if p == nil {
			return
		}
		if err, ok := p.(error); ok && errors.Is(err, http.ErrAbortHandler) {
			panic(p)
		}
		s.panics.Add(1)
		s.eng.Metrics().ObservePanic()
		rec := &trace.Record{
			Time:    time.Now(),
			Op:      r.Method + " " + r.URL.Path,
			Reasons: []string{"panicked"},
			Error:   fmt.Sprint(p),
		}
		if id, _, ok := trace.ParseHeader(r.Header.Get(trace.HeaderName)); ok {
			rec.TraceID = id.String()
		}
		s.flight.Add(rec)
		writeError(w, http.StatusInternalServerError, "internal error (recovered): %v", p)
	}()
	s.mux.ServeHTTP(w, r)
}

// FlightRecorder returns the server's flight recorder (nil when
// disabled); xfserve dumps it on SIGQUIT.
func (s *Server) FlightRecorder() *trace.FlightRecorder { return s.flight }

// BeginDrain puts the server into draining mode: publish requests are
// refused with 503 + Retry-After while requests already in flight run to
// completion. Call it before http.Server.Shutdown so the listener drains
// quickly instead of accepting new matching work.
func (s *Server) BeginDrain() { s.draining.Store(true) }

// Close shuts the server's engine down. New publish requests are refused
// with 503 from this point (draining). With persistence enabled it takes
// a final snapshot (so the next start recovers from the compacted
// snapshot instead of replaying the whole log) and closes the store; for
// an in-memory server there is nothing else to do. Call it after the HTTP
// listener has drained (http.Server.Shutdown).
func (s *Server) Close() error {
	s.BeginDrain()
	if s.pe == nil {
		return nil
	}
	return s.pe.Close()
}

// admit gates one publish request through the concurrency cap. It returns
// a release function and true when the request may proceed; otherwise it
// has already written the response: 503 + Retry-After while draining, 429
// + Retry-After when the in-flight cap and the wait queue are both full.
// Waiting requests leave the queue when their client disconnects.
func (s *Server) admit(w http.ResponseWriter, r *http.Request) (func(), bool) {
	if s.draining.Load() {
		w.Header().Set("Retry-After", "1")
		writeError(w, http.StatusServiceUnavailable, "server is draining")
		return nil, false
	}
	if s.sem == nil {
		return func() {}, true
	}
	select {
	case s.sem <- struct{}{}:
		return s.release, true
	default:
	}
	// In-flight cap saturated: join the bounded wait queue or shed.
	if s.queued.Add(1) > int64(s.cfg.MaxQueued) {
		s.queued.Add(-1)
		s.shed.Add(1)
		w.Header().Set("Retry-After", "1")
		writeError(w, http.StatusTooManyRequests,
			"concurrency limit reached (%d in flight, %d queued); retry later",
			s.cfg.MaxInflight, s.cfg.MaxQueued)
		return nil, false
	}
	defer s.queued.Add(-1)
	select {
	case s.sem <- struct{}{}:
		if s.draining.Load() {
			<-s.sem
			w.Header().Set("Retry-After", "1")
			writeError(w, http.StatusServiceUnavailable, "server is draining")
			return nil, false
		}
		return s.release, true
	case <-r.Context().Done():
		s.shed.Add(1)
		writeError(w, http.StatusServiceUnavailable, "client gave up waiting for a slot")
		return nil, false
	}
}

func (s *Server) release() { <-s.sem }

// requestContext derives the matching context for one publish request:
// the client's context plus the configured per-request deadline. The
// engine's match budget observes both.
func (s *Server) requestContext(r *http.Request) (context.Context, context.CancelFunc) {
	if s.cfg.RequestTimeout > 0 {
		return context.WithTimeout(r.Context(), s.cfg.RequestTimeout)
	}
	return r.Context(), func() {}
}

// publishError classifies one failed document: governance stops get their
// own statuses and counters (503 for deadline/cancellation, 413 for an
// oversized document, 422 for the structural and step limits — the
// document itself is unprocessable, and the typed detail says which bound
// it broke); anything else is a plain invalid document.
func (s *Server) publishError(w http.ResponseWriter, err error) {
	var le *predfilter.LimitError
	if errors.As(err, &le) {
		s.limited.Add(1)
		switch le.Kind {
		case predfilter.LimitDeadline, predfilter.LimitCanceled:
			s.timedOut.Add(1)
			w.Header().Set("Retry-After", "1")
			writeError(w, http.StatusServiceUnavailable, "match stopped: %v", err)
		case predfilter.LimitDocBytes:
			writeError(w, http.StatusRequestEntityTooLarge, "%v", err)
		default:
			writeError(w, http.StatusUnprocessableEntity, "document exceeds resource limits: %v", err)
		}
		return
	}
	writeError(w, http.StatusUnprocessableEntity, "invalid document: %v", err)
}

// canonExpr is the canonical form of an expression — the identity the
// WAL persists and recovery and WAL shipping reproduce. The live
// subscription table stores it so the set a client observes keeps its
// shape across a restart or a failover to a shipped standby.
func canonExpr(xpe string) (string, error) {
	p, err := xpath.Parse(xpe)
	if err != nil {
		return "", err
	}
	return p.String(), nil
}

// addExpr registers an expression through the persistent engine when
// persistence is on (logging it durably before acknowledging), or the
// plain engine otherwise. Callers hold s.mu.
func (s *Server) addExpr(xpe string) (predfilter.SID, error) {
	if s.pe != nil {
		return s.pe.Add(xpe)
	}
	return s.eng.Add(xpe)
}

// removeExpr is the removal counterpart of addExpr. Callers hold s.mu.
func (s *Server) removeExpr(sid predfilter.SID) error {
	if s.pe != nil {
		return s.pe.Remove(sid)
	}
	return s.eng.Remove(sid)
}

// addExprWithSID registers an expression under a caller-assigned id
// (cluster coordinators assign ids globally; WAL-shipping followers
// replay their primary's ids). Callers hold s.mu.
func (s *Server) addExprWithSID(xpe string, sid predfilter.SID) error {
	if s.pe != nil {
		return s.pe.AddWithSID(xpe, sid)
	}
	return s.eng.AddWithSID(xpe, sid)
}

// ApplyAdd registers expr under a fixed, externally assigned id. It is
// idempotent when the id is already live with the same expression (a
// WAL-shipping follower may re-apply an operation after a partial sync)
// and fails when the id is live with a different one.
func (s *Server) ApplyAdd(sid predfilter.SID, expr string) error {
	canon, err := canonExpr(expr)
	if err != nil {
		return err
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if sub := s.subs[sid]; sub != nil {
		if sub.Expression == canon {
			return nil
		}
		return fmt.Errorf("server: sid %d is live with a different expression", sid)
	}
	if err := s.addExprWithSID(expr, sid); err != nil {
		return err
	}
	s.subs[sid] = &subscription{Expression: canon}
	return nil
}

// ApplyRemove unregisters an externally assigned id. Removing an id that
// is not live is a no-op, for the same replay-idempotency reason.
func (s *Server) ApplyRemove(sid predfilter.SID) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.subs[sid] == nil {
		return nil
	}
	if err := s.removeExpr(sid); err != nil {
		return err
	}
	delete(s.subs, sid)
	return nil
}

// SubscriptionIDs returns a snapshot of the live id→expression set (the
// reconciliation input of a follower's snapshot catch-up).
func (s *Server) SubscriptionIDs() map[predfilter.SID]string {
	s.mu.Lock()
	defer s.mu.Unlock()
	out := make(map[predfilter.SID]string, len(s.subs))
	for sid, sub := range s.subs {
		out[sid] = sub.Expression
	}
	return out
}

// Preload registers a batch of subscriptions before serving (for example
// from a saved subscription file); it returns the assigned ids in order.
func (s *Server) Preload(xpes []string) ([]predfilter.SID, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	ids := make([]predfilter.SID, 0, len(xpes))
	for _, x := range xpes {
		canon, err := canonExpr(x)
		if err != nil {
			return ids, fmt.Errorf("server: preload %q: %w", x, err)
		}
		sid, err := s.addExpr(x)
		if err != nil {
			return ids, fmt.Errorf("server: preload %q: %w", x, err)
		}
		s.subs[sid] = &subscription{Expression: canon}
		ids = append(ids, sid)
	}
	return ids, nil
}

func writeJSON(w http.ResponseWriter, code int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	_ = json.NewEncoder(w).Encode(v)
}

func writeError(w http.ResponseWriter, code int, format string, args ...any) {
	writeJSON(w, code, map[string]string{"error": fmt.Sprintf(format, args...)})
}

func (s *Server) handleSubscribe(w http.ResponseWriter, r *http.Request) {
	var req struct {
		Expression string `json:"expression"`
		// ID, when present, pins the subscription to an externally
		// assigned identifier (cluster coordinators own a global id space
		// and place each id on its owning shard). Re-registering a live id
		// with the same expression is a no-op — the coordinator may retry
		// after losing a response.
		ID *int `json:"id"`
	}
	if err := json.NewDecoder(http.MaxBytesReader(w, r.Body, s.cfg.MaxRequestBytes)).Decode(&req); err != nil {
		var mbe *http.MaxBytesError
		if errors.As(err, &mbe) {
			writeError(w, http.StatusRequestEntityTooLarge, "request body exceeds %d bytes", s.cfg.MaxRequestBytes)
			return
		}
		writeError(w, http.StatusBadRequest, "invalid JSON: %v", err)
		return
	}
	if strings.TrimSpace(req.Expression) == "" {
		writeError(w, http.StatusBadRequest, "expression is required")
		return
	}
	if req.ID != nil {
		if *req.ID < 0 {
			writeError(w, http.StatusBadRequest, "negative subscription id %d", *req.ID)
			return
		}
		sid := predfilter.SID(*req.ID)
		if err := s.ApplyAdd(sid, req.Expression); err != nil {
			code := http.StatusUnprocessableEntity
			if strings.Contains(err.Error(), "different expression") {
				code = http.StatusConflict
			}
			writeError(w, code, "%v", err)
			return
		}
		writeJSON(w, http.StatusCreated, map[string]any{"id": sid})
		return
	}
	canon, err := canonExpr(req.Expression)
	if err != nil {
		writeError(w, http.StatusUnprocessableEntity, "%v", err)
		return
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	sid, err := s.addExpr(req.Expression)
	if err != nil {
		writeError(w, http.StatusUnprocessableEntity, "%v", err)
		return
	}
	s.subs[sid] = &subscription{Expression: canon}
	writeJSON(w, http.StatusCreated, map[string]any{"id": sid})
}

// SubscriptionEntry is one row of GET /subscriptions: a live id and its
// canonical expression.
type SubscriptionEntry struct {
	ID         predfilter.SID `json:"id"`
	Expression string         `json:"expression"`
}

// handleListSubscriptions lists the live subscription set in ascending
// id order. Cluster coordinators use it to rebuild their ownership
// records after a restart (the shards, not the coordinator, are the
// durable home of the subscription set).
func (s *Server) handleListSubscriptions(w http.ResponseWriter, r *http.Request) {
	s.mu.Lock()
	entries := make([]SubscriptionEntry, 0, len(s.subs))
	for sid, sub := range s.subs {
		entries = append(entries, SubscriptionEntry{ID: sid, Expression: sub.Expression})
	}
	s.mu.Unlock()
	sort.Slice(entries, func(i, j int) bool { return entries[i].ID < entries[j].ID })
	writeJSON(w, http.StatusOK, map[string]any{"count": len(entries), "subscriptions": entries})
}

func (s *Server) sidFromPath(w http.ResponseWriter, r *http.Request) (predfilter.SID, *subscription, bool) {
	id, err := strconv.Atoi(r.PathValue("id"))
	if err != nil {
		writeError(w, http.StatusBadRequest, "invalid subscription id %q", r.PathValue("id"))
		return 0, nil, false
	}
	sub := s.subs[predfilter.SID(id)]
	if sub == nil {
		writeError(w, http.StatusNotFound, "unknown subscription %d", id)
		return 0, nil, false
	}
	return predfilter.SID(id), sub, true
}

func (s *Server) handleGetSubscription(w http.ResponseWriter, r *http.Request) {
	s.mu.Lock()
	defer s.mu.Unlock()
	_, sub, ok := s.sidFromPath(w, r)
	if !ok {
		return
	}
	info := *sub
	info.Pending = len(sub.queue)
	info.queue = nil
	writeJSON(w, http.StatusOK, info)
}

func (s *Server) handleUnsubscribe(w http.ResponseWriter, r *http.Request) {
	s.mu.Lock()
	defer s.mu.Unlock()
	sid, _, ok := s.sidFromPath(w, r)
	if !ok {
		return
	}
	if err := s.removeExpr(sid); err != nil {
		writeError(w, http.StatusInternalServerError, "%v", err)
		return
	}
	delete(s.subs, sid)
	w.WriteHeader(http.StatusNoContent)
}

func (s *Server) handlePublish(w http.ResponseWriter, r *http.Request) {
	release, ok := s.admit(w, r)
	if !ok {
		return
	}
	defer release()
	doc, err := io.ReadAll(io.LimitReader(r.Body, s.cfg.MaxDocumentBytes+1))
	if err != nil {
		writeError(w, http.StatusBadRequest, "read body: %v", err)
		return
	}
	if int64(len(doc)) > s.cfg.MaxDocumentBytes {
		writeError(w, http.StatusRequestEntityTooLarge, "document exceeds %d bytes", s.cfg.MaxDocumentBytes)
		return
	}
	// Match without the registry lock: the engine is safe for concurrent
	// matching, and subscriptions added mid-publish simply miss this
	// document. With ?trace=1 the (slower) explaining match runs instead
	// and the per-expression trace rides along in the response.
	traced := r.URL.Query().Get("trace") == "1"
	// Distributed trace: continue one propagated by the coordinator, or
	// start one here for an explicitly traced publish. dt stays nil (and
	// costs nothing) on the untraced hot path.
	var dt *trace.Trace
	if id, parent, ok := trace.ParseHeader(r.Header.Get(trace.HeaderName)); ok {
		dt = trace.Join(id, parent)
	} else if traced {
		dt = trace.New()
	}
	var (
		sids []predfilter.SID
		tr   *predfilter.MatchTrace
	)
	ctx, cancel := s.requestContext(r)
	defer cancel()
	ctx = trace.NewContext(ctx, dt)
	span := dt.StartSpan("shard.match", 0)
	t0 := time.Now()
	if traced {
		sids, tr, err = s.eng.MatchTracedContext(ctx, doc)
	} else {
		sids, err = s.eng.MatchContext(ctx, doc)
	}
	elapsed := time.Since(t0)
	span.SetError(err)
	span.End()
	s.publishNanos.Add(elapsed.Nanoseconds())
	if dt.Enabled() {
		w.Header().Set(trace.ResponseHeaderName, dt.ID().String())
	}
	if err != nil {
		s.docsRejected.Add(1)
		s.recordPublishFlight(dt, elapsed, len(doc), 0, err)
		s.publishError(w, err)
		return
	}
	s.docsPublished.Add(1)
	s.matchesTotal.Add(int64(len(sids)))
	dspan := dt.StartSpan("shard.deliver", 0)
	delivered := s.deliver(doc, sids)
	dspan.End()
	s.recordPublishFlight(dt, elapsed, len(doc), len(delivered), nil)
	resp := map[string]any{"matches": len(delivered), "ids": delivered}
	if traced {
		resp["trace"] = tr
	}
	if dt.Enabled() {
		resp["trace_id"] = dt.ID().String()
	}
	writeJSON(w, http.StatusOK, resp)
}

// recordPublishFlight retains one publish in the flight recorder when it
// is anomalous — limit-tripped/timed-out/failed, or slow past the
// engine's SlowDocThreshold — or when it was explicitly traced (so a
// traced publish can always be found at /debug/flight afterwards).
func (s *Server) recordPublishFlight(dt *trace.Trace, elapsed time.Duration, docBytes, matches int, err error) {
	if s.flight == nil {
		return
	}
	var reasons []string
	if err != nil {
		var le *predfilter.LimitError
		if errors.As(err, &le) {
			switch le.Kind {
			case predfilter.LimitDeadline, predfilter.LimitCanceled:
				reasons = append(reasons, "timed_out")
			default:
				reasons = append(reasons, "limit_tripped")
			}
		} else {
			reasons = append(reasons, "failed")
		}
	}
	if slow := s.cfg.Engine.SlowDocThreshold; slow > 0 && elapsed >= slow {
		reasons = append(reasons, "slow")
	}
	if dt.Enabled() {
		reasons = append(reasons, "traced")
	}
	if len(reasons) == 0 {
		return
	}
	rec := &trace.Record{
		Time:          time.Now(),
		Op:            "publish",
		Reasons:       reasons,
		DurationNanos: elapsed.Nanoseconds(),
		DocBytes:      docBytes,
		Matches:       matches,
		Spans:         dt.Snapshot(),
	}
	if err != nil {
		rec.Error = err.Error()
	}
	if dt.Enabled() {
		rec.TraceID = dt.ID().String()
	}
	s.flight.Add(rec)
}

// handleFlight serves the flight recorder: the last K anomalous
// publishes with their span trees, oldest first.
func (s *Server) handleFlight(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, map[string]any{
		"recorded": s.flight.Recorded(),
		"capacity": s.flight.Cap(),
		"records":  s.flight.Snapshot(),
	})
}

// deliver enqueues doc for every matched, still-registered subscription
// and returns the ids actually delivered to.
func (s *Server) deliver(doc []byte, sids []predfilter.SID) []predfilter.SID {
	s.mu.Lock()
	defer s.mu.Unlock()
	delivered := make([]predfilter.SID, 0, len(sids))
	for _, sid := range sids {
		sub := s.subs[sid]
		if sub == nil {
			continue // removed concurrently
		}
		if len(sub.queue) >= s.cfg.QueueLimit {
			sub.queue = sub.queue[1:]
			sub.Dropped++
		}
		sub.queue = append(sub.queue, doc)
		sub.Delivered++
		delivered = append(delivered, sid)
	}
	return delivered
}

// handlePublishBatch publishes a batch of documents through the parallel
// matching pipeline. Per-document failures are reported per result; the
// batch itself succeeds.
func (s *Server) handlePublishBatch(w http.ResponseWriter, r *http.Request) {
	release, ok := s.admit(w, r)
	if !ok {
		return
	}
	defer release()
	var req struct {
		Documents []string `json:"documents"`
	}
	if err := json.NewDecoder(http.MaxBytesReader(w, r.Body, s.cfg.MaxRequestBytes)).Decode(&req); err != nil {
		var mbe *http.MaxBytesError
		if errors.As(err, &mbe) {
			writeError(w, http.StatusRequestEntityTooLarge, "request body exceeds %d bytes", s.cfg.MaxRequestBytes)
			return
		}
		writeError(w, http.StatusBadRequest, "invalid JSON: %v", err)
		return
	}
	if len(req.Documents) == 0 {
		writeError(w, http.StatusBadRequest, "documents is required")
		return
	}
	docs := make([][]byte, len(req.Documents))
	for i, d := range req.Documents {
		if int64(len(d)) > s.cfg.MaxDocumentBytes {
			writeError(w, http.StatusRequestEntityTooLarge, "document %d exceeds %d bytes", i, s.cfg.MaxDocumentBytes)
			return
		}
		docs[i] = []byte(d)
	}

	type item struct {
		Matches int              `json:"matches"`
		IDs     []predfilter.SID `json:"ids,omitempty"`
		Error   string           `json:"error,omitempty"`
	}
	ctx, cancel := s.requestContext(r)
	defer cancel()
	results := make([]item, 0, len(docs))
	published := 0
	t0 := time.Now()
	for _, res := range s.eng.MatchBatchContext(ctx, docs, s.cfg.Workers) {
		if res.Err != nil {
			s.docsRejected.Add(1)
			var le *predfilter.LimitError
			if errors.As(res.Err, &le) {
				s.limited.Add(1)
				if le.Kind == predfilter.LimitDeadline || le.Kind == predfilter.LimitCanceled {
					s.timedOut.Add(1)
				}
			}
			results = append(results, item{Error: res.Err.Error()})
			continue
		}
		s.docsPublished.Add(1)
		s.matchesTotal.Add(int64(len(res.SIDs)))
		published++
		delivered := s.deliver(res.Doc, res.SIDs)
		results = append(results, item{Matches: len(delivered), IDs: delivered})
	}
	s.publishNanos.Add(time.Since(t0).Nanoseconds())
	s.batchDocsTotal.Add(int64(len(docs)))
	writeJSON(w, http.StatusOK, map[string]any{"published": published, "results": results})
}

// handleAdminSnapshot compacts the durable store's log into a fresh
// snapshot on demand (e.g. before a planned restart, to make the next
// recovery a pure snapshot load).
func (s *Server) handleAdminSnapshot(w http.ResponseWriter, r *http.Request) {
	if s.pe == nil {
		writeError(w, http.StatusConflict, "persistence is not enabled (no -state directory)")
		return
	}
	if err := s.pe.Snapshot(); err != nil {
		writeError(w, http.StatusInternalServerError, "snapshot: %v", err)
		return
	}
	writeJSON(w, http.StatusOK, map[string]any{"store": s.storeVars()})
}

// storeVars flattens the persistence counters for /stats, /debug/vars and
// the admin snapshot response. Returns nil when persistence is off.
func (s *Server) storeVars() map[string]any {
	if s.pe == nil {
		return nil
	}
	st := s.pe.StoreStats()
	var last any
	if !st.LastSnapshot.IsZero() {
		last = st.LastSnapshot.UTC().Format(time.RFC3339Nano)
	}
	return map[string]any{
		"live":             st.Live,
		"next_sid":         st.NextSID,
		"wal_records":      st.WALRecords,
		"wal_bytes":        st.WALBytes,
		"appends":          st.Appends,
		"snapshots":        st.Snapshots,
		"last_snapshot":    last,
		"snapshot_entries": st.SnapshotEntries,
		"replayed_records": st.ReplayedRecords,
		"torn_bytes":       st.TornBytes,
	}
}

// pathCacheVars flattens the engine's path-signature cache counters for
// /stats and /debug/vars. Returns nil when the cache is disabled.
func (s *Server) pathCacheVars() map[string]any {
	pc := s.eng.Stats().PathCache
	if !pc.Enabled {
		return nil
	}
	return map[string]any{
		"hits":          pc.Hits,
		"misses":        pc.Misses,
		"hit_rate":      pc.HitRate(),
		"evictions":     pc.Evictions,
		"invalidations": pc.Invalidations,
		"entries":       pc.Entries,
		"bytes":         pc.Bytes,
		"max_bytes":     pc.MaxBytes,
	}
}

// columnarVars flattens the columnar batch matcher's counters for /stats
// and /debug/vars. Returns nil until a batch entry point has engaged the
// kernel, so scalar-only deployments keep their response shape.
func (s *Server) columnarVars() map[string]any {
	cs := s.eng.Stats().Columnar
	if cs.Batches == 0 {
		return nil
	}
	return map[string]any{
		"batches":         cs.Batches,
		"docs":            cs.Docs,
		"avg_batch":       cs.AvgBatch(),
		"paths":           cs.Paths,
		"candidates":      cs.Candidates,
		"ambiguous_paths": cs.AmbiguousPaths,
		"words_swept":     cs.WordsSwept,
		"words_live":      cs.WordsLive,
		"occupancy":       cs.Occupancy(),
	}
}

// publishCounters is one consistent-enough snapshot of the publish-path
// counters: every atomic is loaded exactly once per request, and all
// derived values (docs/sec) come from those loads, so a response can
// never contradict itself about a counter it reports twice.
type publishCounters struct {
	docs, rejected, batch, matches, nanos int64
}

func (s *Server) snapshotPublishCounters() publishCounters {
	return publishCounters{
		docs:     s.docsPublished.Load(),
		rejected: s.docsRejected.Load(),
		batch:    s.batchDocsTotal.Load(),
		matches:  s.matchesTotal.Load(),
		nanos:    s.publishNanos.Load(),
	}
}

// handleDebugVars reports publish-path throughput counters and allocation
// statistics (a /debug/vars-style snapshot for profiling the pipeline).
// The response is marshaled to a buffer before writing so concurrent
// publishes can never interleave with a partially written body.
func (s *Server) handleDebugVars(w http.ResponseWriter, r *http.Request) {
	var ms runtime.MemStats
	runtime.ReadMemStats(&ms)
	pc := s.snapshotPublishCounters()
	var docsPerSec float64
	if pc.nanos > 0 {
		docsPerSec = float64(pc.docs) / (float64(pc.nanos) / 1e9)
	}
	vars := map[string]any{
		"docs_published":       pc.docs,
		"docs_rejected":        pc.rejected,
		"batch_docs":           pc.batch,
		"matches_total":        pc.matches,
		"publish_ns":           pc.nanos,
		"publish_docs_per_sec": docsPerSec,
		"shed":                 s.shed.Load(),
		"timed_out":            s.timedOut.Load(),
		"limit_stopped":        s.limited.Load(),
		"panics_recovered":     s.panics.Load(),
		"inflight_queued":      s.queued.Load(),
		"draining":             s.draining.Load(),
		"workers":              s.cfg.Workers,
		"gomaxprocs":           runtime.GOMAXPROCS(0),
		"goroutines":           runtime.NumGoroutine(),
		"mem_total_alloc":      ms.TotalAlloc,
		"mem_mallocs":          ms.Mallocs,
		"mem_heap_alloc":       ms.HeapAlloc,
		"num_gc":               ms.NumGC,
	}
	if sv := s.storeVars(); sv != nil {
		vars["store"] = sv
	}
	if cv := s.pathCacheVars(); cv != nil {
		vars["path_cache"] = cv
	}
	if cl := s.columnarVars(); cl != nil {
		vars["columnar"] = cl
	}
	body, err := json.Marshal(vars)
	if err != nil {
		writeError(w, http.StatusInternalServerError, "marshal vars: %v", err)
		return
	}
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(http.StatusOK)
	_, _ = w.Write(body)
}

// handleMetrics serves the engine's metric state plus the server's
// publish-path and store counters in the Prometheus text exposition
// format (version 0.0.4). Always on: recording follows the engine's
// zero-allocation contract, so there is nothing to toggle.
func (s *Server) handleMetrics(w http.ResponseWriter, r *http.Request) {
	var buf bytes.Buffer
	if err := s.eng.WriteMetrics(&buf); err != nil {
		writeError(w, http.StatusInternalServerError, "metrics: %v", err)
		return
	}
	pc := s.snapshotPublishCounters()
	x := metrics.NewExposition(&buf)
	x.Family("predfilter_server_docs_published_total", "Documents accepted by /publish and /publish/batch.", "counter")
	x.Int("predfilter_server_docs_published_total", "", pc.docs)
	x.Family("predfilter_server_docs_rejected_total", "Published documents that failed to parse.", "counter")
	x.Int("predfilter_server_docs_rejected_total", "", pc.rejected)
	x.Family("predfilter_server_batch_docs_total", "Documents that arrived via /publish/batch.", "counter")
	x.Int("predfilter_server_batch_docs_total", "", pc.batch)
	x.Family("predfilter_server_matches_total", "Sum of per-document match counts on the publish paths.", "counter")
	x.Int("predfilter_server_matches_total", "", pc.matches)
	x.Family("predfilter_server_publish_seconds_total", "Wall time spent matching published documents.", "counter")
	x.Value("predfilter_server_publish_seconds_total", "", float64(pc.nanos)/1e9)
	x.Family("predfilter_server_shed_total", "Publish requests shed by admission control (429 or abandoned wait).", "counter")
	x.Int("predfilter_server_shed_total", "", s.shed.Load())
	x.Family("predfilter_server_timed_out_total", "Published documents that hit the per-request or match deadline.", "counter")
	x.Int("predfilter_server_timed_out_total", "", s.timedOut.Load())
	x.Family("predfilter_server_limit_stopped_total", "Published documents stopped by a resource-governance limit.", "counter")
	x.Int("predfilter_server_limit_stopped_total", "", s.limited.Load())
	x.Family("predfilter_server_panics_recovered_total", "Handler panics recovered by the isolation layer.", "counter")
	x.Int("predfilter_server_panics_recovered_total", "", s.panics.Load())
	if s.pe != nil {
		st := s.pe.StoreStats()
		x.Family("predfilter_store_live_subscriptions", "Live persisted subscriptions.", "gauge")
		x.Int("predfilter_store_live_subscriptions", "", int64(st.Live))
		x.Family("predfilter_store_wal_records", "Records in the write-ahead log since the last snapshot.", "gauge")
		x.Int("predfilter_store_wal_records", "", st.WALRecords)
		x.Family("predfilter_store_wal_bytes", "Write-ahead log body size in bytes.", "gauge")
		x.Int("predfilter_store_wal_bytes", "", st.WALBytes)
		x.Family("predfilter_store_appends_total", "Records appended to the write-ahead log.", "counter")
		x.Int("predfilter_store_appends_total", "", st.Appends)
		x.Family("predfilter_store_snapshots_total", "Snapshots written.", "counter")
		x.Int("predfilter_store_snapshots_total", "", st.Snapshots)
	}
	if err := x.Err(); err != nil {
		writeError(w, http.StatusInternalServerError, "metrics: %v", err)
		return
	}
	w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
	w.WriteHeader(http.StatusOK)
	_, _ = w.Write(buf.Bytes())
}

func (s *Server) handleDeliveries(w http.ResponseWriter, r *http.Request) {
	max := 10
	if q := r.URL.Query().Get("max"); q != "" {
		v, err := strconv.Atoi(q)
		if err != nil || v <= 0 {
			writeError(w, http.StatusBadRequest, "invalid max %q", q)
			return
		}
		max = v
	}
	s.mu.Lock()
	_, sub, ok := s.sidFromPath(w, r)
	if !ok {
		s.mu.Unlock()
		return
	}
	n := len(sub.queue)
	if n > max {
		n = max
	}
	docs := sub.queue[:n]
	sub.queue = sub.queue[n:]
	s.mu.Unlock()

	out := make([]string, len(docs))
	for i, d := range docs {
		out[i] = string(d)
	}
	writeJSON(w, http.StatusOK, map[string]any{"documents": out, "remaining": len(sub.queue)})
}

// handleHealthz is the liveness probe: the process is up and the handler
// chain works. It deliberately says nothing about readiness — a draining
// server is still alive.
func (s *Server) handleHealthz(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, map[string]any{"status": "ok"})
}

// handleReadyz is the drain-aware readiness probe: 200 while the server
// accepts publishes, 503 once draining began (Close/BeginDrain), so load
// balancers and cluster coordinators stop routing before shutdown
// completes.
func (s *Server) handleReadyz(w http.ResponseWriter, r *http.Request) {
	if s.draining.Load() {
		w.Header().Set("Retry-After", "1")
		writeJSON(w, http.StatusServiceUnavailable, map[string]any{"status": "draining"})
		return
	}
	writeJSON(w, http.StatusOK, map[string]any{"status": "ok"})
}

// WALShipOp is one shipped subscription operation on the /admin/wal wire.
type WALShipOp struct {
	Op         string         `json:"op"` // "add" or "remove"
	ID         predfilter.SID `json:"id"`
	Expression string         `json:"expression,omitempty"`
}

// WALShipEntry is one live subscription in a /admin/wal snapshot response.
type WALShipEntry struct {
	ID         predfilter.SID `json:"id"`
	Expression string         `json:"expression"`
}

// WALShipResponse is the /admin/wal response body. In tail mode Ops holds
// the operations since the follower's cursor; in snapshot mode (Snapshot
// set) Entries holds the full live set the follower must reconcile to
// before tailing again. Run/Epoch/Next form the next cursor either way.
type WALShipResponse struct {
	Run      string         `json:"run"`
	Epoch    int64          `json:"epoch"`
	Next     int64          `json:"next"`
	Snapshot bool           `json:"snapshot,omitempty"`
	NextSID  uint32         `json:"next_sid,omitempty"`
	Entries  []WALShipEntry `json:"entries,omitempty"`
	Ops      []WALShipOp    `json:"ops,omitempty"`
}

// handleWALShip serves the WAL-shipping protocol behind hot standbys: a
// follower polls with its cursor (?run=&epoch=&from=) and receives the
// operations logged since, reading only the log tail. A cursor from
// another server run, an epoch compacted away, or an offset off a record
// boundary gets a full snapshot plus a fresh cursor instead — the
// catch-up path, which is also how a brand-new follower (no cursor)
// bootstraps.
func (s *Server) handleWALShip(w http.ResponseWriter, r *http.Request) {
	if s.pe == nil {
		writeError(w, http.StatusConflict, "persistence is not enabled (no -state directory); nothing to ship")
		return
	}
	q := r.URL.Query()
	run := q.Get("run")
	epoch, err1 := strconv.ParseInt(q.Get("epoch"), 10, 64)
	from, err2 := strconv.ParseInt(q.Get("from"), 10, 64)
	if run == s.runID && err1 == nil && err2 == nil {
		ops, next, err := s.pe.ShipRead(epoch, from)
		switch {
		case err == nil:
			resp := WALShipResponse{Run: s.runID, Epoch: epoch, Next: next, Ops: make([]WALShipOp, len(ops))}
			for i, op := range ops {
				if op.Remove {
					resp.Ops[i] = WALShipOp{Op: "remove", ID: op.ID}
				} else {
					resp.Ops[i] = WALShipOp{Op: "add", ID: op.ID, Expression: op.Expression}
				}
			}
			writeJSON(w, http.StatusOK, resp)
			return
		case errors.Is(err, predfilter.ErrStaleCursor):
			// Fall through to the snapshot path.
		default:
			writeError(w, http.StatusInternalServerError, "wal read: %v", err)
			return
		}
	}
	subs, nextSID, ep, off := s.pe.ShipSnapshot()
	resp := WALShipResponse{
		Run: s.runID, Epoch: ep, Next: off,
		Snapshot: true, NextSID: nextSID,
		Entries: make([]WALShipEntry, len(subs)),
	}
	for i, sub := range subs {
		resp.Entries[i] = WALShipEntry{ID: sub.ID, Expression: sub.Expression}
	}
	writeJSON(w, http.StatusOK, resp)
}

// stageVars flattens one stage-latency summary for /stats.
func stageVars(h predfilter.HistogramStats) map[string]any {
	return map[string]any{
		"count":    h.Count,
		"total_ns": h.TotalNanos,
		"p50_ns":   h.P50Nanos,
		"p95_ns":   h.P95Nanos,
		"p99_ns":   h.P99Nanos,
	}
}

func (s *Server) handleStats(w http.ResponseWriter, r *http.Request) {
	st := s.eng.Stats()
	s.mu.Lock()
	subs := len(s.subs)
	s.mu.Unlock()
	stats := map[string]any{
		"subscriptions":        subs,
		"expressions":          st.Expressions,
		"distinct_expressions": st.DistinctExpressions,
		"distinct_predicates":  st.DistinctPredicates,
		"nested_expressions":   st.NestedExpressions,
		"documents":            st.Documents,
		"doc_errors":           st.DocErrors,
		"doc_bytes":            st.DocBytes,
		"paths":                st.Paths,
		"matches":              st.Matches,
		"slow_docs":            st.SlowDocs,
		"shed":                 s.shed.Load(),
		"timed_out":            s.timedOut.Load(),
		"limit_stopped":        s.limited.Load(),
		"panics_recovered":     st.Panics,
		"stages": map[string]any{
			"parse":           stageVars(st.Stages.Parse),
			"cache":           stageVars(st.Stages.Cache),
			"predicate_match": stageVars(st.Stages.PredicateMatch),
			"occurrence":      stageVars(st.Stages.Occurrence),
			"match":           stageVars(st.Stages.Match),
			"wal_append":      stageVars(st.Stages.WALAppend),
			"snapshot":        stageVars(st.Stages.Snapshot),
		},
	}
	if len(st.LimitTrips) > 0 {
		stats["limit_trips"] = st.LimitTrips
	}
	if sv := s.storeVars(); sv != nil {
		stats["store"] = sv
	}
	if pc := s.pathCacheVars(); pc != nil {
		stats["path_cache"] = pc
	}
	if cl := s.columnarVars(); cl != nil {
		stats["columnar"] = cl
	}
	writeJSON(w, http.StatusOK, stats)
}
