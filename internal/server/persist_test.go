package server

import (
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"reflect"
	"sort"
	"strings"
	"testing"
)

// doReq performs one request against the handler and decodes the JSON
// response body into out (when non-nil).
func doReq(t *testing.T, h http.Handler, method, path, body string, wantCode int, out any) {
	t.Helper()
	req := httptest.NewRequest(method, path, strings.NewReader(body))
	rr := httptest.NewRecorder()
	h.ServeHTTP(rr, req)
	if rr.Code != wantCode {
		t.Fatalf("%s %s = %d (%s), want %d", method, path, rr.Code, rr.Body.String(), wantCode)
	}
	if out != nil {
		if err := json.NewDecoder(rr.Body).Decode(out); err != nil {
			t.Fatalf("%s %s: decode response: %v", method, path, err)
		}
	}
}

func publishIDs(t *testing.T, h http.Handler, doc string) []float64 {
	t.Helper()
	var resp struct {
		IDs []float64 `json:"ids"`
	}
	doReq(t, h, "POST", "/publish", doc, http.StatusOK, &resp)
	sort.Float64s(resp.IDs)
	return resp.IDs
}

// TestServerRestartRoundTrip is the service-level acceptance check: the
// subscription registry (engine and HTTP layer alike) survives a restart,
// and documents match the same subscription ids afterwards.
func TestServerRestartRoundTrip(t *testing.T) {
	dir := t.TempDir()
	cfg := Config{StateDir: dir, NoSync: true, Debug: true}
	s, err := Open(cfg)
	if err != nil {
		t.Fatal(err)
	}

	exprs := []string{"/feed/alert", "//alert[@level=red]", "/feed/news", "/feed/alert"}
	var ids []float64
	for _, x := range exprs {
		var resp struct {
			ID float64 `json:"id"`
		}
		doReq(t, s, "POST", "/subscriptions", `{"expression":"`+x+`"}`, http.StatusCreated, &resp)
		ids = append(ids, resp.ID)
	}
	// Remove one subscription; its id must stay dead after restart.
	doReq(t, s, "DELETE", "/subscriptions/2", "", http.StatusNoContent, nil)

	doc := `<feed><alert level="red">a</alert><news>n</news></feed>`
	want := publishIDs(t, s, doc)
	if len(want) != 3 { // sids 0, 1, 3 (news was removed)
		t.Fatalf("pre-restart matches = %v, want 3 ids", want)
	}

	// Stats carry the store counters.
	var stats map[string]any
	doReq(t, s, "GET", "/stats", "", http.StatusOK, &stats)
	store, ok := stats["store"].(map[string]any)
	if !ok {
		t.Fatalf("/stats has no store section: %v", stats)
	}
	if store["live"].(float64) != 3 || store["wal_records"].(float64) != 5 {
		t.Fatalf("store counters = %v, want live=3 wal_records=5", store)
	}
	var vars map[string]any
	doReq(t, s, "GET", "/debug/vars", "", http.StatusOK, &vars)
	if _, ok := vars["store"].(map[string]any); !ok {
		t.Fatalf("/debug/vars has no store section: %v", vars)
	}

	// Admin snapshot compacts the log.
	var snapResp map[string]any
	doReq(t, s, "POST", "/admin/snapshot", "", http.StatusOK, &snapResp)
	if got := snapResp["store"].(map[string]any)["wal_records"].(float64); got != 0 {
		t.Fatalf("wal_records after admin snapshot = %v, want 0", got)
	}

	if err := s.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}

	// Restart.
	s2, err := Open(cfg)
	if err != nil {
		t.Fatalf("reopen: %v", err)
	}
	defer s2.Close()

	if got := publishIDs(t, s2, doc); !reflect.DeepEqual(got, want) {
		t.Fatalf("matches after restart = %v, want %v", got, want)
	}
	// The HTTP registry recovered too: surviving ids resolve, the removed
	// one does not, and its expression round-tripped.
	var info struct {
		Expression string `json:"expression"`
	}
	doReq(t, s2, "GET", "/subscriptions/1", "", http.StatusOK, &info)
	if info.Expression != "//alert[@level=red]" {
		t.Fatalf("recovered expression = %q", info.Expression)
	}
	doReq(t, s2, "GET", "/subscriptions/2", "", http.StatusNotFound, nil)

	// New subscriptions continue past the recovered id space.
	var resp struct {
		ID float64 `json:"id"`
	}
	doReq(t, s2, "POST", "/subscriptions", `{"expression":"/feed/extra"}`, http.StatusCreated, &resp)
	if resp.ID != 4 {
		t.Fatalf("post-restart id = %v, want 4", resp.ID)
	}
}

// TestAdminSnapshotWithoutPersistence rejects the admin endpoint on an
// in-memory server instead of pretending to have compacted something.
func TestAdminSnapshotWithoutPersistence(t *testing.T) {
	s := New(Config{})
	doReq(t, s, "POST", "/admin/snapshot", "", http.StatusConflict, nil)
	if err := s.Close(); err != nil {
		t.Fatalf("Close of in-memory server: %v", err)
	}
	// And /stats has no store section.
	var stats map[string]any
	doReq(t, s, "GET", "/stats", "", http.StatusOK, &stats)
	if _, ok := stats["store"]; ok {
		t.Fatalf("in-memory /stats grew a store section: %v", stats)
	}
}

// TestServerPreloadPersists routes -subs preloading through the log as
// well, so a preloaded server restarted *without* the subs file still
// serves its subscriptions.
func TestServerPreloadPersists(t *testing.T) {
	dir := t.TempDir()
	cfg := Config{StateDir: dir, NoSync: true}
	s, err := Open(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := s.Preload([]string{"/a//b", "//c"}); err != nil {
		t.Fatal(err)
	}
	s.Close()

	s2, err := Open(cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer s2.Close()
	var stats map[string]any
	doReq(t, s2, "GET", "/stats", "", http.StatusOK, &stats)
	if got := stats["subscriptions"].(float64); got != 2 {
		t.Fatalf("recovered subscriptions = %v, want 2", got)
	}
}
