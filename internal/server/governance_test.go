package server

import (
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"

	"predfilter/workload"
)

// post issues a POST without the success assertion of publish().
func post(t *testing.T, url, contentType, body string) *http.Response {
	t.Helper()
	resp, err := http.Post(url, contentType, strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	return resp
}

func drainClose(t *testing.T, resp *http.Response) string {
	t.Helper()
	body, err := io.ReadAll(resp.Body)
	resp.Body.Close()
	if err != nil {
		t.Fatal(err)
	}
	return string(body)
}

func TestPublishLimitErrors(t *testing.T) {
	cfg := Config{}
	cfg.Engine.Limits.MaxDepth = 16
	cfg.Engine.Limits.MaxDocBytes = 1 << 16
	ts := newTestServer(t, cfg)
	subscribe(t, ts, "//d")

	// A depth bomb is unprocessable: 422 naming the tripped bound.
	resp := post(t, ts.URL+"/publish", "application/xml", string(workload.DepthBomb(64)))
	body := drainClose(t, resp)
	if resp.StatusCode != http.StatusUnprocessableEntity {
		t.Fatalf("depth bomb: status %d body %s, want 422", resp.StatusCode, body)
	}
	if !strings.Contains(body, "depth") {
		t.Fatalf("depth bomb error does not name the limit: %s", body)
	}

	// An oversized document (engine's MaxDocBytes) is 413.
	resp = post(t, ts.URL+"/publish", "application/xml", string(workload.PathBomb(1<<15)))
	body = drainClose(t, resp)
	if resp.StatusCode != http.StatusRequestEntityTooLarge {
		t.Fatalf("doc-bytes bomb: status %d body %s, want 413", resp.StatusCode, body)
	}

	// The trips are visible in /stats.
	sresp, err := http.Get(ts.URL + "/stats")
	if err != nil {
		t.Fatal(err)
	}
	stats := decodeBody(t, sresp)
	if stats["limit_stopped"].(float64) != 2 {
		t.Fatalf("limit_stopped = %v, want 2", stats["limit_stopped"])
	}
	trips, ok := stats["limit_trips"].(map[string]any)
	if !ok || trips["depth"].(float64) != 1 || trips["doc_bytes"].(float64) != 1 {
		t.Fatalf("limit_trips = %v, want depth:1 doc_bytes:1", stats["limit_trips"])
	}
}

func TestPublishRequestTimeout(t *testing.T) {
	doc, expr := workload.OccurrenceBomb(42, 48)
	cfg := Config{RequestTimeout: 100 * time.Millisecond, MaxDocumentBytes: 1 << 20}
	ts := newTestServer(t, cfg)
	subscribe(t, ts, expr)

	t0 := time.Now()
	resp := post(t, ts.URL+"/publish", "application/xml", string(doc))
	took := time.Since(t0)
	body := drainClose(t, resp)
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("timed-out publish: status %d body %s, want 503", resp.StatusCode, body)
	}
	if resp.Header.Get("Retry-After") == "" {
		t.Fatal("timed-out publish carries no Retry-After")
	}
	if took > 10*time.Second {
		t.Fatalf("request deadline stop took %v", took)
	}

	sresp, err := http.Get(ts.URL + "/stats")
	if err != nil {
		t.Fatal(err)
	}
	stats := decodeBody(t, sresp)
	if stats["timed_out"].(float64) < 1 {
		t.Fatalf("timed_out = %v, want >= 1", stats["timed_out"])
	}
}

func TestPublishTracedGoverned(t *testing.T) {
	// The ?trace=1 path runs the deliberately slow explaining match; it
	// must observe the same request deadline and engine limits as the
	// normal path, so a blowup document with trace enabled cannot pin a
	// worker (and its MaxInflight slot) forever.
	doc, expr := workload.OccurrenceBomb(42, 48)
	cfg := Config{RequestTimeout: 100 * time.Millisecond, MaxDocumentBytes: 1 << 20}
	ts := newTestServer(t, cfg)
	subscribe(t, ts, expr)

	t0 := time.Now()
	resp := post(t, ts.URL+"/publish?trace=1", "application/xml", string(doc))
	took := time.Since(t0)
	body := drainClose(t, resp)
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("traced timed-out publish: status %d body %s, want 503", resp.StatusCode, body)
	}
	if resp.Header.Get("Retry-After") == "" {
		t.Fatal("traced timed-out publish carries no Retry-After")
	}
	if took > 10*time.Second {
		t.Fatalf("traced deadline stop took %v", took)
	}

	// Structural limits govern the traced parse too.
	cfg2 := Config{}
	cfg2.Engine.Limits.MaxDepth = 16
	ts2 := newTestServer(t, cfg2)
	subscribe(t, ts2, "//d")
	resp = post(t, ts2.URL+"/publish?trace=1", "application/xml", string(workload.DepthBomb(64)))
	body = drainClose(t, resp)
	if resp.StatusCode != http.StatusUnprocessableEntity {
		t.Fatalf("traced depth bomb: status %d body %s, want 422", resp.StatusCode, body)
	}
}

func TestAdmissionShedsWithRetryAfter(t *testing.T) {
	// One slot, no queue beyond one waiter. The slot and the queue are
	// held by occurrence bombs that run until the 1s engine deadline, so
	// the third publish must be shed with 429 + Retry-After while the two
	// in-flight requests still run to completion.
	doc, expr := workload.OccurrenceBomb(42, 48)
	cfg := Config{MaxInflight: 1, MaxQueued: 1, MaxDocumentBytes: 1 << 20}
	cfg.Engine.Limits.MatchDeadline = time.Second
	ts := newTestServer(t, cfg)
	subscribe(t, ts, expr)

	type outcome struct {
		status int
		retry  string
	}
	results := make(chan outcome, 2)
	var wg sync.WaitGroup
	for i := 0; i < 2; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			resp, err := http.Post(ts.URL+"/publish", "application/xml", strings.NewReader(string(doc)))
			if err != nil {
				results <- outcome{status: -1}
				return
			}
			drainClose(t, resp)
			results <- outcome{status: resp.StatusCode, retry: resp.Header.Get("Retry-After")}
		}()
	}

	// Wait until the slot and the wait queue are actually occupied before
	// probing, polling /debug/vars rather than sleeping a guess.
	saturated := false
	for deadline := time.Now().Add(5 * time.Second); time.Now().Before(deadline); {
		vresp, err := http.Get(ts.URL + "/debug/vars")
		if err != nil {
			t.Fatal(err)
		}
		vars := decodeBody(t, vresp)
		if vars["inflight_queued"].(float64) >= 1 {
			saturated = true
			break
		}
		time.Sleep(5 * time.Millisecond)
	}
	if !saturated {
		t.Fatal("wait queue never filled")
	}

	resp := post(t, ts.URL+"/publish", "application/xml", string(doc))
	body := drainClose(t, resp)
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("saturated publish: status %d body %s, want 429", resp.StatusCode, body)
	}
	if resp.Header.Get("Retry-After") == "" {
		t.Fatal("shed response carries no Retry-After")
	}

	// The in-flight requests complete (with the deadline's 503 — the
	// bomb cannot match — but complete: admission shed only the overflow).
	wg.Wait()
	close(results)
	for o := range results {
		if o.status != http.StatusServiceUnavailable {
			t.Fatalf("in-flight publish finished with %d, want the deadline's 503", o.status)
		}
	}

	sresp, err := http.Get(ts.URL + "/stats")
	if err != nil {
		t.Fatal(err)
	}
	stats := decodeBody(t, sresp)
	if stats["shed"].(float64) != 1 {
		t.Fatalf("shed = %v, want 1", stats["shed"])
	}
}

func TestDrainingRefusesPublishes(t *testing.T) {
	srv := New(Config{})
	ts := httptest.NewServer(srv)
	t.Cleanup(ts.Close)
	subscribe(t, ts, "//a")

	srv.BeginDrain()
	resp := post(t, ts.URL+"/publish", "application/xml", "<a/>")
	body := drainClose(t, resp)
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("draining publish: status %d body %s, want 503", resp.StatusCode, body)
	}
	if resp.Header.Get("Retry-After") == "" {
		t.Fatal("draining response carries no Retry-After")
	}
	resp = post(t, ts.URL+"/publish/batch", "application/json", `{"documents":["<a/>"]}`)
	if drainClose(t, resp); resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("draining batch publish: status %d, want 503", resp.StatusCode)
	}
}

func TestSubscribeBodyTooLarge(t *testing.T) {
	ts := newTestServer(t, Config{MaxRequestBytes: 1024})
	big := fmt.Sprintf(`{"expression":"//a[@k=%s]"}`, strings.Repeat("x", 4096))
	resp := post(t, ts.URL+"/subscriptions", "application/json", big)
	body := drainClose(t, resp)
	if resp.StatusCode != http.StatusRequestEntityTooLarge {
		t.Fatalf("oversized subscribe: status %d body %s, want 413", resp.StatusCode, body)
	}
	// A normal subscription still fits.
	subscribe(t, ts, "//a")
}

func TestPublishBatchBodyTooLarge(t *testing.T) {
	ts := newTestServer(t, Config{MaxRequestBytes: 1024})
	subscribe(t, ts, "//a")
	big := fmt.Sprintf(`{"documents":["<a>%s</a>"]}`, strings.Repeat("x", 4096))
	resp := post(t, ts.URL+"/publish/batch", "application/json", big)
	body := drainClose(t, resp)
	if resp.StatusCode != http.StatusRequestEntityTooLarge {
		t.Fatalf("oversized batch: status %d body %s, want 413", resp.StatusCode, body)
	}
	// A batch under the bound still publishes.
	resp = post(t, ts.URL+"/publish/batch", "application/json", `{"documents":["<a/>"]}`)
	if drainClose(t, resp); resp.StatusCode != http.StatusOK {
		t.Fatalf("small batch: status %d, want 200", resp.StatusCode)
	}
}

func TestHandlerPanicRecovered(t *testing.T) {
	srv := New(Config{})
	// White-box: register a panicking route behind the ServeHTTP recover
	// middleware, standing in for any handler bug.
	srv.mux.HandleFunc("GET /boom", func(http.ResponseWriter, *http.Request) {
		panic("boom")
	})
	ts := httptest.NewServer(srv)
	t.Cleanup(ts.Close)

	resp, err := http.Get(ts.URL + "/boom")
	if err != nil {
		t.Fatal(err)
	}
	body := drainClose(t, resp)
	if resp.StatusCode != http.StatusInternalServerError {
		t.Fatalf("panicking handler: status %d body %s, want 500", resp.StatusCode, body)
	}
	if !strings.Contains(body, "recovered") {
		t.Fatalf("panic response does not say recovered: %s", body)
	}

	// The server keeps serving, and the panic is counted.
	subscribe(t, ts, "//a")
	sresp, err := http.Get(ts.URL + "/stats")
	if err != nil {
		t.Fatal(err)
	}
	stats := decodeBody(t, sresp)
	if stats["panics_recovered"].(float64) != 1 {
		t.Fatalf("panics_recovered = %v, want 1", stats["panics_recovered"])
	}
}

func TestBatchLimitErrorsPerDocument(t *testing.T) {
	// Governance failures inside a batch are per-result: healthy siblings
	// still match and the batch itself is 200.
	cfg := Config{MaxDocumentBytes: 1 << 20}
	cfg.Engine.Limits.MaxDepth = 8
	ts := newTestServer(t, cfg)
	subscribe(t, ts, "//d")

	bomb := string(workload.DepthBomb(64))
	req := fmt.Sprintf(`{"documents":["<d/>",%q,"<d/>"]}`, bomb)
	resp := post(t, ts.URL+"/publish/batch", "application/json", req)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("batch with one bomb: status %d, want 200", resp.StatusCode)
	}
	body := decodeBody(t, resp)
	results := body["results"].([]any)
	if len(results) != 3 {
		t.Fatalf("got %d results, want 3", len(results))
	}
	for _, i := range []int{0, 2} {
		r := results[i].(map[string]any)
		if r["error"] != nil || r["matches"].(float64) != 1 {
			t.Fatalf("healthy doc %d: %v", i, r)
		}
	}
	mid := results[1].(map[string]any)
	errStr, _ := mid["error"].(string)
	if !strings.Contains(errStr, "depth") {
		t.Fatalf("bomb result does not name the tripped limit: %v", mid)
	}
}
